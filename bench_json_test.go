package adhocshare

// Codec benchmarks and the bench-json emitter behind `make bench-json`.
//
// The codec benchmarks drive one encode+decode round trip of a
// representative fabric hot-path payload per iteration, once through the
// binary fast path (dqp.EncodePayload) and once through the registered
// gob baseline (dqp.EncodePayloadGob) — same payload, same run, so the
// allocs/op and ns/op columns are directly comparable.
//
// TestWriteBenchJSON re-runs those pairs plus the E2 publish and the E9
// end-to-end query experiments — the latter fault-free, under 1%
// deterministic message loss (the retry machinery's overhead), and under
// simnet's ConcurrentDelivery mode (the host-side cost of per-message
// handler goroutines) — and the E16 Zipf-storm pair (static vs. adaptive
// hot-key replication, with the hot-node byte share and steady-state tail
// as domain metrics) under testing.Benchmark, and writes the per-scenario
// numbers (ns/op, allocs/op, bytes/op, ops/sec) to the file named by the
// BENCH_JSON environment variable; without it the test skips, so plain
// `go test ./...` stays fast.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"adhocshare/internal/chord"
	"adhocshare/internal/dqp"
	"adhocshare/internal/experiments"
	"adhocshare/internal/overlay"
	"adhocshare/internal/simnet"
)

// ---- representative hot-path payloads ----

// sampleBatchFindReq models one parallel-resolve round: the initiator
// ships every unresolved key of a publication batch in one request.
func sampleBatchFindReq() simnet.Payload {
	targets := make([]chord.ID, 48)
	for i := range targets {
		targets[i] = chord.ID(i*7919 + 13)
	}
	return chord.BatchFindReq{Targets: targets, Hops: 2}
}

// sampleBatchFindResp is the matching response: one successor ref per
// target key.
func sampleBatchFindResp() simnet.Payload {
	nodes := make([]chord.Ref, 48)
	for i := range nodes {
		nodes[i] = chord.Ref{ID: chord.ID(i*104729 + 7), Addr: simnet.Addr(fmt.Sprintf("idx-%02d", i))}
	}
	return chord.BatchFindResp{Nodes: nodes, Hops: 3}
}

// samplePutBatchReq models one provider's posting installment on one
// index node during Publish.
func samplePutBatchReq() simnet.Payload {
	entries := make([]overlay.KeyFreq, 64)
	for i := range entries {
		entries[i] = overlay.KeyFreq{Key: chord.ID(i*31 + 5), Freq: i%9 + 1}
	}
	return overlay.PutBatchReq{Node: "D00", Entries: entries}
}

// samplePostingsResp is a lookup answer listing the providers of one key.
func samplePostingsResp() simnet.Payload {
	ps := make([]overlay.Posting, 32)
	for i := range ps {
		ps[i] = overlay.Posting{Node: simnet.Addr(fmt.Sprintf("D%02d", i%10)), Freq: i + 1}
	}
	return overlay.PostingsResp{Postings: ps}
}

// codecScenarios pairs each hot payload with a stable scenario name.
func codecScenarios() []struct {
	name string
	p    simnet.Payload
} {
	return []struct {
		name string
		p    simnet.Payload
	}{
		{"chord_batch_resolve_req", sampleBatchFindReq()},
		{"chord_batch_resolve_resp", sampleBatchFindResp()},
		{"overlay_put_batch", samplePutBatchReq()},
		{"overlay_postings", samplePostingsResp()},
	}
}

// benchCodec measures one encode+decode round trip per iteration.
func benchCodec(b *testing.B, enc func(simnet.Payload) ([]byte, error), p simnet.Payload) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data, err := enc(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := dqp.DecodePayload(data); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodec compares the binary wire codec against the gob baseline
// on each hot payload family:
//
//	go test -bench Codec -benchmem .
func BenchmarkCodec(b *testing.B) {
	for _, c := range codecScenarios() {
		c := c
		b.Run(c.name+"/binary", func(b *testing.B) { benchCodec(b, dqp.EncodePayload, c.p) })
		b.Run(c.name+"/gob", func(b *testing.B) { benchCodec(b, dqp.EncodePayloadGob, c.p) })
	}
}

// ---- bench-json emitter ----

type benchScenario struct {
	Name      string  `json:"scenario"`
	NsOp      float64 `json:"ns_op"`
	AllocsOp  int64   `json:"allocs_op"`
	BytesOp   int64   `json:"bytes_op"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// HotShare and TailVTimeMs are domain metrics of the e12_zipf_*
	// storm pair: the busiest index node's share of index-tier bytes and
	// the steady-state tail of the query critical path in virtual ms.
	HotShare    float64 `json:"hot_node_share,omitempty"`
	TailVTimeMs float64 `json:"tail_vtime_ms,omitempty"`
}

// runScenario runs one benchmark body to completion under
// testing.Benchmark and flattens the result into a JSON-ready row.
func runScenario(name string, fn func(b *testing.B)) benchScenario {
	r := testing.Benchmark(fn)
	nsOp := float64(r.T.Nanoseconds()) / float64(r.N)
	return benchScenario{
		Name:      name,
		NsOp:      nsOp,
		AllocsOp:  r.AllocsPerOp(),
		BytesOp:   r.AllocedBytesPerOp(),
		OpsPerSec: float64(r.N) / r.T.Seconds(),
	}
}

// TestWriteBenchJSON regenerates BENCH_PR10.json. It runs only when
// BENCH_JSON names the output path (`make bench-json` sets it), and fails
// if the binary codec does not beat the gob baseline on allocs/op for the
// fabric hot paths, if the adaptive index does not strictly beat the
// static one on the Zipf storm's hot-node share and tail, or if the armed
// flight recorder costs more than the bounded-overhead guard allows — the
// measured claims the committed file records.
func TestWriteBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_JSON")
	if out == "" {
		t.Skip("set BENCH_JSON=<path> (or run `make bench-json`) to regenerate the benchmark JSON")
	}

	var scenarios []benchScenario
	scenarios = append(scenarios, runScenario("e2_publish", func(b *testing.B) {
		b.ReportAllocs()
		benchExperiment(b, experiments.E2IndexConstruction)
	}))
	scenarios = append(scenarios, runScenario("e9_query", func(b *testing.B) {
		b.ReportAllocs()
		benchExperiment(b, experiments.E9Fig4EndToEnd)
	}))
	// The same E9 sweep under 1% deterministic message loss: the delta
	// against e9_query is the cost of the retry/fallback machinery plus
	// the FailTimeouts charged for discovering lost messages.
	scenarios = append(scenarios, runScenario("e9_query_loss1pct", func(b *testing.B) {
		b.ReportAllocs()
		benchExperiment(b, func(p experiments.Params) (*experiments.Table, error) {
			p.FaultRate = 0.01
			return experiments.E9Fig4EndToEnd(p)
		})
	}))
	// The concurrent-delivery twin of e9_query: identical simulated work
	// (same-seed tables are byte-identical by construction), with every
	// remote handler on its own goroutine. The delta against e9_query is
	// the host-side cost of per-message goroutines — the price of running
	// the CI race matrix in that mode.
	scenarios = append(scenarios, runScenario("e9_query_concurrent", func(b *testing.B) {
		b.ReportAllocs()
		benchExperiment(b, func(p experiments.Params) (*experiments.Table, error) {
			p.Concurrent = true
			return experiments.E9Fig4EndToEnd(p)
		})
	}))
	// The flight-recorder twin of e9_query: recorder and invariant monitors
	// armed with 128-event per-node rings, all monitors checked per
	// configuration. The delta against e9_query is the always-on recording
	// overhead; the guard below keeps it bounded.
	scenarios = append(scenarios, runScenario("e9_query_flightrec", func(b *testing.B) {
		b.ReportAllocs()
		benchExperiment(b, func(p experiments.Params) (*experiments.Table, error) {
			p.Flight = 128
			return experiments.E9Fig4EndToEnd(p)
		})
	}))
	// The E16 Zipf storm pair: same workload, static vs. adaptive index.
	// The domain metrics come from the deterministic storm summary (same
	// Params, same numbers every run); ns/op and allocs/op come from the
	// timed loop.
	for _, adaptive := range []bool{false, true} {
		adaptive := adaptive
		name := "e12_zipf_static"
		if adaptive {
			name = "e12_zipf_adaptive"
		}
		s := runScenario(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.E16ZipfStormSummary(experiments.Params{}, adaptive); err != nil {
					b.Fatal(err)
				}
			}
		})
		sum, err := experiments.E16ZipfStormSummary(experiments.Params{}, adaptive)
		if err != nil {
			t.Fatal(err)
		}
		s.HotShare, s.TailVTimeMs = sum.HotShare, sum.TailMs
		scenarios = append(scenarios, s)
	}
	for _, c := range codecScenarios() {
		c := c
		scenarios = append(scenarios, runScenario("codec/"+c.name+"/binary", func(b *testing.B) {
			benchCodec(b, dqp.EncodePayload, c.p)
		}))
		scenarios = append(scenarios, runScenario("codec/"+c.name+"/gob", func(b *testing.B) {
			benchCodec(b, dqp.EncodePayloadGob, c.p)
		}))
	}

	byName := make(map[string]benchScenario, len(scenarios))
	for _, s := range scenarios {
		byName[s.Name] = s
	}
	for _, c := range codecScenarios() {
		bin, gb := byName["codec/"+c.name+"/binary"], byName["codec/"+c.name+"/gob"]
		if bin.AllocsOp >= gb.AllocsOp {
			t.Errorf("codec/%s: binary path allocates %d allocs/op, gob baseline %d — the binary codec must allocate strictly less",
				c.name, bin.AllocsOp, gb.AllocsOp)
		}
	}
	// Recording must stay bounded-overhead: the armed E9 sweep may not cost
	// more than 1.75x the disabled one (measured ~1.25x; the slack absorbs
	// shared-runner noise, not a regression to per-event allocation).
	e9, e9f := byName["e9_query"], byName["e9_query_flightrec"]
	if e9f.NsOp >= 1.75*e9.NsOp {
		t.Errorf("e9_query_flightrec: %.0f ns/op vs %.0f ns/op disabled (%.2fx) — flight recording is no longer bounded-overhead",
			e9f.NsOp, e9.NsOp, e9f.NsOp/e9.NsOp)
	}
	// The adaptive index must strictly beat the static one on the hot-key
	// storm's two measured claims; if it stops doing so the extension has
	// regressed and the committed JSON must not paper over it.
	zs, za := byName["e12_zipf_static"], byName["e12_zipf_adaptive"]
	if za.HotShare >= zs.HotShare {
		t.Errorf("e12_zipf: adaptive hot-node share %.3f is not below static %.3f — hot-key replication no longer spreads the load",
			za.HotShare, zs.HotShare)
	}
	if za.TailVTimeMs >= zs.TailVTimeMs {
		t.Errorf("e12_zipf: adaptive tail %.2f vms is not below static %.2f vms — the replica fast path no longer pays off",
			za.TailVTimeMs, zs.TailVTimeMs)
	}

	doc := struct {
		Note      string          `json:"note"`
		GoVersion string          `json:"go_version"`
		Scenarios []benchScenario `json:"scenarios"`
	}{
		Note:      "regenerate with `make bench-json`; codec pairs encode+decode the same payload through the binary fast path and the gob baseline in the same run",
		GoVersion: runtime.Version(),
		Scenarios: scenarios,
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %d scenarios to %s", len(scenarios), out)
}
