// Package adhocshare is a library for ad-hoc Semantic Web data sharing
// with distributed SPARQL query processing, reproducing the system of
// Zhou, v. Bochmann & Shi, "Distributed Query Processing in an Ad-Hoc
// Semantic Web Data Sharing System" (IEEE IPDPS Workshops 2013).
//
// The system is a hybrid peer-to-peer overlay: index nodes self-organize
// into a Chord ring, storage nodes keep their own RDF triples locally and
// attach to an index node. A two-level distributed index — six hash keys
// per triple (subject, predicate, object and the three pairs), each mapped
// to a location-table row with per-provider frequency counts — locates the
// storage nodes able to answer a triple pattern. SPARQL queries are
// parsed, translated to the SPARQL algebra, optimized (filter pushing,
// frequency-driven join reordering) and executed distributedly with
// selectable strategies (parallel fan-out, chained in-network aggregation,
// frequency-ordered chains) and join-site policies (move-small,
// query-site, third-site).
//
// Everything runs over a deterministic virtual-time network simulator, so
// each query returns exact message, byte and response-time costs alongside
// its solutions.
//
// Quick start:
//
//	sys := adhocshare.NewSystem(adhocshare.Config{IndexNodes: 8})
//	sys.AddProvider("alice-laptop", triples)
//	res, stats, err := sys.Query("alice-laptop",
//	    `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
//	     SELECT ?x WHERE { ?x foaf:knows <http://example.org/me> . }`)
package adhocshare

import (
	"fmt"
	"io"
	"time"

	"adhocshare/internal/dqp"
	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
)

// Re-exported building blocks so downstream code can construct terms and
// inspect results without reaching into internal packages.
type (
	// Term is one RDF term (IRI, literal, blank node) or query variable.
	Term = rdf.Term
	// Triple is one RDF statement or triple pattern.
	Triple = rdf.Triple
	// Graph is an indexed in-memory triple store.
	Graph = rdf.Graph
)

// Term constructors re-exported from the RDF model.
var (
	// NewIRI returns an IRI term.
	NewIRI = rdf.NewIRI
	// NewLiteral returns a plain literal term.
	NewLiteral = rdf.NewLiteral
	// NewLangLiteral returns a language-tagged literal term.
	NewLangLiteral = rdf.NewLangLiteral
	// NewTypedLiteral returns a datatyped literal term.
	NewTypedLiteral = rdf.NewTypedLiteral
	// NewInteger returns an xsd:integer literal term.
	NewInteger = rdf.NewInteger
	// NewBoolean returns an xsd:boolean literal term.
	NewBoolean = rdf.NewBoolean
	// NewVar returns a query-variable term.
	NewVar = rdf.NewVar
	// ParseNTriples reads triples in N-Triples syntax.
	ParseNTriples = rdf.ParseNTriples
	// ParseTurtle reads triples in Turtle syntax (directives, prefixed
	// names, predicate/object lists, blank-node property lists).
	ParseTurtle = rdf.ParseTurtle
)

// Strategy selects how a triple pattern's target storage nodes are
// processed (paper Sect. IV-C).
type Strategy = dqp.Strategy

// Per-pattern strategies.
const (
	// StrategyBasic is the parallel fan-out with union at the index node.
	StrategyBasic = dqp.StrategyBasic
	// StrategyChain forwards through the target list with in-network
	// aggregation.
	StrategyChain = dqp.StrategyChain
	// StrategyFreqChain is the frequency-ordered chain (largest target
	// last).
	StrategyFreqChain = dqp.StrategyFreqChain
)

// Conjunction selects how multi-pattern BGPs combine (Sect. IV-D).
type Conjunction = dqp.Conjunction

// Conjunction modes.
const (
	// ConjPipeline ships partial solutions into each pattern's execution.
	ConjPipeline = dqp.ConjPipeline
	// ConjParallelJoin evaluates patterns independently and joins at an
	// assembly site.
	ConjParallelJoin = dqp.ConjParallelJoin
)

// JoinSitePolicy selects where binary merges happen (Sect. II).
type JoinSitePolicy = dqp.JoinSitePolicy

// Join-site policies.
const (
	// JoinSiteMoveSmall ships the smaller operand.
	JoinSiteMoveSmall = dqp.JoinSiteMoveSmall
	// JoinSiteQuerySite ships both operands to the initiator.
	JoinSiteQuerySite = dqp.JoinSiteQuerySite
	// JoinSiteThirdSite ships both operands to a third node.
	JoinSiteThirdSite = dqp.JoinSiteThirdSite
	// JoinSiteQoS scores candidate sites by measured link quality
	// (Ye et al.) and picks the cheapest.
	JoinSiteQoS = dqp.JoinSiteQoS
)

// QueryOptions configures query execution; the zero value is the paper's
// basic processing. Use DefaultQueryOptions for the fully optimized
// configuration.
type QueryOptions = dqp.Options

// DefaultQueryOptions returns the fully optimized configuration
// (freq-chain, overlap-aware parallel joins, move-small, filter pushing,
// join reordering).
func DefaultQueryOptions() QueryOptions { return dqp.DefaultOptions() }

// BaselineQueryOptions returns the unoptimized basic processing.
func BaselineQueryOptions() QueryOptions { return dqp.BaselineOptions() }

// Stats reports the cost of one query execution.
type Stats = dqp.Stats

// Result is the outcome of one query.
type Result = dqp.Result

// Config parameterizes a deployment.
type Config struct {
	// IndexNodes is the number of ring (index) nodes created up front
	// (default 8). More can join later with AddIndexNode.
	IndexNodes int
	// Bits is the Chord identifier width (default 32).
	Bits uint
	// Replication is the number of copies of each index posting
	// (default 2).
	Replication int
	// BaseLatency is the per-message virtual latency (default 2ms).
	BaseLatency time.Duration
	// Bandwidth is the virtual link throughput in bytes/second
	// (default 1 MiB/s).
	Bandwidth float64
	// Query is the default query configuration, used when Query is called
	// without per-call options.
	Query QueryOptions
}

// System is a complete ad-hoc data sharing deployment: the hybrid overlay
// plus a query engine, driven in virtual time.
type System struct {
	sys     *overlay.System
	engine  *dqp.Engine
	opts    QueryOptions
	now     simnet.VTime
	engines map[string]*dqp.Engine
}

// NewSystem builds a deployment with cfg.IndexNodes index nodes already
// joined and converged.
func NewSystem(cfg Config) (*System, error) {
	if cfg.IndexNodes <= 0 {
		cfg.IndexNodes = 8
	}
	if cfg.Query == (QueryOptions{}) {
		cfg.Query = dqp.DefaultOptions()
	}
	ov := overlay.NewSystem(overlay.Config{
		Bits:        cfg.Bits,
		Replication: cfg.Replication,
		Net: simnet.Config{
			BaseLatency: cfg.BaseLatency,
			Bandwidth:   cfg.Bandwidth,
		},
	})
	s := &System{sys: ov, opts: cfg.Query, engines: map[string]*dqp.Engine{}}
	for i := 0; i < cfg.IndexNodes; i++ {
		if _, err := s.AddIndexNode(fmt.Sprintf("index-%02d", i)); err != nil {
			return nil, err
		}
	}
	s.engine = dqp.NewEngine(ov, cfg.Query)
	return s, nil
}

// Now returns the current virtual time of the deployment.
func (s *System) Now() time.Duration { return s.now.Duration() }

// Overlay exposes the underlying overlay for advanced use (metrics,
// failure injection, direct index inspection).
func (s *System) Overlay() *overlay.System { return s.sys }

// AddIndexNode joins a new index node to the ring.
func (s *System) AddIndexNode(name string) (*overlay.IndexNode, error) {
	n, done, err := s.sys.AddIndexNode(simnet.Addr(name), s.now)
	s.now = done
	if err != nil {
		return nil, err
	}
	s.now = s.sys.Converge(s.now)
	return n, nil
}

// AddProvider creates a storage node named name holding the given triples
// and publishes their index keys. The provider keeps the triples locally;
// only postings travel.
func (s *System) AddProvider(name string, triples []Triple) error {
	_, done, err := s.sys.AddStorageNode(simnet.Addr(name), s.now)
	s.now = done
	if err != nil {
		return err
	}
	return s.Publish(name, triples)
}

// Publish adds more triples to an existing provider.
func (s *System) Publish(name string, triples []Triple) error {
	done, err := s.sys.Publish(simnet.Addr(name), triples, s.now)
	s.now = done
	return err
}

// PublishReader parses N-Triples from r and publishes them at the
// provider.
func (s *System) PublishReader(name string, r io.Reader) (int, error) {
	ts, err := rdf.ParseNTriples(r)
	if err != nil {
		return 0, err
	}
	return len(ts), s.Publish(name, ts)
}

// PublishToGraph adds triples to one of the provider's named graphs
// (Sect. IV-A datasets); queries select named graphs with FROM clauses.
func (s *System) PublishToGraph(name, graphIRI string, triples []Triple) error {
	done, err := s.sys.PublishGraph(simnet.Addr(name), graphIRI, triples, s.now)
	s.now = done
	return err
}

// Republish reinstalls a provider's index postings with idempotent
// (absolute) frequencies — call it when a provider returns after a crash
// during which its postings were dropped.
func (s *System) Republish(name string) error {
	done, err := s.sys.Republish(simnet.Addr(name), s.now)
	s.now = done
	return err
}

// Retract removes triples from a provider and withdraws their postings.
func (s *System) Retract(name string, triples []Triple) error {
	done, err := s.sys.Retract(simnet.Addr(name), triples, s.now)
	s.now = done
	return err
}

// Query executes a SPARQL query issued by the named node (storage or
// index) using the system's default options.
func (s *System) Query(initiator, query string) (*Result, Stats, error) {
	return s.QueryWith(initiator, query, s.opts)
}

// QueryWith executes a query with explicit options — the knob for
// comparing execution strategies on the same deployment. Engines are kept
// per (initiator, options) so that CacheLookups persists across queries.
func (s *System) QueryWith(initiator, query string, opts QueryOptions) (*Result, Stats, error) {
	key := fmt.Sprintf("%s|%+v", initiator, opts)
	e, ok := s.engines[key]
	if !ok {
		e = dqp.NewEngine(s.sys, opts)
		s.engines[key] = e
	}
	res, stats, done, err := e.Query(simnet.Addr(initiator), query, s.now)
	s.now = done
	return res, stats, err
}

// PublishTurtle parses a Turtle document and publishes its triples at the
// provider, returning the triple count.
func (s *System) PublishTurtle(name string, r io.Reader) (int, error) {
	ts, err := rdf.ParseTurtle(r)
	if err != nil {
		return 0, err
	}
	return len(ts), s.Publish(name, ts)
}

// SetLinkFactor degrades (or upgrades) a node's link quality: 1.0 is
// nominal, larger is slower. The QoS-aware join-site policy reads these
// factors.
func (s *System) SetLinkFactor(name string, factor float64) {
	s.sys.Net().SetLinkFactor(simnet.Addr(name), factor)
}

// Explain returns the optimized algebra plan for a query.
func (s *System) Explain(query string) (string, error) {
	return s.engine.Explain(query)
}

// FailNode crashes a node abruptly (index or storage). Queries observing
// the failure drop its postings after a timeout, as Sect. III-D describes.
func (s *System) FailNode(name string) { s.sys.FailNode(simnet.Addr(name)) }

// RecoverNode brings a crashed node back.
func (s *System) RecoverNode(name string) { s.sys.RecoverNode(simnet.Addr(name)) }

// RemoveIndexGraceful departs an index node cleanly, handing its location
// table to the successor.
func (s *System) RemoveIndexGraceful(name string) error {
	done, err := s.sys.RemoveIndexGraceful(simnet.Addr(name), s.now)
	s.now = done
	return err
}

// Stabilize runs n rounds of ring maintenance (needed after failures for
// the ring to heal).
func (s *System) Stabilize(rounds int) {
	for i := 0; i < rounds; i++ {
		s.now = s.sys.StabilizeRound(s.now)
	}
	s.now = s.sys.Converge(s.now)
}

// Snapshot summarizes deployment state.
type Snapshot struct {
	IndexNodes    int
	StorageNodes  int
	TotalTriples  int
	TotalPostings int
}

// Snapshot returns current deployment statistics.
func (s *System) Snapshot() Snapshot {
	return Snapshot{
		IndexNodes:    len(s.sys.IndexNodes()),
		StorageNodes:  len(s.sys.StorageNodes()),
		TotalTriples:  s.sys.TotalTriples(),
		TotalPostings: s.sys.TotalPostings(),
	}
}
