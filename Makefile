GO ?= go

.PHONY: all build vet lint test race bench fuzz experiments

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: concurrency and determinism
# conventions (see DESIGN.md "Concurrency & determinism conventions").
lint:
	$(GO) run ./cmd/adhoclint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Short coverage-guided fuzz pass over the text front ends; CI runs the
# same targets as a smoke stage. Crashers land in testdata/fuzz/ and then
# run as regression seeds under plain `make test`.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseQuery -fuzztime $(FUZZTIME) ./internal/sparql
	$(GO) test -run '^$$' -fuzz FuzzReadTurtle -fuzztime $(FUZZTIME) ./internal/rdf

# Regenerate the EXPERIMENTS.md table set (seed 0 = published tables).
experiments:
	$(GO) run ./cmd/benchmark
