GO ?= go

.PHONY: all build vet lint lint-fast test race bench bench-json fuzz experiments

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: concurrency and determinism
# conventions (see DESIGN.md "Concurrency & determinism conventions").
lint:
	$(GO) run ./cmd/adhoclint ./...

# Per-package rules only: skips the whole-program analyses (lock-order,
# lock-blocking's interprocedural half, rpc-protocol, payload-size,
# wireiso, vtime, alloc, codec, faultpath, racefree), which load the full
# module. Quick pre-commit check; CI and `make lint` always run everything.
lint-fast:
	$(GO) run ./cmd/adhoclint -rules guarded-field,determinism,goroutine-hygiene,discarded-error ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Regenerate BENCH_PR10.json: E2 publish, the E9 end-to-end query
# fault-free, under 1% deterministic message loss (the overhead of the
# retry machinery) and under ConcurrentDelivery (the host-side cost of
# per-message handler goroutines), the E16 Zipf-storm pair (static vs.
# adaptive hot-key replication, with hot-node share and tail VTime as
# domain metrics), the flight-recorder-armed E9 twin, and the
# binary-vs-gob codec pairs measured in the same run. The test fails if
# the binary codec stops beating the gob baseline on allocs/op, the
# adaptive index stops beating the static one, or armed flight recording
# exceeds its bounded-overhead guard.
bench-json:
	BENCH_JSON=$(CURDIR)/BENCH_PR10.json $(GO) test -run '^TestWriteBenchJSON$$' -count=1 -v .

# Short coverage-guided fuzz pass over the text front ends and the wire
# codec; CI runs the same targets as a smoke stage. Crashers land in
# testdata/fuzz/ and then run as regression seeds under plain `make test`.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParseQuery -fuzztime $(FUZZTIME) ./internal/sparql
	$(GO) test -run '^$$' -fuzz FuzzReadTurtle -fuzztime $(FUZZTIME) ./internal/rdf
	$(GO) test -run '^$$' -fuzz FuzzCodecRoundTrip -fuzztime $(FUZZTIME) ./internal/dqp

# Regenerate the EXPERIMENTS.md table set (seed 0 = published tables).
experiments:
	$(GO) run ./cmd/benchmark
