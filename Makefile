GO ?= go

.PHONY: all build vet lint test race bench experiments

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis: concurrency and determinism
# conventions (see DESIGN.md "Concurrency & determinism conventions").
lint:
	$(GO) run ./cmd/adhoclint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' .

# Regenerate the EXPERIMENTS.md table set (seed 0 = published tables).
experiments:
	$(GO) run ./cmd/benchmark
