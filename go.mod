module adhocshare

go 1.22
