// Social-network scenario: a larger generated FOAF web spread over many
// personal devices — the workload the paper's introduction motivates.
// Runs every query form of the paper's Figs. 4–9 and compares basic vs.
// optimized distributed execution on each.
package main

import (
	"fmt"
	"log"
	"time"

	"adhocshare"
	"adhocshare/internal/workload"
)

func main() {
	// Generate a 300-person social web over 12 devices with popularity
	// skew: a few "celebrities" are known by many, so location-table
	// frequencies (Table I) differ wildly between providers.
	data := workload.Generate(workload.Config{
		Persons: 300, Providers: 12, AvgKnows: 4,
		ZipfS: 1.3, KnowsNothingFraction: 0.3, Seed: 7,
	})

	sys, err := adhocshare.NewSystem(adhocshare.Config{IndexNodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range data.Providers() {
		if err := sys.AddProvider(name, data.ByProvider[name]); err != nil {
			log.Fatal(err)
		}
	}
	snap := sys.Snapshot()
	fmt.Printf("deployment: %d index nodes, %d providers, %d triples shared\n\n",
		snap.IndexNodes, snap.StorageNodes, snap.TotalTriples)

	queries := []struct {
		name  string
		query string
	}{
		{"Fig. 5 primitive (who knows the celebrity?)", workload.QueryPrimitive(data.PopularPerson)},
		{"Fig. 6 conjunction", workload.QueryConjunction()},
		{"Fig. 7 optional", workload.QueryOptional("Smith")},
		{"Fig. 8 union", workload.QueryUnion(data.PopularPerson)},
		{"Fig. 9 filter + optional", workload.QueryFilter("Smith")},
		{"Fig. 4 full query", workload.QueryFig4("Smith")},
	}
	for _, q := range queries {
		resBasic, basic, err := sys.QueryWith("D00", q.query, adhocshare.BaselineQueryOptions())
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		resOpt, opt, err := sys.QueryWith("D00", q.query, adhocshare.DefaultQueryOptions())
		if err != nil {
			log.Fatalf("%s: %v", q.name, err)
		}
		if len(resBasic.Solutions) != len(resOpt.Solutions) {
			log.Fatalf("%s: strategies disagree (%d vs %d solutions)",
				q.name, len(resBasic.Solutions), len(resOpt.Solutions))
		}
		fmt.Printf("%-45s %4d solutions\n", q.name, len(resOpt.Solutions))
		fmt.Printf("  basic:     %5d msgs  %8.1f KiB  %7.1f ms\n",
			basic.Messages, float64(basic.Bytes)/1024, msf(basic.ResponseTime))
		fmt.Printf("  optimized: %5d msgs  %8.1f KiB  %7.1f ms  (solution traffic %.1f vs %.1f KiB)\n\n",
			opt.Messages, float64(opt.Bytes)/1024, msf(opt.ResponseTime),
			float64(opt.ShippedSolutionBytes())/1024,
			float64(basic.ShippedSolutionBytes())/1024)
	}
}

func msf(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
