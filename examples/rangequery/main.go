// Range-query scenario: numeric range retrieval ("find people aged 25-40")
// in two worlds. The hybrid ad-hoc system resolves the range as a
// predicate-key lookup plus a filter pushed to every provider; the
// RDFPeers baseline maps numeric objects onto the ring with a
// locality-preserving hash, so a range touches only the contiguous arc of
// nodes covering the interval (the Sect. II technique). The example prints
// both executions side by side across widening ranges.
package main

import (
	"fmt"
	"log"
	"time"

	"adhocshare"
	"adhocshare/internal/rdf"
	"adhocshare/internal/rdfpeers"
	"adhocshare/internal/simnet"
	"adhocshare/internal/workload"
)

func main() {
	data := workload.Generate(workload.Config{
		Persons: 300, Providers: 10, AvgKnows: 2, Seed: 19,
	})
	agePred := rdf.NewIRI(workload.FOAF + "age")

	// --- hybrid deployment ---
	hybrid, err := adhocshare.NewSystem(adhocshare.Config{IndexNodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range data.Providers() {
		if err := hybrid.AddProvider(name, data.ByProvider[name]); err != nil {
			log.Fatal(err)
		}
	}

	// --- RDFPeers ring with the LPH range index over the age domain ---
	rp := rdfpeers.NewSystem(24, simnet.Config{
		BaseLatency: 2 * time.Millisecond, Bandwidth: 1 << 20,
	})
	if err := rp.EnableRangeIndex(0, 120); err != nil {
		log.Fatal(err)
	}
	now := simnet.VTime(0)
	for i := 0; i < 10; i++ {
		_, done, err := rp.AddNode(simnet.Addr(fmt.Sprintf("rp-%02d", i)), now)
		if err != nil {
			log.Fatal(err)
		}
		now = done
	}
	now = rp.Converge(now)
	for _, name := range data.Providers() {
		done, err := rp.StoreAll("rp-00", data.ByProvider[name], now)
		if err != nil {
			log.Fatal(err)
		}
		now = done
	}

	fmt.Printf("%-10s %-24s %8s %6s %10s %8s\n",
		"range", "system", "answers", "msgs", "KiB", "resp-ms")
	for _, rng := range [][2]int{{30, 35}, {25, 45}, {20, 60}, {18, 78}} {
		lo, hi := rng[0], rng[1]

		res, stats, err := hybrid.Query("D00", workload.QueryAgeRange(lo, hi))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%2d,%2d)    %-24s %8d %6d %10.1f %8.1f\n",
			lo, hi, "hybrid pushed-filter", len(res.Solutions), stats.Messages,
			float64(stats.Bytes)/1024, float64(stats.ResponseTime)/float64(time.Millisecond))

		before := rp.Net().Metrics()
		start := now
		ts, visited, done, err := rp.QueryRange("rp-00", agePred, float64(lo), float64(hi-1), now)
		if err != nil {
			log.Fatal(err)
		}
		now = done
		delta := rp.Net().Metrics().Sub(before)
		fmt.Printf("[%2d,%2d)    %-24s %8d %6d %10.1f %8.1f   (%d arc nodes)\n",
			lo, hi, "rdfpeers LPH arc", len(ts), delta.Messages,
			float64(delta.Bytes)/1024,
			float64((now-start).Duration())/float64(time.Millisecond), visited)
	}
	fmt.Println("\nnarrow ranges touch only a short ring arc under LPH; the hybrid")
	fmt.Println("system pays a fan-out to every provider but keeps data ownership local.")
}
