// Churn scenario: ad-hoc networks are defined by nodes arriving, leaving
// and crashing. This example exercises every membership event of the
// paper's Sect. III-C/D — storage-node crash with timeout cleanup, index
// node join with location-table transfer, graceful index departure with
// handover, index crash healed by successor lists and replication — and
// shows that queries keep working throughout.
package main

import (
	"fmt"
	"log"

	"adhocshare"
	"adhocshare/internal/workload"
)

func main() {
	data := workload.Generate(workload.Config{
		Persons: 150, Providers: 8, AvgKnows: 3, ZipfS: 1.3, Seed: 3,
	})
	sys, err := adhocshare.NewSystem(adhocshare.Config{IndexNodes: 6, Replication: 2})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range data.Providers() {
		if err := sys.AddProvider(name, data.ByProvider[name]); err != nil {
			log.Fatal(err)
		}
	}
	query := workload.QueryPrimitive(data.PopularPerson)
	report := func(stage string) {
		res, stats, err := sys.Query("D00", query)
		if err != nil {
			log.Fatalf("%s: %v", stage, err)
		}
		fmt.Printf("%-38s %3d solutions  %4d msgs  drops=%d\n",
			stage, len(res.Solutions), stats.Messages, stats.StaleDrops)
	}

	report("healthy network")

	// 1. a storage node crashes: the first query that needs it observes
	// the timeout and the index cleans its postings (Sect. III-D)
	sys.FailNode("D03")
	report("after storage crash (1st query)")
	report("after storage crash (2nd query)")

	// 2. a new index node joins mid-life: it pulls its key range from its
	// successor (Sect. III-C)
	if _, err := sys.AddIndexNode("index-joiner"); err != nil {
		log.Fatal(err)
	}
	report("after index join")

	// 3. an index node leaves gracefully: location table handed over
	if err := sys.RemoveIndexGraceful("index-01"); err != nil {
		log.Fatal(err)
	}
	report("after graceful index leave")

	// 4. an index node crashes: successor lists + replicas heal the ring
	sys.FailNode("index-02")
	sys.Stabilize(5)
	report("after index crash + stabilization")

	// 5. the crashed storage node comes back; Republish reinstalls its
	// postings idempotently (a plain Publish would no-op: the triples are
	// still in its local graph)
	sys.RecoverNode("D03")
	if err := sys.Republish("D03"); err != nil {
		log.Fatal(err)
	}
	report("after storage recovery + republish")

	snap := sys.Snapshot()
	fmt.Printf("\nfinal state: %d index nodes, %d providers, %d postings, virtual clock %v\n",
		snap.IndexNodes, snap.StorageNodes, snap.TotalPostings, sys.Now())
}
