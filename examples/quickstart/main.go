// Quickstart: build a small ad-hoc sharing network with three personal
// devices, publish FOAF triples, and run a distributed SPARQL query.
package main

import (
	"fmt"
	"log"

	"adhocshare"
)

const foaf = "http://xmlns.com/foaf/0.1/"

func person(id string) adhocshare.Term {
	return adhocshare.NewIRI("http://example.org/people/" + id)
}

func main() {
	// A deployment with 5 index nodes (ring members willing to host index
	// entries for others). Virtual network: 2ms hops, 1 MiB/s links.
	sys, err := adhocshare.NewSystem(adhocshare.Config{IndexNodes: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Three providers — each keeps its own data; only index postings
	// (six hash keys per triple) travel to the ring.
	err = sys.AddProvider("alice-laptop", []adhocshare.Triple{
		{S: person("alice"), P: adhocshare.NewIRI(foaf + "name"), O: adhocshare.NewLiteral("Alice Smith")},
		{S: person("alice"), P: adhocshare.NewIRI(foaf + "knows"), O: person("bob")},
		{S: person("alice"), P: adhocshare.NewIRI(foaf + "knows"), O: person("carol")},
	})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.AddProvider("bob-phone", []adhocshare.Triple{
		{S: person("bob"), P: adhocshare.NewIRI(foaf + "name"), O: adhocshare.NewLiteral("Bob Jones")},
		{S: person("bob"), P: adhocshare.NewIRI(foaf + "knows"), O: person("carol")},
		{S: person("bob"), P: adhocshare.NewIRI(foaf + "nick"), O: adhocshare.NewLiteral("Shrek")},
	})
	if err != nil {
		log.Fatal(err)
	}
	err = sys.AddProvider("carol-tablet", []adhocshare.Triple{
		{S: person("carol"), P: adhocshare.NewIRI(foaf + "name"), O: adhocshare.NewLiteral("Carol Smith")},
		{S: person("carol"), P: adhocshare.NewIRI(foaf + "age"), O: adhocshare.NewInteger(29)},
	})
	if err != nil {
		log.Fatal(err)
	}

	snap := sys.Snapshot()
	fmt.Printf("network: %d index nodes, %d providers, %d triples, %d postings\n\n",
		snap.IndexNodes, snap.StorageNodes, snap.TotalTriples, snap.TotalPostings)

	// Alice asks: who knows Carol? The query is parsed, translated to the
	// SPARQL algebra, optimized and executed across the overlay.
	query := `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?n WHERE {
  ?x foaf:knows <http://example.org/people/carol> .
  ?x foaf:name ?n .
}
ORDER BY ?n`
	res, stats, err := sys.Query("alice-laptop", query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("who knows carol?")
	for _, b := range res.Solutions {
		fmt.Printf("  %s (%s)\n", b["n"].Value, b["x"])
	}
	fmt.Printf("\ncost: %d messages, %d bytes, %v virtual response time\n",
		stats.Messages, stats.Bytes, stats.ResponseTime)
	fmt.Printf("plan: %s\n", res.Plan)
}
