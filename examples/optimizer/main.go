// Optimizer tour: shows the Fig. 3 workflow stages on the paper's own
// queries — parse → algebra → rewrites — and then measures how each
// optimization knob (strategy, conjunction mode, filter pushing, join
// reordering, join-site policy) changes the cost of the same query on the
// same deployment.
package main

import (
	"fmt"
	"log"
	"time"

	"adhocshare"
	"adhocshare/internal/workload"
)

func main() {
	data := workload.Generate(workload.Config{
		Persons: 250, Providers: 10, AvgKnows: 4,
		ZipfS: 1.3, KnowsNothingFraction: 0.4, Seed: 5,
	})
	sys, err := adhocshare.NewSystem(adhocshare.Config{IndexNodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range data.Providers() {
		if err := sys.AddProvider(name, data.ByProvider[name]); err != nil {
			log.Fatal(err)
		}
	}

	// Stage 1-3 of Fig. 3: the algebra plan, before and after rewrites.
	query := workload.QueryFilter("Smith")
	fmt.Println("query (paper Fig. 9):")
	fmt.Println(query)
	plan, err := sys.Explain(query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noptimized plan: %s\n", plan)
	fmt.Println("(the regex filter has been pushed inside the LeftJoin's mandatory side — the Sect. IV-G rewrite)")

	// Stage 4-6: execution under every knob.
	fmt.Printf("\n%-52s %5s %9s %9s %8s\n", "configuration", "sols", "totalKiB", "solKiB", "resp-ms")
	configs := []struct {
		name string
		opts adhocshare.QueryOptions
	}{
		{"basic fan-out, pipeline, no rewrites", adhocshare.QueryOptions{
			Strategy: adhocshare.StrategyBasic, Conjunction: adhocshare.ConjPipeline}},
		{"chain, pipeline, no rewrites", adhocshare.QueryOptions{
			Strategy: adhocshare.StrategyChain, Conjunction: adhocshare.ConjPipeline}},
		{"chain, pipeline, +filter pushing", adhocshare.QueryOptions{
			Strategy: adhocshare.StrategyChain, Conjunction: adhocshare.ConjPipeline,
			PushFilters: true}},
		{"chain, pipeline, +pushing +reordering", adhocshare.QueryOptions{
			Strategy: adhocshare.StrategyChain, Conjunction: adhocshare.ConjPipeline,
			PushFilters: true, ReorderJoins: true}},
		{"freq-chain, pipeline, +pushing +reordering", adhocshare.QueryOptions{
			Strategy: adhocshare.StrategyFreqChain, Conjunction: adhocshare.ConjPipeline,
			PushFilters: true, ReorderJoins: true}},
		{"freq-chain, parallel-join, fully optimized", adhocshare.DefaultQueryOptions()},
		{"fully optimized but query-site joins", adhocshare.QueryOptions{
			Strategy: adhocshare.StrategyFreqChain, Conjunction: adhocshare.ConjParallelJoin,
			JoinSite: adhocshare.JoinSiteQuerySite, PushFilters: true, ReorderJoins: true}},
	}
	var expect int = -1
	for _, c := range configs {
		res, stats, err := sys.QueryWith("D00", query, c.opts)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		if expect == -1 {
			expect = len(res.Solutions)
		} else if len(res.Solutions) != expect {
			log.Fatalf("%s: returned %d solutions, expected %d", c.name, len(res.Solutions), expect)
		}
		fmt.Printf("%-52s %5d %9.1f %9.1f %8.1f\n", c.name, len(res.Solutions),
			float64(stats.Bytes)/1024,
			float64(stats.ShippedSolutionBytes())/1024,
			float64(stats.ResponseTime)/float64(time.Millisecond))
	}
	fmt.Println("\nall configurations return identical solutions; only the costs move —")
	fmt.Println("the transmission/response-time trade-off of the paper's Sect. V.")
}
