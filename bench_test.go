package adhocshare

// One benchmark per experiment of the DESIGN.md index (E1–E12) — each
// regenerates its table via the experiments harness and reports the
// domain metrics (messages, KiB, virtual response time) alongside Go's
// time/op — plus micro-benchmarks for the hot paths of the substrate
// (parsing, algebra evaluation, joins, DHT lookups, index publication).
//
// Run: go test -bench=. -benchmem

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"adhocshare/internal/chord"
	"adhocshare/internal/dqp"
	"adhocshare/internal/experiments"
	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
	"adhocshare/internal/sparql/eval"
	"adhocshare/internal/sparql/optimize"
	"adhocshare/internal/workload"
)

// benchExperiment runs one harness experiment per iteration.
func benchExperiment(b *testing.B, run func(experiments.Params) (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := run(experiments.Params{})
		if err != nil {
			b.Fatal(err)
		}
		if len(tab.Rows) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkE1_Fig1Lookup(b *testing.B)        { benchExperiment(b, experiments.E1Fig1) }
func BenchmarkE2_IndexConstruction(b *testing.B) { benchExperiment(b, experiments.E2IndexConstruction) }
func BenchmarkE3_LookupHops(b *testing.B)        { benchExperiment(b, experiments.E3LookupHops) }
func BenchmarkE4_PrimitiveStrategies(b *testing.B) {
	benchExperiment(b, experiments.E4PrimitiveStrategies)
}
func BenchmarkE5_Conjunction(b *testing.B)   { benchExperiment(b, experiments.E5Conjunction) }
func BenchmarkE6_Optional(b *testing.B)      { benchExperiment(b, experiments.E6Optional) }
func BenchmarkE7_Union(b *testing.B)         { benchExperiment(b, experiments.E7Union) }
func BenchmarkE8_FilterPushing(b *testing.B) { benchExperiment(b, experiments.E8FilterPushing) }
func BenchmarkE9_Fig4EndToEnd(b *testing.B)  { benchExperiment(b, experiments.E9Fig4EndToEnd) }

// BenchmarkE9_FlightRecorder is E9 with the flight recorder and invariant
// monitors armed (128-event rings); the delta against the plain E9 run is
// the always-on recording overhead.
func BenchmarkE9_FlightRecorder(b *testing.B) {
	benchExperiment(b, func(p experiments.Params) (*experiments.Table, error) {
		p.Flight = 128
		return experiments.E9Fig4EndToEnd(p)
	})
}
func BenchmarkE10_VsRDFPeers(b *testing.B)   { benchExperiment(b, experiments.E10VsRDFPeers) }
func BenchmarkE11_Churn(b *testing.B)        { benchExperiment(b, experiments.E11Churn) }
func BenchmarkE12_JoinSite(b *testing.B)     { benchExperiment(b, experiments.E12JoinSite) }
func BenchmarkE13_QoSJoinSite(b *testing.B)  { benchExperiment(b, experiments.E13QoSJoinSite) }
func BenchmarkE14_LookupCache(b *testing.B)  { benchExperiment(b, experiments.E14LookupCache) }
func BenchmarkE15_RangeQueries(b *testing.B) { benchExperiment(b, experiments.E15RangeQueries) }
func BenchmarkE16_ZipfStorm(b *testing.B)    { benchExperiment(b, experiments.E16ZipfStorm) }

// ---- distributed query micro-benchmarks with domain metrics ----

// benchDeployment builds a reusable deployment for query benchmarks.
func benchDeployment(b *testing.B, persons, providers, index int) (*overlay.System, *workload.Dataset, simnet.VTime) {
	b.Helper()
	d := workload.Generate(workload.Config{
		Persons: persons, Providers: providers, AvgKnows: 4,
		ZipfS: 1.3, KnowsNothingFraction: 0.3, Seed: 9,
	})
	sys := overlay.NewSystem(overlay.Config{Bits: 24, Replication: 2,
		Net: simnet.Config{BaseLatency: 2 * time.Millisecond, Bandwidth: 1 << 20}})
	now := simnet.VTime(0)
	for i := 0; i < index; i++ {
		var err error
		_, now, err = sys.AddIndexNode(simnet.Addr(fmt.Sprintf("idx-%02d", i)), now)
		if err != nil {
			b.Fatal(err)
		}
	}
	now = sys.Converge(now)
	for _, name := range d.Providers() {
		var err error
		_, now, err = sys.AddStorageNode(simnet.Addr(name), now)
		if err != nil {
			b.Fatal(err)
		}
		now, err = sys.Publish(simnet.Addr(name), d.ByProvider[name], now)
		if err != nil {
			b.Fatal(err)
		}
	}
	return sys, d, now
}

func benchQuery(b *testing.B, opts dqp.Options, mkQuery func(*workload.Dataset) string) {
	b.Helper()
	sys, d, now := benchDeployment(b, 200, 10, 8)
	query := mkQuery(d)
	e := dqp.NewEngine(sys, opts)
	var last dqp.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats, done, err := e.Query("D00", query, now)
		if err != nil {
			b.Fatal(err)
		}
		now = done
		last = stats
	}
	b.ReportMetric(float64(last.Messages), "msgs/query")
	b.ReportMetric(float64(last.Bytes)/1024, "KiB/query")
	b.ReportMetric(float64(last.ResponseTime)/float64(time.Millisecond), "vms/query")
}

func BenchmarkQueryPrimitiveBasic(b *testing.B) {
	benchQuery(b, dqp.Options{Strategy: dqp.StrategyBasic},
		func(d *workload.Dataset) string { return workload.QueryPrimitive(d.PopularPerson) })
}

func BenchmarkQueryPrimitiveFreqChain(b *testing.B) {
	benchQuery(b, dqp.Options{Strategy: dqp.StrategyFreqChain},
		func(d *workload.Dataset) string { return workload.QueryPrimitive(d.PopularPerson) })
}

func BenchmarkQueryFig4Baseline(b *testing.B) {
	benchQuery(b, dqp.BaselineOptions(),
		func(d *workload.Dataset) string { return workload.QueryFig4("Smith") })
}

func BenchmarkQueryFig4Optimized(b *testing.B) {
	benchQuery(b, dqp.DefaultOptions(),
		func(d *workload.Dataset) string { return workload.QueryFig4("Smith") })
}

// ---- substrate micro-benchmarks ----

func BenchmarkSPARQLParse(b *testing.B) {
	q := workload.QueryFig4("Smith")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sparql.Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAlgebraTranslateOptimize(b *testing.B) {
	q, err := sparql.Parse(workload.QueryFilter("Smith"))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		op, err := algebra.Translate(q)
		if err != nil {
			b.Fatal(err)
		}
		optimize.Optimize(op, optimize.DefaultOptions())
	}
}

func BenchmarkGraphMatch(b *testing.B) {
	d := workload.Generate(workload.Config{Persons: 500, Providers: 1, Seed: 2})
	g := d.UnionGraph()
	pat := rdf.Triple{S: rdf.NewVar("s"), P: rdf.NewIRI(workload.FOAF + "knows"), O: d.PopularPerson}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Match(pat)
	}
}

func BenchmarkLocalEvalFig4(b *testing.B) {
	d := workload.Generate(workload.Config{Persons: 300, Providers: 1, KnowsNothingFraction: 0.4, Seed: 2})
	g := d.UnionGraph()
	q, err := sparql.Parse(workload.QueryFig4("Smith"))
	if err != nil {
		b.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		b.Fatal(err)
	}
	op = optimize.Optimize(op, optimize.Options{PushFilters: true, ReorderBGP: true,
		Estimator: optimize.GraphEstimator{G: g}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Eval(op, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSolutionJoin(b *testing.B) {
	mk := func(n int, vars ...string) eval.Solutions {
		var s eval.Solutions
		for i := 0; i < n; i++ {
			m := eval.NewBinding()
			for _, v := range vars {
				m[v] = rdf.NewIRI(fmt.Sprintf("http://x/%s/%d", v, i%50))
			}
			s = append(s, m)
		}
		return s
	}
	l := mk(500, "x", "y")
	r := mk(500, "y", "z")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.Join(l, r)
	}
}

func BenchmarkChordLookup(b *testing.B) {
	net := simnet.New(simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20})
	refs := make([]chord.Ref, 0, 64)
	seen := map[chord.ID]bool{}
	for i := 0; len(refs) < 64; i++ {
		addr := simnet.Addr(fmt.Sprintf("n%03d", i))
		id := chord.HashID(string(addr), 24)
		if seen[id] {
			continue
		}
		seen[id] = true
		refs = append(refs, chord.Ref{ID: id, Addr: addr})
	}
	nodes, now, err := chord.BuildRing(net, refs, chord.Config{Bits: 24}, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, done, err := nodes[i%len(nodes)].Lookup(chord.HashID(fmt.Sprint(i), 24), now)
		if err != nil {
			b.Fatal(err)
		}
		now = done
	}
}

func BenchmarkPublishTriples(b *testing.B) {
	d := workload.Generate(workload.Config{Persons: 50, Providers: 1, Seed: 4})
	triples := d.ByProvider["D00"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		sys := overlay.NewSystem(overlay.Config{Bits: 24, Replication: 2,
			Net: simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20}})
		now := simnet.VTime(0)
		for j := 0; j < 6; j++ {
			var err error
			_, now, err = sys.AddIndexNode(simnet.Addr(fmt.Sprintf("idx-%d", j)), now)
			if err != nil {
				b.Fatal(err)
			}
		}
		now = sys.Converge(now)
		_, now, err := sys.AddStorageNode("D00", now)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := sys.Publish("D00", triples, now); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(triples)), "triples/op")
}

func BenchmarkNTriplesParse(b *testing.B) {
	d := workload.Generate(workload.Config{Persons: 200, Providers: 1, Seed: 6})
	var sb strings.Builder
	if err := rdf.WriteNTriples(&sb, d.ByProvider["D00"]); err != nil {
		b.Fatal(err)
	}
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rdf.ParseNTriples(strings.NewReader(doc)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllExperiments regenerates the full EXPERIMENTS.md table set
// in one go (the `benchmark` command's workload).
func BenchmarkRunAllExperiments(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(io.Discard, experiments.Params{}); err != nil {
			b.Fatal(err)
		}
	}
}
