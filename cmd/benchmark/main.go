// Command benchmark runs the evaluation harness: every experiment of the
// DESIGN.md per-experiment index (E1–E12), printing one table per
// experiment. This regenerates the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchmark                      # run everything
//	benchmark -run E4              # run one experiment
//	benchmark -list                # list experiments
//	benchmark -json                # machine-readable output for plot/diff tooling
//	benchmark -run E9 -faultrate 0.01 -seed 7   # E9 under 1% deterministic message loss
//	benchmark -run E16 -adaptive   # hot-key replication on (E16 compares both modes itself)
//
// With -cpuprofile or -memprofile the run writes pprof profiles of the
// harness itself — the data behind the hot-path work in the adhoclint
// alloc rule and the binary wire codec:
//
//	benchmark -run E9 -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"adhocshare/internal/experiments"
)

func main() {
	run := flag.String("run", "", "run a single experiment by ID (e.g. E4)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Int64("seed", 0, "master seed XORed into every experiment stream (0 = the published tables)")
	faultRate := flag.Float64("faultrate", 0, "per-message-leg loss probability injected after deployment setup (0 = fault-free)")
	adaptive := flag.Bool("adaptive", false, "enable workload-adaptive hot-key replication in every deployment the experiments build")
	concurrent := flag.Bool("concurrent", false, "run every remote handler on its own goroutine (simnet ConcurrentDelivery); tables stay byte-identical to a serial run")
	asJSON := flag.Bool("json", false, "emit one JSON document instead of plain-text tables")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof allocation profile taken after the run to this file")
	flag.Parse()

	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
	err = runHarness(*run, *list, *asJSON, experiments.Params{Seed: *seed, FaultRate: *faultRate, Adaptive: *adaptive, Concurrent: *concurrent})
	// Flush the profiles even on a failed run: a crash-adjacent profile is
	// still worth reading, and os.Exit skips deferred writers.
	if perr := stopProfiles(); perr != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", perr)
		if err == nil {
			err = perr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
}

// startProfiles begins CPU profiling and arranges the allocation profile,
// returning a stop function that finishes both.
func startProfiles(cpuPath, memPath string) (func() error, error) {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cpuFile = f
	}
	return func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				first = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if first == nil {
					first = err
				}
				return first
			}
			runtime.GC() // settle live objects so the profile shows real retention
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil && first == nil {
				first = err
			}
			if err := f.Close(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}, nil
}

// runHarness dispatches the selected mode of the command.
func runHarness(run string, list, asJSON bool, p experiments.Params) error {
	if list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	if asJSON {
		var ids []string
		if run != "" {
			ids = []string{run}
		}
		tables, err := experiments.Collect(p, ids...)
		if err != nil {
			return err
		}
		return experiments.WriteJSON(os.Stdout, tables)
	}
	if run != "" {
		return experiments.RunOne(os.Stdout, run, p)
	}
	return experiments.RunAll(os.Stdout, p)
}
