// Command benchmark runs the evaluation harness: every experiment of the
// DESIGN.md per-experiment index (E1–E12), printing one table per
// experiment. This regenerates the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchmark            # run everything
//	benchmark -run E4    # run one experiment
//	benchmark -list      # list experiments
//	benchmark -json      # machine-readable output for plot/diff tooling
package main

import (
	"flag"
	"fmt"
	"os"

	"adhocshare/internal/experiments"
)

func main() {
	run := flag.String("run", "", "run a single experiment by ID (e.g. E4)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Int64("seed", 0, "master seed XORed into every experiment stream (0 = the published tables)")
	asJSON := flag.Bool("json", false, "emit one JSON document instead of plain-text tables")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	p := experiments.Params{Seed: *seed}
	if *asJSON {
		var ids []string
		if *run != "" {
			ids = []string{*run}
		}
		tables, err := experiments.Collect(p, ids...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		if err := experiments.WriteJSON(os.Stdout, tables); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		return
	}
	if *run != "" {
		if err := experiments.RunOne(os.Stdout, *run, p); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		return
	}
	if err := experiments.RunAll(os.Stdout, p); err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
}
