// Command benchmark runs the evaluation harness: every experiment of the
// DESIGN.md per-experiment index (E1–E12), printing one table per
// experiment. This regenerates the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchmark            # run everything
//	benchmark -run E4    # run one experiment
//	benchmark -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"

	"adhocshare/internal/experiments"
)

func main() {
	run := flag.String("run", "", "run a single experiment by ID (e.g. E4)")
	list := flag.Bool("list", false, "list experiments and exit")
	seed := flag.Int64("seed", 0, "master seed XORed into every experiment stream (0 = the published tables)")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	p := experiments.Params{Seed: *seed}
	if *run != "" {
		if err := experiments.RunOne(os.Stdout, *run, p); err != nil {
			fmt.Fprintln(os.Stderr, "benchmark:", err)
			os.Exit(1)
		}
		return
	}
	if err := experiments.RunAll(os.Stdout, p); err != nil {
		fmt.Fprintln(os.Stderr, "benchmark:", err)
		os.Exit(1)
	}
}
