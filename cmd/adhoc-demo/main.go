// Command adhoc-demo assembles a complete ad-hoc Semantic Web data
// sharing deployment — index ring, storage providers with generated FOAF
// data — and runs a set of SPARQL queries against it, printing solutions
// and the exact distributed-execution costs (messages, bytes, virtual
// response time) for each strategy.
//
// Usage:
//
//	adhoc-demo                       # default deployment and query tour
//	adhoc-demo -persons 500 -providers 20 -index 16
//	adhoc-demo -query 'SELECT ?x WHERE { ... }'
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"adhocshare/internal/dqp"
	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/workload"
)

func main() {
	persons := flag.Int("persons", 200, "people in the generated social network")
	providers := flag.Int("providers", 10, "storage nodes (data providers)")
	index := flag.Int("index", 8, "index nodes on the Chord ring")
	seed := flag.Int64("seed", 1, "workload seed")
	queryArg := flag.String("query", "", "run this single query instead of the tour")
	initiator := flag.String("initiator", "D00", "node issuing the queries")
	dataFile := flag.String("data", "", "load triples from a Turtle or N-Triples file instead of generating FOAF data (distributed over providers by subject)")
	flag.Parse()

	var d *workload.Dataset
	if *dataFile != "" {
		var err error
		d, err = loadDataset(*dataFile, *providers)
		check(err)
	} else {
		d = workload.Generate(workload.Config{
			Persons: *persons, Providers: *providers, AvgKnows: 4,
			ZipfS: 1.3, KnowsNothingFraction: 0.3, Seed: *seed,
		})
	}
	sys := overlay.NewSystem(overlay.Config{
		Bits: 24, Replication: 2,
		Net: simnet.Config{BaseLatency: 2 * time.Millisecond, Bandwidth: 1 << 20},
	})
	now := simnet.VTime(0)
	fmt.Printf("building overlay: %d index nodes, %d providers, %d triples\n",
		*index, *providers, d.TotalTriples())
	for i := 0; i < *index; i++ {
		var err error
		_, now, err = sys.AddIndexNode(simnet.Addr(fmt.Sprintf("idx-%02d", i)), now)
		check(err)
	}
	now = sys.Converge(now)
	for _, name := range d.Providers() {
		var err error
		_, now, err = sys.AddStorageNode(simnet.Addr(name), now)
		check(err)
		now, err = sys.Publish(simnet.Addr(name), d.ByProvider[name], now)
		check(err)
	}
	fmt.Printf("published: %d postings across %d location tables (virtual time %v)\n\n",
		sys.TotalPostings(), len(sys.IndexNodes()), now.Duration())

	queries := map[string]string{}
	switch {
	case *queryArg != "":
		queries["custom"] = *queryArg
	case *dataFile != "":
		queries["all-triples"] = workload.QueryAll()
	default:
		queries["fig5-primitive"] = workload.QueryPrimitive(d.PopularPerson)
		queries["fig6-conjunction"] = workload.QueryConjunction()
		queries["fig7-optional"] = workload.QueryOptional("Smith")
		queries["fig8-union"] = workload.QueryUnion(d.PopularPerson)
		queries["fig9-filter"] = workload.QueryFilter("Smith")
		queries["fig4-full"] = workload.QueryFig4("Smith")
	}

	strategies := []struct {
		name string
		opts dqp.Options
	}{
		{"basic     ", dqp.BaselineOptions()},
		{"optimized ", dqp.DefaultOptions()},
	}
	for name, q := range queries {
		fmt.Printf("--- %s ---\n%s\n", name, q)
		for _, s := range strategies {
			e := dqp.NewEngine(sys, s.opts)
			res, stats, done, err := e.Query(simnet.Addr(*initiator), q, now)
			check(err)
			now = done
			fmt.Printf("  %s %d solutions | %d msgs | %.1f KiB total | %.1f KiB solutions | %.1f ms\n",
				s.name, len(res.Solutions), stats.Messages,
				float64(stats.Bytes)/1024,
				float64(stats.ShippedSolutionBytes())/1024,
				float64(stats.ResponseTime)/float64(time.Millisecond))
		}
		// show up to three solutions from the optimized run
		e := dqp.NewEngine(sys, dqp.DefaultOptions())
		res, _, done, err := e.Query(simnet.Addr(*initiator), q, now)
		check(err)
		now = done
		for i, b := range res.Solutions {
			if i == 3 {
				fmt.Printf("  ... %d more\n", len(res.Solutions)-3)
				break
			}
			fmt.Printf("  %s\n", b)
		}
		fmt.Println()
	}
}

// loadDataset reads a Turtle (or N-Triples, a Turtle subset) file and
// partitions the triples across providers by subject hash, modelling each
// subject's description living with one provider.
func loadDataset(path string, providers int) (*workload.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	triples, err := rdf.ParseTurtle(f)
	if err != nil {
		return nil, err
	}
	d := &workload.Dataset{ByProvider: map[string][]rdf.Triple{}}
	for i := 0; i < providers; i++ {
		d.ByProvider[fmt.Sprintf("D%02d", i)] = nil
	}
	for _, t := range triples {
		h := 0
		for _, c := range t.S.Value {
			h = h*31 + int(c)
		}
		if h < 0 {
			h = -h
		}
		name := fmt.Sprintf("D%02d", h%providers)
		d.ByProvider[name] = append(d.ByProvider[name], t)
	}
	return d, nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhoc-demo:", err)
		os.Exit(1)
	}
}
