// Command sparql-explain parses a SPARQL query and prints its abstract
// syntax, the translated SPARQL algebra expression and the optimized plan
// (filter pushing + heuristic join reordering) — the first three stages of
// the paper's Fig. 3 workflow, offline.
//
// Usage:
//
//	sparql-explain 'SELECT ?x WHERE { ... }'
//	sparql-explain -f query.rq
//	echo 'ASK { ... }' | sparql-explain
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
	"adhocshare/internal/sparql/optimize"
)

func main() {
	file := flag.String("f", "", "read the query from a file instead of the argument")
	noPush := flag.Bool("no-push", false, "disable filter pushing")
	noReorder := flag.Bool("no-reorder", false, "disable join reordering")
	flag.Parse()

	query, err := readQuery(*file, flag.Args())
	if err != nil {
		fail(err)
	}
	q, err := sparql.Parse(query)
	if err != nil {
		fail(err)
	}
	fmt.Printf("form:       %s\n", q.Form)
	if len(q.SelectVars) > 0 {
		fmt.Printf("projection: ?%s\n", strings.Join(q.SelectVars, " ?"))
	}
	if q.Star {
		fmt.Println("projection: *")
	}
	for _, g := range q.From {
		fmt.Printf("from:       <%s>\n", g)
	}
	for _, g := range q.FromNamed {
		fmt.Printf("from named: <%s>\n", g)
	}
	if q.Where != nil {
		fmt.Printf("where:      %s\n", q.Where)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		fail(err)
	}
	fmt.Printf("algebra:    %s\n", op)
	opt := optimize.Optimize(op, optimize.Options{
		PushFilters: !*noPush,
		ReorderBGP:  !*noReorder,
	})
	fmt.Printf("optimized:  %s\n", opt)
	fmt.Printf("operators:  %d → %d\n", algebra.CountOps(op), algebra.CountOps(opt))
}

func readQuery(file string, args []string) (string, error) {
	if file != "" {
		b, err := os.ReadFile(file)
		return string(b), err
	}
	if len(args) > 0 {
		return strings.Join(args, " "), nil
	}
	b, err := io.ReadAll(os.Stdin)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sparql-explain:", err)
	os.Exit(1)
}
