// Command sparql-explain parses a SPARQL query and prints its abstract
// syntax, the translated SPARQL algebra expression and the optimized plan
// (filter pushing + heuristic join reordering) — the first three stages of
// the paper's Fig. 3 workflow, offline.
//
// With -trace the query additionally *executes* against the fixed-seed E9
// demo deployment (the Fig. 4 FOAF workload over 8 index nodes) with
// VTime tracing enabled, and the resulting distributed trace prints as a
// causality tree; -trace-json writes the same trace in Chrome trace_event
// format (load it at https://ui.perfetto.dev). -strategy picks the
// per-pattern strategy, making the Fig. 5 topologies directly visible:
// basic renders a star, chain and freq-chain render linked lists.
//
// Usage:
//
//	sparql-explain 'SELECT ?x WHERE { ... }'
//	sparql-explain -f query.rq
//	echo 'ASK { ... }' | sparql-explain
//	sparql-explain -trace -strategy chain 'SELECT ?x WHERE { ... }'
//	sparql-explain -trace -faultrate 0.01 'SELECT ?x WHERE { ... }'
//	sparql-explain -trace-json trace.json 'SELECT ?x WHERE { ... }'
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"adhocshare/internal/dqp"
	"adhocshare/internal/experiments"
	"adhocshare/internal/flight"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
	"adhocshare/internal/sparql/optimize"
	"adhocshare/internal/trace"
)

func main() {
	file := flag.String("f", "", "read the query from a file instead of the argument")
	noPush := flag.Bool("no-push", false, "disable filter pushing")
	noReorder := flag.Bool("no-reorder", false, "disable join reordering")
	doTrace := flag.Bool("trace", false, "execute on the E9 demo deployment and print the distributed trace tree")
	traceJSON := flag.String("trace-json", "", "execute on the E9 demo deployment and write a Chrome trace_event JSON file")
	metrics := flag.Bool("metrics", false, "execute on the E9 demo deployment and print the per-(node, method) metrics snapshot")
	profile := flag.Bool("profile", false, "execute on the E9 demo deployment and print the query's per-stage critical-path profile")
	incident := flag.Bool("incident", false, "execute with the flight recorder and invariant monitors armed and print an incident report")
	strategy := flag.String("strategy", "chain", "per-pattern strategy for -trace/-trace-json (basic, chain, freq-chain)")
	seed := flag.Int64("seed", 0, "master seed of the demo deployment (0 = the EXPERIMENTS.md workload)")
	faultRate := flag.Float64("faultrate", 0, "per-message-leg loss probability injected into the demo deployment after setup (0 = fault-free)")
	flag.Parse()

	query, err := readQuery(*file, flag.Args())
	if err != nil {
		fail(err)
	}
	q, err := sparql.Parse(query)
	if err != nil {
		fail(err)
	}
	fmt.Printf("form:       %s\n", q.Form)
	if len(q.SelectVars) > 0 {
		fmt.Printf("projection: ?%s\n", strings.Join(q.SelectVars, " ?"))
	}
	if q.Star {
		fmt.Println("projection: *")
	}
	for _, g := range q.From {
		fmt.Printf("from:       <%s>\n", g)
	}
	for _, g := range q.FromNamed {
		fmt.Printf("from named: <%s>\n", g)
	}
	if q.Where != nil {
		fmt.Printf("where:      %s\n", q.Where)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		fail(err)
	}
	fmt.Printf("algebra:    %s\n", op)
	opt := optimize.Optimize(op, optimize.Options{
		PushFilters: !*noPush,
		ReorderBGP:  !*noReorder,
	})
	fmt.Printf("optimized:  %s\n", opt)
	fmt.Printf("operators:  %d → %d\n", algebra.CountOps(op), algebra.CountOps(opt))

	if *doTrace || *traceJSON != "" || *metrics || *profile || *incident {
		opts := tracedOpts{tree: *doTrace, metrics: *metrics, profile: *profile,
			incident: *incident, jsonPath: *traceJSON}
		if err := runTraced(query, *strategy, *seed, *faultRate, opts); err != nil {
			fail(err)
		}
	}
}

// tracedOpts selects the renderings of one traced demo execution.
type tracedOpts struct {
	tree     bool
	metrics  bool
	profile  bool
	incident bool
	jsonPath string
}

// runTraced executes the query on the E9 demo deployment with tracing on
// and renders the recorded spans as requested. -incident additionally arms
// the flight recorder and the invariant monitors and prints an incident
// report merging the per-node event logs with the query's trace tree.
func runTraced(query, strategy string, seed int64, faultRate float64, opts tracedOpts) error {
	st, err := dqp.ParseStrategy(strategy)
	if err != nil {
		return err
	}
	p := experiments.Params{Seed: seed, FaultRate: faultRate}
	var spans []trace.Span
	var stats dqp.Stats
	var ft *experiments.FlightTrace
	if opts.incident {
		ft, err = experiments.TraceQueryFlight(p, st, "D00", query)
		if err != nil {
			return err
		}
		spans, stats = ft.Spans, ft.Stats
	} else {
		spans, stats, err = experiments.TraceQuery(p, st, "D00", query)
		if err != nil {
			return err
		}
	}
	fmt.Printf("\ntrace:      %d spans, %s strategy, %s\n\n", len(spans), st, stats.String())
	if opts.tree {
		if err := trace.WriteTree(os.Stdout, spans); err != nil {
			return err
		}
	}
	if opts.metrics {
		fmt.Println("per-(node, method) metrics:")
		if err := trace.WriteMetrics(os.Stdout, trace.BuildMetrics(spans)); err != nil {
			return err
		}
		fmt.Println()
	}
	if opts.profile {
		if err := dqp.WriteStageProfile(os.Stdout, dqp.BuildStageProfile(spans, traceID(spans))); err != nil {
			return err
		}
		fmt.Println()
	}
	if opts.incident {
		fmt.Printf("invariant monitors: %d violations\n", len(ft.Violations))
		inc := flight.BuildIncident(ft.Monitors.Recorder(),
			fmt.Sprintf("demo query (%s strategy)", st), ft.Violations, nil,
			16, ft.Query, spans)
		if err := inc.Write(os.Stdout); err != nil {
			return err
		}
	}
	if opts.jsonPath != "" {
		f, err := os.Create(opts.jsonPath)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, spans); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s (load at https://ui.perfetto.dev)\n", opts.jsonPath)
	}
	return nil
}

// traceID returns the single nonzero trace identifier among the spans of
// one traced demo execution.
func traceID(spans []trace.Span) uint64 {
	for _, s := range spans {
		if s.Query != 0 {
			return s.Query
		}
	}
	return 0
}

func readQuery(file string, args []string) (string, error) {
	if file != "" {
		b, err := os.ReadFile(file)
		return string(b), err
	}
	if len(args) > 0 {
		return strings.Join(args, " "), nil
	}
	b, err := io.ReadAll(os.Stdin)
	return string(b), err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sparql-explain:", err)
	os.Exit(1)
}
