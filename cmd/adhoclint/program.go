package main

import (
	"go/ast"
	"go/types"
	"sort"
)

// Program is the whole-program view the interprocedural rules (lock-order,
// rpc-protocol, payload-size and the interprocedural half of lock-blocking)
// analyze: every package selected on the command line, loaded and
// type-checked against one shared FileSet. Packages that were pulled in
// only as dependencies contribute type information (via the loader cache)
// but are not themselves analyzed or reported on.
type Program struct {
	Pkgs    []*Package
	loader  *loader
	modPath string

	graph *callGraph // built lazily by CallGraph
}

// newProgram assembles a program over the analyzed packages. The loader
// must be the one that loaded them (its cache resolves cross-package
// types).
func newProgram(l *loader, pkgs []*Package) *Program {
	return &Program{Pkgs: pkgs, loader: l, modPath: l.modPath}
}

// simnetTypes returns the checked internal/simnet package, or nil when the
// analyzed program never imports it. The rpc-protocol rule anchors its
// Payload/Network lookups here.
func (prog *Program) simnetTypes() *types.Package {
	return prog.loader.typesFor(prog.modPath + "/internal/simnet")
}

// loadedPackages returns every successfully checked module package the
// loader has seen — the analyzed packages plus their module-internal
// dependencies — sorted by import path. The rpc-protocol rule collects its
// protocol facts (method constants, dispatch switches, fabric call sites)
// over this wider set so that linting one package still sees the handlers
// and constants declared elsewhere; diagnostics are only attached to
// analyzed packages.
func (prog *Program) loadedPackages() []*Package {
	paths := make([]string, 0, len(prog.loader.cache))
	for path, got := range prog.loader.cache {
		if got.pkg != nil && got.pkg.Info != nil {
			paths = append(paths, path)
		}
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		out = append(out, prog.loader.cache[path].pkg)
	}
	return out
}

// analyzedSet indexes the packages diagnostics may be reported on.
func (prog *Program) analyzedSet() map[*Package]bool {
	set := make(map[*Package]bool, len(prog.Pkgs))
	for _, p := range prog.Pkgs {
		set[p] = true
	}
	return set
}

// CallGraph returns (building on first use) the static call graph over the
// analyzed packages.
func (prog *Program) CallGraph() *callGraph {
	if prog.graph == nil {
		prog.graph = buildCallGraph(prog)
	}
	return prog.graph
}

// eachFuncDecl visits every function declaration of the analyzed
// production files together with its types object. Test files are skipped:
// they are not type-checked, and the whole-program rules all need types.
func (prog *Program) eachFuncDecl(visit func(p *Package, decl *ast.FuncDecl, obj *types.Func)) {
	for _, p := range prog.Pkgs {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				visit(p, fn, obj)
			}
		}
	}
}
