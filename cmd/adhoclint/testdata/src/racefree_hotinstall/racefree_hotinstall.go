// Package racefree_hotinstall reproduces the one real finding the
// racefree rule surfaced on the production tree: overlay.IndexNode
// installed its adaptive hot-key state with a plain pointer store
// (EnableAdaptive) while HandleCall read the pointer on the lookup path —
// a latent race the serial fabric could never exhibit. The fix gave the
// pointer its own mutex (hotMu + hotRef); this fixture pins the pre-fix
// shape so the rule keeps catching it.
package racefree_hotinstall

import (
	"sync"

	"adhocshare/internal/simnet"
)

// Req is a minimal payload.
type Req struct{ N int }

// SizeBytes implements simnet.Payload.
func (Req) SizeBytes() int { return 8 }

// hotState mirrors the internally-locked detector state: its own fields
// are safe, the pointer to it is what races.
type hotState struct {
	mu       sync.Mutex
	counters map[string]int
}

// Node is the pre-fix IndexNode shape.
type Node struct {
	hot *hotState

	// deadline has the same unguarded shape but carries an ignore
	// directive at its write, exercising the shared ignore grammar.
	deadline simnet.VTime
}

// HandleCall reads the hot pointer on every dispatch.
func (n *Node) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	if n.hot != nil {
		n.hot.mu.Lock()
		n.hot.counters[method]++
		n.hot.mu.Unlock()
	}
	if at > n.deadline {
		return nil, at, nil
	}
	return Req{}, at + 1, nil
}

// EnableAdaptive installs the detector with a bare store — the racing
// write.
func (n *Node) EnableAdaptive() {
	n.hot = &hotState{counters: make(map[string]int)}
}

// SetDeadline is the same bug shape, suppressed the standard way.
func (n *Node) SetDeadline(d simnet.VTime) {
	//adhoclint:ignore racefree(fixture: demonstrates suppression; the driver sets the deadline before serving)
	n.deadline = d
}
