package vtime

import (
	"adhocshare/internal/simnet"
	"adhocshare/internal/trace"
)

// RecordAsync fans out over Recorder calls only: Record is fabric-neutral
// by contract (see trace_knowledge.go), so the vtime rule stays silent —
// no charged time escapes the critical path.
func RecordAsync(rec trace.Recorder, spans []trace.Span) {
	for _, s := range spans {
		s := s
		go rec.Record(s)
	}
}

// TracedFanOut derives child contexts from the branch index and records
// spans inside the branches: clean — the only captured write is indexed
// by the branch parameter, and Record moves no modeled time.
func (n *Node) TracedFanOut(peers []simnet.Addr, rec trace.Recorder, tc trace.TraceContext, at simnet.VTime) simnet.VTime {
	ctxs := make([]trace.TraceContext, len(peers))
	res, done := simnet.Parallel(len(peers), 4, func(i int) (int, simnet.VTime, error) {
		ctxs[i] = tc.Child(uint64(i))
		_, d, err := n.net.Call(n.addr, peers[i], MethodPing, Ping{}, at)
		rec.Record(trace.Span{Query: ctxs[i].Query, ID: ctxs[i].Span, Start: int64(at), End: int64(d)})
		return 0, d, err
	})
	_ = res
	return done
}

// TracedFanOutBad reassigns the captured recorder inside a branch: trace
// types grant no exemption from the order-independence requirement.
func (n *Node) TracedFanOutBad(peers []simnet.Addr, rec trace.Recorder, at simnet.VTime) {
	res, done := simnet.Parallel(len(peers), 4, func(i int) (int, simnet.VTime, error) {
		rec = nil // want "writes captured"
		_, d, err := n.net.Call(n.addr, peers[i], MethodPing, Ping{}, at)
		return 0, d, err
	})
	_, _ = res, done
}
