// Package vtime exercises the vtime-accounting rule: concurrency must
// flow through simnet.Parallel, handlers must thread the charged VTime,
// and Parallel branch bodies must not depend on completion order.
package vtime

import (
	"sync"

	"adhocshare/internal/simnet"
)

// MethodPing is the package's only wire method.
const MethodPing = "vt.ping"

// Ping is a minimal payload.
type Ping struct{ N int }

func (Ping) SizeBytes() int { return 8 }

// Node is a simnet participant.
type Node struct {
	net  *simnet.Network
	addr simnet.Addr
}

// FanOutRaw spawns goroutines over fabric calls: their branch time never
// joins the caller's critical path.
func (n *Node) FanOutRaw(peers []simnet.Addr, at simnet.VTime) {
	var wg sync.WaitGroup
	for _, p := range peers {
		p := p
		wg.Add(1)
		go func() { // want "use simnet.Parallel"
			defer wg.Done()
			_, _, _ = n.net.Call(n.addr, p, MethodPing, Ping{}, at) // want "is discarded"
		}()
	}
	wg.Wait()
}

// pingOne performs one fabric call.
func (n *Node) pingOne(to simnet.Addr, at simnet.VTime) simnet.VTime {
	_, done, err := n.net.Call(n.addr, to, MethodPing, Ping{}, at)
	if err != nil {
		return at
	}
	return done
}

// FanOutIndirect reaches the fabric through a helper: still flagged.
func (n *Node) FanOutIndirect(peers []simnet.Addr, at simnet.VTime) {
	for _, p := range peers {
		p := p
		go n.pingOne(p, at) // want "use simnet.Parallel"
	}
}

// LogAsync is allowed: the goroutine never touches the fabric.
func (n *Node) LogAsync(msgs chan string) {
	go func() {
		msgs <- "done"
	}()
}

// FanOutParallel uses the sanctioned combinator: clean.
func (n *Node) FanOutParallel(peers []simnet.Addr, at simnet.VTime) simnet.VTime {
	res, done := simnet.Parallel(len(peers), 4, func(i int) (int, simnet.VTime, error) {
		_, d, err := n.net.Call(n.addr, peers[i], MethodPing, Ping{}, at)
		return 0, d, err
	})
	_ = res
	return done
}

// CollectBad accumulates into captured state: the total depends on
// completion order the deterministic scheduler does not define.
func (n *Node) CollectBad(peers []simnet.Addr, at simnet.VTime) int {
	total := 0
	res, _ := simnet.Parallel(len(peers), 2, func(i int) (int, simnet.VTime, error) {
		total += i // want "writes captured"
		return 0, at, nil
	})
	_ = res
	return total
}

// CollectGood writes only the branch's own slot: clean.
func (n *Node) CollectGood(peers []simnet.Addr, at simnet.VTime) []int {
	out := make([]int, len(peers))
	res, _ := simnet.Parallel(len(peers), 2, func(i int) (int, simnet.VTime, error) {
		out[i] = i
		return 0, at, nil
	})
	_ = res
	return out
}

// HandleCall dispatches vt.ping.
func (n *Node) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	if method == MethodPing {
		return Ping{}, at + 1, nil // charged time threaded: clean
	}
	return Ping{}, simnet.VTime(7), nil // want "unrelated to the charged time"
}

// Notify drops the whole Send result, charged VTime included.
func (n *Node) Notify(to simnet.Addr, at simnet.VTime) {
	n.net.Send(n.addr, to, MethodPing, Ping{}, at) // want "is discarded"
}

// Relay threads the charged done value: clean.
func (n *Node) Relay(to simnet.Addr, at simnet.VTime) (simnet.VTime, error) {
	done, err := n.net.Send(n.addr, to, MethodPing, Ping{}, at)
	return done, err
}
