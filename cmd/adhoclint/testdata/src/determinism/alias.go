package determinism

import (
	mrand "math/rand"
	clock "time"
)

// aliased imports are tracked by import path, not local name

func BadAliasRand() int {
	return mrand.Int() // want "global math/rand.Int"
}

func BadAliasTime() clock.Time {
	return clock.Now() // want "time.Now in internal package"
}
