// Package determinism is the determinism rule fixture: internal non-test
// code must not read wall clocks or the global math/rand source.
package determinism

import (
	"math/rand"
	"time"
)

// Good uses injected or locally seeded randomness and virtual durations.
func Good(rng *rand.Rand) int {
	r := rand.New(rand.NewSource(7)) // constructors stay allowed
	d := 2 * time.Millisecond        // durations are values, not clock reads
	return r.Intn(10) + rng.Intn(int(d))
}

func BadNow() int64 {
	return time.Now().UnixNano() // want "time.Now in internal package"
}

func BadSleep() {
	time.Sleep(time.Millisecond) // want "time.Sleep in internal package"
}

func BadGlobalRand() int {
	return rand.Intn(4) // want "global math/rand.Intn"
}

func BadShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle"
}
