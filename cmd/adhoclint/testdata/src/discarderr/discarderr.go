// Package discarderr is the discarded-error rule fixture: `_ =` must not
// silently drop error values in non-test code.
package discarderr

import "errors"

func mayFail() error          { return errors.New("boom") }
func value() (int, error)     { return 1, errors.New("no") }
func pair() (int, int, error) { return 1, 2, errors.New("no") }

func Good() (int, error) {
	if err := mayFail(); err != nil {
		return 0, err
	}
	v, err := value()
	_ = v // non-error discards stay legal
	return v, err
}

func BadSingleCall() {
	_ = mayFail() // want "error discarded with _ ="
}

func BadVar() {
	err := mayFail()
	_ = err // want "error discarded with _ ="
}

func BadTuple() int {
	v, _ := value() // want "error result 2 of the call is discarded"
	return v
}

func BadTripleTuple() int {
	a, b, _ := pair() // want "error result 3 of the call is discarded"
	return a + b
}
