// Package lockorder exercises the whole-program lock-order analysis and
// the interprocedural half of lock-blocking.
package lockorder

import "sync"

// A and B form a lock-order cycle: (*A).Bump holds A.mu and locks B.mu
// directly, while (*B).Sync holds B.mu and reaches A.mu through touchA.
type A struct {
	mu sync.Mutex
	n  int
}

type B struct {
	mu sync.Mutex
	a  *A
	n  int
}

func (a *A) Bump(b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle"
	b.n++
	b.mu.Unlock()
	a.n++
	a.mu.Unlock()
}

func (b *B) Sync() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.touchA()
}

// touchA acquires A.mu: the edge B.mu → A.mu exists only transitively.
func (b *B) touchA() {
	b.a.mu.Lock()
	b.a.n++
	b.a.mu.Unlock()
}

// Net mimics the simnet fabric: Call is a blocking operation by name.
type Net struct{}

func (Net) Call(x int) int { return x }

type S struct {
	mu  sync.Mutex
	net Net
	n   int
}

// Publish blocks interprocedurally: push does a fabric call.
func (s *S) Publish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.push() // want "may block"
}

func (s *S) push() {
	s.net.Call(s.n)
}

// Async is clean: the goroutine body runs outside the critical section.
func (s *S) Async() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.push()
}

// Report re-acquires the held mutex through a same-receiver call.
func (s *S) Report() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size() // want "locks it again"
}

func (s *S) size() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// Requeue re-locks directly.
func (s *S) Requeue() {
	s.mu.Lock()
	s.mu.Lock() // want "self-deadlock"
	s.n++
	s.mu.Unlock()
	s.mu.Unlock()
}

// R is clean: recursive read locks of an RWMutex do not deadlock alone.
type R struct {
	mu sync.RWMutex
	n  int
}

func (r *R) Peek() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.view()
}

func (r *R) view() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}
