package payloadsize

import "adhocshare/internal/trace"

// Traced carries zero-width trace metadata: TC need not be counted,
// because trace.TraceContext's SizeBytes is 0 by contract.
type Traced struct {
	Name string
	TC   trace.TraceContext
}

func (t Traced) SizeBytes() int { return len(t.Name) }

// TracedBad still has to count its ordinary fields; only the trace
// metadata is exempt.
type TracedBad struct {
	Name string
	N    int
	TC   trace.TraceContext
}

func (t TracedBad) SizeBytes() int { return len(t.Name) } // want "does not account for field N"
