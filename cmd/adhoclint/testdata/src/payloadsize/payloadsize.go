// Package payloadsize exercises the SizeBytes completeness audit.
package payloadsize

// intw is the wire width of an int field.
func intw(int) int { return 4 }

// Good accounts for every field.
type Good struct {
	Name string
	N    int
}

func (g Good) SizeBytes() int { return len(g.Name) + intw(g.N) }

// Bad forgets two fields.
type Bad struct {
	Name string
	N    int
	Flag bool
}

func (b Bad) SizeBytes() int { return len(b.Name) } // want "does not account for fields N, Flag"

// Excused declares why a field is uncounted.
type Excused struct {
	Name string
	hits int
}

//adhoclint:ignore payload-size hits is local bookkeeping, never serialized
func (e Excused) SizeBytes() int { return len(e.Name) }

// Batch counts its items by ranging over them.
type Batch struct {
	Items []Good
}

func (b Batch) SizeBytes() int {
	n := 4
	for _, it := range b.Items {
		n += it.SizeBytes()
	}
	return n
}

// Blob has a non-struct receiver: nothing to cross-check.
type Blob []byte

func (b Blob) SizeBytes() int { return len(b) }
