// Package faultpath exercises the fault-soundness rule: discarded fabric
// errors need a declared fire-and-forget disposition, mutate-then-send
// paths need a compensation declaration, Parallel fan-outs declare
// abort-all or collect-partial, retried methods with mutating handlers
// declare idempotent on their constants, and Retry closures must depart
// at the attempt-time parameter.
package faultpath

import (
	"adhocshare/internal/simnet"
)

// Wire methods dispatched by Node.HandleCall.
const (
	MethodGet = "fp.get" // read-only handler: retried freely
	MethodPut = "fp.put" // want "is retried from"
	//adhoclint:faultpath(idempotent, the handler deduplicates re-deliveries by sequence number)
	MethodInc = "fp.inc" // mutating handler, declared idempotent: clean
	MethodLog = "fp.log" // fire-and-forget notification target
)

// Msg is a minimal payload.
type Msg struct {
	Key string
	N   int
}

// SizeBytes implements simnet.Payload.
func (m Msg) SizeBytes() int { return len(m.Key) + 8 }

// IncReq carries a deduplication sequence number.
type IncReq struct{ Seq uint64 }

// SizeBytes implements simnet.Payload.
func (IncReq) SizeBytes() int { return 8 }

// Node is a simnet participant.
type Node struct {
	net   *simnet.Network
	addr  simnet.Addr
	count int
	vals  map[string]int
	seen  map[uint64]bool
}

// HandleCall dispatches the node's methods.
func (n *Node) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	switch method {
	case MethodGet:
		return Msg{N: n.count}, at + 1, nil
	case MethodPut:
		r := req.(Msg)
		n.vals[r.Key] = r.N // re-delivered puts re-apply blindly
		return Msg{}, at + 1, nil
	case MethodInc:
		r := req.(IncReq)
		if !n.seen[r.Seq] {
			n.seen[r.Seq] = true
			n.count++
		}
		return Msg{}, at + 1, nil
	case MethodLog:
		return Msg{}, at + 1, nil
	}
	return nil, at, nil
}

// Notify drops the whole Send result without declaring a disposition.
func (n *Node) Notify(to simnet.Addr, at simnet.VTime) {
	n.net.Send(n.addr, to, MethodLog, Msg{}, at) // want "discarded with no declared fault disposition"
}

// NotifyDeclared is a documented fire-and-forget: clean.
func (n *Node) NotifyDeclared(to simnet.Addr, at simnet.VTime) {
	//adhoclint:faultpath(fire-and-forget, best-effort log notification; loss is repaired by the next periodic sweep)
	n.net.Send(n.addr, to, MethodLog, Msg{}, at)
}

// NotifyMisdeclared carries a disposition that cannot cover a discarded
// error.
func (n *Node) NotifyMisdeclared(to simnet.Addr, at simnet.VTime) {
	//adhoclint:faultpath(abort-all)
	n.net.Send(n.addr, to, MethodLog, Msg{}, at) // want "does not cover a discarded error"
}

// NotifyBlankErr keeps the VTime but blanks the error.
func (n *Node) NotifyBlankErr(to simnet.Addr, at simnet.VTime) simnet.VTime {
	done, _ := n.net.Send(n.addr, to, MethodLog, Msg{}, at) // want "discarded with no declared fault disposition"
	return done
}

// directiveLint holds deliberately malformed declarations.
func directiveLint() {
	//adhoclint:faultpath(retryable, made-up disposition) // want "unknown faultpath disposition"
	_ = 0
	//adhoclint:faultpath(idempotent) // want "requires a reason"
	_ = 1
}

// Install mutates node state and then propagates a fallible send's error:
// nothing rolls the counter back when the send fails.
func (n *Node) Install(to simnet.Addr, at simnet.VTime) error {
	n.count++
	_, _, err := n.net.Call(n.addr, to, MethodPut, Msg{}, at) // want "caller-visible state is mutated"
	return err
}

// register and registerVia carry the mutation through a call chain.
func (n *Node) register(key string) { n.vals[key] = 1 }

func (n *Node) registerVia(key string) { n.register(key) }

// InstallVia mutates through helpers: the finding names the chain.
func (n *Node) InstallVia(to simnet.Addr, at simnet.VTime) error {
	n.registerVia("k")
	_, _, err := n.net.Call(n.addr, to, MethodPut, Msg{}, at) // want "registerVia"
	return err
}

// InstallCompensated declares its rollback: clean.
//adhoclint:faultpath(compensated, the counter is decremented again when the send fails)
func (n *Node) InstallCompensated(to simnet.Addr, at simnet.VTime) error {
	n.count++
	_, _, err := n.net.Call(n.addr, to, MethodPut, Msg{}, at)
	if err != nil {
		n.count--
	}
	return err
}

// bump is a declared failure-benign counter.
//adhoclint:faultpath(benign, statistics counter; a failed operation wastes one count)
func (n *Node) bump() { n.count++ }

// Observe mutates only through a benign helper: clean.
func (n *Node) Observe(to simnet.Addr, at simnet.VTime) error {
	n.bump()
	_, _, err := n.net.Call(n.addr, to, MethodGet, Msg{}, at)
	return err
}

// Build mutates only a fresh local: clean.
func (n *Node) Build(to simnet.Addr, at simnet.VTime) error {
	m := map[string]int{}
	m["x"] = 1
	_, _, err := n.net.Call(n.addr, to, MethodGet, Msg{}, at)
	return err
}

// FanOutUndeclared leaves the fan-out's failure semantics unstated.
func (n *Node) FanOutUndeclared(peers []simnet.Addr, at simnet.VTime) simnet.VTime {
	_, done := simnet.Parallel(len(peers), 2, func(i int) (int, simnet.VTime, error) { // want "must declare its failure semantics"
		_, d, err := n.net.Call(n.addr, peers[i], MethodGet, Msg{}, at)
		return 0, d, err
	})
	return done
}

// FanOutDeclared aborts on the first failed branch: clean.
func (n *Node) FanOutDeclared(peers []simnet.Addr, at simnet.VTime) simnet.VTime {
	//adhoclint:faultpath(abort-all)
	_, done := simnet.Parallel(len(peers), 2, func(i int) (int, simnet.VTime, error) {
		_, d, err := n.net.Call(n.addr, peers[i], MethodGet, Msg{}, at)
		return 0, d, err
	})
	return done
}

// FanOutMisdeclared carries a disposition that does not apply to fan-out.
func (n *Node) FanOutMisdeclared(peers []simnet.Addr, at simnet.VTime) simnet.VTime {
	//adhoclint:faultpath(idempotent, the branches deduplicate)
	_, done := simnet.Parallel(len(peers), 2, func(i int) (int, simnet.VTime, error) { // want "does not apply to a Parallel fan-out"
		_, d, err := n.net.Call(n.addr, peers[i], MethodGet, Msg{}, at)
		return 0, d, err
	})
	return done
}

// RetryStaleTime pins the departure to the outer time, so failed attempts
// never charge their FailTimeout to the critical path.
func (n *Node) RetryStaleTime(to simnet.Addr, at simnet.VTime) (simnet.VTime, error) {
	_, done, err := simnet.Retry(3, at, func(t simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return n.net.Call(n.addr, to, MethodGet, Msg{}, at) // want "ignores the closure's attempt-time parameter"
	})
	return done, err
}

// RetryGood threads the attempt time: clean.
func (n *Node) RetryGood(to simnet.Addr, at simnet.VTime) (simnet.VTime, error) {
	_, done, err := simnet.Retry(3, at, func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return n.net.Call(n.addr, to, MethodGet, Msg{}, at)
	})
	return done, err
}

// StoreAll retries the mutating put against each peer through a hoisted
// closure: MethodPut's handler re-applies blindly, so the rule demands an
// idempotent declaration on the constant (reported there).
func (n *Node) StoreAll(peers []simnet.Addr, at simnet.VTime) (simnet.VTime, error) {
	now := at
	var to simnet.Addr
	put := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return n.net.Call(n.addr, to, MethodPut, Msg{Key: "k", N: 1}, at)
	}
	for _, p := range peers {
		to = p
		_, done, err := simnet.Retry(3, now, put)
		now = done
		if err != nil {
			return now, err
		}
	}
	return now, nil
}

// IncAll retries the deduplicating increment: the constant's idempotent
// declaration covers it.
func (n *Node) IncAll(to simnet.Addr, at simnet.VTime) (simnet.VTime, error) {
	_, done, err := simnet.Retry(3, at, func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return n.net.Call(n.addr, to, MethodInc, IncReq{Seq: 1}, at)
	})
	return done, err
}
