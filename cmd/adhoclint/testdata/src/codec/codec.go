// Package codec exercises the codec-coverage rule: every wire type of the
// RPC vocabularies must be gob-registered and either carry a
// field-complete binary codec wired into the dispatch, or an explicit
// gobfallback directive.
package codec

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"

	"adhocshare/internal/simnet"
)

// Wire methods of the fixture vocabulary.
const (
	MethodGood   = "cx.good"
	MethodDrop   = "cx.drop"
	MethodHalf   = "cx.half"
	MethodLoose  = "cx.loose"
	MethodUnreg  = "cx.unreg"
	MethodPlain  = "cx.plain"
	MethodBare   = "cx.bare"
	MethodDoc    = "cx.doc"
	MethodBoth   = "cx.both"
	MethodSecret = "cx.secret"
	MethodCall   = "cx.call"
)

var errShort = errors.New("codec: short input")

// Ack is the shared response payload, with a complete codec.
type Ack struct{ N uint64 }

func (Ack) SizeBytes() int { return 8 }

func (r Ack) EncodeBinary(dst []byte) []byte {
	return binary.AppendUvarint(dst, r.N)
}

func (r *Ack) DecodeBinary(b []byte) ([]byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return b, errShort
	}
	r.N = v
	return b[n:], nil
}

// GoodReq has a complete, field-covering codec: no findings.
type GoodReq struct {
	A uint64
	B string
}

func (GoodReq) SizeBytes() int { return 16 }

func (r GoodReq) EncodeBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, r.A)
	return append(dst, r.B...)
}

func (r *GoodReq) DecodeBinary(b []byte) ([]byte, error) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return b, errShort
	}
	r.A = v
	r.B = string(b[n:])
	return nil, nil
}

// DropReq's encoder forgets field B.
type DropReq struct {
	A uint64
	B uint64
}

func (DropReq) SizeBytes() int { return 16 }

func (r DropReq) EncodeBinary(dst []byte) []byte { // want "does not mention field B"
	return binary.AppendUvarint(dst, r.A)
}

func (r *DropReq) DecodeBinary(b []byte) ([]byte, error) {
	r.A, _ = binary.Uvarint(b)
	r.B = 0
	return nil, nil
}

// HalfReq has an encoder but no decoder, and no decode dispatch case.
type HalfReq struct{ A uint64 } // want "no DecodeBinary" want "decodeBinary dispatch"

func (HalfReq) SizeBytes() int { return 8 }

func (r HalfReq) EncodeBinary(dst []byte) []byte {
	return binary.AppendUvarint(dst, r.A)
}

// LooseSigReq's codec methods have the wrong shapes.
type LooseSigReq struct{ A uint64 }

func (LooseSigReq) SizeBytes() int { return 8 }

func (LooseSigReq) EncodeBinary() []byte { return nil } // want "must have signature"

func (*LooseSigReq) DecodeBinary(b []byte) error { return nil } // want "must have signature"

// UnregReq has a complete codec but no gob registration.
type UnregReq struct{ A uint64 } // want "not gob-registered"

func (UnregReq) SizeBytes() int { return 8 }

func (r UnregReq) EncodeBinary(dst []byte) []byte {
	return binary.AppendUvarint(dst, r.A)
}

func (r *UnregReq) DecodeBinary(b []byte) ([]byte, error) {
	r.A, _ = binary.Uvarint(b)
	return nil, nil
}

// PlainReq rides gob with neither codec nor directive.
type PlainReq struct{ A uint64 } // want "rides gob reflection"

func (PlainReq) SizeBytes() int { return 8 }

// BareReq's directive names no reason.
//
//adhoclint:gobfallback
type BareReq struct{ A uint64 } // want "bare //adhoclint:gobfallback"

func (BareReq) SizeBytes() int { return 8 }

// DocReq documents its fallback: no findings.
//
//adhoclint:gobfallback carries future fields of unknown shape
type DocReq struct{ A uint64 }

func (DocReq) SizeBytes() int { return 8 }

// BothReq carries a codec and claims the fallback at the same time.
//
//adhoclint:gobfallback stale claim
type BothReq struct{ A uint64 } // want "both a binary codec"

func (BothReq) SizeBytes() int { return 8 }

func (r BothReq) EncodeBinary(dst []byte) []byte {
	return binary.AppendUvarint(dst, r.A)
}

func (r *BothReq) DecodeBinary(b []byte) ([]byte, error) {
	r.A, _ = binary.Uvarint(b)
	return nil, nil
}

// SecretReq hides a field from gob.
//
//adhoclint:gobfallback exercises the unexported-field check
type SecretReq struct {
	A      uint64
	hidden int // want "unexported field hidden"
}

func (SecretReq) SizeBytes() int { return 8 }

// CallReq enters the inventory through a fabric call site.
type CallReq struct{ A uint64 }

func (CallReq) SizeBytes() int { return 8 }

func (r CallReq) EncodeBinary(dst []byte) []byte {
	return binary.AppendUvarint(dst, r.A)
}

func (r *CallReq) DecodeBinary(b []byte) ([]byte, error) {
	r.A, _ = binary.Uvarint(b)
	return nil, nil
}

// CallResp enters the inventory through the caller's response assertion.
//
//adhoclint:gobfallback response shape still settling
type CallResp struct{ A uint64 }

func (CallResp) SizeBytes() int { return 8 }

// Node is a simnet participant.
type Node struct {
	net  *simnet.Network
	addr simnet.Addr
}

// HandleCall puts every request type into the wire inventory.
func (n *Node) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	switch method {
	case MethodGood:
		r, _ := req.(GoodReq)
		_ = r
		return Ack{N: 1}, at, nil
	case MethodDrop:
		r, _ := req.(DropReq)
		_ = r
		return Ack{N: 1}, at, nil
	case MethodHalf:
		r, _ := req.(HalfReq)
		_ = r
		return Ack{N: 1}, at, nil
	case MethodLoose:
		r, _ := req.(LooseSigReq)
		_ = r
		return Ack{N: 1}, at, nil
	case MethodUnreg:
		r, _ := req.(UnregReq)
		_ = r
		return Ack{N: 1}, at, nil
	case MethodPlain:
		r, _ := req.(PlainReq)
		_ = r
		return Ack{N: 1}, at, nil
	case MethodBare:
		r, _ := req.(BareReq)
		_ = r
		return Ack{N: 1}, at, nil
	case MethodDoc:
		r, _ := req.(DocReq)
		_ = r
		return Ack{N: 1}, at, nil
	case MethodBoth:
		r, _ := req.(BothReq)
		_ = r
		return Ack{N: 1}, at, nil
	case MethodSecret:
		r, _ := req.(SecretReq)
		_ = r
		return Ack{N: 1}, at, nil
	}
	return nil, at, nil
}

// Caller widens the inventory with a call-site request and response.
func (n *Node) Caller(to simnet.Addr, at simnet.VTime) (uint64, simnet.VTime, error) {
	resp, done, err := n.net.Call(n.addr, to, MethodCall, CallReq{A: 1}, at)
	if err != nil {
		return 0, at, err
	}
	return resp.(CallResp).A, done, nil
}

// The codec half: EncodePayload marks this package as the codec package;
// binaryTag and decodeBinary are the dispatch functions the rule
// cross-checks.

func init() {
	gob.Register(Ack{})
	gob.Register(GoodReq{})
	gob.Register(DropReq{})
	gob.Register(HalfReq{})
	gob.Register(LooseSigReq{})
	gob.Register(PlainReq{})
	gob.Register(BareReq{})
	gob.Register(DocReq{})
	gob.Register(BothReq{})
	gob.Register(SecretReq{})
	gob.Register(CallReq{})
	gob.Register(CallResp{})
}

// EncodePayload is the codec entry point.
func EncodePayload(p simnet.Payload) ([]byte, error) {
	if tag, ok := binaryTag(p); ok {
		dst := []byte{tag}
		return dst, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// binaryTag names the binary-coded payloads.
func binaryTag(p simnet.Payload) (byte, bool) {
	switch p.(type) {
	case Ack:
		return 1, true
	case GoodReq:
		return 2, true
	case DropReq:
		return 3, true
	case HalfReq:
		return 4, true
	case LooseSigReq:
		return 5, true
	case UnregReq:
		return 6, true
	case BothReq:
		return 7, true
	case CallReq:
		return 8, true
	}
	return 0, false
}

// decodeBinary reverses the binary payloads.
func decodeBinary(tag byte, data []byte) (simnet.Payload, error) {
	switch tag {
	case 1:
		var v Ack
		_, err := v.DecodeBinary(data)
		return v, err
	case 2:
		var v GoodReq
		_, err := v.DecodeBinary(data)
		return v, err
	case 3:
		var v DropReq
		_, err := v.DecodeBinary(data)
		return v, err
	case 5:
		var v LooseSigReq
		_ = data
		return v, nil
	case 6:
		var v UnregReq
		_, err := v.DecodeBinary(data)
		return v, err
	case 7:
		var v BothReq
		_, err := v.DecodeBinary(data)
		return v, err
	case 8:
		var v CallReq
		_, err := v.DecodeBinary(data)
		return v, err
	}
	return nil, errors.New("codec: unknown tag")
}
