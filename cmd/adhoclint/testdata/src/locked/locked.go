// Package locked is the lock-blocking rule fixture: no channel operations
// or fabric calls (Call/Send/Transfer) while a mutex is held.
package locked

import "sync"

type fabric struct{}

func (fabric) Call(x int) int     { return x }
func (fabric) Transfer(x int) int { return x }

type node struct {
	mu  sync.Mutex
	out chan int
	net fabric
}

func (n *node) Good(v int) int {
	n.mu.Lock()
	x := v + 1
	n.mu.Unlock()
	n.out <- x // fine: lock already released
	return n.net.Call(x)
}

func (n *node) BadSend(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.out <- v // want "channel send while n.mu is held"
}

func (n *node) BadRecv() int {
	n.mu.Lock()
	v := <-n.out // want "channel receive while n.mu is held"
	n.mu.Unlock()
	return v
}

func (n *node) BadCall(v int) {
	n.mu.Lock()
	n.net.Call(v) // want "simnet RPC"
	n.mu.Unlock()
}

func (n *node) BadTransfer(v int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.net.Transfer(v) // want "simnet data transfer"
}

func (n *node) BadSelect() {
	n.mu.Lock()
	defer n.mu.Unlock()
	select { // want "select while n.mu is held"
	case v := <-n.out:
		n.out <- v
	default:
	}
}
