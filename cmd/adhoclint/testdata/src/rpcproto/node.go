package rpcproto

import "adhocshare/internal/simnet"

// Node is a minimal simnet participant.
type Node struct {
	net  *simnet.Network
	addr simnet.Addr
	vals map[int]int
}

// HandleCall dispatches the package's methods.
func (n *Node) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	switch method {
	case MethodGet:
		r := req.(GetReq)
		return GetResp{Val: n.vals[r.Key]}, at, nil
	case MethodPut:
		r := req.(PutReq)
		for _, e := range r.Entries {
			n.vals[e.K] = e.V
		}
		return GetResp{}, at, nil
	case "rpc.bogus": // want "matches no Method"
		return GetResp{}, at, nil
	}
	return nil, at, nil
}

// Fetch agrees with the handler on both payload types.
func (n *Node) Fetch(to simnet.Addr, at simnet.VTime) int {
	resp, _, err := n.net.Call(n.addr, to, MethodGet, GetReq{Key: 1}, at)
	if err != nil {
		return 0
	}
	return resp.(GetResp).Val
}

// FetchWrongReq sends the wrong request type.
func (n *Node) FetchWrongReq(to simnet.Addr, at simnet.VTime) {
	_, _, err := n.net.Call(n.addr, to, MethodGet, PutReq{}, at) // want "sends rpcproto.PutReq but its handler asserts rpcproto.GetReq"
	if err != nil {
		return
	}
}

// FetchWrongResp asserts the response to a type the handler never returns.
func (n *Node) FetchWrongResp(to simnet.Addr, at simnet.VTime) int {
	resp, _, err := n.net.Call(n.addr, to, MethodGet, GetReq{Key: 2}, at) // want "asserted to rpcproto.ShipChunk but its handler returns rpcproto.GetResp"
	if err != nil {
		return 0
	}
	return resp.(ShipChunk).N
}

// Nudge invokes the orphaned method.
func (n *Node) Nudge(to simnet.Addr, at simnet.VTime) {
	if _, err := n.net.Send(n.addr, to, MethodOrphan, OrphanReq{N: 1}, at); err != nil {
		return
	}
}

// Ship is clean: Transfer runs no handler.
func (n *Node) Ship(to simnet.Addr, at simnet.VTime) {
	if _, err := n.net.Transfer(n.addr, to, MethodShip, ShipChunk{N: 2}, at); err != nil {
		return
	}
}

// Poke passes the method as a raw literal.
func (n *Node) Poke(to simnet.Addr, at simnet.VTime) {
	if _, err := n.net.Send(n.addr, to, "rpc.poke", simnet.Bytes(1), at); err != nil { // want "string literal"
		return
	}
}
