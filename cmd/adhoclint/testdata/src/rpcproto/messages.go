// Package rpcproto exercises the rpc-protocol cross-check.
package rpcproto

// Wire method names.
const (
	MethodGet = "rpc.get"
	MethodPut = "rpc.put"
	// MethodOrphan is invoked over Send but dispatched nowhere.
	MethodOrphan = "rpc.orphan" // want "invoked via Call/Send but no HandleCall dispatches it"
	// MethodShip is transfer-only: no handler required.
	MethodShip     = "rpc.ship"
	MethodPutAlias = "rpc.put" // want "duplicates wire string"
)

// GetReq asks for one value.
type GetReq struct{ Key int }

func (GetReq) SizeBytes() int { return 8 }

// GetResp carries one value.
type GetResp struct{ Val int }

func (GetResp) SizeBytes() int { return 8 }

// PutReq ships a batch of entries.
type PutReq struct{ Entries []Entry }

func (r PutReq) SizeBytes() int { return 16 * len(r.Entries) }

// Entry is a component of PutReq: no SizeBytes of its own needed.
type Entry struct{ K, V int }

// ShipChunk is moved with Transfer.
type ShipChunk struct{ N int }

func (ShipChunk) SizeBytes() int { return 4 }

// OrphanReq belongs to the orphaned method.
type OrphanReq struct{ N int }

func (OrphanReq) SizeBytes() int { return 4 }

// Stray can never go on the wire.
type Stray struct{ X int } // want "neither implements simnet.Payload"
