// Package clean is the zero-findings fixture: idiomatic code following
// every convention, including one deliberate violation suppressed by an
// adhoclint:ignore directive.
package clean

import (
	"errors"
	"sync"
	"time"
)

type store struct {
	cfg int // before mu: set once at construction

	mu sync.RWMutex
	m  map[string]int
}

func newStore(cfg int) *store {
	return &store{cfg: cfg, m: map[string]int{}}
}

func (s *store) Get(k string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.m[k]
	return v, ok
}

func (s *store) Put(k string, v int) {
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

func (s *store) Config() int { return s.cfg }

func (s *store) Fill(kv map[string]int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, v := range kv {
		s.putLocked(k, v)
	}
}

func (s *store) putLocked(k string, v int) { s.m[k] = v }

func pace() {
	time.Sleep(time.Millisecond) //adhoclint:ignore determinism deliberate wall-clock pacing to prove the directive works
}

func fanOut(work []string, s *store) {
	var wg sync.WaitGroup
	for i, w := range work {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			s.Put(w, i)
		}(i, w)
	}
	wg.Wait()
}

func checkAll(s *store, keys []string) error {
	for _, k := range keys {
		if _, ok := s.Get(k); !ok {
			return errors.New("missing " + k)
		}
	}
	return nil
}

func use() error {
	s := newStore(1)
	pace()
	fanOut([]string{"a", "b"}, s)
	return checkAll(s, []string{"a", "b"})
}
