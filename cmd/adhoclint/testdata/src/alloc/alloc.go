// Package alloc exercises the hot-path allocation rule: functions
// reachable from HandleCall dispatch or from fabric calls run once per
// message, and must not pay avoidable heap allocations there.
package alloc

import (
	"fmt"

	"adhocshare/internal/flight"
	"adhocshare/internal/simnet"
)

// MethodEcho is the package's only wire method.
const MethodEcho = "al.echo"

// Req is a minimal request payload.
type Req struct{ Names []string }

func (Req) SizeBytes() int { return 8 }

// Resp is a minimal response payload.
type Resp struct{ Labels []string }

func (Resp) SizeBytes() int { return 8 }

// Node is a simnet participant.
type Node struct {
	net  *simnet.Network
	addr simnet.Addr
	flt  *flight.Recorder
}

// HandleCall dispatches; everything it statically reaches is hot.
func (n *Node) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	switch method {
	case MethodEcho:
		r, _ := req.(Req)
		_ = n.joinNames(r)
		_ = n.countNames(r)
		n.describe(r)
		n.visitAll(r)
		_ = n.brandNew(r)
		_ = n.debugDump(r)
		_ = n.pairs(r)
		_ = n.echoSized(r)
		n.recordAll(r)
		return n.echo(r), at, nil
	}
	return nil, at, nil
}

// recordAll emits one flight event per name on the hot path. Flight
// callees are fabric-neutral and hot-path-safe by contract
// (flight_knowledge.go): the allocation walk does not descend into Emit,
// and the all-value-type Event literal costs nothing — no findings here.
func (n *Node) recordAll(r Req) {
	for _, name := range r.Names {
		n.flt.Emit(flight.Event{Node: name, Kind: flight.KindDeliver, Method: MethodEcho})
	}
}

// echo grows an unsized slice across the request's names.
func (n *Node) echo(r Req) Resp {
	labels := []string{}
	for _, name := range r.Names {
		labels = append(labels, label(name)) // want "grows by append"
	}
	return Resp{Labels: labels}
}

// echoSized presizes with the loop's trip count: not flagged.
func (n *Node) echoSized(r Req) Resp {
	labels := make([]string, 0, len(r.Names))
	for _, name := range r.Names {
		labels = append(labels, name)
	}
	return Resp{Labels: labels}
}

// label formats one per-message string through fmt's reflection.
func label(name string) string {
	return fmt.Sprintf("label-%s", name) // want "fmt.Sprintf"
}

// joinNames accumulates a string, re-allocating it on every step.
func (n *Node) joinNames(r Req) string {
	s := ""
	for _, name := range r.Names {
		s += name // want "string"
	}
	sep := ""
	sep = sep + s + "!" // want "accumulated string"
	return sep
}

// countNames populates an unsized map with one entry per name.
func (n *Node) countNames(r Req) map[string]int {
	counts := map[string]int{}
	for _, name := range r.Names {
		counts[name] = counts[name] + 1 // want "map counts is populated"
	}
	return counts
}

// record is a sink with an empty-interface parameter.
func record(v any) { _ = v }

// describe boxes a concrete int into record's any parameter.
func (n *Node) describe(r Req) {
	record(r.SizeBytes()) // want "boxed into an empty interface"
}

// visitAll allocates one closure per iteration.
func (n *Node) visitAll(r Req) {
	for _, name := range r.Names {
		f := func() string { return name } // want "closure allocated inside a loop"
		_ = f()
	}
}

// pairs appends inside a nested loop: the growth is quadratic in intent,
// not presizable from one trip count, so the rule stays quiet.
func (n *Node) pairs(r Req) []string {
	var out []string
	for _, a := range r.Names {
		for _, b := range r.Names {
			out = append(out, a+b)
		}
	}
	return out
}

// brandNew formats per message but documents why it is tolerated.
func (n *Node) brandNew(r Req) string {
	return fmt.Sprintf("v%d", r.SizeBytes()) //adhoclint:ignore alloc(one-off version banner, measured cold)
}

// debugDump is deliberately cold reporting: the directive removes it from
// the hot set and stops reachability through it.
//
//adhoclint:hotexempt invoked only from the operator dump path
func (n *Node) debugDump(r Req) string {
	s := ""
	for _, name := range r.Names {
		s += dumpLabel(name)
	}
	return s
}

// dumpLabel is only reachable through the exempt dump: never hot.
func dumpLabel(name string) string {
	return fmt.Sprintf("dump-%s", name)
}

// Probe performs a fabric call itself, so it is hot without any handler.
func (n *Node) Probe(to simnet.Addr, at simnet.VTime) simnet.VTime {
	_, done, err := n.net.Call(n.addr, to, MethodEcho, Req{}, at)
	if err != nil {
		return at
	}
	note := fmt.Sprintf("probe done at %d", int64(done)) // want "fmt.Sprintf"
	_ = note
	return done
}

// ProbeAll reaches the fabric through Probe: hot via the fixpoint.
func (n *Node) ProbeAll(peers []simnet.Addr, at simnet.VTime) {
	tags := []string{}
	for _, p := range peers {
		tags = append(tags, string(p)) // want "grows by append"
		at = n.Probe(p, at)
	}
	_ = tags
}

// FanOut hands its branch literal straight to simnet.Parallel: the
// sanctioned fan-out pattern, not a flagged per-iteration closure.
func (n *Node) FanOut(peers []simnet.Addr, at simnet.VTime) simnet.VTime {
	for round := 0; round < 2; round++ {
		res, done := simnet.Parallel(len(peers), 4, func(i int) (int, simnet.VTime, error) {
			return 0, n.Probe(peers[i], at), nil
		})
		_ = res
		at = done
	}
	return at
}

// Setup never reaches the fabric: its allocations are cold and unflagged.
func Setup(names []string) map[string]int {
	m := map[string]int{}
	for _, n := range names {
		m[n] = len(n)
	}
	return m
}
