// Package goroutines is the goroutine-hygiene rule fixture: go func
// literals must be tied to a WaitGroup, done-channel or context.
package goroutines

import "sync"

func GoodWaitGroup(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
}

func GoodResultChannel() <-chan int {
	out := make(chan int, 1)
	go func() { out <- compute() }()
	return out
}

func GoodDoneChannel(done <-chan struct{}) {
	go func() {
		<-done
		work()
	}()
}

func GoodContext(ctx interface{ Done() <-chan struct{} }) {
	go func() {
		select {
		case <-ctx.Done():
		}
	}()
}

func GoodNamed() {
	go work() // named callee owns its lifecycle; literals only
}

func Bad() {
	go func() { // want "no visible lifecycle"
		work()
	}()
}

func BadLoop(n int) {
	for i := 0; i < n; i++ {
		go func(i int) { // want "no visible lifecycle"
			work()
		}(i)
	}
}

func work()        {}
func compute() int { return 1 }
