// Package wireiso exercises the wire-isolation rule: payloads crossing
// the simnet fabric must be fresh, deep-copied, wire-derived or
// documented immutable — never aliases of mutable node state.
package wireiso

import (
	"sort"

	"adhocshare/internal/flight"
	"adhocshare/internal/simnet"
)

// Wire methods.
const (
	MethodGet    = "iso.get"
	MethodPut    = "iso.put"
	MethodShip   = "iso.ship"
	MethodEvents = "iso.events"
)

// Row is a reference-free posting.
type Row struct{ K, V int }

// RowsResp ships a batch of rows.
type RowsResp struct{ Rows []Row }

func (r RowsResp) SizeBytes() int { return 16 * len(r.Rows) }

// Table is a lookup table, immutable after construction by convention:
// every mutation goes through Clone.
//
//adhoclint:wireimmutable producers clone before writing
type Table map[string]int

func (t Table) SizeBytes() int { return 9 * len(t) }

// Clone returns an independent copy.
func (t Table) Clone() Table {
	out := make(Table, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// EventsResp ships recent flight-recorder events. flight.Event is
// reference-free by contract (strings and integers only — see
// flight_knowledge.go), so events are wire-safe in any payload position;
// only the slice holding them must be fresh.
type EventsResp struct{ Events []flight.Event }

func (e EventsResp) SizeBytes() int { return 64 * len(e.Events) }

// Node holds mutable state a payload must never alias.
type Node struct {
	net  *simnet.Network
	addr simnet.Addr
	rows []Row
	tbl  Table
	flt  *flight.Recorder
}

// Bump mutates a row in place: n.rows is live mutable state, so sharing
// it on the wire is never safe.
func (n *Node) Bump(i int) {
	n.rows[i].V += 1
}

// HandleCall dispatches the package's methods.
func (n *Node) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	switch method {
	case MethodGet:
		return RowsResp{Rows: n.rows}, at, nil // want "alias mutable node state"
	case MethodPut:
		r := req.(RowsResp)
		n.rows = r.Rows // want "request-derived reference"
		return RowsResp{Rows: append([]Row(nil), n.rows...)}, at, nil
	case MethodShip:
		r := req.(RowsResp)
		n.rows = append([]Row(nil), r.Rows...) // copied on receive: fine
		return RowsResp{Rows: r.Rows}, at, nil // forwarding the request is ownership transfer
	case MethodEvents:
		// LastN returns a fresh copy of reference-free events: clean.
		return EventsResp{Events: n.flt.LastN(string(n.addr), 8)}, at, nil
	}
	return nil, at, nil
}

// Rows returns a defensive copy (the summary cache marks it fresh).
func (n *Node) Rows() []Row {
	return append([]Row(nil), n.rows...)
}

// PushCopy ships the copy returned by Rows: clean.
func (n *Node) PushCopy(to simnet.Addr, at simnet.VTime) {
	n.net.Call(n.addr, to, MethodPut, RowsResp{Rows: n.Rows()}, at)
}

// Push builds a fresh payload but keeps mutating it after the send.
func (n *Node) Push(to simnet.Addr, at simnet.VTime) simnet.VTime {
	out := append([]Row(nil), n.rows...)
	_, done, err := n.net.Call(n.addr, to, MethodPut, RowsResp{Rows: out}, at)
	if err != nil {
		return done
	}
	out[0] = Row{}                                                      // want "mutated after send"
	sort.Slice(out, func(i, j int) bool { return out[i].K < out[j].K }) // want "sorted in place after send"
	return done
}

// PushFrozen shares live rows on purpose; the escape hatch documents why.
func (n *Node) PushFrozen(to simnet.Addr, at simnet.VTime) {
	//adhoclint:ignore wireiso(rows are frozen for the duration of the handover)
	n.net.Call(n.addr, to, MethodPut, RowsResp{Rows: n.rows}, at)
}

// ship forwards rows it was handed: the copy obligation lands on callers.
func (n *Node) ship(to simnet.Addr, rows []Row, at simnet.VTime) {
	n.net.Call(n.addr, to, MethodShip, RowsResp{Rows: rows}, at)
}

// ShipFresh feeds ship a fresh copy: clean.
func (n *Node) ShipFresh(to simnet.Addr, at simnet.VTime) {
	n.ship(to, append([]Row(nil), n.rows...), at)
}

// ShipLive feeds ship the live row slice: flagged at this call site.
func (n *Node) ShipLive(to simnet.Addr, at simnet.VTime) {
	n.ship(to, n.rows, at) // want "flows to the wire"
}

// SendTable ships the documented-immutable table without copying: clean.
func (n *Node) SendTable(to simnet.Addr, at simnet.VTime) {
	n.net.Call(n.addr, to, MethodShip, n.tbl, at)
}

// AddEntry honours the immutability convention: clone, write, swap.
func (n *Node) AddEntry(k string, v int) {
	nt := n.tbl.Clone()
	nt[k] = v
	n.tbl = nt
}

// AddEntryInPlace violates the convention the directive documents.
func (n *Node) AddEntryInPlace(k string, v int) {
	n.tbl[k] = v // want "documented-immutable"
}
