package wireiso

import (
	"adhocshare/internal/simnet"
	"adhocshare/internal/trace"
)

// MethodTraced ships a payload carrying zero-width trace metadata.
const MethodTraced = "iso.traced"

// TracedReq couples rows with a TraceContext. The context is implicitly
// wire-immutable (see trace_knowledge.go), so carrying it in any payload
// position is always wire-safe.
type TracedReq struct {
	Rows []Row
	TC   trace.TraceContext
}

func (r TracedReq) SizeBytes() int { return 16 * len(r.Rows) }

// PushTraced derives a child context per send and copies the rows: clean.
func (n *Node) PushTraced(to simnet.Addr, tc trace.TraceContext, at simnet.VTime) {
	n.net.Call(n.addr, to, MethodTraced, TracedReq{Rows: n.Rows(), TC: tc.Child(1)}, at)
}

// Restamp writes through a shared TraceContext instead of deriving a
// child: the implicit wireimmutable contract flags it like any
// documented-immutable type.
func Restamp(tc trace.TraceContext, q uint64) trace.TraceContext {
	tc.Query = q // want "documented-immutable"
	return tc
}

// Derive follows the contract: child contexts come from Child, and
// writing the fields of a freshly built context stays legal.
func Derive(tc trace.TraceContext) trace.TraceContext {
	fresh := trace.TraceContext{Query: tc.Query}
	fresh.Parent = tc.Span
	return fresh
}
