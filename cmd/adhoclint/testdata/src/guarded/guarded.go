// Package guarded is the guarded-field rule fixture: struct fields
// declared after `mu` must only be touched while mu is held.
package guarded

import "sync"

type Counter struct {
	name string // before mu: immutable, unguarded

	mu    sync.Mutex
	n     int
	peers map[string]int
}

func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *Counter) GoodEarlyReturn() int {
	c.mu.Lock()
	if c.n > 0 {
		c.mu.Unlock()
		return 1
	}
	v := c.peers["x"]
	c.mu.Unlock()
	return v
}

func (c *Counter) GoodInterleaved() int {
	c.mu.Lock()
	v := c.n
	c.mu.Unlock()
	v *= 2
	c.mu.Lock()
	v += c.peers["x"]
	c.mu.Unlock()
	return v
}

func (c *Counter) Name() string { return c.name } // unguarded field: fine

func (c *Counter) bumpLocked() { c.n++ } // Locked suffix: caller holds mu

func (c *Counter) Bad() int {
	return c.n // want "c.n is guarded by c.mu"
}

func (c *Counter) BadAfterUnlock() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.peers["x"] = 1 // want "c.peers is guarded by c.mu"
}
