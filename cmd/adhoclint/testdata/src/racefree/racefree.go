// Package racefree exercises the handler race-readiness rule: any two
// entry points of a node type (HandleCall plus the exported methods) may
// run concurrently once delivery is concurrent, so every node field they
// conflict on needs a common mutex class — or a racefree directive
// explaining why the invocations cannot overlap.
package racefree

import (
	"sync"

	"adhocshare/internal/simnet"
)

// Req is a minimal payload.
type Req struct{ N int }

// SizeBytes implements simnet.Payload.
func (Req) SizeBytes() int { return 8 }

// Node is a simnet participant with one field per scenario.
type Node struct {
	net  *simnet.Network
	addr simnet.Addr

	mu    sync.Mutex
	table map[string]int // write and read share mu: clean

	statMu sync.Mutex
	hits   int // written by a helper with no lock, read under statMu

	count int // written by Reset with no lock, read by HandleCall

	aMu   sync.RWMutex
	bMu   sync.Mutex
	gauge int // written under aMu, read under bMu: no common class

	//adhoclint:racefree(set once in New before Register publishes the node)
	limit int // unguarded but directive-exempt: clean

	seed int // written only by the exempted Init below: clean

	name string // read-only: clean
}

// HandleCall dispatches the node's methods.
func (n *Node) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	switch method {
	case "rf.get":
		return Req{N: n.count + n.seed + len(n.name) + n.limit}, at + 1, nil
	case "rf.hits":
		return Req{N: n.readHits()}, at + 1, nil
	case "rf.gauge":
		n.bMu.Lock()
		g := n.gauge
		n.bMu.Unlock()
		return Req{N: g}, at + 1, nil
	case "rf.put":
		r := req.(Req)
		n.mu.Lock()
		n.table["k"] = r.N
		n.mu.Unlock()
		return Req{}, at + 1, nil
	}
	return nil, at, nil
}

// Init seeds the node. The directive removes it from the root set: it
// runs before the node is registered, so it can never overlap a handler.
//adhoclint:racefree(runs in the constructor, before Register publishes the node)
func (n *Node) Init() {
	n.seed = 1
}

// Reset writes count with no lock while rf.get reads it.
func (n *Node) Reset() {
	n.count = 0 // want "racefree.Node.count: write by racefree.(*Node).Reset"
}

// Touch reaches the unguarded hits write through an unexported helper:
// the witness chain must name both hops.
func (n *Node) Touch() {
	n.bump()
}

func (n *Node) bump() {
	n.hits++ // want "write via racefree.(*Node).Touch → racefree.(*Node).bump"
}

func (n *Node) readHits() int {
	n.statMu.Lock()
	defer n.statMu.Unlock()
	return n.hits
}

// SetGauge holds a mutex — just not the one rf.gauge reads under.
func (n *Node) SetGauge(v int) {
	n.aMu.Lock()
	n.gauge = v // want "holding racefree.Node.aMu"
	n.aMu.Unlock()
}

// SetTable shares mu with the rf.put handler: clean.
func (n *Node) SetTable(k string, v int) {
	n.mu.Lock()
	n.table[k] = v
	n.mu.Unlock()
}

// SetLimit writes the directive-exempt field unguarded: clean.
func (n *Node) SetLimit(v int) {
	n.limit = v
}

// Name only reads: a field nobody writes never conflicts.
func (n *Node) Name() string {
	return n.name
}

//adhoclint:racefree(floating) // want "misplaced racefree directive"

//adhoclint:racefree // want "needs a parenthesized reason"
