package main

import (
	"go/ast"
	"go/token"
)

// muRegion is a span of a function body during which a mutex named "mu" is
// held, according to the project's locking convention. Owner is the source
// rendering of the mutex expression ("s.mu", "c.mu", "mu", ...).
type muRegion struct {
	owner      string
	start, end token.Pos
	expr       ast.Expr // the mutex expression of the opening Lock/RLock
	write      bool     // opened by Lock (vs RLock)
}

func (r muRegion) contains(p token.Pos) bool { return r.start <= p && p <= r.end }

// muEvent is one Lock/Unlock call found in a body.
type muEvent struct {
	pos      token.Pos
	owner    string
	lock     bool // Lock or RLock (vs Unlock or RUnlock)
	write    bool // Lock or Unlock (vs RLock or RUnlock)
	deferred bool
	block    ast.Node // innermost enclosing block-like node
	expr     ast.Expr // the mutex expression itself ("s.mu", "mu", ...)
}

// muOwner reports whether expr is a mutex named by the "mu" convention and
// returns its rendered owner name: the ident "mu" itself or a selector
// chain ending in ".mu" rooted at an ident.
func muOwner(expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		if e.Name == "mu" {
			return "mu", true
		}
	case *ast.SelectorExpr:
		if e.Sel.Name != "mu" {
			return "", false
		}
		if base, ok := exprChain(e.X); ok {
			return base + ".mu", true
		}
	}
	return "", false
}

// exprChain renders a selector chain of plain identifiers ("s", "n.table").
func exprChain(expr ast.Expr) (string, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		return e.Name, true
	case *ast.SelectorExpr:
		base, ok := exprChain(e.X)
		if !ok {
			return "", false
		}
		return base + "." + e.Sel.Name, true
	}
	return "", false
}

// muEvents collects every Lock/RLock/Unlock/RUnlock call on a
// convention-named mutex in the function body, with the enclosing
// block-like node and defer context of each.
func muEvents(fn *ast.FuncDecl) []muEvent {
	if fn.Body == nil {
		return nil
	}
	var events []muEvent
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
			return true
		}
		owner, ok := muOwner(sel.X)
		if !ok {
			return true
		}
		var blk ast.Node
		deferred := false
		for i := len(stack) - 2; i >= 0; i-- {
			if d, isDefer := stack[i].(*ast.DeferStmt); isDefer && d.Call == call {
				deferred = true
			}
			if blk == nil {
				switch stack[i].(type) {
				case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
					blk = stack[i]
				}
			}
		}
		events = append(events, muEvent{
			pos:      call.Pos(),
			owner:    owner,
			lock:     name == "Lock" || name == "RLock",
			write:    name == "Lock" || name == "Unlock",
			deferred: deferred,
			block:    blk,
			expr:     sel.X,
		})
		return true
	})
	return events
}

// muRegions derives held-lock spans from the events of one function body.
//
// The heuristic mirrors how the codebase writes critical sections: a Lock
// opens a region that ends at the first non-deferred Unlock of the same
// mutex in the same block; if the Unlock is deferred, the region runs to
// the end of the function; with neither (early-return unlocks inside
// nested branches only), the region runs to the end of the Lock's own
// block — erring on the side of "still locked", which keeps the
// guarded-field rule permissive and the blocking rule conservative.
func muRegions(fn *ast.FuncDecl) []muRegion {
	return regionsFromEvents(fn, muEvents(fn))
}

// regionsFromEvents derives the held spans from an explicit event list, so
// analyses with a wider mutex recognizer (the racefree rule accepts any
// sync.Mutex/RWMutex-typed field, not just the convention name "mu") share
// the same region heuristic.
func regionsFromEvents(fn *ast.FuncDecl, events []muEvent) []muRegion {
	if len(events) == 0 {
		return nil
	}
	var regions []muRegion
	for _, e := range events {
		if !e.lock || e.deferred {
			continue
		}
		end := token.NoPos
		for _, u := range events {
			if u.lock || u.pos <= e.pos || u.owner != e.owner || u.deferred {
				continue
			}
			if u.block == e.block {
				end = u.pos
				break
			}
		}
		if end == token.NoPos {
			if hasDeferredUnlock(events, e) {
				end = fn.Body.End()
			} else if e.block != nil {
				end = e.block.End()
			} else {
				end = fn.Body.End()
			}
		}
		regions = append(regions, muRegion{owner: e.owner, start: e.pos, end: end, expr: e.expr, write: e.write})
	}
	return regions
}

func hasDeferredUnlock(events []muEvent, lock muEvent) bool {
	for _, u := range events {
		if !u.lock && u.deferred && u.owner == lock.owner && u.pos > lock.pos {
			return true
		}
	}
	return false
}

// insideAny reports whether pos falls in any region (optionally restricted
// to one owner) and returns the owner of the innermost match.
func insideAny(regions []muRegion, pos token.Pos, owner string) (string, bool) {
	for _, r := range regions {
		if owner != "" && r.owner != owner {
			continue
		}
		if r.contains(pos) {
			return r.owner, true
		}
	}
	return "", false
}
