package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one analyzed package: parsed syntax for every file plus type
// information for the non-test files. Test files are carried along so the
// purely syntactic rules (guarded-field, lock-blocking, goroutine-hygiene)
// cover them too; the type-dependent rules only look at production files.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File    // non-test files, type-checked
	TestFiles  []*ast.File    // *_test.go files, syntactic rules only
	Info       *types.Info    // semantic info for Files (nil if checking failed)
	Types      *types.Package // the checked package (nil if checking failed)
	TypeErrs   []error
}

// AllFiles returns production files followed by test files.
func (p *Package) AllFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files)+len(p.TestFiles))
	out = append(out, p.Files...)
	return append(out, p.TestFiles...)
}

// loader parses and type-checks packages of one module. Imports inside the
// module are resolved recursively from the module tree; everything else is
// delegated to the stdlib source importer, so the tool needs no
// dependencies beyond the standard library.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.Importer
	cache   map[string]*loaded
}

type loaded struct {
	pkg *Package
	typ *types.Package
	err error
}

func newLoader(modRoot, modPath string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   map[string]*loaded{},
	}
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, rerr := os.ReadFile(filepath.Join(dir, "go.mod"))
		if rerr == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("no module line in %s/go.mod", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("go.mod not found above %s", dir)
		}
		dir = parent
	}
}

// packageDirs lists every directory under root that contains .go files,
// skipping testdata, vendor, hidden and underscore directories.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	return dirs, nil
}

// Import resolves an import path for the type checker.
func (l *loader) Import(path string) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		got, err := l.load(filepath.Join(l.modRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		if got.typ == nil {
			return nil, fmt.Errorf("type-checking %s failed", path)
		}
		return got.typ, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks the package in dir (cached by import path).
func (l *loader) load(dir, importPath string) (*loaded, error) {
	if got, ok := l.cache[importPath]; ok {
		return got, nil
	}
	got := &loaded{}
	l.cache[importPath] = got

	entries, err := os.ReadDir(dir)
	if err != nil {
		got.err = err
		return got, err
	}
	p := &Package{ImportPath: importPath, Dir: dir, Fset: l.fset}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, perr := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			got.err = perr
			return got, perr
		}
		if strings.HasSuffix(name, "_test.go") {
			p.TestFiles = append(p.TestFiles, f)
		} else {
			p.Files = append(p.Files, f)
		}
	}
	got.pkg = p
	if len(p.Files) == 0 {
		return got, nil
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	cfg := types.Config{
		Importer: l,
		Error:    func(err error) { p.TypeErrs = append(p.TypeErrs, err) },
	}
	typ, cerr := cfg.Check(importPath, l.fset, p.Files, info)
	if cerr == nil || typ != nil {
		got.typ = typ
		p.Info = info
		p.Types = typ
	}
	return got, nil
}

// typesFor returns the checked types of a previously loaded import path
// (nil when the package was never reached or failed to check). Whole-program
// rules use it to reach reference packages such as internal/simnet.
func (l *loader) typesFor(importPath string) *types.Package {
	if got, ok := l.cache[importPath]; ok {
		return got.typ
	}
	return nil
}
