package main

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// The rpc-protocol analysis cross-checks the three legs of the simulated
// RPC protocol against each other:
//
//   - Method* wire-string constants declared in the message packages;
//   - the `switch method` dispatch inside every HandleCall implementation,
//     with the request type each case asserts and the response type it
//     returns;
//   - every Network.Call / Send / Transfer site, with the static type of
//     the payload argument and (for Call) the type the caller asserts the
//     response to.
//
// It reports constants invoked over Call/Send with no dispatch case
// anywhere (Transfer runs no handler, so Transfer-only methods are
// exempt), dispatch cases whose wire string matches no known constant,
// fabric calls whose payload type disagrees with what the handler asserts,
// response assertions that disagree with what the handler returns, method
// arguments passed as raw string literals, duplicated wire strings, and
// messages.go structs that neither implement simnet.Payload nor occur
// inside a payload struct.

// methodConst is one Method* wire-string constant.
type methodConst struct {
	name  string
	value string
	pkg   *Package
	pos   token.Pos
}

// handlerCase is one `case MethodX:` of a HandleCall dispatch switch.
type handlerCase struct {
	value    string
	pkg      *Package
	pos      token.Pos
	fn       string       // display name of the enclosing handler
	reqTypes []types.Type // types asserted from the request parameter
	respType types.Type   // sole concrete response type, nil when opaque
}

// fabricCall is one Network.Call/Send/Transfer site.
type fabricCall struct {
	kind       string // "Call", "Send" or "Transfer"
	value      string // method wire string ("" when not constant)
	literal    bool   // method passed as a raw string literal
	pkg        *Package
	pos        token.Pos
	reqType    types.Type // static payload type, nil when opaque/interface
	respAssert types.Type // type the caller asserts the response to
}

// checkRPCProtocol runs the whole-program protocol cross-check.
func checkRPCProtocol(prog *Program, enabled map[string]bool) []Diagnostic {
	if enabled != nil && !enabled[ruleRPCProto] {
		return nil
	}
	simnetPath := prog.modPath + "/internal/simnet"
	loaded := prog.loadedPackages()
	analyzed := prog.analyzedSet()

	consts := collectMethodConsts(loaded)
	cases := collectHandlerCases(loaded, simnetPath)
	calls := collectFabricCalls(loaded, simnetPath)

	known := map[string]bool{}
	for _, c := range consts {
		known[c.value] = true
	}
	casesByValue := map[string][]*handlerCase{}
	for _, c := range cases {
		casesByValue[c.value] = append(casesByValue[c.value], c)
	}
	invoked := map[string]bool{} // reached a handler via Call or Send
	for _, c := range calls {
		if c.value != "" && c.kind != "Transfer" {
			invoked[c.value] = true
		}
	}

	var diags []Diagnostic

	seenValue := map[string]*methodConst{}
	for _, c := range consts {
		if prev, dup := seenValue[c.value]; dup {
			if analyzed[c.pkg] {
				diags = append(diags, diagAt(c.pkg, c.pos, ruleRPCProto,
					fmt.Sprintf("%s duplicates wire string %q already used by %s", c.name, c.value, prev.name)))
			}
			continue
		}
		seenValue[c.value] = c
		if analyzed[c.pkg] && invoked[c.value] && len(casesByValue[c.value]) == 0 {
			diags = append(diags, diagAt(c.pkg, c.pos, ruleRPCProto,
				fmt.Sprintf("%s (%q) is invoked via Call/Send but no HandleCall dispatches it", c.name, c.value)))
		}
	}

	for _, c := range cases {
		if analyzed[c.pkg] && !known[c.value] {
			diags = append(diags, diagAt(c.pkg, c.pos, ruleRPCProto,
				fmt.Sprintf("%s dispatches %q, which matches no Method* constant", c.fn, c.value)))
		}
	}

	for _, c := range calls {
		if !analyzed[c.pkg] {
			continue
		}
		if c.literal {
			diags = append(diags, diagAt(c.pkg, c.pos, ruleRPCProto,
				fmt.Sprintf("method passed to %s as string literal %q; define a Method* constant", c.kind, c.value)))
		}
		if c.kind == "Transfer" || c.value == "" {
			continue // no handler runs; nothing to agree with
		}
		handlers := casesByValue[c.value]
		if c.reqType != nil {
			if want := handlerReqTypes(handlers); len(want) > 0 && !containsIdentical(want, c.reqType) {
				diags = append(diags, diagAt(c.pkg, c.pos, ruleRPCProto,
					fmt.Sprintf("%s of %q sends %s but its handler asserts %s",
						c.kind, c.value, typeDisplay(c.reqType), typeListDisplay(want))))
			}
		}
		if c.respAssert != nil {
			if want := handlerRespType(handlers); want != nil && !types.Identical(want, c.respAssert) {
				diags = append(diags, diagAt(c.pkg, c.pos, ruleRPCProto,
					fmt.Sprintf("response of %q is asserted to %s but its handler returns %s",
						c.value, typeDisplay(c.respAssert), typeDisplay(want))))
			}
		}
	}

	diags = append(diags, checkPayloadImpls(prog, loaded, analyzed)...)
	return diags
}

// collectMethodConsts finds every string constant whose name starts with
// "Method"/"method" in the production files of the loaded packages.
func collectMethodConsts(loaded []*Package) []*methodConst {
	var out []*methodConst
	for _, p := range loaded {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.CONST {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if !strings.HasPrefix(name.Name, "Method") && !strings.HasPrefix(name.Name, "method") {
							continue
						}
						c, ok := p.Info.Defs[name].(*types.Const)
						if !ok || c.Val().Kind() != constant.String {
							continue
						}
						out = append(out, &methodConst{
							name:  name.Name,
							value: constant.StringVal(c.Val()),
							pkg:   p,
							pos:   name.Pos(),
						})
					}
				}
			}
		}
	}
	return out
}

// collectHandlerCases finds every `switch method` case inside HandleCall
// implementations, recording the request types asserted and the response
// type returned in each case body.
func collectHandlerCases(loaded []*Package, simnetPath string) []*handlerCase {
	var out []*handlerCase
	for _, p := range loaded {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name.Name != "HandleCall" || fn.Body == nil {
					continue
				}
				methodObj, reqObj := handleCallParams(p, fn)
				if methodObj == nil {
					continue
				}
				display := fn.Name.Name
				if tn := recvTypeName(fn); tn != "" {
					display = fmt.Sprintf("%s.(*%s).HandleCall", p.Types.Name(), tn)
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok {
						return true
					}
					tag, ok := sw.Tag.(*ast.Ident)
					if !ok || p.Info.Uses[tag] != methodObj {
						return true
					}
					for _, stmt := range sw.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok || cc.List == nil {
							continue
						}
						for _, expr := range cc.List {
							tv := p.Info.Types[expr]
							if tv.Value == nil || tv.Value.Kind() != constant.String {
								continue
							}
							hc := &handlerCase{
								value: constant.StringVal(tv.Value),
								pkg:   p,
								pos:   expr.Pos(),
								fn:    display,
							}
							hc.reqTypes, hc.respType = caseBodyFacts(p, cc.Body, reqObj)
							out = append(out, hc)
						}
					}
					return true
				})
			}
		}
	}
	return out
}

// handleCallParams returns the objects of the method and request parameters
// of a Handler-shaped HandleCall declaration (nil, nil otherwise).
func handleCallParams(p *Package, fn *ast.FuncDecl) (methodObj, reqObj types.Object) {
	var idents []*ast.Ident
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			idents = append(idents, name)
		}
	}
	if len(idents) != 3 {
		return nil, nil
	}
	// Handler shape: (at VTime, method string, req Payload).
	return p.Info.Defs[idents[1]], p.Info.Defs[idents[2]]
}

// caseBodyFacts extracts the request assertions and the response type of
// one dispatch-case body. The response type is the sole concrete type of
// the first return value across the case's three-value returns; a case
// that delegates (single-expression return) or returns interface-typed
// values is opaque (nil).
func caseBodyFacts(p *Package, body []ast.Stmt, reqObj types.Object) (reqTypes []types.Type, respType types.Type) {
	var respTypes []types.Type
	opaque := false
	for _, stmt := range body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.TypeAssertExpr:
				if id, ok := unparen(n.X).(*ast.Ident); ok && reqObj != nil && p.Info.Uses[id] == reqObj {
					if t := p.Info.Types[n.Type].Type; t != nil {
						reqTypes = append(reqTypes, t)
					}
				}
			case *ast.ReturnStmt:
				if len(n.Results) != 3 {
					if len(n.Results) > 0 {
						opaque = true // delegation: `return n.other(...)`
					}
					return true
				}
				tv := p.Info.Types[n.Results[0]]
				if tv.Type == nil || tv.IsNil() {
					return true
				}
				if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
					opaque = true
					return true
				}
				if !containsIdentical(respTypes, tv.Type) {
					respTypes = append(respTypes, tv.Type)
				}
			}
			return true
		})
	}
	if opaque || len(respTypes) != 1 {
		return reqTypes, nil
	}
	return reqTypes, respTypes[0]
}

// collectFabricCalls finds every Network.Call/Send/Transfer site, with the
// response assertion (when the Call result is later type-asserted through
// the variable it was assigned to).
func collectFabricCalls(loaded []*Package, simnetPath string) []*fabricCall {
	var out []*fabricCall
	for _, p := range loaded {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				out = append(out, fabricCallsIn(p, fn, simnetPath)...)
			}
		}
	}
	return out
}

func fabricCallsIn(p *Package, fn *ast.FuncDecl, simnetPath string) []*fabricCall {
	var out []*fabricCall
	respVars := map[types.Object]*fabricCall{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			// `resp, done, err := net.Call(...)`: remember which variable
			// carries the response so a later resp.(T) can be matched up.
			if len(n.Rhs) != 1 || len(n.Lhs) != 3 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			fc := fabricCallAt(p, call, simnetPath)
			if fc == nil {
				return true
			}
			out = append(out, fc)
			if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" && fc.kind == "Call" {
				if obj := p.Info.Defs[id]; obj != nil {
					respVars[obj] = fc
				} else if obj := p.Info.Uses[id]; obj != nil {
					respVars[obj] = fc
				}
			}
			return true
		case *ast.CallExpr:
			if fc := fabricCallAt(p, n, simnetPath); fc != nil {
				out = append(out, fc)
			}
			return true
		case *ast.TypeAssertExpr:
			if n.Type == nil {
				return true
			}
			if id, ok := unparen(n.X).(*ast.Ident); ok {
				if fc, tracked := respVars[p.Info.Uses[id]]; tracked && fc.respAssert == nil {
					fc.respAssert = p.Info.Types[n.Type].Type
				}
			}
			return true
		}
		return true
	})
	// Direct CallExprs nested inside recorded assignments are revisited by
	// the walk; dedupe by position.
	seen := map[token.Pos]bool{}
	var dedup []*fabricCall
	for _, fc := range out {
		if !seen[fc.pos] {
			seen[fc.pos] = true
			dedup = append(dedup, fc)
		}
	}
	return dedup
}

// fabricCallAt recognizes a Network.Call/Send/Transfer call expression.
func fabricCallAt(p *Package, call *ast.CallExpr, simnetPath string) *fabricCall {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	kind := sel.Sel.Name
	if kind != "Call" && kind != "Send" && kind != "Transfer" {
		return nil
	}
	if !isNamedType(p.Info.Types[sel.X].Type, simnetPath, "Network") || len(call.Args) < 4 {
		return nil
	}
	fc := &fabricCall{kind: kind, pkg: p, pos: call.Pos()}
	methodArg := call.Args[2]
	if tv := p.Info.Types[methodArg]; tv.Value != nil && tv.Value.Kind() == constant.String {
		fc.value = constant.StringVal(tv.Value)
	}
	if _, isLit := unparen(methodArg).(*ast.BasicLit); isLit {
		fc.literal = true
	}
	if t := p.Info.Types[call.Args[3]].Type; t != nil {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			fc.reqType = t
		}
	}
	return fc
}

// isNamedType reports whether t (possibly behind a pointer) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == pkgPath && named.Obj().Name() == name
}

// handlerReqTypes unions the request types asserted by the cases of one
// method.
func handlerReqTypes(cases []*handlerCase) []types.Type {
	var out []types.Type
	for _, c := range cases {
		for _, t := range c.reqTypes {
			if !containsIdentical(out, t) {
				out = append(out, t)
			}
		}
	}
	return out
}

// handlerRespType returns the sole concrete response type across the cases
// of one method, or nil when cases disagree or are opaque.
func handlerRespType(cases []*handlerCase) types.Type {
	var resp types.Type
	for _, c := range cases {
		if c.respType == nil {
			return nil
		}
		if resp == nil {
			resp = c.respType
		} else if !types.Identical(resp, c.respType) {
			return nil
		}
	}
	return resp
}

func containsIdentical(ts []types.Type, t types.Type) bool {
	for _, have := range ts {
		if types.Identical(have, t) {
			return true
		}
	}
	return false
}

// typeDisplay renders a type compactly ("overlay.PutReq").
func typeDisplay(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

func typeListDisplay(ts []types.Type) string {
	names := make([]string, len(ts))
	for i, t := range ts {
		names[i] = typeDisplay(t)
	}
	sort.Strings(names)
	return strings.Join(names, " or ")
}

// checkPayloadImpls flags structs declared in messages.go files that
// neither implement simnet.Payload nor occur (transitively) as a field or
// element type of a struct that does: such a struct cannot go on the wire
// and is either dead or missing its SizeBytes.
func checkPayloadImpls(prog *Program, loaded []*Package, analyzed map[*Package]bool) []Diagnostic {
	simnet := prog.simnetTypes()
	if simnet == nil {
		return nil
	}
	obj := simnet.Scope().Lookup("Payload")
	if obj == nil {
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}

	var diags []Diagnostic
	for _, p := range loaded {
		if !analyzed[p] {
			continue
		}
		type structDecl struct {
			name *ast.Ident
			typ  types.Type
		}
		var declared []structDecl
		var payloads []types.Type
		for _, f := range p.Files {
			if filepath.Base(p.Fset.Position(f.Pos()).Filename) != "messages.go" {
				continue
			}
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					if _, isStruct := tn.Type().Underlying().(*types.Struct); !isStruct {
						continue
					}
					declared = append(declared, structDecl{ts.Name, tn.Type()})
					if implementsPayload(tn.Type(), iface) {
						payloads = append(payloads, tn.Type())
					}
				}
			}
		}
		if len(declared) == 0 {
			continue
		}
		components := map[types.Type]bool{}
		for _, t := range payloads {
			markComponents(t, components, map[types.Type]bool{})
		}
		for _, d := range declared {
			if implementsPayload(d.typ, iface) || components[d.typ] {
				continue
			}
			diags = append(diags, diagAt(p, d.name.Pos(), ruleRPCProto,
				fmt.Sprintf("%s is declared in messages.go but neither implements simnet.Payload nor occurs inside a payload struct", d.name.Name)))
		}
	}
	return diags
}

func implementsPayload(t types.Type, iface *types.Interface) bool {
	return types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface)
}

// markComponents records every named type reachable through the fields,
// elements and map keys/values of a payload struct.
func markComponents(t types.Type, components, visiting map[types.Type]bool) {
	if visiting[t] {
		return
	}
	visiting[t] = true
	switch u := t.(type) {
	case *types.Pointer:
		markComponents(u.Elem(), components, visiting)
		return
	case *types.Slice:
		markComponents(u.Elem(), components, visiting)
		return
	case *types.Array:
		markComponents(u.Elem(), components, visiting)
		return
	case *types.Map:
		markComponents(u.Key(), components, visiting)
		markComponents(u.Elem(), components, visiting)
		return
	}
	if named, ok := t.(*types.Named); ok {
		if !components[named] {
			components[named] = true
		}
	}
	if st, ok := t.Underlying().(*types.Struct); ok {
		for i := 0; i < st.NumFields(); i++ {
			markComponents(st.Field(i).Type(), components, visiting)
		}
	}
}
