package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, printed as "file:line: [rule] message".
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Rule, d.Msg)
}

// ruleNames lists every rule in reporting order.
var ruleNames = []string{
	ruleGuarded, ruleLockBlocking, ruleLockOrder, ruleRPCProto, rulePayloadSize,
	ruleDeterminism, ruleGoroutine, ruleDiscardedError, ruleWireIso, ruleVTime,
	ruleAlloc, ruleCodec, ruleFaultPath, ruleRaceFree,
}

const (
	ruleGuarded        = "guarded-field"
	ruleLockBlocking   = "lock-blocking"
	ruleLockOrder      = "lock-order"
	ruleRPCProto       = "rpc-protocol"
	rulePayloadSize    = "payload-size"
	ruleDeterminism    = "determinism"
	ruleGoroutine      = "goroutine-hygiene"
	ruleDiscardedError = "discarded-error"
	ruleWireIso        = "wireiso"
	ruleVTime          = "vtime"
	ruleAlloc          = "alloc"
	ruleCodec          = "codec"
	ruleFaultPath      = "faultpath"
	ruleRaceFree       = "racefree"
)

// ruleDocs gives each rule its one-line description, shown by -list and
// embedded in the SARIF rule metadata.
var ruleDocs = map[string]string{
	ruleGuarded:        "fields declared after a struct's `mu` must only be touched while that mu is held",
	ruleLockBlocking:   "no blocking operation (channel op, simnet fabric call, sleep, wait) while a mutex is held, directly or through calls",
	ruleLockOrder:      "mutex acquisition order must be cycle-free across the program; no re-acquisition of a held mutex",
	ruleRPCProto:       "Method* constants, HandleCall dispatch switches and Network.Call/Send/Transfer sites must agree on methods and payload types",
	rulePayloadSize:    "every SizeBytes method must account for every field of its receiver struct (or carry an explaining ignore directive)",
	ruleDeterminism:    "no wall-clock (time.Now, time.Sleep, ...) or global math/rand in internal/ non-test code",
	ruleGoroutine:      "`go func` literals must be tied to a WaitGroup, done-channel or context",
	ruleDiscardedError: "no `_ =` discards of error values outside tests",
	ruleWireIso:        "RPC payloads must own their memory: values sent over simnet (Call/Send/Transfer requests, handler responses) must be fresh, deep-copied, wire-derived or documented //adhoclint:wireimmutable",
	ruleVTime:          "concurrency in internal/ must flow through the simnet timing model: no goroutine fan-out over fabric calls outside simnet.Parallel, no fabricated or dropped VTime in handlers, no order-dependent Parallel bodies",
	ruleAlloc:          "no avoidable per-message heap allocation (fmt.Sprintf, string accumulation, unsized container growth, interface boxing, closures in loops) in functions reachable from HandleCall dispatch or fabric calls; cold helpers carry //adhoclint:hotexempt",
	ruleCodec:          "every RPC wire type must be gob-registered and either carry a field-complete EncodeBinary/DecodeBinary pair wired into the codec dispatch or an explaining //adhoclint:gobfallback directive",
	ruleFaultPath:      "every fabric interaction must declare its failure disposition: discarded errors need faultpath(fire-and-forget), Parallel fan-outs declare abort-all or collect-partial, mutate-then-send paths declare compensated, retried handlers deduplicate and declare idempotent, Retry closures depart at the attempt time",
	ruleRaceFree:       "concurrently-invocable node entry points (HandleCall handlers and exported methods of the same node type) must not conflict on a node field without a common mutex class; exempt with //adhoclint:racefree(reason)",
}

// LintPackage runs every enabled rule over one package and returns the
// findings sorted by position, with //adhoclint:ignore directives applied.
func LintPackage(p *Package, enabled map[string]bool) []Diagnostic {
	on := func(rule string) bool { return enabled == nil || enabled[rule] }
	var diags []Diagnostic
	if on(ruleGuarded) {
		diags = append(diags, checkGuardedFields(p)...)
	}
	if on(ruleLockBlocking) {
		diags = append(diags, checkLockBlocking(p)...)
	}
	if on(ruleDeterminism) {
		diags = append(diags, checkDeterminism(p)...)
	}
	if on(ruleGoroutine) {
		diags = append(diags, checkGoroutines(p)...)
	}
	if on(ruleDiscardedError) {
		diags = append(diags, checkDiscardedErrors(p)...)
	}
	diags = filterIgnored(p, diags)
	sortDiagnostics(diags)
	return diags
}

// LintProgram runs the whole-program rules (lock-order, the
// interprocedural half of lock-blocking, rpc-protocol, payload-size,
// wireiso, vtime, alloc, codec) over the analyzed packages together, with
// ignore directives from every analyzed package applied.
func LintProgram(prog *Program, enabled map[string]bool) []Diagnostic {
	var diags []Diagnostic
	diags = append(diags, checkProgramLocks(prog, enabled)...)
	diags = append(diags, checkRPCProtocol(prog, enabled)...)
	diags = append(diags, checkPayloadSizes(prog, enabled)...)
	diags = append(diags, checkWireIsolation(prog, enabled)...)
	diags = append(diags, checkVTime(prog, enabled)...)
	diags = append(diags, checkAlloc(prog, enabled)...)
	diags = append(diags, checkCodec(prog, enabled)...)
	diags = append(diags, checkFaultPath(prog, enabled)...)
	diags = append(diags, checkRaceFree(prog, enabled)...)
	ignores := map[ignoreKey][]string{}
	for _, p := range prog.Pkgs {
		collectIgnores(p, ignores)
	}
	diags = applyIgnores(ignores, diags)
	sortDiagnostics(diags)
	return diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos.Filename != diags[j].Pos.Filename {
			return diags[i].Pos.Filename < diags[j].Pos.Filename
		}
		if diags[i].Pos.Line != diags[j].Pos.Line {
			return diags[i].Pos.Line < diags[j].Pos.Line
		}
		if diags[i].Rule != diags[j].Rule {
			return diags[i].Rule < diags[j].Rule
		}
		return diags[i].Msg < diags[j].Msg
	})
}

// diagAt builds a diagnostic at a token position.
func diagAt(p *Package, pos token.Pos, rule, msg string) Diagnostic {
	return Diagnostic{Pos: p.Fset.Position(pos), Rule: rule, Msg: msg}
}

// ignoreKey identifies one source line.
type ignoreKey struct {
	file string
	line int
}

// filterIgnored drops diagnostics suppressed by an "//adhoclint:ignore
// [rule,...] reason" comment on the same line or the line directly above.
// A directive with no rule list suppresses every rule on that line.
func filterIgnored(p *Package, diags []Diagnostic) []Diagnostic {
	ignores := map[ignoreKey][]string{}
	collectIgnores(p, ignores)
	return applyIgnores(ignores, diags)
}

// collectIgnores records the package's ignore directives into the map.
func collectIgnores(p *Package, ignores map[ignoreKey][]string) {
	for _, f := range p.AllFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "adhoclint:ignore")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				ignores[ignoreKey{pos.Filename, pos.Line}] = parseIgnoreRules(rest)
			}
		}
	}
}

func applyIgnores(ignores map[ignoreKey][]string, diags []Diagnostic) []Diagnostic {
	if len(ignores) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, d := range diags {
		if ignoreMatches(ignores, d, 0) || ignoreMatches(ignores, d, -1) {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

func ignoreMatches(ignores map[ignoreKey][]string, d Diagnostic, off int) bool {
	rules, ok := ignores[ignoreKey{d.Pos.Filename, d.Pos.Line + off}]
	if !ok {
		return false
	}
	if len(rules) == 0 {
		return true
	}
	for _, r := range rules {
		if r == d.Rule {
			return true
		}
	}
	return false
}

// parseIgnoreRules parses the rule list of an ignore directive: a
// comma-separated sequence of rule names, each optionally followed by a
// parenthesized reason — "wireiso(rows copied by caller), vtime". Free
// text that is not a rule name ends the list; a directive whose list
// comes out empty suppresses every rule on its line.
func parseIgnoreRules(rest string) []string {
	rules := []string{}
	i := 0
	for {
		for i < len(rest) && (rest[i] == ' ' || rest[i] == '\t') {
			i++
		}
		start := i
		for i < len(rest) && isIgnoreIdentChar(rest[i]) {
			i++
		}
		name := rest[start:i]
		if !isRuleName(name) {
			break
		}
		rules = append(rules, name)
		if i < len(rest) && rest[i] == '(' {
			depth := 0
			for ; i < len(rest); i++ {
				if rest[i] == '(' {
					depth++
				}
				if rest[i] == ')' {
					depth--
					if depth == 0 {
						i++
						break
					}
				}
			}
		}
		for i < len(rest) && (rest[i] == ' ' || rest[i] == '\t') {
			i++
		}
		if i >= len(rest) || rest[i] != ',' {
			break
		}
		i++
	}
	return rules
}

func isIgnoreIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '-' || c == '_'
}

func isRuleName(s string) bool {
	for _, r := range ruleNames {
		if r == s {
			return true
		}
	}
	return false
}

// internalPackage reports whether the package lives under internal/ —
// the scope of the determinism rule.
func internalPackage(p *Package) bool {
	return strings.Contains(p.ImportPath, "/internal/") ||
		strings.HasSuffix(p.ImportPath, "/internal")
}

// cmdPackage reports whether the package lives under the module's cmd/
// tree — included in the faultpath and vtime whole-program scopes.
func cmdPackage(p *Package, modPath string) bool {
	return strings.HasPrefix(p.ImportPath, modPath+"/cmd/")
}

// recvName returns the receiver identifier of a method declaration, or ""
// for functions and anonymous receivers.
func recvName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}

// recvTypeName returns the base type name of a method's receiver
// (dereferencing a pointer receiver), or "".
func recvTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) != 1 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// generic receivers look like T[P]
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}
