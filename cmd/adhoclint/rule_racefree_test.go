package main

import (
	"strings"
	"testing"
)

func TestRaceFreeRule(t *testing.T) {
	checkProgramFixture(t, "racefree", "adhocshare/fixture/racefree", rules(ruleRaceFree))
}

// Every racefree finding carries a two-sided witness: the write chain with
// its held locks, the conflicting access with its held locks, and the
// escape-hatch hint.
func TestRaceFreeWitnessChains(t *testing.T) {
	prog := loadFixtureProgram(t, "racefree", "adhocshare/fixture/racefree")
	diags := LintProgram(prog, rules(ruleRaceFree))
	byFrag := func(frag string) *Diagnostic {
		for _, d := range diags {
			if strings.Contains(d.Msg, frag) {
				d := d
				return &d
			}
		}
		return nil
	}
	cases := []struct {
		finding  string
		contains []string
	}{
		// Unguarded write vs handler read: both sides named with lock state.
		{"racefree.Node.count", []string{
			"write by racefree.(*Node).Reset",
			"(no lock held)",
			"conflicts with read by racefree.(*Node).HandleCall",
			"concurrently invocable on one racefree.Node",
			"//adhoclint:racefree(reason)",
		}},
		// Interprocedural: the chain walks from the entry point to the
		// helper that performs the access.
		{"racefree.Node.hits", []string{
			"write via racefree.(*Node).Touch → racefree.(*Node).bump",
			"read via racefree.(*Node).HandleCall → racefree.(*Node).readHits",
			"holding racefree.Node.statMu",
		}},
		// Wrong-lock pair: both held classes are rendered, making the
		// missing common class visible.
		{"racefree.Node.gauge", []string{
			"holding racefree.Node.aMu",
			"holding racefree.Node.bMu",
			"no common lock",
		}},
	}
	for _, c := range cases {
		d := byFrag(c.finding)
		if d == nil {
			t.Errorf("no diagnostic containing %q", c.finding)
			continue
		}
		for _, frag := range c.contains {
			if !strings.Contains(d.Msg, frag) {
				t.Errorf("diagnostic for %s lacks %q:\n%s", c.finding, frag, d.Msg)
			}
		}
	}
}

// One diagnostic per conflicting field: the fixture's three bad fields
// yield exactly three findings (plus the two directive-hygiene ones),
// never one per conflicting pair.
func TestRaceFreeOneFindingPerField(t *testing.T) {
	prog := loadFixtureProgram(t, "racefree", "adhocshare/fixture/racefree")
	perField := map[string]int{}
	for _, d := range LintProgram(prog, rules(ruleRaceFree)) {
		for _, f := range []string{"Node.count", "Node.hits", "Node.gauge"} {
			if strings.Contains(d.Msg, "racefree."+f+":") {
				perField[f]++
			}
		}
	}
	for _, f := range []string{"Node.count", "Node.hits", "Node.gauge"} {
		if perField[f] != 1 {
			t.Errorf("field %s: %d findings, want exactly 1", f, perField[f])
		}
	}
}

// The racefree rule must be clean on the production tree: every node field
// either shares a mutex class across its entry points or carries a
// documented racefree exemption (the dynamic corroborator is the
// ConcurrentDelivery -race matrix in internal/experiments).
func TestRaceFreeCleanOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module load in -short mode")
	}
	var buf strings.Builder
	n, err := run([]string{"./..."}, rules(ruleRaceFree), "", &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Errorf("expected zero racefree findings on the real tree, got %d:\n%s", n, buf.String())
	}
}

// Regression for the pre-fix finding on the real tree: a node whose
// adaptive-state pointer is installed by a setup method with a plain store
// while HandleCall reads it — the exact shape overlay.IndexNode.hot had
// before hotRef/hotMu — must be flagged.
func TestRaceFreeCatchesLatePointerInstall(t *testing.T) {
	prog := loadFixtureProgram(t, "racefree_hotinstall", "adhocshare/fixture/racefree_hotinstall")
	diags := LintProgram(prog, rules(ruleRaceFree))
	if len(diags) != 1 {
		t.Fatalf("want exactly one finding, got %d: %v", len(diags), diags)
	}
	msg := diags[0].Msg
	for _, frag := range []string{
		"racefree_hotinstall.Node.hot",
		"write by racefree_hotinstall.(*Node).EnableAdaptive",
		"read by racefree_hotinstall.(*Node).HandleCall",
	} {
		if !strings.Contains(msg, frag) {
			t.Errorf("finding lacks %q:\n%s", frag, msg)
		}
	}
}
