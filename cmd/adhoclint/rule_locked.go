package main

import (
	"fmt"
	"go/ast"
)

// blockingCalls are selector method names that move simulated messages (the
// simnet fabric operations) or block on wall-clock time. Performing one
// while a mutex is held serializes the whole structure behind one network
// round-trip — the deadlock/latency hazard this rule exists to catch.
var blockingCalls = map[string]string{
	"Call":     "simnet RPC",
	"Send":     "simnet one-way message",
	"Transfer": "simnet data transfer",
	"Sleep":    "wall-clock sleep",
	"Wait":     "blocking wait",
}

// checkLockBlocking flags channel operations and simnet fabric calls made
// while any convention-named mutex is held.
func checkLockBlocking(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.AllFiles() {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			regions := muRegions(fn)
			if len(regions) == 0 {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.SendStmt:
					if owner, held := insideAny(regions, n.Pos(), ""); held {
						diags = append(diags, diagAt(p, n.Pos(), ruleLockBlocking,
							fmt.Sprintf("channel send while %s is held in %s", owner, fn.Name.Name)))
					}
				case *ast.UnaryExpr:
					if n.Op.String() == "<-" {
						if owner, held := insideAny(regions, n.Pos(), ""); held {
							diags = append(diags, diagAt(p, n.Pos(), ruleLockBlocking,
								fmt.Sprintf("channel receive while %s is held in %s", owner, fn.Name.Name)))
						}
					}
				case *ast.SelectStmt:
					if owner, held := insideAny(regions, n.Pos(), ""); held {
						diags = append(diags, diagAt(p, n.Pos(), ruleLockBlocking,
							fmt.Sprintf("select while %s is held in %s", owner, fn.Name.Name)))
						return false // one finding per select, not one per case
					}
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					kind, blocking := blockingCalls[sel.Sel.Name]
					if !blocking {
						return true
					}
					if owner, held := insideAny(regions, n.Pos(), ""); held {
						diags = append(diags, diagAt(p, n.Pos(), ruleLockBlocking,
							fmt.Sprintf("%s (.%s) while %s is held in %s", kind, sel.Sel.Name, owner, fn.Name.Name)))
					}
				}
				return true
			})
		}
	}
	return diags
}
