// Command adhoclint is the project's static-analysis suite. It enforces
// the concurrency and determinism conventions of the overlay/DQP core
// (documented in DESIGN.md "Concurrency & determinism conventions"):
//
//	guarded-field      fields declared after a struct's `mu sync.Mutex`
//	                   must only be touched while that mu is held
//	lock-blocking      no channel operations or simnet fabric calls
//	                   (Call/Send/Transfer) while a mutex is held
//	determinism        no wall-clock (time.Now, time.Sleep, ...) or global
//	                   math/rand in internal/ non-test code
//	goroutine-hygiene  `go func` literals must be tied to a WaitGroup,
//	                   done-channel or context
//	discarded-error    no `_ =` discards of error values outside tests
//
// Usage:
//
//	go run ./cmd/adhoclint ./...            # whole module
//	go run ./cmd/adhoclint ./internal/dqp   # one package
//	go run ./cmd/adhoclint -rules determinism,discarded-error ./...
//
// Diagnostics print as "file:line: [rule] message"; the exit status is
// non-zero when any diagnostic is reported. A finding can be suppressed
// with a trailing or preceding comment:
//
//	//adhoclint:ignore determinism test-support helper needs wall time
//
// The tool is built only on go/parser, go/ast and go/types — no module
// dependencies — so it runs anywhere the repo builds.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	rulesFlag := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: adhoclint [-rules r1,r2] [packages]\n\nrules: %s\n", strings.Join(ruleNames, ", "))
	}
	flag.Parse()

	enabled, err := parseRules(*rulesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhoclint:", err)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	n, err := run(args, enabled, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhoclint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "adhoclint: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

func parseRules(csv string) (map[string]bool, error) {
	if csv == "" {
		return nil, nil // nil = all rules
	}
	enabled := map[string]bool{}
	for _, r := range strings.Split(csv, ",") {
		r = strings.TrimSpace(r)
		if !isRuleName(r) {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", r, strings.Join(ruleNames, ", "))
		}
		enabled[r] = true
	}
	return enabled, nil
}

// run lints the packages selected by the argument patterns and writes
// diagnostics to w, returning how many were reported.
func run(args []string, enabled map[string]bool, w *os.File) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	modRoot, modPath, err := findModule(cwd)
	if err != nil {
		return 0, err
	}
	var dirs []string
	seen := map[string]bool{}
	for _, arg := range args {
		var got []string
		switch {
		case arg == "./..." || arg == "...":
			got, err = packageDirs(modRoot)
		case strings.HasSuffix(arg, "/..."):
			got, err = packageDirs(filepath.Join(cwd, strings.TrimSuffix(arg, "/...")))
		default:
			got = []string{filepath.Join(cwd, arg)}
		}
		if err != nil {
			return 0, err
		}
		for _, d := range got {
			abs, aerr := filepath.Abs(d)
			if aerr != nil {
				return 0, aerr
			}
			if !seen[abs] {
				seen[abs] = true
				dirs = append(dirs, abs)
			}
		}
	}

	l := newLoader(modRoot, modPath)
	total := 0
	for _, dir := range dirs {
		rel, rerr := filepath.Rel(modRoot, dir)
		if rerr != nil || strings.HasPrefix(rel, "..") {
			return 0, fmt.Errorf("package %s is outside module %s", dir, modRoot)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		got, lerr := l.load(dir, importPath)
		if lerr != nil {
			return 0, fmt.Errorf("loading %s: %w", importPath, lerr)
		}
		pkg := got.pkg
		if pkg == nil {
			continue
		}
		for _, terr := range pkg.TypeErrs {
			fmt.Fprintf(os.Stderr, "adhoclint: type-check %s: %v\n", importPath, terr)
		}
		for _, d := range LintPackage(pkg, enabled) {
			// print module-relative paths to keep output stable across checkouts
			if rel, e := filepath.Rel(modRoot, d.Pos.Filename); e == nil {
				d.Pos.Filename = rel
			}
			fmt.Fprintln(w, d.String())
			total++
		}
	}
	return total, nil
}
