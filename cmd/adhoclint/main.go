// Command adhoclint is the project's static-analysis suite. It enforces
// the concurrency, protocol and determinism conventions of the overlay/DQP
// core (documented in DESIGN.md "Concurrency & determinism conventions"):
//
//	guarded-field      fields declared after a struct's `mu sync.Mutex`
//	                   must only be touched while that mu is held
//	lock-blocking      no channel operations, simnet fabric calls
//	                   (Call/Send/Transfer), sleeps or waits while a mutex
//	                   is held — directly or through any call chain
//	lock-order         mutex acquisition order must be cycle-free across
//	                   the whole program (cycles are potential deadlocks,
//	                   reported with witness call chains); no re-acquiring
//	                   a mutex the caller already holds
//	rpc-protocol       Method* constants, HandleCall dispatch switches and
//	                   Network.Call/Send/Transfer sites must agree on
//	                   method strings and payload types
//	payload-size       every SizeBytes method must account for every field
//	                   of its receiver struct
//	determinism        no wall-clock (time.Now, time.Sleep, ...) or global
//	                   math/rand in internal/ non-test code
//	goroutine-hygiene  `go func` literals must be tied to a WaitGroup,
//	                   done-channel or context
//	discarded-error    no `_ =` discards of error values outside tests
//	wireiso            RPC payloads must own their memory: every value
//	                   sent over the fabric must be fresh, deep-copied,
//	                   wire-derived or //adhoclint:wireimmutable — never
//	                   an alias of mutable node state
//	vtime              concurrency in internal/ must flow through the
//	                   simnet timing model: no goroutine fan-out over
//	                   fabric calls outside simnet.Parallel, no dropped
//	                   or fabricated VTime, no completion-order-dependent
//	                   Parallel bodies
//	alloc              no avoidable per-message heap allocation
//	                   (fmt.Sprintf, string accumulation, unsized
//	                   container growth, interface boxing, closures in
//	                   loops) in the fabric hot set — the functions
//	                   reachable from HandleCall dispatch or performing
//	                   fabric calls; deliberately cold helpers carry
//	                   //adhoclint:hotexempt
//	codec              every RPC wire type must be gob-registered and
//	                   either carry a field-complete EncodeBinary/
//	                   DecodeBinary pair wired into the codec dispatch or
//	                   an explaining //adhoclint:gobfallback directive
//	faultpath          every fabric interaction declares its failure
//	                   disposition: discarded errors carry
//	                   //adhoclint:faultpath(fire-and-forget, reason),
//	                   simnet.Parallel fan-outs declare abort-all or
//	                   collect-partial, state mutated before a fallible
//	                   send needs a compensation path (compensated) or a
//	                   failure-benign declaration (benign), methods
//	                   retried via simnet.Retry whose handlers mutate
//	                   node state deduplicate and declare idempotent on
//	                   their Method* constants, and Retry closures depart
//	                   fabric calls at the attempt-time parameter
//
// Usage:
//
//	go run ./cmd/adhoclint ./...            # whole module
//	go run ./cmd/adhoclint ./internal/dqp   # one package
//	go run ./cmd/adhoclint -rules determinism,discarded-error ./...
//	go run ./cmd/adhoclint -format sarif ./... > adhoclint.sarif
//	go run ./cmd/adhoclint -list            # print the rules and exit
//
// Diagnostics print as "file:line: [rule] message" (or as SARIF 2.1.0 with
// -format sarif); the exit status is non-zero when any diagnostic is
// reported. A finding can be suppressed with a trailing or preceding
// comment:
//
//	//adhoclint:ignore determinism test-support helper needs wall time
//
// The tool is built only on go/parser, go/ast and go/types — no module
// dependencies — so it runs anywhere the repo builds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	rulesFlag := flag.String("rules", "", "comma-separated subset of rules to run (default: all)")
	formatFlag := flag.String("format", "text", "output format: text or sarif")
	listFlag := flag.Bool("list", false, "print the rules with their descriptions and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: adhoclint [-rules r1,r2] [-format text|sarif] [-list] [packages]\n\nrules: %s\n", strings.Join(ruleNames, ", "))
	}
	flag.Parse()

	if *listFlag {
		printRules(os.Stdout)
		return
	}
	if *formatFlag != "text" && *formatFlag != "sarif" {
		fmt.Fprintf(os.Stderr, "adhoclint: unknown format %q (have: text, sarif)\n", *formatFlag)
		os.Exit(2)
	}
	enabled, err := parseRules(*rulesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhoclint:", err)
		os.Exit(2)
	}
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	n, err := run(args, enabled, *formatFlag, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "adhoclint:", err)
		os.Exit(2)
	}
	if n > 0 {
		fmt.Fprintf(os.Stderr, "adhoclint: %d diagnostic(s)\n", n)
		os.Exit(1)
	}
}

// printRules writes every rule with its one-line description — the -list
// output, pinned by a golden test.
func printRules(w io.Writer) {
	for _, name := range ruleNames {
		fmt.Fprintf(w, "%-18s %s\n", name, ruleDocs[name])
	}
}

func parseRules(csv string) (map[string]bool, error) {
	if csv == "" {
		return nil, nil // nil = all rules
	}
	enabled := map[string]bool{}
	for _, r := range strings.Split(csv, ",") {
		r = strings.TrimSpace(r)
		if !isRuleName(r) {
			return nil, fmt.Errorf("unknown rule %q (have: %s)", r, strings.Join(ruleNames, ", "))
		}
		enabled[r] = true
	}
	return enabled, nil
}

// run lints the packages selected by the argument patterns — each package
// on its own, then all of them together for the whole-program rules — and
// writes diagnostics to w, returning how many were reported.
func run(args []string, enabled map[string]bool, format string, w io.Writer) (int, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return 0, err
	}
	modRoot, modPath, err := findModule(cwd)
	if err != nil {
		return 0, err
	}
	var dirs []string
	seen := map[string]bool{}
	for _, arg := range args {
		var got []string
		switch {
		case arg == "./..." || arg == "...":
			got, err = packageDirs(modRoot)
		case strings.HasSuffix(arg, "/..."):
			got, err = packageDirs(filepath.Join(cwd, strings.TrimSuffix(arg, "/...")))
		default:
			got = []string{filepath.Join(cwd, arg)}
		}
		if err != nil {
			return 0, err
		}
		for _, d := range got {
			abs, aerr := filepath.Abs(d)
			if aerr != nil {
				return 0, aerr
			}
			if !seen[abs] {
				seen[abs] = true
				dirs = append(dirs, abs)
			}
		}
	}

	l := newLoader(modRoot, modPath)
	var pkgs []*Package
	var diags []Diagnostic
	for _, dir := range dirs {
		rel, rerr := filepath.Rel(modRoot, dir)
		if rerr != nil || strings.HasPrefix(rel, "..") {
			return 0, fmt.Errorf("package %s is outside module %s", dir, modRoot)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		got, lerr := l.load(dir, importPath)
		if lerr != nil {
			return 0, fmt.Errorf("loading %s: %w", importPath, lerr)
		}
		pkg := got.pkg
		if pkg == nil {
			continue
		}
		for _, terr := range pkg.TypeErrs {
			fmt.Fprintf(os.Stderr, "adhoclint: type-check %s: %v\n", importPath, terr)
		}
		pkgs = append(pkgs, pkg)
		diags = append(diags, LintPackage(pkg, enabled)...)
	}
	diags = append(diags, LintProgram(newProgram(l, pkgs), enabled)...)

	// report module-relative paths to keep output stable across checkouts
	for i := range diags {
		if rel, e := filepath.Rel(modRoot, diags[i].Pos.Filename); e == nil {
			diags[i].Pos.Filename = rel
		}
	}
	sortDiagnostics(diags)

	if format == "sarif" {
		if err := writeSARIF(w, diags); err != nil {
			return len(diags), err
		}
		return len(diags), nil
	}
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
	}
	return len(diags), nil
}
