package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// The vtime-accounting analysis (rule "vtime") guards the simulation's
// critical-path timing model. Virtual time only stays meaningful if every
// fabric interaction threads the charged VTime:
//
//   - fan-out must go through simnet.Parallel, which accounts branch time
//     as the max over branches: a raw `go` statement (with or without a
//     WaitGroup) that transitively reaches a fabric call runs off the
//     books;
//   - handler-shaped functions (payload, VTime, error) must derive the
//     VTime they return from the charged time they received — the `at`
//     parameter or the done-values of their own fabric calls — not
//     fabricate a constant;
//   - the VTime result of a fabric call must not be discarded (assigned
//     to `_` or dropped with the whole result);
//   - simnet.Parallel branch bodies must not write captured state except
//     through elements indexed by the branch parameter: any other shared
//     write makes the result depend on completion order, which the
//     deterministic scheduler does not define.
//
// The rule applies to internal/ and cmd/ packages except internal/simnet
// itself (whose Parallel implementation is the one sanctioned use of raw
// goroutines) and cmd/adhoclint. Suppress a finding with
// //adhoclint:ignore vtime(reason). A fabric call declared
// //adhoclint:faultpath(fire-and-forget, reason) is exempt from the
// dropped-VTime check: a declared fire-and-forget notification is off the
// critical path by design, so its charged time has no accounting to join.

// checkVTime runs the vtime rule over the program.
func checkVTime(prog *Program, enabled map[string]bool) []Diagnostic {
	if enabled != nil && !enabled[ruleVTime] {
		return nil
	}
	v := &vtimeChecker{
		prog:       prog,
		simnetPath: prog.modPath + "/internal/simnet",
		analyzed:   prog.analyzedSet(),
		touches:    map[*types.Func]bool{},
		decls:      map[*types.Func]*wireDecl{},
	}
	v.collectDecls()
	v.computeTouches()
	v.faultDirectives = collectFaultDirectives(prog.loadedPackages())
	for _, p := range prog.Pkgs {
		if p.Info == nil || !v.inScope(p) {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				v.checkGoFanout(p, fn)
				v.checkHandlerVTime(p, fn)
				v.checkDroppedVTime(p, fn)
				v.checkParallelBodies(p, fn)
			}
		}
	}
	sortDiagnostics(v.diags)
	return v.diags
}

type vtimeChecker struct {
	prog            *Program
	simnetPath      string
	analyzed        map[*Package]bool
	decls           map[*types.Func]*wireDecl
	touches         map[*types.Func]bool // transitively performs a fabric call
	faultDirectives map[ignoreKey]*faultDirective
	diags           []Diagnostic
}

// inScope limits the rule to internal/ and cmd/ packages outside
// internal/simnet and the linter itself.
func (v *vtimeChecker) inScope(p *Package) bool {
	if p.ImportPath == v.simnetPath || p.ImportPath == v.prog.modPath+"/cmd/adhoclint" {
		return false
	}
	return internalPackage(p) || cmdPackage(p, v.prog.modPath)
}

// fireAndForgetAt reports whether the position carries a
// faultpath(fire-and-forget) declaration on its line or the line above.
func (v *vtimeChecker) fireAndForgetAt(p *Package, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	for off := 0; off >= -1; off-- {
		if d, ok := v.faultDirectives[ignoreKey{position.Filename, position.Line + off}]; ok {
			return d.disposition == dispFireAndForget
		}
	}
	return false
}

func (v *vtimeChecker) collectDecls() {
	for _, p := range v.prog.loadedPackages() {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
					v.decls[obj] = &wireDecl{pkg: p, decl: fn}
				}
			}
		}
	}
}

// computeTouches closes "performs a fabric call" over static calls.
func (v *vtimeChecker) computeTouches() {
	for obj, d := range v.decls {
		direct := false
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			if direct {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if fabricCallAt(d.pkg, call, v.simnetPath) != nil {
					direct = true
				}
			}
			return true
		})
		v.touches[obj] = direct
	}
	for changed := true; changed; {
		changed = false
		for obj, d := range v.decls {
			if v.touches[obj] {
				continue
			}
			reached := false
			ast.Inspect(d.decl.Body, func(n ast.Node) bool {
				if reached {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee, _ := staticCallee(d.pkg.Info, call); callee != nil && !v.traceNeutral(callee) && v.touches[callee] {
						reached = true
					}
				}
				return true
			})
			if reached {
				v.touches[obj] = true
				changed = true
			}
		}
	}
}

// nodeTouchesFabric reports whether the subtree contains a fabric call,
// directly or through a statically resolved callee.
func (v *vtimeChecker) nodeTouchesFabric(p *Package, node ast.Node) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fabricCallAt(p, call, v.simnetPath) != nil {
			found = true
			return false
		}
		if callee, _ := staticCallee(p.Info, call); callee != nil && !v.traceNeutral(callee) && v.touches[callee] {
			found = true
			return false
		}
		return true
	})
	return found
}

// traceNeutral reports whether callee belongs to an observability leaf
// package (trace or flight), whose functions — Recorder.Record and
// Recorder.Emit above all — are fabric-neutral by contract (see
// trace_knowledge.go and flight_knowledge.go): recording a span or an
// event moves no modeled bytes or VTime, so the fabric-reach closure
// stops there.
func (v *vtimeChecker) traceNeutral(callee *types.Func) bool {
	return observabilityNeutral(callee, v.prog.modPath)
}

// checkGoFanout flags `go` statements that transitively reach fabric
// calls: their branch time never joins the caller's critical path.
func (v *vtimeChecker) checkGoFanout(p *Package, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		bad := false
		switch fun := unparen(g.Call.Fun).(type) {
		case *ast.FuncLit:
			bad = v.nodeTouchesFabric(p, fun.Body)
		default:
			if callee, _ := staticCallee(p.Info, g.Call); callee != nil && !v.traceNeutral(callee) {
				bad = v.touches[callee]
			}
		}
		if bad {
			v.report(p, g.Pos(),
				"goroutine fans out over simnet fabric calls; its branch time escapes the critical-path accounting — use simnet.Parallel")
		}
		return true
	})
}

// checkHandlerVTime flags handler-shaped returns whose VTime is not
// derived from the charged time (the VTime parameters or the done-values
// of the handler's own fabric calls).
func (v *vtimeChecker) checkHandlerVTime(p *Package, fn *ast.FuncDecl) {
	if !handlerShape(p, fn, v.simnetPath, nil) {
		return
	}
	taint := map[types.Object]bool{}
	for _, field := range fn.Type.Params.List {
		if !isNamedType(p.Info.Types[field.Type].Type, v.simnetPath, "VTime") {
			continue
		}
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				taint[obj] = true
			}
		}
	}
	tainted := func(e ast.Expr) bool {
		has := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := defOrUse(p.Info, id); obj != nil && taint[obj] {
					has = true
				}
			}
			return !has
		})
		return has
	}
	// Fixpoint: propagate taint through assignments and fabric results. A
	// write through an index or field taints the whole container — reads
	// of it may then yield the charged time.
	for changed := true; changed; {
		changed = false
		mark := func(lhs ast.Expr) {
			obj := exprRootObj(p.Info, lhs)
			if obj != nil && !taint[obj] {
				taint[obj] = true
				changed = true
			}
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(asg.Rhs) == 1 && len(asg.Lhs) > 1 {
				if call, ok := asg.Rhs[0].(*ast.CallExpr); ok {
					if fc := fabricCallAt(p, call, v.simnetPath); fc != nil {
						donePos := 0 // Send/Transfer: (VTime, error)
						if fc.kind == "Call" {
							donePos = 1 // (Payload, VTime, error)
						}
						mark(asg.Lhs[donePos])
						return true
					}
				}
				if tainted(asg.Rhs[0]) {
					for _, lhs := range asg.Lhs {
						mark(lhs)
					}
				}
				return true
			}
			for i, lhs := range asg.Lhs {
				if i >= len(asg.Rhs) {
					break
				}
				if tainted(asg.Rhs[i]) {
					mark(lhs)
				}
			}
			return true
		})
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 3 {
			return true
		}
		if !tainted(ret.Results[1]) {
			v.report(p, ret.Results[1].Pos(), fmt.Sprintf(
				"%s returns a VTime unrelated to the charged time; thread the handler's VTime parameter or a fabric done-value instead of fabricating one",
				funcDisplayOf(p, fn)))
		}
		return true
	})
}

// checkDroppedVTime flags fabric calls whose charged VTime is discarded.
func (v *vtimeChecker) checkDroppedVTime(p *Package, fn *ast.FuncDecl) {
	reported := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			fc := fabricCallAt(p, call, v.simnetPath)
			if fc == nil {
				return true
			}
			reported[call] = true
			donePos := 0
			if fc.kind == "Call" {
				donePos = 1
			}
			if donePos >= len(n.Lhs) {
				return true
			}
			if id, ok := n.Lhs[donePos].(*ast.Ident); ok && id.Name == "_" &&
				!v.fireAndForgetAt(p, call.Pos()) {
				v.report(p, call.Pos(), fmt.Sprintf(
					"the VTime charged by %s of %q is discarded; thread it into the caller's accounting",
					fc.kind, fc.value))
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && !reported[call] {
				if fc := fabricCallAt(p, call, v.simnetPath); fc != nil && !v.fireAndForgetAt(p, call.Pos()) {
					v.report(p, call.Pos(), fmt.Sprintf(
						"the result of %s of %q (including its charged VTime) is discarded; thread it into the caller's accounting",
						fc.kind, fc.value))
				}
			}
		}
		return true
	})
}

// checkParallelBodies flags simnet.Parallel branch literals that write
// captured state other than through elements indexed by the branch
// parameter: such writes make the outcome depend on completion order.
func (v *vtimeChecker) checkParallelBodies(p *Package, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := staticCallee(p.Info, call)
		if callee == nil || callee.Name() != "Parallel" ||
			callee.Pkg() == nil || callee.Pkg().Path() != v.simnetPath ||
			len(call.Args) == 0 {
			return true
		}
		lit, ok := unparen(call.Args[len(call.Args)-1]).(*ast.FuncLit)
		if !ok {
			return true
		}
		v.checkBranchLit(p, lit)
		return true
	})
}

func (v *vtimeChecker) checkBranchLit(p *Package, lit *ast.FuncLit) {
	// Objects declared inside the branch (parameters included) are private
	// to it; everything else is captured.
	local := map[types.Object]bool{}
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			if obj := p.Info.Defs[name]; obj != nil {
				local[obj] = true
			}
		}
	}
	var branchParam types.Object
	if len(lit.Type.Params.List) > 0 && len(lit.Type.Params.List[0].Names) > 0 {
		branchParam = p.Info.Defs[lit.Type.Params.List[0].Names[0]]
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				local[obj] = true
			}
		}
		return true
	})
	usesBranchParam := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && branchParam != nil && defOrUse(p.Info, id) == branchParam {
				found = true
			}
			return !found
		})
		return found
	}
	flagLvalue := func(lhs ast.Expr) {
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				return
			}
			obj := defOrUse(p.Info, l)
			if _, isVar := obj.(*types.Var); isVar && !local[obj] {
				v.report(p, l.Pos(), fmt.Sprintf(
					"simnet.Parallel branch writes captured %q; return results through the branch (or index by the branch parameter) so completion order cannot affect them", l.Name))
			}
		case *ast.IndexExpr:
			root := exprRootObj(p.Info, l.X)
			if root == nil || local[root] || usesBranchParam(l.Index) {
				return
			}
			if _, isVar := root.(*types.Var); isVar {
				v.report(p, l.Pos(), fmt.Sprintf(
					"simnet.Parallel branch writes captured %q at an index not derived from the branch parameter; completion order can affect the result", root.Name()))
			}
		case *ast.SelectorExpr, *ast.StarExpr:
			var x ast.Expr
			if sel, ok := l.(*ast.SelectorExpr); ok {
				x = sel.X
			} else {
				x = l.(*ast.StarExpr).X
			}
			root := exprRootObj(p.Info, x)
			if root == nil || local[root] {
				return
			}
			if _, isVar := root.(*types.Var); isVar {
				v.report(p, l.Pos(), fmt.Sprintf(
					"simnet.Parallel branch writes captured %q; return results through the branch so completion order cannot affect them", root.Name()))
			}
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				flagLvalue(lhs)
			}
		case *ast.IncDecStmt:
			flagLvalue(n.X)
		}
		return true
	})
}

func (v *vtimeChecker) report(p *Package, pos token.Pos, msg string) {
	if !v.analyzed[p] {
		return
	}
	v.diags = append(v.diags, diagAt(p, pos, ruleVTime, msg))
}

// funcDisplayOf renders a declaration for diagnostics, falling back to
// the bare name when the object is unavailable.
func funcDisplayOf(p *Package, fn *ast.FuncDecl) string {
	if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
		return funcDisplay(obj)
	}
	return fn.Name.Name
}
