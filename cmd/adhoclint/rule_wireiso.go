package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The wire-isolation analysis (rule "wireiso") enforces the paper's node
// isolation on the simulated wire: every node runs in one Go address
// space, so an RPC payload that retains an alias to a sender's or
// receiver's mutable state silently breaches the "data never leaves its
// provider" invariant and can corrupt the deterministic location tables.
//
// The rule tracks every value flowing into a simnet.Network.Call/Send/
// Transfer request position and out of a HandleCall-shaped response
// position, and requires each such value to be *wire-safe*:
//
//   - reference-free: its type transitively contains no maps, slices,
//     pointers, interfaces, channels or functions (strings are fine);
//   - freshly allocated on the flow path: a composite literal, make/new,
//     an append onto a fresh base, or the result of a function whose
//     returns are themselves wire-safe (summaries are computed
//     interprocedurally and memoized per function — the per-type/
//     per-function copy-summary cache);
//   - deep-copied: the result of a Clone/DeepCopy/Copy method;
//   - wire-derived: a request a handler received, or a response a caller
//     got back — such values were checked for safety at their original
//     send, so forwarding them is ownership transfer, not aliasing;
//   - documented immutable: its type carries an //adhoclint:wireimmutable
//     directive. The rule enforces the documentation: element writes to a
//     value of such a type are flagged unless the value is locally fresh.
//
// Everything else — receiver fields, package state, parameters of unknown
// provenance — is assumed to alias mutable node state and is reported
// with a witness flow chain. A payload built from a *parameter* defers
// the obligation to the callers of the enclosing function (payload-
// forwarding helpers like overlay.(*IndexNode).replicate stay clean; the
// caller that feeds them shared state is flagged at its call site).
//
// Two companion checks close the remaining gaps:
//
//   - mutation-after-send: a payload local that is element-written or
//     passed to a sort after the fabric call that shipped it;
//   - request capture: a handler storing a request-derived reference
//     directly into receiver state.
//
// Suppress a finding with //adhoclint:ignore wireiso(reason).

// wireImmutableDirective marks a type as immutable-after-construction by
// convention; see DESIGN.md §7.
const wireImmutableDirective = "adhoclint:wireimmutable"

// copyVerbs are method names treated as deep copies.
var copyVerbs = map[string]bool{"Clone": true, "DeepCopy": true, "Copy": true}

// wireKind classifies a value for the wire-isolation rule.
type wireKind int

const (
	wireSafe  wireKind = iota // fresh, wire-derived, ref-free or documented immutable
	wireStale                 // may alias mutable node state
	wireParam                 // verbatim parameter of the enclosing function
)

// wireState is the analysis result for one expression: its kind, the
// parameter index for wireParam, and the witness chain explaining a
// wireStale verdict (outermost step first).
type wireState struct {
	kind  wireKind
	param int
	why   []string
}

func safeState() *wireState { return &wireState{kind: wireSafe} }
func staleState(why ...string) *wireState {
	return &wireState{kind: wireStale, why: why}
}

// chain renders the witness flow chain of a stale state.
func (s *wireState) chain() string { return strings.Join(s.why, " → ") }

// wireDecl locates one production function declaration.
type wireDecl struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// wireChecker holds the whole-program state of the rule.
type wireChecker struct {
	prog     *Program
	loaded   []*Package
	analyzed map[*Package]bool

	simnetPath string
	payload    *types.Interface // simnet.Payload, nil when absent

	refFree         map[types.Type]bool          // per-type copy-summary cache
	immutable       map[types.Object]bool        // wireimmutable type names
	decls           map[*types.Func]*wireDecl    // production decls, loaded packages
	summaries       map[*types.Func][]*wireState // per-result return freshness
	inFlight        map[*types.Func]bool         // recursion guard (optimistic)
	freshFns        map[*types.Func]bool         // constructor summaries (all results fresh)
	freshBusy       map[*types.Func]bool         // recursion guard for freshFns
	fieldElemWrites map[types.Object][]token.Pos // field → element-write sites
	fns             map[*types.Func]*wireFn      // per-function fact cache

	obligations []wireOblig
	obligSeen   map[obligKey]bool
	diags       []Diagnostic
}

// wireOblig defers a payload check to the callers of fn: param flows
// verbatim into the wire position described by desc.
type wireOblig struct {
	fn    *types.Func
	param int
	desc  string
	site  string // rendered origin send site, for the witness chain
}

type obligKey struct {
	fn    *types.Func
	param int
}

// checkWireIsolation runs the wireiso rule over the program.
func checkWireIsolation(prog *Program, enabled map[string]bool) []Diagnostic {
	if enabled != nil && !enabled[ruleWireIso] {
		return nil
	}
	c := &wireChecker{
		prog:            prog,
		loaded:          prog.loadedPackages(),
		analyzed:        prog.analyzedSet(),
		simnetPath:      prog.modPath + "/internal/simnet",
		refFree:         map[types.Type]bool{},
		immutable:       map[types.Object]bool{},
		decls:           map[*types.Func]*wireDecl{},
		summaries:       map[*types.Func][]*wireState{},
		inFlight:        map[*types.Func]bool{},
		freshFns:        map[*types.Func]bool{},
		freshBusy:       map[*types.Func]bool{},
		fieldElemWrites: map[types.Object][]token.Pos{},
		fns:             map[*types.Func]*wireFn{},
		obligSeen:       map[obligKey]bool{},
	}
	if simnet := prog.simnetTypes(); simnet != nil {
		if obj := simnet.Scope().Lookup("Payload"); obj != nil {
			c.payload, _ = obj.Type().Underlying().(*types.Interface)
		}
	}
	c.collectDirectives()
	c.collectDecls()
	c.collectFieldElemWrites()

	for _, p := range c.loaded {
		if !c.analyzed[p] || p.Info == nil {
			continue
		}
		if p.ImportPath == c.simnetPath {
			continue // the fabric itself relays opaque payloads by design
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				c.checkFunc(p, fn)
			}
		}
	}
	c.resolveObligations()
	return c.diags
}

// collectDirectives records every //adhoclint:wireimmutable-annotated
// type name across the loaded packages.
func (c *wireChecker) collectDirectives() {
	for _, p := range c.loaded {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			marked := map[int]bool{}
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
					if strings.HasPrefix(text, wireImmutableDirective) {
						marked[p.Fset.Position(cm.Pos()).Line] = true
					}
				}
			}
			if len(marked) == 0 {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				line := p.Fset.Position(ts.Name.Pos()).Line
				if marked[line] || marked[line-1] {
					if obj := p.Info.Defs[ts.Name]; obj != nil {
						c.immutable[obj] = true
					}
				}
				return true
			})
		}
	}
}

// collectDecls indexes every production function declaration of the
// loaded packages, so summaries can follow calls across packages.
func (c *wireChecker) collectDecls() {
	for _, p := range c.loaded {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
					c.decls[obj] = &wireDecl{pkg: p, decl: fn}
				}
			}
		}
	}
}

// collectFieldElemWrites records, program-wide, every element write
// through a struct field (t.rows[k] = v, sort.Slice(t.rows, ...)). A
// slice- or map-typed field with *no* such write and reference-free
// elements is provably immutable after send.
func (c *wireChecker) collectFieldElemWrites() {
	for _, p := range c.loaded {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				asg, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for _, lhs := range asg.Lhs {
					if obj := c.fieldOfElemWrite(p, lhs); obj != nil {
						c.fieldElemWrites[obj] = append(c.fieldElemWrites[obj], lhs.Pos())
					}
				}
				return true
			})
		}
	}
}

// fieldOfElemWrite returns the struct-field object an lvalue writes an
// element of (x.f[i] = v, x.f[i].g = v), or nil.
func (c *wireChecker) fieldOfElemWrite(p *Package, lhs ast.Expr) types.Object {
	for {
		switch e := lhs.(type) {
		case *ast.IndexExpr:
			if sel, ok := unparen(e.X).(*ast.SelectorExpr); ok {
				if v, ok := p.Info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
					return v
				}
			}
			lhs = e.X
		case *ast.SelectorExpr:
			lhs = e.X
		case *ast.StarExpr:
			lhs = e.X
		case *ast.ParenExpr:
			lhs = e.X
		default:
			return nil
		}
	}
}

// fieldEverElemWritten reports whether any element write through the
// field exists anywhere in the program.
func (c *wireChecker) fieldEverElemWritten(obj types.Object) bool {
	return len(c.fieldElemWrites[obj]) > 0
}

// typeRefFree reports whether values of t can be copied by assignment —
// no maps, slices, pointers, interfaces, channels or functions anywhere.
func (c *wireChecker) typeRefFree(t types.Type) bool {
	if t == nil {
		return false
	}
	if got, ok := c.refFree[t]; ok {
		return got
	}
	c.refFree[t] = true // optimistic for recursive types
	free := c.typeRefFreeUncached(t)
	c.refFree[t] = free
	return free
}

func (c *wireChecker) typeRefFreeUncached(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if !c.typeRefFree(u.Field(i).Type()) {
				return false
			}
		}
		return true
	case *types.Array:
		return c.typeRefFree(u.Elem())
	default:
		return false
	}
}

// typeImmutable reports whether t carries the wireimmutable directive.
// trace.TraceContext carries it implicitly (see trace_knowledge.go): wire
// contexts are derived with Child, never written through, and the
// immutable-write check enforces exactly that.
func (c *wireChecker) typeImmutable(t types.Type) bool {
	if isTraceContext(t, c.prog.modPath) {
		return true
	}
	named, ok := t.(*types.Named)
	return ok && c.immutable[named.Obj()]
}

// wireSafeType reports whether every value of t is wire-safe by type
// alone.
func (c *wireChecker) wireSafeType(t types.Type) bool {
	return c.typeRefFree(t) || c.typeImmutable(t)
}

// elemWrite is one x[i] = v (or x[i].f = v) statement rooted at a local
// variable.
type elemWrite struct {
	root types.Object // nil when the base is not a plain local
	base ast.Expr     // the indexed expression (IndexExpr.X)
	rhs  ast.Expr     // nil for sort-style in-place mutation
	pos  token.Pos
}

// wireFn caches the per-function dataflow facts: assignments per local,
// element writes, wire-derived variables.
type wireFn struct {
	c    *wireChecker
	pkg  *Package
	decl *ast.FuncDecl
	obj  *types.Func

	params  []types.Object
	assigns map[types.Object][]ast.Expr
	elems   []elemWrite
	wire    map[types.Object]bool
	state   map[types.Object]*wireState
	busy    map[types.Object]bool
}

// fnFor builds (or returns the cached) fact set of one declaration.
func (c *wireChecker) fnFor(p *Package, decl *ast.FuncDecl) *wireFn {
	var obj *types.Func
	if o, ok := p.Info.Defs[decl.Name].(*types.Func); ok {
		obj = o
	}
	if obj != nil {
		if f, ok := c.fns[obj]; ok {
			return f
		}
	}
	f := &wireFn{
		c: c, pkg: p, decl: decl, obj: obj,
		assigns: map[types.Object][]ast.Expr{},
		wire:    map[types.Object]bool{},
		state:   map[types.Object]*wireState{},
		busy:    map[types.Object]bool{},
	}
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			f.params = append(f.params, p.Info.Defs[name])
		}
	}
	// Payload-typed parameters of a Handler-shaped function are the wire
	// request: they were checked for safety when their sender built them.
	if handlerShape(p, decl, c.simnetPath, c.payload) {
		for _, po := range f.params {
			if po == nil {
				continue
			}
			if isNamedType(po.Type(), c.simnetPath, "Payload") ||
				c.payload != nil && implementsPayload(po.Type(), c.payload) {
				f.wire[po] = true
			}
		}
	}
	f.collectFacts()
	f.propagateWire()
	if obj != nil {
		c.fns[obj] = f
	}
	return f
}

// collectFacts gathers assignment and element-write facts in one pass
// over the body (function literals included: captured-variable writes
// count against the captured variable).
func (f *wireFn) collectFacts() {
	info := f.pkg.Info
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			f.recordAssign(n)
		case *ast.RangeStmt:
			// for k, v := range x — key and value derive from x.
			for _, lhs := range []ast.Expr{n.Key, n.Value} {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := defOrUse(info, id); obj != nil {
						f.assigns[obj] = append(f.assigns[obj], n.X)
					}
				}
			}
		case *ast.DeclStmt:
			if gd, ok := n.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if i < len(vs.Values) {
							if obj := info.Defs[name]; obj != nil {
								f.assigns[obj] = append(f.assigns[obj], vs.Values[i])
							}
						}
					}
				}
			}
		}
		return true
	})
}

func (f *wireFn) recordAssign(asg *ast.AssignStmt) {
	info := f.pkg.Info
	// Multi-value forms: resp, done, err := net.Call(...) — the response
	// variable of a fabric Call is wire-derived.
	if len(asg.Rhs) == 1 && len(asg.Lhs) > 1 {
		if call, ok := asg.Rhs[0].(*ast.CallExpr); ok {
			if fc := fabricCallAt(f.pkg, call, f.c.simnetPath); fc != nil && fc.kind == "Call" {
				if id, ok := asg.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if obj := defOrUse(info, id); obj != nil {
						f.wire[obj] = true
					}
				}
				return
			}
			// a, b := g(): defer to g's per-result summaries via a marker.
			for i, lhs := range asg.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
					if obj := defOrUse(info, id); obj != nil {
						f.assigns[obj] = append(f.assigns[obj], &multiResult{call: call, index: i})
					}
				}
			}
			return
		}
		// x, ok := m[k] / v.(T) / <-ch
		if id, ok := asg.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if obj := defOrUse(info, id); obj != nil {
				f.assigns[obj] = append(f.assigns[obj], asg.Rhs[0])
			}
		}
		return
	}
	for i, lhs := range asg.Lhs {
		if i >= len(asg.Rhs) {
			break
		}
		rhs := asg.Rhs[i]
		switch l := unparen(lhs).(type) {
		case *ast.Ident:
			if l.Name == "_" {
				continue
			}
			if obj := defOrUse(info, l); obj != nil {
				f.assigns[obj] = append(f.assigns[obj], rhs)
			}
		case *ast.IndexExpr:
			f.elems = append(f.elems, elemWrite{
				root: exprRootObj(info, l.X), base: l.X, rhs: rhs, pos: l.Pos(),
			})
		case *ast.SelectorExpr:
			// x.f = v through a local pointer/struct: treat as an element
			// write against the root so freshness accounting sees it.
			f.elems = append(f.elems, elemWrite{
				root: exprRootObj(info, l.X), base: l.X, rhs: rhs, pos: l.Pos(),
			})
		case *ast.StarExpr:
			f.elems = append(f.elems, elemWrite{
				root: exprRootObj(info, l.X), base: l.X, rhs: rhs, pos: l.Pos(),
			})
		}
	}
}

// multiResult marks "result #index of call" in an assignment fact. It is
// never part of the real AST; it only occurs as a recorded assignment
// right-hand side.
type multiResult struct {
	ast.Expr
	call  *ast.CallExpr
	index int
}

func (m *multiResult) Pos() token.Pos { return m.call.Pos() }
func (m *multiResult) End() token.Pos { return m.call.End() }

// propagateWire closes the wire-derived set over plain derivations:
// r := req.(T), rr := resp.(RangeResp), e range-of wire value, x := wireY.
func (f *wireFn) propagateWire() {
	for changed := true; changed; {
		changed = false
		for obj, rhss := range f.assigns {
			if f.wire[obj] {
				continue
			}
			derived := len(rhss) > 0
			for _, rhs := range rhss {
				if !f.wireDerivedExpr(rhs) {
					derived = false
					break
				}
			}
			if derived {
				f.wire[obj] = true
				changed = true
			}
		}
	}
}

// wireDerivedExpr reports whether the expression is a pure projection of
// a wire-derived value (selectors, indexes, type asserts, slicing).
func (f *wireFn) wireDerivedExpr(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		obj := defOrUse(f.pkg.Info, e)
		return obj != nil && f.wire[obj]
	case *ast.SelectorExpr:
		return f.wireDerivedExpr(e.X)
	case *ast.IndexExpr:
		return f.wireDerivedExpr(e.X)
	case *ast.SliceExpr:
		return f.wireDerivedExpr(e.X)
	case *ast.TypeAssertExpr:
		return f.wireDerivedExpr(e.X)
	case *ast.StarExpr:
		return f.wireDerivedExpr(e.X)
	}
	return false
}

// defOrUse resolves an identifier to its object whether it defines or
// uses it.
func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// exprRootObj walks selectors/indexes to the root identifier's object.
func exprRootObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return defOrUse(info, x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprType is the static type of an expression.
func (f *wireFn) exprType(e ast.Expr) types.Type {
	if tv, ok := f.pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func (f *wireFn) posSuffix(pos token.Pos) string { return posSuffix(f.pkg, pos) }

// paramIndex returns the declaration index of a parameter object, or -1.
func (f *wireFn) paramIndex(obj types.Object) int {
	for i, p := range f.params {
		if p == obj && p != nil {
			return i
		}
	}
	return -1
}

// eval classifies one expression. topLevel marks positions where a
// verbatim parameter becomes a caller obligation instead of a finding.
func (f *wireFn) eval(e ast.Expr, topLevel bool) *wireState {
	e = unparen(e)
	if t := f.exprType(e); t != nil && f.c.wireSafeType(t) {
		return safeState()
	}
	if f.wireDerivedExpr(e) {
		return safeState()
	}
	switch e := e.(type) {
	case *ast.BasicLit, *ast.FuncLit:
		return safeState()
	case *ast.Ident:
		if e.Name == "nil" || e.Name == "true" || e.Name == "false" {
			return safeState()
		}
		obj := defOrUse(f.pkg.Info, e)
		if obj == nil {
			return safeState()
		}
		if i := f.paramIndex(obj); i >= 0 {
			if topLevel {
				return &wireState{kind: wireParam, param: i}
			}
			return staleState(fmt.Sprintf("parameter %s of %s", e.Name, f.display()))
		}
		if _, isVar := obj.(*types.Var); isVar && obj.Parent() != nil && obj.Parent() != obj.Pkg().Scope() {
			return f.varState(obj, e)
		}
		return staleState(fmt.Sprintf("package-level %s", e.Name))
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if s := f.eval(v, false); s.kind == wireStale {
				return s
			}
		}
		return safeState()
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return f.eval(e.X, false)
		}
		return safeState()
	case *ast.CallExpr:
		return f.evalCall(e, 0)
	case *ast.SelectorExpr:
		return f.evalSelector(e)
	case *ast.IndexExpr:
		return f.eval(e.X, false)
	case *ast.SliceExpr:
		return f.eval(e.X, false)
	case *ast.StarExpr:
		return f.eval(e.X, false)
	case *ast.TypeAssertExpr:
		return f.eval(e.X, false)
	case *multiResult:
		return f.evalCall(e.call, e.index)
	case *ast.BinaryExpr, *ast.KeyValueExpr:
		return safeState()
	}
	return staleState(fmt.Sprintf("%s (unanalyzed expression)", renderExpr(e)))
}

// varState computes the freshness of a local variable: every assignment
// must be wire-safe and every element write through it must store a
// wire-safe value.
func (f *wireFn) varState(obj types.Object, at *ast.Ident) *wireState {
	if s, ok := f.state[obj]; ok {
		return s
	}
	if f.busy[obj] {
		return safeState() // optimistic on cycles (x = append(x, ...))
	}
	f.busy[obj] = true
	defer func() { f.busy[obj] = false }()

	s := safeState()
	rhss := f.assigns[obj]
	if len(rhss) == 0 {
		// Never assigned in this function: a captured or zero-value var.
		s = staleState(fmt.Sprintf("%s is never freshly assigned in %s", obj.Name(), f.display()))
	}
	for _, rhs := range rhss {
		if skipSelfAppend(f.pkg.Info, rhs, obj) {
			continue
		}
		got := f.eval(rhs, false)
		if got.kind != wireSafe {
			why := got.why
			if got.kind == wireParam {
				why = []string{fmt.Sprintf("parameter %s of %s", obj.Name(), f.display())}
			}
			s = &wireState{kind: wireStale, why: append(
				[]string{fmt.Sprintf("%s assigned%s", obj.Name(), f.posSuffix(rhs.Pos()))}, why...)}
			break
		}
	}
	if s.kind == wireSafe {
		for _, w := range f.elems {
			if w.root != obj {
				continue
			}
			if w.rhs == nil {
				continue
			}
			if t := f.exprType(w.rhs); t != nil && f.c.wireSafeType(t) {
				continue
			}
			if got := f.eval(w.rhs, false); got.kind != wireSafe {
				s = &wireState{kind: wireStale, why: append(
					[]string{fmt.Sprintf("%s element write%s", obj.Name(), f.posSuffix(w.pos))}, got.why...)}
				break
			}
		}
	}
	f.state[obj] = s
	return s
}

// skipSelfAppend recognizes x = append(x, ...) so the self-reference does
// not defeat the variable's own freshness analysis; the appended elements
// are still checked through the normal call path of another assignment or
// of the append itself when the base differs.
func skipSelfAppend(info *types.Info, rhs ast.Expr, obj types.Object) bool {
	call, ok := unparen(rhs).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" || info.Uses[id] != nil && info.Uses[id].Pkg() != nil {
		return false
	}
	base := call.Args[0]
	// base may be x or m[k] rooted at x (batches[owner] = append(batches[owner], e)).
	if exprRootObj(info, base) != obj {
		return false
	}
	// Elements must still be safe for the self-append to be neutral.
	for _, arg := range call.Args[1:] {
		tv := info.Types[arg]
		if tv.Type == nil {
			return false
		}
	}
	return true
}

// evalCall classifies a call result (result #index for multi-result
// calls).
func (f *wireFn) evalCall(call *ast.CallExpr, index int) *wireState {
	info := f.pkg.Info
	// Conversions: T(x) shares x's references, so it is as safe as x (or
	// safe outright when T is wire-safe by type).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if f.c.wireSafeType(tv.Type) || len(call.Args) == 1 && f.eval(call.Args[0], false).kind == wireSafe {
			return safeState()
		}
		return staleState(fmt.Sprintf("conversion %s retains its operand's references", renderExpr(call)))
	}
	// Builtins and deep-copy methods.
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		_, isBuiltin := info.Uses[fun].(*types.Builtin)
		if isBuiltin || info.Uses[fun] == nil {
			switch fun.Name {
			case "append":
				if len(call.Args) > 0 {
					return f.evalAppend(call)
				}
			case "make", "new", "copy", "len", "cap", "min", "max", "delete":
				return safeState()
			}
		}
	case *ast.SelectorExpr:
		// Deep-copy methods are wire-safe regardless of the receiver.
		if copyVerbs[fun.Sel.Name] {
			if _, isFunc := info.Uses[fun.Sel].(*types.Func); isFunc {
				return safeState()
			}
		}
	}
	callee, _ := staticCallee(info, call)
	if callee == nil {
		if t := f.exprType(call); t != nil && f.c.wireSafeType(t) {
			return safeState()
		}
		return staleState(fmt.Sprintf("result of dynamic call %s", renderExpr(call)))
	}
	sum := f.c.summary(callee)
	if index >= len(sum) {
		return safeState()
	}
	got := sum[index]
	switch got.kind {
	case wireSafe:
		return safeState()
	case wireParam:
		// The callee returns its parameter: the result is as safe as the
		// argument we pass.
		if got.param < len(call.Args) {
			return f.eval(call.Args[got.param], false)
		}
		return safeState()
	default:
		return &wireState{kind: wireStale, why: append(
			[]string{fmt.Sprintf("result of %s", funcDisplay(callee))}, got.why...)}
	}
}

// evalAppend handles append(base, elems...): fresh iff the base is fresh
// (or nil) and the elements are wire-safe or reference-free.
func (f *wireFn) evalAppend(call *ast.CallExpr) *wireState {
	base := call.Args[0]
	if id, ok := unparen(base).(*ast.Ident); !ok || id.Name != "nil" {
		if s := f.eval(base, false); s.kind != wireSafe {
			why := s.why
			if s.kind == wireParam {
				why = []string{fmt.Sprintf("parameter base of append in %s", f.display())}
			}
			return &wireState{kind: wireStale, why: append(
				[]string{fmt.Sprintf("append base %s", renderExpr(base))}, why...)}
		}
	}
	for _, arg := range call.Args[1:] {
		if t := f.exprType(arg); t != nil && f.c.wireSafeType(t) {
			continue
		}
		if t := f.exprType(arg); t != nil {
			if sl, ok := t.Underlying().(*types.Slice); ok && call.Ellipsis.IsValid() && f.c.wireSafeType(sl.Elem()) {
				// append(dst, src...) with ref-free elements copies them.
				continue
			}
		}
		if s := f.eval(arg, false); s.kind != wireSafe {
			why := s.why
			if s.kind == wireParam {
				why = []string{fmt.Sprintf("appended parameter in %s", f.display())}
			}
			return &wireState{kind: wireStale, why: append(
				[]string{fmt.Sprintf("appended element %s", renderExpr(arg))}, why...)}
		}
	}
	return safeState()
}

// display renders the enclosing function for witness chains.
func (f *wireFn) display() string {
	if f.obj != nil {
		return funcDisplay(f.obj)
	}
	return f.decl.Name.Name
}

// evalSelector classifies x.f: safe when the whole value is wire-safe by
// type, when x is wire-derived, or when the field is provably immutable
// after send (reference-free elements, no element write anywhere in the
// program). Otherwise it aliases the owner's state.
func (f *wireFn) evalSelector(sel *ast.SelectorExpr) *wireState {
	info := f.pkg.Info
	fieldObj, _ := info.Uses[sel.Sel].(*types.Var)
	if fieldObj != nil && fieldObj.IsField() {
		ft := fieldObj.Type()
		if f.c.wireSafeType(ft) {
			return safeState()
		}
		switch u := ft.Underlying().(type) {
		case *types.Slice:
			if f.c.typeRefFree(u.Elem()) && !f.c.fieldEverElemWritten(fieldObj) {
				return safeState() // never mutated in place anywhere
			}
		case *types.Map:
			if f.c.typeRefFree(u.Key()) && f.c.typeRefFree(u.Elem()) && !f.c.fieldEverElemWritten(fieldObj) {
				return safeState()
			}
		}
		// Field of a freshly built local is fine: nb := x.Clone(); use nb.f.
		if root := exprRootObj(info, sel.X); root != nil {
			if i := f.paramIndex(root); i < 0 {
				if _, isVar := root.(*types.Var); isVar && root.Parent() != nil && root.Parent() != root.Pkg().Scope() {
					if f.varState(root, nil).kind == wireSafe {
						return safeState()
					}
				}
			}
		}
		owner := "node state"
		if t := f.exprType(sel.X); t != nil {
			owner = typeDisplay(t)
		}
		return staleState(fmt.Sprintf("%s aliases mutable state of %s (field %s)",
			renderExpr(sel), owner, sel.Sel.Name))
	}
	// Method value or package symbol.
	if t := f.exprType(sel); t != nil && f.c.wireSafeType(t) {
		return safeState()
	}
	return staleState(fmt.Sprintf("%s aliases shared state", renderExpr(sel)))
}

// freshSummary reports whether callee is a constructor: every result of
// every return statement is itself a locally fresh value. Lets patterns
// like b := NewBinding(); b[k] = v pass the immutable-write check.
func (c *wireChecker) freshSummary(callee *types.Func) bool {
	if got, ok := c.freshFns[callee]; ok {
		return got
	}
	d, ok := c.decls[callee]
	if !ok || d.decl.Body == nil {
		return false
	}
	if c.freshBusy[callee] {
		return true // optimistic on recursion
	}
	c.freshBusy[callee] = true
	defer delete(c.freshBusy, callee)

	f := c.fnFor(d.pkg, d.decl)
	fresh, sawReturn := true, false
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, isRet := n.(*ast.ReturnStmt)
		if !isRet {
			return true
		}
		if len(ret.Results) == 0 {
			fresh = false // naked return: give up
			return true
		}
		sawReturn = true
		for _, r := range ret.Results {
			if !f.freshForWrite(r, map[types.Object]bool{}) {
				fresh = false
			}
		}
		return true
	})
	fresh = fresh && sawReturn
	c.freshFns[callee] = fresh
	return fresh
}

// summary computes the per-result wire-safety of a function's returns,
// memoized — the per-function half of the copy-summary cache.
func (c *wireChecker) summary(callee *types.Func) []*wireState {
	if got, ok := c.summaries[callee]; ok {
		return got
	}
	if c.inFlight[callee] {
		return nil // optimistic on recursion
	}
	d, ok := c.decls[callee]
	if !ok {
		// No source (stdlib, interface method): classify by result types.
		sig, _ := callee.Type().(*types.Signature)
		if sig == nil {
			return nil
		}
		out := make([]*wireState, sig.Results().Len())
		for i := range out {
			if c.wireSafeType(sig.Results().At(i).Type()) {
				out[i] = safeState()
			} else {
				out[i] = staleState(fmt.Sprintf("opaque result of %s", funcDisplay(callee)))
			}
		}
		c.summaries[callee] = out
		return out
	}
	c.inFlight[callee] = true
	defer delete(c.inFlight, callee)

	f := c.fnFor(d.pkg, d.decl)
	nres := 0
	if sig, ok := callee.Type().(*types.Signature); ok {
		nres = sig.Results().Len()
	}
	out := make([]*wireState, nres)
	for i := range out {
		out[i] = safeState()
	}
	ast.Inspect(d.decl.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // returns inside literals are not this function's
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) != nres {
			return true // naked or delegating return: stay optimistic
		}
		for i, res := range ret.Results {
			if out[i].kind == wireStale {
				continue
			}
			got := f.eval(res, true)
			switch got.kind {
			case wireStale:
				out[i] = &wireState{kind: wireStale, why: append(
					[]string{fmt.Sprintf("return%s", posSuffix(d.pkg, ret.Pos()))}, got.why...)}
			case wireParam:
				if out[i].kind == wireSafe {
					out[i] = got
				}
			}
		}
		return true
	})
	c.summaries[callee] = out
	return out
}

// handlerShape reports whether fn has the simnet Handler result shape —
// HandleCall itself or a dispatch helper. With a non-nil payload
// interface the first result must additionally be a payload (lots of
// ordinary API functions return (T, VTime, error) to thread virtual
// time; only payload-returning ones put their result on the wire).
func handlerShape(p *Package, fn *ast.FuncDecl, simnetPath string, payload *types.Interface) bool {
	res := fn.Type.Results
	if res == nil || len(res.List) != 3 {
		return false
	}
	if countNames(res.List) > 3 {
		return false
	}
	t1 := p.Info.Types[res.List[1].Type].Type
	if !isNamedType(t1, simnetPath, "VTime") {
		return false
	}
	if payload == nil {
		return true
	}
	t0 := p.Info.Types[res.List[0].Type].Type
	if t0 == nil {
		return false
	}
	return isNamedType(t0, simnetPath, "Payload") || implementsPayload(t0, payload)
}

func countNames(fields []*ast.Field) int {
	n := 0
	for _, f := range fields {
		if len(f.Names) == 0 {
			n++
		} else {
			n += len(f.Names)
		}
	}
	return n
}

// checkFunc runs the send-site, response, mutation-after-send and
// request-capture checks over one analyzed declaration.
func (c *wireChecker) checkFunc(p *Package, decl *ast.FuncDecl) {
	f := c.fnFor(p, decl)
	c.checkSends(f)
	c.checkResponses(f)
	c.checkImmutableWrites(f)
	c.checkRequestCapture(f)
}

// checkSends validates the payload argument of every fabric call.
func (c *wireChecker) checkSends(f *wireFn) {
	type sentVar struct {
		obj  types.Object
		name string
		kind string
		pos  token.Pos
	}
	var sent []sentVar
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fc := fabricCallAt(f.pkg, call, c.simnetPath)
		if fc == nil {
			return true
		}
		payload := call.Args[3]
		desc := fmt.Sprintf("%s of %q", fc.kind, fc.value)
		if fc.value == "" {
			desc = fc.kind
		}
		c.checkPayloadExpr(f, payload, desc, call.Pos())
		// Remember mutable locals whose memory the payload shares for the
		// mutation-after-send pass: idents in value position (directly,
		// inside composite literals, behind & or an index) — not method
		// receivers or call arguments, whose memory is not shipped.
		for _, id := range payloadRootIdents(payload) {
			obj := defOrUse(f.pkg.Info, id)
			if obj == nil || f.paramIndex(obj) >= 0 {
				continue
			}
			v, isVar := obj.(*types.Var)
			if !isVar || v.IsField() || obj.Parent() == nil || obj.Parent() == obj.Pkg().Scope() {
				continue
			}
			if c.typeRefFree(v.Type()) {
				continue
			}
			sent = append(sent, sentVar{obj: obj, name: id.Name, kind: fc.kind, pos: call.Pos()})
		}
		return true
	})
	if len(sent) == 0 {
		return
	}
	// mutation-after-send: element writes or in-place sorts of a payload
	// local after the fabric call that shipped it.
	for _, w := range f.elems {
		if w.root == nil {
			continue
		}
		for _, sv := range sent {
			if w.root == sv.obj && w.pos > sv.pos {
				c.report(f.pkg, w.pos, fmt.Sprintf(
					"payload %q sent via %s%s is mutated after send; mutate before building the payload or send a copy",
					sv.name, sv.kind, posSuffix(f.pkg, sv.pos)))
			}
		}
	}
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(f.pkg.Info, call) {
			return true
		}
		for _, arg := range call.Args {
			root := exprRootObj(f.pkg.Info, arg)
			if root == nil {
				continue
			}
			for _, sv := range sent {
				if root == sv.obj && call.Pos() > sv.pos {
					c.report(f.pkg, call.Pos(), fmt.Sprintf(
						"payload %q sent via %s%s is sorted in place after send; sort before building the payload",
						sv.name, sv.kind, posSuffix(f.pkg, sv.pos)))
				}
			}
		}
		return true
	})
}

// payloadRootIdents collects the identifiers whose backing memory a
// payload expression ships by reference.
func payloadRootIdents(e ast.Expr) []*ast.Ident {
	var out []*ast.Ident
	var walk func(ast.Expr)
	walk = func(e ast.Expr) {
		switch e := unparen(e).(type) {
		case *ast.Ident:
			out = append(out, e)
		case *ast.CompositeLit:
			for _, elt := range e.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					walk(kv.Value)
				} else {
					walk(elt)
				}
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				walk(e.X)
			}
		case *ast.IndexExpr:
			walk(e.X)
		case *ast.SliceExpr:
			walk(e.X)
		}
	}
	walk(e)
	return out
}

// isSortCall recognizes sort.* and *Sort* helpers that permute their
// argument in place.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if pkg, isPkg := info.Uses[id].(*types.PkgName); isPkg && pkg.Imported().Path() == "sort" {
				return true
			}
		}
		return strings.Contains(fun.Sel.Name, "Sort")
	case *ast.Ident:
		return strings.Contains(fun.Name, "Sort")
	}
	return false
}

// checkPayloadExpr validates one wire-bound value, decomposing a
// composite literal so diagnostics name the offending field.
func (c *wireChecker) checkPayloadExpr(f *wireFn, e ast.Expr, desc string, pos token.Pos) {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = unparen(u.X)
	}
	if lit, ok := e.(*ast.CompositeLit); ok {
		if t := f.exprType(lit); t != nil {
			if _, isStruct := t.Underlying().(*types.Struct); isStruct {
				litName := typeDisplay(t)
				for _, elt := range lit.Elts {
					v, fieldName := elt, ""
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
						if id, ok := kv.Key.(*ast.Ident); ok {
							fieldName = id.Name
						}
					}
					where := litName
					if fieldName != "" {
						where = litName + "." + fieldName
					}
					c.checkWireValue(f, v, fmt.Sprintf("%s sends %s", desc, where), pos)
				}
				return
			}
		}
	}
	c.checkWireValue(f, e, fmt.Sprintf("%s sends %s", desc, renderExpr(e)), pos)
}

// checkWireValue flags a stale value or defers a parameter to callers.
func (c *wireChecker) checkWireValue(f *wireFn, e ast.Expr, desc string, pos token.Pos) {
	s := f.eval(e, true)
	switch s.kind {
	case wireStale:
		c.report(f.pkg, pos, fmt.Sprintf(
			"%s, which may alias mutable node state (flow: %s); deep-copy on send or mark the type //adhoclint:wireimmutable",
			desc, s.chain()))
	case wireParam:
		if f.obj == nil {
			return
		}
		key := obligKey{fn: f.obj, param: s.param}
		if c.obligSeen[key] {
			return
		}
		c.obligSeen[key] = true
		c.obligations = append(c.obligations, wireOblig{
			fn: f.obj, param: s.param, desc: desc,
			site: fmt.Sprintf("%s%s", funcDisplay(f.obj), posSuffix(f.pkg, pos)),
		})
	}
}

// checkResponses validates the first result of every Handler-shaped
// return.
func (c *wireChecker) checkResponses(f *wireFn) {
	if !handlerShape(f.pkg, f.decl, c.simnetPath, c.payload) {
		return
	}
	ast.Inspect(f.decl.Body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 3 {
			return true
		}
		c.checkPayloadExpr(f, ret.Results[0],
			fmt.Sprintf("response of %s", f.display()), ret.Pos())
		return true
	})
}

// checkImmutableWrites enforces the wireimmutable convention: element
// writes to a documented-immutable value are only allowed on locally
// fresh copies (nb := b.Clone(); nb[k] = v).
func (c *wireChecker) checkImmutableWrites(f *wireFn) {
	for _, w := range f.elems {
		t := f.exprType(w.base)
		if t == nil || !c.typeImmutable(t) {
			continue
		}
		if !f.freshForWrite(w.base, map[types.Object]bool{}) {
			c.report(f.pkg, w.pos, fmt.Sprintf(
				"element write to documented-immutable %s through a value that may be shared; Clone before mutating",
				typeDisplay(t)))
		}
	}
}

// freshForWrite reports whether the expression is a locally fresh value —
// built by make/new/composite literal/Clone/append-onto-fresh in this
// function. Unlike eval it does not treat documented-immutable types as
// wire-safe: it is the check that keeps the documentation true.
func (f *wireFn) freshForWrite(e ast.Expr, busy map[types.Object]bool) bool {
	info := f.pkg.Info
	switch e := unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		return e.Op == token.AND && f.freshForWrite(e.X, busy)
	case *ast.CallExpr:
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() {
			return len(e.Args) == 1 && f.freshForWrite(e.Args[0], busy)
		}
		switch fun := unparen(e.Fun).(type) {
		case *ast.Ident:
			if _, b := info.Uses[fun].(*types.Builtin); b || info.Uses[fun] == nil {
				switch fun.Name {
				case "make", "new":
					return true
				case "append":
					return len(e.Args) > 0 && f.freshForWrite(e.Args[0], busy)
				}
			}
		case *ast.SelectorExpr:
			if copyVerbs[fun.Sel.Name] {
				if _, isFunc := info.Uses[fun.Sel].(*types.Func); isFunc {
					return true
				}
			}
		}
		if callee, _ := staticCallee(info, e); callee != nil {
			return f.c.freshSummary(callee)
		}
		return false
	case *ast.Ident:
		if e.Name == "nil" {
			return true
		}
		obj := defOrUse(info, e)
		v, isVar := obj.(*types.Var)
		if !isVar || v.IsField() || f.paramIndex(obj) >= 0 ||
			obj.Parent() == nil || obj.Parent() == obj.Pkg().Scope() {
			return false
		}
		if busy[obj] {
			return true // x = append(x, ...) keeps x fresh
		}
		busy[obj] = true
		defer delete(busy, obj)
		rhss := f.assigns[obj]
		if len(rhss) == 0 {
			return false
		}
		for _, rhs := range rhss {
			if !f.freshForWrite(rhs, busy) {
				return false
			}
		}
		return true
	}
	return false
}

// checkRequestCapture flags a handler storing a request-derived reference
// directly into receiver state.
func (c *wireChecker) checkRequestCapture(f *wireFn) {
	if !handlerShape(f.pkg, f.decl, c.simnetPath, c.payload) {
		return
	}
	recv := recvObj(f.pkg, f.decl)
	if recv == nil {
		return
	}
	for _, w := range f.elems {
		if w.root != recv || w.rhs == nil {
			continue
		}
		if t := f.exprType(w.rhs); t != nil && c.typeRefFree(t) {
			continue
		}
		if f.wireDerivedExpr(w.rhs) {
			c.report(f.pkg, w.pos, fmt.Sprintf(
				"handler stores request-derived reference %s into node state; deep-copy on receive",
				renderExpr(w.rhs)))
		}
	}
}

// recvObj returns the receiver object of a method declaration.
func recvObj(p *Package, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) != 1 || len(fn.Recv.List[0].Names) != 1 {
		return nil
	}
	return p.Info.Defs[fn.Recv.List[0].Names[0]]
}

// resolveObligations walks deferred parameter checks up the call graph:
// each caller of a payload-forwarding function must feed it a wire-safe
// argument.
func (c *wireChecker) resolveObligations() {
	graph := c.prog.CallGraph()
	for i := 0; i < len(c.obligations); i++ {
		ob := c.obligations[i]
		for _, node := range graph.funcs {
			for _, site := range node.calls {
				if site.callee != ob.fn {
					continue
				}
				call := callExprAt(node, site.pos)
				if call == nil || ob.param >= len(call.Args) {
					continue
				}
				f := c.fnFor(node.pkg, node.decl)
				s := f.eval(call.Args[ob.param], true)
				switch s.kind {
				case wireStale:
					if c.analyzed[node.pkg] {
						c.report(node.pkg, site.pos, fmt.Sprintf(
							"argument %s flows to the wire through %s (as %s), and may alias mutable node state (flow: %s); deep-copy before passing",
							renderExpr(call.Args[ob.param]), funcDisplay(ob.fn), ob.desc, s.chain()))
					}
				case wireParam:
					if f.obj == nil {
						continue
					}
					key := obligKey{fn: f.obj, param: s.param}
					if !c.obligSeen[key] {
						c.obligSeen[key] = true
						c.obligations = append(c.obligations, wireOblig{
							fn: f.obj, param: s.param, desc: ob.desc, site: ob.site,
						})
					}
				}
			}
		}
	}
}

// callExprAt recovers the call expression at a recorded call-site
// position.
func callExprAt(node *funcNode, pos token.Pos) *ast.CallExpr {
	var out *ast.CallExpr
	ast.Inspect(node.decl.Body, func(n ast.Node) bool {
		if out != nil {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok && call.Pos() == pos {
			out = call
			return false
		}
		return true
	})
	return out
}

func (c *wireChecker) report(p *Package, pos token.Pos, msg string) {
	if !c.analyzed[p] {
		return
	}
	c.diags = append(c.diags, diagAt(p, pos, ruleWireIso, msg))
}

// renderExpr prints an expression compactly for diagnostics.
func renderExpr(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return renderExpr(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return renderExpr(e.X) + "[" + renderExpr(e.Index) + "]"
	case *ast.SliceExpr:
		return renderExpr(e.X) + "[...]"
	case *ast.CallExpr:
		return renderExpr(e.Fun) + "(...)"
	case *ast.TypeAssertExpr:
		return renderExpr(e.X) + ".(T)"
	case *ast.StarExpr:
		return "*" + renderExpr(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + renderExpr(e.X)
	case *ast.CompositeLit:
		return renderExpr(e.Type) + "{...}"
	case *ast.ArrayType, *ast.MapType, *ast.StructType:
		return "T"
	case *ast.ParenExpr:
		return renderExpr(e.X)
	case *ast.BasicLit:
		return e.Value
	case *multiResult:
		return renderExpr(e.call)
	}
	if e == nil {
		return "?"
	}
	return fmt.Sprintf("%T", e)
}
