package main

import (
	"fmt"
	"go/ast"
	"go/types"
)

// checkDiscardedErrors flags `_ = x` where x has type error, and blank
// identifiers occupying an error position of a multi-value assignment, in
// non-test code. Errors in this codebase carry virtual-time and routing
// context (stale nodes, unreachable successors); silently dropping them
// hides exactly the churn conditions Sect. III-D is about.
func checkDiscardedErrors(p *Package) []Diagnostic {
	if p.Info == nil {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	isErr := func(t types.Type) bool { return t != nil && types.Identical(t, errType) }
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			// _ = err  /  _ = f()
			if len(as.Lhs) == 1 && len(as.Rhs) == 1 && isBlank(as.Lhs[0]) {
				if isErr(p.Info.TypeOf(as.Rhs[0])) {
					diags = append(diags, diagAt(p, as.Pos(), ruleDiscardedError,
						"error discarded with _ =: handle it or document why it is safe to drop"))
				}
				return true
			}
			// x, _ := f()  with the blank in an error slot
			if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
				tuple, ok := p.Info.TypeOf(as.Rhs[0]).(*types.Tuple)
				if !ok || tuple.Len() != len(as.Lhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					if isBlank(lhs) && isErr(tuple.At(i).Type()) {
						diags = append(diags, diagAt(p, lhs.Pos(), ruleDiscardedError,
							fmt.Sprintf("error result %d of the call is discarded with _: handle it or document why it is safe to drop", i+1)))
					}
				}
			}
			return true
		})
	}
	return diags
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
