package main

import (
	"fmt"
	"go/ast"
)

// guardedStruct describes one struct that owns a mutex named "mu": per the
// project convention (see DESIGN.md "Concurrency & determinism
// conventions"), the fields declared after mu are guarded by it, the
// fields before it are immutable after construction or independently
// synchronized.
type guardedStruct struct {
	name   string
	fields map[string]bool // guarded field names
}

// collectGuardedStructs finds every convention-following struct in the
// package's files.
func collectGuardedStructs(files []*ast.File) map[string]guardedStruct {
	out := map[string]guardedStruct{}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			guarded := map[string]bool{}
			seenMu := false
			for _, field := range st.Fields.List {
				if !seenMu {
					if len(field.Names) == 1 && field.Names[0].Name == "mu" && isSyncMutexType(field.Type) {
						seenMu = true
					}
					continue
				}
				for _, name := range field.Names {
					guarded[name.Name] = true
				}
			}
			if seenMu && len(guarded) > 0 {
				out[ts.Name.Name] = guardedStruct{name: ts.Name.Name, fields: guarded}
			}
			return true
		})
	}
	return out
}

func isSyncMutexType(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "sync" {
		return false
	}
	return sel.Sel.Name == "Mutex" || sel.Sel.Name == "RWMutex"
}

// checkGuardedFields enforces the mu-guards-following-fields convention:
// in a method of a mutex-owning struct, every access to a guarded field
// through the receiver must sit inside a held-lock region of the
// receiver's mu. Methods whose name ends in "Locked" are assumed to be
// called with the lock already held and are skipped.
func checkGuardedFields(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, group := range [][]*ast.File{p.Files, p.TestFiles} {
		structs := collectGuardedStructs(group)
		if len(structs) == 0 {
			continue
		}
		for _, f := range group {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				gs, ok := structs[recvTypeName(fn)]
				if !ok {
					continue
				}
				recv := recvName(fn)
				if recv == "" || hasSuffixLocked(fn.Name.Name) {
					continue
				}
				regions := muRegions(fn)
				owner := recv + ".mu"
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					base, ok := sel.X.(*ast.Ident)
					if !ok || base.Name != recv || !gs.fields[sel.Sel.Name] {
						return true
					}
					if _, held := insideAny(regions, sel.Pos(), owner); !held {
						diags = append(diags, Diagnostic{
							Pos:  p.Fset.Position(sel.Pos()),
							Rule: ruleGuarded,
							Msg: fmt.Sprintf("%s.%s is guarded by %s (declared after it) but accessed in %s without holding the lock",
								recv, sel.Sel.Name, owner, fn.Name.Name),
						})
					}
					return true
				})
			}
		}
	}
	return diags
}

func hasSuffixLocked(name string) bool {
	return len(name) >= 6 && name[len(name)-6:] == "Locked"
}
