package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// The codec-coverage analysis (rule "codec") cross-checks the payload
// codec against the wire-type inventory of all RPC vocabularies. A wire
// type is any concrete module-declared type that travels as a request or
// response: asserted in a HandleCall dispatch arm, passed to or asserted
// from a Network.Call/Send/Transfer site. For every wire type the rule
// demands:
//
//   - the type is gob-registered in the codec package (the package that
//     declares EncodePayload), so the reflection fallback can always carry
//     it behind the Payload interface;
//   - no unexported direct fields — gob silently drops them, truncating
//     the payload without an error;
//   - either a hand-written binary codec (an EncodeBinary(dst []byte)
//     []byte / DecodeBinary([]byte) ([]byte, error) pair whose bodies
//     mention every direct field, wired into the codec package's
//     binaryTag and decodeBinary dispatch functions) or an explicit
//     //adhoclint:gobfallback <reason> directive on the type declaration
//     acknowledging that the type stays on reflection.
//
// The field-coverage half works like the payload-size rule: adding a field
// to a wire struct without teaching both codec methods about it is a build
// break under lint, not a silent wire truncation. The checks are gated on
// the program actually containing a codec package, so unrelated trees and
// fixtures without one stay quiet.

// gobFallbackDirective documents a wire type that deliberately rides gob.
const gobFallbackDirective = "adhoclint:gobfallback"

// Names of the codec package's dispatch functions a binary type must
// appear in.
const (
	binaryTagFunc    = "binaryTag"
	decodeBinaryFunc = "decodeBinary"
)

// checkCodec runs the codec rule over the program.
func checkCodec(prog *Program, enabled map[string]bool) []Diagnostic {
	if enabled != nil && !enabled[ruleCodec] {
		return nil
	}
	c := &codecChecker{
		prog:       prog,
		simnetPath: prog.modPath + "/internal/simnet",
		analyzed:   prog.analyzedSet(),
	}
	c.collectWireTypes()
	c.collectCodecPackages()
	if len(c.codecPkgs) == 0 {
		return nil
	}
	c.collectFallbackDirectives()
	c.checkTypes()
	sortDiagnostics(c.diags)
	return c.diags
}

type codecChecker struct {
	prog       *Program
	simnetPath string
	analyzed   map[*Package]bool

	wire      []*types.Named // deduplicated, sorted by display name
	codecPkgs []*Package     // packages declaring EncodePayload

	registered map[*types.Named]bool   // gob.Register'd in a codec package
	inTag      map[*types.Named]bool   // mentioned in binaryTag
	inDecode   map[*types.Named]bool   // mentioned in decodeBinary
	fallback   map[*types.Named]string // gobfallback directive reason ("" = bare)
	hasDir     map[*types.Named]bool

	diags []Diagnostic
}

// collectWireTypes builds the wire-type inventory from the same handler
// and call-site facts the rpc-protocol rule uses.
func (c *codecChecker) collectWireTypes() {
	loaded := c.prog.loadedPackages()
	seen := map[*types.Named]bool{}
	add := func(t types.Type) {
		named := moduleNamed(t, c.prog.modPath)
		if named != nil && !seen[named] {
			seen[named] = true
			c.wire = append(c.wire, named)
		}
	}
	for _, hc := range collectHandlerCases(loaded, c.simnetPath) {
		for _, t := range hc.reqTypes {
			add(t)
		}
		add(hc.respType)
	}
	for _, fc := range collectFabricCalls(loaded, c.simnetPath) {
		add(fc.reqType)
		add(fc.respAssert)
	}
	sort.Slice(c.wire, func(i, j int) bool {
		return typeDisplay(c.wire[i]) < typeDisplay(c.wire[j])
	})
}

// moduleNamed strips pointers and returns the named type when it is
// declared inside the module; nil otherwise.
func moduleNamed(t types.Type, modPath string) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	if !strings.HasPrefix(named.Obj().Pkg().Path(), modPath) {
		return nil
	}
	return named
}

// collectCodecPackages finds the packages declaring a top-level
// EncodePayload function and records, per wire type, whether it is
// gob-registered there and mentioned in the binaryTag/decodeBinary
// dispatch bodies.
func (c *codecChecker) collectCodecPackages() {
	c.registered = map[*types.Named]bool{}
	c.inTag = map[*types.Named]bool{}
	c.inDecode = map[*types.Named]bool{}
	wireSet := map[*types.Named]bool{}
	for _, n := range c.wire {
		wireSet[n] = true
	}
	for _, p := range c.prog.loadedPackages() {
		if p.Types == nil || p.Types.Scope().Lookup("EncodePayload") == nil {
			continue
		}
		c.codecPkgs = append(c.codecPkgs, p)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if callee, _ := staticCallee(p.Info, n); callee != nil &&
						callee.Pkg() != nil && callee.Pkg().Path() == "encoding/gob" &&
						callee.Name() == "Register" && len(n.Args) == 1 {
						if named := moduleNamed(p.Info.TypeOf(n.Args[0]), c.prog.modPath); named != nil {
							c.registered[named] = true
						}
					}
				case *ast.FuncDecl:
					if n.Recv != nil || n.Body == nil {
						return true
					}
					var mark map[*types.Named]bool
					switch n.Name.Name {
					case binaryTagFunc:
						mark = c.inTag
					case decodeBinaryFunc:
						mark = c.inDecode
					default:
						return true
					}
					ast.Inspect(n.Body, func(e ast.Node) bool {
						expr, ok := e.(ast.Expr)
						if !ok {
							return true
						}
						tv, ok := p.Info.Types[expr]
						if !ok {
							return true
						}
						if named := moduleNamed(tv.Type, c.prog.modPath); named != nil && wireSet[named] {
							mark[named] = true
						}
						return true
					})
				}
				return true
			})
		}
	}
}

// collectFallbackDirectives finds //adhoclint:gobfallback directives on
// wire-type declarations across the loaded packages, wireimmutable-style:
// the directive sits on the TypeSpec line or the line above it.
func (c *codecChecker) collectFallbackDirectives() {
	c.fallback = map[*types.Named]string{}
	c.hasDir = map[*types.Named]bool{}
	byObj := map[types.Object]*types.Named{}
	for _, n := range c.wire {
		byObj[n.Obj()] = n
	}
	for _, p := range c.prog.loadedPackages() {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			marked := map[int]string{}
			lines := map[int]bool{}
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
					if !strings.HasPrefix(text, gobFallbackDirective) {
						continue
					}
					line := p.Fset.Position(cm.Pos()).Line
					lines[line] = true
					marked[line] = strings.TrimSpace(strings.TrimPrefix(text, gobFallbackDirective))
				}
			}
			if len(lines) == 0 {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				spec, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				line := p.Fset.Position(spec.Name.Pos()).Line
				at := line
				if !lines[at] {
					at = line - 1
				}
				if !lines[at] {
					return true
				}
				if named, ok := byObj[p.Info.Defs[spec.Name]]; ok {
					c.hasDir[named] = true
					c.fallback[named] = marked[at]
				}
				return true
			})
		}
	}
}

// checkTypes applies the per-type codec requirements.
func (c *codecChecker) checkTypes() {
	decls := map[*types.Func]*wireDecl{}
	for _, p := range c.prog.loadedPackages() {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
					decls[obj] = &wireDecl{pkg: p, decl: fn}
				}
			}
		}
	}
	for _, named := range c.wire {
		p := c.pkgOf(named)
		if p == nil || !c.analyzed[p] {
			continue
		}
		pos := named.Obj().Pos()
		name := typeDisplay(named)

		if !c.registered[named] {
			c.diags = append(c.diags, diagAt(p, pos, ruleCodec, fmt.Sprintf(
				"wire type %s is not gob-registered in the payload codec; DecodePayload cannot carry it behind the Payload interface", name)))
		}
		if st, ok := named.Underlying().(*types.Struct); ok {
			for i := 0; i < st.NumFields(); i++ {
				f := st.Field(i)
				if !f.Exported() {
					c.diags = append(c.diags, diagAt(p, f.Pos(), ruleCodec, fmt.Sprintf(
						"wire type %s has unexported field %s, which gob silently drops; export it or move it off the wire", name, f.Name())))
				}
			}
		}

		enc, dec := methodByName(named, "EncodeBinary"), methodByName(named, "DecodeBinary")
		if enc == nil {
			if !c.hasDir[named] {
				c.diags = append(c.diags, diagAt(p, pos, ruleCodec, fmt.Sprintf(
					"wire type %s rides gob reflection; give it an EncodeBinary/DecodeBinary pair or document why not with //adhoclint:gobfallback <reason>", name)))
			} else if c.fallback[named] == "" {
				c.diags = append(c.diags, diagAt(p, pos, ruleCodec, fmt.Sprintf(
					"wire type %s has a bare //adhoclint:gobfallback directive; state the reason it stays on reflection", name)))
			}
			continue
		}
		if c.hasDir[named] {
			c.diags = append(c.diags, diagAt(p, pos, ruleCodec, fmt.Sprintf(
				"wire type %s has both a binary codec and a //adhoclint:gobfallback directive; drop one", name)))
		}
		encOK, decOK := encodeBinaryShape(enc), false
		if !encOK {
			c.diags = append(c.diags, diagAt(p, enc.Pos(), ruleCodec, fmt.Sprintf(
				"%s.EncodeBinary must have signature EncodeBinary(dst []byte) []byte", name)))
		}
		if dec == nil {
			c.diags = append(c.diags, diagAt(p, pos, ruleCodec, fmt.Sprintf(
				"wire type %s has EncodeBinary but no DecodeBinary; the codec cannot reverse it", name)))
		} else if decOK = decodeBinaryShape(dec); !decOK {
			c.diags = append(c.diags, diagAt(p, dec.Pos(), ruleCodec, fmt.Sprintf(
				"%s.DecodeBinary must have signature DecodeBinary(b []byte) ([]byte, error)", name)))
		}
		if !c.inTag[named] {
			c.diags = append(c.diags, diagAt(p, pos, ruleCodec, fmt.Sprintf(
				"wire type %s has a binary codec but no case in the codec package's %s dispatch; it would silently ride gob", name, binaryTagFunc)))
		}
		if !c.inDecode[named] {
			c.diags = append(c.diags, diagAt(p, pos, ruleCodec, fmt.Sprintf(
				"wire type %s has a binary codec but no case in the codec package's %s dispatch; its frames would be undecodable", name, decodeBinaryFunc)))
		}
		// Field coverage only makes sense for well-shaped codec methods.
		if st, ok := named.Underlying().(*types.Struct); ok {
			if encOK {
				c.checkFieldCoverage(p, named, st, enc, decls)
			}
			if decOK {
				c.checkFieldCoverage(p, named, st, dec, decls)
			}
		}
	}
}

// checkFieldCoverage demands that a codec method's body mention every
// direct field of the wire struct, payload-size-style. The TraceContext
// field gets no exemption here: it costs zero modeled bytes but must still
// cross the wire for causality.
func (c *codecChecker) checkFieldCoverage(p *Package, named *types.Named, st *types.Struct, m *types.Func, decls map[*types.Func]*wireDecl) {
	d, ok := decls[m]
	if !ok {
		return
	}
	mentioned := fieldMentions(d.decl)
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); !mentioned[f.Name()] {
			missing = append(missing, f.Name())
		}
	}
	if len(missing) > 0 {
		c.diags = append(c.diags, diagAt(d.pkg, d.decl.Pos(), ruleCodec, fmt.Sprintf(
			"%s.%s does not mention field%s %s of %s; the binary wire form would drop %s",
			typeDisplay(named), m.Name(), plural(missing), strings.Join(missing, ", "),
			typeDisplay(named), pronoun(len(missing)))))
	}
}

func pronoun(n int) string {
	if n == 1 {
		return "it"
	}
	return "them"
}

// pkgOf maps a named type back to its loaded Package.
func (c *codecChecker) pkgOf(named *types.Named) *Package {
	for _, p := range c.prog.loadedPackages() {
		if p.Types == named.Obj().Pkg() {
			return p
		}
	}
	return nil
}

// methodByName finds an explicitly declared method of the named type.
func methodByName(named *types.Named, name string) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		if m := named.Method(i); m.Name() == name {
			return m
		}
	}
	return nil
}

// encodeBinaryShape checks for EncodeBinary(dst []byte) []byte.
func encodeBinaryShape(m *types.Func) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	return isByteSlice(sig.Params().At(0).Type()) && isByteSlice(sig.Results().At(0).Type())
}

// decodeBinaryShape checks for DecodeBinary(b []byte) ([]byte, error).
func decodeBinaryShape(m *types.Func) bool {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 2 {
		return false
	}
	return isByteSlice(sig.Params().At(0).Type()) &&
		isByteSlice(sig.Results().At(0).Type()) &&
		isErrorType(sig.Results().At(1).Type())
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
