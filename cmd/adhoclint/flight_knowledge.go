package main

import "go/types"

// The flight recorder (internal/flight) is the second observability leaf
// the whole-program rules know by contract rather than by derivation:
//
//   - flight.Recorder.Emit is fabric-neutral: recording an event moves no
//     modeled bytes or VTime, so the vtime rule's fabric-reach closure and
//     the faultpath touches closure both stop at the flight package, the
//     same way they stop at internal/trace.
//   - Emit is allocation-free on the steady-state hot path: rings are
//     preallocated at arm time and events are all-value-type, so the
//     alloc rule treats flight callees as reachability barriers instead
//     of flagging the ring bookkeeping inside them.
//   - flight.Event is reference-free (strings and integers only), so it
//     is wire-safe wherever it appears; the wireiso rule needs no special
//     case for it, and the fixture pins that events in payload positions
//     stay accepted.

// flightPath is the import path of the module's flight-recorder package.
func flightPath(modPath string) string { return modPath + "/internal/flight" }

// inFlightPackage reports whether fn is declared in the module's flight
// package (Recorder.Emit and the monitor/incident helpers).
func inFlightPackage(fn *types.Func, modPath string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == flightPath(modPath)
}

// observabilityNeutral reports whether fn belongs to one of the two
// observability leaf packages — trace or flight — whose functions are
// fabric-neutral and hot-path-safe by the contracts above.
func observabilityNeutral(fn *types.Func, modPath string) bool {
	return inTracePackage(fn, modPath) || inFlightPackage(fn, modPath)
}
