package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// The lock-order analysis infers, across the whole analyzed program, the
// partial order in which convention-named mutexes are acquired — directly
// and transitively through statically resolvable calls — and reports:
//
//   - cycles in that order (potential deadlocks), with witness call chains;
//   - same-mutex re-acquisition while the mutex is already held, both
//     directly and by calling a same-receiver method that locks again;
//
// and, under the lock-blocking rule id, upgrades PR 1's intraprocedural
// check: a call made while a mutex is held is flagged when the callee
// transitively performs a blocking operation (simnet fabric call, channel
// operation, sleep or wait), with the call chain to the blocking site.

// lockClass identifies a mutex by declaration site rather than instance:
// "«pkgpath».«Type».mu" for a struct field reached through a typed owner,
// "«pkgpath».mu" for a package-level mutex. Function-local mutexes have no
// class and contribute no interprocedural facts.
type lockClass string

// mutexClass classifies the mutex denoted by muExpr (the expression the
// convention rules already recognize: "mu" or "«chain».mu").
func mutexClass(p *Package, muExpr ast.Expr) lockClass {
	if p.Info == nil {
		return ""
	}
	switch e := muExpr.(type) {
	case *ast.Ident: // plain "mu": package-level or local
		if v, ok := p.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return lockClass(v.Pkg().Path() + ".mu")
		}
	case *ast.SelectorExpr: // "«base».mu": classify by the base's type
		tv, ok := p.Info.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			return lockClass(named.Obj().Pkg().Path() + "." + named.Obj().Name() + ".mu")
		}
	}
	return ""
}

// acqStep records how a function (transitively) acquires a mutex class:
// directly at pos (via == nil), or by calling via at pos.
type acqStep struct {
	via   *types.Func
	pos   token.Pos
	write bool
}

// blkStep records how a function (transitively) reaches a blocking
// operation.
type blkStep struct {
	via  *types.Func
	pos  token.Pos
	desc string
}

// lockSummary is the per-function fact set the fixpoint computes.
type lockSummary struct {
	node     *funcNode
	events   []muEvent
	regions  []muRegion
	recvName string
	// acquires maps every mutex class the function may lock — directly or
	// through calls — to one witness step.
	acquires map[lockClass]acqStep
	// block is set when the function may perform a blocking operation.
	block *blkStep
	// recvMu is set when the function locks its own receiver's mu,
	// directly or via a same-receiver method call.
	recvMu *acqStep
}

// buildLockSummaries computes direct lock/block facts per function and
// closes them over the call graph.
func buildLockSummaries(prog *Program) map[*types.Func]*lockSummary {
	cg := prog.CallGraph()
	sums := make(map[*types.Func]*lockSummary, len(cg.funcs))
	for obj, node := range cg.funcs {
		s := &lockSummary{
			node:     node,
			events:   muEvents(node.decl),
			regions:  muRegions(node.decl),
			recvName: recvName(node.decl),
			acquires: map[lockClass]acqStep{},
		}
		for _, e := range s.events {
			if !e.lock {
				continue
			}
			if c := mutexClass(node.pkg, e.expr); c != "" {
				if old, ok := s.acquires[c]; !ok || (e.write && !old.write) {
					s.acquires[c] = acqStep{pos: e.pos, write: e.write}
				}
			}
			if s.recvName != "" && e.owner == s.recvName+".mu" {
				if s.recvMu == nil || (e.write && !s.recvMu.write) {
					s.recvMu = &acqStep{pos: e.pos, write: e.write}
				}
			}
		}
		s.block = directBlock(node.decl)
		sums[obj] = s
	}
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			for _, c := range s.node.calls {
				if c.inGo {
					continue
				}
				g, ok := sums[c.callee]
				if !ok {
					continue
				}
				for cl, step := range g.acquires {
					if _, have := s.acquires[cl]; !have {
						s.acquires[cl] = acqStep{via: c.callee, pos: c.pos, write: step.write}
						changed = true
					}
				}
				if s.block == nil && g.block != nil {
					s.block = &blkStep{via: c.callee, pos: c.pos, desc: g.block.desc}
					changed = true
				}
				if s.recvMu == nil && s.recvName != "" && c.recv == s.recvName && g.recvMu != nil {
					s.recvMu = &acqStep{via: c.callee, pos: c.pos, write: g.recvMu.write}
					changed = true
				}
			}
		}
	}
	return sums
}

// directBlock finds the first potentially blocking operation lexically in
// the body: a channel operation, a select, or a call whose selector name
// is one of the blocking fabric/clock operations. Goroutine bodies are
// excluded — they do not block the caller.
func directBlock(fn *ast.FuncDecl) *blkStep {
	var b *blkStep
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if b != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.SendStmt:
			b = &blkStep{pos: n.Pos(), desc: "channel send"}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				b = &blkStep{pos: n.Pos(), desc: "channel receive"}
			}
		case *ast.SelectStmt:
			b = &blkStep{pos: n.Pos(), desc: "select"}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if kind, blocking := blockingCalls[sel.Sel.Name]; blocking {
					b = &blkStep{pos: n.Pos(), desc: fmt.Sprintf("%s (.%s)", kind, sel.Sel.Name)}
				}
			}
		}
		return true
	})
	return b
}

// lockEdge is one observed "from held while to acquired" fact with its
// first witness.
type lockEdge struct {
	from, to lockClass
	fn       *types.Func
	pkg      *Package
	pos      token.Pos   // the nested lock (via == nil) or the call
	via      *types.Func // callee through which `to` is reached
}

// checkProgramLocks runs the whole-program lock analyses, emitting
// lock-order and (interprocedural) lock-blocking diagnostics.
func checkProgramLocks(prog *Program, enabled map[string]bool) []Diagnostic {
	on := func(rule string) bool { return enabled == nil || enabled[rule] }
	if !on(ruleLockOrder) && !on(ruleLockBlocking) {
		return nil
	}
	sums := buildLockSummaries(prog)

	objs := make([]*types.Func, 0, len(sums))
	for obj := range sums {
		objs = append(objs, obj)
	}
	sort.Slice(objs, func(i, j int) bool {
		return sums[objs[i]].node.decl.Pos() < sums[objs[j]].node.decl.Pos()
	})

	edges := map[[2]lockClass]*lockEdge{}
	addEdge := func(e *lockEdge) {
		key := [2]lockClass{e.from, e.to}
		if _, ok := edges[key]; !ok {
			edges[key] = e
		}
	}

	var diags []Diagnostic
	for _, obj := range objs {
		s := sums[obj]
		p := s.node.pkg
		fnName := s.node.decl.Name.Name
		for _, r := range s.regions {
			from := mutexClass(p, r.expr)
			for _, e := range s.events {
				if !e.lock || e.pos == r.start || !r.contains(e.pos) {
					continue
				}
				if e.owner == r.owner {
					// Same mutex re-locked while held: deadlock unless both
					// sides are read locks.
					if on(ruleLockOrder) && (r.write || e.write) {
						diags = append(diags, diagAt(p, e.pos, ruleLockOrder,
							fmt.Sprintf("%s acquired again in %s while already held (self-deadlock)", e.owner, fnName)))
					}
					continue
				}
				to := mutexClass(p, e.expr)
				if from == "" || to == "" || from == to {
					continue
				}
				addEdge(&lockEdge{from: from, to: to, fn: obj, pkg: p, pos: e.pos})
			}
			for _, c := range s.node.calls {
				if c.inGo || !r.contains(c.pos) {
					continue
				}
				g, ok := sums[c.callee]
				if !ok {
					continue
				}
				if on(ruleLockBlocking) && g.block != nil {
					// The intraprocedural rule already flags calls whose own
					// selector name is blocking; only report callees that
					// block somewhere beneath the call.
					if _, direct := blockingCalls[c.callee.Name()]; !direct {
						chain, bpos := blockChain(sums, c.callee)
						diags = append(diags, diagAt(p, c.pos, ruleLockBlocking,
							fmt.Sprintf("call to %s may block (%s%s) while %s is held in %s",
								chain, g.blockDesc(sums), posSuffix(p, bpos), r.owner, fnName)))
					}
				}
				if on(ruleLockOrder) && g.recvMu != nil && c.recv != "" &&
					c.recv == ownerBase(r.owner) && (r.write || g.recvMu.write) {
					chain, lpos := recvMuChain(sums, c.callee)
					diags = append(diags, diagAt(p, c.pos, ruleLockOrder,
						fmt.Sprintf("%s holds %s and calls %s, which locks it again%s (recursive acquisition deadlock)",
							fnName, r.owner, chain, posSuffix(p, lpos))))
				}
				if from != "" {
					classes := make([]lockClass, 0, len(g.acquires))
					for cl := range g.acquires {
						classes = append(classes, cl)
					}
					sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
					for _, cl := range classes {
						if cl == from {
							continue // same class via a call: instance identity unknown
						}
						addEdge(&lockEdge{from: from, to: cl, fn: obj, pkg: p, pos: c.pos, via: c.callee})
					}
				}
			}
		}
	}
	if on(ruleLockOrder) {
		diags = append(diags, lockCycleDiags(sums, edges)...)
	}
	return diags
}

// blockDesc returns the human description of the function's (transitive)
// blocking operation.
func (s *lockSummary) blockDesc(sums map[*types.Func]*lockSummary) string {
	cur := s
	for cur.block != nil && cur.block.via != nil {
		next, ok := sums[cur.block.via]
		if !ok {
			break
		}
		cur = next
	}
	if cur.block != nil {
		return cur.block.desc
	}
	return "blocking operation"
}

// blockChain renders the call chain from fn to its blocking operation and
// returns the blocking position.
func blockChain(sums map[*types.Func]*lockSummary, fn *types.Func) (string, token.Pos) {
	parts := []string{funcDisplay(fn)}
	cur := fn
	for {
		s, ok := sums[cur]
		if !ok || s.block == nil {
			return strings.Join(parts, " → "), token.NoPos
		}
		if s.block.via == nil {
			return strings.Join(parts, " → "), s.block.pos
		}
		cur = s.block.via
		parts = append(parts, funcDisplay(cur))
	}
}

// recvMuChain renders the same-receiver chain from fn to the re-acquiring
// lock and returns the lock position.
func recvMuChain(sums map[*types.Func]*lockSummary, fn *types.Func) (string, token.Pos) {
	parts := []string{funcDisplay(fn)}
	cur := fn
	for {
		s, ok := sums[cur]
		if !ok || s.recvMu == nil {
			return strings.Join(parts, " → "), token.NoPos
		}
		if s.recvMu.via == nil {
			return strings.Join(parts, " → "), s.recvMu.pos
		}
		cur = s.recvMu.via
		parts = append(parts, funcDisplay(cur))
	}
}

// acqChain renders the call chain from fn to its acquisition of class cl
// and returns the lock position.
func acqChain(sums map[*types.Func]*lockSummary, fn *types.Func, cl lockClass) (string, token.Pos) {
	parts := []string{funcDisplay(fn)}
	cur := fn
	for {
		s, ok := sums[cur]
		if !ok {
			return strings.Join(parts, " → "), token.NoPos
		}
		step, ok := s.acquires[cl]
		if !ok {
			return strings.Join(parts, " → "), token.NoPos
		}
		if step.via == nil {
			return strings.Join(parts, " → "), step.pos
		}
		cur = step.via
		parts = append(parts, funcDisplay(cur))
	}
}

// posSuffix renders " at file:line" for a known position.
func posSuffix(p *Package, pos token.Pos) string {
	if pos == token.NoPos {
		return ""
	}
	position := p.Fset.Position(pos)
	return fmt.Sprintf(" at %s:%d", filepath.Base(position.Filename), position.Line)
}

// ownerBase strips the trailing ".mu" of a region owner ("s.mu" → "s").
func ownerBase(owner string) string {
	return strings.TrimSuffix(owner, ".mu")
}

// lockCycleDiags finds cycles in the acquired-while-held digraph and
// reports each strongly connected component once, with the witness for
// every edge of one representative cycle.
func lockCycleDiags(sums map[*types.Func]*lockSummary, edges map[[2]lockClass]*lockEdge) []Diagnostic {
	adj := map[lockClass][]lockClass{}
	for key := range edges {
		adj[key[0]] = append(adj[key[0]], key[1])
	}
	for from := range adj {
		sort.Slice(adj[from], func(i, j int) bool { return adj[from][i] < adj[from][j] })
	}
	sccs := stronglyConnected(adj)

	var diags []Diagnostic
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
		cycle := findCycle(adj, scc)
		if cycle == nil {
			continue
		}
		names := make([]string, 0, len(cycle)+1)
		for _, c := range cycle {
			names = append(names, shortClass(c))
		}
		names = append(names, shortClass(cycle[0]))
		var witnesses []string
		var first *lockEdge
		for i := range cycle {
			e := edges[[2]lockClass{cycle[i], cycle[(i+1)%len(cycle)]}]
			if e == nil {
				continue
			}
			if first == nil {
				first = e
			}
			witnesses = append(witnesses, renderEdgeWitness(sums, e))
		}
		if first == nil {
			continue
		}
		diags = append(diags, diagAt(first.pkg, first.pos, ruleLockOrder,
			fmt.Sprintf("lock-order cycle (potential deadlock): %s — %s",
				strings.Join(names, " → "), strings.Join(witnesses, "; "))))
	}
	return diags
}

// renderEdgeWitness explains one acquired-while-held edge.
func renderEdgeWitness(sums map[*types.Func]*lockSummary, e *lockEdge) string {
	at := posSuffix(e.pkg, e.pos)
	if e.via == nil {
		return fmt.Sprintf("%s locks %s while holding %s%s",
			funcDisplay(e.fn), shortClass(e.to), shortClass(e.from), at)
	}
	chain, lpos := acqChain(sums, e.via, e.to)
	return fmt.Sprintf("%s%s calls %s, which locks %s%s",
		funcDisplay(e.fn), at, chain, shortClass(e.to), posSuffix(e.pkg, lpos))
}

// stronglyConnected computes SCCs of the class digraph (iterative Tarjan).
func stronglyConnected(adj map[lockClass][]lockClass) [][]lockClass {
	nodes := make([]lockClass, 0, len(adj))
	seen := map[lockClass]bool{}
	for from, tos := range adj {
		if !seen[from] {
			seen[from] = true
			nodes = append(nodes, from)
		}
		for _, to := range tos {
			if !seen[to] {
				seen[to] = true
				nodes = append(nodes, to)
			}
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	index := map[lockClass]int{}
	low := map[lockClass]int{}
	onStack := map[lockClass]bool{}
	var stack []lockClass
	var sccs [][]lockClass
	next := 0

	var strongconnect func(v lockClass)
	strongconnect = func(v lockClass) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range adj[v] {
			if _, visited := index[w]; !visited {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []lockClass
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range nodes {
		if _, visited := index[v]; !visited {
			strongconnect(v)
		}
	}
	return sccs
}

// findCycle returns one cycle through the SCC starting (and ending) at its
// smallest class.
func findCycle(adj map[lockClass][]lockClass, scc []lockClass) []lockClass {
	in := map[lockClass]bool{}
	for _, c := range scc {
		in[c] = true
	}
	start := scc[0]
	var path []lockClass
	visited := map[lockClass]bool{}
	var dfs func(v lockClass) bool
	dfs = func(v lockClass) bool {
		path = append(path, v)
		visited[v] = true
		for _, w := range adj[v] {
			if !in[w] {
				continue
			}
			if w == start && len(path) > 1 {
				return true
			}
			if !visited[w] {
				if dfs(w) {
					return true
				}
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if dfs(start) {
		return path
	}
	return nil
}
