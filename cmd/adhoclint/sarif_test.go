package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/token"
	"sort"
	"strings"
	"testing"
)

// sarifSchemaSubset is the part of the SARIF 2.1.0 schema adhoclint's
// output exercises, transcribed from the published schema
// (https://json.schemastore.org/sarif-2.1.0.json). Object schemas here are
// closed: a property the schema does not declare fails validation, which
// is what catches JSON-tag typos like "ruleID".
const sarifSchemaSubset = `{
  "type": "object",
  "required": ["version", "runs"],
  "properties": {
    "$schema": {"type": "string"},
    "version": {"enum": ["2.1.0"]},
    "runs": {
      "type": "array",
      "items": {
        "type": "object",
        "required": ["tool"],
        "properties": {
          "tool": {
            "type": "object",
            "required": ["driver"],
            "properties": {
              "driver": {
                "type": "object",
                "required": ["name"],
                "properties": {
                  "name": {"type": "string"},
                  "rules": {
                    "type": "array",
                    "items": {
                      "type": "object",
                      "required": ["id"],
                      "properties": {
                        "id": {"type": "string"},
                        "shortDescription": {
                          "type": "object",
                          "required": ["text"],
                          "properties": {"text": {"type": "string"}}
                        }
                      }
                    }
                  }
                }
              }
            }
          },
          "results": {
            "type": "array",
            "items": {
              "type": "object",
              "required": ["message"],
              "properties": {
                "ruleId": {"type": "string"},
                "ruleIndex": {"type": "integer", "minimum": 0},
                "level": {"enum": ["none", "note", "warning", "error"]},
                "message": {
                  "type": "object",
                  "required": ["text"],
                  "properties": {"text": {"type": "string"}}
                },
                "locations": {
                  "type": "array",
                  "items": {
                    "type": "object",
                    "properties": {
                      "physicalLocation": {
                        "type": "object",
                        "properties": {
                          "artifactLocation": {
                            "type": "object",
                            "properties": {
                              "uri": {"type": "string"},
                              "uriBaseId": {"type": "string"}
                            }
                          },
                          "region": {
                            "type": "object",
                            "properties": {
                              "startLine": {"type": "integer", "minimum": 1},
                              "startColumn": {"type": "integer", "minimum": 1}
                            }
                          }
                        }
                      }
                    }
                  }
                }
              }
            }
          }
        }
      }
    }
  }
}`

// validateSchema is a minimal JSON-schema checker covering the keywords
// the subset uses: type, enum, required, properties (closed), items,
// minimum.
func validateSchema(schema map[string]any, value any, path string) []string {
	var errs []string
	if enum, ok := schema["enum"].([]any); ok {
		found := false
		for _, want := range enum {
			if value == want {
				found = true
			}
		}
		if !found {
			errs = append(errs, fmt.Sprintf("%s: %v not in enum %v", path, value, enum))
		}
		return errs
	}
	switch schema["type"] {
	case "object":
		obj, ok := value.(map[string]any)
		if !ok {
			return append(errs, fmt.Sprintf("%s: expected object, got %T", path, value))
		}
		if required, ok := schema["required"].([]any); ok {
			for _, key := range required {
				if _, present := obj[key.(string)]; !present {
					errs = append(errs, fmt.Sprintf("%s: missing required property %q", path, key))
				}
			}
		}
		props, _ := schema["properties"].(map[string]any)
		keys := make([]string, 0, len(obj))
		for k := range obj {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sub, declared := props[k].(map[string]any)
			if !declared {
				errs = append(errs, fmt.Sprintf("%s: unknown property %q", path, k))
				continue
			}
			errs = append(errs, validateSchema(sub, obj[k], path+"."+k)...)
		}
	case "array":
		arr, ok := value.([]any)
		if !ok {
			return append(errs, fmt.Sprintf("%s: expected array, got %T", path, value))
		}
		if items, ok := schema["items"].(map[string]any); ok {
			for i, elem := range arr {
				errs = append(errs, validateSchema(items, elem, fmt.Sprintf("%s[%d]", path, i))...)
			}
		}
	case "string":
		if _, ok := value.(string); !ok {
			errs = append(errs, fmt.Sprintf("%s: expected string, got %T", path, value))
		}
	case "integer":
		f, ok := value.(float64)
		if !ok || f != float64(int64(f)) {
			return append(errs, fmt.Sprintf("%s: expected integer, got %v", path, value))
		}
		if min, ok := schema["minimum"].(float64); ok && f < min {
			errs = append(errs, fmt.Sprintf("%s: %v below minimum %v", path, f, min))
		}
	}
	return errs
}

func validateSARIF(t *testing.T, data []byte) []string {
	t.Helper()
	var schema map[string]any
	if err := json.Unmarshal([]byte(sarifSchemaSubset), &schema); err != nil {
		t.Fatalf("schema subset does not parse: %v", err)
	}
	var doc any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	return validateSchema(schema, doc, "$")
}

func sampleDiags() []Diagnostic {
	return []Diagnostic{
		{Pos: token.Position{Filename: "internal/overlay/messages.go", Line: 36, Column: 1},
			Rule: rulePayloadSize, Msg: "SizeBytes of PutReq does not account for field Freq"},
		{Pos: token.Position{Filename: "internal/chord/node.go", Line: 120, Column: 2},
			Rule: ruleLockOrder, Msg: "lock-order cycle (potential deadlock): a → b → a"},
		{Pos: token.Position{Filename: "internal/overlay/table.go", Line: 131, Column: 3},
			Rule: ruleWireIso, Msg: "response of overlay.(*IndexNode).HandleCall sends overlay.RangeResp.Rows, which may alias mutable node state; deep-copy on send"},
		{Pos: token.Position{Filename: "internal/rdfpeers/range.go", Line: 77, Column: 2},
			Rule: ruleVTime, Msg: "payload of Transfer is sorted in place after send"},
		{Pos: token.Position{Filename: "internal/overlay/system.go", Line: 512, Column: 2},
			Rule: ruleFaultPath, Msg: "simnet.Parallel fan-out must declare its failure semantics: annotate //adhoclint:faultpath(abort-all) or //adhoclint:faultpath(collect-partial, reason)"},
	}
}

func TestSARIFValidatesAgainstSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, sampleDiags()); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	if errs := validateSARIF(t, buf.Bytes()); len(errs) > 0 {
		t.Errorf("SARIF output violates the schema subset:\n%s", strings.Join(errs, "\n"))
	}
}

// An empty run (no findings) must still be schema-valid: results and rules
// must encode as [] rather than null.
func TestSARIFEmptyRunValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, nil); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	if errs := validateSARIF(t, buf.Bytes()); len(errs) > 0 {
		t.Errorf("empty SARIF output violates the schema subset:\n%s", strings.Join(errs, "\n"))
	}
	if strings.Contains(buf.String(), "null") {
		t.Errorf("empty SARIF output contains null collections:\n%s", buf.String())
	}
}

// The validator itself must reject malformed documents — otherwise the
// two tests above prove nothing.
func TestSARIFValidatorRejectsBadDocuments(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, sampleDiags()); err != nil {
		t.Fatalf("writeSARIF: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	break1 := func(d map[string]any) { d["version"] = "1.0.0" }
	break2 := func(d map[string]any) {
		run := d["runs"].([]any)[0].(map[string]any)
		delete(run, "tool")
	}
	break3 := func(d map[string]any) {
		run := d["runs"].([]any)[0].(map[string]any)
		result := run["results"].([]any)[0].(map[string]any)
		loc := result["locations"].([]any)[0].(map[string]any)
		region := loc["physicalLocation"].(map[string]any)["region"].(map[string]any)
		region["startLine"] = 0.0
	}
	for i, breakDoc := range []func(map[string]any){break1, break2, break3} {
		var copy map[string]any
		if err := json.Unmarshal(buf.Bytes(), &copy); err != nil {
			t.Fatal(err)
		}
		breakDoc(copy)
		data, err := json.Marshal(copy)
		if err != nil {
			t.Fatal(err)
		}
		if errs := validateSARIF(t, data); len(errs) == 0 {
			t.Errorf("mutation %d should have failed validation", i+1)
		}
	}
}
