package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The racefree analysis proves (or refutes) handler race-readiness: once a
// real transport delivers messages concurrently (simnet's
// ConcurrentDelivery mode, ROADMAP item 3), every RPC handler reachable
// from a HandleCall dispatch switch and every public API method on the
// same node type may run at the same time on one node. For each such entry
// point the rule computes — interprocedurally, reusing the call graph and
// the lock-region machinery behind the lock-order rule plus the
// guarded-field convention — the set of node fields read and written and
// the mutex classes held at each access, and reports every pair of
// concurrently-invocable entry points that conflict on a field (at least
// one write) without a common lock, with a witness call chain for both
// sides.
//
// Model and deliberate limits:
//
//   - Node types are the named struct types with a handler-shaped
//     HandleCall method. Entry points ("roots") are HandleCall itself plus
//     every exported method of the type; any two roots of one type —
//     including a root against a second invocation of itself — are assumed
//     concurrently invocable on the same node.
//   - Accesses are tracked along receiver-rooted paths ("n.f", "n.f.g",
//     simple local aliases "h := n.hot; h.g"), and propagated through
//     receiver-rooted method calls; helpers that receive the node as a
//     plain argument are not followed, and neither are calls spawned in
//     goroutine statements (the vtime rule polices those separately).
//   - Any sync.Mutex/RWMutex-typed field counts as a lock, not only the
//     convention name "mu". Mutex identity is class-level
//     ("pkg.Type.field"), so two instances of one class are conservatively
//     assumed to be the same lock. A pair of accesses is protected when
//     both sides hold a common class and every writing side holds it in
//     write mode.
//   - //adhoclint:racefree(reason) on a struct field line exempts the
//     field; directly above a method declaration it removes the method
//     from the root set (e.g. setup calls documented to finish before the
//     node serves traffic). The rule name also participates in the
//     standard //adhoclint:ignore grammar.

const raceFreePrefix = "adhoclint:racefree"

// raceDebug, when set by a test, observes the checker state after the
// analysis runs.
var raceDebug func(*raceChecker, []*raceNodeType)

// raceKey identifies one access-fact class: a field of a named struct and
// the access kind.
type raceKey struct {
	owner string // "«pkgpath».«Type»"
	field string
	write bool
}

// raceFact is the interprocedurally closed record of one access class in
// one function: the weakest lock set observed over all paths (class →
// held-in-write-mode), plus one witness step (via == nil: direct access at
// pos; otherwise: reached by calling via at pos).
type raceFact struct {
	held map[lockClass]bool
	via  *types.Func
	pos  token.Pos
	pkg  *Package
}

// raceSummary is the per-function fact set of the fixpoint.
type raceSummary struct {
	node    *funcNode
	recv    string
	regions []muRegion
	classes []lockClass // lock class per region ("" = unclassifiable)
	aliases map[string]string
	facts   map[raceKey]*raceFact
}

// heldAt reports the lock classes held at a position of the function body,
// mapped to whether the hold is exclusive (Lock vs RLock).
func (s *raceSummary) heldAt(pos token.Pos) map[lockClass]bool {
	var held map[lockClass]bool
	for i, r := range s.regions {
		if s.classes[i] == "" || !r.contains(pos) {
			continue
		}
		if held == nil {
			held = map[lockClass]bool{}
		}
		if r.write {
			held[s.classes[i]] = true
		} else if _, ok := held[s.classes[i]]; !ok {
			held[s.classes[i]] = false
		}
	}
	return held
}

// raceDirective is one parsed //adhoclint:racefree(reason) comment.
type raceDirective struct {
	reason string
	pkg    *Package
	pos    token.Pos
	used   bool
}

// raceNodeType is one handler-owning struct with its concurrently
// invocable entry points.
type raceNodeType struct {
	key     string // "«pkgpath».«Type»"
	display string // "overlay.IndexNode"
	pkgPath string
	roots   []*types.Func
}

// raceSide is one half of a reported conflict.
type raceSide struct {
	root *types.Func
	key  raceKey
	fact *raceFact
}

type raceChecker struct {
	prog       *Program
	simnetPath string
	analyzed   map[*Package]bool
	objs       []*types.Func // call-graph functions, sorted by position
	sums       map[*types.Func]*raceSummary
	// fieldOwner maps every named struct field object of the loaded
	// packages to its owner key; fieldMutex marks mutex-typed fields.
	fieldOwner map[*types.Var]string
	fieldMutex map[*types.Var]bool
	exemptFld  map[string]bool // "«owner».«field»" exempted by directive
	directives map[ignoreKey]*raceDirective
	reported   map[string]bool // "«pos»|«owner».«field»" already diagnosed
	diags      []Diagnostic
}

// checkRaceFree runs the racefree rule over the program.
func checkRaceFree(prog *Program, enabled map[string]bool) []Diagnostic {
	if enabled != nil && !enabled[ruleRaceFree] {
		return nil
	}
	c := &raceChecker{
		prog:       prog,
		simnetPath: prog.modPath + "/internal/simnet",
		analyzed:   prog.analyzedSet(),
		sums:       map[*types.Func]*raceSummary{},
		fieldOwner: map[*types.Var]string{},
		fieldMutex: map[*types.Var]bool{},
		exemptFld:  map[string]bool{},
		directives: map[ignoreKey]*raceDirective{},
		reported:   map[string]bool{},
	}
	cg := prog.CallGraph()
	for obj := range cg.funcs {
		c.objs = append(c.objs, obj)
	}
	sort.Slice(c.objs, func(i, j int) bool {
		return cg.funcs[c.objs[i]].decl.Pos() < cg.funcs[c.objs[j]].decl.Pos()
	})
	c.collectDirectives()
	c.indexStructFields()
	nodeTypes := c.findNodeTypes(cg)
	if len(nodeTypes) > 0 {
		c.buildSummaries(cg)
		c.propagate()
		c.collectRoots(cg, nodeTypes)
		for _, nt := range nodeTypes {
			c.reportConflicts(nt)
		}
	}
	if raceDebug != nil {
		raceDebug(c, nodeTypes)
	}
	c.directiveHygiene()
	return c.diags
}

// collectDirectives indexes every racefree directive of the analyzed
// packages by file:line.
func (c *raceChecker) collectDirectives() {
	for _, p := range c.prog.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
					rest, ok := strings.CutPrefix(text, raceFreePrefix)
					if !ok {
						continue
					}
					d := &raceDirective{reason: parseRaceReason(rest), pkg: p, pos: cm.Pos()}
					pos := p.Fset.Position(cm.Pos())
					c.directives[ignoreKey{pos.Filename, pos.Line}] = d
				}
			}
		}
	}
}

// parseRaceReason extracts the parenthesized reason of a directive; the
// reason may itself contain commas and parentheses.
func parseRaceReason(rest string) string {
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "(") {
		return ""
	}
	body := rest[1:]
	if i := strings.LastIndex(body, ")"); i >= 0 {
		body = body[:i]
	}
	return strings.TrimSpace(body)
}

// directiveAt returns the directive attached to a declaration position —
// on the same line or the line directly above — marking it used.
func (c *raceChecker) directiveAt(p *Package, pos token.Pos) *raceDirective {
	position := p.Fset.Position(pos)
	for off := 0; off >= -1; off-- {
		if d, ok := c.directives[ignoreKey{position.Filename, position.Line + off}]; ok {
			d.used = true
			return d
		}
	}
	return nil
}

// indexStructFields maps every named struct field object of the loaded
// packages to its owning type, and records mutex-typed fields and
// field-level directives. Embedded fields carry no name object and are
// not indexed: accesses to promoted state resolve to the declaring
// struct's own fields anyway.
func (c *raceChecker) indexStructFields() {
	for _, p := range c.prog.loadedPackages() {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok || st.Fields == nil {
					return true
				}
				tobj := p.Info.Defs[ts.Name]
				if tobj == nil || tobj.Pkg() == nil {
					return true
				}
				owner := tobj.Pkg().Path() + "." + ts.Name.Name
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						v, ok := p.Info.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						c.fieldOwner[v] = owner
						if isMutexType(v.Type()) {
							c.fieldMutex[v] = true
						}
						if c.directiveAt(p, name.Pos()) != nil {
							c.exemptFld[owner+"."+name.Name] = true
						}
					}
				}
				return true
			})
		}
	}
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// receiverNamed resolves a method's receiver to its named type.
func receiverNamed(obj *types.Func) *types.Named {
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// findNodeTypes discovers the struct types served by a handler-shaped
// HandleCall method, sorted by key.
func (c *raceChecker) findNodeTypes(cg *callGraph) []*raceNodeType {
	byKey := map[string]*raceNodeType{}
	for _, obj := range c.objs {
		node := cg.funcs[obj]
		if obj.Name() != "HandleCall" || node.decl.Recv == nil {
			continue
		}
		if !handlerShape(node.pkg, node.decl, c.simnetPath, nil) {
			continue
		}
		named := receiverNamed(obj)
		if named == nil || named.Obj().Pkg() == nil {
			continue
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			continue
		}
		key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		if byKey[key] == nil {
			byKey[key] = &raceNodeType{
				key:     key,
				display: named.Obj().Pkg().Name() + "." + named.Obj().Name(),
				pkgPath: named.Obj().Pkg().Path(),
			}
		}
	}
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*raceNodeType, 0, len(keys))
	for _, k := range keys {
		out = append(out, byKey[k])
	}
	return out
}

// buildSummaries computes the direct access facts of every method.
func (c *raceChecker) buildSummaries(cg *callGraph) {
	for _, obj := range c.objs {
		node := cg.funcs[obj]
		recv := recvName(node.decl)
		if recv == "" {
			continue
		}
		events := typedMuEvents(node.pkg, node.decl)
		regions := regionsFromEvents(node.decl, events)
		classes := make([]lockClass, len(regions))
		for i, r := range regions {
			classes[i] = raceLockClass(node.pkg, r.expr)
		}
		s := &raceSummary{
			node:    node,
			recv:    recv,
			regions: regions,
			classes: classes,
			aliases: collectAliases(recv, node.decl.Body),
			facts:   map[raceKey]*raceFact{},
		}
		c.sums[obj] = s
		c.collectDirectFacts(s)
	}
}

// collectDirectFacts records every receiver-rooted field access of one
// method body with the lock classes held at the access.
func (c *raceChecker) collectDirectFacts(s *raceSummary) {
	p := s.node.pkg
	writes := collectWriteTargets(s.node.decl.Body)
	ast.Inspect(s.node.decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := p.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fv, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		owner, ok := c.fieldOwner[fv]
		if !ok || c.fieldMutex[fv] || c.exemptFld[owner+"."+fv.Name()] {
			return true
		}
		chain, ok := exprChain(sel.X)
		if !ok || rootSegment(resolveAlias(s.aliases, chain)) != s.recv {
			return true
		}
		key := raceKey{owner: owner, field: fv.Name(), write: writes[sel]}
		mergeRaceFact(s.facts, key, &raceFact{held: s.heldAt(sel.Pos()), pos: sel.Pos(), pkg: p})
		return true
	})
}

// typedMuEvents collects every Lock/RLock/Unlock/RUnlock call on a
// mutex-typed expression, regardless of its field name — the racefree
// generalization of the convention-named muEvents.
func typedMuEvents(p *Package, fn *ast.FuncDecl) []muEvent {
	if fn.Body == nil || p.Info == nil {
		return nil
	}
	var events []muEvent
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
			return true
		}
		owner, ok := exprChain(sel.X)
		if !ok {
			return true
		}
		tv, ok := p.Info.Types[sel.X]
		if !ok || !isMutexType(tv.Type) {
			return true
		}
		var blk ast.Node
		deferred := false
		for i := len(stack) - 2; i >= 0; i-- {
			if d, isDefer := stack[i].(*ast.DeferStmt); isDefer && d.Call == call {
				deferred = true
			}
			if blk == nil {
				switch stack[i].(type) {
				case *ast.BlockStmt, *ast.CaseClause, *ast.CommClause:
					blk = stack[i]
				}
			}
		}
		events = append(events, muEvent{
			pos:      call.Pos(),
			owner:    owner,
			lock:     name == "Lock" || name == "RLock",
			write:    name == "Lock" || name == "Unlock",
			deferred: deferred,
			block:    blk,
			expr:     sel.X,
		})
		return true
	})
	return events
}

// raceLockClass classifies a mutex expression by declaration site, like
// mutexClass but for any field name: "«pkgpath».«Type».«field»" for struct
// fields, "«pkgpath».«name»" for package-level mutexes, "" for locals.
func raceLockClass(p *Package, muExpr ast.Expr) lockClass {
	if p.Info == nil {
		return ""
	}
	switch e := muExpr.(type) {
	case *ast.Ident:
		if v, ok := p.Info.Uses[e].(*types.Var); ok && v.Pkg() != nil &&
			v.Parent() == v.Pkg().Scope() {
			return lockClass(v.Pkg().Path() + "." + v.Name())
		}
	case *ast.SelectorExpr:
		tv, ok := p.Info.Types[e.X]
		if !ok {
			return ""
		}
		t := tv.Type
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			return lockClass(named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + e.Sel.Name)
		}
	}
	return ""
}

// collectWriteTargets marks the outermost selector of every written
// lvalue: assignment and inc/dec targets, indexed and dereferenced
// variants thereof, delete arguments, and address-taken expressions
// (conservatively writes — the pointer may escape to a mutator).
func collectWriteTargets(body *ast.BlockStmt) map[ast.Node]bool {
	writes := map[ast.Node]bool{}
	mark := func(e ast.Expr) {
		for {
			switch x := e.(type) {
			case *ast.ParenExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			default:
				if sel, ok := e.(*ast.SelectorExpr); ok {
					writes[sel] = true
				}
				return
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				mark(lhs)
			}
		case *ast.IncDecStmt:
			mark(n.X)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				mark(n.X)
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				mark(n.Args[0])
			}
		}
		return true
	})
	return writes
}

// collectAliases records simple single-assignment aliases of
// receiver-rooted chains ("h := n.hot"), so accesses through the alias
// still count as node-state accesses.
func collectAliases(recv string, body *ast.BlockStmt) map[string]string {
	aliases := map[string]string{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok || id.Name == "_" || id.Name == recv {
				continue
			}
			chain, ok := exprChain(as.Rhs[i])
			if !ok {
				delete(aliases, id.Name)
				continue
			}
			full := resolveAlias(aliases, chain)
			if rootSegment(full) == recv && full != id.Name {
				aliases[id.Name] = full
			} else {
				delete(aliases, id.Name)
			}
		}
		return true
	})
	return aliases
}

// resolveAlias substitutes the chain's root through the alias map (bounded
// — alias chains are short by construction).
func resolveAlias(aliases map[string]string, chain string) string {
	for i := 0; i < 8; i++ {
		head, rest, has := strings.Cut(chain, ".")
		full, ok := aliases[head]
		if !ok {
			return chain
		}
		if has {
			chain = full + "." + rest
		} else {
			chain = full
		}
	}
	return chain
}

func rootSegment(chain string) string {
	head, _, _ := strings.Cut(chain, ".")
	return head
}

// mergeRaceFact folds a new fact into the map: the held set is the
// intersection over all paths (the weakest guarantee), and the witness
// follows the path that realizes the weakness.
func mergeRaceFact(m map[raceKey]*raceFact, k raceKey, f *raceFact) bool {
	old, ok := m[k]
	if !ok {
		m[k] = f
		return true
	}
	inter, changed := intersectHeld(old.held, f.held)
	if !changed {
		return false
	}
	old.held = inter
	if equalHeld(f.held, inter) {
		old.via, old.pos, old.pkg = f.via, f.pos, f.pkg
	}
	return true
}

// intersectHeld keeps the classes present in both sets, demoting to read
// mode unless both hold exclusively; changed reports whether the result
// weakens a.
func intersectHeld(a, b map[lockClass]bool) (map[lockClass]bool, bool) {
	out := map[lockClass]bool{}
	changed := false
	for cl, aw := range a {
		bw, ok := b[cl]
		if !ok {
			changed = true
			continue
		}
		m := aw && bw
		out[cl] = m
		if m != aw {
			changed = true
		}
	}
	return out, changed
}

// unionHeld merges two held sets, promoting to write mode when either side
// holds exclusively.
func unionHeld(a, b map[lockClass]bool) map[lockClass]bool {
	if len(b) == 0 {
		return a
	}
	out := make(map[lockClass]bool, len(a)+len(b))
	for cl, w := range a {
		out[cl] = w
	}
	for cl, w := range b {
		out[cl] = out[cl] || w
	}
	return out
}

func equalHeld(a, b map[lockClass]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for cl, w := range a {
		bw, ok := b[cl]
		if !ok || bw != w {
			return false
		}
	}
	return true
}

// propagate closes the access facts over receiver-rooted calls: the locks
// the caller holds at the call site protect everything the callee touches
// on the shared receiver chain.
func (c *raceChecker) propagate() {
	for changed := true; changed; {
		changed = false
		for _, obj := range c.objs {
			s := c.sums[obj]
			if s == nil {
				continue
			}
			for _, call := range s.node.calls {
				if call.inGo || call.recv == "" {
					continue
				}
				if rootSegment(resolveAlias(s.aliases, call.recv)) != s.recv {
					continue
				}
				g := c.sums[call.callee]
				if g == nil || len(g.facts) == 0 {
					continue
				}
				heldHere := s.heldAt(call.pos)
				for _, k := range sortedRaceKeys(g.facts) {
					f := g.facts[k]
					nf := &raceFact{
						held: unionHeld(f.held, heldHere),
						via:  call.callee,
						pos:  call.pos,
						pkg:  s.node.pkg,
					}
					if mergeRaceFact(s.facts, k, nf) {
						changed = true
					}
				}
			}
		}
	}
}

func sortedRaceKeys(m map[raceKey]*raceFact) []raceKey {
	keys := make([]raceKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].owner != keys[j].owner {
			return keys[i].owner < keys[j].owner
		}
		if keys[i].field != keys[j].field {
			return keys[i].field < keys[j].field
		}
		return !keys[i].write && keys[j].write
	})
	return keys
}

// collectRoots gathers each node type's entry points: HandleCall plus the
// exported methods, minus directive-exempted declarations.
func (c *raceChecker) collectRoots(cg *callGraph, nodeTypes []*raceNodeType) {
	byKey := map[string]*raceNodeType{}
	for _, nt := range nodeTypes {
		byKey[nt.key] = nt
	}
	for _, obj := range c.objs {
		s := c.sums[obj]
		if s == nil {
			continue
		}
		named := receiverNamed(obj)
		if named == nil || named.Obj().Pkg() == nil {
			continue
		}
		nt := byKey[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
		if nt == nil {
			continue
		}
		if obj.Name() != "HandleCall" && !obj.Exported() {
			continue
		}
		if c.directiveAt(s.node.pkg, s.node.decl.Pos()) != nil {
			continue
		}
		nt.roots = append(nt.roots, obj)
	}
}

// reportConflicts emits one diagnostic per conflicting field of one node
// type: the first write fact that lacks a common lock against some other
// concurrently-invocable access, with witness chains for both sides.
func (c *raceChecker) reportConflicts(nt *raceNodeType) {
	type fieldID struct{ owner, field string }
	byField := map[fieldID][]raceSide{}
	var order []fieldID
	for _, r := range nt.roots {
		s := c.sums[r]
		for _, k := range sortedRaceKeys(s.facts) {
			// Only this package's state is this node type's to protect:
			// state reached through the receiver but owned by another
			// package (the simnet fabric, the rdf store) has its own
			// synchronization discipline, vouched for where it lives.
			if !strings.HasPrefix(k.owner, nt.pkgPath+".") {
				continue
			}
			id := fieldID{k.owner, k.field}
			if byField[id] == nil {
				order = append(order, id)
			}
			byField[id] = append(byField[id], raceSide{root: r, key: k, fact: s.facts[k]})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].owner != order[j].owner {
			return order[i].owner < order[j].owner
		}
		return order[i].field < order[j].field
	})
	for _, id := range order {
		sides := byField[id]
		for i := range sides {
			if !sides[i].key.write {
				continue
			}
			// Prefer a two-sided witness from a different entry point; a
			// conflict with a second invocation of the same root is the
			// fallback (an unguarded write always conflicts with itself).
			conflict := -1
			for j := range sides {
				if raceProtected(sides[i].fact, &sides[j]) {
					continue
				}
				if sides[j].root != sides[i].root {
					conflict = j
					break
				}
				if conflict < 0 {
					conflict = j
				}
			}
			if conflict >= 0 {
				c.reportPair(nt, &sides[i], &sides[conflict])
				break
			}
		}
	}
}

// raceProtected reports whether the write fact w shares a lock with side s
// strongly enough: a common class that w holds exclusively, and that s
// holds exclusively too if s also writes.
func raceProtected(w *raceFact, s *raceSide) bool {
	for cl, wm := range w.held {
		if !wm {
			continue
		}
		sm, ok := s.fact.held[cl]
		if !ok {
			continue
		}
		if s.key.write && !sm {
			continue
		}
		return true
	}
	return false
}

// reportPair renders one two-sided conflict.
func (c *raceChecker) reportPair(nt *raceNodeType, w, o *raceSide) {
	wChain, wPos, wPkg := c.raceChain(w)
	if wPkg == nil || !c.analyzed[wPkg] {
		return
	}
	field := shortClass(lockClass(w.key.owner + "." + w.key.field))
	dedup := fmt.Sprintf("%d|%s", wPos, field)
	if c.reported[dedup] {
		return
	}
	c.reported[dedup] = true
	var msg string
	if w.root == o.root && w.key == o.key {
		msg = fmt.Sprintf("%s: %s is not protected against a second concurrent invocation of the same entry point on one %s; hold an exclusive mutex or annotate //adhoclint:racefree(reason)",
			field, raceSideDesc("write", wChain, wPos, wPkg, w.fact), nt.display)
	} else {
		oChain, oPos, oPkg := c.raceChain(o)
		kind := "read"
		if o.key.write {
			kind = "write"
		}
		msg = fmt.Sprintf("%s: %s conflicts with %s — no common lock, and both entry points are concurrently invocable on one %s; hold a shared mutex or annotate //adhoclint:racefree(reason)",
			field,
			raceSideDesc("write", wChain, wPos, wPkg, w.fact),
			raceSideDesc(kind, oChain, oPos, oPkg, o.fact),
			nt.display)
	}
	c.diags = append(c.diags, diagAt(wPkg, wPos, ruleRaceFree, msg))
}

// raceChain walks the witness steps of a side's fact down to the direct
// access, returning the rendered entry-point-to-access call chain and the
// access position.
func (c *raceChecker) raceChain(sd *raceSide) ([]string, token.Pos, *Package) {
	chain := []string{funcDisplay(sd.root)}
	cur := sd.root
	seen := map[*types.Func]bool{cur: true}
	for {
		s := c.sums[cur]
		if s == nil {
			return chain, token.NoPos, nil
		}
		f := s.facts[sd.key]
		if f == nil {
			return chain, token.NoPos, nil
		}
		if f.via == nil || seen[f.via] || len(chain) > witnessMaxHops {
			return chain, f.pos, f.pkg
		}
		seen[f.via] = true
		cur = f.via
		chain = append(chain, funcDisplay(cur))
	}
}

// raceSideDesc renders one side of a conflict: kind, witness chain,
// position and held locks.
func raceSideDesc(kind string, chain []string, pos token.Pos, p *Package, f *raceFact) string {
	loc := ""
	if p != nil {
		loc = posSuffix(p, pos)
	}
	if len(chain) == 1 {
		return fmt.Sprintf("%s by %s%s (%s)", kind, chain[0], loc, heldDesc(f.held))
	}
	return fmt.Sprintf("%s via %s%s (%s)", kind, strings.Join(chain, " → "), loc, heldDesc(f.held))
}

// heldDesc renders a held-lock set.
func heldDesc(held map[lockClass]bool) string {
	if len(held) == 0 {
		return "no lock held"
	}
	classes := make([]string, 0, len(held))
	for cl, w := range held {
		s := shortClass(cl)
		if !w {
			s += " [read]"
		}
		classes = append(classes, s)
	}
	sort.Strings(classes)
	return "holding " + strings.Join(classes, ", ")
}

// directiveHygiene reports racefree directives that carry no reason or
// attach to nothing.
func (c *raceChecker) directiveHygiene() {
	ds := make([]*raceDirective, 0, len(c.directives))
	for _, d := range c.directives {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(i, j int) bool { return ds[i].pos < ds[j].pos })
	for _, d := range ds {
		if d.reason == "" {
			c.diags = append(c.diags, diagAt(d.pkg, d.pos, ruleRaceFree,
				"racefree directive needs a parenthesized reason: //adhoclint:racefree(reason)"))
			continue
		}
		if !d.used {
			c.diags = append(c.diags, diagAt(d.pkg, d.pos, ruleRaceFree,
				"misplaced racefree directive: it attaches to a struct field or a node entry-point declaration (same line or the line above)"))
		}
	}
}
