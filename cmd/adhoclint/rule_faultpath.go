package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The fault-soundness analysis (rule "faultpath") classifies every fabric
// interaction by its failure disposition and checks that the disposition
// is either evident from the code or declared with an
// //adhoclint:faultpath(disposition, reason) directive. Deterministic
// fault injection (simnet.FaultPlan) makes every Call/Send/Transfer
// fallible; this rule makes the tree say, site by site, what happens when
// one fails:
//
//   - a fabric call whose error is discarded is a fire-and-forget
//     notification and must say so: //adhoclint:faultpath(fire-and-forget,
//     reason) on the call's line or the line above;
//   - a function that mutates caller-visible state (its receiver, a
//     pointer/map/slice argument, or anything derived from them) before a
//     fallible send whose error it propagates must carry a compensation
//     path, declared //adhoclint:faultpath(compensated, reason) on its
//     declaration — otherwise a failure surfaces with the mutation already
//     applied and nobody rolls it back;
//   - every simnet.Parallel fan-out must declare whether one failed branch
//     aborts the whole operation (abort-all) or the survivors' results are
//     kept (collect-partial, with the repair story as the reason);
//   - a method invoked inside simnet.Retry is re-delivered after lost
//     replies, so its handler must be read-only — or deduplicate
//     re-deliveries and carry //adhoclint:faultpath(idempotent, reason) on
//     its Method* constant;
//   - the operation closure handed to simnet.Retry receives the attempt
//     time as its parameter; its fabric calls must depart at that time, or
//     the FailTimeout charged to failed attempts never reaches the
//     critical path.
//
// A function whose writes are harmless when the surrounding operation
// fails — monotone counters and ID allocators, cache fills and
// invalidations, memoized views, deterministic repair — declares
// //adhoclint:faultpath(benign, reason) on its declaration; calls to it do
// not count as mutations for the mutate-before-send and retried-handler
// checks.
//
// Dispositions: fire-and-forget, abort-all, collect-partial, idempotent,
// compensated, benign. All but abort-all require a reason. The rule covers
// internal/ and cmd/ packages except internal/simnet (the fault model
// itself), internal/experiments (drivers own the whole simulated world; an
// aborted run leaves no surviving state to compensate) and cmd/adhoclint.

// faultPathPrefix is the directive spelling, sans the comment markers.
const faultPathPrefix = "adhoclint:faultpath"

// The faultpath dispositions.
const (
	dispFireAndForget  = "fire-and-forget"
	dispAbortAll       = "abort-all"
	dispCollectPartial = "collect-partial"
	dispIdempotent     = "idempotent"
	dispCompensated    = "compensated"
	dispBenign         = "benign"
)

var faultDispositions = []string{
	dispFireAndForget, dispAbortAll, dispCollectPartial, dispIdempotent, dispCompensated, dispBenign,
}

// faultDirective is one parsed //adhoclint:faultpath(...) comment.
type faultDirective struct {
	disposition string
	reason      string
	pkg         *Package
	pos         token.Pos
}

// collectFaultDirectives indexes every faultpath directive of the given
// packages by the file:line it sits on. A malformed directive (no
// parenthesized disposition) is recorded with an empty disposition so the
// validator can complain about it.
func collectFaultDirectives(pkgs []*Package) map[ignoreKey]*faultDirective {
	out := map[ignoreKey]*faultDirective{}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, faultPathPrefix)
					if !ok {
						continue
					}
					d := parseFaultDirective(rest)
					d.pkg = p
					d.pos = c.Pos()
					pos := p.Fset.Position(c.Pos())
					out[ignoreKey{pos.Filename, pos.Line}] = d
				}
			}
		}
	}
	return out
}

// parseFaultDirective parses "(disposition, reason)"; the reason may
// itself contain commas and parentheses.
func parseFaultDirective(rest string) *faultDirective {
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, "(") {
		return &faultDirective{}
	}
	body := rest[1:]
	if i := strings.LastIndex(body, ")"); i >= 0 {
		body = body[:i]
	}
	disp, reason, _ := strings.Cut(body, ",")
	return &faultDirective{
		disposition: strings.TrimSpace(disp),
		reason:      strings.TrimSpace(reason),
	}
}

// checkFaultPath runs the faultpath rule over the program.
func checkFaultPath(prog *Program, enabled map[string]bool) []Diagnostic {
	if enabled != nil && !enabled[ruleFaultPath] {
		return nil
	}
	c := &faultpathChecker{
		prog:       prog,
		simnetPath: prog.modPath + "/internal/simnet",
		analyzed:   prog.analyzedSet(),
		decls:      map[*types.Func]*wireDecl{},
		touches:    map[*types.Func]bool{},
		mutates:    map[*types.Func]*mutInfo{},
		retried:    map[string][]*retrySite{},
	}
	if simnet := prog.simnetTypes(); simnet != nil {
		if obj := simnet.Scope().Lookup("Payload"); obj != nil {
			c.payload, _ = obj.Type().Underlying().(*types.Interface)
		}
	}
	c.collectDecls()
	c.computeTouches()
	c.computeMutates()
	c.directives = collectFaultDirectives(c.prog.loadedPackages())
	c.validateDirectives()
	for _, p := range prog.Pkgs {
		if p.Info == nil || !c.inScope(p) {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				c.checkDiscardedErrors(p, fn)
				c.checkMutateBeforeSend(p, fn)
				c.checkParallelSites(p, fn)
				c.checkRetrySites(p, fn)
			}
		}
	}
	c.checkRetriedHandlers()
	sortDiagnostics(c.diags)
	return c.diags
}

type faultpathChecker struct {
	prog       *Program
	simnetPath string
	analyzed   map[*Package]bool
	payload    *types.Interface
	decls      map[*types.Func]*wireDecl
	touches    map[*types.Func]bool // transitively performs a fabric call
	mutates    map[*types.Func]*mutInfo
	directives map[ignoreKey]*faultDirective
	retried    map[string][]*retrySite // method wire string → Retry sites
	diags      []Diagnostic
}

// mutInfo records how a function mutates caller-visible state: a direct
// write, or a call into another mutating function.
type mutInfo struct {
	pos token.Pos
	via *types.Func // nil when the write is direct
}

// retrySite is one simnet.Retry call whose closure invokes a method.
type retrySite struct {
	pkg  *Package
	pos  token.Pos
	encl *types.Func
}

// inScope limits the rule to internal/ and cmd/ packages, excluding the
// fault model itself, the experiment drivers and the linter.
func (c *faultpathChecker) inScope(p *Package) bool {
	mod := c.prog.modPath
	switch p.ImportPath {
	case mod + "/internal/simnet", mod + "/internal/experiments", mod + "/cmd/adhoclint":
		return false
	}
	return internalPackage(p) || cmdPackage(p, mod)
}

func (c *faultpathChecker) collectDecls() {
	for _, p := range c.prog.loadedPackages() {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				if obj, ok := p.Info.Defs[fn.Name].(*types.Func); ok {
					c.decls[obj] = &wireDecl{pkg: p, decl: fn}
				}
			}
		}
	}
}

// computeTouches closes "performs a fabric call" over static calls — the
// same fixpoint the vtime rule runs, rebuilt here so the rules stay
// independently testable.
func (c *faultpathChecker) computeTouches() {
	for obj, d := range c.decls {
		direct := false
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			if direct {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if fabricCallAt(d.pkg, call, c.simnetPath) != nil {
					direct = true
				}
			}
			return true
		})
		c.touches[obj] = direct
	}
	for changed := true; changed; {
		changed = false
		for obj, d := range c.decls {
			if c.touches[obj] {
				continue
			}
			reached := false
			ast.Inspect(d.decl.Body, func(n ast.Node) bool {
				if reached {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee, _ := staticCallee(d.pkg.Info, call); callee != nil &&
						!observabilityNeutral(callee, c.prog.modPath) && c.touches[callee] {
						reached = true
					}
				}
				return true
			})
			if reached {
				c.touches[obj] = true
				changed = true
			}
		}
	}
}

// computeMutates closes "mutates caller-visible state" over static calls.
// Functions declared faultpath(benign, ...) are excluded: their writes are
// harmless when the surrounding operation fails.
func (c *faultpathChecker) computeMutates() {
	for changed := true; changed; {
		changed = false
		for obj, d := range c.decls {
			if c.mutates[obj] != nil {
				continue
			}
			if fd := c.funcDirective(d.pkg, d.decl); fd != nil && fd.disposition == dispBenign {
				continue
			}
			if m := c.firstMutation(d.pkg, d.decl.Body, c.declTaint(d.pkg, d.decl)); m != nil {
				c.mutates[obj] = m
				changed = true
			}
		}
	}
}

// declTaint seeds the caller-visible roots of a declaration: the receiver
// and every parameter of pointer, map or slice type.
func (c *faultpathChecker) declTaint(p *Package, fn *ast.FuncDecl) map[types.Object]bool {
	taint := map[types.Object]bool{}
	if fn.Recv != nil {
		for _, field := range fn.Recv.List {
			for _, name := range field.Names {
				if obj := p.Info.Defs[name]; obj != nil {
					taint[obj] = true
				}
			}
		}
	}
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj := p.Info.Defs[name]
			if obj == nil {
				continue
			}
			switch obj.Type().Underlying().(type) {
			case *types.Pointer, *types.Map, *types.Slice:
				taint[obj] = true
			}
		}
	}
	return taint
}

// firstMutation finds the earliest write to caller-visible state inside
// body: a direct assignment/delete through a tainted root, or a call into
// a mutating function on a tainted receiver or argument. Locals derived
// from tainted roots are tainted too; locals built fresh are not.
func (c *faultpathChecker) firstMutation(p *Package, body ast.Node, taint map[types.Object]bool) *mutInfo {
	// Propagate taint through derivations: `node := s.nodes[addr]` makes
	// node an alias of receiver state.
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			mark := func(lhs ast.Expr) {
				if id, ok := unparen(lhs).(*ast.Ident); ok {
					if obj := defOrUse(p.Info, id); obj != nil && !taint[obj] {
						taint[obj] = true
						changed = true
					}
				}
			}
			derived := func(rhs ast.Expr) bool {
				switch unparen(rhs).(type) {
				case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.UnaryExpr:
					obj := exprRootObj(p.Info, rhs)
					return obj != nil && taint[obj]
				}
				return false
			}
			if len(asg.Rhs) == 1 && len(asg.Lhs) > 1 {
				if derived(asg.Rhs[0]) {
					for _, lhs := range asg.Lhs {
						mark(lhs)
					}
				}
				return true
			}
			for i, lhs := range asg.Lhs {
				if i < len(asg.Rhs) && derived(asg.Rhs[i]) {
					mark(lhs)
				}
			}
			return true
		})
	}

	var first *mutInfo
	record := func(m *mutInfo) {
		if first == nil || m.pos < first.pos {
			first = m
		}
	}
	rootTainted := func(e ast.Expr) bool {
		obj := exprRootObj(p.Info, e)
		return obj != nil && taint[obj]
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				switch unparen(lhs).(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					if rootTainted(lhs) {
						record(&mutInfo{pos: lhs.Pos()})
					}
				}
			}
		case *ast.IncDecStmt:
			switch unparen(n.X).(type) {
			case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
				if rootTainted(n.X) {
					record(&mutInfo{pos: n.X.Pos()})
				}
			}
		case *ast.CallExpr:
			if id, ok := unparen(n.Fun).(*ast.Ident); ok && id.Name == "delete" && len(n.Args) > 0 {
				if rootTainted(n.Args[0]) {
					record(&mutInfo{pos: n.Pos()})
				}
				return true
			}
			callee, _ := staticCallee(p.Info, n)
			if callee == nil || c.mutates[callee] == nil {
				return true
			}
			hit := false
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && rootTainted(sel.X) {
				hit = true
			}
			for _, arg := range n.Args {
				if hit {
					break
				}
				if rootTainted(arg) {
					hit = true
				}
			}
			if hit {
				record(&mutInfo{pos: n.Pos(), via: callee})
			}
		}
		return true
	})
	return first
}

// mutChain renders how a mutation reaches its write: "via A → B" for
// call-carried mutations, "" for direct writes.
func (c *faultpathChecker) mutChain(m *mutInfo) string {
	if m == nil || m.via == nil {
		return ""
	}
	var chain []string
	for cur := m.via; cur != nil; {
		chain = append(chain, funcDisplay(cur))
		next := c.mutates[cur]
		if next == nil || next.via == nil || len(chain) > witnessMaxHops {
			break
		}
		cur = next.via
	}
	return " (via " + strings.Join(chain, " → ") + ")"
}

// directiveAt returns the faultpath directive on the position's line or
// the line directly above, if any.
func (c *faultpathChecker) directiveAt(p *Package, pos token.Pos) *faultDirective {
	position := p.Fset.Position(pos)
	if d, ok := c.directives[ignoreKey{position.Filename, position.Line}]; ok {
		return d
	}
	if d, ok := c.directives[ignoreKey{position.Filename, position.Line - 1}]; ok {
		return d
	}
	return nil
}

// funcDirective returns the faultpath directive attached to a function
// declaration: in its doc comment, or on the line above the declaration.
func (c *faultpathChecker) funcDirective(p *Package, fn *ast.FuncDecl) *faultDirective {
	if fn.Doc != nil {
		for _, cm := range fn.Doc.List {
			text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
			if rest, ok := strings.CutPrefix(text, faultPathPrefix); ok {
				d := parseFaultDirective(rest)
				d.pkg = p
				d.pos = cm.Pos()
				return d
			}
		}
	}
	return c.directiveAt(p, fn.Pos())
}

// validateDirectives reports malformed directives of the analyzed,
// in-scope packages: unknown dispositions and missing reasons. abort-all
// is self-explanatory; every other disposition states a claim the code
// cannot show and must say why it holds.
func (c *faultpathChecker) validateDirectives() {
	for _, d := range c.directives {
		if !c.analyzed[d.pkg] || !c.inScope(d.pkg) {
			continue
		}
		known := false
		for _, disp := range faultDispositions {
			if d.disposition == disp {
				known = true
			}
		}
		if !known {
			c.report(d.pkg, d.pos, fmt.Sprintf(
				"unknown faultpath disposition %q (have: %s)",
				d.disposition, strings.Join(faultDispositions, ", ")))
			continue
		}
		if d.reason == "" && d.disposition != dispAbortAll {
			c.report(d.pkg, d.pos, fmt.Sprintf(
				"faultpath(%s) requires a reason explaining why the disposition is sound", d.disposition))
		}
	}
}

// checkDiscardedErrors flags fabric calls whose error result is dropped
// without a fire-and-forget declaration.
func (c *faultpathChecker) checkDiscardedErrors(p *Package, fn *ast.FuncDecl) {
	handled := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		var call *ast.CallExpr
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			rhs, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			fc := fabricCallAt(p, rhs, c.simnetPath)
			if fc == nil {
				return true
			}
			handled[rhs] = true
			errPos := 1 // Send/Transfer: (VTime, error)
			if fc.kind == "Call" {
				errPos = 2 // (Payload, VTime, error)
			}
			if errPos >= len(n.Lhs) || !isBlankIdent(n.Lhs[errPos]) {
				return true
			}
			call = rhs
		case *ast.ExprStmt:
			rhs, ok := n.X.(*ast.CallExpr)
			if !ok || handled[rhs] || fabricCallAt(p, rhs, c.simnetPath) == nil {
				return true
			}
			call = rhs
		default:
			return true
		}
		fc := fabricCallAt(p, call, c.simnetPath)
		d := c.directiveAt(p, call.Pos())
		switch {
		case d == nil:
			c.report(p, call.Pos(), fmt.Sprintf(
				"the error of %s of %q is discarded with no declared fault disposition; handle it or annotate //adhoclint:faultpath(fire-and-forget, reason)",
				fc.kind, fc.value))
		case d.disposition != dispFireAndForget:
			c.report(p, call.Pos(), fmt.Sprintf(
				"faultpath(%s) does not cover a discarded error; a deliberately unacknowledged %s needs faultpath(fire-and-forget, reason)",
				d.disposition, fc.kind))
		}
		return true
	})
}

// isBlankIdent reports whether the expression is the blank identifier.
func isBlankIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// checkMutateBeforeSend flags functions that mutate caller-visible state
// and afterwards perform a fallible send whose error they propagate,
// without declaring a compensation path. Handlers are exempt: their
// mutation is the operation itself, and the retried-handler check governs
// their re-delivery semantics.
func (c *faultpathChecker) checkMutateBeforeSend(p *Package, fn *ast.FuncDecl) {
	if fn.Name.Name == "HandleCall" || handlerShape(p, fn, c.simnetPath, c.payload) {
		return
	}
	if !returnsError(p, fn) {
		return
	}
	if d := c.funcDirective(p, fn); d != nil &&
		(d.disposition == dispCompensated || d.disposition == dispBenign) {
		return
	}
	mut := c.firstMutation(p, fn.Body, c.declTaint(p, fn))
	if mut == nil {
		return
	}
	site, desc := c.firstFallibleAfter(p, fn, mut.pos)
	if site == token.NoPos {
		return
	}
	c.report(p, site, fmt.Sprintf(
		"caller-visible state is mutated at line %d%s before this fallible %s; a failure surfaces with the mutation applied — add a compensation path and annotate the function //adhoclint:faultpath(compensated, reason)",
		p.Fset.Position(mut.pos).Line, c.mutChain(mut), desc))
}

// returnsError reports whether the declaration's last result is an error.
func returnsError(p *Package, fn *ast.FuncDecl) bool {
	res := fn.Type.Results
	if res == nil || len(res.List) == 0 {
		return false
	}
	t := p.Info.Types[res.List[len(res.List)-1].Type].Type
	return t != nil && types.Identical(t, types.Universe.Lookup("error").Type())
}

// firstFallibleAfter finds the earliest fabric call, simnet.Retry, or
// call into a fabric-touching module function after pos whose error the
// caller captures (and can therefore propagate).
func (c *faultpathChecker) firstFallibleAfter(p *Package, fn *ast.FuncDecl, pos token.Pos) (token.Pos, string) {
	best := token.NoPos
	desc := ""
	record := func(at token.Pos, d string) {
		if best == token.NoPos || at < best {
			best, desc = at, d
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 || len(asg.Lhs) == 0 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || call.Pos() <= pos || isBlankIdent(asg.Lhs[len(asg.Lhs)-1]) {
			return true
		}
		if fc := fabricCallAt(p, call, c.simnetPath); fc != nil {
			record(call.Pos(), fmt.Sprintf("%s of %q", fc.kind, fc.value))
			return true
		}
		callee, _ := staticCallee(p.Info, call)
		if callee == nil {
			return true
		}
		if callee.Name() == "Retry" && callee.Pkg() != nil && callee.Pkg().Path() == c.simnetPath {
			record(call.Pos(), "simnet.Retry")
			return true
		}
		if c.touches[callee] && calleeReturnsError(callee) {
			record(call.Pos(), "call to "+funcDisplay(callee))
		}
		return true
	})
	return best, desc
}

// calleeReturnsError reports whether the function's last result is error.
func calleeReturnsError(f *types.Func) bool {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	return types.Identical(sig.Results().At(sig.Results().Len()-1).Type(),
		types.Universe.Lookup("error").Type())
}

// checkParallelSites requires every simnet.Parallel fan-out to declare
// abort-all or collect-partial.
func (c *faultpathChecker) checkParallelSites(p *Package, fn *ast.FuncDecl) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := staticCallee(p.Info, call)
		if callee == nil || callee.Name() != "Parallel" ||
			callee.Pkg() == nil || callee.Pkg().Path() != c.simnetPath {
			return true
		}
		d := c.directiveAt(p, call.Pos())
		switch {
		case d == nil:
			c.report(p, call.Pos(),
				"simnet.Parallel fan-out must declare its failure semantics: annotate //adhoclint:faultpath(abort-all) or //adhoclint:faultpath(collect-partial, reason)")
		case d.disposition != dispAbortAll && d.disposition != dispCollectPartial:
			c.report(p, call.Pos(), fmt.Sprintf(
				"faultpath(%s) does not apply to a Parallel fan-out; declare abort-all or collect-partial", d.disposition))
		}
		return true
	})
}

// checkRetrySites resolves every simnet.Retry call: the closure must
// depart its fabric calls at the attempt-time parameter (so FailTimeout
// accumulates), and the methods it invokes are recorded for the
// idempotence cross-check.
func (c *faultpathChecker) checkRetrySites(p *Package, fn *ast.FuncDecl) {
	encl, _ := p.Info.Defs[fn.Name].(*types.Func)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := staticCallee(p.Info, call)
		if callee == nil || callee.Name() != "Retry" ||
			callee.Pkg() == nil || callee.Pkg().Path() != c.simnetPath ||
			len(call.Args) != 3 {
			return true
		}
		lit := resolveOpLiteral(p, fn, call.Args[2])
		if lit == nil {
			return true
		}
		var atParam types.Object
		if len(lit.Type.Params.List) > 0 {
			field := lit.Type.Params.List[0]
			if isNamedType(p.Info.Types[field.Type].Type, c.simnetPath, "VTime") && len(field.Names) > 0 {
				atParam = p.Info.Defs[field.Names[0]]
			}
		}
		ast.Inspect(lit.Body, func(m ast.Node) bool {
			inner, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			fc := fabricCallAt(p, inner, c.simnetPath)
			if fc == nil {
				return true
			}
			if fc.value != "" && fc.kind != "Transfer" {
				c.retried[fc.value] = append(c.retried[fc.value],
					&retrySite{pkg: p, pos: call.Pos(), encl: encl})
			}
			if atParam != nil && len(inner.Args) >= 5 && !referencesObj(p, inner.Args[4], atParam) {
				c.report(p, inner.Pos(), fmt.Sprintf(
					"fabric call inside a simnet.Retry closure ignores the closure's attempt-time parameter %q; failed attempts would not accumulate FailTimeout on the critical path",
					atParam.Name()))
			}
			return true
		})
		return true
	})
}

// resolveOpLiteral finds the function literal behind a Retry operation
// argument: the literal itself, or the hoisted closure a local identifier
// was assigned (the allocation-free loop pattern).
func resolveOpLiteral(p *Package, fn *ast.FuncDecl, arg ast.Expr) *ast.FuncLit {
	switch a := unparen(arg).(type) {
	case *ast.FuncLit:
		return a
	case *ast.Ident:
		obj := defOrUse(p.Info, a)
		if obj == nil {
			return nil
		}
		var lit *ast.FuncLit
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range asg.Lhs {
				id, ok := unparen(lhs).(*ast.Ident)
				if !ok || defOrUse(p.Info, id) != obj || i >= len(asg.Rhs) {
					continue
				}
				if l, ok := unparen(asg.Rhs[i]).(*ast.FuncLit); ok {
					lit = l
				}
			}
			return true
		})
		return lit
	}
	return nil
}

// referencesObj reports whether the expression mentions the object.
func referencesObj(p *Package, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && defOrUse(p.Info, id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// checkRetriedHandlers cross-checks every retried method against its
// dispatch handler: a handler that mutates node state is re-run on a lost
// reply, so it must deduplicate and carry an idempotent declaration on
// its Method* constant.
func (c *faultpathChecker) checkRetriedHandlers() {
	if len(c.retried) == 0 {
		return
	}
	loaded := c.prog.loadedPackages()
	constsByValue := map[string]*methodConst{}
	for _, mc := range collectMethodConsts(loaded) {
		if _, ok := constsByValue[mc.value]; !ok {
			constsByValue[mc.value] = mc
		}
	}
	caseMuts := c.handlerCaseMutations(loaded)

	values := make([]string, 0, len(c.retried))
	for v := range c.retried {
		values = append(values, v)
	}
	sort.Strings(values)
	for _, value := range values {
		mut, ok := caseMuts[value]
		if !ok || mut == nil {
			continue // handler unknown or read-only
		}
		mc := constsByValue[value]
		if mc != nil {
			if d := c.directiveAt(mc.pkg, mc.pos); d != nil && d.disposition == dispIdempotent {
				continue
			}
		}
		sites := c.retried[value]
		sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
		site := sites[0]
		from := "a simnet.Retry site"
		if site.encl != nil {
			from = funcDisplay(site.encl)
		}
		name := value
		if mc != nil {
			name = mc.name
		}
		msg := fmt.Sprintf(
			"%s (%q) is retried from %s but its handler mutates node state%s; deduplicate re-deliveries and annotate the constant //adhoclint:faultpath(idempotent, reason)",
			name, value, from, c.mutChain(mut))
		switch {
		case mc != nil && c.analyzed[mc.pkg] && c.inScope(mc.pkg):
			c.report(mc.pkg, mc.pos, msg)
		default:
			c.report(site.pkg, site.pos, msg)
		}
	}
}

// handlerCaseMutations maps each dispatched method wire string to the
// mutation its handler case performs (nil for read-only cases). A method
// dispatched by several handlers keeps the first mutation found.
func (c *faultpathChecker) handlerCaseMutations(loaded []*Package) map[string]*mutInfo {
	out := map[string]*mutInfo{}
	for _, p := range loaded {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Name.Name != "HandleCall" || fn.Body == nil {
					continue
				}
				methodObj, _ := handleCallParams(p, fn)
				if methodObj == nil {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					sw, ok := n.(*ast.SwitchStmt)
					if !ok {
						return true
					}
					tag, ok := sw.Tag.(*ast.Ident)
					if !ok || p.Info.Uses[tag] != methodObj {
						return true
					}
					for _, stmt := range sw.Body.List {
						cc, ok := stmt.(*ast.CaseClause)
						if !ok || cc.List == nil {
							continue
						}
						body := &ast.BlockStmt{List: cc.Body}
						mut := c.firstMutation(p, body, c.declTaint(p, fn))
						for _, expr := range cc.List {
							tv := p.Info.Types[expr]
							if tv.Value == nil {
								continue
							}
							value := strings.Trim(tv.Value.String(), `"`)
							if _, seen := out[value]; !seen {
								out[value] = mut
							} else if out[value] == nil && mut != nil {
								out[value] = mut
							}
						}
					}
					return true
				})
			}
		}
	}
	return out
}

func (c *faultpathChecker) report(p *Package, pos token.Pos, msg string) {
	if !c.analyzed[p] {
		return
	}
	c.diags = append(c.diags, diagAt(p, pos, ruleFaultPath, msg))
}
