package main

import "go/types"

// The tracing layer (internal/trace) rides inside wire messages without
// being part of the modeled protocol, and the whole-program rules know its
// contract explicitly instead of deriving it:
//
//   - trace.TraceContext is zero-width wire metadata: its SizeBytes
//     returns 0 by contract so enabling tracing can never change modeled
//     bytes, transfer delays or VTimes. The payload-size rule therefore
//     neither audits TraceContext's own SizeBytes nor requires payload
//     SizeBytes methods to mention TraceContext-typed fields.
//   - trace.TraceContext is wire-immutable: once placed on a message it is
//     never written through — child contexts are derived with Child. The
//     wireiso rule treats the type as carrying an implicit
//     //adhoclint:wireimmutable directive, which both accepts it in any
//     payload position and flags field writes to shared contexts.
//   - trace.Recorder calls are fabric-neutral: Record observes spans but
//     never moves modeled bytes or time, so the vtime rule's fabric-reach
//     closure stops at the trace package.

// tracePath is the import path of the module's trace package.
func tracePath(modPath string) string { return modPath + "/internal/trace" }

// isTraceContext reports whether t is the module's trace.TraceContext,
// possibly behind a pointer.
func isTraceContext(t types.Type, modPath string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isNamedType(t, tracePath(modPath), "TraceContext")
}

// inTracePackage reports whether fn is declared in the module's trace
// package (Recorder.Record and the span/context constructors).
func inTracePackage(fn *types.Func, modPath string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == tracePath(modPath)
}
