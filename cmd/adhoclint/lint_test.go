package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Fixture packages under testdata/src each exercise one rule. Expected
// findings are annotated in the fixture source with `// want "fragment"`
// comments: every diagnostic on that line must contain the fragment, and
// every fragment must be matched by exactly one diagnostic.

var wantRe = regexp.MustCompile(`want "([^"]*)"`)

func rules(names ...string) map[string]bool {
	m := map[string]bool{}
	for _, n := range names {
		m[n] = true
	}
	return m
}

// loadFixture parses and type-checks one testdata package under a
// synthetic import path (so the determinism rule's internal/ scoping can
// be exercised without moving fixtures into the real tree).
func loadFixture(t *testing.T, name, importPath string) *Package {
	t.Helper()
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatalf("findModule: %v", err)
	}
	l := newLoader(modRoot, modPath)
	dir := filepath.Join("testdata", "src", name)
	got, err := l.load(dir, importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(got.pkg.TypeErrs) > 0 {
		t.Fatalf("fixture %s has type errors: %v", name, got.pkg.TypeErrs)
	}
	return got.pkg
}

// collectWants maps "file:line" to the expected message fragments there.
func collectWants(p *Package) map[string][]string {
	wants := map[string][]string{}
	for _, f := range p.AllFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := p.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	return wants
}

func checkFixture(t *testing.T, name, importPath string, enabled map[string]bool) {
	t.Helper()
	p := loadFixture(t, name, importPath)
	matchWants(t, collectWants(p), LintPackage(p, enabled))
}

// loadFixtureProgram wraps one fixture package in a Program so the
// whole-program rules can run over it (dependencies resolved through the
// loader are visible to the rules but not reported on).
func loadFixtureProgram(t *testing.T, name, importPath string) *Program {
	t.Helper()
	modRoot, modPath, err := findModule(".")
	if err != nil {
		t.Fatalf("findModule: %v", err)
	}
	l := newLoader(modRoot, modPath)
	got, err := l.load(filepath.Join("testdata", "src", name), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	if len(got.pkg.TypeErrs) > 0 {
		t.Fatalf("fixture %s has type errors: %v", name, got.pkg.TypeErrs)
	}
	return newProgram(l, []*Package{got.pkg})
}

func checkProgramFixture(t *testing.T, name, importPath string, enabled map[string]bool) {
	t.Helper()
	prog := loadFixtureProgram(t, name, importPath)
	matchWants(t, collectWants(prog.Pkgs[0]), LintProgram(prog, enabled))
}

// matchWants pairs each diagnostic with one want fragment on its line.
func matchWants(t *testing.T, wants map[string][]string, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		frags := wants[key]
		matched := -1
		for i, frag := range frags {
			if strings.Contains(d.Msg, frag) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		wants[key] = append(frags[:matched], frags[matched+1:]...)
	}
	for key, frags := range wants {
		for _, frag := range frags {
			t.Errorf("%s: expected a diagnostic containing %q, got none", key, frag)
		}
	}
}

func TestGuardedFieldRule(t *testing.T) {
	checkFixture(t, "guarded", "adhocshare/fixture/guarded", rules(ruleGuarded))
}

// The locked fixture deliberately breaks the guarded-field convention
// (channel fields sit after mu but are used unlocked once released), so
// only the lock-blocking rule runs over it.
func TestLockBlockingRule(t *testing.T) {
	checkFixture(t, "locked", "adhocshare/fixture/locked", rules(ruleLockBlocking))
}

func TestDeterminismRule(t *testing.T) {
	checkFixture(t, "determinism", "adhocshare/internal/fixture/determinism", rules(ruleDeterminism))
}

// The determinism rule only covers internal/ packages: the same fixture
// loaded under a non-internal path must be silent.
func TestDeterminismRuleSkipsNonInternal(t *testing.T) {
	p := loadFixture(t, "determinism", "adhocshare/fixture/determinism")
	if diags := LintPackage(p, rules(ruleDeterminism)); len(diags) != 0 {
		t.Errorf("non-internal package should be exempt, got %d diagnostics: %v", len(diags), diags)
	}
}

func TestGoroutineRule(t *testing.T) {
	checkFixture(t, "goroutines", "adhocshare/fixture/goroutines", rules(ruleGoroutine))
}

func TestDiscardedErrorRule(t *testing.T) {
	checkFixture(t, "discarderr", "adhocshare/fixture/discarderr", rules(ruleDiscardedError))
}

// The clean fixture follows every convention (including one violation
// suppressed via //adhoclint:ignore) and must produce zero findings with
// all rules enabled — loaded under an internal path so the determinism
// rule is in scope and the directive is what silences it.
func TestCleanFixtureAllRules(t *testing.T) {
	p := loadFixture(t, "clean", "adhocshare/internal/fixture/clean")
	if diags := LintPackage(p, nil); len(diags) != 0 {
		for _, d := range diags {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

func TestLockOrderRule(t *testing.T) {
	checkProgramFixture(t, "lockorder", "adhocshare/fixture/lockorder", rules(ruleLockOrder, ruleLockBlocking))
}

// The lock-order cycle diagnostic must carry witness call chains for both
// edges, including the transitive one through touchA.
func TestLockOrderCycleWitness(t *testing.T) {
	prog := loadFixtureProgram(t, "lockorder", "adhocshare/fixture/lockorder")
	var cycle *Diagnostic
	for _, d := range LintProgram(prog, rules(ruleLockOrder)) {
		if strings.Contains(d.Msg, "lock-order cycle") {
			d := d
			cycle = &d
		}
	}
	if cycle == nil {
		t.Fatal("no lock-order cycle diagnostic reported")
	}
	for _, frag := range []string{
		"lockorder.A.mu → lockorder.B.mu → lockorder.A.mu",
		"(*A).Bump locks lockorder.B.mu while holding lockorder.A.mu",
		"calls lockorder.(*B).touchA, which locks lockorder.A.mu",
	} {
		if !strings.Contains(cycle.Msg, frag) {
			t.Errorf("cycle diagnostic missing %q:\n%s", frag, cycle.Msg)
		}
	}
}

func TestRPCProtocolRule(t *testing.T) {
	checkProgramFixture(t, "rpcproto", "adhocshare/fixture/rpcproto", rules(ruleRPCProto))
}

func TestPayloadSizeRule(t *testing.T) {
	checkProgramFixture(t, "payloadsize", "adhocshare/fixture/payloadsize", rules(rulePayloadSize))
}

func TestWireIsoRule(t *testing.T) {
	checkProgramFixture(t, "wireiso", "adhocshare/fixture/wireiso", rules(ruleWireIso))
}

// Wire-isolation diagnostics must carry a witness flow chain naming the
// payload field, the aliased owner, and — for interprocedural findings —
// the helper the argument flows through.
func TestWireIsoWitnessChain(t *testing.T) {
	prog := loadFixtureProgram(t, "wireiso", "adhocshare/fixture/wireiso")
	diags := LintProgram(prog, rules(ruleWireIso))
	var alias, oblig *Diagnostic
	for _, d := range diags {
		d := d
		switch {
		case strings.Contains(d.Msg, "response of"):
			alias = &d
		case strings.Contains(d.Msg, "flows to the wire"):
			oblig = &d
		}
	}
	if alias == nil {
		t.Fatal("no aliased-response diagnostic reported")
	}
	for _, frag := range []string{
		"response of wireiso.(*Node).HandleCall",
		"wireiso.RowsResp.Rows",
		"n.rows aliases mutable state of *wireiso.Node (field rows)",
	} {
		if !strings.Contains(alias.Msg, frag) {
			t.Errorf("aliased-response diagnostic missing %q:\n%s", frag, alias.Msg)
		}
	}
	if oblig == nil {
		t.Fatal("no caller-obligation diagnostic reported")
	}
	for _, frag := range []string{"n.rows", "wireiso.(*Node).ship"} {
		if !strings.Contains(oblig.Msg, frag) {
			t.Errorf("obligation diagnostic missing %q:\n%s", frag, oblig.Msg)
		}
	}
}

// The vtime fixture must sit under internal/: the rule only covers the
// simulated node implementations.
func TestVTimeRule(t *testing.T) {
	checkProgramFixture(t, "vtime", "adhocshare/internal/fixture/vtime", rules(ruleVTime))
}

// The vtime rule loaded under a non-internal path must be silent.
func TestVTimeRuleSkipsNonInternal(t *testing.T) {
	prog := loadFixtureProgram(t, "vtime", "adhocshare/fixture/vtime")
	if diags := LintProgram(prog, rules(ruleVTime)); len(diags) != 0 {
		t.Errorf("non-internal package should be exempt, got %d diagnostics: %v", len(diags), diags)
	}
}

// Both v3 whole-program rules must be clean on the production tree: every
// payload that aliased node state is now deep-copied or documented
// immutable, and all fabric fan-out flows through simnet.Parallel.
func TestWireRulesCleanOnRealTree(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-module load in -short mode")
	}
	var buf strings.Builder
	n, err := run([]string{"./..."}, rules(ruleWireIso, ruleVTime, ruleAlloc, ruleCodec, ruleFaultPath), "", &buf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if n != 0 {
		t.Errorf("expected zero wireiso/vtime/alloc/codec/faultpath findings on the real tree, got %d:\n%s", n, buf.String())
	}
}

func TestAllocRule(t *testing.T) {
	checkProgramFixture(t, "alloc", "adhocshare/internal/fixture/alloc", rules(ruleAlloc))
}

// The alloc rule loaded under a non-internal path must be silent.
func TestAllocRuleSkipsNonInternal(t *testing.T) {
	prog := loadFixtureProgram(t, "alloc", "adhocshare/fixture/alloc")
	if diags := LintProgram(prog, rules(ruleAlloc)); len(diags) != 0 {
		t.Errorf("non-internal package should be exempt, got %d diagnostics: %v", len(diags), diags)
	}
}

// Every alloc finding names why its function is hot: a chain from the
// HandleCall entry point, or the fabric call the function reaches.
func TestAllocWitnessChains(t *testing.T) {
	prog := loadFixtureProgram(t, "alloc", "adhocshare/internal/fixture/alloc")
	diags := LintProgram(prog, rules(ruleAlloc))
	byFrag := func(frag string) *Diagnostic {
		for _, d := range diags {
			if strings.Contains(d.Msg, frag) {
				d := d
				return &d
			}
		}
		return nil
	}
	cases := []struct{ finding, witness string }{
		// Handler-reached: BFS chain back to the dispatch entry point.
		{"labels grows by append", "reached from alloc.(*Node).HandleCall → alloc.(*Node).echo"},
		{"map counts", "reached from alloc.(*Node).HandleCall → alloc.(*Node).countNames"},
		// Direct fabric caller: the finding names the call it performs.
		{`performs fabric Call of "al.echo"`, "fmt.Sprintf"},
	}
	for _, c := range cases {
		d := byFrag(c.finding)
		if d == nil {
			t.Errorf("no diagnostic containing %q", c.finding)
			continue
		}
		if !strings.Contains(d.Msg, c.witness) {
			t.Errorf("diagnostic %q lacks witness %q:\n%s", c.finding, c.witness, d.Msg)
		}
	}
	// The indirect fabric toucher reports its downward chain.
	var probeAll *Diagnostic
	for _, d := range diags {
		if strings.Contains(d.Msg, `reaches fabric Call of "al.echo" via alloc.(*Node).ProbeAll → alloc.(*Node).Probe`) {
			d := d
			probeAll = &d
		}
	}
	if probeAll == nil {
		t.Errorf("no diagnostic with a downward fabric witness chain for ProbeAll; got:\n%s", diagDump(diags))
	}
}

func diagDump(diags []Diagnostic) string {
	var sb strings.Builder
	for _, d := range diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestCodecRule(t *testing.T) {
	checkProgramFixture(t, "codec", "adhocshare/internal/fixture/codec", rules(ruleCodec))
}

func TestFaultPathRule(t *testing.T) {
	checkProgramFixture(t, "faultpath", "adhocshare/internal/fixture/faultpath", rules(ruleFaultPath))
}

// The faultpath rule covers internal/ and cmd/ packages only; the same
// fixture loaded outside both trees must stay silent.
func TestFaultPathSkipsOutOfScope(t *testing.T) {
	prog := loadFixtureProgram(t, "faultpath", "adhocshare/fixture/faultpath")
	if diags := LintProgram(prog, rules(ruleFaultPath)); len(diags) != 0 {
		t.Errorf("out-of-scope package should be exempt, got %d diagnostics:\n%s", len(diags), diagDump(diags))
	}
}

// Faultpath findings carry witnesses: the mutate-before-send finding names
// the call chain carrying the mutation, and the retried-handler finding
// names the Retry site's enclosing function.
func TestFaultPathWitnessChains(t *testing.T) {
	prog := loadFixtureProgram(t, "faultpath", "adhocshare/internal/fixture/faultpath")
	diags := LintProgram(prog, rules(ruleFaultPath))
	cases := []struct{ finding, witness string }{
		{"via faultpath.(*Node).registerVia", "faultpath.(*Node).registerVia → faultpath.(*Node).register"},
		{`MethodPut ("fp.put") is retried from`, "faultpath.(*Node).StoreAll"},
	}
	for _, c := range cases {
		var found *Diagnostic
		for _, d := range diags {
			if strings.Contains(d.Msg, c.finding) {
				d := d
				found = &d
				break
			}
		}
		if found == nil {
			t.Errorf("no diagnostic containing %q; got:\n%s", c.finding, diagDump(diags))
			continue
		}
		if !strings.Contains(found.Msg, c.witness) {
			t.Errorf("diagnostic %q lacks witness %q:\n%s", c.finding, c.witness, found.Msg)
		}
	}
}

// The -list output is pinned by a golden file so rule renames/additions
// are deliberate.
func TestListGolden(t *testing.T) {
	var buf strings.Builder
	printRules(&buf)
	goldenPath := filepath.Join("testdata", "list.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden file: %v", err)
	}
	if buf.String() != string(want) {
		t.Errorf("-list output differs from %s:\n got:\n%s\nwant:\n%s", goldenPath, buf.String(), want)
	}
}

func TestParseRules(t *testing.T) {
	if m, err := parseRules(""); err != nil || m != nil {
		t.Errorf("parseRules(\"\") = %v, %v; want nil, nil", m, err)
	}
	m, err := parseRules("determinism, discarded-error")
	if err != nil {
		t.Fatalf("parseRules: %v", err)
	}
	if !m[ruleDeterminism] || !m[ruleDiscardedError] || len(m) != 2 {
		t.Errorf("parseRules picked wrong rules: %v", m)
	}
	if _, err := parseRules("no-such-rule"); err == nil {
		t.Errorf("parseRules accepted an unknown rule")
	}
}
