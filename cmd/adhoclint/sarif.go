package main

import (
	"encoding/json"
	"io"
	"path/filepath"
)

// SARIF 2.1.0 output, the exchange format CI uploads to code scanning.
// Only the subset of the format adhoclint needs is modeled; the shape is
// validated against a transcribed schema subset in sarif_test.go.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// buildSARIF assembles the log for one lint run. Diagnostic filenames are
// expected to already be module-relative; they become %SRCROOT%-based URIs
// so code-scanning viewers resolve them against the repository root.
func buildSARIF(diags []Diagnostic) sarifLog {
	driver := sarifDriver{Name: "adhoclint", Rules: []sarifRule{}}
	ruleIndex := map[string]int{}
	for i, name := range ruleNames {
		ruleIndex[name] = i
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               name,
			ShortDescription: sarifMessage{Text: ruleDocs[name]},
		})
	}
	run := sarifRun{Tool: sarifTool{Driver: driver}, Results: []sarifResult{}}
	for _, d := range diags {
		run.Results = append(run.Results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: ruleIndex[d.Rule],
			Level:     "warning",
			Message:   sarifMessage{Text: d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	return sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs:    []sarifRun{run},
	}
}

// writeSARIF emits the log as indented JSON.
func writeSARIF(w io.Writer, diags []Diagnostic) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(buildSARIF(diags))
}
