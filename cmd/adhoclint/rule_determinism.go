package main

import (
	"fmt"
	"go/ast"
	"strconv"
)

// bannedTimeFuncs are wall-clock entry points. Everything under internal/
// runs against the simnet virtual clock (simnet.VTime / simnet.Clock) so
// that EXPERIMENTS.md tables reproduce bit-for-bit; real time may only
// enter through main packages or tests.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTicker": true, "NewTimer": true,
}

// bannedRandFuncs are the package-level math/rand convenience functions,
// which draw from the unseedable global source. Randomness must flow
// through an injected seeded *rand.Rand (rand.New / rand.NewSource /
// rand.NewZipf stay allowed — they build such streams).
var bannedRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true,
	"Seed": true, "Read": true,
}

// checkDeterminism forbids wall-clock and global-randomness calls in
// non-test code under internal/.
func checkDeterminism(p *Package) []Diagnostic {
	if !internalPackage(p) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		timeName, timeOK := importName(f, "time")
		randName, randOK := importName(f, "math/rand")
		if !timeOK && !randOK {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			switch {
			case timeOK && pkg.Name == timeName && bannedTimeFuncs[sel.Sel.Name]:
				diags = append(diags, diagAt(p, call.Pos(), ruleDeterminism,
					fmt.Sprintf("time.%s in internal package %s: use the simnet virtual clock (simnet.VTime / simnet.Clock) so runs stay reproducible",
						sel.Sel.Name, p.ImportPath)))
			case randOK && pkg.Name == randName && bannedRandFuncs[sel.Sel.Name]:
				diags = append(diags, diagAt(p, call.Pos(), ruleDeterminism,
					fmt.Sprintf("global math/rand.%s in internal package %s: use an injected seeded *rand.Rand",
						sel.Sel.Name, p.ImportPath)))
			}
			return true
		})
	}
	return diags
}

// importName resolves the local name a file imports the given path under;
// ok is false when the file does not import it (or dot-imports it, which
// the rule does not attempt to track).
func importName(f *ast.File, path string) (string, bool) {
	for _, imp := range f.Imports {
		got, err := strconv.Unquote(imp.Path.Value)
		if err != nil || got != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return "", false
			}
			return imp.Name.Name, true
		}
		// default package name: last path element ("rand" for math/rand)
		name := path
		for i := len(path) - 1; i >= 0; i-- {
			if path[i] == '/' {
				name = path[i+1:]
				break
			}
		}
		return name, true
	}
	return "", false
}
