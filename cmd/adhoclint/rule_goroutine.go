package main

import (
	"fmt"
	"go/ast"
	"go/token"
)

// checkGoroutines enforces goroutine hygiene: a `go func` literal must be
// visibly tied to a lifecycle mechanism — a WaitGroup (defer wg.Done()),
// a done/result channel it sends on or receives from, or a context it
// watches. Fire-and-forget goroutines leak under churn and defeat the
// leak assertions in the test suites.
func checkGoroutines(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.AllFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true // `go method()` — ownership lives at the callee
			}
			if !goroutineIsTied(lit) {
				diags = append(diags, diagAt(p, g.Pos(), ruleGoroutine,
					fmt.Sprintf("go func literal has no visible lifecycle: tie it to a sync.WaitGroup (defer wg.Done()), a done-channel, or a context")))
			}
			return true
		})
	}
	return diags
}

// goroutineIsTied looks for lifecycle evidence inside the literal's body.
func goroutineIsTied(lit *ast.FuncLit) bool {
	tied := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if tied {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// wg.Done(), ctx.Done(), ctx.Err() — any Done/Err hook counts
			if n.Sel.Name == "Done" {
				tied = true
			}
		case *ast.SendStmt:
			tied = true // reports into a channel someone drains
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				tied = true // waits on a channel someone closes/feeds
			}
		case *ast.SelectStmt:
			tied = true
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "close" {
				tied = true
			}
		case *ast.Ident:
			if n.Name == "ctx" {
				tied = true
			}
		}
		return !tied
	})
	return tied
}
