package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The hot-path allocation analysis (rule "alloc") finds per-message heap
// allocations on the fabric hot set: the functions transitively reachable
// from every HandleCall dispatch entry point, plus the functions that
// transitively perform simnet Call/Send/Transfer themselves (the
// touches-fabric fixpoint the vtime rule pioneered). Work in that set runs
// once per RPC message, so a stray allocation there multiplies by the
// message count of every experiment. Inside hot functions the rule flags:
//
//   - fmt.Sprintf / Sprint / Sprintln — reflection-driven formatting that
//     allocates a fresh string per message;
//   - string += / s = s + x accumulation — each step re-allocates the
//     accumulated string;
//   - append-growth in a non-nested range loop whose target slice was
//     declared without a capacity hint, and map population in such a loop
//     when the map was made without a size hint — the loop's trip count
//     is right there to presize with;
//   - boxing a concrete value into an empty interface parameter (fmt,
//     errors, sort and encoding/gob callees excepted: their boxing is
//     inherent to the API and once per call);
//   - closures allocated inside loops (one heap closure per iteration;
//     the branch literal handed directly to simnet.Parallel is the
//     sanctioned fan-out pattern and exempt).
//
// Every finding carries a witness chain from the fabric entry point, so
// the reader can see *why* the function is hot. Deliberately cold helpers
// (setup, reporting, test support) opt out of the hot set — and stop the
// reachability closure — with a //adhoclint:hotexempt directive on the
// declaration; individual findings take //adhoclint:ignore alloc(reason).
// The rule applies to internal/ packages except internal/simnet (whose
// fabric bookkeeping is the cost model, not a message payload) and
// internal/experiments (drivers whose allocations are once per run, not
// per message, even though they issue fabric calls).

// hotExemptDirective marks a function declaration as deliberately cold.
const hotExemptDirective = "adhoclint:hotexempt"

// checkAlloc runs the alloc rule over the program.
func checkAlloc(prog *Program, enabled map[string]bool) []Diagnostic {
	if enabled != nil && !enabled[ruleAlloc] {
		return nil
	}
	a := &allocChecker{
		prog:        prog,
		simnetPath:  prog.modPath + "/internal/simnet",
		analyzed:    prog.analyzedSet(),
		decls:       map[*types.Func]*wireDecl{},
		exempt:      map[*types.Func]bool{},
		touches:     map[*types.Func]bool{},
		directCall:  map[*types.Func]*fabricCall{},
		fabricVia:   map[*types.Func]*types.Func{},
		entries:     map[*types.Func]bool{},
		reachParent: map[*types.Func]*types.Func{},
		reached:     map[*types.Func]bool{},
		witnesses:   map[*types.Func]string{},
	}
	a.collectDecls()
	a.computeFabric()
	a.computeHandlerReach()
	for _, p := range prog.Pkgs {
		if p.Info == nil || !a.inScope(p) {
			continue
		}
		for _, f := range p.Files {
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fn.Name].(*types.Func)
				if !ok || a.exempt[obj] || !a.hot(obj) {
					continue
				}
				a.checkFunc(p, fn, obj)
			}
		}
	}
	sortDiagnostics(a.diags)
	return a.diags
}

type allocChecker struct {
	prog       *Program
	simnetPath string
	analyzed   map[*Package]bool
	decls      map[*types.Func]*wireDecl
	exempt     map[*types.Func]bool

	touches    map[*types.Func]bool        // transitively performs a fabric call
	directCall map[*types.Func]*fabricCall // first direct fabric call in the body
	fabricVia  map[*types.Func]*types.Func // callee that carried the touches mark

	entries     map[*types.Func]bool        // HandleCall dispatch entry points
	reachParent map[*types.Func]*types.Func // BFS tree edge back toward the entry
	reached     map[*types.Func]bool        // reachable from some entry

	witnesses map[*types.Func]string
	diags     []Diagnostic
}

// inScope limits reporting to internal/ packages outside internal/simnet
// and the internal/experiments drivers.
func (a *allocChecker) inScope(p *Package) bool {
	return internalPackage(p) && p.ImportPath != a.simnetPath &&
		p.ImportPath != a.prog.modPath+"/internal/experiments"
}

// hot reports whether the function belongs to the fabric hot set.
func (a *allocChecker) hot(obj *types.Func) bool {
	return a.touches[obj] || a.reached[obj]
}

// collectDecls indexes every production function declaration of the loaded
// packages and records the //adhoclint:hotexempt directives.
func (a *allocChecker) collectDecls() {
	for _, p := range a.prog.loadedPackages() {
		if p.Info == nil {
			continue
		}
		for _, f := range p.Files {
			marked := map[int]bool{}
			for _, cg := range f.Comments {
				for _, cm := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
					if strings.HasPrefix(text, hotExemptDirective) {
						marked[p.Fset.Position(cm.Pos()).Line] = true
					}
				}
			}
			for _, d := range f.Decls {
				fn, ok := d.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fn.Name].(*types.Func)
				if !ok {
					continue
				}
				a.decls[obj] = &wireDecl{pkg: p, decl: fn}
				line := p.Fset.Position(fn.Pos()).Line
				if marked[line] || marked[line-1] {
					a.exempt[obj] = true
				}
			}
		}
	}
}

// computeFabric closes "performs a fabric call" over static calls,
// recording for every hot function either its first direct fabric call or
// the callee through which the mark arrived — the downward half of the
// witness chain. Exempt functions neither carry nor propagate the mark.
func (a *allocChecker) computeFabric() {
	for obj, d := range a.decls {
		if a.exempt[obj] {
			continue
		}
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			if a.directCall[obj] != nil {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if fc := fabricCallAt(d.pkg, call, a.simnetPath); fc != nil {
					a.directCall[obj] = fc
					a.touches[obj] = true
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for obj, d := range a.decls {
			if a.touches[obj] || a.exempt[obj] {
				continue
			}
			ast.Inspect(d.decl.Body, func(n ast.Node) bool {
				if a.touches[obj] {
					return false
				}
				if call, ok := n.(*ast.CallExpr); ok {
					if callee, _ := staticCallee(d.pkg.Info, call); callee != nil &&
						!a.exempt[callee] && !observabilityNeutral(callee, a.prog.modPath) && a.touches[callee] {
						a.touches[obj] = true
						a.fabricVia[obj] = callee
						changed = true
					}
				}
				return true
			})
		}
	}
}

// computeHandlerReach walks the static call graph breadth-first from every
// HandleCall dispatch entry point, recording a parent edge per function —
// the upward half of the witness chain. Exempt functions are reachability
// barriers; trace- and flight-package callees are fabric-neutral by contract.
func (a *allocChecker) computeHandlerReach() {
	var queue []*types.Func
	for obj, d := range a.decls {
		if a.exempt[obj] || obj.Name() != "HandleCall" {
			continue
		}
		if !handlerShape(d.pkg, d.decl, a.simnetPath, nil) {
			continue
		}
		a.entries[obj] = true
		a.reached[obj] = true
		queue = append(queue, obj)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		d := a.decls[cur]
		ast.Inspect(d.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee, _ := staticCallee(d.pkg.Info, call)
			if callee == nil || a.reached[callee] || a.exempt[callee] ||
				observabilityNeutral(callee, a.prog.modPath) {
				return true
			}
			if _, hasDecl := a.decls[callee]; !hasDecl {
				return true
			}
			a.reached[callee] = true
			a.reachParent[callee] = cur
			queue = append(queue, callee)
			return true
		})
	}
}

// witness renders why a function is hot: the call chain from a HandleCall
// entry point, or the chain down to the fabric call it performs.
func (a *allocChecker) witness(obj *types.Func) string {
	if w, ok := a.witnesses[obj]; ok {
		return w
	}
	w := a.buildWitness(obj)
	a.witnesses[obj] = w
	return w
}

const witnessMaxHops = 6

func (a *allocChecker) buildWitness(obj *types.Func) string {
	if a.entries[obj] {
		return "HandleCall dispatch entry point"
	}
	if a.reached[obj] {
		var chain []string
		for cur := obj; cur != nil; cur = a.reachParent[cur] {
			chain = append(chain, funcDisplay(cur))
			if len(chain) > witnessMaxHops {
				chain = append(chain, "…")
				break
			}
		}
		// Reverse into entry-to-function order.
		for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
			chain[i], chain[j] = chain[j], chain[i]
		}
		return "reached from " + strings.Join(chain, " → ")
	}
	if fc := a.directCall[obj]; fc != nil {
		return fmt.Sprintf("performs fabric %s of %q", fc.kind, fc.value)
	}
	var chain []string
	cur := obj
	for {
		chain = append(chain, funcDisplay(cur))
		next, ok := a.fabricVia[cur]
		if !ok {
			break
		}
		cur = next
		if fc := a.directCall[cur]; fc != nil {
			chain = append(chain, funcDisplay(cur))
			return fmt.Sprintf("reaches fabric %s of %q via %s",
				fc.kind, fc.value, strings.Join(chain, " → "))
		}
		if len(chain) > witnessMaxHops {
			chain = append(chain, "…")
			break
		}
	}
	return "reaches the fabric via " + strings.Join(chain, " → ")
}

// report emits one finding with the hot-path witness appended.
func (a *allocChecker) report(p *Package, pos token.Pos, obj *types.Func, msg string) {
	if !a.analyzed[p] {
		return
	}
	a.diags = append(a.diags, diagAt(p, pos, ruleAlloc,
		fmt.Sprintf("%s (hot path: %s)", msg, a.witness(obj))))
}

// checkFunc runs the per-function allocation checks over one hot function.
func (a *allocChecker) checkFunc(p *Package, fn *ast.FuncDecl, obj *types.Func) {
	loops := collectLoops(fn.Body)
	a.checkFmtAllocs(p, fn, obj)
	a.checkStringConcat(p, fn, obj)
	a.checkLoopGrowth(p, fn, obj, loops)
	a.checkBoxing(p, fn, obj)
	a.checkLoopClosures(p, fn, obj, loops)
}

// loopInfo is one for/range loop body extent.
type loopInfo struct {
	node  ast.Stmt   // *ast.ForStmt or *ast.RangeStmt
	body  *ast.BlockStmt
	outer bool // not nested inside another loop of the same function
}

// collectLoops gathers every loop of the body and marks the outermost ones.
func collectLoops(body *ast.BlockStmt) []*loopInfo {
	var loops []*loopInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch l := n.(type) {
		case *ast.ForStmt:
			loops = append(loops, &loopInfo{node: l, body: l.Body})
		case *ast.RangeStmt:
			loops = append(loops, &loopInfo{node: l, body: l.Body})
		}
		return true
	})
	for _, l := range loops {
		l.outer = true
		for _, other := range loops {
			if other != l && other.body.Pos() <= l.node.Pos() && l.node.End() <= other.body.End() {
				l.outer = false
				break
			}
		}
	}
	return loops
}

// inAnyLoop reports whether the position falls inside some loop body.
func inAnyLoop(loops []*loopInfo, pos token.Pos) bool {
	for _, l := range loops {
		if l.body.Pos() <= pos && pos < l.body.End() {
			return true
		}
	}
	return false
}

// checkFmtAllocs flags reflection-driven fmt string formatting.
func (a *allocChecker) checkFmtAllocs(p *Package, fn *ast.FuncDecl, obj *types.Func) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := staticCallee(p.Info, call)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "fmt" {
			return true
		}
		switch callee.Name() {
		case "Sprintf", "Sprint", "Sprintln":
			a.report(p, call.Pos(), obj, fmt.Sprintf(
				"fmt.%s allocates a formatted string per message; use strconv, concatenation or an appended buffer",
				callee.Name()))
		}
		return true
	})
}

// checkStringConcat flags string accumulation via += or s = s + x, which
// re-allocates the accumulated string on every step (a single chained
// concatenation is one runtime call and is fine).
func (a *allocChecker) checkStringConcat(p *Package, fn *ast.FuncDecl, obj *types.Func) {
	isString := func(e ast.Expr) bool {
		t := p.Info.TypeOf(e)
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch asg.Tok {
		case token.ADD_ASSIGN:
			if isString(asg.Lhs[0]) {
				a.report(p, asg.Pos(), obj,
					"string += re-allocates the accumulated string on every step; build the value with one concatenation or an appended buffer")
			}
		case token.ASSIGN:
			if len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || !isString(asg.Lhs[0]) {
				return true
			}
			bin, ok := unparen(asg.Rhs[0]).(*ast.BinaryExpr)
			if !ok || bin.Op != token.ADD {
				return true
			}
			lhsObj := exprRootObj(p.Info, asg.Lhs[0])
			if lhsObj == nil {
				return true
			}
			// Leftmost operand of the concatenation chain.
			left := bin.X
			for {
				inner, ok := unparen(left).(*ast.BinaryExpr)
				if !ok || inner.Op != token.ADD {
					break
				}
				left = inner.X
			}
			if exprRootObj(p.Info, left) == lhsObj {
				a.report(p, asg.Pos(), obj,
					"s = s + … re-allocates the accumulated string on every step; build the value with one concatenation or an appended buffer")
			}
		}
		return true
	})
}

// declSizing records how a slice or map variable was created.
type declSizing int

const (
	sizedDecl   declSizing = iota // capacity/size hint present
	noCapSlice                    // var s []T, s := []T{}, make([]T, 0)
	noHintMap                     // m := map[K]V{}, make(map[K]V)
)

// checkLoopGrowth flags append-growth and map population in outermost
// range loops when the container was created without a size hint: the
// loop's trip count was available to presize with.
func (a *allocChecker) checkLoopGrowth(p *Package, fn *ast.FuncDecl, obj *types.Func, loops []*loopInfo) {
	sizing := map[types.Object]declSizing{}
	record := func(id *ast.Ident, form declSizing) {
		if o := p.Info.Defs[id]; o != nil {
			sizing[o] = form
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ValueSpec:
			if len(n.Values) != 0 {
				return true
			}
			for _, name := range n.Names {
				if o := p.Info.Defs[name]; o != nil {
					if _, ok := o.Type().Underlying().(*types.Slice); ok {
						sizing[o] = noCapSlice
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				record(id, rhsSizing(p, n.Rhs[i]))
			}
		}
		return true
	})

	for _, l := range loops {
		rng, ok := l.node.(*ast.RangeStmt)
		if !ok || !l.outer {
			continue
		}
		for _, stmt := range rng.Body.List {
			asg, ok := stmt.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
				continue
			}
			// x = append(x, …) growing an unsized slice.
			if call, ok := unparen(asg.Rhs[0]).(*ast.CallExpr); ok {
				if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 {
					target := exprRootObj(p.Info, call.Args[0])
					if target != nil && sizing[target] == noCapSlice && declaredBefore(target, rng) {
						a.report(p, asg.Pos(), obj, fmt.Sprintf(
							"%s grows by append on every iteration of this range loop but was declared without capacity; presize with make(…, 0, len(…))",
							target.Name()))
					}
					continue
				}
			}
			// m[k] = v populating an unsized map.
			if idx, ok := unparen(asg.Lhs[0]).(*ast.IndexExpr); ok {
				target := exprRootObj(p.Info, idx.X)
				if target != nil && sizing[target] == noHintMap && declaredBefore(target, rng) {
					a.report(p, asg.Pos(), obj, fmt.Sprintf(
						"map %s is populated on every iteration of this range loop but was made without a size hint; presize with make(…, len(…))",
						target.Name()))
				}
			}
		}
	}
}

// rhsSizing classifies a definition's right-hand side.
func rhsSizing(p *Package, rhs ast.Expr) declSizing {
	switch e := unparen(rhs).(type) {
	case *ast.CompositeLit:
		if len(e.Elts) != 0 {
			return sizedDecl
		}
		t := p.Info.TypeOf(e)
		if t == nil {
			return sizedDecl
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			return noCapSlice
		case *types.Map:
			return noHintMap
		}
	case *ast.CallExpr:
		id, ok := unparen(e.Fun).(*ast.Ident)
		if !ok || id.Name != "make" || len(e.Args) == 0 {
			return sizedDecl
		}
		t := p.Info.TypeOf(e)
		if t == nil {
			return sizedDecl
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			// make([]T, 0) has no capacity; any explicit capacity (or a
			// non-zero length) is a sizing decision.
			if len(e.Args) == 2 && isZeroLit(p, e.Args[1]) {
				return noCapSlice
			}
		case *types.Map:
			if len(e.Args) == 1 {
				return noHintMap
			}
		}
	}
	return sizedDecl
}

func isZeroLit(p *Package, e ast.Expr) bool {
	tv := p.Info.Types[e]
	if tv.Value == nil {
		return false
	}
	return tv.Value.ExactString() == "0"
}

// declaredBefore reports whether the object's declaration precedes the
// loop (a container created inside the loop body is per-iteration state,
// not growth across iterations).
func declaredBefore(obj types.Object, loop ast.Node) bool {
	return obj.Pos() < loop.Pos()
}

// checkBoxing flags concrete values boxed into empty-interface parameters.
// fmt, errors, sort and encoding/gob callees are exempt — boxing there is
// inherent to the API and happens once per call, and the fmt cases are
// covered by the formatting check — as are //adhoclint:hotexempt callees:
// arguments handed to a deliberately cold helper are the cold path's cost.
func (a *allocChecker) checkBoxing(p *Package, fn *ast.FuncDecl, obj *types.Func) {
	exemptPkgs := map[string]bool{"fmt": true, "errors": true, "sort": true, "encoding/gob": true}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := staticCallee(p.Info, call)
		if callee == nil || callee.Pkg() == nil || exemptPkgs[callee.Pkg().Path()] || a.exempt[callee] {
			return true
		}
		sig, ok := callee.Type().(*types.Signature)
		if !ok {
			return true
		}
		for i, arg := range call.Args {
			var param types.Type
			switch {
			case sig.Variadic() && i >= sig.Params().Len()-1:
				if s, ok := sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice); ok {
					param = s.Elem()
				}
			case i < sig.Params().Len():
				param = sig.Params().At(i).Type()
			}
			iface, ok := param.(*types.Interface)
			if !ok || !iface.Empty() {
				continue
			}
			at := p.Info.Types[arg].Type
			if at == nil || types.IsInterface(at) || p.Info.Types[arg].IsNil() {
				continue
			}
			a.report(p, arg.Pos(), obj, fmt.Sprintf(
				"%s is boxed into an empty interface argument of %s, allocating per message; keep the hot path monomorphic",
				typeDisplay(at), funcDisplay(callee)))
		}
		return true
	})
}

// checkLoopClosures flags closures allocated inside loops — one heap
// closure per iteration. The branch literal handed directly to
// simnet.Parallel is the sanctioned fan-out pattern and exempt.
func (a *allocChecker) checkLoopClosures(p *Package, fn *ast.FuncDecl, obj *types.Func, loops []*loopInfo) {
	parallelArgs := map[*ast.FuncLit]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, _ := staticCallee(p.Info, call)
		if callee == nil || callee.Name() != "Parallel" ||
			callee.Pkg() == nil || callee.Pkg().Path() != a.simnetPath {
			return true
		}
		for _, arg := range call.Args {
			if lit, ok := unparen(arg).(*ast.FuncLit); ok {
				parallelArgs[lit] = true
			}
		}
		return true
	})
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok || parallelArgs[lit] || !inAnyLoop(loops, lit.Pos()) {
			return true
		}
		a.report(p, lit.Pos(), obj,
			"closure allocated inside a loop captures its environment on every iteration; hoist it out of the loop")
		return true
	})
}
