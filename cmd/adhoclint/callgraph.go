package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// callSite is one statically resolved call inside a function body.
type callSite struct {
	callee *types.Func
	pos    token.Pos
	// recv is the rendered receiver chain of a method call ("n",
	// "s.table"), or "" for plain function calls and unrenderable
	// receivers. The lock-order rule compares it against the held mutex's
	// owner to recognize same-object recursive acquisition.
	recv string
	// inGo marks calls that are the direct operand of a `go` statement:
	// they run outside the caller's critical sections.
	inGo bool
}

// funcNode is one analyzed function in the call graph.
type funcNode struct {
	obj   *types.Func
	decl  *ast.FuncDecl
	pkg   *Package
	calls []callSite
}

// callGraph indexes every function declared in the analyzed packages and
// the statically resolvable calls between them. Interface-method calls
// (including simnet's Handler.HandleCall dispatch) are deliberately not
// resolved: following them would smear every handler's behavior onto every
// fabric call site.
type callGraph struct {
	funcs map[*types.Func]*funcNode
}

func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{funcs: map[*types.Func]*funcNode{}}
	prog.eachFuncDecl(func(p *Package, decl *ast.FuncDecl, obj *types.Func) {
		g.funcs[obj] = &funcNode{obj: obj, decl: decl, pkg: p}
	})
	for _, node := range g.funcs {
		node.calls = collectCalls(node.pkg, node.decl)
	}
	return g
}

// collectCalls finds the statically resolvable calls in one body.
func collectCalls(p *Package, fn *ast.FuncDecl) []callSite {
	var calls []callSite
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee, recv := staticCallee(p.Info, call)
		if callee == nil {
			return true
		}
		calls = append(calls, callSite{
			callee: callee,
			pos:    call.Pos(),
			recv:   recv,
			inGo:   goCalls[call],
		})
		return true
	})
	return calls
}

// staticCallee resolves a call expression to the called function object,
// when that is statically evident: a package-level function, or a method
// on a concrete receiver. Interface methods resolve to the interface's
// method object, which has no declaration in the graph and is therefore
// never followed.
func staticCallee(info *types.Info, call *ast.CallExpr) (*types.Func, string) {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f, ""
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			recv, _ := exprChain(fun.X)
			return f, recv
		}
	}
	return nil, ""
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// funcDisplay renders a function for diagnostics: "overlay.(*System).Publish"
// or "chord.Converge".
func funcDisplay(f *types.Func) string {
	name := f.Name()
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if f.Pkg() != nil {
			return f.Pkg().Name() + "." + name
		}
		return name
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
		ptr = "*"
	}
	tn := "?"
	if named, isNamed := recv.(*types.Named); isNamed {
		tn = named.Obj().Name()
	}
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Name() + "."
	}
	if ptr != "" {
		return fmt.Sprintf("%s(%s%s).%s", pkg, ptr, tn, name)
	}
	return fmt.Sprintf("%s%s.%s", pkg, tn, name)
}

// shortClass trims the module-path prefix of a lock class for display:
// "adhocshare/internal/chord.Node.mu" → "chord.Node.mu".
func shortClass(c lockClass) string {
	s := string(c)
	if i := strings.LastIndex(s, "/"); i >= 0 {
		s = s[i+1:]
	}
	return s
}
