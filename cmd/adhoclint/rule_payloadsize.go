package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// The payload-size analysis keeps SizeBytes honest: the traffic totals the
// experiments report (paper Sect. V's transmission/response-time trade-off)
// are sums of SizeBytes results, so a field that a SizeBytes method forgets
// silently underreports every experiment. Each SizeBytes method with a
// struct receiver must mention every field of that struct somewhere in its
// body; a deliberately uncounted field is declared with an
// //adhoclint:ignore payload-size comment carrying the reason.

// checkPayloadSizes audits every SizeBytes method of the analyzed packages.
func checkPayloadSizes(prog *Program, enabled map[string]bool) []Diagnostic {
	if enabled != nil && !enabled[rulePayloadSize] {
		return nil
	}
	var diags []Diagnostic
	prog.eachFuncDecl(func(p *Package, decl *ast.FuncDecl, obj *types.Func) {
		if decl.Name.Name != "SizeBytes" || decl.Recv == nil {
			return
		}
		sig, ok := obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			return
		}
		recv := sig.Recv().Type()
		if ptr, isPtr := recv.(*types.Pointer); isPtr {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok {
			return
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return // e.g. simnet.Bytes: nothing to cross-check
		}
		// trace.TraceContext is zero-width wire metadata by contract (see
		// trace_knowledge.go): its own SizeBytes returns 0 on purpose, and
		// payload structs need not count TraceContext-typed fields.
		if isTraceContext(named, prog.modPath) {
			return
		}
		mentioned := fieldMentions(decl)
		var missing []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" || mentioned[f.Name()] || isTraceContext(f.Type(), prog.modPath) {
				continue
			}
			missing = append(missing, f.Name())
		}
		if len(missing) > 0 {
			diags = append(diags, diagAt(p, decl.Pos(), rulePayloadSize,
				fmt.Sprintf("SizeBytes of %s does not account for field%s %s",
					named.Obj().Name(), plural(missing), strings.Join(missing, ", "))))
		}
	})
	return diags
}

// fieldMentions collects every selector name used in the method body: a
// field counted via `r.Field`, ranged over, or passed along mentions its
// name as a selector.
func fieldMentions(decl *ast.FuncDecl) map[string]bool {
	mentioned := map[string]bool{}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			mentioned[sel.Sel.Name] = true
		}
		return true
	})
	return mentioned
}

func plural(items []string) string {
	if len(items) == 1 {
		return ""
	}
	return "s"
}
