package adhocshare

import (
	"strings"
	"testing"
)

const foafNS = "http://xmlns.com/foaf/0.1/"

func personTriples(name string, person string, knows ...string) []Triple {
	p := NewIRI("http://example.org/" + person)
	out := []Triple{{S: p, P: NewIRI(foafNS + "name"), O: NewLiteral(name)}}
	for _, k := range knows {
		out = append(out, Triple{S: p, P: NewIRI(foafNS + "knows"), O: NewIRI("http://example.org/" + k)})
	}
	return out
}

func newDemo(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(Config{IndexNodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	providers := map[string][]Triple{
		"alice-laptop": personTriples("Alice Smith", "alice", "bob", "carol"),
		"bob-phone":    personTriples("Bob Jones", "bob", "carol"),
		"carol-tablet": personTriples("Carol Smith", "carol", "alice"),
	}
	for name, ts := range providers {
		if err := sys.AddProvider(name, ts); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestSystemEndToEnd(t *testing.T) {
	sys := newDemo(t)
	snap := sys.Snapshot()
	if snap.IndexNodes != 5 || snap.StorageNodes != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap.TotalTriples != 7 {
		t.Errorf("triples = %d, want 7", snap.TotalTriples)
	}
	if snap.TotalPostings == 0 {
		t.Error("no postings installed")
	}
	res, stats, err := sys.Query("alice-laptop", `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("solutions = %v, want alice and bob", res.Solutions)
	}
	if stats.Messages == 0 || stats.ResponseTime <= 0 {
		t.Errorf("stats not populated: %+v", stats)
	}
}

func TestQueryWithStrategies(t *testing.T) {
	sys := newDemo(t)
	q := `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?n WHERE { ?x foaf:name ?n . FILTER regex(?n, "Smith") }`
	for _, opts := range []QueryOptions{
		BaselineQueryOptions(),
		DefaultQueryOptions(),
		{Strategy: StrategyChain, Conjunction: ConjPipeline, JoinSite: JoinSiteThirdSite},
	} {
		res, _, err := sys.QueryWith("bob-phone", q, opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if len(res.Solutions) != 2 {
			t.Errorf("%+v: got %v", opts, res.Solutions)
		}
	}
}

func TestPublishReaderAndRetract(t *testing.T) {
	sys := newDemo(t)
	nt := `<http://example.org/dave> <http://xmlns.com/foaf/0.1/knows> <http://example.org/carol> .`
	if err := sys.AddProvider("dave-pc", nil); err != nil {
		t.Fatal(err)
	}
	n, err := sys.PublishReader("dave-pc", strings.NewReader(nt))
	if err != nil || n != 1 {
		t.Fatalf("publish reader: %d, %v", n, err)
	}
	res, _, err := sys.Query("dave-pc", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 3 {
		t.Fatalf("solutions = %d, want 3 after publish", len(res.Solutions))
	}
	ts, _ := ParseNTriples(strings.NewReader(nt))
	if err := sys.Retract("dave-pc", ts); err != nil {
		t.Fatal(err)
	}
	res, _, err = sys.Query("dave-pc", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Fatalf("solutions = %d, want 2 after retract", len(res.Solutions))
	}
}

func TestFailureAndRecovery(t *testing.T) {
	sys := newDemo(t)
	sys.FailNode("bob-phone")
	res, stats, err := sys.Query("alice-laptop", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 {
		t.Errorf("solutions = %v, want only alice while bob is down", res.Solutions)
	}
	if stats.StaleDrops == 0 {
		t.Error("failure not observed")
	}
}

func TestIndexChurnViaFacade(t *testing.T) {
	sys := newDemo(t)
	if _, err := sys.AddIndexNode("index-late"); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveIndexGraceful("index-00"); err != nil {
		t.Fatal(err)
	}
	sys.Stabilize(2)
	res, _, err := sys.Query("carol-tablet", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 2 {
		t.Errorf("solutions after churn = %v", res.Solutions)
	}
}

func TestExplainFacade(t *testing.T) {
	sys := newDemo(t)
	plan, err := sys.Explain(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:name ?n . FILTER regex(?n, "Smith") }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "Filter") || !strings.Contains(plan, "BGP") {
		t.Errorf("plan = %q", plan)
	}
}

func TestVirtualTimeAdvances(t *testing.T) {
	sys := newDemo(t)
	before := sys.Now()
	if _, _, err := sys.Query("alice-laptop", `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`); err != nil {
		t.Fatal(err)
	}
	if sys.Now() <= before {
		t.Error("virtual time did not advance")
	}
}

func TestPublishTurtleFacade(t *testing.T) {
	sys := newDemo(t)
	if err := sys.AddProvider("ttl-node", nil); err != nil {
		t.Fatal(err)
	}
	ttl := `
@prefix foaf: <http://xmlns.com/foaf/0.1/> .
@prefix ex: <http://example.org/> .
ex:dave foaf:knows ex:carol ;
        foaf:name "Dave" .
`
	n, err := sys.PublishTurtle("ttl-node", strings.NewReader(ttl))
	if err != nil || n != 2 {
		t.Fatalf("PublishTurtle = %d, %v", n, err)
	}
	res, _, err := sys.Query("ttl-node", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 3 {
		t.Errorf("solutions = %d, want 3", len(res.Solutions))
	}
}

func TestCachingPersistsAcrossFacadeQueries(t *testing.T) {
	sys := newDemo(t)
	opts := DefaultQueryOptions()
	opts.CacheLookups = true
	q := `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`
	_, s1, err := sys.QueryWith("alice-laptop", q, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, err := sys.QueryWith("alice-laptop", q, opts)
	if err != nil {
		t.Fatal(err)
	}
	if s2.LookupHops != 0 || s2.IndexBytes() >= s1.IndexBytes() {
		t.Errorf("cache did not persist: hops=%d index=%d vs %d",
			s2.LookupHops, s2.IndexBytes(), s1.IndexBytes())
	}
}

func TestSetLinkFactorFacade(t *testing.T) {
	sys := newDemo(t)
	q := `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`
	_, fast, err := sys.Query("alice-laptop", q)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetLinkFactor("bob-phone", 10)
	_, slow, err := sys.Query("alice-laptop", q)
	if err != nil {
		t.Fatal(err)
	}
	if slow.ResponseTime <= fast.ResponseTime {
		t.Errorf("degraded link did not slow the query: %v vs %v",
			slow.ResponseTime, fast.ResponseTime)
	}
}

func TestPublishToGraphFacade(t *testing.T) {
	sys := newDemo(t)
	if err := sys.AddProvider("graphs-node", nil); err != nil {
		t.Fatal(err)
	}
	g := "http://example.org/graphs/friends"
	err := sys.PublishToGraph("graphs-node", g, []Triple{
		{S: NewIRI("http://example.org/zed"), P: NewIRI(foafNS + "knows"), O: NewIRI("http://example.org/carol")},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := sys.Query("graphs-node", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x FROM <`+g+`> WHERE { ?x foaf:knows ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 {
		t.Errorf("FROM-scoped facade query = %v", res.Solutions)
	}
}
