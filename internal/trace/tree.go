package trace

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteTree renders spans as an ASCII causality tree, one tree per trace:
// children nest under their parent span, siblings order by start time.
// Times print as virtual offsets since the trace root's start, so the
// same query traced at different deployment ages renders identically.
func WriteTree(w io.Writer, spans []Span) error {
	byQuery := map[uint64][]Span{}
	var queries []uint64
	for _, s := range spans {
		if _, ok := byQuery[s.Query]; !ok {
			queries = append(queries, s.Query)
		}
		byQuery[s.Query] = append(byQuery[s.Query], s)
	}
	sort.Slice(queries, func(i, j int) bool { return queries[i] < queries[j] })
	for qi, q := range queries {
		if qi > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if err := writeQueryTree(w, q, qi+1, byQuery[q]); err != nil {
			return err
		}
	}
	return nil
}

func writeQueryTree(w io.Writer, query uint64, ordinal int, spans []Span) error {
	SortSpans(spans)
	ids := map[uint64]bool{}
	epoch := int64(0)
	for i, s := range spans {
		ids[s.ID] = true
		if i == 0 || s.Start < epoch {
			epoch = s.Start
		}
	}
	children := map[uint64][]Span{}
	var roots []Span
	for _, s := range spans {
		if s.Parent != 0 && ids[s.Parent] && s.Parent != s.ID {
			children[s.Parent] = append(children[s.Parent], s)
		} else {
			// True roots and orphans (parent recorded elsewhere or dropped)
			// both render at top level.
			roots = append(roots, s)
		}
	}
	label := fmt.Sprintf("trace %d", ordinal)
	if query == 0 {
		label = "untraced"
	}
	if _, err := fmt.Fprintf(w, "%s (%d spans)\n", label, len(spans)); err != nil {
		return err
	}
	for i, r := range roots {
		if err := writeSpanTree(w, r, children, epoch, "", i == len(roots)-1); err != nil {
			return err
		}
	}
	return nil
}

func writeSpanTree(w io.Writer, s Span, children map[uint64][]Span, epoch int64, prefix string, last bool) error {
	branch, next := "├─ ", "│  "
	if last {
		branch, next = "└─ ", "   "
	}
	if _, err := fmt.Fprintf(w, "%s%s%s\n", prefix, branch, formatSpan(s, epoch)); err != nil {
		return err
	}
	kids := children[s.ID]
	for i, k := range kids {
		if err := writeSpanTree(w, k, children, epoch, prefix+next, i == len(kids)-1); err != nil {
			return err
		}
	}
	return nil
}

// formatSpan renders one line: kind, name, endpoints, size, the virtual
// interval relative to the trace root and an optional note.
func formatSpan(s Span, epoch int64) string {
	ends := ""
	switch {
	case s.From != "" && s.To != "":
		ends = fmt.Sprintf(" %s→%s", s.From, s.To)
	case s.From != "":
		ends = " @" + s.From
	}
	size := ""
	if s.Kind == KindMessage {
		size = fmt.Sprintf(" %dB", s.Bytes)
	}
	note := ""
	if s.Note != "" {
		note = " · " + s.Note
	}
	return fmt.Sprintf("%s %s%s%s [%v +%v]%s",
		s.Kind, s.Name, ends, size,
		time.Duration(s.Start-epoch), time.Duration(s.End-s.Start), note)
}
