package trace

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func TestTraceContextContract(t *testing.T) {
	var zero TraceContext
	if zero.Valid() {
		t.Error("zero context must be invalid")
	}
	if zero.SizeBytes() != 0 {
		t.Error("TraceContext must contribute zero modeled bytes")
	}
	root := Root(7)
	if !root.Valid() || root.Query != 7 || root.Span == 0 || root.Parent != 0 {
		t.Errorf("Root(7) = %+v, want valid root of query 7", root)
	}
}

func TestChildDerivationDeterministic(t *testing.T) {
	root := Root(42)
	a, b := root.Child(3), root.Child(3)
	if a != b {
		t.Errorf("Child is not deterministic: %+v vs %+v", a, b)
	}
	if a.Parent != root.Span || a.Query != root.Query {
		t.Errorf("Child(3) = %+v does not nest under %+v", a, root)
	}
	if root.Child(3) == root.Child(4) {
		t.Error("sibling children must have distinct spans")
	}
	// Distinct across parents, sequences and the response leg, and never
	// zero (zero is reserved for "no span").
	seen := map[uint64]bool{}
	for q := uint64(1); q <= 20; q++ {
		tc := Root(q)
		for seq := uint64(0); seq < 50; seq++ {
			id := tc.Child(seq).Span
			if id == 0 {
				t.Fatalf("Child span id is zero for query %d seq %d", q, seq)
			}
			if seen[id] {
				t.Fatalf("span id collision at query %d seq %d", q, seq)
			}
			seen[id] = true
		}
		if resp := tc.Child(ResponseSeq); seen[resp.Span] {
			t.Fatalf("response leg collides for query %d", q)
		}
	}
}

func TestSortSpansTotalOrder(t *testing.T) {
	base := []Span{
		{Query: 2, ID: 9, Start: 5, End: 9, Kind: KindOp, Name: "b"},
		{Query: 1, ID: 3, Start: 5, End: 7, Kind: KindMessage, Name: "a", From: "n1", To: "n2", Bytes: 10},
		{Query: 1, ID: 4, Start: 5, End: 7, Kind: KindMessage, Name: "a", From: "n1", To: "n3", Bytes: 10},
		{Query: 1, ID: 2, Start: 1, End: 4, Kind: KindOp, Name: "q"},
	}
	want := append([]Span(nil), base...)
	SortSpans(want)
	for i := 0; i < 20; i++ {
		got := append([]Span(nil), base...)
		rand.New(rand.NewSource(int64(i))).Shuffle(len(got), func(a, b int) {
			got[a], got[b] = got[b], got[a]
		})
		SortSpans(got)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("SortSpans is not a total order: shuffle %d gave %+v", i, got)
		}
	}
}

func TestBuffer(t *testing.T) {
	b := NewBuffer()
	b.Record(Span{Query: 2, ID: 5, Start: 10, End: 20, Kind: KindOp, Name: "late"})
	b.Record(Span{Query: 1, ID: 1, Start: 0, End: 5, Kind: KindMessage, Name: "early"})
	b.Record(Span{Query: 0, ID: 9, Start: 3, End: 4, Kind: KindMessage, Name: "untraced"})
	if b.Len() != 3 {
		t.Fatalf("Len = %d, want 3", b.Len())
	}
	spans := b.Spans()
	if spans[0].Query != 0 || spans[1].Query != 1 || spans[2].Query != 2 {
		t.Errorf("Spans not in canonical query order: %+v", spans)
	}
	if qs := b.Queries(); !reflect.DeepEqual(qs, []uint64{1, 2}) {
		t.Errorf("Queries = %v, want [1 2] (zero excluded)", qs)
	}
	if got := b.QuerySpans(1); len(got) != 1 || got[0].Name != "early" {
		t.Errorf("QuerySpans(1) = %+v", got)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Errorf("Len after Reset = %d", b.Len())
	}
}

func TestCtxOf(t *testing.T) {
	if got := CtxOf(42); got != (TraceContext{}) {
		t.Errorf("CtxOf(non-carrier) = %+v, want zero", got)
	}
	tc := Root(3).Child(1)
	if got := CtxOf(carrier{tc}); got != tc {
		t.Errorf("CtxOf(carrier) = %+v, want %+v", got, tc)
	}
}

type carrier struct{ tc TraceContext }

func (c carrier) TraceCtx() TraceContext { return c.tc }

func TestBucketOf(t *testing.T) {
	cases := []struct {
		d    int64
		want int
	}{
		{0, 0}, {1e6, 0}, {1e6 + 1, 1}, {5e6, 2}, {1e9, 9}, {5e9, 11}, {6e9, len(LatencyBuckets)},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	r.Record(Span{Kind: KindMessage, Name: "m.a", From: "n2", Start: 0, End: 3e6, Bytes: 100})
	r.Record(Span{Kind: KindMessage, Name: "m.a", From: "n2", Start: 0, End: 50e6, Bytes: 50})
	r.Record(Span{Kind: KindMessage, Name: "m.b", From: "n1", Bytes: 7})
	r.Record(Span{Kind: KindOp, Name: "ignored", From: "n1", Bytes: 999})
	snap := r.Snapshot()
	if len(snap.Entries) != 2 {
		t.Fatalf("got %d entries, want 2 (op spans ignored): %+v", len(snap.Entries), snap.Entries)
	}
	// Sorted by (node, method).
	if snap.Entries[0].Node != "n1" || snap.Entries[1].Node != "n2" {
		t.Errorf("entries not sorted: %+v", snap.Entries)
	}
	e, ok := snap.Get("n2", "m.a")
	if !ok || e.Count != 2 || e.Bytes != 150 {
		t.Fatalf("Get(n2, m.a) = %+v, %v", e, ok)
	}
	if e.Latency[2] != 1 || e.Latency[5] != 1 {
		t.Errorf("latency histogram = %v, want 3ms in bucket 2 and 50ms in bucket 5", e.Latency)
	}
	// Snapshot isolation: mutating the snapshot must not touch the registry.
	e.Latency[0] = 99
	snap.Entries[0].Count = 99
	if again, _ := r.Snapshot().Get("n2", "m.a"); again.Latency[0] != 0 || again.Count != 2 {
		t.Error("Snapshot shares state with the registry")
	}
	r.Reset()
	if len(r.Snapshot().Entries) != 0 {
		t.Error("Reset did not clear the registry")
	}
}

func TestBuildMetricsMatchesRegistry(t *testing.T) {
	spans := []Span{
		{Kind: KindMessage, Name: "m.a", From: "n1", Bytes: 5, End: 1e6},
		{Kind: KindMessage, Name: "m.a", From: "n1", Bytes: 6, End: 2e6},
		{Kind: KindOp, Name: "op", From: "n1"},
	}
	r := NewRegistry()
	for _, s := range spans {
		r.Record(s)
	}
	if !reflect.DeepEqual(BuildMetrics(spans), r.Snapshot()) {
		t.Error("BuildMetrics differs from an attached Registry")
	}
}

func TestTee(t *testing.T) {
	if Tee() != nil || Tee(nil, nil) != nil {
		t.Error("Tee of no live recorders must be nil (disabled)")
	}
	b := NewBuffer()
	if got := Tee(nil, b); got != Recorder(b) {
		t.Error("Tee of one live recorder must pass it through")
	}
	r := NewRegistry()
	both := Tee(b, nil, r)
	both.Record(Span{Kind: KindMessage, Name: "m", From: "n"})
	if b.Len() != 1 {
		t.Error("tee did not reach the buffer")
	}
	if _, ok := r.Snapshot().Get("n", "m"); !ok {
		t.Error("tee did not reach the registry")
	}
}

// Exporter smoke tests: the golden-file coverage over a real query lives
// in internal/experiments; here the shapes are checked structurally.
func TestWriteTreeSmoke(t *testing.T) {
	root := Root(1)
	child := root.Child(1)
	spans := []Span{
		{Query: 1, ID: root.Span, Kind: KindOp, Name: "dqp.query", From: "D00", Start: 0, End: 10e6},
		{Query: 1, ID: child.Span, Parent: root.Span, Kind: KindMessage, Name: "store.match",
			From: "D00", To: "D01", Start: 0, End: 4e6, Bytes: 128},
		{Query: 0, ID: 99, Kind: KindMessage, Name: "chord.stabilize", From: "idx-00", To: "idx-01", Start: 0, End: 2e6},
	}
	var sb strings.Builder
	if err := WriteTree(&sb, spans); err != nil {
		t.Fatalf("WriteTree: %v", err)
	}
	out := sb.String()
	for _, frag := range []string{"dqp.query", "store.match", "D00→D01", "128B", "untraced", "chord.stabilize"} {
		if !strings.Contains(out, frag) {
			t.Errorf("tree output missing %q:\n%s", frag, out)
		}
	}
	if !strings.Contains(out, "└─") {
		t.Errorf("tree output has no branch glyphs:\n%s", out)
	}
}

func TestWriteChromeSmoke(t *testing.T) {
	spans := []Span{
		{Query: 1, ID: 1, Kind: KindOp, Name: "dqp.query", From: "D00", Start: 0, End: 10e6},
		{Query: 1, ID: 2, Parent: 1, Kind: KindMessage, Name: "store.match",
			From: "D00", To: "D01", Start: 1e6, End: 4e6, Bytes: 128},
	}
	var sb strings.Builder
	if err := WriteChrome(&sb, spans); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	out := sb.String()
	for _, frag := range []string{`"traceEvents"`, `"ph": "X"`, `"ph": "M"`, "store.match", "process_name", "thread_name"} {
		if !strings.Contains(out, frag) {
			t.Errorf("chrome output missing %q:\n%s", frag, out)
		}
	}
	// Byte-identical across runs over the same spans.
	var again strings.Builder
	if err := WriteChrome(&again, spans); err != nil {
		t.Fatalf("WriteChrome again: %v", err)
	}
	if again.String() != out {
		t.Error("WriteChrome output differs between identical runs")
	}
}
