package trace

import (
	"math/rand"
	"reflect"
	"testing"
)

func ringSpans() []Span {
	var out []Span
	for q := uint64(1); q <= 5; q++ {
		for i := 0; i < 10; i++ {
			out = append(out, Span{Query: q, ID: uint64(i + 1), Kind: KindMessage,
				Name: "m", Start: int64(i * 10), End: int64(i*10 + 5)})
		}
	}
	return out
}

func TestRingBufferEvictsOldestTraces(t *testing.T) {
	b := NewRingBuffer(20)
	for _, s := range ringSpans() {
		b.Record(s)
	}
	if b.Len() != 20 {
		t.Fatalf("len = %d, want 20", b.Len())
	}
	spans := b.Spans()
	// 50 spans over queries 1..5, cap 20: queries 1–3 evicted, 4–5 kept.
	if qs := b.Queries(); !reflect.DeepEqual(qs, []uint64{4, 5}) {
		t.Fatalf("retained queries = %v, want [4 5]", qs)
	}
	for _, s := range spans {
		if s.Query < 4 {
			t.Fatalf("old trace %d survived eviction", s.Query)
		}
	}
}

func TestRingBufferInsertionOrderIndependent(t *testing.T) {
	base := ringSpans()
	build := func(seed int64) []Span {
		spans := append([]Span(nil), base...)
		rand.New(rand.NewSource(seed)).Shuffle(len(spans), func(i, j int) { spans[i], spans[j] = spans[j], spans[i] })
		b := NewRingBuffer(17)
		for _, s := range spans {
			b.Record(s)
		}
		return b.Spans()
	}
	want := build(1)
	for seed := int64(2); seed <= 6; seed++ {
		if got := build(seed); !reflect.DeepEqual(got, want) {
			t.Fatalf("ring contents differ between insertion orders (seed %d)", seed)
		}
	}
}

func TestSetLimitShrinksExistingSpans(t *testing.T) {
	b := NewBuffer()
	for _, s := range ringSpans() {
		b.Record(s)
	}
	b.SetLimit(10)
	if b.Len() != 10 || b.Limit() != 10 {
		t.Fatalf("len=%d limit=%d, want 10/10", b.Len(), b.Limit())
	}
	if qs := b.Queries(); !reflect.DeepEqual(qs, []uint64{5}) {
		t.Fatalf("retained queries = %v, want [5]", qs)
	}
	b.SetLimit(0)
	b.Record(Span{Query: 9})
	if b.Len() != 11 {
		t.Fatalf("uncapped append after SetLimit(0) failed: len=%d", b.Len())
	}
}

func TestRingBufferRecordAllocationFreeAtCapacity(t *testing.T) {
	b := NewRingBuffer(16)
	for i := 0; i < 32; i++ {
		b.Record(Span{Query: 1, ID: uint64(i), Start: int64(i)})
	}
	i := int64(32)
	allocs := testing.AllocsPerRun(200, func() {
		b.Record(Span{Query: 1, ID: uint64(i), Start: i})
		i++
	})
	if allocs != 0 {
		t.Fatalf("ring Record at capacity allocates: %v allocs/op", allocs)
	}
}
