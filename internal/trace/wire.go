package trace

import (
	"encoding/binary"
	"errors"
)

// errTruncated reports wire input that ends inside a trace context. The
// package stays a leaf (stdlib imports only), so the varint primitives
// come from encoding/binary directly rather than internal/wirebin.
var errTruncated = errors.New("trace: truncated context")

// EncodeBinary appends the context's binary wire form to dst: three
// unsigned varints, so the common untraced (all-zero) context costs three
// bytes. Trace metadata still contributes zero bytes to the modeled
// SizeBytes cost; this is the real serialization the payload codec uses
// so causality survives an encode/decode round trip.
func (tc TraceContext) EncodeBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, tc.Query)
	dst = binary.AppendUvarint(dst, tc.Span)
	return binary.AppendUvarint(dst, tc.Parent)
}

// DecodeBinary consumes one context from b and returns the rest.
func (tc *TraceContext) DecodeBinary(b []byte) ([]byte, error) {
	var n int
	if tc.Query, n = binary.Uvarint(b); n <= 0 {
		return b, errTruncated
	}
	b = b[n:]
	if tc.Span, n = binary.Uvarint(b); n <= 0 {
		return b, errTruncated
	}
	b = b[n:]
	if tc.Parent, n = binary.Uvarint(b); n <= 0 {
		return b, errTruncated
	}
	return b[n:], nil
}
