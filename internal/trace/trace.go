// Package trace is the zero-overhead-when-disabled tracing substrate of
// the simulated deployment. Spans are keyed to *virtual* time — the VTime
// the simnet cost model charges — never wall time, so a seeded run always
// produces byte-identical traces and the observability layer can be part
// of regression evidence instead of noise.
//
// The package is a leaf: it deliberately imports nothing from the rest of
// the repository (times are int64 nanoseconds, node addresses are plain
// strings), so simnet itself can record message spans without an import
// cycle. Causality crosses the wire as a TraceContext carried inside RPC
// payloads; contexts contribute zero bytes to the modeled payload size
// (tracing must not perturb the cost model) and child span identifiers
// are *derived* — a deterministic hash of the parent span and a caller
// chosen sequence number — never drawn from clocks or global counters,
// which would break seeded reproducibility under concurrent fan-out.
package trace

import (
	"sort"
	"sync"
)

// TraceContext identifies one span within one query (or system operation)
// trace. It travels inside RPC payloads: the sender derives a child
// context per outgoing message, the fabric records the message span under
// Span/Parent, and the receiver parents any nested work on Span.
type TraceContext struct {
	// Query identifies the trace (one distributed query or one system
	// operation). Zero means "not traced".
	Query uint64
	// Span is this message's (or operation's) span identifier.
	Span uint64
	// Parent is the span this one is causally nested under (zero = root).
	Parent uint64
}

// SizeBytes implements the simnet payload-size contract with zero: trace
// metadata travels out of band of the modeled cost, so enabling tracing
// never changes message bytes, VTimes or routing decisions.
func (TraceContext) SizeBytes() int { return 0 }

// Valid reports whether the context belongs to an active trace.
func (tc TraceContext) Valid() bool { return tc.Query != 0 }

// ResponseSeq is the child sequence number reserved for the response leg
// of a call; callers deriving request children must use smaller values.
const ResponseSeq = ^uint64(0)

// Child derives the deterministic context of the seq-th child of this
// span. Sequence numbers must be deterministic themselves (loop indexes,
// Parallel branch indexes, per-query counters) — never clocks or shared
// atomics — and distinct per parent.
func (tc TraceContext) Child(seq uint64) TraceContext {
	return TraceContext{Query: tc.Query, Span: mix(tc.Span, seq), Parent: tc.Span}
}

// Root builds the root context of a new trace. The query identifier comes
// from a deterministic per-deployment counter.
func Root(query uint64) TraceContext {
	return TraceContext{Query: query, Span: mix(query, 0x5eed)}
}

// mix is a splitmix64-style finalizer over the (parent, seq) pair: cheap,
// allocation-free and well distributed, so derived span identifiers are
// unique for all practical trace sizes.
func mix(a, b uint64) uint64 {
	z := a ^ (b+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 { // keep zero reserved for "no span"
		z = 1
	}
	return z
}

// Span kinds.
const (
	// KindMessage is one payload transfer over the fabric (a call's
	// request and response legs are two message spans).
	KindMessage = "msg"
	// KindOp is an engine- or overlay-level operation (a query, a pattern
	// execution, a publication) grouping the messages it caused.
	KindOp = "op"
)

// Span is one completed interval of virtual time. The simulator is
// synchronous, so spans are recorded whole (no open/close halves).
type Span struct {
	// Query is the trace identifier (zero for untraced fabric traffic).
	Query uint64
	// ID and Parent link the span into the trace tree.
	ID     uint64
	Parent uint64
	// Kind is KindMessage or KindOp.
	Kind string
	// Name is the RPC method (messages) or operation name (ops).
	Name string
	// From and To are node addresses; To is empty for local operations.
	From string
	To   string
	// Start and End are virtual times in nanoseconds since the simulation
	// epoch (End ≥ Start; for messages, departure and arrival).
	Start int64
	End   int64
	// Bytes is the modeled payload size (messages only).
	Bytes int
	// Note carries a short human annotation (strategy, pattern, error).
	Note string
}

// Duration returns the span's virtual extent in nanoseconds.
func (s Span) Duration() int64 { return s.End - s.Start }

// Recorder receives completed spans. A nil Recorder disables tracing; the
// fabric and the engines check for nil once per operation and skip all
// span construction on the disabled path.
type Recorder interface {
	Record(s Span)
}

// Buffer is the standard Recorder: it accumulates spans in memory and
// exposes them in a canonical order. Safe for concurrent use (simnet
// Parallel branches record concurrently).
//
// By default the buffer grows without bound — the right behaviour for
// bounded experiments, but a silent memory leak under long storm runs.
// SetLimit (or NewRingBuffer) turns on ring mode: at capacity, the
// canonically smallest span is evicted for each new one. Because trace
// identifiers are allocated monotonically per deployment, the
// canonically smallest span belongs to the oldest trace (untraced
// query-0 spans go first), so ring mode retains the most recent traces.
// Eviction is by the canonical order, never insertion order, so the
// retained contents of a seeded run are byte-identical under any
// goroutine interleaving — including simnet.Config.ConcurrentDelivery.
type Buffer struct {
	mu    sync.Mutex
	spans []Span
	// limit > 0 enables ring mode: spans are kept sorted canonically and
	// the smallest is evicted when the limit would be exceeded.
	limit int
}

// NewBuffer creates an empty, unbounded span buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// NewRingBuffer creates a span buffer capped at limit spans (ring mode).
func NewRingBuffer(limit int) *Buffer {
	b := &Buffer{}
	b.SetLimit(limit)
	return b
}

// SetLimit caps the buffer at limit spans (≤ 0 removes the cap). Already
// recorded spans beyond the new limit are evicted canonically-smallest
// first.
func (b *Buffer) SetLimit(limit int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.limit = limit
	if limit <= 0 {
		return
	}
	sortSpansLocked(b.spans)
	if len(b.spans) > limit {
		keep := make([]Span, limit, limit+1)
		copy(keep, b.spans[len(b.spans)-limit:])
		b.spans = keep
	} else if cap(b.spans) < limit+1 {
		grown := make([]Span, len(b.spans), limit+1)
		copy(grown, b.spans)
		b.spans = grown
	}
}

// Limit returns the ring-mode capacity (0 = unbounded).
func (b *Buffer) Limit() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.limit
}

// Record implements Recorder. In ring mode the span is inserted at its
// canonical position and the canonically smallest span is evicted once
// the buffer is full, so recording is allocation-free at capacity.
func (b *Buffer) Record(s Span) {
	b.mu.Lock()
	if b.limit <= 0 {
		b.spans = append(b.spans, s)
		b.mu.Unlock()
		return
	}
	idx := sort.Search(len(b.spans), func(i int) bool { return spanLess(s, b.spans[i]) })
	b.spans = append(b.spans, Span{})
	copy(b.spans[idx+1:], b.spans[idx:])
	b.spans[idx] = s
	if len(b.spans) > b.limit {
		copy(b.spans, b.spans[1:])
		b.spans = b.spans[:b.limit]
	}
	b.mu.Unlock()
}

// Len reports the number of recorded spans.
func (b *Buffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.spans)
}

// Reset discards all recorded spans.
func (b *Buffer) Reset() {
	b.mu.Lock()
	b.spans = nil
	b.mu.Unlock()
}

// Spans returns a copy of the recorded spans in canonical order: sorted
// by (Query, Start, End, ID, ...) with a total tie-break, so two runs
// that recorded the same spans — in whatever goroutine interleaving —
// always return byte-identical sequences.
func (b *Buffer) Spans() []Span {
	b.mu.Lock()
	out := append([]Span(nil), b.spans...)
	b.mu.Unlock()
	SortSpans(out)
	return out
}

// QuerySpans returns the canonical spans of one trace.
func (b *Buffer) QuerySpans(query uint64) []Span {
	var out []Span
	for _, s := range b.Spans() {
		if s.Query == query {
			out = append(out, s)
		}
	}
	return out
}

// Queries lists the distinct non-zero trace identifiers present, sorted.
func (b *Buffer) Queries() []uint64 {
	seen := map[uint64]bool{}
	b.mu.Lock()
	for _, s := range b.spans {
		if s.Query != 0 {
			seen[s.Query] = true
		}
	}
	b.mu.Unlock()
	out := make([]uint64, 0, len(seen))
	for q := range seen {
		out = append(out, q)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SortSpans orders spans canonically (total order over every field, so
// equal span multisets sort byte-identically).
func SortSpans(spans []Span) {
	sort.Slice(spans, func(i, j int) bool { return spanLess(spans[i], spans[j]) })
}

// sortSpansLocked is SortSpans for internal use under the buffer lock.
func sortSpansLocked(spans []Span) { SortSpans(spans) }

// spanLess is the canonical total order over spans: every field
// participates, so equal span multisets sort byte-identically.
func spanLess(a, b Span) bool {
	if a.Query != b.Query {
		return a.Query < b.Query
	}
	if a.Start != b.Start {
		return a.Start < b.Start
	}
	if a.End != b.End {
		return a.End < b.End
	}
	if a.ID != b.ID {
		return a.ID < b.ID
	}
	if a.Parent != b.Parent {
		return a.Parent < b.Parent
	}
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Name != b.Name {
		return a.Name < b.Name
	}
	if a.From != b.From {
		return a.From < b.From
	}
	if a.To != b.To {
		return a.To < b.To
	}
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	return a.Note < b.Note
}

// Carrier is implemented by RPC payloads that carry a TraceContext. The
// fabric extracts the context with CtxOf to attribute message spans.
type Carrier interface {
	TraceCtx() TraceContext
}

// CtxOf returns the trace context carried by a payload, or the zero
// context. It never allocates, so the fabric can call it per message.
func CtxOf(v any) TraceContext {
	if c, ok := v.(Carrier); ok {
		return c.TraceCtx()
	}
	return TraceContext{}
}
