package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace_event export: the spans of a run rendered as "complete"
// (ph "X") events loadable in chrome://tracing or Perfetto. Each trace
// (query / system op) becomes one process, each node one thread within
// it, so a distributed query reads as lanes per node with causal nesting
// visible through timing. Virtual nanoseconds map to trace microseconds.

// chromeEvent is one trace_event object. Field order is part of the
// golden-file contract.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome renders spans as one indented Chrome trace_event JSON
// document. Spans must already be in canonical order (Buffer.Spans);
// given equal input the output is byte-identical.
func WriteChrome(w io.Writer, spans []Span) error {
	doc := chromeDoc{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}

	// Stable pid per trace (1-based, by ascending query id) and tid per
	// node within a trace (1-based, by node name).
	queries := []uint64{}
	seenQ := map[uint64]bool{}
	nodesOf := map[uint64]map[string]bool{}
	for _, s := range spans {
		if !seenQ[s.Query] {
			seenQ[s.Query] = true
			queries = append(queries, s.Query)
			nodesOf[s.Query] = map[string]bool{}
		}
		nodesOf[s.Query][laneOf(s)] = true
	}
	sort.Slice(queries, func(i, j int) bool { return queries[i] < queries[j] })
	pidOf := map[uint64]int{}
	tidOf := map[uint64]map[string]int{}
	for qi, q := range queries {
		pid := qi + 1
		pidOf[q] = pid
		names := make([]string, 0, len(nodesOf[q]))
		for n := range nodesOf[q] {
			names = append(names, n)
		}
		sort.Strings(names)
		tids := map[string]int{}
		label := "trace"
		if q == 0 {
			label = "untraced fabric traffic"
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "process_name", Phase: "M", Pid: pid,
			Args: map[string]any{"name": label},
		})
		for ti, n := range names {
			tids[n] = ti + 1
			doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
				Name: "thread_name", Phase: "M", Pid: pid, Tid: ti + 1,
				Args: map[string]any{"name": n},
			})
		}
		tidOf[q] = tids
	}

	for _, s := range spans {
		ev := chromeEvent{
			Name:  s.Name,
			Cat:   s.Kind,
			Phase: "X",
			Pid:   pidOf[s.Query],
			Tid:   tidOf[s.Query][laneOf(s)],
			Ts:    float64(s.Start) / 1e3,
			Dur:   float64(s.End-s.Start) / 1e3,
			Args:  map[string]any{},
		}
		if s.From != "" {
			ev.Args["from"] = s.From
		}
		if s.To != "" {
			ev.Args["to"] = s.To
		}
		if s.Kind == KindMessage {
			ev.Args["bytes"] = s.Bytes
		}
		if s.Note != "" {
			ev.Args["note"] = s.Note
		}
		if len(ev.Args) == 0 {
			ev.Args = nil
		}
		doc.TraceEvents = append(doc.TraceEvents, ev)
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// laneOf picks the thread lane a span renders in: the sending (or acting)
// node.
func laneOf(s Span) string {
	if s.From != "" {
		return s.From
	}
	return "(system)"
}
