package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// LatencyBuckets are the upper bounds (virtual nanoseconds, inclusive) of
// the fixed exponential histogram used for per-method VTime latencies; a
// final implicit +Inf bucket catches the rest. Fixed bounds keep the
// snapshot shape — and therefore golden files — stable across runs.
var LatencyBuckets = []int64{
	1e6,   // 1ms
	2e6,   // 2ms
	5e6,   // 5ms
	10e6,  // 10ms
	20e6,  // 20ms
	50e6,  // 50ms
	100e6, // 100ms
	200e6, // 200ms
	500e6, // 500ms
	1e9,   // 1s
	2e9,   // 2s
	5e9,   // 5s
}

// bucketOf returns the histogram slot of a latency (len(LatencyBuckets)
// is the overflow slot).
func bucketOf(d int64) int {
	for i, ub := range LatencyBuckets {
		if d <= ub {
			return i
		}
	}
	return len(LatencyBuckets)
}

// MetricsEntry aggregates one (node, method) cell: message count, bytes
// and the VTime-latency histogram of the messages that node *sent*.
type MetricsEntry struct {
	Node    string
	Method  string
	Count   int64
	Bytes   int64
	Latency []int64 // len(LatencyBuckets)+1 bucket counts
}

// MetricsSnapshot is the deterministic point-in-time state of a Registry:
// entries sorted by (node, method). Seeded runs produce byte-identical
// snapshots, which the determinism tests enforce.
type MetricsSnapshot struct {
	Entries []MetricsEntry
}

// Get returns the entry of one (node, method) cell.
func (s MetricsSnapshot) Get(node, method string) (MetricsEntry, bool) {
	for _, e := range s.Entries {
		if e.Node == node && e.Method == method {
			return e, true
		}
	}
	return MetricsEntry{}, false
}

// Registry aggregates per-node × per-method counters and VTime-latency
// histograms from message spans. It implements Recorder, so it can be
// attached to the fabric directly or combined with a Buffer via Tee.
type Registry struct {
	mu    sync.Mutex
	cells map[[2]string]*MetricsEntry
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{cells: map[[2]string]*MetricsEntry{}}
}

// Record implements Recorder: message spans are aggregated under their
// sending node; op spans are ignored.
func (r *Registry) Record(s Span) {
	if s.Kind != KindMessage {
		return
	}
	key := [2]string{s.From, s.Name}
	r.mu.Lock()
	e, ok := r.cells[key]
	if !ok {
		e = &MetricsEntry{Node: s.From, Method: s.Name,
			Latency: make([]int64, len(LatencyBuckets)+1)}
		r.cells[key] = e
	}
	e.Count++
	e.Bytes += int64(s.Bytes)
	e.Latency[bucketOf(s.Duration())]++
	r.mu.Unlock()
}

// Snapshot returns the deterministic aggregate state.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.Lock()
	out := MetricsSnapshot{Entries: make([]MetricsEntry, 0, len(r.cells))}
	for _, e := range r.cells {
		c := *e
		c.Latency = append([]int64(nil), e.Latency...)
		out.Entries = append(out.Entries, c)
	}
	r.mu.Unlock()
	sort.Slice(out.Entries, func(i, j int) bool {
		if out.Entries[i].Node != out.Entries[j].Node {
			return out.Entries[i].Node < out.Entries[j].Node
		}
		return out.Entries[i].Method < out.Entries[j].Method
	})
	return out
}

// Reset zeroes the registry.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.cells = map[[2]string]*MetricsEntry{}
	r.mu.Unlock()
}

// BuildMetrics folds a span slice into a snapshot (the offline equivalent
// of attaching a Registry).
func BuildMetrics(spans []Span) MetricsSnapshot {
	r := NewRegistry()
	for _, s := range spans {
		r.Record(s)
	}
	return r.Snapshot()
}

// tee fans spans out to several recorders.
type tee []Recorder

// Record implements Recorder.
func (t tee) Record(s Span) {
	for _, r := range t {
		r.Record(s)
	}
}

// Tee combines recorders: every span goes to each of them. Nil members
// are skipped; Tee() of no live recorders returns nil (disabled).
func Tee(rs ...Recorder) Recorder {
	var live tee
	for _, r := range rs {
		if r != nil {
			live = append(live, r)
		}
	}
	if len(live) == 0 {
		return nil
	}
	if len(live) == 1 {
		return live[0]
	}
	return live
}

// WriteMetrics renders a snapshot as an aligned per-(node, method) table
// with a compact latency summary (p50/max bucket upper bounds, virtual
// milliseconds). Entries are already in canonical (node, method) order, so
// the rendering of a seeded run is byte-identical.
func WriteMetrics(w io.Writer, snap MetricsSnapshot) error {
	if _, err := fmt.Fprintf(w, "%-10s %-28s %8s %12s %10s %10s\n",
		"node", "method", "msgs", "bytes", "p50-ms", "max-ms"); err != nil {
		return err
	}
	for _, e := range snap.Entries {
		if _, err := fmt.Fprintf(w, "%-10s %-28s %8d %12d %10s %10s\n",
			e.Node, e.Method, e.Count, e.Bytes,
			bucketLabel(quantileBucket(e, 0.5)), bucketLabel(maxBucket(e))); err != nil {
			return err
		}
	}
	return nil
}

// quantileBucket returns the index of the latency bucket containing the
// q-quantile of one entry's histogram (-1 for an empty histogram).
func quantileBucket(e MetricsEntry, q float64) int {
	target := int64(q * float64(e.Count))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, n := range e.Latency {
		seen += n
		if seen >= target {
			return i
		}
	}
	return -1
}

// maxBucket returns the index of the highest non-empty latency bucket.
func maxBucket(e MetricsEntry) int {
	for i := len(e.Latency) - 1; i >= 0; i-- {
		if e.Latency[i] > 0 {
			return i
		}
	}
	return -1
}

// bucketLabel renders a latency-bucket upper bound in virtual ms.
func bucketLabel(i int) string {
	switch {
	case i < 0:
		return "-"
	case i >= len(LatencyBuckets):
		return "+Inf"
	default:
		return fmt.Sprintf("<=%g", float64(LatencyBuckets[i])/1e6)
	}
}
