// Package results serializes SPARQL query results in the W3C SPARQL 1.1
// Query Results JSON Format and in CSV/TSV, so query answers can leave the
// system in standard interchange formats.
package results

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql/eval"
)

// jsonDoc mirrors the W3C SPARQL results JSON structure.
type jsonDoc struct {
	Head    jsonHead      `json:"head"`
	Boolean *bool         `json:"boolean,omitempty"`
	Results *jsonBindings `json:"results,omitempty"`
}

type jsonHead struct {
	Vars []string `json:"vars,omitempty"`
}

type jsonBindings struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

type jsonTerm struct {
	Type     string `json:"type"`
	Value    string `json:"value"`
	Lang     string `json:"xml:lang,omitempty"`
	Datatype string `json:"datatype,omitempty"`
}

func termToJSON(t rdf.Term) (jsonTerm, error) {
	switch t.Kind {
	case rdf.KindIRI:
		return jsonTerm{Type: "uri", Value: t.Value}, nil
	case rdf.KindBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}, nil
	case rdf.KindLiteral:
		return jsonTerm{Type: "literal", Value: t.Value, Lang: t.Lang, Datatype: t.Datatype}, nil
	default:
		return jsonTerm{}, fmt.Errorf("results: cannot serialize term %v", t)
	}
}

func jsonToTerm(jt jsonTerm) (rdf.Term, error) {
	switch jt.Type {
	case "uri":
		return rdf.NewIRI(jt.Value), nil
	case "bnode":
		return rdf.NewBlank(jt.Value), nil
	case "literal", "typed-literal":
		switch {
		case jt.Lang != "":
			return rdf.NewLangLiteral(jt.Value, jt.Lang), nil
		case jt.Datatype != "":
			return rdf.NewTypedLiteral(jt.Value, jt.Datatype), nil
		default:
			return rdf.NewLiteral(jt.Value), nil
		}
	default:
		return rdf.Term{}, fmt.Errorf("results: unknown term type %q", jt.Type)
	}
}

// WriteJSON writes a SELECT result in the W3C JSON format. vars fixes the
// column order; variables unbound in a row are omitted from its binding
// object, per the specification.
func WriteJSON(w io.Writer, vars []string, sols eval.Solutions) error {
	doc := jsonDoc{
		Head:    jsonHead{Vars: vars},
		Results: &jsonBindings{Bindings: make([]map[string]jsonTerm, 0, len(sols))},
	}
	for _, b := range sols {
		row := map[string]jsonTerm{}
		for v, t := range b {
			jt, err := termToJSON(t)
			if err != nil {
				return err
			}
			row[v] = jt
		}
		doc.Results.Bindings = append(doc.Results.Bindings, row)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// WriteBooleanJSON writes an ASK result in the W3C JSON format.
func WriteBooleanJSON(w io.Writer, answer bool) error {
	doc := jsonDoc{Boolean: &answer}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// ReadJSON parses a W3C JSON results document back into variables and
// solutions (ASK documents return the boolean via the third result).
func ReadJSON(r io.Reader) ([]string, eval.Solutions, *bool, error) {
	var doc jsonDoc
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, nil, nil, fmt.Errorf("results: %w", err)
	}
	if doc.Boolean != nil {
		return nil, nil, doc.Boolean, nil
	}
	if doc.Results == nil {
		return nil, nil, nil, fmt.Errorf("results: document has neither results nor boolean")
	}
	sols := make(eval.Solutions, 0, len(doc.Results.Bindings))
	for _, row := range doc.Results.Bindings {
		b := eval.NewBinding()
		for v, jt := range row {
			t, err := jsonToTerm(jt)
			if err != nil {
				return nil, nil, nil, err
			}
			b[v] = t
		}
		sols = append(sols, b)
	}
	return doc.Head.Vars, sols, nil, nil
}

// WriteCSV writes a SELECT result in SPARQL 1.1 CSV: a header of variable
// names and one plain-value row per solution (unbound cells empty).
func WriteCSV(w io.Writer, vars []string, sols eval.Solutions) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(vars); err != nil {
		return fmt.Errorf("results: csv: %w", err)
	}
	for _, b := range sols {
		row := make([]string, len(vars))
		for i, v := range vars {
			if t, ok := b[v]; ok {
				row[i] = t.Value
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("results: csv: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteTSV writes a SELECT result in SPARQL 1.1 TSV: header of
// '?'-prefixed variables and full term syntax per cell.
func WriteTSV(w io.Writer, vars []string, sols eval.Solutions) error {
	heads := make([]string, len(vars))
	for i, v := range vars {
		heads[i] = "?" + v
	}
	if _, err := fmt.Fprintln(w, strings.Join(heads, "\t")); err != nil {
		return err
	}
	for _, b := range sols {
		row := make([]string, len(vars))
		for i, v := range vars {
			if t, ok := b[v]; ok {
				row[i] = t.String()
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, "\t")); err != nil {
			return err
		}
	}
	return nil
}

// SortSolutions orders solutions deterministically by their canonical
// keys — handy before serializing when no ORDER BY was given.
func SortSolutions(sols eval.Solutions) eval.Solutions {
	out := sols.Clone()
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
