package results

import (
	"bytes"
	"strings"
	"testing"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql/eval"
)

func sampleSolutions() ([]string, eval.Solutions) {
	vars := []string{"x", "n", "a"}
	sols := eval.Solutions{
		{
			"x": rdf.NewIRI("http://example.org/alice"),
			"n": rdf.NewLiteral("Alice"),
			"a": rdf.NewInteger(30),
		},
		{
			"x": rdf.NewIRI("http://example.org/bob"),
			"n": rdf.NewLangLiteral("Robert", "en"),
			// a unbound
		},
		{
			"x": rdf.NewBlank("b0"),
			"n": rdf.NewLiteral("with,comma and \"quote\""),
		},
	}
	return vars, sols
}

func TestJSONRoundTrip(t *testing.T) {
	vars, sols := sampleSolutions()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, vars, sols); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"vars"`, `"bindings"`, `"uri"`, `"bnode"`, `"xml:lang": "en"`, `XMLSchema#integer`} {
		if !strings.Contains(out, want) {
			t.Errorf("JSON missing %q:\n%s", want, out)
		}
	}
	gotVars, gotSols, boolean, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if boolean != nil {
		t.Error("SELECT round trip produced a boolean")
	}
	if len(gotVars) != 3 {
		t.Errorf("vars = %v", gotVars)
	}
	if len(gotSols) != len(sols) {
		t.Fatalf("rows = %d, want %d", len(gotSols), len(sols))
	}
	for i := range sols {
		if !gotSols[i].Equal(sols[i]) {
			t.Errorf("row %d = %v, want %v", i, gotSols[i], sols[i])
		}
	}
}

func TestBooleanJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBooleanJSON(&buf, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"boolean": true`) {
		t.Errorf("output = %s", buf.String())
	}
	_, _, boolean, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if boolean == nil || !*boolean {
		t.Error("boolean round trip failed")
	}
}

func TestReadJSONErrors(t *testing.T) {
	if _, _, _, err := ReadJSON(strings.NewReader(`{`)); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, _, _, err := ReadJSON(strings.NewReader(`{"head":{}}`)); err == nil {
		t.Error("document without results/boolean accepted")
	}
	if _, _, _, err := ReadJSON(strings.NewReader(
		`{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"weird","value":"v"}}]}}`)); err == nil {
		t.Error("unknown term type accepted")
	}
}

func TestCSV(t *testing.T) {
	vars, sols := sampleSolutions()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, vars, sols); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d, want 4 (header + 3 rows)", len(lines))
	}
	if lines[0] != "x,n,a" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "http://example.org/alice") || !strings.Contains(lines[1], "30") {
		t.Errorf("row 1 = %q", lines[1])
	}
	// unbound cell is empty
	if !strings.HasSuffix(lines[2], ",") {
		t.Errorf("row 2 should end with empty cell: %q", lines[2])
	}
	// quoting of embedded comma/quote
	if !strings.Contains(lines[3], `"with,comma and ""quote"""`) {
		t.Errorf("row 3 = %q", lines[3])
	}
}

func TestTSV(t *testing.T) {
	vars, sols := sampleSolutions()
	var buf bytes.Buffer
	if err := WriteTSV(&buf, vars, sols); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "?x\t?n\t?a" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "<http://example.org/alice>") {
		t.Errorf("TSV should use full term syntax: %q", lines[1])
	}
	if !strings.Contains(lines[2], `"Robert"@en`) {
		t.Errorf("lang literal = %q", lines[2])
	}
}

func TestSortSolutionsDeterministic(t *testing.T) {
	_, sols := sampleSolutions()
	a := SortSolutions(sols)
	b := SortSolutions(eval.Solutions{sols[2], sols[0], sols[1]})
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("sort not canonical at %d", i)
		}
	}
}
