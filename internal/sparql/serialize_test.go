package sparql

import (
	"strings"
	"testing"
)

// roundTripQueries exercises every query form and pattern shape.
var roundTripQueries = []string{
	`PREFIX f: <http://f/> SELECT ?x WHERE { ?x f:knows f:me . }`,
	`PREFIX f: <http://f/> SELECT DISTINCT ?x ?y WHERE { ?x f:a ?y . ?y f:b ?x . } ORDER BY DESC(?x) LIMIT 3 OFFSET 1`,
	`PREFIX f: <http://f/> SELECT REDUCED * WHERE { ?s ?p ?o . }`,
	`PREFIX f: <http://f/> ASK { f:a f:b f:c . }`,
	`PREFIX f: <http://f/> CONSTRUCT { ?x f:friendOf ?y . } WHERE { ?x f:knows ?y . }`,
	`PREFIX f: <http://f/> DESCRIBE f:alice ?x WHERE { ?x f:knows f:alice . }`,
	`PREFIX f: <http://f/>
SELECT ?x ?n WHERE {
  ?x f:name ?n .
  FILTER regex(?n, "Smith")
  OPTIONAL { ?x f:nick ?k . FILTER(?k != "x") }
}`,
	`PREFIX f: <http://f/>
SELECT ?x WHERE {
  { ?x f:a ?y . } UNION { ?x f:b ?y . ?y f:c ?z . }
}`,
	`PREFIX f: <http://f/>
SELECT ?x FROM <http://g1> FROM NAMED <http://g2> WHERE { ?x ?p ?o . FILTER(?o > 3 && bound(?x) || isIRI(?o)) }`,
	`PREFIX f: <http://f/> SELECT ?x WHERE { ?x f:v "lit"@en . ?x f:w "5"^^<http://www.w3.org/2001/XMLSchema#integer> . ?x f:y true . }`,
	`PREFIX f: <http://f/> SELECT ?g ?x WHERE { GRAPH ?g { ?x f:knows f:me . } }`,
	`PREFIX f: <http://f/> SELECT ?x FROM NAMED <http://g1> WHERE { GRAPH <http://g1> { ?x f:a ?y . } ?x f:b ?z . }`,
}

func TestQuerySerializationRoundTrip(t *testing.T) {
	for _, src := range roundTripQueries {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse original: %v\n%s", err, src)
		}
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("parse serialized: %v\noriginal: %s\nserialized:\n%s", err, src, text)
		}
		// structural equivalence via canonical re-serialization
		if got, want := q2.String(), text; got != want {
			t.Errorf("round trip unstable:\nfirst:\n%s\nsecond:\n%s", want, got)
		}
		if q1.Form != q2.Form || q1.Distinct != q2.Distinct || q1.Reduced != q2.Reduced ||
			q1.Limit != q2.Limit || q1.Offset != q2.Offset {
			t.Errorf("flags changed in round trip for %s", src)
		}
		if len(q1.SelectVars) != len(q2.SelectVars) {
			t.Errorf("projection changed: %v vs %v", q1.SelectVars, q2.SelectVars)
		}
		if len(q1.From) != len(q2.From) || len(q1.FromNamed) != len(q2.FromNamed) {
			t.Errorf("dataset clause changed for %s", src)
		}
	}
}

func TestQueryStringRendersModifiers(t *testing.T) {
	q, err := Parse(`SELECT DISTINCT ?s WHERE { ?s ?p ?o . } ORDER BY ?s LIMIT 10 OFFSET 5`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	for _, want := range []string{"SELECT DISTINCT ?s", "ORDER BY ASC(?s)", "LIMIT 10", "OFFSET 5"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestQueryStringBase(t *testing.T) {
	q, err := Parse(`BASE <http://b/> SELECT ?x WHERE { ?x <p> <http://abs> . }`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.String()
	// IRIs were already resolved against BASE at parse time
	if !strings.Contains(s, "<http://b/p>") {
		t.Errorf("resolved IRI missing:\n%s", s)
	}
	if _, err := Parse(s); err != nil {
		t.Errorf("serialized BASE query unparseable: %v\n%s", err, s)
	}
}
