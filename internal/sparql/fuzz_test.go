package sparql

import "testing"

// FuzzParseQuery checks the parser never panics, and that the canonical
// serialization is a fixed point: any query the parser accepts must
// re-render to text the parser accepts again, and the second rendering
// must be byte-identical to the first. This is the property the engine
// relies on when shipping sub-queries between nodes as plain text.
func FuzzParseQuery(f *testing.F) {
	for _, src := range roundTripQueries {
		f.Add(src)
	}
	f.Add(`SELECT * WHERE { ?s ?p ?o . }`)
	f.Add(`BASE <http://b/> ASK { <s> <p> "x\n\"y\""@en . }`)
	f.Add(`SELECT ?x WHERE { ?x <p> 3.14 . FILTER(!bound(?x) || ?x < -2) }`)
	f.Fuzz(func(t *testing.T, src string) {
		q1, err := Parse(src)
		if err != nil {
			return
		}
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\ninput: %q\ncanonical:\n%s", err, src, text)
		}
		if again := q2.String(); again != text {
			t.Fatalf("canonical form is not a fixed point\ninput: %q\nfirst:\n%s\nsecond:\n%s", src, text, again)
		}
	})
}
