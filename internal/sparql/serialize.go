package sparql

import (
	"fmt"
	"strings"

	"adhocshare/internal/rdf"
)

// String renders the query back to parseable SPARQL text with all IRIs in
// full (no PREFIX or BASE declarations — every IRI in the AST is already
// resolved, and re-emitting BASE would resolve them a second time on
// reparse). Parse(q.String()) yields an equivalent query; this is what lets
// sub-queries ship between nodes as plain text.
func (q *Query) String() string {
	var sb strings.Builder
	switch q.Form {
	case FormSelect:
		sb.WriteString("SELECT ")
		if q.Distinct {
			sb.WriteString("DISTINCT ")
		}
		if q.Reduced {
			sb.WriteString("REDUCED ")
		}
		if q.Star {
			sb.WriteString("*")
		} else {
			for i, v := range q.SelectVars {
				if i > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString("?" + v)
			}
		}
		sb.WriteByte('\n')
	case FormAsk:
		sb.WriteString("ASK\n")
	case FormConstruct:
		sb.WriteString("CONSTRUCT {\n")
		writePatterns(&sb, q.Template, "  ")
		sb.WriteString("}\n")
	case FormDescribe:
		sb.WriteString("DESCRIBE ")
		if q.Star {
			sb.WriteString("*")
		} else {
			for i, t := range q.DescribeTerms {
				if i > 0 {
					sb.WriteByte(' ')
				}
				sb.WriteString(t.String())
			}
		}
		sb.WriteByte('\n')
	}
	for _, g := range q.From {
		fmt.Fprintf(&sb, "FROM <%s>\n", g)
	}
	for _, g := range q.FromNamed {
		fmt.Fprintf(&sb, "FROM NAMED <%s>\n", g)
	}
	if q.Where != nil {
		sb.WriteString("WHERE ")
		writeGraphPattern(&sb, q.Where, "")
		sb.WriteByte('\n')
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString("ORDER BY")
		for _, c := range q.OrderBy {
			if c.Desc {
				fmt.Fprintf(&sb, " DESC(%s)", c.Expr)
			} else {
				fmt.Fprintf(&sb, " ASC(%s)", c.Expr)
			}
		}
		sb.WriteByte('\n')
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&sb, "LIMIT %d\n", q.Limit)
	}
	if q.Offset >= 0 {
		fmt.Fprintf(&sb, "OFFSET %d\n", q.Offset)
	}
	return strings.TrimRight(sb.String(), "\n")
}

func writePatterns(sb *strings.Builder, pats []rdf.Triple, indent string) {
	for _, t := range pats {
		fmt.Fprintf(sb, "%s%s %s %s .\n", indent, t.S, t.P, t.O)
	}
}

func writeGraphPattern(sb *strings.Builder, gp GraphPattern, indent string) {
	inner := indent + "  "
	switch p := gp.(type) {
	case *BGP:
		sb.WriteString("{\n")
		writePatterns(sb, p.Patterns, inner)
		sb.WriteString(indent + "}")
	case *Group:
		sb.WriteString("{\n")
		for _, e := range p.Elems {
			switch el := e.(type) {
			case *BGP:
				writePatterns(sb, el.Patterns, inner)
			case *Filter:
				fmt.Fprintf(sb, "%sFILTER (%s)\n", inner, el.Expr)
			case *Optional:
				sb.WriteString(inner + "OPTIONAL ")
				writeGraphPattern(sb, el.Pattern, inner)
				sb.WriteByte('\n')
			case *GraphPat:
				sb.WriteString(inner + "GRAPH " + el.Name.String() + " ")
				writeGraphPattern(sb, el.Pattern, inner)
				sb.WriteByte('\n')
			default:
				sb.WriteString(inner)
				writeGraphPattern(sb, e, inner)
				sb.WriteByte('\n')
			}
		}
		sb.WriteString(indent + "}")
	case *Union:
		sb.WriteString("{ ")
		writeGraphPattern(sb, p.Left, inner)
		sb.WriteString(" UNION ")
		writeGraphPattern(sb, p.Right, inner)
		sb.WriteString(" }")
	case *Optional:
		sb.WriteString("{ OPTIONAL ")
		writeGraphPattern(sb, p.Pattern, inner)
		sb.WriteString(" }")
	case *Filter:
		fmt.Fprintf(sb, "{ FILTER (%s) }", p.Expr)
	case *GraphPat:
		sb.WriteString("{ GRAPH " + p.Name.String() + " ")
		writeGraphPattern(sb, p.Pattern, inner)
		sb.WriteString(" }")
	default:
		sb.WriteString("{}")
	}
}
