// Package optimize implements the SPARQL-algebra rewriting rules the paper
// builds on (Sect. II and IV-G, after Schmidt, Meier & Lausen, "Foundations
// of SPARQL query optimization"):
//
//   - filter decomposition and filter pushing — a conjunctive FILTER is
//     split into conjuncts and each conjunct is pushed to the deepest
//     operator whose variables cover it (Fig. 9's transformation of
//     Filter(C1, LeftJoin(BGP(P1.P2), BGP(P3), true)) into
//     LeftJoin(BGP(Filter(C1,P1).P2), BGP(P3), true));
//   - join reordering — AND is associative and commutative (Sect. IV-B),
//     so the triple patterns of a BGP may be evaluated in any order; the
//     greedy reorder picks the most selective pattern first and then grows
//     the join through shared variables, using a pluggable cardinality
//     estimator (locally graph statistics, distributed the location-table
//     frequency counts of Table I).
package optimize

import (
	"sort"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
)

// CardinalityEstimator predicts how many solutions a triple pattern yields.
// Implementations: local graph statistics, the distributed location-table
// frequencies, or the static heuristic below.
type CardinalityEstimator interface {
	EstimatePattern(p rdf.Triple) int
}

// HeuristicEstimator ranks patterns purely by which positions are bound,
// the classic variable-counting heuristic: more bound positions → more
// selective. It needs no statistics and is the default.
type HeuristicEstimator struct{}

// EstimatePattern implements CardinalityEstimator.
func (HeuristicEstimator) EstimatePattern(p rdf.Triple) int {
	switch m := p.Mask(); m {
	case rdf.BoundS | rdf.BoundP | rdf.BoundO:
		return 1
	case rdf.BoundS | rdf.BoundP, rdf.BoundS | rdf.BoundO:
		return 10
	case rdf.BoundP | rdf.BoundO:
		return 25
	case rdf.BoundS:
		return 100
	case rdf.BoundO:
		return 250
	case rdf.BoundP:
		return 2500
	default:
		return 100000
	}
}

// GraphEstimator estimates from an actual graph's match counts — exact but
// only available where the data is (at a storage node).
type GraphEstimator struct{ G *rdf.Graph }

// EstimatePattern implements CardinalityEstimator.
func (e GraphEstimator) EstimatePattern(p rdf.Triple) int {
	return e.G.CountMatch(p)
}

// Options selects which rewrites run.
type Options struct {
	// PushFilters enables filter decomposition and pushing.
	PushFilters bool
	// ReorderBGP enables selectivity-driven pattern reordering.
	ReorderBGP bool
	// Estimator supplies cardinalities for reordering; nil selects
	// HeuristicEstimator.
	Estimator CardinalityEstimator
}

// DefaultOptions enables every rewrite with the heuristic estimator.
func DefaultOptions() Options {
	return Options{PushFilters: true, ReorderBGP: true}
}

// Optimize rewrites the algebra expression according to opts. The input
// tree is not modified.
func Optimize(op algebra.Op, opts Options) algebra.Op {
	if opts.Estimator == nil {
		opts.Estimator = HeuristicEstimator{}
	}
	out := clone(op)
	if opts.PushFilters {
		out = pushFilters(out)
	}
	if opts.ReorderBGP {
		out = reorderBGPs(out, opts.Estimator)
	}
	return out
}

// clone deep-copies an operator tree.
func clone(op algebra.Op) algebra.Op {
	switch o := op.(type) {
	case *algebra.BGP:
		return &algebra.BGP{Patterns: append([]rdf.Triple(nil), o.Patterns...)}
	case *algebra.Join:
		return &algebra.Join{Left: clone(o.Left), Right: clone(o.Right)}
	case *algebra.LeftJoin:
		return &algebra.LeftJoin{Left: clone(o.Left), Right: clone(o.Right), Expr: o.Expr}
	case *algebra.Union:
		return &algebra.Union{Left: clone(o.Left), Right: clone(o.Right)}
	case *algebra.Filter:
		return &algebra.Filter{Expr: o.Expr, Input: clone(o.Input)}
	case *algebra.Graph:
		return &algebra.Graph{Name: o.Name, Input: clone(o.Input)}
	case *algebra.Project:
		return &algebra.Project{Names: append([]string(nil), o.Names...), Input: clone(o.Input)}
	case *algebra.Distinct:
		return &algebra.Distinct{Input: clone(o.Input)}
	case *algebra.Reduced:
		return &algebra.Reduced{Input: clone(o.Input)}
	case *algebra.OrderBy:
		return &algebra.OrderBy{Conds: append([]sparql.OrderCond(nil), o.Conds...), Input: clone(o.Input)}
	case *algebra.Slice:
		return &algebra.Slice{Offset: o.Offset, Limit: o.Limit, Input: clone(o.Input)}
	default:
		return op
	}
}

// pushFilters decomposes conjunctive filters and pushes each conjunct as
// deep as its variable scope allows.
func pushFilters(op algebra.Op) algebra.Op {
	switch o := op.(type) {
	case *algebra.Filter:
		input := pushFilters(o.Input)
		conjuncts := splitConjuncts(o.Expr)
		var remaining []sparql.Expression
		for _, c := range conjuncts {
			pushed, ok := tryPush(input, c)
			if ok {
				input = pushed
			} else {
				remaining = append(remaining, c)
			}
		}
		return wrapFilters(input, remaining)
	case *algebra.Join:
		return &algebra.Join{Left: pushFilters(o.Left), Right: pushFilters(o.Right)}
	case *algebra.LeftJoin:
		return &algebra.LeftJoin{Left: pushFilters(o.Left), Right: pushFilters(o.Right), Expr: o.Expr}
	case *algebra.Union:
		return &algebra.Union{Left: pushFilters(o.Left), Right: pushFilters(o.Right)}
	case *algebra.Graph:
		return &algebra.Graph{Name: o.Name, Input: pushFilters(o.Input)}
	case *algebra.Project:
		return &algebra.Project{Names: o.Names, Input: pushFilters(o.Input)}
	case *algebra.Distinct:
		return &algebra.Distinct{Input: pushFilters(o.Input)}
	case *algebra.Reduced:
		return &algebra.Reduced{Input: pushFilters(o.Input)}
	case *algebra.OrderBy:
		return &algebra.OrderBy{Conds: o.Conds, Input: pushFilters(o.Input)}
	case *algebra.Slice:
		return &algebra.Slice{Offset: o.Offset, Limit: o.Limit, Input: pushFilters(o.Input)}
	default:
		return op
	}
}

// tryPush attempts to push one filter conjunct below op. It reports false
// when the filter must stay at this level.
func tryPush(op algebra.Op, cond sparql.Expression) (algebra.Op, bool) {
	need := cond.Vars()
	switch o := op.(type) {
	case *algebra.Join:
		// Push into whichever side covers the variables; both if both do
		// (legal since Join is intersection-like on shared vars, and the
		// filter is idempotent).
		lOK := covers(o.Left.Vars(), need)
		rOK := covers(o.Right.Vars(), need)
		if lOK && rOK {
			l, _ := pushOrWrap(o.Left, cond)
			r, _ := pushOrWrap(o.Right, cond)
			return &algebra.Join{Left: l, Right: r}, true
		}
		if lOK {
			l, _ := pushOrWrap(o.Left, cond)
			return &algebra.Join{Left: l, Right: o.Right}, true
		}
		if rOK {
			r, _ := pushOrWrap(o.Right, cond)
			return &algebra.Join{Left: o.Left, Right: r}, true
		}
		return op, false
	case *algebra.LeftJoin:
		// Only the mandatory (left) side preserves semantics: pushing into
		// the optional side would turn "no match" into "match rejected".
		if covers(o.Left.Vars(), need) {
			l, _ := pushOrWrap(o.Left, cond)
			return &algebra.LeftJoin{Left: l, Right: o.Right, Expr: o.Expr}, true
		}
		return op, false
	case *algebra.Union:
		// Filter distributes over Union when each branch covers the
		// variables. A branch not covering them would change semantics
		// (the filter could still pass via unbound-variable errors), so
		// require both.
		if covers(o.Left.Vars(), need) && covers(o.Right.Vars(), need) {
			l, _ := pushOrWrap(o.Left, cond)
			r, _ := pushOrWrap(o.Right, cond)
			return &algebra.Union{Left: l, Right: r}, true
		}
		return op, false
	case *algebra.Filter:
		inner, ok := tryPush(o.Input, cond)
		if ok {
			return &algebra.Filter{Expr: o.Expr, Input: inner}, true
		}
		return op, false
	default:
		return op, false
	}
}

// pushOrWrap pushes the condition into op if possible, else wraps op in a
// Filter. The boolean result is always true.
func pushOrWrap(op algebra.Op, cond sparql.Expression) (algebra.Op, bool) {
	if pushed, ok := tryPush(op, cond); ok {
		return pushed, true
	}
	return &algebra.Filter{Expr: cond, Input: op}, true
}

func wrapFilters(op algebra.Op, conds []sparql.Expression) algebra.Op {
	if len(conds) == 0 {
		return op
	}
	expr := conds[0]
	for _, c := range conds[1:] {
		expr = &sparql.ExprAnd{Left: expr, Right: c}
	}
	return &algebra.Filter{Expr: expr, Input: op}
}

// splitConjuncts flattens nested ExprAnd trees into a conjunct list.
func splitConjuncts(e sparql.Expression) []sparql.Expression {
	if and, ok := e.(*sparql.ExprAnd); ok {
		return append(splitConjuncts(and.Left), splitConjuncts(and.Right)...)
	}
	return []sparql.Expression{e}
}

func covers(have, need []string) bool {
	if len(need) == 0 {
		return true
	}
	set := make(map[string]bool, len(have))
	for _, v := range have {
		set[v] = true
	}
	for _, v := range need {
		if !set[v] {
			return false
		}
	}
	return true
}

// reorderBGPs applies ReorderPatterns to every BGP in the tree.
func reorderBGPs(op algebra.Op, est CardinalityEstimator) algebra.Op {
	switch o := op.(type) {
	case *algebra.BGP:
		return &algebra.BGP{Patterns: ReorderPatterns(o.Patterns, est)}
	case *algebra.Join:
		return &algebra.Join{Left: reorderBGPs(o.Left, est), Right: reorderBGPs(o.Right, est)}
	case *algebra.LeftJoin:
		return &algebra.LeftJoin{Left: reorderBGPs(o.Left, est), Right: reorderBGPs(o.Right, est), Expr: o.Expr}
	case *algebra.Union:
		return &algebra.Union{Left: reorderBGPs(o.Left, est), Right: reorderBGPs(o.Right, est)}
	case *algebra.Graph:
		return &algebra.Graph{Name: o.Name, Input: reorderBGPs(o.Input, est)}
	case *algebra.Filter:
		return &algebra.Filter{Expr: o.Expr, Input: reorderBGPs(o.Input, est)}
	case *algebra.Project:
		return &algebra.Project{Names: o.Names, Input: reorderBGPs(o.Input, est)}
	case *algebra.Distinct:
		return &algebra.Distinct{Input: reorderBGPs(o.Input, est)}
	case *algebra.Reduced:
		return &algebra.Reduced{Input: reorderBGPs(o.Input, est)}
	case *algebra.OrderBy:
		return &algebra.OrderBy{Conds: o.Conds, Input: reorderBGPs(o.Input, est)}
	case *algebra.Slice:
		return &algebra.Slice{Offset: o.Offset, Limit: o.Limit, Input: reorderBGPs(o.Input, est)}
	default:
		return op
	}
}

// ReorderPatterns orders the triple patterns of a BGP greedily: start with
// the smallest estimated cardinality, then repeatedly append the cheapest
// pattern that shares a variable with those already placed (keeping the
// join connected and avoiding Cartesian products); when none is connected,
// fall back to the globally cheapest remaining pattern.
//
// The full search space is n! orders (as the paper notes for execution-node
// sequences in Sect. IV-D); the greedy heuristic is O(n²).
func ReorderPatterns(patterns []rdf.Triple, est CardinalityEstimator) []rdf.Triple {
	if len(patterns) <= 1 {
		return append([]rdf.Triple(nil), patterns...)
	}
	if est == nil {
		est = HeuristicEstimator{}
	}
	type cand struct {
		pat  rdf.Triple
		cost int
		idx  int
	}
	remaining := make([]cand, len(patterns))
	for i, p := range patterns {
		remaining[i] = cand{pat: p, cost: est.EstimatePattern(p), idx: i}
	}
	// stable start: cheapest first, ties by original position
	sort.SliceStable(remaining, func(i, j int) bool {
		if remaining[i].cost != remaining[j].cost {
			return remaining[i].cost < remaining[j].cost
		}
		return remaining[i].idx < remaining[j].idx
	})
	out := []rdf.Triple{remaining[0].pat}
	bound := map[string]bool{}
	for _, v := range remaining[0].pat.Vars() {
		bound[v] = true
	}
	remaining = remaining[1:]
	for len(remaining) > 0 {
		best := -1
		bestConnected := false
		for i, c := range remaining {
			connected := sharesVar(c.pat, bound)
			switch {
			case best == -1,
				connected && !bestConnected,
				connected == bestConnected && c.cost < remaining[best].cost:
				best = i
				bestConnected = connected
			}
		}
		chosen := remaining[best]
		out = append(out, chosen.pat)
		for _, v := range chosen.pat.Vars() {
			bound[v] = true
		}
		remaining = append(remaining[:best], remaining[best+1:]...)
	}
	return out
}

func sharesVar(p rdf.Triple, bound map[string]bool) bool {
	for _, v := range p.Vars() {
		if bound[v] {
			return true
		}
	}
	return false
}

// EstimateCost returns a rough total-work estimate for an operator tree —
// the sum of pattern estimates — used by tests and the explain tool to
// compare plans.
func EstimateCost(op algebra.Op, est CardinalityEstimator) int {
	if est == nil {
		est = HeuristicEstimator{}
	}
	total := 0
	algebra.Walk(op, func(o algebra.Op) {
		if b, ok := o.(*algebra.BGP); ok {
			for _, p := range b.Patterns {
				total += est.EstimatePattern(p)
			}
		}
	})
	return total
}
