package optimize

import (
	"strings"
	"testing"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
	"adhocshare/internal/sparql/eval"
)

func mustOp(t *testing.T, src string) algebra.Op {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func v(s string) rdf.Term   { return rdf.NewVar(s) }
func iri(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }

func TestHeuristicEstimatorOrdering(t *testing.T) {
	h := HeuristicEstimator{}
	spo := rdf.Triple{S: iri("s"), P: iri("p"), O: iri("o")}
	sp := rdf.Triple{S: iri("s"), P: iri("p"), O: v("o")}
	po := rdf.Triple{S: v("s"), P: iri("p"), O: iri("o")}
	s := rdf.Triple{S: iri("s"), P: v("p"), O: v("o")}
	p := rdf.Triple{S: v("s"), P: iri("p"), O: v("o")}
	all := rdf.Triple{S: v("s"), P: v("p"), O: v("o")}
	if !(h.EstimatePattern(spo) < h.EstimatePattern(sp) &&
		h.EstimatePattern(sp) < h.EstimatePattern(po) &&
		h.EstimatePattern(po) < h.EstimatePattern(s) &&
		h.EstimatePattern(s) < h.EstimatePattern(p) &&
		h.EstimatePattern(p) < h.EstimatePattern(all)) {
		t.Error("heuristic estimator does not respect bound-mask selectivity order")
	}
}

func TestGraphEstimatorExact(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("b")})
	g.Add(rdf.Triple{S: iri("a"), P: iri("p"), O: iri("c")})
	e := GraphEstimator{G: g}
	if got := e.EstimatePattern(rdf.Triple{S: iri("a"), P: iri("p"), O: v("o")}); got != 2 {
		t.Errorf("estimate = %d, want 2", got)
	}
}

func TestFilterPushIntoJoinSide(t *testing.T) {
	// The filter references only ?n from the left branch of the union-free
	// join, so it must move below the Join.
	op := mustOp(t, `PREFIX f: <http://f/>
SELECT ?x WHERE {
  { ?x f:name ?n . }
  { ?y f:knows ?x . }
  FILTER regex(?n, "Smith")
}`)
	// ensure precondition: Filter above a Join
	if _, ok := op.(*algebra.Project).Input.(*algebra.Filter); !ok {
		t.Fatalf("precondition failed: %s", op)
	}
	out := Optimize(op, Options{PushFilters: true})
	j, ok := out.(*algebra.Project).Input.(*algebra.Join)
	if !ok {
		t.Fatalf("filter not pushed below join: %s", out)
	}
	if _, ok := j.Left.(*algebra.Filter); !ok {
		t.Errorf("filter should sit on the left branch: %s", out)
	}
	if _, ok := j.Right.(*algebra.Filter); ok {
		t.Errorf("filter must not reach the right branch: %s", out)
	}
}

func TestFilterNotPushedIntoOptionalSide(t *testing.T) {
	op := mustOp(t, `PREFIX f: <http://f/>
SELECT ?x WHERE {
  ?x f:name ?n .
  OPTIONAL { ?x f:nick ?k . }
  FILTER regex(?k, "Sh")
}`)
	out := Optimize(op, Options{PushFilters: true})
	// ?k is only bound by the optional side; pushing would change
	// semantics, so the filter stays above the LeftJoin.
	f, ok := out.(*algebra.Project).Input.(*algebra.Filter)
	if !ok {
		t.Fatalf("filter must remain above LeftJoin: %s", out)
	}
	if _, ok := f.Input.(*algebra.LeftJoin); !ok {
		t.Errorf("expected LeftJoin under the filter: %s", out)
	}
}

func TestFilterPushedToLeftJoinMandatorySide(t *testing.T) {
	op := mustOp(t, `PREFIX f: <http://f/>
SELECT ?x WHERE {
  ?x f:name ?n .
  OPTIONAL { ?x f:nick ?k . }
  FILTER regex(?n, "Smith")
}`)
	out := Optimize(op, Options{PushFilters: true})
	lj, ok := out.(*algebra.Project).Input.(*algebra.LeftJoin)
	if !ok {
		t.Fatalf("filter should be pushed below the LeftJoin: %s", out)
	}
	if _, ok := lj.Left.(*algebra.Filter); !ok {
		t.Errorf("filter should wrap the mandatory side: %s", out)
	}
}

func TestFilterDistributesOverUnion(t *testing.T) {
	op := mustOp(t, `PREFIX f: <http://f/>
SELECT ?x WHERE {
  { { ?x f:a ?n . } UNION { ?x f:b ?n . } }
  FILTER(?n > 3)
}`)
	out := Optimize(op, Options{PushFilters: true})
	u, ok := out.(*algebra.Project).Input.(*algebra.Union)
	if !ok {
		t.Fatalf("filter should distribute over union: %s", out)
	}
	if _, ok := u.Left.(*algebra.Filter); !ok {
		t.Errorf("left branch missing filter: %s", out)
	}
	if _, ok := u.Right.(*algebra.Filter); !ok {
		t.Errorf("right branch missing filter: %s", out)
	}
}

func TestFilterConjunctSplit(t *testing.T) {
	op := mustOp(t, `PREFIX f: <http://f/>
SELECT ?x WHERE {
  { ?x f:name ?n . }
  { ?y f:age ?a . }
  FILTER(regex(?n, "S") && ?a > 10)
}`)
	out := Optimize(op, Options{PushFilters: true})
	j, ok := out.(*algebra.Project).Input.(*algebra.Join)
	if !ok {
		t.Fatalf("conjuncts should both be pushed: %s", out)
	}
	if _, ok := j.Left.(*algebra.Filter); !ok {
		t.Errorf("name conjunct not on left: %s", out)
	}
	if _, ok := j.Right.(*algebra.Filter); !ok {
		t.Errorf("age conjunct not on right: %s", out)
	}
}

func TestOptimizePreservesSemantics(t *testing.T) {
	g := rdf.NewGraph()
	f := func(s string) rdf.Term { return rdf.NewIRI("http://f/" + s) }
	g.AddAll([]rdf.Triple{
		{S: iri("a"), P: f("name"), O: rdf.NewLiteral("Smith A")},
		{S: iri("b"), P: f("name"), O: rdf.NewLiteral("Jones B")},
		{S: iri("a"), P: f("knows"), O: iri("b")},
		{S: iri("b"), P: f("knows"), O: iri("a")},
		{S: iri("a"), P: f("age"), O: rdf.NewInteger(40)},
		{S: iri("b"), P: f("age"), O: rdf.NewInteger(12)},
		{S: iri("b"), P: f("nick"), O: rdf.NewLiteral("Shrek")},
	})
	queries := []string{
		`PREFIX f: <http://f/> SELECT ?x ?y WHERE { ?x f:knows ?y . ?x f:name ?n . FILTER regex(?n, "Smith") }`,
		`PREFIX f: <http://f/> SELECT ?x WHERE { ?x f:name ?n . OPTIONAL { ?x f:nick ?k . } FILTER(!bound(?k)) }`,
		`PREFIX f: <http://f/> SELECT ?x WHERE { { ?x f:age ?a . } UNION { ?x f:name ?a . } }`,
		`PREFIX f: <http://f/> SELECT ?x ?a WHERE { ?x f:age ?a . ?x f:knows ?y . FILTER(?a > 18) }`,
		`PREFIX f: <http://f/> SELECT ?x WHERE { ?x f:knows ?y . ?y f:nick ?k . OPTIONAL { ?y f:age ?g . FILTER(?g > 100) } }`,
	}
	for _, src := range queries {
		op := mustOp(t, src)
		want, err := eval.Eval(op, g)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		opt := Optimize(op, Options{PushFilters: true, ReorderBGP: true, Estimator: GraphEstimator{G: g}})
		got, err := eval.Eval(opt, g)
		if err != nil {
			t.Fatalf("%s (optimized): %v", src, err)
		}
		if !sameMultiset(want, got) {
			t.Errorf("%s:\noptimization changed results\nplain: %v\nopt:   %v\nplan:  %s",
				src, want, got, opt)
		}
	}
}

func sameMultiset(a, b eval.Solutions) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, m := range a {
		count[m.Key()]++
	}
	for _, m := range b {
		count[m.Key()]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

func TestReorderPatternsSelectivityFirst(t *testing.T) {
	// most selective (spo-ish) should come first; connectivity respected
	pats := []rdf.Triple{
		{S: v("x"), P: iri("p1"), O: v("y")},   // p-only: cheap rank 2500
		{S: v("y"), P: iri("p2"), O: iri("o")}, // po: rank 25
		{S: v("z"), P: iri("p3"), O: v("w")},   // disconnected from first two
	}
	out := ReorderPatterns(pats, HeuristicEstimator{})
	if out[0] != pats[1] {
		t.Errorf("most selective pattern should lead: %v", out)
	}
	if out[1] != pats[0] {
		t.Errorf("connected pattern should come before disconnected: %v", out)
	}
	if out[2] != pats[2] {
		t.Errorf("disconnected pattern should trail: %v", out)
	}
}

func TestReorderPatternsStatsDriven(t *testing.T) {
	g := rdf.NewGraph()
	// p1 has 100 matches, p2 has 1
	for i := 0; i < 100; i++ {
		g.Add(rdf.Triple{S: iri("s"), P: iri("p1"), O: rdf.NewInteger(int64(i))})
	}
	g.Add(rdf.Triple{S: iri("s"), P: iri("p2"), O: iri("only")})
	pats := []rdf.Triple{
		{S: v("x"), P: iri("p1"), O: v("a")},
		{S: v("x"), P: iri("p2"), O: v("b")},
	}
	out := ReorderPatterns(pats, GraphEstimator{G: g})
	if out[0].P != iri("p2") {
		t.Errorf("stats-driven reorder should lead with the rare predicate: %v", out)
	}
}

func TestReorderPreservesMultiset(t *testing.T) {
	pats := []rdf.Triple{
		{S: v("a"), P: iri("p"), O: v("b")},
		{S: v("b"), P: iri("q"), O: v("c")},
		{S: v("c"), P: iri("r"), O: iri("x")},
	}
	out := ReorderPatterns(pats, nil)
	if len(out) != 3 {
		t.Fatalf("lost patterns: %v", out)
	}
	seen := map[string]bool{}
	for _, p := range out {
		seen[p.String()] = true
	}
	for _, p := range pats {
		if !seen[p.String()] {
			t.Errorf("pattern %v missing after reorder", p)
		}
	}
}

func TestOptimizeDoesNotMutateInput(t *testing.T) {
	op := mustOp(t, `PREFIX f: <http://f/>
SELECT ?x WHERE { ?x f:a ?y . ?y f:b f:c . FILTER(?y != f:c) }`)
	before := op.String()
	Optimize(op, DefaultOptions())
	if op.String() != before {
		t.Error("Optimize mutated its input tree")
	}
}

func TestEstimateCost(t *testing.T) {
	op := mustOp(t, `PREFIX f: <http://f/> SELECT ?x WHERE { ?x f:p ?y . ?y ?q ?z . }`)
	c := EstimateCost(op, nil)
	if c <= 0 {
		t.Error("cost must be positive")
	}
	cheap := mustOp(t, `PREFIX f: <http://f/> SELECT ?x WHERE { ?x f:p f:o . }`)
	if EstimateCost(cheap, nil) >= c {
		t.Error("more selective plan should cost less")
	}
}

func TestOptimizeExplainString(t *testing.T) {
	op := mustOp(t, `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?x ?y ?z WHERE {
  ?x foaf:name ?name ;
     ns:knowsNothingAbout ?y .
  FILTER regex(?name, "Smith")
  OPTIONAL { ?y foaf:knows ?z . }
}`)
	out := Optimize(op, Options{PushFilters: true})
	s := out.String()
	// Fig. 9's optimized form: the regex filter sits inside the LeftJoin's
	// mandatory side rather than above the whole expression.
	idxLJ := strings.Index(s, "LeftJoin(")
	idxF := strings.Index(s, "Filter(")
	if idxLJ == -1 || idxF == -1 || idxF < idxLJ {
		t.Errorf("expected filter inside LeftJoin: %s", s)
	}
}
