package eval

import (
	"testing"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
)

const foaf = "http://xmlns.com/foaf/0.1/"
const exns = "http://example.org/ns#"

func p(s string) rdf.Term  { return rdf.NewIRI(foaf + s) }
func ex(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }

// fig7Graph builds a small social graph exercising the paper's examples.
func fig7Graph() *rdf.Graph {
	g := rdf.NewGraph()
	g.AddAll([]rdf.Triple{
		{S: ex("alice"), P: p("name"), O: rdf.NewLiteral("Alice Smith")},
		{S: ex("alice"), P: p("knows"), O: ex("bob")},
		{S: ex("alice"), P: p("knows"), O: ex("carol")},
		{S: ex("bob"), P: p("name"), O: rdf.NewLiteral("Bob Smith")},
		{S: ex("bob"), P: p("knows"), O: ex("carol")},
		{S: ex("bob"), P: p("nick"), O: rdf.NewLiteral("Shrek")},
		{S: ex("carol"), P: p("name"), O: rdf.NewLiteral("Carol Jones")},
		{S: ex("carol"), P: p("age"), O: rdf.NewInteger(25)},
		{S: ex("alice"), P: rdf.NewIRI(exns + "knowsNothingAbout"), O: ex("dave")},
		{S: ex("dave"), P: p("knows"), O: ex("carol")},
	})
	return g
}

func run(t *testing.T, g *rdf.Graph, src string) Solutions {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Eval(op, g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestEvalPrimitive(t *testing.T) {
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`)
	if len(s) != 3 {
		t.Fatalf("solutions = %d, want 3 (alice, bob, dave)", len(s))
	}
}

func TestEvalConjunction(t *testing.T) {
	// Fig. 6-style: who knows ?z and knowsNothingAbout ?y
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?x ?y ?z WHERE { ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y . }`)
	if len(s) != 2 { // alice knows bob, carol; alice kNA dave
		t.Fatalf("solutions = %d, want 2", len(s))
	}
	for _, m := range s {
		if m["x"] != ex("alice") || m["y"] != ex("dave") {
			t.Errorf("unexpected row %v", m)
		}
	}
}

func TestEvalSharedVariableJoin(t *testing.T) {
	// Fig. 4 core: ?x knows ?z, ?x kNA ?y, ?y knows ?z
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?x ?y ?z WHERE {
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
  ?y foaf:knows ?z .
}`)
	if len(s) != 1 {
		t.Fatalf("solutions = %d, want 1", len(s))
	}
	m := s[0]
	if m["x"] != ex("alice") || m["y"] != ex("dave") || m["z"] != ex("carol") {
		t.Errorf("row = %v", m)
	}
}

func TestEvalOptionalFig7(t *testing.T) {
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y WHERE {
  { ?x foaf:name ?n . ?x foaf:knows ?y . FILTER regex(?n, "Smith") }
  OPTIONAL { ?y foaf:nick "Shrek" . }
}`)
	// alice knows bob & carol; bob knows carol → 3 rows, all kept by OPT
	if len(s) != 3 {
		t.Fatalf("solutions = %d, want 3", len(s))
	}
	for _, m := range s {
		if !m.Bound("y") {
			t.Errorf("y unbound in %v", m)
		}
	}
}

func TestEvalOptionalKeepsUnmatched(t *testing.T) {
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?nick WHERE {
  ?x foaf:name ?n .
  OPTIONAL { ?x foaf:nick ?nick . }
}`)
	if len(s) != 3 {
		t.Fatalf("solutions = %d, want 3", len(s))
	}
	withNick := 0
	for _, m := range s {
		if m.Bound("nick") {
			withNick++
			if m["x"] != ex("bob") {
				t.Errorf("nick bound for %v", m["x"])
			}
		}
	}
	if withNick != 1 {
		t.Errorf("withNick = %d, want 1", withNick)
	}
}

func TestEvalUnionFig8(t *testing.T) {
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y ?z WHERE {
  { ?x foaf:name "Alice Smith" . ?x foaf:knows ?y . }
  UNION
  { ?x foaf:nick "Shrek" . ?x foaf:knows ?z . }
}`)
	if len(s) != 3 { // alice→bob, alice→carol via left; bob→carol via right
		t.Fatalf("solutions = %d, want 3", len(s))
	}
}

func TestEvalFilterRegex(t *testing.T) {
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:name ?n . FILTER regex(?n, "Smith") }`)
	if len(s) != 2 {
		t.Fatalf("solutions = %d, want 2", len(s))
	}
}

func TestEvalFilterNumericComparison(t *testing.T) {
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:age ?a . FILTER(?a >= 18 && ?a < 65) }`)
	if len(s) != 1 || s[0]["x"] != ex("carol") {
		t.Fatalf("solutions = %v", s)
	}
	s = run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:age ?a . FILTER(?a > 30) }`)
	if len(s) != 0 {
		t.Fatalf("solutions = %v, want none", s)
	}
}

func TestEvalFilterBoundAndNegation(t *testing.T) {
	// people with a name but no nick (negation by failure via OPTIONAL+!bound)
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE {
  ?x foaf:name ?n .
  OPTIONAL { ?x foaf:nick ?k . }
  FILTER(!bound(?k))
}`)
	if len(s) != 2 {
		t.Fatalf("solutions = %d, want 2 (alice, carol)", len(s))
	}
}

func TestEvalOrderByDesc(t *testing.T) {
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?n WHERE { ?x foaf:name ?n . } ORDER BY DESC(?n)`)
	if len(s) != 3 {
		t.Fatalf("solutions = %d", len(s))
	}
	if s[0]["n"].Value != "Carol Jones" || s[2]["n"].Value != "Alice Smith" {
		t.Errorf("order = %v %v %v", s[0]["n"], s[1]["n"], s[2]["n"])
	}
}

func TestEvalOrderByMultiKey(t *testing.T) {
	g := rdf.NewGraph()
	g.AddAll([]rdf.Triple{
		{S: ex("a"), P: p("grp"), O: rdf.NewInteger(1)},
		{S: ex("b"), P: p("grp"), O: rdf.NewInteger(1)},
		{S: ex("c"), P: p("grp"), O: rdf.NewInteger(0)},
	})
	s := run(t, g, `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?g WHERE { ?x foaf:grp ?g . } ORDER BY ?g DESC(?x)`)
	if s[0]["x"] != ex("c") || s[1]["x"] != ex("b") || s[2]["x"] != ex("a") {
		t.Errorf("multi-key order wrong: %v", s)
	}
}

func TestEvalLimitOffset(t *testing.T) {
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?n WHERE { ?x foaf:name ?n . } ORDER BY ?n LIMIT 1 OFFSET 1`)
	if len(s) != 1 || s[0]["n"].Value != "Bob Smith" {
		t.Fatalf("solutions = %v", s)
	}
}

func TestEvalDistinct(t *testing.T) {
	s := run(t, fig7Graph(), `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT DISTINCT ?y WHERE { ?x foaf:knows ?y . }`)
	if len(s) != 2 { // bob, carol
		t.Fatalf("distinct objects = %d, want 2", len(s))
	}
}

func TestEvalRepeatedVariableInPattern(t *testing.T) {
	g := rdf.NewGraph()
	g.Add(rdf.Triple{S: ex("n"), P: p("knows"), O: ex("n")})
	g.Add(rdf.Triple{S: ex("m"), P: p("knows"), O: ex("q")})
	s := run(t, g, `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows ?x . }`)
	if len(s) != 1 || s[0]["x"] != ex("n") {
		t.Fatalf("self-loop query = %v", s)
	}
}

func TestEvalBGPWithSeeds(t *testing.T) {
	g := fig7Graph()
	seeds := Solutions{bnd2("x", ex("alice")), bnd2("x", ex("carol"))}
	s := EvalBGP(g, []rdf.Triple{{S: rdf.NewVar("x"), P: p("knows"), O: rdf.NewVar("z")}}, seeds)
	if len(s) != 2 { // alice knows bob, carol; carol knows nobody
		t.Fatalf("seeded eval = %d rows, want 2", len(s))
	}
	for _, m := range s {
		if m["x"] != ex("alice") {
			t.Errorf("row %v", m)
		}
	}
}

func bnd2(k string, v rdf.Term) Binding {
	b := NewBinding()
	b[k] = v
	return b
}

func TestEvalAskStyleNonEmpty(t *testing.T) {
	q, err := sparql.Parse(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
ASK { <http://example.org/alice> foaf:knows <http://example.org/bob> . }`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Eval(op, fig7Graph())
	if err != nil {
		t.Fatal(err)
	}
	if len(s) == 0 {
		t.Error("ASK should find the triple")
	}
}

func TestConstruct(t *testing.T) {
	q, err := sparql.Parse(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
CONSTRUCT { ?y ns:knownBy ?x . } WHERE { ?x foaf:knows ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Eval(op, fig7Graph())
	if err != nil {
		t.Fatal(err)
	}
	ts := Construct(q.Template, s)
	if len(ts) != 4 {
		t.Fatalf("constructed %d triples, want 4", len(ts))
	}
	for _, tr := range ts {
		if tr.P != rdf.NewIRI(exns+"knownBy") {
			t.Errorf("constructed %v", tr)
		}
	}
}

func TestEvalEmptyGraph(t *testing.T) {
	s := run(t, rdf.NewGraph(), `SELECT ?x WHERE { ?x ?p ?o . }`)
	if len(s) != 0 {
		t.Errorf("empty graph gave %d rows", len(s))
	}
}

func TestLeftJoinFilterCondition(t *testing.T) {
	// LeftJoin with embedded filter: rows failing the condition keep Ω1.
	a := Solutions{bnd2("x", ex("a")).Merge(bnd2("v", rdf.NewInteger(5)))}
	b := Solutions{bnd2("x", ex("a")).Merge(bnd2("w", rdf.NewInteger(1)))}
	cond := &sparql.ExprCmp{
		Op:    sparql.CmpGt,
		Left:  &sparql.ExprVar{Name: "v"},
		Right: &sparql.ExprVar{Name: "w"},
	}
	out := LeftJoinFilter(a, b, cond)
	if len(out) != 1 || !out[0].Bound("w") {
		t.Fatalf("leftjoin filter out = %v", out)
	}
	condFail := &sparql.ExprCmp{
		Op:    sparql.CmpLt,
		Left:  &sparql.ExprVar{Name: "v"},
		Right: &sparql.ExprVar{Name: "w"},
	}
	out = LeftJoinFilter(a, b, condFail)
	if len(out) != 1 || out[0].Bound("w") {
		t.Fatalf("failing condition should keep left row only: %v", out)
	}
}

func TestEvalGraphConstant(t *testing.T) {
	ds := &Dataset{
		Default: rdf.NewGraph(),
		Named:   map[string]*rdf.Graph{"http://g1": rdf.NewGraph(), "http://g2": rdf.NewGraph()},
	}
	ds.Default.Add(rdf.Triple{S: ex("a"), P: p("knows"), O: ex("b")})
	ds.Named["http://g1"].Add(rdf.Triple{S: ex("c"), P: p("knows"), O: ex("d")})
	ds.Named["http://g2"].Add(rdf.Triple{S: ex("e"), P: p("knows"), O: ex("f")})

	q, err := sparql.Parse(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { GRAPH <http://g1> { ?x foaf:knows ?y . } }`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := EvalDataset(op, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0]["x"] != ex("c") {
		t.Errorf("GRAPH <g1> = %v, want c", sols)
	}
	// absent graph: empty
	q2, _ := sparql.Parse(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { GRAPH <http://nope> { ?x foaf:knows ?y . } }`)
	op2, _ := algebra.Translate(q2)
	sols, err = EvalDataset(op2, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 0 {
		t.Errorf("absent graph returned %v", sols)
	}
}

func TestEvalGraphVariable(t *testing.T) {
	ds := &Dataset{
		Default: rdf.NewGraph(),
		Named:   map[string]*rdf.Graph{"http://g1": rdf.NewGraph(), "http://g2": rdf.NewGraph()},
	}
	ds.Named["http://g1"].Add(rdf.Triple{S: ex("c"), P: p("knows"), O: ex("d")})
	ds.Named["http://g2"].Add(rdf.Triple{S: ex("e"), P: p("knows"), O: ex("f")})
	ds.Named["http://g2"].Add(rdf.Triple{S: ex("g"), P: p("knows"), O: ex("h")})

	q, err := sparql.Parse(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?g ?x WHERE { GRAPH ?g { ?x foaf:knows ?y . } }`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := EvalDataset(op, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Fatalf("GRAPH ?g = %d rows, want 3", len(sols))
	}
	byGraph := map[string]int{}
	for _, b := range sols {
		byGraph[b["g"].Value]++
	}
	if byGraph["http://g1"] != 1 || byGraph["http://g2"] != 2 {
		t.Errorf("per-graph counts = %v", byGraph)
	}
}

func TestEvalGraphJoinWithDefault(t *testing.T) {
	// join a default-graph pattern with a GRAPH-scoped pattern
	ds := &Dataset{Default: rdf.NewGraph(), Named: map[string]*rdf.Graph{"http://meta": rdf.NewGraph()}}
	ds.Default.Add(rdf.Triple{S: ex("alice"), P: p("knows"), O: ex("bob")})
	ds.Default.Add(rdf.Triple{S: ex("carol"), P: p("knows"), O: ex("bob")})
	ds.Named["http://meta"].Add(rdf.Triple{S: ex("alice"), P: p("verified"), O: rdf.NewBoolean(true)})

	q, err := sparql.Parse(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE {
  ?x foaf:knows ?y .
  GRAPH <http://meta> { ?x foaf:verified true . }
}`)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := EvalDataset(op, ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 1 || sols[0]["x"] != ex("alice") {
		t.Errorf("cross-graph join = %v", sols)
	}
}
