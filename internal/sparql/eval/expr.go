package eval

import (
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql"
)

// errExpr marks SPARQL expression evaluation errors. Per the SPARQL
// semantics an error inside a FILTER makes the constraint fail for that
// solution rather than failing the whole query.
var errExpr = errors.New("expression error")

// exprErrf builds one expression error. Errors are the cold failure path
// of FILTER evaluation (the constraint just fails for that solution), so
// the formatting cost here is off the per-message budget by design.
//
//adhoclint:hotexempt error construction is the cold path of FILTER semantics
func exprErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errExpr, fmt.Sprintf(format, args...))
}

// Value is the result of evaluating an expression: either an RDF term or a
// derived boolean/numeric value.
type Value struct {
	Term rdf.Term
}

// EvalExpr evaluates an expression against one solution mapping and
// returns the resulting value.
func EvalExpr(e sparql.Expression, b Binding) (Value, error) {
	switch x := e.(type) {
	case *sparql.ExprVar:
		t, ok := b[x.Name]
		if !ok {
			return Value{}, exprErrf("unbound variable ?%s", x.Name)
		}
		return Value{Term: t}, nil
	case *sparql.ExprTerm:
		return Value{Term: x.Term}, nil
	case *sparql.ExprOr:
		// SPARQL logical-or with error tolerance: true || error = true.
		l, lerr := EBVExpr(x.Left, b)
		r, rerr := EBVExpr(x.Right, b)
		switch {
		case lerr == nil && rerr == nil:
			return boolValue(l || r), nil
		case lerr == nil && l:
			return boolValue(true), nil
		case rerr == nil && r:
			return boolValue(true), nil
		default:
			return Value{}, exprErrf("|| operand error")
		}
	case *sparql.ExprAnd:
		// false && error = false.
		l, lerr := EBVExpr(x.Left, b)
		r, rerr := EBVExpr(x.Right, b)
		switch {
		case lerr == nil && rerr == nil:
			return boolValue(l && r), nil
		case lerr == nil && !l:
			return boolValue(false), nil
		case rerr == nil && !r:
			return boolValue(false), nil
		default:
			return Value{}, exprErrf("&& operand error")
		}
	case *sparql.ExprNot:
		v, err := EBVExpr(x.X, b)
		if err != nil {
			return Value{}, err
		}
		return boolValue(!v), nil
	case *sparql.ExprNeg:
		v, err := EvalExpr(x.X, b)
		if err != nil {
			return Value{}, err
		}
		n, ok := rdf.NumericValue(v.Term)
		if !ok {
			return Value{}, exprErrf("unary minus on non-numeric %v", v.Term)
		}
		return numValue(-n), nil
	case *sparql.ExprCmp:
		return evalCmp(x, b)
	case *sparql.ExprArith:
		return evalArith(x, b)
	case *sparql.ExprCall:
		return evalCall(x, b)
	default:
		return Value{}, exprErrf("unsupported expression %T", e)
	}
}

func boolValue(v bool) Value { return Value{Term: rdf.NewBoolean(v)} }

func numValue(v float64) Value {
	if v == float64(int64(v)) {
		return Value{Term: rdf.NewInteger(int64(v))}
	}
	return Value{Term: rdf.NewTypedLiteral(strconv.FormatFloat(v, 'g', -1, 64), rdf.XSDDouble)}
}

// EBV computes the effective boolean value of a term per the SPARQL
// specification: booleans by value, numerics false when 0 or NaN, strings
// false when empty; other terms are a type error.
func EBV(t rdf.Term) (bool, error) {
	if t.Kind != rdf.KindLiteral {
		return false, exprErrf("no effective boolean value for %v", t)
	}
	if t.Datatype == rdf.XSDBoolean {
		switch t.Value {
		case "true", "1":
			return true, nil
		case "false", "0":
			return false, nil
		default:
			return false, exprErrf("malformed boolean %q", t.Value)
		}
	}
	if n, ok := rdf.NumericValue(t); ok && t.Datatype != "" {
		return n != 0, nil
	}
	if t.Datatype == "" || t.Datatype == rdf.XSDString {
		return t.Value != "", nil
	}
	return false, exprErrf("no effective boolean value for %v", t)
}

// EBVExpr evaluates the expression and takes its effective boolean value.
func EBVExpr(e sparql.Expression, b Binding) (bool, error) {
	v, err := EvalExpr(e, b)
	if err != nil {
		return false, err
	}
	return EBV(v.Term)
}

// Satisfies reports whether a mapping satisfies a FILTER condition; errors
// count as unsatisfied (per the SPARQL semantics).
func Satisfies(e sparql.Expression, b Binding) bool {
	if e == nil {
		return true
	}
	ok, err := EBVExpr(e, b)
	return err == nil && ok
}

func evalCmp(x *sparql.ExprCmp, b Binding) (Value, error) {
	l, err := EvalExpr(x.Left, b)
	if err != nil {
		return Value{}, err
	}
	r, err := EvalExpr(x.Right, b)
	if err != nil {
		return Value{}, err
	}
	cmp, eqOnly, err := compareTerms(l.Term, r.Term)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case sparql.CmpEq:
		return boolValue(cmp == 0), nil
	case sparql.CmpNeq:
		return boolValue(cmp != 0), nil
	}
	if eqOnly {
		return Value{}, exprErrf("terms %v and %v are not order-comparable", l.Term, r.Term)
	}
	switch x.Op {
	case sparql.CmpLt:
		return boolValue(cmp < 0), nil
	case sparql.CmpGt:
		return boolValue(cmp > 0), nil
	case sparql.CmpLe:
		return boolValue(cmp <= 0), nil
	case sparql.CmpGe:
		return boolValue(cmp >= 0), nil
	}
	return Value{}, exprErrf("unknown comparison operator")
}

// compareTerms compares two terms. The second result reports that only
// equality tests are defined for the pair (e.g. IRIs).
func compareTerms(a, c rdf.Term) (int, bool, error) {
	an, aok := rdf.NumericValue(a)
	cn, cok := rdf.NumericValue(c)
	if aok && cok {
		switch {
		case an < cn:
			return -1, false, nil
		case an > cn:
			return 1, false, nil
		default:
			return 0, false, nil
		}
	}
	if a.Kind == rdf.KindLiteral && c.Kind == rdf.KindLiteral {
		if isStringish(a) && isStringish(c) && a.Lang == c.Lang {
			return strings.Compare(a.Value, c.Value), false, nil
		}
		if a.Datatype == c.Datatype && a.Lang == c.Lang {
			// same (unknown) datatype: lexical ordering, covers dateTime
			return strings.Compare(a.Value, c.Value), false, nil
		}
		// different datatypes: only (in)equality is defined
		if a == c {
			return 0, true, nil
		}
		return 1, true, nil
	}
	if a.Kind == c.Kind {
		if a == c {
			return 0, true, nil
		}
		return 1, true, nil
	}
	return 1, true, nil
}

func isStringish(t rdf.Term) bool {
	return t.Kind == rdf.KindLiteral && (t.Datatype == "" || t.Datatype == rdf.XSDString)
}

func evalArith(x *sparql.ExprArith, b Binding) (Value, error) {
	l, err := EvalExpr(x.Left, b)
	if err != nil {
		return Value{}, err
	}
	r, err := EvalExpr(x.Right, b)
	if err != nil {
		return Value{}, err
	}
	ln, lok := rdf.NumericValue(l.Term)
	rn, rok := rdf.NumericValue(r.Term)
	if !lok || !rok {
		return Value{}, exprErrf("arithmetic on non-numeric operands %v, %v", l.Term, r.Term)
	}
	switch x.Op {
	case sparql.ArithAdd:
		return numValue(ln + rn), nil
	case sparql.ArithSub:
		return numValue(ln - rn), nil
	case sparql.ArithMul:
		return numValue(ln * rn), nil
	case sparql.ArithDiv:
		if rn == 0 {
			return Value{}, exprErrf("division by zero")
		}
		return numValue(ln / rn), nil
	}
	return Value{}, exprErrf("unknown arithmetic operator")
}

func evalCall(x *sparql.ExprCall, b Binding) (Value, error) {
	switch x.Name {
	case "BOUND":
		v, ok := x.Args[0].(*sparql.ExprVar)
		if !ok {
			return Value{}, exprErrf("BOUND requires a variable argument")
		}
		return boolValue(b.Bound(v.Name)), nil
	case "ISIRI", "ISURI":
		t, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		return boolValue(t.Term.Kind == rdf.KindIRI), nil
	case "ISBLANK":
		t, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		return boolValue(t.Term.Kind == rdf.KindBlank), nil
	case "ISLITERAL":
		t, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		return boolValue(t.Term.Kind == rdf.KindLiteral), nil
	case "STR":
		t, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		switch t.Term.Kind {
		case rdf.KindIRI, rdf.KindLiteral:
			return Value{Term: rdf.NewLiteral(t.Term.Value)}, nil
		default:
			return Value{}, exprErrf("STR of %v", t.Term)
		}
	case "LANG":
		t, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		if t.Term.Kind != rdf.KindLiteral {
			return Value{}, exprErrf("LANG of non-literal")
		}
		return Value{Term: rdf.NewLiteral(t.Term.Lang)}, nil
	case "DATATYPE":
		t, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		if t.Term.Kind != rdf.KindLiteral {
			return Value{}, exprErrf("DATATYPE of non-literal")
		}
		dt := t.Term.Datatype
		if dt == "" && t.Term.Lang == "" {
			dt = rdf.XSDString
		}
		return Value{Term: rdf.NewIRI(dt)}, nil
	case "SAMETERM":
		l, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		r, err := EvalExpr(x.Args[1], b)
		if err != nil {
			return Value{}, err
		}
		return boolValue(l.Term == r.Term), nil
	case "LANGMATCHES":
		l, err := EvalExpr(x.Args[0], b)
		if err != nil {
			return Value{}, err
		}
		r, err := EvalExpr(x.Args[1], b)
		if err != nil {
			return Value{}, err
		}
		tag := strings.ToLower(l.Term.Value)
		rng := strings.ToLower(r.Term.Value)
		if rng == "*" {
			return boolValue(tag != ""), nil
		}
		return boolValue(tag == rng || strings.HasPrefix(tag, rng+"-")), nil
	case "REGEX":
		return evalRegex(x, b)
	default:
		return Value{}, exprErrf("unknown function %s", x.Name)
	}
}

func evalRegex(x *sparql.ExprCall, b Binding) (Value, error) {
	t, err := EvalExpr(x.Args[0], b)
	if err != nil {
		return Value{}, err
	}
	if !isStringish(t.Term) && t.Term.Lang == "" && t.Term.Kind != rdf.KindLiteral {
		return Value{}, exprErrf("REGEX on non-string %v", t.Term)
	}
	p, err := EvalExpr(x.Args[1], b)
	if err != nil {
		return Value{}, err
	}
	pattern := p.Term.Value
	if len(x.Args) == 3 {
		f, err := EvalExpr(x.Args[2], b)
		if err != nil {
			return Value{}, err
		}
		var goFlags strings.Builder
		for _, r := range f.Term.Value {
			switch r {
			case 'i', 's', 'm':
				goFlags.WriteRune(r)
			case 'x':
				// extended mode unsupported; ignore whitespace manually
			default:
				return Value{}, exprErrf("unsupported REGEX flag %q", r)
			}
		}
		if goFlags.Len() > 0 {
			pattern = "(?" + goFlags.String() + ")" + pattern
		}
	}
	re, err := getRegexp(pattern)
	if err != nil {
		return Value{}, exprErrf("bad REGEX pattern %q: %v", pattern, err)
	}
	return boolValue(re.MatchString(t.Term.Value)), nil
}

// regexCache memoizes compiled patterns; FILTER regex is evaluated once per
// candidate solution, so caching matters for large multisets.
var regexCache = struct {
	sync.RWMutex
	m map[string]*regexp.Regexp
}{m: map[string]*regexp.Regexp{}}

func getRegexp(pattern string) (*regexp.Regexp, error) {
	regexCache.RLock()
	re, ok := regexCache.m[pattern]
	regexCache.RUnlock()
	if ok {
		return re, nil
	}
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	regexCache.Lock()
	regexCache.m[pattern] = re
	regexCache.Unlock()
	return re, nil
}
