package eval

import (
	"sort"

	"adhocshare/internal/rdf"
	"adhocshare/internal/wirebin"
)

// Binary wire form of solution mappings and multisets, used by the
// hand-rolled payload codec (internal/dqp) for result shipping. Map
// iteration order is never exposed: a mapping encodes its variables in
// sorted order, so the encoding is deterministic and two equal bindings
// always produce identical bytes.

// EncodeBinary appends the mapping's binary wire form to dst: the
// variable count, then (name, term) pairs in sorted variable order.
func (b Binding) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(len(b)))
	if len(b) == 0 {
		return dst
	}
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		dst = wirebin.AppendString(dst, k)
		dst = b[k].EncodeBinary(dst)
	}
	return dst
}

// DecodeBinary consumes one mapping from buf and returns the rest. An
// empty mapping decodes to nil, matching gob's zero-value elision.
func (b *Binding) DecodeBinary(buf []byte) ([]byte, error) {
	n, buf, err := wirebin.Len(buf)
	if err != nil || n == 0 {
		*b = nil
		return buf, err
	}
	out := make(Binding, n)
	for i := 0; i < n; i++ {
		var k string
		if k, buf, err = wirebin.String(buf); err != nil {
			return buf, err
		}
		var t rdf.Term
		if buf, err = t.DecodeBinary(buf); err != nil {
			return buf, err
		}
		out[k] = t
	}
	*b = out
	return buf, nil
}

// EncodeBinary appends the multiset's binary wire form to dst.
func (s Solutions) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(len(s)))
	for _, b := range s {
		dst = b.EncodeBinary(dst)
	}
	return dst
}

// DecodeBinary consumes one multiset from buf and returns the rest (nil
// for an empty one).
func (s *Solutions) DecodeBinary(buf []byte) ([]byte, error) {
	n, buf, err := wirebin.Len(buf)
	if err != nil || n == 0 {
		*s = nil
		return buf, err
	}
	out := make(Solutions, n)
	for i := range out {
		if buf, err = out[i].DecodeBinary(buf); err != nil {
			return buf, err
		}
	}
	*s = out
	return buf, nil
}
