package eval

import (
	"testing"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql"
)

// parseFilterExpr extracts the FILTER expression from a tiny query.
func parseFilterExpr(t *testing.T, cond string) sparql.Expression {
	t.Helper()
	q, err := sparql.Parse(`PREFIX f: <http://f/> SELECT ?x WHERE { ?x ?p ?o . FILTER ` + cond + ` }`)
	if err != nil {
		t.Fatalf("parse %s: %v", cond, err)
	}
	g := q.Where.(*sparql.Group)
	return g.Elems[1].(*sparql.Filter).Expr
}

func evalBool(t *testing.T, cond string, b Binding) (bool, error) {
	t.Helper()
	return EBVExpr(parseFilterExpr(t, cond), b)
}

func TestEBV(t *testing.T) {
	cases := []struct {
		term rdf.Term
		want bool
		err  bool
	}{
		{rdf.NewBoolean(true), true, false},
		{rdf.NewBoolean(false), false, false},
		{rdf.NewInteger(0), false, false},
		{rdf.NewInteger(3), true, false},
		{rdf.NewTypedLiteral("0.0", rdf.XSDDecimal), false, false},
		{rdf.NewLiteral(""), false, false},
		{rdf.NewLiteral("x"), true, false},
		{rdf.NewIRI("http://x"), false, true},
		{rdf.NewBlank("b"), false, true},
		{rdf.NewTypedLiteral("zzz", "http://other"), false, true},
	}
	for _, c := range cases {
		got, err := EBV(c.term)
		if (err != nil) != c.err {
			t.Errorf("EBV(%v) err = %v, want err=%v", c.term, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("EBV(%v) = %v, want %v", c.term, got, c.want)
		}
	}
}

func TestComparisons(t *testing.T) {
	b := Binding{"a": rdf.NewInteger(5), "s": rdf.NewLiteral("apple")}
	cases := []struct {
		cond string
		want bool
	}{
		{`(?a = 5)`, true},
		{`(?a != 5)`, false},
		{`(?a < 6)`, true},
		{`(?a <= 5)`, true},
		{`(?a > 5)`, false},
		{`(?a >= 5.0)`, true},
		{`(?s = "apple")`, true},
		{`(?s < "banana")`, true},
		{`(?s > "banana")`, false},
		{`(?a + 1 = 6)`, true},
		{`(?a * 2 = 10)`, true},
		{`(?a - 10 = -5)`, true},
		{`(?a / 2 = 2.5)`, true},
		{`(-?a = -5)`, true},
	}
	for _, c := range cases {
		got, err := evalBool(t, c.cond, b)
		if err != nil {
			t.Errorf("%s: error %v", c.cond, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestComparisonErrors(t *testing.T) {
	b := Binding{"i": rdf.NewIRI("http://x"), "j": rdf.NewIRI("http://y")}
	// IRIs support equality but not ordering.
	if got, err := evalBool(t, `(?i = ?i)`, b); err != nil || !got {
		t.Errorf("IRI equality failed: %v %v", got, err)
	}
	if got, err := evalBool(t, `(?i != ?j)`, b); err != nil || !got {
		t.Errorf("IRI inequality failed: %v %v", got, err)
	}
	if _, err := evalBool(t, `(?i < ?j)`, b); err == nil {
		t.Error("IRI ordering should error")
	}
	// division by zero
	if _, err := evalBool(t, `(?x / 0 = 1)`, Binding{"x": rdf.NewInteger(4)}); err == nil {
		t.Error("division by zero should error")
	}
	// unbound variable
	if _, err := evalBool(t, `(?zz = 1)`, Binding{}); err == nil {
		t.Error("unbound variable should error")
	}
}

func TestLogicalErrorTolerance(t *testing.T) {
	// true || error = true; false && error = false (SPARQL 3-valued logic)
	b := Binding{"x": rdf.NewInteger(1)}
	if got, err := evalBool(t, `(?x = 1 || ?unbound = 2)`, b); err != nil || !got {
		t.Errorf("true||error = %v, %v; want true", got, err)
	}
	if got, err := evalBool(t, `(?x = 2 && ?unbound = 2)`, b); err != nil || got {
		t.Errorf("false&&error = %v, %v; want false", got, err)
	}
	if _, err := evalBool(t, `(?x = 2 || ?unbound = 2)`, b); err == nil {
		t.Error("false||error should propagate the error")
	}
	if _, err := evalBool(t, `(?x = 1 && ?unbound = 2)`, b); err == nil {
		t.Error("true&&error should propagate the error")
	}
}

func TestBuiltins(t *testing.T) {
	b := Binding{
		"iri":  rdf.NewIRI("http://x/y"),
		"lit":  rdf.NewLangLiteral("bonjour", "fr-CA"),
		"num":  rdf.NewInteger(7),
		"bl":   rdf.NewBlank("n1"),
		"self": rdf.NewIRI("http://x/y"),
	}
	cases := []struct {
		cond string
		want bool
	}{
		{`(bound(?iri))`, true},
		{`(bound(?nope))`, false},
		{`(isIRI(?iri))`, true},
		{`(isURI(?iri))`, true},
		{`(isIRI(?lit))`, false},
		{`(isLiteral(?lit))`, true},
		{`(isLiteral(?bl))`, false},
		{`(isBlank(?bl))`, true},
		{`(isBlank(?iri))`, false},
		{`(str(?iri) = "http://x/y")`, true},
		{`(str(?num) = "7")`, true},
		{`(lang(?lit) = "fr-CA")`, true},
		{`(lang(?num) = "")`, true},
		{`(langMatches(lang(?lit), "fr"))`, true},
		{`(langMatches(lang(?lit), "en"))`, false},
		{`(langMatches(lang(?lit), "*"))`, true},
		{`(sameTerm(?iri, ?self))`, true},
		{`(sameTerm(?iri, ?lit))`, false},
		{`(datatype(?num) = <http://www.w3.org/2001/XMLSchema#integer>)`, true},
	}
	for _, c := range cases {
		got, err := evalBool(t, c.cond, b)
		if err != nil {
			t.Errorf("%s: error %v", c.cond, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.cond, got, c.want)
		}
	}
}

func TestRegexBuiltin(t *testing.T) {
	b := Binding{"n": rdf.NewLiteral("Alice Smith")}
	cases := []struct {
		cond string
		want bool
	}{
		{`regex(?n, "Smith")`, true},
		{`regex(?n, "^Alice")`, true},
		{`regex(?n, "smith")`, false},
		{`regex(?n, "smith", "i")`, true},
		{`regex(?n, "ALICE.*SMITH", "i")`, true},
		{`regex(?n, "Jones")`, false},
	}
	for _, c := range cases {
		got, err := evalBool(t, c.cond, b)
		if err != nil {
			t.Errorf("%s: error %v", c.cond, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.cond, got, c.want)
		}
	}
	// invalid pattern → error, not panic
	if _, err := evalBool(t, `regex(?n, "([")`, b); err == nil {
		t.Error("invalid regex should error")
	}
	// unsupported flag
	if _, err := evalBool(t, `regex(?n, "a", "q")`, b); err == nil {
		t.Error("unsupported flag should error")
	}
}

func TestSatisfiesErrorAsFalse(t *testing.T) {
	if Satisfies(parseFilterExpr(t, `(?unbound > 3)`), Binding{}) {
		t.Error("error in filter must count as unsatisfied")
	}
	if !Satisfies(nil, Binding{}) {
		t.Error("nil condition must be satisfied")
	}
}

func TestNumericPromotion(t *testing.T) {
	b := Binding{
		"i": rdf.NewInteger(2),
		"d": rdf.NewTypedLiteral("2.0", rdf.XSDDecimal),
		"f": rdf.NewTypedLiteral("2e0", rdf.XSDDouble),
	}
	for _, cond := range []string{`(?i = ?d)`, `(?i = ?f)`, `(?d = ?f)`} {
		got, err := evalBool(t, cond, b)
		if err != nil || !got {
			t.Errorf("%s = %v, %v; want true", cond, got, err)
		}
	}
}
