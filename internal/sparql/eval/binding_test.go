package eval

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"adhocshare/internal/rdf"
)

func term(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }

func bnd(pairs ...string) Binding {
	b := NewBinding()
	for i := 0; i < len(pairs); i += 2 {
		b[pairs[i]] = term(pairs[i+1])
	}
	return b
}

func TestCompatible(t *testing.T) {
	cases := []struct {
		a, b Binding
		want bool
	}{
		{bnd(), bnd(), true},
		{bnd("x", "1"), bnd(), true},
		{bnd("x", "1"), bnd("x", "1"), true},
		{bnd("x", "1"), bnd("x", "2"), false},
		{bnd("x", "1"), bnd("y", "2"), true},
		{bnd("x", "1", "y", "2"), bnd("y", "2", "z", "3"), true},
		{bnd("x", "1", "y", "2"), bnd("y", "9", "z", "3"), false},
	}
	for _, c := range cases {
		if got := c.a.Compatible(c.b); got != c.want {
			t.Errorf("Compatible(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Compatible(c.a); got != c.want {
			t.Errorf("Compatible is not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestMergeAndClone(t *testing.T) {
	a := bnd("x", "1")
	b := bnd("y", "2")
	m := a.Merge(b)
	if len(m) != 2 || m["x"] != term("1") || m["y"] != term("2") {
		t.Errorf("merge = %v", m)
	}
	c := a.Clone()
	c["x"] = term("9")
	if a["x"] != term("1") {
		t.Error("Clone aliases the original")
	}
}

func TestBindingKeyAndEqual(t *testing.T) {
	a := bnd("x", "1", "y", "2")
	b := bnd("y", "2", "x", "1")
	if a.Key() != b.Key() {
		t.Error("Key must be order-insensitive")
	}
	if !a.Equal(b) {
		t.Error("Equal must be order-insensitive")
	}
	c := bnd("x", "1")
	if a.Equal(c) || a.Key() == c.Key() {
		t.Error("different bindings compared equal")
	}
}

func TestBindingProject(t *testing.T) {
	a := bnd("x", "1", "y", "2", "z", "3")
	p := a.Project([]string{"x", "z", "missing"})
	if len(p) != 2 || p["x"] != term("1") || p["z"] != term("3") {
		t.Errorf("project = %v", p)
	}
}

func TestJoinBasic(t *testing.T) {
	// Ω1 ⋈ Ω2 with shared variable y.
	o1 := Solutions{bnd("x", "a", "y", "1"), bnd("x", "b", "y", "2")}
	o2 := Solutions{bnd("y", "1", "z", "p"), bnd("y", "1", "z", "q"), bnd("y", "3", "z", "r")}
	j := Join(o1, o2)
	if len(j) != 2 {
		t.Fatalf("join size = %d, want 2", len(j))
	}
	for _, m := range j {
		if m["x"] != term("a") || m["y"] != term("1") {
			t.Errorf("unexpected join row %v", m)
		}
	}
}

func TestJoinCrossProduct(t *testing.T) {
	o1 := Solutions{bnd("x", "a"), bnd("x", "b")}
	o2 := Solutions{bnd("y", "1"), bnd("y", "2"), bnd("y", "3")}
	j := Join(o1, o2)
	if len(j) != 6 {
		t.Errorf("disjoint join size = %d, want 6", len(j))
	}
}

func TestJoinWithUnboundSharedVar(t *testing.T) {
	// One Ω2 mapping leaves the shared variable unbound: it is compatible
	// with everything (arises from OPTIONAL results).
	o1 := Solutions{bnd("x", "a", "y", "1")}
	o2 := Solutions{bnd("y", "1"), bnd("z", "w")} // second binds only z
	j := Join(o1, o2)
	if len(j) != 2 {
		t.Fatalf("join size = %d, want 2", len(j))
	}
}

func TestJoinEmpty(t *testing.T) {
	if got := Join(nil, Solutions{bnd("x", "1")}); got != nil {
		t.Errorf("join with empty = %v", got)
	}
	if got := Join(Solutions{bnd("x", "1")}, nil); got != nil {
		t.Errorf("join with empty = %v", got)
	}
}

func TestDiff(t *testing.T) {
	o1 := Solutions{bnd("x", "a", "y", "1"), bnd("x", "b", "y", "2")}
	o2 := Solutions{bnd("y", "1")}
	d := Diff(o1, o2)
	if len(d) != 1 || d[0]["x"] != term("b") {
		t.Errorf("diff = %v", d)
	}
}

func TestLeftJoinSemantics(t *testing.T) {
	// (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2)
	o1 := Solutions{bnd("x", "a", "y", "1"), bnd("x", "b", "y", "2")}
	o2 := Solutions{bnd("y", "1", "z", "n")}
	lj := LeftJoin(o1, o2)
	if len(lj) != 2 {
		t.Fatalf("leftjoin size = %d, want 2", len(lj))
	}
	var joined, kept int
	for _, m := range lj {
		if m.Bound("z") {
			joined++
		} else {
			kept++
		}
	}
	if joined != 1 || kept != 1 {
		t.Errorf("joined=%d kept=%d", joined, kept)
	}
}

func TestDistinctReduced(t *testing.T) {
	s := Solutions{bnd("x", "1"), bnd("x", "1"), bnd("x", "2"), bnd("x", "1")}
	d := Distinct(s)
	if len(d) != 2 {
		t.Errorf("distinct = %v", d)
	}
	r := Reduced(s)
	if len(r) != 3 { // only adjacent duplicates removed
		t.Errorf("reduced size = %d, want 3", len(r))
	}
}

func TestSlice(t *testing.T) {
	s := Solutions{bnd("x", "1"), bnd("x", "2"), bnd("x", "3"), bnd("x", "4")}
	cases := []struct {
		off, lim, want int
	}{
		{-1, -1, 4},
		{1, -1, 3},
		{-1, 2, 2},
		{1, 2, 2},
		{3, 5, 1},
		{9, -1, 0},
		{-1, 0, 0},
	}
	for _, c := range cases {
		got := Slice(s, c.off, c.lim)
		if len(got) != c.want {
			t.Errorf("Slice(off=%d,lim=%d) = %d rows, want %d", c.off, c.lim, len(got), c.want)
		}
	}
}

func TestSolutionsSizeBytes(t *testing.T) {
	s := Solutions{bnd("x", "1"), bnd("x", "22")}
	if s.SizeBytes() <= 0 {
		t.Error("SizeBytes must be positive")
	}
	if (Solutions{}).SizeBytes() <= 0 {
		t.Error("empty multiset still has framing overhead")
	}
	if s.SizeBytes() <= (Solutions{bnd("x", "1")}).SizeBytes() {
		t.Error("more rows must cost more bytes")
	}
}

// Property: join is commutative up to multiset equality on these inputs.
func TestJoinCommutativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mk := func() Solutions {
			var s Solutions
			for i := 0; i < rng.Intn(6); i++ {
				b := NewBinding()
				if rng.Intn(2) == 0 {
					b["x"] = term(fmt.Sprint(rng.Intn(3)))
				}
				if rng.Intn(2) == 0 {
					b["y"] = term(fmt.Sprint(rng.Intn(3)))
				}
				s = append(s, b)
			}
			return s
		}
		a, b := mk(), mk()
		ab, ba := Join(a, b), Join(b, a)
		return multisetEqual(ab, ba)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: union is associative and Diff(a,b) ⊆ a.
func TestUnionDiffProperties(t *testing.T) {
	a := Solutions{bnd("x", "1"), bnd("x", "2")}
	b := Solutions{bnd("x", "2"), bnd("y", "3")}
	c := Solutions{bnd("z", "4")}
	l := Union(Union(a, b), c)
	r := Union(a, Union(b, c))
	if !multisetEqual(l, r) {
		t.Error("union not associative")
	}
	for _, m := range Diff(a, b) {
		found := false
		for _, x := range a {
			if m.Equal(x) {
				found = true
			}
		}
		if !found {
			t.Error("Diff produced mapping not in a")
		}
	}
}

func multisetEqual(a, b Solutions) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, m := range a {
		count[m.Key()]++
	}
	for _, m := range b {
		count[m.Key()]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}
