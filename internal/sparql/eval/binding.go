// Package eval implements local evaluation of SPARQL algebra expressions
// over an rdf.Graph: solution mappings, the compatible-mapping join/union/
// difference operations of Pérez et al. (Sect. IV-A of the paper), filter
// expression evaluation with effective boolean values, and the solution
// sequence modifiers.
//
// The same primitives are reused by the distributed query processor, which
// ships partial solution multisets between nodes and joins them in-network.
package eval

import (
	"sort"
	"strings"

	"adhocshare/internal/rdf"
)

// Binding is one solution mapping µ: a partial function from variable
// names to RDF terms.
//
// Bindings are immutable after construction by convention: every algebra
// operation (Merge, Project, extend, ...) builds a fresh mapping via
// Clone or make, so sharing a Binding across nodes or solution sets is
// safe. Mutate only freshly cloned bindings.
//
//adhoclint:wireimmutable every producer clones before writing
type Binding map[string]rdf.Term

// NewBinding returns an empty solution mapping.
func NewBinding() Binding { return Binding{} }

// Clone returns an independent copy of the binding.
func (b Binding) Clone() Binding {
	out := make(Binding, len(b))
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Bound reports whether the variable is bound.
func (b Binding) Bound(v string) bool {
	_, ok := b[v]
	return ok
}

// Compatible reports whether two mappings agree on every shared variable
// (the compatibility relation of Pérez et al.).
func (b Binding) Compatible(c Binding) bool {
	small, large := b, c
	if len(large) < len(small) {
		small, large = large, small
	}
	for k, v := range small {
		if w, ok := large[k]; ok && w != v {
			return false
		}
	}
	return true
}

// Merge returns µ1 ∪ µ2 for compatible mappings. The caller must ensure
// compatibility; on conflicting variables the receiver's value wins.
func (b Binding) Merge(c Binding) Binding {
	out := make(Binding, len(b)+len(c))
	for k, v := range c {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// Equal reports whether two mappings bind exactly the same variables to
// the same terms.
func (b Binding) Equal(c Binding) bool {
	if len(b) != len(c) {
		return false
	}
	for k, v := range b {
		if w, ok := c[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// Key returns a canonical string for the mapping, used for DISTINCT and
// set-based deduplication.
func (b Binding) Key() string {
	if len(b) == 0 {
		return ""
	}
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(b[k].String())
		sb.WriteByte(';')
	}
	return sb.String()
}

// SizeBytes estimates the wire size of the mapping for the network cost
// model: variable names plus term encodings.
func (b Binding) SizeBytes() int {
	n := 2
	for k, v := range b {
		n += len(k) + v.SizeBytes()
	}
	return n
}

// Project returns a mapping restricted to the given variables.
func (b Binding) Project(vars []string) Binding {
	out := make(Binding, len(vars))
	for _, v := range vars {
		if t, ok := b[v]; ok {
			out[v] = t
		}
	}
	return out
}

// String renders the binding deterministically for debugging.
func (b Binding) String() string {
	keys := make([]string, 0, len(b))
	for k := range b {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = "?" + k + "→" + b[k].String()
	}
	return "{" + strings.Join(parts, " ") + "}"
}

// Solutions is a solution multiset Ω.
//
// Like Binding, a Solutions value is immutable after construction: the
// algebra operations return fresh slices (sub-slicing in Slice is fine —
// the elements are never overwritten), so partial solution sets can ship
// between nodes without deep-copying.
//
//adhoclint:wireimmutable algebra ops return fresh slices, elements never overwritten
type Solutions []Binding

// SizeBytes estimates the wire size of the multiset.
func (s Solutions) SizeBytes() int {
	n := 4
	for _, b := range s {
		n += b.SizeBytes()
	}
	return n
}

// Clone deep-copies the multiset.
func (s Solutions) Clone() Solutions {
	out := make(Solutions, len(s))
	for i, b := range s {
		out[i] = b.Clone()
	}
	return out
}

// Join computes Ω1 ⋈ Ω2: the merge of every compatible pair.
func Join(a, b Solutions) Solutions {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	// Hash join on the shared variables when there are any; otherwise a
	// cross product.
	shared := sharedVars(a, b)
	if len(shared) == 0 {
		out := make(Solutions, 0, len(a)*len(b))
		for _, x := range a {
			for _, y := range b {
				// With disjoint domains every pair is compatible, but a
				// variable may still be bound in only some mappings of a
				// side, so check anyway.
				if x.Compatible(y) {
					out = append(out, x.Merge(y))
				}
			}
		}
		return out
	}
	// Build hash table over b keyed by shared-variable values. Mappings in
	// which some shared variable is unbound go to a catch-all bucket that
	// must be probed pairwise.
	table := make(map[string]Solutions)
	var loose Solutions
	for _, y := range b {
		k, ok := joinKey(y, shared)
		if !ok {
			loose = append(loose, y)
			continue
		}
		table[k] = append(table[k], y)
	}
	var out Solutions
	for _, x := range a {
		k, ok := joinKey(x, shared)
		if ok {
			for _, y := range table[k] {
				if x.Compatible(y) {
					out = append(out, x.Merge(y))
				}
			}
		} else {
			// x leaves shared variables unbound: probe everything.
			for _, y := range b {
				if x.Compatible(y) {
					out = append(out, x.Merge(y))
				}
			}
			continue
		}
		for _, y := range loose {
			if x.Compatible(y) {
				out = append(out, x.Merge(y))
			}
		}
	}
	return out
}

func joinKey(b Binding, vars []string) (string, bool) {
	var sb strings.Builder
	for _, v := range vars {
		t, ok := b[v]
		if !ok {
			return "", false
		}
		sb.WriteString(t.String())
		sb.WriteByte('|')
	}
	return sb.String(), true
}

func sharedVars(a, b Solutions) []string {
	inA := map[string]bool{}
	for _, x := range a {
		for v := range x {
			inA[v] = true
		}
	}
	seen := map[string]bool{}
	var out []string
	for _, y := range b {
		for v := range y {
			if inA[v] && !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Strings(out)
	return out
}

// Union computes Ω1 ∪ Ω2 (multiset union).
func Union(a, b Solutions) Solutions {
	out := make(Solutions, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	return out
}

// Diff computes Ω1 ∖ Ω2: mappings of Ω1 compatible with no mapping of Ω2.
func Diff(a, b Solutions) Solutions {
	var out Solutions
	for _, x := range a {
		ok := true
		for _, y := range b {
			if x.Compatible(y) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, x)
		}
	}
	return out
}

// LeftJoin computes Ω1 ⟕ Ω2 = (Ω1 ⋈ Ω2) ∪ (Ω1 ∖ Ω2), the semantics of
// OPTIONAL (Sect. IV-E). The optional filter condition, when present, is
// applied by the caller via LeftJoinFilter.
func LeftJoin(a, b Solutions) Solutions {
	return Union(Join(a, b), Diff(a, b))
}

// Distinct removes duplicate mappings, preserving first occurrences.
func Distinct(s Solutions) Solutions {
	seen := make(map[string]bool, len(s))
	var out Solutions
	for _, b := range s {
		k := b.Key()
		if !seen[k] {
			seen[k] = true
			out = append(out, b)
		}
	}
	return out
}

// Reduced removes adjacent duplicate mappings.
func Reduced(s Solutions) Solutions {
	var out Solutions
	for i, b := range s {
		if i > 0 && b.Key() == s[i-1].Key() {
			continue
		}
		out = append(out, b)
	}
	return out
}

// Project restricts every mapping to the given variables.
func Project(s Solutions, vars []string) Solutions {
	out := make(Solutions, len(s))
	for i, b := range s {
		out[i] = b.Project(vars)
	}
	return out
}

// Slice applies OFFSET and LIMIT (-1 meaning unset).
func Slice(s Solutions, offset, limit int) Solutions {
	if offset > 0 {
		if offset >= len(s) {
			return nil
		}
		s = s[offset:]
	}
	if limit >= 0 && limit < len(s) {
		s = s[:limit]
	}
	return s
}
