package eval

import (
	"fmt"
	"sort"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
)

// Dataset is an RDF dataset: a default graph plus named graphs, the
// structure the paper's Sect. IV-A dataset clauses select over.
type Dataset struct {
	Default *rdf.Graph
	Named   map[string]*rdf.Graph
}

// GraphNames returns the sorted named-graph IRIs.
func (ds *Dataset) GraphNames() []string {
	out := make([]string, 0, len(ds.Named))
	for n := range ds.Named {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Eval evaluates an algebra expression over a graph and returns the
// solution multiset. This is the local-execution component of the Fig. 3
// workflow: every storage node runs it over its own repository.
func Eval(op algebra.Op, g *rdf.Graph) (Solutions, error) {
	return EvalDataset(op, &Dataset{Default: g})
}

// EvalDataset evaluates an algebra expression over a full dataset,
// supporting GRAPH patterns over the named graphs.
func EvalDataset(op algebra.Op, ds *Dataset) (Solutions, error) {
	cur := ds.Default
	if cur == nil {
		cur = rdf.NewGraph()
	}
	return evalIn(op, ds, cur)
}

// evalIn evaluates op with cur as the active graph (the default graph, or
// the named graph selected by an enclosing GRAPH pattern).
func evalIn(op algebra.Op, ds *Dataset, cur *rdf.Graph) (Solutions, error) {
	g := cur
	switch o := op.(type) {
	case *algebra.BGP:
		return EvalBGP(g, o.Patterns, Solutions{NewBinding()}), nil
	case *algebra.Graph:
		return evalGraph(o, ds)
	case *algebra.Join:
		l, err := evalIn(o.Left, ds, cur)
		if err != nil {
			return nil, err
		}
		r, err := evalIn(o.Right, ds, cur)
		if err != nil {
			return nil, err
		}
		return Join(l, r), nil
	case *algebra.LeftJoin:
		l, err := evalIn(o.Left, ds, cur)
		if err != nil {
			return nil, err
		}
		r, err := evalIn(o.Right, ds, cur)
		if err != nil {
			return nil, err
		}
		return LeftJoinFilter(l, r, o.Expr), nil
	case *algebra.Union:
		l, err := evalIn(o.Left, ds, cur)
		if err != nil {
			return nil, err
		}
		r, err := evalIn(o.Right, ds, cur)
		if err != nil {
			return nil, err
		}
		return Union(l, r), nil
	case *algebra.Filter:
		in, err := evalIn(o.Input, ds, cur)
		if err != nil {
			return nil, err
		}
		return FilterSolutions(in, o.Expr), nil
	case *algebra.Project:
		in, err := evalIn(o.Input, ds, cur)
		if err != nil {
			return nil, err
		}
		return Project(in, o.Names), nil
	case *algebra.Distinct:
		in, err := evalIn(o.Input, ds, cur)
		if err != nil {
			return nil, err
		}
		return Distinct(in), nil
	case *algebra.Reduced:
		in, err := evalIn(o.Input, ds, cur)
		if err != nil {
			return nil, err
		}
		return Reduced(in), nil
	case *algebra.OrderBy:
		in, err := evalIn(o.Input, ds, cur)
		if err != nil {
			return nil, err
		}
		return Order(in, o.Conds), nil
	case *algebra.Slice:
		in, err := evalIn(o.Input, ds, cur)
		if err != nil {
			return nil, err
		}
		return Slice(in, o.Offset, o.Limit), nil
	default:
		return nil, fmt.Errorf("eval: unsupported operator %T", op)
	}
}

// evalGraph evaluates GRAPH name { P }: with a constant IRI the inner
// pattern runs over that named graph; with a variable it runs over every
// named graph, binding the variable to the graph's IRI.
func evalGraph(o *algebra.Graph, ds *Dataset) (Solutions, error) {
	if !o.Name.IsVar() {
		g := ds.Named[o.Name.Value]
		if g == nil {
			return nil, nil
		}
		return evalIn(o.Input, ds, g)
	}
	varName := o.Name.Value
	var out Solutions
	for _, iri := range ds.GraphNames() {
		sols, err := evalIn(o.Input, ds, ds.Named[iri])
		if err != nil {
			return nil, err
		}
		gTerm := rdf.NewIRI(iri)
		for _, b := range sols {
			if old, bound := b[varName]; bound {
				if old != gTerm {
					continue
				}
				out = append(out, b)
				continue
			}
			nb := b.Clone()
			nb[varName] = gTerm
			out = append(out, nb)
		}
	}
	return out, nil
}

// LeftJoinFilter implements LeftJoin(Ω1, Ω2, expr) per the SPARQL algebra:
// compatible merges that satisfy expr, plus Ω1 mappings with no compatible
// (and satisfying) counterpart.
func LeftJoinFilter(a, b Solutions, expr sparql.Expression) Solutions {
	if expr == nil {
		return LeftJoin(a, b)
	}
	var out Solutions
	for _, x := range a {
		matched := false
		for _, y := range b {
			if x.Compatible(y) {
				m := x.Merge(y)
				if Satisfies(expr, m) {
					out = append(out, m)
					matched = true
				}
			}
		}
		if !matched {
			out = append(out, x)
		}
	}
	return out
}

// FilterSolutions keeps mappings satisfying the condition.
func FilterSolutions(s Solutions, expr sparql.Expression) Solutions {
	if expr == nil {
		return s
	}
	var out Solutions
	for _, b := range s {
		if Satisfies(expr, b) {
			out = append(out, b)
		}
	}
	return out
}

// EvalBGP matches the basic graph pattern against the graph by index
// nested-loop evaluation: each seed binding is extended pattern by pattern,
// substituting already-bound variables before probing the graph indexes.
// Passing seeds other than the unit binding implements the paper's
// in-network aggregation, where partial solutions from upstream nodes
// constrain the local match.
func EvalBGP(g *rdf.Graph, patterns []rdf.Triple, seeds Solutions) Solutions {
	if len(patterns) == 0 {
		return seeds
	}
	// The collector closure is hoisted out of the loops and fed through
	// captured variables: allocating it per binding (the natural inline
	// form) costs one heap closure per seed per pattern on the match hot
	// path.
	var (
		next  Solutions
		b     Binding
		bound rdf.Triple
	)
	collect := func(t rdf.Triple) bool {
		nb, ok := extend(b, bound, t)
		if ok {
			next = append(next, nb)
		}
		return true
	}
	cur := seeds
	for _, pat := range patterns {
		next = nil
		for _, cb := range cur {
			b = cb
			bound = Substitute(pat, b)
			g.ForEachMatch(bound, collect)
		}
		cur = next
		if len(cur) == 0 {
			return nil
		}
	}
	return cur
}

// MatchPattern evaluates a single triple pattern with the unit seed — the
// primitive-query building block (Sect. IV-C).
func MatchPattern(g *rdf.Graph, pattern rdf.Triple) Solutions {
	return EvalBGP(g, []rdf.Triple{pattern}, Solutions{NewBinding()})
}

// Substitute replaces variables of pat that are bound in b with their
// values.
func Substitute(pat rdf.Triple, b Binding) rdf.Triple {
	sub := func(t rdf.Term) rdf.Term {
		if t.IsVar() {
			if v, ok := b[t.Value]; ok {
				return v
			}
		}
		return t
	}
	return rdf.Triple{S: sub(pat.S), P: sub(pat.P), O: sub(pat.O)}
}

// extend augments binding b with the variable assignments implied by
// matching the (partially substituted) pattern against triple t. It
// reports false when the same variable would be assigned two different
// terms (e.g. pattern ?x p ?x against s p o with s != o).
func extend(b Binding, pat rdf.Triple, t rdf.Triple) (Binding, bool) {
	nb := b.Clone()
	assign := func(p, v rdf.Term) bool {
		if !p.IsVar() {
			return true
		}
		if old, ok := nb[p.Value]; ok {
			return old == v
		}
		nb[p.Value] = v
		return true
	}
	if !assign(pat.S, t.S) || !assign(pat.P, t.P) || !assign(pat.O, t.O) {
		return nil, false
	}
	return nb, true
}

// Order sorts the solution sequence by the ORDER BY conditions. Unbound
// variables and evaluation errors sort first, matching the SPARQL ordering
// extension for unbound values.
func Order(s Solutions, conds []sparql.OrderCond) Solutions {
	out := s.Clone()
	sort.SliceStable(out, func(i, j int) bool {
		for _, c := range conds {
			vi, erri := EvalExpr(c.Expr, out[i])
			vj, errj := EvalExpr(c.Expr, out[j])
			var cmp int
			switch {
			case erri != nil && errj != nil:
				cmp = 0
			case erri != nil:
				cmp = -1
			case errj != nil:
				cmp = 1
			default:
				cmp = rdf.Compare(vi.Term, vj.Term)
			}
			if c.Desc {
				cmp = -cmp
			}
			if cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	return out
}

// Construct instantiates a CONSTRUCT template against the solutions and
// returns the resulting (deduplicated) triples; template triples with
// unbound variables are skipped per the SPARQL semantics.
func Construct(template []rdf.Triple, s Solutions) []rdf.Triple {
	seen := map[rdf.Triple]bool{}
	var out []rdf.Triple
	for _, b := range s {
		for _, pat := range template {
			t := Substitute(pat, b)
			if !t.IsConcrete() || seen[t] {
				continue
			}
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
