// Package sparql implements a self-contained SPARQL 1.0 front end: a
// lexer, an abstract syntax tree and a recursive-descent parser covering
// the query forms, graph patterns and solution-sequence modifiers used by
// the paper (SELECT/ASK/CONSTRUCT/DESCRIBE, basic graph patterns, UNION,
// OPTIONAL, FILTER with built-in calls, PREFIX/BASE, FROM/FROM NAMED,
// ORDER BY, DISTINCT/REDUCED, LIMIT/OFFSET).
package sparql

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind enumerates lexical token classes.
type tokenKind int

const (
	tokEOF     tokenKind = iota
	tokIdent             // bare word: keyword, boolean literal or "a"
	tokIRIRef            // <...>
	tokPName             // prefix:local, prefix:, or :local
	tokVar               // ?name or $name
	tokString            // quoted string with escapes resolved
	tokNumber            // integer/decimal/double lexical form
	tokLangTag           // @tag
	tokLBrace            // {
	tokRBrace            // }
	tokLParen            // (
	tokRParen            // )
	tokDot               // .
	tokSemi              // ;
	tokComma             // ,
	tokEq                // =
	tokNeq               // !=
	tokLt                // <
	tokGt                // >
	tokLe                // <=
	tokGe                // >=
	tokAndAnd            // &&
	tokOrOr              // ||
	tokBang              // !
	tokPlus              // +
	tokMinus             // -
	tokStar              // *
	tokSlash             // /
	tokHatHat            // ^^
)

func (k tokenKind) String() string {
	names := map[tokenKind]string{
		tokEOF: "end of input", tokIdent: "identifier", tokIRIRef: "IRI",
		tokPName: "prefixed name", tokVar: "variable", tokString: "string",
		tokNumber: "number", tokLangTag: "language tag", tokLBrace: "'{'",
		tokRBrace: "'}'", tokLParen: "'('", tokRParen: "')'", tokDot: "'.'",
		tokSemi: "';'", tokComma: "','", tokEq: "'='", tokNeq: "'!='",
		tokLt: "'<'", tokGt: "'>'", tokLe: "'<='", tokGe: "'>='",
		tokAndAnd: "'&&'", tokOrOr: "'||'", tokBang: "'!'", tokPlus: "'+'",
		tokMinus: "'-'", tokStar: "'*'", tokSlash: "'/'", tokHatHat: "'^^'",
	}
	if s, ok := names[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", int(k))
}

// token is one lexical token with its source position.
type token struct {
	kind tokenKind
	text string // semantic text (escapes resolved for strings)
	line int
	col  int
}

// lexer turns a query string into tokens. It is position-aware for error
// reporting and understands SPARQL comments (# to end of line).
type lexer struct {
	in   string
	pos  int
	line int
	col  int
}

func newLexer(in string) *lexer { return &lexer{in: in, line: 1, col: 1} }

// SyntaxError is returned for lexical and grammatical errors, carrying the
// 1-based source position.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sparql: %d:%d: %s", e.Line, e.Col, e.Msg)
}

func (l *lexer) errf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.in) {
		return 0
	}
	return l.in[l.pos]
}

func (l *lexer) peekByteAt(off int) byte {
	if l.pos+off >= len(l.in) {
		return 0
	}
	return l.in[l.pos+off]
}

func (l *lexer) advance() byte {
	c := l.in[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			l.advance()
			continue
		}
		if c == '#' {
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.advance()
			}
			continue
		}
		break
	}
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	startLine, startCol := l.line, l.col
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, line: startLine, col: startCol}
	}
	if l.pos >= len(l.in) {
		return mk(tokEOF, ""), nil
	}
	c := l.peekByte()
	switch c {
	case '{':
		l.advance()
		return mk(tokLBrace, "{"), nil
	case '}':
		l.advance()
		return mk(tokRBrace, "}"), nil
	case '(':
		l.advance()
		return mk(tokLParen, "("), nil
	case ')':
		l.advance()
		return mk(tokRParen, ")"), nil
	case ';':
		l.advance()
		return mk(tokSemi, ";"), nil
	case ',':
		l.advance()
		return mk(tokComma, ","), nil
	case '*':
		l.advance()
		return mk(tokStar, "*"), nil
	case '/':
		l.advance()
		return mk(tokSlash, "/"), nil
	case '+':
		l.advance()
		return mk(tokPlus, "+"), nil
	case '-':
		l.advance()
		return mk(tokMinus, "-"), nil
	case '=':
		l.advance()
		return mk(tokEq, "="), nil
	case '!':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokNeq, "!="), nil
		}
		return mk(tokBang, "!"), nil
	case '&':
		l.advance()
		if l.peekByte() != '&' {
			return token{}, l.errf("expected '&&'")
		}
		l.advance()
		return mk(tokAndAnd, "&&"), nil
	case '|':
		l.advance()
		if l.peekByte() != '|' {
			return token{}, l.errf("expected '||'")
		}
		l.advance()
		return mk(tokOrOr, "||"), nil
	case '^':
		l.advance()
		if l.peekByte() != '^' {
			return token{}, l.errf("expected '^^'")
		}
		l.advance()
		return mk(tokHatHat, "^^"), nil
	case '<':
		// '<' begins an IRI ref if followed by IRI characters and a closing
		// '>' on the same token, otherwise it is the less-than operator.
		if l.looksLikeIRIRef() {
			return l.lexIRIRef(mk)
		}
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokLe, "<="), nil
		}
		return mk(tokLt, "<"), nil
	case '>':
		l.advance()
		if l.peekByte() == '=' {
			l.advance()
			return mk(tokGe, ">="), nil
		}
		return mk(tokGt, ">"), nil
	case '?', '$':
		return l.lexVar(mk)
	case '"', '\'':
		return l.lexString(mk)
	case '@':
		return l.lexLangTag(mk)
	case '.':
		// distinguish '.' terminator from a decimal number like ".5"
		if d := l.peekByteAt(1); d >= '0' && d <= '9' {
			return l.lexNumber(mk)
		}
		l.advance()
		return mk(tokDot, "."), nil
	}
	if c >= '0' && c <= '9' {
		return l.lexNumber(mk)
	}
	// Decode a full rune: a raw byte like 0xe6 casts to a letter rune but is
	// not valid UTF-8 on its own, and must not reach lexWord, which would
	// consume nothing and loop the parser forever.
	r, _ := utf8.DecodeRuneInString(l.in[l.pos:])
	if isPNCharsBase(r) || c == ':' || c == '_' {
		return l.lexWord(mk)
	}
	return token{}, l.errf("unexpected character %q", c)
}

// looksLikeIRIRef scans ahead for '>' before whitespace, to disambiguate
// IRI references from the '<' comparison operator.
func (l *lexer) looksLikeIRIRef() bool {
	for i := l.pos + 1; i < len(l.in); i++ {
		switch l.in[i] {
		case '>':
			return true
		case ' ', '\t', '\n', '\r', '<', '"':
			return false
		}
	}
	return false
}

func (l *lexer) lexIRIRef(mk func(tokenKind, string) token) (token, error) {
	l.advance() // '<'
	var sb strings.Builder
	for l.pos < len(l.in) {
		c := l.advance()
		if c == '>' {
			return mk(tokIRIRef, sb.String()), nil
		}
		sb.WriteByte(c)
	}
	return token{}, l.errf("unterminated IRI reference")
}

func (l *lexer) lexVar(mk func(tokenKind, string) token) (token, error) {
	l.advance() // '?' or '$'
	var sb strings.Builder
	for l.pos < len(l.in) {
		r, sz := utf8.DecodeRuneInString(l.in[l.pos:])
		if !isVarNameChar(r) {
			break
		}
		sb.WriteRune(r)
		for i := 0; i < sz; i++ {
			l.advance()
		}
	}
	if sb.Len() == 0 {
		return token{}, l.errf("empty variable name")
	}
	return mk(tokVar, sb.String()), nil
}

func (l *lexer) lexString(mk func(tokenKind, string) token) (token, error) {
	quote := l.advance()
	var sb strings.Builder
	for l.pos < len(l.in) {
		c := l.advance()
		if c == quote {
			return mk(tokString, sb.String()), nil
		}
		if c == '\n' {
			return token{}, l.errf("newline in string literal")
		}
		if c == '\\' {
			if l.pos >= len(l.in) {
				break
			}
			switch e := l.advance(); e {
			case 'n':
				sb.WriteByte('\n')
			case 'r':
				sb.WriteByte('\r')
			case 't':
				sb.WriteByte('\t')
			case '\\':
				sb.WriteByte('\\')
			case '\'':
				sb.WriteByte('\'')
			case '"':
				sb.WriteByte('"')
			case 'u', 'U':
				width := 4
				if e == 'U' {
					width = 8
				}
				if l.pos+width > len(l.in) {
					return token{}, l.errf("truncated unicode escape")
				}
				var r rune
				if _, err := fmt.Sscanf(l.in[l.pos:l.pos+width], "%x", &r); err != nil {
					return token{}, l.errf("invalid unicode escape")
				}
				for i := 0; i < width; i++ {
					l.advance()
				}
				sb.WriteRune(r)
			default:
				return token{}, l.errf("unknown escape \\%c", e)
			}
			continue
		}
		sb.WriteByte(c)
	}
	return token{}, l.errf("unterminated string literal")
}

func (l *lexer) lexLangTag(mk func(tokenKind, string) token) (token, error) {
	l.advance() // '@'
	var sb strings.Builder
	for l.pos < len(l.in) {
		c := l.peekByte()
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' {
			sb.WriteByte(c)
			l.advance()
			continue
		}
		break
	}
	if sb.Len() == 0 {
		return token{}, l.errf("empty language tag")
	}
	return mk(tokLangTag, sb.String()), nil
}

func (l *lexer) lexNumber(mk func(tokenKind, string) token) (token, error) {
	var sb strings.Builder
	seenDot, seenExp := false, false
	for l.pos < len(l.in) {
		c := l.peekByte()
		switch {
		case c >= '0' && c <= '9':
			sb.WriteByte(c)
			l.advance()
		case c == '.' && !seenDot && !seenExp:
			// only part of the number if followed by a digit
			if d := l.peekByteAt(1); d < '0' || d > '9' {
				goto done
			}
			seenDot = true
			sb.WriteByte(c)
			l.advance()
		case (c == 'e' || c == 'E') && !seenExp:
			seenExp = true
			sb.WriteByte(c)
			l.advance()
			if s := l.peekByte(); s == '+' || s == '-' {
				sb.WriteByte(s)
				l.advance()
			}
		default:
			goto done
		}
	}
done:
	if sb.Len() == 0 {
		return token{}, l.errf("malformed number")
	}
	return mk(tokNumber, sb.String()), nil
}

// lexWord scans a bare identifier (keyword or boolean) or a prefixed name.
func (l *lexer) lexWord(mk func(tokenKind, string) token) (token, error) {
	var sb strings.Builder
	hasColon := false
	for l.pos < len(l.in) {
		r, sz := utf8.DecodeRuneInString(l.in[l.pos:])
		if r == ':' {
			hasColon = true
			sb.WriteRune(r)
			for i := 0; i < sz; i++ {
				l.advance()
			}
			continue
		}
		if !isPNChar(r) {
			break
		}
		sb.WriteRune(r)
		for i := 0; i < sz; i++ {
			l.advance()
		}
	}
	if sb.Len() == 0 {
		// Never emit an empty token: consuming no input here would make the
		// parser spin on the same position.
		return token{}, l.errf("unexpected character %q", l.in[l.pos])
	}
	if hasColon {
		return mk(tokPName, sb.String()), nil
	}
	return mk(tokIdent, sb.String()), nil
}

func isPNCharsBase(r rune) bool {
	return unicode.IsLetter(r)
}

func isPNChar(r rune) bool {
	// '.' is deliberately excluded so that the triple terminator directly
	// after a prefixed name (e.g. "ns:me.") lexes as two tokens.
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func isVarNameChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_'
}
