package sparql

import (
	"fmt"
	"strings"

	"adhocshare/internal/rdf"
)

// Parse parses a complete SPARQL query string into its AST.
func Parse(query string) (*Query, error) {
	p, err := newParser(query)
	if err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	return q, nil
}

// parser is a single-pass recursive-descent parser with one token of
// lookahead over the token stream produced by the lexer.
type parser struct {
	toks []token
	pos  int
	q    *Query
}

func newParser(in string) (*parser, error) {
	lx := newLexer(in)
	var toks []token
	for {
		t, err := lx.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			break
		}
	}
	return &parser{toks: toks}, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token { // one token ahead of cur
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// keyword reports whether the current token is the given keyword
// (case-insensitive bare identifier).
func (p *parser) keyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) expectKeyword(kw string) error {
	if !p.keyword(kw) {
		return p.errf("expected %s, found %s %q", kw, p.cur().kind, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) expect(k tokenKind) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errf("expected %s, found %s %q", k, p.cur().kind, p.cur().text)
	}
	return p.advance(), nil
}

func (p *parser) parseQuery() (*Query, error) {
	p.q = &Query{
		Prefixes: map[string]string{},
		Limit:    -1,
		Offset:   -1,
	}
	if err := p.parsePrologue(); err != nil {
		return nil, err
	}
	switch {
	case p.keyword("SELECT"):
		if err := p.parseSelect(); err != nil {
			return nil, err
		}
	case p.keyword("ASK"):
		if err := p.parseAsk(); err != nil {
			return nil, err
		}
	case p.keyword("CONSTRUCT"):
		if err := p.parseConstruct(); err != nil {
			return nil, err
		}
	case p.keyword("DESCRIBE"):
		if err := p.parseDescribe(); err != nil {
			return nil, err
		}
	default:
		return nil, p.errf("expected SELECT, ASK, CONSTRUCT or DESCRIBE, found %q", p.cur().text)
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	if err := validate(p.q); err != nil {
		return nil, err
	}
	return p.q, nil
}

func (p *parser) parsePrologue() error {
	for {
		switch {
		case p.keyword("BASE"):
			p.advance()
			t, err := p.expect(tokIRIRef)
			if err != nil {
				return err
			}
			p.q.Base = t.text
		case p.keyword("PREFIX"):
			p.advance()
			name, err := p.expect(tokPName)
			if err != nil {
				return err
			}
			if !strings.HasSuffix(name.text, ":") {
				return p.errf("prefix declaration must end with ':'")
			}
			iri, err := p.expect(tokIRIRef)
			if err != nil {
				return err
			}
			p.q.Prefixes[strings.TrimSuffix(name.text, ":")] = iri.text
		default:
			return nil
		}
	}
}

func (p *parser) parseSelect() error {
	p.q.Form = FormSelect
	p.advance() // SELECT
	if p.keyword("DISTINCT") {
		p.q.Distinct = true
		p.advance()
	} else if p.keyword("REDUCED") {
		p.q.Reduced = true
		p.advance()
	}
	if p.cur().kind == tokStar {
		p.q.Star = true
		p.advance()
	} else {
		for p.cur().kind == tokVar {
			p.q.SelectVars = append(p.q.SelectVars, p.advance().text)
		}
		if len(p.q.SelectVars) == 0 {
			return p.errf("SELECT requires '*' or at least one variable")
		}
	}
	if err := p.parseDatasetClauses(); err != nil {
		return err
	}
	if err := p.parseWhere(); err != nil {
		return err
	}
	return p.parseSolutionModifier()
}

func (p *parser) parseAsk() error {
	p.q.Form = FormAsk
	p.advance() // ASK
	if err := p.parseDatasetClauses(); err != nil {
		return err
	}
	return p.parseWhere()
}

func (p *parser) parseConstruct() error {
	p.q.Form = FormConstruct
	p.advance() // CONSTRUCT
	if _, err := p.expect(tokLBrace); err != nil {
		return err
	}
	tmpl, err := p.parseTriplesBlock()
	if err != nil {
		return err
	}
	p.q.Template = tmpl
	if _, err := p.expect(tokRBrace); err != nil {
		return err
	}
	if err := p.parseDatasetClauses(); err != nil {
		return err
	}
	if err := p.parseWhere(); err != nil {
		return err
	}
	return p.parseSolutionModifier()
}

func (p *parser) parseDescribe() error {
	p.q.Form = FormDescribe
	p.advance() // DESCRIBE
	if p.cur().kind == tokStar {
		p.q.Star = true
		p.advance()
	} else {
		for {
			switch p.cur().kind {
			case tokVar:
				p.q.DescribeTerms = append(p.q.DescribeTerms, rdf.NewVar(p.advance().text))
				continue
			case tokIRIRef, tokPName:
				t, err := p.parseIRITerm()
				if err != nil {
					return err
				}
				p.q.DescribeTerms = append(p.q.DescribeTerms, t)
				continue
			}
			break
		}
		if len(p.q.DescribeTerms) == 0 {
			return p.errf("DESCRIBE requires '*' or at least one resource")
		}
	}
	if err := p.parseDatasetClauses(); err != nil {
		return err
	}
	// WHERE clause is optional for DESCRIBE.
	if p.keyword("WHERE") || p.cur().kind == tokLBrace {
		if err := p.parseWhere(); err != nil {
			return err
		}
	}
	return p.parseSolutionModifier()
}

func (p *parser) parseDatasetClauses() error {
	for p.keyword("FROM") {
		p.advance()
		named := false
		if p.keyword("NAMED") {
			named = true
			p.advance()
		}
		t, err := p.parseIRITerm()
		if err != nil {
			return err
		}
		if named {
			p.q.FromNamed = append(p.q.FromNamed, t.Value)
		} else {
			p.q.From = append(p.q.From, t.Value)
		}
	}
	return nil
}

func (p *parser) parseWhere() error {
	if p.keyword("WHERE") {
		p.advance()
	}
	gp, err := p.parseGroupGraphPattern()
	if err != nil {
		return err
	}
	p.q.Where = gp
	return nil
}

// parseGroupGraphPattern parses '{' ... '}'.
func (p *parser) parseGroupGraphPattern() (GraphPattern, error) {
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	group := &Group{}
	for {
		switch {
		case p.cur().kind == tokRBrace:
			p.advance()
			return normalizeGroup(group), nil
		case p.keyword("OPTIONAL"):
			p.advance()
			inner, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			group.Elems = append(group.Elems, &Optional{Pattern: inner})
			p.eatOptionalDot()
		case p.keyword("GRAPH"):
			p.advance()
			var name rdf.Term
			if p.cur().kind == tokVar {
				name = rdf.NewVar(p.advance().text)
			} else {
				var err error
				name, err = p.parseIRITerm()
				if err != nil {
					return nil, err
				}
			}
			inner, err := p.parseGroupGraphPattern()
			if err != nil {
				return nil, err
			}
			group.Elems = append(group.Elems, &GraphPat{Name: name, Pattern: inner})
			p.eatOptionalDot()
		case p.keyword("FILTER"):
			p.advance()
			expr, err := p.parseConstraint()
			if err != nil {
				return nil, err
			}
			group.Elems = append(group.Elems, &Filter{Expr: expr})
			p.eatOptionalDot()
		case p.cur().kind == tokLBrace:
			sub, err := p.parseGroupOrUnion()
			if err != nil {
				return nil, err
			}
			group.Elems = append(group.Elems, sub)
			p.eatOptionalDot()
		case p.cur().kind == tokEOF:
			return nil, p.errf("unterminated group graph pattern")
		default:
			bgp, err := p.parseTriplesBlock()
			if err != nil {
				return nil, err
			}
			if len(bgp) == 0 {
				return nil, p.errf("expected graph pattern, found %q", p.cur().text)
			}
			// Adjacent triples blocks in one group form a single BGP; merging
			// them also makes the canonical serialization a fixed point.
			if n := len(group.Elems); n > 0 {
				if last, ok := group.Elems[n-1].(*BGP); ok {
					last.Patterns = append(last.Patterns, bgp...)
					continue
				}
			}
			group.Elems = append(group.Elems, &BGP{Patterns: bgp})
		}
	}
}

func (p *parser) eatOptionalDot() {
	if p.cur().kind == tokDot {
		p.advance()
	}
}

// parseGroupOrUnion parses Group ('UNION' Group)*.
func (p *parser) parseGroupOrUnion() (GraphPattern, error) {
	left, err := p.parseGroupGraphPattern()
	if err != nil {
		return nil, err
	}
	for p.keyword("UNION") {
		p.advance()
		right, err := p.parseGroupGraphPattern()
		if err != nil {
			return nil, err
		}
		left = &Union{Left: left, Right: right}
	}
	return left, nil
}

// normalizeGroup unwraps single-element groups without filters so the AST
// stays small; a group of one BGP is just the BGP.
func normalizeGroup(g *Group) GraphPattern {
	if len(g.Elems) == 1 {
		switch g.Elems[0].(type) {
		case *BGP, *Union, *Group, *GraphPat:
			return g.Elems[0]
		}
	}
	return g
}

// parseTriplesBlock parses a sequence of triples-same-subject clauses,
// supporting the ';' predicate-list and ',' object-list abbreviations used
// by the paper's Fig. 9 query.
func (p *parser) parseTriplesBlock() ([]rdf.Triple, error) {
	var out []rdf.Triple
	for {
		if !p.startsTerm() {
			return out, nil
		}
		subj, err := p.parseVarOrTerm()
		if err != nil {
			return nil, err
		}
		for {
			pred, err := p.parseVerb()
			if err != nil {
				return nil, err
			}
			for {
				obj, err := p.parseVarOrTerm()
				if err != nil {
					return nil, err
				}
				out = append(out, rdf.Triple{S: subj, P: pred, O: obj})
				if p.cur().kind == tokComma {
					p.advance()
					continue
				}
				break
			}
			if p.cur().kind == tokSemi {
				p.advance()
				// allow trailing ';' before '.' or '}'
				if p.startsVerb() {
					continue
				}
			}
			break
		}
		if p.cur().kind == tokDot {
			p.advance()
			continue
		}
		return out, nil
	}
}

func (p *parser) startsTerm() bool {
	switch p.cur().kind {
	case tokVar, tokIRIRef, tokPName, tokString, tokNumber:
		return true
	case tokIdent:
		t := p.cur().text
		return strings.EqualFold(t, "true") || strings.EqualFold(t, "false")
	case tokLt:
		return false
	default:
		return false
	}
}

func (p *parser) startsVerb() bool {
	switch p.cur().kind {
	case tokVar, tokIRIRef, tokPName:
		return true
	case tokIdent:
		return strings.EqualFold(p.cur().text, "a")
	default:
		return false
	}
}

// parseVerb parses a predicate: variable, IRI or the keyword 'a'.
func (p *parser) parseVerb() (rdf.Term, error) {
	if p.cur().kind == tokIdent && strings.EqualFold(p.cur().text, "a") {
		p.advance()
		return rdf.NewIRI(rdf.RDFType), nil
	}
	if p.cur().kind == tokVar {
		return rdf.NewVar(p.advance().text), nil
	}
	return p.parseIRITerm()
}

// parseVarOrTerm parses a subject/object: variable, IRI, literal or blank.
func (p *parser) parseVarOrTerm() (rdf.Term, error) {
	switch t := p.cur(); t.kind {
	case tokVar:
		p.advance()
		return rdf.NewVar(t.text), nil
	case tokIRIRef, tokPName:
		return p.parseIRITerm()
	case tokString:
		return p.parseLiteralTerm()
	case tokNumber:
		p.advance()
		return numberTerm(t.text), nil
	case tokIdent:
		switch {
		case strings.EqualFold(t.text, "true"):
			p.advance()
			return rdf.NewBoolean(true), nil
		case strings.EqualFold(t.text, "false"):
			p.advance()
			return rdf.NewBoolean(false), nil
		}
	}
	return rdf.Term{}, p.errf("expected term, found %s %q", p.cur().kind, p.cur().text)
}

// parseIRITerm resolves an IRIREF or prefixed name to an IRI term, applying
// BASE and PREFIX declarations. Blank-node syntax _:x is lexed as a PName
// with prefix "_".
func (p *parser) parseIRITerm() (rdf.Term, error) {
	switch t := p.cur(); t.kind {
	case tokIRIRef:
		p.advance()
		return rdf.NewIRI(p.resolveIRI(t.text)), nil
	case tokPName:
		p.advance()
		i := strings.IndexByte(t.text, ':')
		prefix, local := t.text[:i], t.text[i+1:]
		if prefix == "_" {
			return rdf.NewBlank(local), nil
		}
		ns, ok := p.q.Prefixes[prefix]
		if !ok {
			return rdf.Term{}, &SyntaxError{Line: t.line, Col: t.col,
				Msg: fmt.Sprintf("undeclared prefix %q", prefix)}
		}
		return rdf.NewIRI(ns + local), nil
	default:
		return rdf.Term{}, p.errf("expected IRI, found %s %q", t.kind, t.text)
	}
}

func (p *parser) resolveIRI(iri string) string {
	if p.q.Base == "" || strings.Contains(iri, "://") || strings.HasPrefix(iri, "urn:") || strings.HasPrefix(iri, "mailto:") {
		return iri
	}
	return p.q.Base + iri
}

func (p *parser) parseLiteralTerm() (rdf.Term, error) {
	t := p.advance() // string token
	switch p.cur().kind {
	case tokLangTag:
		lang := p.advance().text
		return rdf.NewLangLiteral(t.text, lang), nil
	case tokHatHat:
		p.advance()
		dt, err := p.parseIRITerm()
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.NewTypedLiteral(t.text, dt.Value), nil
	default:
		return rdf.NewLiteral(t.text), nil
	}
}

func numberTerm(lexical string) rdf.Term {
	if strings.ContainsAny(lexical, "eE") {
		return rdf.NewTypedLiteral(lexical, rdf.XSDDouble)
	}
	if strings.ContainsRune(lexical, '.') {
		return rdf.NewTypedLiteral(lexical, rdf.XSDDecimal)
	}
	return rdf.NewTypedLiteral(lexical, rdf.XSDInteger)
}

// parseConstraint parses a FILTER constraint: a bracketted expression or a
// built-in call.
func (p *parser) parseConstraint() (Expression, error) {
	if p.cur().kind == tokLParen {
		p.advance()
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	}
	if p.cur().kind == tokIdent {
		return p.parseBuiltInCall()
	}
	return nil, p.errf("expected '(' or built-in call after FILTER")
}

// builtins maps the supported built-in function names to their arity range.
var builtins = map[string][2]int{
	"BOUND": {1, 1}, "ISIRI": {1, 1}, "ISURI": {1, 1}, "ISBLANK": {1, 1},
	"ISLITERAL": {1, 1}, "STR": {1, 1}, "LANG": {1, 1}, "DATATYPE": {1, 1},
	"REGEX": {2, 3}, "SAMETERM": {2, 2}, "LANGMATCHES": {2, 2},
}

func (p *parser) parseBuiltInCall() (Expression, error) {
	t := p.cur()
	name := strings.ToUpper(t.text)
	arity, ok := builtins[name]
	if !ok {
		return nil, p.errf("unknown built-in function %q", t.text)
	}
	p.advance()
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var args []Expression
	if p.cur().kind != tokRParen {
		for {
			a, err := p.parseExpression()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.cur().kind == tokComma {
				p.advance()
				continue
			}
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if len(args) < arity[0] || len(args) > arity[1] {
		return nil, p.errf("%s expects %d..%d arguments, got %d", name, arity[0], arity[1], len(args))
	}
	return &ExprCall{Name: name, Args: args}, nil
}

// Expression precedence climbing: || < && < relational < additive <
// multiplicative < unary < primary.

func (p *parser) parseExpression() (Expression, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOrOr {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &ExprOr{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expression, error) {
	left, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokAndAnd {
		p.advance()
		right, err := p.parseRelational()
		if err != nil {
			return nil, err
		}
		left = &ExprAnd{Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseRelational() (Expression, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	var op CmpOp
	switch p.cur().kind {
	case tokEq:
		op = CmpEq
	case tokNeq:
		op = CmpNeq
	case tokLt:
		op = CmpLt
	case tokGt:
		op = CmpGt
	case tokLe:
		op = CmpLe
	case tokGe:
		op = CmpGe
	default:
		return left, nil
	}
	p.advance()
	right, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &ExprCmp{Op: op, Left: left, Right: right}, nil
}

func (p *parser) parseAdditive() (Expression, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch p.cur().kind {
		case tokPlus:
			op = ArithAdd
		case tokMinus:
			op = ArithSub
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		left = &ExprArith{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseMultiplicative() (Expression, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op ArithOp
		switch p.cur().kind {
		case tokStar:
			op = ArithMul
		case tokSlash:
			op = ArithDiv
		default:
			return left, nil
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &ExprArith{Op: op, Left: left, Right: right}
	}
}

func (p *parser) parseUnary() (Expression, error) {
	switch p.cur().kind {
	case tokBang:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ExprNot{X: x}, nil
	case tokMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &ExprNeg{X: x}, nil
	case tokPlus:
		p.advance()
		return p.parseUnary()
	default:
		return p.parsePrimary()
	}
}

func (p *parser) parsePrimary() (Expression, error) {
	switch t := p.cur(); t.kind {
	case tokLParen:
		p.advance()
		e, err := p.parseExpression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokVar:
		p.advance()
		return &ExprVar{Name: t.text}, nil
	case tokString:
		lit, err := p.parseLiteralTerm()
		if err != nil {
			return nil, err
		}
		return &ExprTerm{Term: lit}, nil
	case tokNumber:
		p.advance()
		return &ExprTerm{Term: numberTerm(t.text)}, nil
	case tokIRIRef, tokPName:
		term, err := p.parseIRITerm()
		if err != nil {
			return nil, err
		}
		return &ExprTerm{Term: term}, nil
	case tokIdent:
		switch {
		case strings.EqualFold(t.text, "true"):
			p.advance()
			return &ExprTerm{Term: rdf.NewBoolean(true)}, nil
		case strings.EqualFold(t.text, "false"):
			p.advance()
			return &ExprTerm{Term: rdf.NewBoolean(false)}, nil
		default:
			return p.parseBuiltInCall()
		}
	default:
		return nil, p.errf("expected expression, found %s %q", t.kind, t.text)
	}
}

func (p *parser) parseSolutionModifier() error {
	if p.keyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			cond, ok, err := p.parseOrderCondition()
			if err != nil {
				return err
			}
			if !ok {
				break
			}
			p.q.OrderBy = append(p.q.OrderBy, cond)
		}
		if len(p.q.OrderBy) == 0 {
			return p.errf("ORDER BY requires at least one condition")
		}
	}
	for {
		switch {
		case p.keyword("LIMIT"):
			p.advance()
			n, err := p.expect(tokNumber)
			if err != nil {
				return err
			}
			var v int
			if _, err := fmt.Sscanf(n.text, "%d", &v); err != nil || v < 0 {
				return p.errf("invalid LIMIT %q", n.text)
			}
			p.q.Limit = v
		case p.keyword("OFFSET"):
			p.advance()
			n, err := p.expect(tokNumber)
			if err != nil {
				return err
			}
			var v int
			if _, err := fmt.Sscanf(n.text, "%d", &v); err != nil || v < 0 {
				return p.errf("invalid OFFSET %q", n.text)
			}
			p.q.Offset = v
		default:
			return nil
		}
	}
}

func (p *parser) parseOrderCondition() (OrderCond, bool, error) {
	switch {
	case p.keyword("ASC"), p.keyword("DESC"):
		desc := strings.EqualFold(p.cur().text, "DESC")
		p.advance()
		if _, err := p.expect(tokLParen); err != nil {
			return OrderCond{}, false, err
		}
		e, err := p.parseExpression()
		if err != nil {
			return OrderCond{}, false, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return OrderCond{}, false, err
		}
		return OrderCond{Expr: e, Desc: desc}, true, nil
	case p.cur().kind == tokVar:
		v := p.advance().text
		return OrderCond{Expr: &ExprVar{Name: v}}, true, nil
	case p.cur().kind == tokLParen:
		p.advance()
		e, err := p.parseExpression()
		if err != nil {
			return OrderCond{}, false, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return OrderCond{}, false, err
		}
		return OrderCond{Expr: e}, true, nil
	case p.cur().kind == tokIdent && isBuiltinName(p.cur().text):
		e, err := p.parseBuiltInCall()
		if err != nil {
			return OrderCond{}, false, err
		}
		return OrderCond{Expr: e}, true, nil
	default:
		return OrderCond{}, false, nil
	}
}

func isBuiltinName(s string) bool {
	_, ok := builtins[strings.ToUpper(s)]
	return ok
}

// validate applies post-parse semantic checks.
func validate(q *Query) error {
	if q.Where == nil && q.Form != FormDescribe {
		return &SyntaxError{Line: 1, Col: 1, Msg: "query has no WHERE clause"}
	}
	if q.Form == FormConstruct {
		for _, t := range q.Template {
			if t.S.Kind == rdf.KindLiteral {
				return &SyntaxError{Line: 1, Col: 1, Msg: "literal subject in CONSTRUCT template"}
			}
		}
	}
	if q.Form == FormSelect && !q.Star && q.Where != nil {
		inScope := map[string]bool{}
		for _, v := range q.Where.Vars() {
			inScope[v] = true
		}
		for _, v := range q.SelectVars {
			if !inScope[v] {
				return &SyntaxError{Line: 1, Col: 1,
					Msg: fmt.Sprintf("projected variable ?%s does not occur in the WHERE clause", v)}
			}
		}
	}
	return nil
}
