package sparql

import (
	"fmt"
	"strings"

	"adhocshare/internal/rdf"
)

// QueryForm enumerates the four SPARQL query forms (Sect. IV-A of the
// paper).
type QueryForm int

const (
	// FormSelect projects variable bindings.
	FormSelect QueryForm = iota
	// FormAsk returns a boolean.
	FormAsk
	// FormConstruct instantiates a triple template.
	FormConstruct
	// FormDescribe returns triples describing resources.
	FormDescribe
)

func (f QueryForm) String() string {
	switch f {
	case FormSelect:
		return "SELECT"
	case FormAsk:
		return "ASK"
	case FormConstruct:
		return "CONSTRUCT"
	case FormDescribe:
		return "DESCRIBE"
	default:
		return "UNKNOWN"
	}
}

// Query is the abstract syntax tree of one SPARQL query.
type Query struct {
	Base     string
	Prefixes map[string]string

	Form     QueryForm
	Distinct bool
	Reduced  bool
	// Star is true for SELECT * / DESCRIBE *.
	Star bool
	// SelectVars lists projected variable names for SELECT.
	SelectVars []string
	// DescribeTerms lists the IRIs/variables of a DESCRIBE form.
	DescribeTerms []rdf.Term
	// Template holds the CONSTRUCT triple template.
	Template []rdf.Triple

	// From and FromNamed carry the dataset clause IRIs. When both are empty
	// the dataset is the union of all storage-node data (paper Sect. IV-A).
	From      []string
	FromNamed []string

	Where GraphPattern

	OrderBy []OrderCond
	// Limit and Offset are -1 when unset.
	Limit  int
	Offset int
}

// OrderCond is one ORDER BY condition.
type OrderCond struct {
	Expr Expression
	Desc bool
}

// GraphPattern is the interface satisfied by all graph-pattern AST nodes.
type GraphPattern interface {
	fmt.Stringer
	// Vars returns every variable mentioned by the pattern, without
	// duplicates, in first-appearance order.
	Vars() []string
	isGraphPattern()
}

// BGP is a basic graph pattern: a set of triple patterns joined by AND
// (the "." concatenation operator, Sect. IV-B).
type BGP struct {
	Patterns []rdf.Triple
}

// Group is a braced sequence of patterns { e1 . e2 ... }. Per the SPARQL
// semantics its elements are joined; FILTERs inside apply to the whole
// group and OPTIONAL elements left-join against the group built so far.
type Group struct {
	Elems []GraphPattern
}

// Union is the UNION of two graph patterns.
type Union struct {
	Left, Right GraphPattern
}

// Optional marks its pattern as OPTIONAL relative to the enclosing group.
type Optional struct {
	Pattern GraphPattern
}

// Filter is a FILTER constraint element inside a group.
type Filter struct {
	Expr Expression
}

// GraphPat is a GRAPH name { ... } pattern: the inner pattern is matched
// against one named graph (constant IRI) or against every named graph of
// the dataset with the variable bound to the graph's IRI.
type GraphPat struct {
	Name    rdf.Term // IRI or variable
	Pattern GraphPattern
}

func (*BGP) isGraphPattern()      {}
func (*Group) isGraphPattern()    {}
func (*Union) isGraphPattern()    {}
func (*Optional) isGraphPattern() {}
func (*Filter) isGraphPattern()   {}
func (*GraphPat) isGraphPattern() {}

// String renders the BGP in query syntax.
func (b *BGP) String() string {
	var sb strings.Builder
	for i, t := range b.Patterns {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%s %s %s .", t.S, t.P, t.O)
	}
	return sb.String()
}

func (g *Group) String() string {
	parts := make([]string, len(g.Elems))
	for i, e := range g.Elems {
		parts[i] = e.String()
	}
	return "{ " + strings.Join(parts, " ") + " }"
}

func (u *Union) String() string {
	return fmt.Sprintf("%s UNION %s", u.Left, u.Right)
}

func (o *Optional) String() string {
	return "OPTIONAL " + o.Pattern.String()
}

func (f *Filter) String() string {
	return "FILTER(" + f.Expr.String() + ")"
}

func (g *GraphPat) String() string {
	return "GRAPH " + g.Name.String() + " " + g.Pattern.String()
}

// Vars implementations.

func (b *BGP) Vars() []string {
	return dedupVars(func(emit func(string)) {
		for _, t := range b.Patterns {
			for _, v := range t.Vars() {
				emit(v)
			}
		}
	})
}

func (g *Group) Vars() []string {
	return dedupVars(func(emit func(string)) {
		for _, e := range g.Elems {
			for _, v := range e.Vars() {
				emit(v)
			}
		}
	})
}

func (u *Union) Vars() []string {
	return dedupVars(func(emit func(string)) {
		for _, v := range u.Left.Vars() {
			emit(v)
		}
		for _, v := range u.Right.Vars() {
			emit(v)
		}
	})
}

func (o *Optional) Vars() []string { return o.Pattern.Vars() }

func (f *Filter) Vars() []string { return f.Expr.Vars() }

func (g *GraphPat) Vars() []string {
	return dedupVars(func(emit func(string)) {
		if g.Name.IsVar() {
			emit(g.Name.Value)
		}
		for _, v := range g.Pattern.Vars() {
			emit(v)
		}
	})
}

func dedupVars(gen func(emit func(string))) []string {
	var out []string
	seen := map[string]bool{}
	gen(func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	})
	return out
}

// Expression is the interface satisfied by all FILTER/ORDER BY expression
// nodes.
//
// Expression trees are immutable after parsing: evaluation only reads
// them, so a pushed-down FILTER can ship between nodes without copying.
//
//adhoclint:wireimmutable expression trees are read-only after parse
type Expression interface {
	fmt.Stringer
	// Vars returns the variables referenced by the expression.
	Vars() []string
	isExpression()
}

// ExprVar references a variable's bound value.
type ExprVar struct{ Name string }

// ExprTerm is a constant RDF term (IRI or literal).
type ExprTerm struct{ Term rdf.Term }

// ExprOr is logical disjunction.
type ExprOr struct{ Left, Right Expression }

// ExprAnd is logical conjunction.
type ExprAnd struct{ Left, Right Expression }

// ExprNot is logical negation.
type ExprNot struct{ X Expression }

// ExprNeg is arithmetic unary minus.
type ExprNeg struct{ X Expression }

// CmpOp enumerates relational operators.
type CmpOp int

// Relational operators.
const (
	CmpEq CmpOp = iota
	CmpNeq
	CmpLt
	CmpGt
	CmpLe
	CmpGe
)

func (op CmpOp) String() string {
	return [...]string{"=", "!=", "<", ">", "<=", ">="}[op]
}

// ExprCmp is a relational comparison.
type ExprCmp struct {
	Op          CmpOp
	Left, Right Expression
}

// ArithOp enumerates arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	ArithAdd ArithOp = iota
	ArithSub
	ArithMul
	ArithDiv
)

func (op ArithOp) String() string {
	return [...]string{"+", "-", "*", "/"}[op]
}

// ExprArith is a binary arithmetic expression.
type ExprArith struct {
	Op          ArithOp
	Left, Right Expression
}

// ExprCall is a built-in function call such as REGEX, BOUND or STR. Name is
// stored upper-case.
type ExprCall struct {
	Name string
	Args []Expression
}

func (*ExprVar) isExpression()   {}
func (*ExprTerm) isExpression()  {}
func (*ExprOr) isExpression()    {}
func (*ExprAnd) isExpression()   {}
func (*ExprNot) isExpression()   {}
func (*ExprNeg) isExpression()   {}
func (*ExprCmp) isExpression()   {}
func (*ExprArith) isExpression() {}
func (*ExprCall) isExpression()  {}

func (e *ExprVar) String() string  { return "?" + e.Name }
func (e *ExprTerm) String() string { return e.Term.String() }
func (e *ExprOr) String() string {
	return fmt.Sprintf("(%s || %s)", e.Left, e.Right)
}
func (e *ExprAnd) String() string {
	return fmt.Sprintf("(%s && %s)", e.Left, e.Right)
}
func (e *ExprNot) String() string { return "!(" + e.X.String() + ")" }
func (e *ExprNeg) String() string { return "-(" + e.X.String() + ")" }
func (e *ExprCmp) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}
func (e *ExprArith) String() string {
	return fmt.Sprintf("(%s %s %s)", e.Left, e.Op, e.Right)
}
func (e *ExprCall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Name + "(" + strings.Join(args, ", ") + ")"
}

func (e *ExprVar) Vars() []string  { return []string{e.Name} }
func (e *ExprTerm) Vars() []string { return nil }
func (e *ExprOr) Vars() []string   { return mergeVars(e.Left.Vars(), e.Right.Vars()) }
func (e *ExprAnd) Vars() []string  { return mergeVars(e.Left.Vars(), e.Right.Vars()) }
func (e *ExprNot) Vars() []string  { return e.X.Vars() }
func (e *ExprNeg) Vars() []string  { return e.X.Vars() }
func (e *ExprCmp) Vars() []string  { return mergeVars(e.Left.Vars(), e.Right.Vars()) }
func (e *ExprArith) Vars() []string {
	return mergeVars(e.Left.Vars(), e.Right.Vars())
}
func (e *ExprCall) Vars() []string {
	var out []string
	for _, a := range e.Args {
		out = mergeVars(out, a.Vars())
	}
	return out
}

func mergeVars(a, b []string) []string {
	out := append([]string(nil), a...)
	seen := map[string]bool{}
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
