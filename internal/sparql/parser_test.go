package sparql

import (
	"strings"
	"testing"

	"adhocshare/internal/rdf"
)

const foaf = "http://xmlns.com/foaf/0.1/"
const ns = "http://example.org/ns#"

// paperFig4 is the SPARQL query of the paper's Fig. 4 (with the ORDER BY
// moved outside the braces where the grammar requires it).
const paperFig4 = `
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?x ?y ?z
FROM <http://example.org/foaf/xyzFoaf>
WHERE {
  ?x foaf:name ?name .
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
  ?y foaf:knows ?z .
  FILTER regex(?name, "Smith")
}
ORDER BY DESC(?x)
`

func TestParseFig4(t *testing.T) {
	q, err := Parse(paperFig4)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormSelect {
		t.Errorf("form = %v, want SELECT", q.Form)
	}
	if len(q.SelectVars) != 3 || q.SelectVars[0] != "x" || q.SelectVars[2] != "z" {
		t.Errorf("select vars = %v", q.SelectVars)
	}
	if len(q.From) != 1 || q.From[0] != "http://example.org/foaf/xyzFoaf" {
		t.Errorf("FROM = %v", q.From)
	}
	g, ok := q.Where.(*Group)
	if !ok {
		t.Fatalf("where = %T, want *Group", q.Where)
	}
	bgp, ok := g.Elems[0].(*BGP)
	if !ok {
		t.Fatalf("first elem = %T, want *BGP", g.Elems[0])
	}
	if len(bgp.Patterns) != 4 {
		t.Fatalf("BGP has %d patterns, want 4", len(bgp.Patterns))
	}
	if bgp.Patterns[0].P != rdf.NewIRI(foaf+"name") {
		t.Errorf("pattern 0 predicate = %v", bgp.Patterns[0].P)
	}
	if bgp.Patterns[2].P != rdf.NewIRI(ns+"knowsNothingAbout") {
		t.Errorf("pattern 2 predicate = %v", bgp.Patterns[2].P)
	}
	f, ok := g.Elems[1].(*Filter)
	if !ok {
		t.Fatalf("second elem = %T, want *Filter", g.Elems[1])
	}
	call, ok := f.Expr.(*ExprCall)
	if !ok || call.Name != "REGEX" || len(call.Args) != 2 {
		t.Errorf("filter expr = %v", f.Expr)
	}
	if len(q.OrderBy) != 1 || !q.OrderBy[0].Desc {
		t.Errorf("order by = %+v", q.OrderBy)
	}
}

func TestParsePrimitiveFig5(t *testing.T) {
	q, err := Parse(`
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?x WHERE { ?x foaf:knows ns:me . }`)
	if err != nil {
		t.Fatal(err)
	}
	bgp, ok := q.Where.(*BGP)
	if !ok {
		t.Fatalf("where = %T, want *BGP", q.Where)
	}
	if len(bgp.Patterns) != 1 {
		t.Fatalf("patterns = %d, want 1", len(bgp.Patterns))
	}
	p := bgp.Patterns[0]
	if !p.S.IsVar() || p.P != rdf.NewIRI(foaf+"knows") || p.O != rdf.NewIRI(ns+"me") {
		t.Errorf("pattern = %v", p)
	}
}

func TestParseOptionalFig7(t *testing.T) {
	q, err := Parse(`
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y
WHERE {
  { ?x foaf:name "Smith" .
    ?x foaf:knows ?y . }
  OPTIONAL { ?y foaf:nick "Shrek" . }
}`)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := q.Where.(*Group)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	if len(g.Elems) != 2 {
		t.Fatalf("group elems = %d, want 2", len(g.Elems))
	}
	if _, ok := g.Elems[0].(*BGP); !ok {
		t.Errorf("elem 0 = %T, want *BGP", g.Elems[0])
	}
	opt, ok := g.Elems[1].(*Optional)
	if !ok {
		t.Fatalf("elem 1 = %T, want *Optional", g.Elems[1])
	}
	if _, ok := opt.Pattern.(*BGP); !ok {
		t.Errorf("optional inner = %T, want *BGP", opt.Pattern)
	}
}

func TestParseUnionFig8(t *testing.T) {
	q, err := Parse(`
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y ?z
WHERE {
  { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
  UNION
  { ?x foaf:mbox <mailto:abc@example.org> . ?x foaf:knows ?z . }
}`)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := q.Where.(*Union)
	if !ok {
		t.Fatalf("where = %T, want *Union", q.Where)
	}
	lb, ok := u.Left.(*BGP)
	if !ok || len(lb.Patterns) != 2 {
		t.Errorf("left branch wrong: %v", u.Left)
	}
	rb, ok := u.Right.(*BGP)
	if !ok || len(rb.Patterns) != 2 {
		t.Errorf("right branch wrong: %v", u.Right)
	}
	if rb.Patterns[0].O != rdf.NewIRI("mailto:abc@example.org") {
		t.Errorf("mbox object = %v", rb.Patterns[0].O)
	}
}

func TestParseFilterFig9SemicolonAbbreviation(t *testing.T) {
	q, err := Parse(`
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?x ?y ?z
WHERE {
  ?x foaf:name ?name ;
     ns:knowsNothingAbout ?y .
  FILTER regex(?name, "Smith")
  OPTIONAL { ?y foaf:knows ?z . }
}`)
	if err != nil {
		t.Fatal(err)
	}
	g := q.Where.(*Group)
	bgp := g.Elems[0].(*BGP)
	if len(bgp.Patterns) != 2 {
		t.Fatalf("';' abbreviation produced %d patterns, want 2", len(bgp.Patterns))
	}
	if bgp.Patterns[0].S != bgp.Patterns[1].S {
		t.Error("';' abbreviation must share the subject")
	}
	if _, ok := g.Elems[1].(*Filter); !ok {
		t.Errorf("elem 1 = %T, want *Filter", g.Elems[1])
	}
	if _, ok := g.Elems[2].(*Optional); !ok {
		t.Errorf("elem 2 = %T, want *Optional", g.Elems[2])
	}
}

func TestParseObjectListComma(t *testing.T) {
	q, err := Parse(`PREFIX f: <http://f/> SELECT ?x WHERE { ?x f:likes f:a, f:b, f:c . }`)
	if err != nil {
		t.Fatal(err)
	}
	bgp := q.Where.(*BGP)
	if len(bgp.Patterns) != 3 {
		t.Fatalf("',' abbreviation produced %d patterns, want 3", len(bgp.Patterns))
	}
	for _, p := range bgp.Patterns {
		if p.P != rdf.NewIRI("http://f/likes") {
			t.Errorf("predicate = %v", p.P)
		}
	}
}

func TestParseAsk(t *testing.T) {
	q, err := Parse(`PREFIX f: <http://f/> ASK { f:a f:knows f:b . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormAsk {
		t.Errorf("form = %v, want ASK", q.Form)
	}
}

func TestParseConstruct(t *testing.T) {
	q, err := Parse(`
PREFIX f: <http://f/>
CONSTRUCT { ?x f:friendOf ?y . }
WHERE { ?x f:knows ?y . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormConstruct {
		t.Fatalf("form = %v", q.Form)
	}
	if len(q.Template) != 1 || q.Template[0].P != rdf.NewIRI("http://f/friendOf") {
		t.Errorf("template = %v", q.Template)
	}
}

func TestParseDescribe(t *testing.T) {
	q, err := Parse(`PREFIX f: <http://f/> DESCRIBE f:alice`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != FormDescribe || len(q.DescribeTerms) != 1 {
		t.Errorf("describe = %v %v", q.Form, q.DescribeTerms)
	}
	q2, err := Parse(`PREFIX f: <http://f/> DESCRIBE ?x WHERE { ?x f:knows f:bob . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q2.Where == nil {
		t.Error("describe with WHERE lost the pattern")
	}
}

func TestParseSelectStarDistinctLimitOffset(t *testing.T) {
	q, err := Parse(`PREFIX f: <http://f/>
SELECT DISTINCT * WHERE { ?s ?p ?o . } ORDER BY ?s LIMIT 10 OFFSET 5`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Star || !q.Distinct {
		t.Error("star/distinct flags wrong")
	}
	if q.Limit != 10 || q.Offset != 5 {
		t.Errorf("limit/offset = %d/%d", q.Limit, q.Offset)
	}
	if len(q.OrderBy) != 1 || q.OrderBy[0].Desc {
		t.Errorf("order by = %+v", q.OrderBy)
	}
}

func TestParseReduced(t *testing.T) {
	q, err := Parse(`SELECT REDUCED ?s WHERE { ?s ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Reduced || q.Distinct {
		t.Error("REDUCED flag wrong")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { ?x ?p ?v . FILTER(?v > 1 + 2 * 3 && ?v < 100 || bound(?x)) }`)
	if err != nil {
		t.Fatal(err)
	}
	g := q.Where.(*Group)
	f := g.Elems[1].(*Filter)
	or, ok := f.Expr.(*ExprOr)
	if !ok {
		t.Fatalf("top = %T, want *ExprOr", f.Expr)
	}
	and, ok := or.Left.(*ExprAnd)
	if !ok {
		t.Fatalf("or.left = %T, want *ExprAnd", or.Left)
	}
	cmp, ok := and.Left.(*ExprCmp)
	if !ok || cmp.Op != CmpGt {
		t.Fatalf("and.left = %v", and.Left)
	}
	add, ok := cmp.Right.(*ExprArith)
	if !ok || add.Op != ArithAdd {
		t.Fatalf("cmp.right = %v", cmp.Right)
	}
	if mul, ok := add.Right.(*ExprArith); !ok || mul.Op != ArithMul {
		t.Fatalf("mul did not bind tighter than add: %v", add.Right)
	}
	if call, ok := or.Right.(*ExprCall); !ok || call.Name != "BOUND" {
		t.Fatalf("or.right = %v", or.Right)
	}
}

func TestParseTypedAndLangLiterals(t *testing.T) {
	q, err := Parse(`PREFIX x: <http://www.w3.org/2001/XMLSchema#>
SELECT ?s WHERE { ?s <http://p> "5"^^x:integer . ?s <http://q> "hi"@en . ?s <http://r> 2.5 . ?s <http://t> true . }`)
	if err != nil {
		t.Fatal(err)
	}
	bgp := q.Where.(*BGP)
	if bgp.Patterns[0].O != rdf.NewTypedLiteral("5", rdf.XSDInteger) {
		t.Errorf("typed literal = %v", bgp.Patterns[0].O)
	}
	if bgp.Patterns[1].O != rdf.NewLangLiteral("hi", "en") {
		t.Errorf("lang literal = %v", bgp.Patterns[1].O)
	}
	if bgp.Patterns[2].O != rdf.NewTypedLiteral("2.5", rdf.XSDDecimal) {
		t.Errorf("decimal literal = %v", bgp.Patterns[2].O)
	}
	if bgp.Patterns[3].O != rdf.NewBoolean(true) {
		t.Errorf("boolean literal = %v", bgp.Patterns[3].O)
	}
}

func TestParseAKeyword(t *testing.T) {
	q, err := Parse(`PREFIX f: <http://f/> SELECT ?x WHERE { ?x a f:Person . }`)
	if err != nil {
		t.Fatal(err)
	}
	bgp := q.Where.(*BGP)
	if bgp.Patterns[0].P != rdf.NewIRI(rdf.RDFType) {
		t.Errorf("'a' predicate = %v", bgp.Patterns[0].P)
	}
}

func TestParseBlankNode(t *testing.T) {
	q, err := Parse(`SELECT ?x WHERE { _:b <http://p> ?x . }`)
	if err != nil {
		t.Fatal(err)
	}
	bgp := q.Where.(*BGP)
	if bgp.Patterns[0].S != rdf.NewBlank("b") {
		t.Errorf("blank subject = %v", bgp.Patterns[0].S)
	}
}

func TestParseBase(t *testing.T) {
	q, err := Parse(`BASE <http://example.org/> SELECT ?x WHERE { ?x <p/q> <http://abs/o> . }`)
	if err != nil {
		t.Fatal(err)
	}
	bgp := q.Where.(*BGP)
	if bgp.Patterns[0].P != rdf.NewIRI("http://example.org/p/q") {
		t.Errorf("relative IRI = %v", bgp.Patterns[0].P)
	}
	if bgp.Patterns[0].O != rdf.NewIRI("http://abs/o") {
		t.Errorf("absolute IRI = %v", bgp.Patterns[0].O)
	}
}

func TestParseFromNamed(t *testing.T) {
	q, err := Parse(`SELECT ?x FROM <http://g1> FROM NAMED <http://g2> WHERE { ?x ?p ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 1 || q.From[0] != "http://g1" {
		t.Errorf("FROM = %v", q.From)
	}
	if len(q.FromNamed) != 1 || q.FromNamed[0] != "http://g2" {
		t.Errorf("FROM NAMED = %v", q.FromNamed)
	}
}

func TestParseNestedUnions(t *testing.T) {
	q, err := Parse(`PREFIX f: <http://f/>
SELECT ?x WHERE { { ?x f:a f:b . } UNION { ?x f:c f:d . } UNION { ?x f:e f:f . } }`)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := q.Where.(*Union)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	// left-associative: (A UNION B) UNION C
	if _, ok := u.Left.(*Union); !ok {
		t.Errorf("UNION should be left-associative, left = %T", u.Left)
	}
}

func TestParseErrors(t *testing.T) {
	bad := map[string]string{
		"empty":              ``,
		"no where":           `SELECT ?x`,
		"unknown prefix":     `SELECT ?x WHERE { ?x undeclared:p ?y . }`,
		"bad projection":     `SELECT ?nope WHERE { ?x ?p ?o . }`,
		"unterminated group": `SELECT ?x WHERE { ?x ?p ?o .`,
		"unterminated str":   `SELECT ?x WHERE { ?x ?p "abc . }`,
		"trailing garbage":   `SELECT ?x WHERE { ?x ?p ?o . } garbage`,
		"bad builtin":        `SELECT ?x WHERE { ?x ?p ?o . FILTER nosuch(?x) }`,
		"regex arity":        `SELECT ?x WHERE { ?x ?p ?o . FILTER regex(?x) }`,
		"bad limit":          `SELECT ?x WHERE { ?x ?p ?o . } LIMIT abc`,
		"select no vars":     `SELECT WHERE { ?x ?p ?o . }`,
		"lone ampersand":     `SELECT ?x WHERE { ?x ?p ?o . FILTER(?x & ?x) }`,
		"empty var":          `SELECT ? WHERE { ?x ?p ?o . }`,
	}
	for name, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("%s: expected parse error for %q", name, src)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Errorf("%s: error type %T, want *SyntaxError", name, err)
		}
	}
}

func TestSyntaxErrorPosition(t *testing.T) {
	_, err := Parse("SELECT ?x\nWHERE { ?x ?p @@ }")
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if se.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Line)
	}
	if !strings.Contains(se.Error(), "sparql:") {
		t.Errorf("error message %q missing package prefix", se.Error())
	}
}

func TestGraphPatternVars(t *testing.T) {
	q, err := Parse(paperFig4)
	if err != nil {
		t.Fatal(err)
	}
	vars := q.Where.Vars()
	want := []string{"x", "name", "z", "y"}
	if len(vars) != len(want) {
		t.Fatalf("vars = %v, want %v", vars, want)
	}
	for i := range want {
		if vars[i] != want[i] {
			t.Errorf("vars[%d] = %q, want %q", i, vars[i], want[i])
		}
	}
}

func TestASTStringers(t *testing.T) {
	q, err := Parse(`PREFIX f: <http://f/>
SELECT ?x WHERE { { ?x f:a ?y . OPTIONAL { ?y f:b ?z . } FILTER(?y != ?z) } UNION { ?x f:c f:d . } }`)
	if err != nil {
		t.Fatal(err)
	}
	s := q.Where.String()
	for _, want := range []string{"UNION", "OPTIONAL", "FILTER", "?x"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestParseCommentsAndWhitespace(t *testing.T) {
	q, err := Parse(`
# leading comment
SELECT ?x # trailing comment
WHERE {
  # inner comment
  ?x <http://p> ?y .
}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Where.(*BGP).Patterns) != 1 {
		t.Error("comment handling broke pattern parsing")
	}
}

func TestParseGraphPattern(t *testing.T) {
	q, err := Parse(`PREFIX f: <http://f/>
SELECT ?g ?x WHERE {
  GRAPH ?g { ?x f:knows ?y . }
  GRAPH <http://meta> { ?x f:verified true . }
}`)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := q.Where.(*Group)
	if !ok {
		t.Fatalf("where = %T", q.Where)
	}
	gp1, ok := g.Elems[0].(*GraphPat)
	if !ok {
		t.Fatalf("elem 0 = %T", g.Elems[0])
	}
	if !gp1.Name.IsVar() || gp1.Name.Value != "g" {
		t.Errorf("graph name = %v", gp1.Name)
	}
	gp2, ok := g.Elems[1].(*GraphPat)
	if !ok {
		t.Fatalf("elem 1 = %T", g.Elems[1])
	}
	if gp2.Name != rdf.NewIRI("http://meta") {
		t.Errorf("graph name = %v", gp2.Name)
	}
	vars := q.Where.Vars()
	if vars[0] != "g" {
		t.Errorf("GRAPH var missing from Vars: %v", vars)
	}
}
