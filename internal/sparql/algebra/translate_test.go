package algebra

import (
	"strings"
	"testing"

	"adhocshare/internal/sparql"
)

func mustParse(t *testing.T, src string) *sparql.Query {
	t.Helper()
	q, err := sparql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func mustTranslate(t *testing.T, src string) Op {
	t.Helper()
	op, err := Translate(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return op
}

func TestTranslatePrimitive(t *testing.T) {
	op := mustTranslate(t, `PREFIX f: <http://f/>
SELECT ?x WHERE { ?x f:knows f:me . }`)
	proj, ok := op.(*Project)
	if !ok {
		t.Fatalf("root = %T, want *Project", op)
	}
	bgp, ok := proj.Input.(*BGP)
	if !ok {
		t.Fatalf("input = %T, want *BGP", proj.Input)
	}
	if len(bgp.Patterns) != 1 {
		t.Errorf("patterns = %d", len(bgp.Patterns))
	}
	if got := proj.Vars(); len(got) != 1 || got[0] != "x" {
		t.Errorf("project vars = %v", got)
	}
}

func TestTranslateConjunctionMergesBGPs(t *testing.T) {
	// Fig. 6: two triple patterns joined with AND become one BGP.
	op := mustTranslate(t, `PREFIX f: <http://f/> PREFIX n: <http://n/>
SELECT ?x ?y ?z WHERE { ?x f:knows ?z . ?x n:knowsNothingAbout ?y . }`)
	bgp, ok := op.(*Project).Input.(*BGP)
	if !ok {
		t.Fatalf("input = %T, want merged *BGP", op.(*Project).Input)
	}
	if len(bgp.Patterns) != 2 {
		t.Errorf("merged BGP has %d patterns, want 2", len(bgp.Patterns))
	}
}

func TestTranslateOptionalFig7(t *testing.T) {
	// Fig. 7 translates to LeftJoin(BGP(P1), BGP(P2), true).
	op := mustTranslate(t, `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y WHERE {
  { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
  OPTIONAL { ?y foaf:nick "Shrek" . }
}`)
	lj, ok := op.(*Project).Input.(*LeftJoin)
	if !ok {
		t.Fatalf("input = %T, want *LeftJoin", op.(*Project).Input)
	}
	if lj.Expr != nil {
		t.Errorf("LeftJoin expr = %v, want nil (true)", lj.Expr)
	}
	lb, ok := lj.Left.(*BGP)
	if !ok || len(lb.Patterns) != 2 {
		t.Errorf("left = %v", lj.Left)
	}
	rb, ok := lj.Right.(*BGP)
	if !ok || len(rb.Patterns) != 1 {
		t.Errorf("right = %v", lj.Right)
	}
	if !strings.Contains(op.String(), "LeftJoin(BGP(") {
		t.Errorf("String = %q", op.String())
	}
}

func TestTranslateOptionalWithEmbeddedFilter(t *testing.T) {
	op := mustTranslate(t, `PREFIX f: <http://f/>
SELECT ?x ?y WHERE {
  ?x f:knows ?y .
  OPTIONAL { ?y f:age ?a . FILTER(?a > 18) }
}`)
	lj := op.(*Project).Input.(*LeftJoin)
	if lj.Expr == nil {
		t.Fatal("embedded filter should become the LeftJoin condition")
	}
	if _, ok := lj.Expr.(*sparql.ExprCmp); !ok {
		t.Errorf("condition = %T", lj.Expr)
	}
	if _, ok := lj.Right.(*BGP); !ok {
		t.Errorf("right should be the unfiltered BGP, got %T", lj.Right)
	}
}

func TestTranslateUnionFig8(t *testing.T) {
	op := mustTranslate(t, `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y ?z WHERE {
  { ?x foaf:name "Smith" . ?x foaf:knows ?y . }
  UNION
  { ?x foaf:mbox <mailto:abc@example.org> . ?x foaf:knows ?z . }
}`)
	u, ok := op.(*Project).Input.(*Union)
	if !ok {
		t.Fatalf("input = %T, want *Union", op.(*Project).Input)
	}
	if _, ok := u.Left.(*BGP); !ok {
		t.Errorf("union left = %T", u.Left)
	}
	want := "Union(BGP("
	if !strings.Contains(op.String(), want) {
		t.Errorf("String = %q missing %q", op.String(), want)
	}
}

func TestTranslateFilterFig9(t *testing.T) {
	// Fig. 9 transforms to Filter(C1, LeftJoin(BGP(P1 . P2), BGP(P3), true)).
	op := mustTranslate(t, `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?x ?y ?z WHERE {
  ?x foaf:name ?name ;
     ns:knowsNothingAbout ?y .
  FILTER regex(?name, "Smith")
  OPTIONAL { ?y foaf:knows ?z . }
}`)
	f, ok := op.(*Project).Input.(*Filter)
	if !ok {
		t.Fatalf("input = %T, want *Filter", op.(*Project).Input)
	}
	lj, ok := f.Input.(*LeftJoin)
	if !ok {
		t.Fatalf("filter input = %T, want *LeftJoin", f.Input)
	}
	lb, ok := lj.Left.(*BGP)
	if !ok || len(lb.Patterns) != 2 {
		t.Errorf("left = %v", lj.Left)
	}
	s := op.String()
	if !strings.Contains(s, "Filter(REGEX(?name") || !strings.Contains(s, "LeftJoin(") {
		t.Errorf("String = %q", s)
	}
}

func TestTranslateModifiersOrder(t *testing.T) {
	op := mustTranslate(t, `SELECT DISTINCT ?s WHERE { ?s ?p ?o . } ORDER BY ?s LIMIT 5 OFFSET 2`)
	sl, ok := op.(*Slice)
	if !ok {
		t.Fatalf("root = %T, want *Slice", op)
	}
	if sl.Limit != 5 || sl.Offset != 2 {
		t.Errorf("slice = %+v", sl)
	}
	d, ok := sl.Input.(*Distinct)
	if !ok {
		t.Fatalf("slice input = %T, want *Distinct", sl.Input)
	}
	p, ok := d.Input.(*Project)
	if !ok {
		t.Fatalf("distinct input = %T, want *Project", d.Input)
	}
	if _, ok := p.Input.(*OrderBy); !ok {
		t.Fatalf("project input = %T, want *OrderBy", p.Input)
	}
}

func TestTranslateSelectStar(t *testing.T) {
	op := mustTranslate(t, `SELECT * WHERE { ?s ?p ?o . }`)
	p := op.(*Project)
	if len(p.Names) != 3 {
		t.Errorf("star projection = %v", p.Names)
	}
}

func TestTranslateAsk(t *testing.T) {
	op := mustTranslate(t, `ASK { <http://a> <http://b> <http://c> . }`)
	if _, ok := op.(*BGP); !ok {
		t.Errorf("ASK root = %T, want bare *BGP", op)
	}
}

func TestTranslateConstruct(t *testing.T) {
	op := mustTranslate(t, `PREFIX f: <http://f/>
CONSTRUCT { ?x f:friendOf ?y . } WHERE { ?x f:knows ?y . }`)
	p, ok := op.(*Project)
	if !ok {
		t.Fatalf("root = %T", op)
	}
	if len(p.Names) != 2 {
		t.Errorf("construct projection = %v", p.Names)
	}
}

func TestTranslateMultipleFiltersConjoined(t *testing.T) {
	op := mustTranslate(t, `SELECT ?x WHERE { ?x ?p ?v . FILTER(?v > 1) FILTER(?v < 9) }`)
	f, ok := op.(*Project).Input.(*Filter)
	if !ok {
		t.Fatalf("input = %T", op.(*Project).Input)
	}
	if _, ok := f.Expr.(*sparql.ExprAnd); !ok {
		t.Errorf("two FILTERs should conjoin, expr = %T", f.Expr)
	}
}

func TestWalkAndCount(t *testing.T) {
	op := mustTranslate(t, `SELECT ?x WHERE { { ?x ?p ?o . } UNION { ?x ?q ?r . } }`)
	n := CountOps(op)
	if n != 4 { // Project, Union, BGP, BGP
		t.Errorf("CountOps = %d, want 4", n)
	}
	kinds := map[string]int{}
	Walk(op, func(o Op) { kinds[strings.SplitN(o.String(), "(", 2)[0]]++ })
	if kinds["BGP"] != 2 || kinds["Union"] != 1 {
		t.Errorf("walk kinds = %v", kinds)
	}
}

func TestTranslateNestedGroupsFlatten(t *testing.T) {
	op := mustTranslate(t, `PREFIX f: <http://f/>
SELECT ?x WHERE { { { ?x f:a f:b . } } }`)
	if _, ok := op.(*Project).Input.(*BGP); !ok {
		t.Errorf("nested groups should normalize to BGP, got %T", op.(*Project).Input)
	}
}

func TestTranslateVarsPropagation(t *testing.T) {
	op := mustTranslate(t, `PREFIX f: <http://f/>
SELECT ?x ?z WHERE { ?x f:knows ?y . OPTIONAL { ?y f:nick ?z . } }`)
	inner := op.(*Project).Input
	vars := inner.Vars()
	if len(vars) != 3 {
		t.Errorf("leftjoin vars = %v, want x,y,z", vars)
	}
}
