package algebra

import (
	"strings"
	"testing"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql"
)

func v(s string) rdf.Term   { return rdf.NewVar(s) }
func iri(s string) rdf.Term { return rdf.NewIRI("http://t/" + s) }

func pat(s, p, o rdf.Term) rdf.Triple { return rdf.Triple{S: s, P: p, O: o} }

func TestOpChildren(t *testing.T) {
	bgp1 := &BGP{Patterns: []rdf.Triple{pat(v("x"), iri("p"), v("y"))}}
	bgp2 := &BGP{Patterns: []rdf.Triple{pat(v("y"), iri("q"), v("z"))}}
	expr := &sparql.ExprVar{Name: "x"}
	ops := []struct {
		op       Op
		children int
	}{
		{bgp1, 0},
		{&Join{Left: bgp1, Right: bgp2}, 2},
		{&LeftJoin{Left: bgp1, Right: bgp2}, 2},
		{&Union{Left: bgp1, Right: bgp2}, 2},
		{&Filter{Expr: expr, Input: bgp1}, 1},
		{&Project{Names: []string{"x"}, Input: bgp1}, 1},
		{&Distinct{Input: bgp1}, 1},
		{&Reduced{Input: bgp1}, 1},
		{&OrderBy{Conds: []sparql.OrderCond{{Expr: expr}}, Input: bgp1}, 1},
		{&Slice{Offset: 1, Limit: 2, Input: bgp1}, 1},
	}
	for _, c := range ops {
		if got := len(c.op.Children()); got != c.children {
			t.Errorf("%T children = %d, want %d", c.op, got, c.children)
		}
		if c.op.String() == "" {
			t.Errorf("%T has empty String()", c.op)
		}
	}
}

func TestOpVars(t *testing.T) {
	bgp1 := &BGP{Patterns: []rdf.Triple{pat(v("x"), iri("p"), v("y"))}}
	bgp2 := &BGP{Patterns: []rdf.Triple{pat(v("y"), iri("q"), v("z"))}}
	cases := []struct {
		op   Op
		want []string
	}{
		{bgp1, []string{"x", "y"}},
		{&Join{Left: bgp1, Right: bgp2}, []string{"x", "y", "z"}},
		{&LeftJoin{Left: bgp1, Right: bgp2}, []string{"x", "y", "z"}},
		{&Union{Left: bgp1, Right: bgp2}, []string{"x", "y", "z"}},
		{&Filter{Expr: &sparql.ExprVar{Name: "x"}, Input: bgp1}, []string{"x", "y"}},
		{&Project{Names: []string{"x"}, Input: bgp1}, []string{"x"}},
		{&Distinct{Input: bgp2}, []string{"y", "z"}},
		{&Reduced{Input: bgp2}, []string{"y", "z"}},
		{&OrderBy{Input: bgp1}, []string{"x", "y"}},
		{&Slice{Input: bgp1}, []string{"x", "y"}},
	}
	for _, c := range cases {
		got := c.op.Vars()
		if len(got) != len(c.want) {
			t.Errorf("%T vars = %v, want %v", c.op, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("%T vars = %v, want %v", c.op, got, c.want)
				break
			}
		}
	}
}

func TestStringRendersPaperNotation(t *testing.T) {
	// Fig. 9's transformed form: Filter(C1, LeftJoin(BGP(P1.P2), BGP(P3), true))
	op := &Filter{
		Expr: &sparql.ExprCall{Name: "REGEX", Args: []sparql.Expression{
			&sparql.ExprVar{Name: "name"},
			&sparql.ExprTerm{Term: rdf.NewLiteral("Smith")},
		}},
		Input: &LeftJoin{
			Left: &BGP{Patterns: []rdf.Triple{
				pat(v("x"), iri("name"), v("name")),
				pat(v("x"), iri("kna"), v("y")),
			}},
			Right: &BGP{Patterns: []rdf.Triple{pat(v("y"), iri("knows"), v("z"))}},
		},
	}
	s := op.String()
	for _, want := range []string{"Filter(REGEX(?name", "LeftJoin(BGP(", ", true)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	// explicit condition renders instead of true
	lj := &LeftJoin{
		Left:  &BGP{},
		Right: &BGP{},
		Expr:  &sparql.ExprVar{Name: "c"},
	}
	if !strings.Contains(lj.String(), "?c)") {
		t.Errorf("LeftJoin with condition = %q", lj.String())
	}
}

func TestOrderBySliceStrings(t *testing.T) {
	ob := &OrderBy{
		Conds: []sparql.OrderCond{
			{Expr: &sparql.ExprVar{Name: "a"}},
			{Expr: &sparql.ExprVar{Name: "b"}, Desc: true},
		},
		Input: &BGP{},
	}
	s := ob.String()
	if !strings.Contains(s, "ASC(?a)") || !strings.Contains(s, "DESC(?b)") {
		t.Errorf("OrderBy string = %q", s)
	}
	sl := &Slice{Offset: 3, Limit: 7, Input: &BGP{}}
	if !strings.Contains(sl.String(), "offset=3") || !strings.Contains(sl.String(), "limit=7") {
		t.Errorf("Slice string = %q", sl.String())
	}
}

func TestWalkVisitsEveryNode(t *testing.T) {
	op := &Distinct{Input: &Project{Names: []string{"x"}, Input: &Union{
		Left:  &Filter{Expr: &sparql.ExprVar{Name: "x"}, Input: &BGP{}},
		Right: &Join{Left: &BGP{}, Right: &BGP{}},
	}}}
	if got := CountOps(op); got != 8 {
		t.Errorf("CountOps = %d, want 8", got)
	}
	var order []string
	Walk(op, func(o Op) { order = append(order, strings.SplitN(o.String(), "(", 2)[0]) })
	if order[0] != "Distinct" || order[1] != "Project" {
		t.Errorf("pre-order broken: %v", order)
	}
	Walk(nil, func(Op) { t.Error("nil walk must not visit") })
}

func TestTranslateErrors(t *testing.T) {
	if _, err := Translate(&sparql.Query{}); err == nil {
		t.Error("nil WHERE should error")
	}
}

func TestTranslateBareOptionalAndFilter(t *testing.T) {
	// translatePattern handles degenerate standalone nodes
	opt := &sparql.Optional{Pattern: &sparql.BGP{Patterns: []rdf.Triple{pat(v("x"), iri("p"), v("y"))}}}
	op, err := TranslatePattern(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*LeftJoin); !ok {
		t.Errorf("bare optional = %T", op)
	}
	fl := &sparql.Filter{Expr: &sparql.ExprVar{Name: "x"}}
	op, err = TranslatePattern(fl)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*Filter); !ok {
		t.Errorf("bare filter = %T", op)
	}
}
