// Package algebra defines the SPARQL algebra operators and the translation
// from the parsed AST into algebra expressions, following the semantics of
// Pérez, Arenas & Gutierrez ("Semantics and complexity of SPARQL") and the
// W3C translation rules referenced in Sect. IV of the paper: AND maps to
// Join, UNION to Union, OPT to LeftJoin and FILTER to a selection.
package algebra

import (
	"fmt"
	"strings"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql"
)

// Op is one node of a SPARQL algebra expression tree.
type Op interface {
	fmt.Stringer
	// Vars returns the variables that may be bound by evaluating the
	// operator, without duplicates.
	Vars() []string
	// Children returns the operator's direct sub-operators.
	Children() []Op
	isOp()
}

// BGP evaluates a basic graph pattern — the only leaf operator.
type BGP struct {
	Patterns []rdf.Triple
}

// Join is the & of two solution multisets (AND).
type Join struct {
	Left, Right Op
}

// LeftJoin is the left outer join used for OPTIONAL; Expr is the embedded
// filter condition (nil means the constant true used when no filter is
// embedded in the optional group, per the W3C translation rules).
type LeftJoin struct {
	Left, Right Op
	Expr        sparql.Expression
}

// Union merges two solution multisets.
type Union struct {
	Left, Right Op
}

// Filter keeps solutions satisfying Expr.
type Filter struct {
	Expr  sparql.Expression
	Input Op
}

// Graph scopes its input to one named graph (constant Name) or iterates
// the dataset's named graphs binding the variable Name to each graph IRI —
// the GRAPH keyword.
type Graph struct {
	Name  rdf.Term
	Input Op
}

// Project restricts solutions to the named variables.
type Project struct {
	Names []string
	Input Op
}

// Distinct removes duplicate solutions.
type Distinct struct {
	Input Op
}

// Reduced permits (but does not require) duplicate elimination; the
// evaluator implements it as removal of adjacent duplicates.
type Reduced struct {
	Input Op
}

// OrderBy sorts the solution sequence.
type OrderBy struct {
	Conds []sparql.OrderCond
	Input Op
}

// Slice applies OFFSET/LIMIT; -1 means unset.
type Slice struct {
	Offset, Limit int
	Input         Op
}

func (*BGP) isOp()      {}
func (*Join) isOp()     {}
func (*LeftJoin) isOp() {}
func (*Union) isOp()    {}
func (*Filter) isOp()   {}
func (*Graph) isOp()    {}
func (*Project) isOp()  {}
func (*Distinct) isOp() {}
func (*Reduced) isOp()  {}
func (*OrderBy) isOp()  {}
func (*Slice) isOp()    {}

func (o *BGP) Children() []Op      { return nil }
func (o *Join) Children() []Op     { return []Op{o.Left, o.Right} }
func (o *LeftJoin) Children() []Op { return []Op{o.Left, o.Right} }
func (o *Union) Children() []Op    { return []Op{o.Left, o.Right} }
func (o *Filter) Children() []Op   { return []Op{o.Input} }
func (o *Graph) Children() []Op    { return []Op{o.Input} }
func (o *Project) Children() []Op  { return []Op{o.Input} }
func (o *Distinct) Children() []Op { return []Op{o.Input} }
func (o *Reduced) Children() []Op  { return []Op{o.Input} }
func (o *OrderBy) Children() []Op  { return []Op{o.Input} }
func (o *Slice) Children() []Op    { return []Op{o.Input} }

func (o *BGP) Vars() []string {
	return dedup(func(emit func(string)) {
		for _, t := range o.Patterns {
			for _, v := range t.Vars() {
				emit(v)
			}
		}
	})
}

func binaryVars(a, b Op) []string {
	return dedup(func(emit func(string)) {
		for _, v := range a.Vars() {
			emit(v)
		}
		for _, v := range b.Vars() {
			emit(v)
		}
	})
}

func (o *Join) Vars() []string     { return binaryVars(o.Left, o.Right) }
func (o *LeftJoin) Vars() []string { return binaryVars(o.Left, o.Right) }
func (o *Union) Vars() []string    { return binaryVars(o.Left, o.Right) }
func (o *Filter) Vars() []string   { return o.Input.Vars() }
func (o *Graph) Vars() []string {
	return dedup(func(emit func(string)) {
		if o.Name.IsVar() {
			emit(o.Name.Value)
		}
		for _, v := range o.Input.Vars() {
			emit(v)
		}
	})
}
func (o *Project) Vars() []string  { return append([]string(nil), o.Names...) }
func (o *Distinct) Vars() []string { return o.Input.Vars() }
func (o *Reduced) Vars() []string  { return o.Input.Vars() }
func (o *OrderBy) Vars() []string  { return o.Input.Vars() }
func (o *Slice) Vars() []string    { return o.Input.Vars() }

func dedup(gen func(emit func(string))) []string {
	var out []string
	seen := map[string]bool{}
	gen(func(v string) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	})
	return out
}

// String renders the operator tree in the compact functional notation used
// by the paper, e.g. Filter(C1, LeftJoin(BGP(P1 . P2), BGP(P3), true)).
func (o *BGP) String() string {
	parts := make([]string, len(o.Patterns))
	for i, t := range o.Patterns {
		parts[i] = fmt.Sprintf("%s %s %s", t.S, t.P, t.O)
	}
	return "BGP(" + strings.Join(parts, " . ") + ")"
}

func (o *Join) String() string {
	return fmt.Sprintf("Join(%s, %s)", o.Left, o.Right)
}

func (o *LeftJoin) String() string {
	expr := "true"
	if o.Expr != nil {
		expr = o.Expr.String()
	}
	return fmt.Sprintf("LeftJoin(%s, %s, %s)", o.Left, o.Right, expr)
}

func (o *Union) String() string {
	return fmt.Sprintf("Union(%s, %s)", o.Left, o.Right)
}

func (o *Filter) String() string {
	return fmt.Sprintf("Filter(%s, %s)", o.Expr, o.Input)
}

func (o *Graph) String() string {
	return fmt.Sprintf("Graph(%s, %s)", o.Name, o.Input)
}

func (o *Project) String() string {
	return fmt.Sprintf("Project(%s, %s)", strings.Join(o.Names, ","), o.Input)
}

func (o *Distinct) String() string { return fmt.Sprintf("Distinct(%s)", o.Input) }
func (o *Reduced) String() string  { return fmt.Sprintf("Reduced(%s)", o.Input) }

func (o *OrderBy) String() string {
	conds := make([]string, len(o.Conds))
	for i, c := range o.Conds {
		dir := "ASC"
		if c.Desc {
			dir = "DESC"
		}
		conds[i] = fmt.Sprintf("%s(%s)", dir, c.Expr)
	}
	return fmt.Sprintf("OrderBy(%s, %s)", strings.Join(conds, ","), o.Input)
}

func (o *Slice) String() string {
	return fmt.Sprintf("Slice(offset=%d, limit=%d, %s)", o.Offset, o.Limit, o.Input)
}

// Walk visits op and all descendants in pre-order.
func Walk(op Op, visit func(Op)) {
	if op == nil {
		return
	}
	visit(op)
	for _, c := range op.Children() {
		Walk(c, visit)
	}
}

// CountOps returns the number of operator nodes in the tree.
func CountOps(op Op) int {
	n := 0
	Walk(op, func(Op) { n++ })
	return n
}
