package algebra

import (
	"fmt"

	"adhocshare/internal/sparql"
)

// Translate converts a parsed query's WHERE clause into a SPARQL algebra
// expression and wraps it with the solution-sequence modifiers of the query
// form (Order, Projection, Distinct/Reduced, Slice), in the order mandated
// by the W3C translation: pattern → OrderBy → Project → Distinct/Reduced →
// Slice.
func Translate(q *sparql.Query) (Op, error) {
	if q.Where == nil {
		return nil, fmt.Errorf("algebra: query has no WHERE clause")
	}
	op, err := translatePattern(q.Where)
	if err != nil {
		return nil, err
	}
	if len(q.OrderBy) > 0 {
		op = &OrderBy{Conds: q.OrderBy, Input: op}
	}
	switch q.Form {
	case sparql.FormSelect:
		if q.Star {
			op = &Project{Names: op.Vars(), Input: op}
		} else {
			op = &Project{Names: append([]string(nil), q.SelectVars...), Input: op}
		}
		if q.Distinct {
			op = &Distinct{Input: op}
		} else if q.Reduced {
			op = &Reduced{Input: op}
		}
	case sparql.FormAsk:
		// ASK needs no projection; the evaluator checks non-emptiness.
	case sparql.FormConstruct:
		op = &Project{Names: templateVars(q), Input: op}
	case sparql.FormDescribe:
		// DESCRIBE projects the variables among the describe terms.
		var names []string
		for _, t := range q.DescribeTerms {
			if t.IsVar() {
				names = append(names, t.Value)
			}
		}
		if q.Star {
			names = op.Vars()
		}
		op = &Project{Names: names, Input: op}
		op = &Distinct{Input: op}
	}
	if q.Limit >= 0 || q.Offset >= 0 {
		op = &Slice{Offset: q.Offset, Limit: q.Limit, Input: op}
	}
	return op, nil
}

func templateVars(q *sparql.Query) []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range q.Template {
		for _, v := range t.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// TranslatePattern converts a single graph-pattern AST node to algebra.
// It is exported for tests and for the distributed planner, which works on
// pattern fragments.
func TranslatePattern(gp sparql.GraphPattern) (Op, error) {
	return translatePattern(gp)
}

func translatePattern(gp sparql.GraphPattern) (Op, error) {
	switch p := gp.(type) {
	case *sparql.BGP:
		return &BGP{Patterns: p.Patterns}, nil
	case *sparql.Union:
		l, err := translatePattern(p.Left)
		if err != nil {
			return nil, err
		}
		r, err := translatePattern(p.Right)
		if err != nil {
			return nil, err
		}
		return &Union{Left: l, Right: r}, nil
	case *sparql.Group:
		return translateGroup(p)
	case *sparql.Optional:
		// A bare OPTIONAL (outside a group) left-joins against the unit
		// pattern; normal queries reach Optional via translateGroup.
		inner, expr, err := translateOptional(p)
		if err != nil {
			return nil, err
		}
		return &LeftJoin{Left: &BGP{}, Right: inner, Expr: expr}, nil
	case *sparql.Filter:
		return &Filter{Expr: p.Expr, Input: &BGP{}}, nil
	case *sparql.GraphPat:
		inner, err := translatePattern(p.Pattern)
		if err != nil {
			return nil, err
		}
		return &Graph{Name: p.Name, Input: inner}, nil
	default:
		return nil, fmt.Errorf("algebra: unsupported graph pattern %T", gp)
	}
}

// translateGroup applies the W3C group translation: elements are folded
// left to right, OPTIONAL becomes a LeftJoin against the group built so
// far, and FILTERs are collected and applied to the whole group.
func translateGroup(g *sparql.Group) (Op, error) {
	var acc Op = &BGP{} // unit: the empty BGP joins as identity
	var filters []sparql.Expression
	for _, e := range g.Elems {
		switch el := e.(type) {
		case *sparql.Filter:
			filters = append(filters, el.Expr)
		case *sparql.Optional:
			inner, expr, err := translateOptional(el)
			if err != nil {
				return nil, err
			}
			acc = &LeftJoin{Left: acc, Right: inner, Expr: expr}
		default:
			op, err := translatePattern(e)
			if err != nil {
				return nil, err
			}
			acc = join(acc, op)
		}
	}
	acc = simplify(acc)
	for i, f := range filters {
		if i == 0 {
			acc = &Filter{Expr: f, Input: acc}
			continue
		}
		// conjoin multiple FILTER clauses into one condition
		prev := acc.(*Filter)
		prev.Expr = &sparql.ExprAnd{Left: prev.Expr, Right: f}
	}
	return acc, nil
}

// translateOptional translates the body of an OPTIONAL. Per the W3C rules,
// if the optional group is Filter(F, A) the filter expression becomes the
// LeftJoin condition; otherwise the condition is true (nil).
func translateOptional(o *sparql.Optional) (Op, sparql.Expression, error) {
	inner, err := translatePattern(o.Pattern)
	if err != nil {
		return nil, nil, err
	}
	if f, ok := inner.(*Filter); ok {
		return f.Input, f.Expr, nil
	}
	return inner, nil, nil
}

// join combines two operators, treating the empty BGP as the identity
// element. Adjacent triple patterns inside one group already form a single
// BGP at parse time; explicitly braced sub-groups stay as a Join so that
// structural rewrites (filter pushing, join-site selection) can address
// each operand — merging them would also be sound, since a Join of BGPs
// equals the BGP of the concatenated pattern lists (Sect. IV-B).
func join(l, r Op) Op {
	if isUnit(l) {
		return r
	}
	if isUnit(r) {
		return l
	}
	return &Join{Left: l, Right: r}
}

func isUnit(op Op) bool {
	b, ok := op.(*BGP)
	return ok && len(b.Patterns) == 0
}

// simplify removes residual unit BGPs introduced by the fold.
func simplify(op Op) Op {
	switch o := op.(type) {
	case *Join:
		o.Left = simplify(o.Left)
		o.Right = simplify(o.Right)
		if isUnit(o.Left) {
			return o.Right
		}
		if isUnit(o.Right) {
			return o.Left
		}
		return o
	case *LeftJoin:
		o.Left = simplify(o.Left)
		o.Right = simplify(o.Right)
		return o
	case *Union:
		o.Left = simplify(o.Left)
		o.Right = simplify(o.Right)
		return o
	case *Filter:
		o.Input = simplify(o.Input)
		return o
	default:
		return op
	}
}
