package rdfpeers

import (
	"fmt"
	"testing"
	"time"

	"adhocshare/internal/chord"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
)

const foaf = "http://xmlns.com/foaf/0.1/"

func ex(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
func fp(s string) rdf.Term { return rdf.NewIRI(foaf + s) }

func newRing(t *testing.T, n int) (*System, simnet.VTime) {
	t.Helper()
	s := NewSystem(16, simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20})
	now := simnet.VTime(0)
	for i := 0; i < n; i++ {
		_, done, err := s.AddNode(simnet.Addr(fmt.Sprintf("rp-%02d", i)), now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	return s, s.Converge(now)
}

func sampleTriples() []rdf.Triple {
	return []rdf.Triple{
		{S: ex("alice"), P: fp("name"), O: rdf.NewLiteral("Alice")},
		{S: ex("alice"), P: fp("knows"), O: ex("bob")},
		{S: ex("alice"), P: fp("based_near"), O: ex("paris")},
		{S: ex("bob"), P: fp("name"), O: rdf.NewLiteral("Bob")},
		{S: ex("bob"), P: fp("knows"), O: ex("bob")},
		{S: ex("bob"), P: fp("based_near"), O: ex("paris")},
		{S: ex("carol"), P: fp("based_near"), O: ex("lyon")},
		{S: ex("carol"), P: fp("knows"), O: ex("bob")},
	}
}

func TestStoreReplicatesAtThreePlaces(t *testing.T) {
	s, now := newRing(t, 8)
	tr := sampleTriples()[0]
	now, err := s.Store("rp-00", tr, now)
	if err != nil {
		t.Fatal(err)
	}
	_ = now
	copies := 0
	for _, n := range s.nodes {
		if n.Store.Has(tr) {
			copies++
		}
	}
	// stored at successor(hash s), successor(hash p), successor(hash o):
	// usually 3 distinct nodes, occasionally fewer when keys collide on
	// the same successor
	if copies < 1 || copies > 3 {
		t.Errorf("triple stored at %d nodes, want 1..3", copies)
	}
	if copies < 2 {
		t.Logf("note: keys collapsed onto %d node(s)", copies)
	}
}

func TestQuerySinglePattern(t *testing.T) {
	s, now := newRing(t, 8)
	now, err := s.StoreAll("rp-00", sampleTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	// by subject
	sols, now, err := s.QueryPattern("rp-01", rdf.Triple{S: ex("alice"), P: rdf.NewVar("p"), O: rdf.NewVar("o")}, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Errorf("subject query returned %d rows, want 3", len(sols))
	}
	// by object
	sols, now, err = s.QueryPattern("rp-02", rdf.Triple{S: rdf.NewVar("s"), P: fp("knows"), O: ex("bob")}, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Errorf("object query returned %d rows, want 3", len(sols))
	}
	// by predicate only
	sols, _, err = s.QueryPattern("rp-03", rdf.Triple{S: rdf.NewVar("s"), P: fp("based_near"), O: rdf.NewVar("o")}, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != 3 {
		t.Errorf("predicate query returned %d rows, want 3", len(sols))
	}
}

func TestQueryAllVariableFloods(t *testing.T) {
	s, now := newRing(t, 6)
	now, err := s.StoreAll("rp-00", sampleTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	sols, _, err := s.QueryPattern("rp-00", rdf.Triple{S: rdf.NewVar("s"), P: rdf.NewVar("p"), O: rdf.NewVar("o")}, now)
	if err != nil {
		t.Fatal(err)
	}
	// flood sees the 3x stored copies but deduplicates
	if len(sols) != len(sampleTriples()) {
		t.Errorf("flood returned %d rows, want %d", len(sols), len(sampleTriples()))
	}
}

func TestQueryConjunctive(t *testing.T) {
	s, now := newRing(t, 8)
	now, err := s.StoreAll("rp-00", sampleTriples(), now)
	if err != nil {
		t.Fatal(err)
	}
	// who is based near paris AND knows bob? → alice, bob
	pats := []rdf.Triple{
		{S: rdf.NewVar("s"), P: fp("based_near"), O: ex("paris")},
		{S: rdf.NewVar("s"), P: fp("knows"), O: ex("bob")},
	}
	cands, now, err := s.QueryConjunctive("rp-05", "s", pats, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want alice and bob", cands)
	}
	// empty intersection short-circuits
	pats2 := []rdf.Triple{
		{S: rdf.NewVar("s"), P: fp("based_near"), O: ex("lyon")},
		{S: rdf.NewVar("s"), P: fp("knows"), O: ex("nobody")},
	}
	cands, _, err = s.QueryConjunctive("rp-05", "s", pats2, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("candidates = %v, want none", cands)
	}
}

func TestQueryConjunctiveRejectsBadPatterns(t *testing.T) {
	s, now := newRing(t, 4)
	_, _, err := s.QueryConjunctive("rp-00", "s",
		[]rdf.Triple{{S: ex("alice"), P: fp("knows"), O: rdf.NewVar("o")}}, now)
	if err == nil {
		t.Error("expected error for non-subject-variable pattern")
	}
	if _, _, err := s.QueryConjunctive("rp-00", "s", nil, now); err == nil {
		t.Error("expected error for empty conjunction")
	}
}

func TestIngestTrafficShipsFullTriples(t *testing.T) {
	s, now := newRing(t, 8)
	s.Net().ResetMetrics()
	if _, err := s.StoreAll("rp-00", sampleTriples(), now); err != nil {
		t.Fatal(err)
	}
	m := s.Net().Metrics()
	storeBytes := m.PerMethod[MethodStore].Bytes
	var tripleBytes int
	for _, tr := range sampleTriples() {
		tripleBytes += tr.SizeBytes()
	}
	// each triple travels to ~3 places; allow for same-node free self-calls
	if storeBytes < int64(tripleBytes) {
		t.Errorf("store traffic %d < single-copy volume %d", storeBytes, tripleBytes)
	}
}

func TestDuplicateNode(t *testing.T) {
	s, now := newRing(t, 2)
	if _, _, err := s.AddNode("rp-00", now); err == nil {
		t.Error("expected duplicate node error")
	}
}

func TestRangeQueryLPH(t *testing.T) {
	s, now := newRing(t, 10)
	if err := s.EnableRangeIndex(0, 100); err != nil {
		t.Fatal(err)
	}
	age := fp("age")
	// ages 10, 20, ..., 90
	for i := 1; i <= 9; i++ {
		tr := rdf.Triple{S: ex(fmt.Sprintf("p%d", i)), P: age, O: rdf.NewInteger(int64(10 * i))}
		var err error
		now, err = s.Store("rp-00", tr, now)
		if err != nil {
			t.Fatal(err)
		}
	}
	ts, visited, now, err := s.QueryRange("rp-03", age, 25, 55, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 3 { // 30, 40, 50
		t.Fatalf("range [25,55] returned %d triples, want 3: %v", len(ts), ts)
	}
	for _, tr := range ts {
		v, _ := rdf.NumericValue(tr.O)
		if v < 25 || v > 55 {
			t.Errorf("out-of-range result %v", tr)
		}
	}
	if visited == 0 {
		t.Error("no arc nodes visited")
	}
	// whole range
	ts, _, now, err = s.QueryRange("rp-00", age, 0, 100, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 9 {
		t.Errorf("full range returned %d, want 9", len(ts))
	}
	// empty range region
	ts, _, _, err = s.QueryRange("rp-00", age, 91, 99, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 0 {
		t.Errorf("empty range returned %v", ts)
	}
}

func TestRangeQueryLocalityOnRing(t *testing.T) {
	// LPH must map ordered values to ordered ring positions
	s, _ := newRing(t, 4)
	if err := s.EnableRangeIndex(0, 1000); err != nil {
		t.Fatal(err)
	}
	prev := chord.ID(0)
	for v := 0.0; v <= 1000; v += 100 {
		id := s.lph(v)
		if id < prev {
			t.Fatalf("LPH not monotone at %g: %v < %v", v, id, prev)
		}
		prev = id
	}
}

func TestRangeQueryErrors(t *testing.T) {
	s, now := newRing(t, 4)
	if _, _, _, err := s.QueryRange("rp-00", fp("age"), 1, 2, now); err == nil {
		t.Error("range query without index should error")
	}
	if err := s.EnableRangeIndex(5, 5); err == nil {
		t.Error("degenerate range accepted")
	}
	if err := s.EnableRangeIndex(0, 10); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := s.QueryRange("rp-00", fp("age"), 9, 3, now); err == nil {
		t.Error("inverted range accepted")
	}
}
