// Package rdfpeers implements the comparison baseline of the paper's
// Sect. II: RDFPeers (Cai & Frank, WWW 2004), a distributed RDF repository
// in which every triple is *stored at* three places on a Chord ring — the
// successors of hash(subject), hash(predicate) and hash(object). Unlike
// the paper's hybrid overlay, data leaves its provider: ring nodes store
// other peers' triples, which is exactly the property the paper's design
// avoids ("data providers store and manipulate their own data locally").
//
// The implementation supports the RDFPeers query classes the paper
// discusses: single triple patterns (routed by the most selective bound
// attribute) and conjunctive multi-attribute queries over a shared subject
// variable, resolved by shipping candidate-subject sets from node to node
// and intersecting (the MAQ algorithm).
package rdfpeers

import (
	"fmt"
	"sort"
	"strings"

	"adhocshare/internal/chord"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql/eval"
	"adhocshare/internal/trace"
)

// RPC method names ("rdfpeers." prefix for traffic attribution).
const (
	//adhoclint:faultpath(idempotent, triples live in a set-semantics graph; re-adding the same triple is a no-op)
	MethodStore = "rdfpeers.store"
	MethodMatch = "rdfpeers.match"
	MethodIntersect = "rdfpeers.intersect"
	// MethodResult labels the transfer shipping final results back to the
	// query initiator; it is transfer-only and dispatched by no handler.
	MethodResult = "rdfpeers.result"
)

// StoreReq ships one triple for storage at a ring node.
//adhoclint:gobfallback RDFPeers comparison baseline; its traffic is measured, not optimized
type StoreReq struct {
	Triple rdf.Triple
	TC     trace.TraceContext
}

// SizeBytes implements simnet.Payload.
func (r StoreReq) SizeBytes() int { return r.Triple.SizeBytes() + r.TC.SizeBytes() }

// TraceCtx implements trace.Carrier.
func (r StoreReq) TraceCtx() trace.TraceContext { return r.TC }

// MatchReq asks a ring node to match a pattern against its local store.
//adhoclint:gobfallback RDFPeers comparison baseline; its traffic is measured, not optimized
type MatchReq struct {
	Pattern rdf.Triple
	TC      trace.TraceContext
}

// SizeBytes implements simnet.Payload.
func (r MatchReq) SizeBytes() int { return r.Pattern.SizeBytes() + r.TC.SizeBytes() }

// TraceCtx implements trace.Carrier.
func (r MatchReq) TraceCtx() trace.TraceContext { return r.TC }

// SolutionsResp returns solution mappings.
//adhoclint:gobfallback RDFPeers comparison baseline; its traffic is measured, not optimized
type SolutionsResp struct {
	Sols eval.Solutions
}

// SizeBytes implements simnet.Payload.
func (r SolutionsResp) SizeBytes() int { return r.Sols.SizeBytes() }

// IntersectReq ships candidate subjects to the node responsible for the
// next pattern, which intersects them with its local matches.
//adhoclint:gobfallback RDFPeers comparison baseline; its traffic is measured, not optimized
type IntersectReq struct {
	Pattern    rdf.Triple
	Candidates []rdf.Term
	TC         trace.TraceContext
}

// TraceCtx implements trace.Carrier.
func (r IntersectReq) TraceCtx() trace.TraceContext { return r.TC }

// SizeBytes implements simnet.Payload.
func (r IntersectReq) SizeBytes() int {
	n := r.Pattern.SizeBytes() + r.TC.SizeBytes()
	for _, t := range r.Candidates {
		n += t.SizeBytes()
	}
	return n
}

// TermsResp returns a candidate subject set.
//adhoclint:gobfallback RDFPeers comparison baseline; its traffic is measured, not optimized
type TermsResp struct {
	Terms []rdf.Term
}

// SizeBytes implements simnet.Payload.
func (r TermsResp) SizeBytes() int {
	n := 4
	for _, t := range r.Terms {
		n += t.SizeBytes()
	}
	return n
}

// Node is one RDFPeers ring member: router and storage in one.
type Node struct {
	Chord *chord.Node
	Store *rdf.Graph

	net  *simnet.Network
	addr simnet.Addr
}

// HandleCall dispatches RDFPeers methods and delegates Chord routing.
func (n *Node) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	if strings.HasPrefix(method, "chord.") {
		return n.Chord.HandleCall(at, method, req)
	}
	switch method {
	case MethodStore:
		r, ok := req.(StoreReq)
		if !ok {
			return nil, at, fmt.Errorf("rdfpeers: store payload %T", req)
		}
		n.Store.Add(r.Triple)
		return simnet.Bytes(1), at, nil
	case MethodMatch:
		r, ok := req.(MatchReq)
		if !ok {
			return nil, at, fmt.Errorf("rdfpeers: match payload %T", req)
		}
		return SolutionsResp{Sols: eval.MatchPattern(n.Store, r.Pattern)}, at, nil
	case MethodRange:
		r, ok := req.(RangeReq)
		if !ok {
			return nil, at, fmt.Errorf("rdfpeers: range payload %T", req)
		}
		return n.handleRange(at, r)
	case MethodIntersect:
		r, ok := req.(IntersectReq)
		if !ok {
			return nil, at, fmt.Errorf("rdfpeers: intersect payload %T", req)
		}
		return TermsResp{Terms: n.intersect(r)}, at, nil
	default:
		return nil, at, fmt.Errorf("rdfpeers: unknown method %s", method)
	}
}

// intersect keeps the candidate subjects that also match the local pattern
// (substituting each candidate for the subject variable). A nil candidate
// list means "no constraint yet" and returns all local matching subjects.
func (n *Node) intersect(r IntersectReq) []rdf.Term {
	if r.Candidates == nil {
		seen := map[rdf.Term]bool{}
		var out []rdf.Term
		n.Store.ForEachMatch(r.Pattern, func(t rdf.Triple) bool {
			if !seen[t.S] {
				seen[t.S] = true
				out = append(out, t.S)
			}
			return true
		})
		sortTerms(out)
		return out
	}
	var out []rdf.Term
	for _, c := range r.Candidates {
		pat := r.Pattern
		pat.S = c
		if n.Store.CountMatch(pat) > 0 {
			out = append(out, c)
		}
	}
	return out
}

func sortTerms(ts []rdf.Term) {
	sort.Slice(ts, func(i, j int) bool { return rdf.Compare(ts[i], ts[j]) < 0 })
}

// System is an RDFPeers deployment.
type System struct {
	net      *simnet.Network
	bits     uint
	nodes    map[simnet.Addr]*Node
	numRange NumericRange
	// traceSeq allocates deterministic trace identifiers; the system is
	// driven single-threaded, so a plain counter suffices.
	traceSeq uint64
}

// traceOp opens a trace for one RDFPeers operation when a recorder is
// attached to the network; see overlay.System.traceOp.
//adhoclint:faultpath(benign, trace-ID allocator; an identifier wasted by a failed operation is unobservable)
func (s *System) traceOp(name string, node simnet.Addr) (trace.TraceContext, func(start, end simnet.VTime)) {
	rec := s.net.Recorder()
	if rec == nil {
		return trace.TraceContext{}, nil
	}
	s.traceSeq++
	tc := trace.Root(s.traceSeq)
	return tc, func(start, end simnet.VTime) {
		rec.Record(trace.Span{
			Query: tc.Query,
			ID:    tc.Span,
			Kind:  trace.KindOp,
			Name:  name,
			From:  string(node),
			Start: int64(start),
			End:   int64(end),
		})
	}
}

// NewSystem creates an empty RDFPeers ring over a fresh simulated network
// with the given cost model.
func NewSystem(bits uint, netCfg simnet.Config) *System {
	if bits == 0 || bits > 64 {
		bits = 32
	}
	return &System{
		net:   simnet.New(netCfg),
		bits:  bits,
		nodes: map[simnet.Addr]*Node{},
	}
}

// Net exposes the simulated network for metrics.
func (s *System) Net() *simnet.Network { return s.net }

// AddNode joins a ring member. The node is registered and entered into the
// membership before the ring join; a failed join removes both again.
//adhoclint:faultpath(compensated, a failed join deletes the node from the membership and deregisters its handler, restoring the pre-call state)
func (s *System) AddNode(addr simnet.Addr, at simnet.VTime) (*Node, simnet.VTime, error) {
	if _, dup := s.nodes[addr]; dup {
		return nil, at, fmt.Errorf("rdfpeers: node %s exists", addr)
	}
	n := &Node{
		Chord: chord.NewNode(s.net, addr, chord.HashID(string(addr), s.bits), chord.Config{Bits: s.bits}),
		Store: rdf.NewGraph(),
		net:   s.net,
		addr:  addr,
	}
	s.net.Register(addr, simnet.HandlerFunc(n.HandleCall))
	var bootstrap simnet.Addr
	for a := range s.nodes {
		bootstrap = a
		break
	}
	s.nodes[addr] = n
	now := at
	if bootstrap == "" {
		n.Chord.Create()
		return n, now, nil
	}
	done, err := n.Chord.Join(bootstrap, now)
	if err != nil {
		delete(s.nodes, addr)
		s.net.Deregister(addr)
		return nil, done, err
	}
	return n, s.Converge(done), nil
}

// Converge stabilizes the ring.
func (s *System) Converge(at simnet.VTime) simnet.VTime {
	nodes := make([]*chord.Node, 0, len(s.nodes))
	addrs := make([]simnet.Addr, 0, len(s.nodes))
	for a := range s.nodes {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		nodes = append(nodes, s.nodes[a].Chord)
	}
	return chord.Converge(nodes, at)
}

// attrKeys returns the three storage keys of a triple: hash(s), hash(p),
// hash(o), each in its own domain.
func (s *System) attrKeys(t rdf.Triple) [3]chord.ID {
	return [3]chord.ID{
		chord.HashID("s\x00"+t.S.String(), s.bits),
		chord.HashID("p\x00"+t.P.String(), s.bits),
		chord.HashID("o\x00"+t.O.String(), s.bits),
	}
}

// Store inserts a triple from the given provider: the full triple is
// routed to and stored at three ring places. This is the ingest cost the
// paper's hybrid design avoids.
func (s *System) Store(from simnet.Addr, t rdf.Triple, at simnet.VTime) (simnet.VTime, error) {
	now := at
	ak := s.attrKeys(t)
	keys := ak[:]
	if k, ok := s.rangeKey(t); ok {
		keys = append(keys, k)
	}
	tc, finish := s.traceOp("rdfpeers.store_op", from)
	// One store closure reused across keys keeps the ingest loop
	// allocation-free.
	var storeTo simnet.Addr
	var storeReq StoreReq
	store := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return s.net.Call(from, storeTo, MethodStore, storeReq, at)
	}
	for ki, key := range keys {
		owner, _, done, err := s.resolveTraced(from, key, tc.Child(uint64(2*ki)), now)
		now = done
		if err != nil {
			return now, err
		}
		storeTo = owner
		storeReq = StoreReq{Triple: t, TC: tc.Child(uint64(2*ki + 1))}
		_, done, err = simnet.Retry(simnet.DefaultAttempts, now, store)
		now = done
		if err != nil {
			return now, err
		}
	}
	if finish != nil {
		finish(at, now)
	}
	return now, nil
}

// StoreAll inserts a batch of triples.
func (s *System) StoreAll(from simnet.Addr, ts []rdf.Triple, at simnet.VTime) (simnet.VTime, error) {
	now := at
	for _, t := range ts {
		done, err := s.Store(from, t, now)
		now = done
		if err != nil {
			return now, err
		}
	}
	return now, nil
}

func (s *System) resolve(from simnet.Addr, key chord.ID, at simnet.VTime) (simnet.Addr, int, simnet.VTime, error) {
	return s.resolveTraced(from, key, trace.TraceContext{}, at)
}

func (s *System) resolveTraced(from simnet.Addr, key chord.ID, tc trace.TraceContext, at simnet.VTime) (simnet.Addr, int, simnet.VTime, error) {
	entry := from
	if _, ok := s.nodes[from]; !ok {
		for a := range s.nodes {
			entry = a
			break
		}
	}
	resp, done, err := simnet.Retry(simnet.DefaultAttempts, at,
		func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return s.net.Call(from, entry, chord.MethodFindSuccessor,
				chord.FindReq{Target: key, TC: tc}, at)
		})
	if err != nil {
		return "", 0, done, err
	}
	fr := resp.(chord.FindResp)
	return fr.Node.Addr, fr.Hops, done, nil
}

// patternKey picks the routing key for a pattern following RDFPeers:
// subject if bound, else object, else predicate. The all-variable pattern
// has no key (flood).
func (s *System) patternKey(pat rdf.Triple) (chord.ID, bool) {
	switch {
	case pat.S.IsConcrete():
		return chord.HashID("s\x00"+pat.S.String(), s.bits), true
	case pat.O.IsConcrete():
		return chord.HashID("o\x00"+pat.O.String(), s.bits), true
	case pat.P.IsConcrete():
		return chord.HashID("p\x00"+pat.P.String(), s.bits), true
	default:
		return 0, false
	}
}

// QueryPattern resolves a single triple pattern: route to the responsible
// node by the most selective bound attribute and match there.
func (s *System) QueryPattern(from simnet.Addr, pat rdf.Triple, at simnet.VTime) (eval.Solutions, simnet.VTime, error) {
	tc, finishOp := s.traceOp("rdfpeers.query", from)
	key, ok := s.patternKey(pat)
	if !ok {
		// flood all nodes and union (deduplicating: triples are stored at
		// three places, so unconstrained scans see copies)
		// Sorted fan-out keeps branch-derived span identifiers (and
		// accounting order) deterministic.
		addrs := make([]simnet.Addr, 0, len(s.nodes))
		for a := range s.nodes {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		var acc eval.Solutions
		now := at
		finish := at
		// One match closure reused across targets keeps the flood loop
		// allocation-free.
		var floodTo simnet.Addr
		var floodReq MatchReq
		match := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return s.net.Call(from, floodTo, MethodMatch, floodReq, at)
		}
		for fi, a := range addrs {
			floodTo = a
			floodReq = MatchReq{Pattern: pat, TC: tc.Child(uint64(fi))}
			resp, done, err := simnet.Retry(simnet.DefaultAttempts, now, match)
			if err != nil {
				continue
			}
			acc = eval.Union(acc, resp.(SolutionsResp).Sols)
			finish = simnet.MaxTime(finish, done)
		}
		if finishOp != nil {
			finishOp(at, finish)
		}
		return eval.Distinct(acc), finish, nil
	}
	owner, _, now, err := s.resolveTraced(from, key, tc.Child(1), at)
	if err != nil {
		return nil, now, err
	}
	resp, now, err := simnet.Retry(simnet.DefaultAttempts, now,
		func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return s.net.Call(from, owner, MethodMatch,
				MatchReq{Pattern: pat, TC: tc.Child(0)}, at)
		})
	if err != nil {
		return nil, now, err
	}
	if finishOp != nil {
		finishOp(at, now)
	}
	return eval.Distinct(resp.(SolutionsResp).Sols), now, nil
}

// QueryConjunctive resolves a conjunctive multi-attribute query: all
// patterns share the same subject variable and have bound predicate and
// object. Candidate subjects are obtained at the first pattern's node and
// shipped from node to node for intersection (the RDFPeers recursive
// algorithm); the final candidates are returned to the initiator.
func (s *System) QueryConjunctive(from simnet.Addr, subjectVar string, patterns []rdf.Triple, at simnet.VTime) ([]rdf.Term, simnet.VTime, error) {
	if len(patterns) == 0 {
		return nil, at, fmt.Errorf("rdfpeers: empty conjunction")
	}
	for _, p := range patterns {
		if !p.S.IsVar() || p.S.Value != subjectVar || !p.P.IsConcrete() || !p.O.IsConcrete() {
			return nil, at, fmt.Errorf("rdfpeers: conjunctive queries require (?%s, p, o) patterns, got %v", subjectVar, p)
		}
	}
	tc, finishOp := s.traceOp("rdfpeers.query", from)
	var candidates []rdf.Term
	now := at
	prev := from
	// Hop contexts chain: each intersection hop derives from the previous
	// one, mirroring the recursive MAQ forwarding. One hop closure reused
	// across patterns keeps the loop allocation-free.
	linkTC := tc
	var hopTo simnet.Addr
	var hopReq IntersectReq
	hop := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return s.net.Call(prev, hopTo, MethodIntersect, hopReq, at)
	}
	for i, pat := range patterns {
		key, _ := s.patternKey(pat) // object is bound → object key
		owner, _, done, err := s.resolveTraced(prev, key, linkTC.Child(0), now)
		now = done
		if err != nil {
			return nil, now, err
		}
		hopTC := linkTC.Child(1)
		hopTo = owner
		cands := candidates
		if i == 0 {
			cands = nil
		}
		hopReq = IntersectReq{Pattern: pat, Candidates: cands, TC: hopTC}
		resp, done, err := simnet.Retry(simnet.DefaultAttempts, now, hop)
		now = done
		if err != nil {
			return nil, now, err
		}
		candidates = resp.(TermsResp).Terms
		if len(candidates) == 0 {
			return nil, now, nil
		}
		prev = owner
		linkTC = hopTC
	}
	// ship the final candidates back to the initiator
	_, done, err := simnet.Retry(simnet.DefaultAttempts, now,
		func(at simnet.VTime) (struct{}, simnet.VTime, error) {
			done, err := s.net.Transfer(prev, from, MethodResult, TermsResp{Terms: candidates}, at)
			return struct{}{}, done, err
		})
	if err != nil {
		return nil, done, err
	}
	if finishOp != nil {
		finishOp(at, done)
	}
	return candidates, done, nil
}
