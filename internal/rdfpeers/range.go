package rdfpeers

import (
	"fmt"
	"sort"

	"adhocshare/internal/chord"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
)

// Range queries: RDFPeers resolves numeric range queries over the object
// position with a *locality-preserving hash* — numeric values map onto the
// identifier circle in order, so the triples of an interval [lo, hi] live
// on a contiguous arc of the ring, and a range query walks successor
// pointers along that arc (Cai & Frank, Sect. II of the paper).
//
// NumericRange configures the value interval mapped across the circle.
type NumericRange struct {
	Min, Max float64
}

// valid reports whether the range is usable.
func (r NumericRange) valid() bool { return r.Max > r.Min }

// lph maps a numeric value onto the identifier circle, preserving order.
func (s *System) lph(v float64) chord.ID {
	r := s.numRange
	if v < r.Min {
		v = r.Min
	}
	if v > r.Max {
		v = r.Max
	}
	span := float64(uint64(1) << s.bits)
	pos := (v - r.Min) / (r.Max - r.Min) * (span - 1)
	return chord.ID(pos)
}

// EnableRangeIndex turns on the locality-preserving numeric index for
// object values in [min, max]. Triples stored after this call whose object
// is numeric gain a fourth copy at the LPH position.
func (s *System) EnableRangeIndex(min, max float64) error {
	if max <= min {
		return fmt.Errorf("rdfpeers: invalid numeric range [%g, %g]", min, max)
	}
	s.numRange = NumericRange{Min: min, Max: max}
	return nil
}

// rangeKeys returns the LPH key for a triple's numeric object, if any.
func (s *System) rangeKey(t rdf.Triple) (chord.ID, bool) {
	if !s.numRange.valid() {
		return 0, false
	}
	v, ok := rdf.NumericValue(t.O)
	if !ok {
		return 0, false
	}
	return s.lph(v), true
}

// QueryRange resolves the range query (?s, p, ?o) with lo ≤ ?o ≤ hi: it
// routes to the node owning lph(lo) and walks successors along the arc up
// to lph(hi), collecting matching triples. It returns the solutions, the
// number of nodes visited and the virtual completion time.
func (s *System) QueryRange(from simnet.Addr, p rdf.Term, lo, hi float64, at simnet.VTime) ([]rdf.Triple, int, simnet.VTime, error) {
	if !s.numRange.valid() {
		return nil, 0, at, fmt.Errorf("rdfpeers: range index not enabled")
	}
	if hi < lo {
		return nil, 0, at, fmt.Errorf("rdfpeers: empty range [%g, %g]", lo, hi)
	}
	startKey, endKey := s.lph(lo), s.lph(hi)
	// Route to the first arc node (counted as routing cost), then chain
	// through the owners of the key arc [startKey, endKey] in ring order.
	owner, _, now, err := s.resolve(from, startKey, at)
	if err != nil {
		return nil, 0, now, err
	}
	arc := s.arcOwners(startKey, endKey, owner)
	seen := map[rdf.Triple]bool{}
	var out []rdf.Triple
	visited := 0
	prev := from
	// One hop closure reused across arc nodes keeps the chain loop
	// allocation-free.
	req := RangeReq{Predicate: p, Lo: lo, Hi: hi}
	var hopTo simnet.Addr
	hop := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return s.net.Call(prev, hopTo, MethodRange, req, at)
	}
	for _, cur := range arc {
		hopTo = cur
		resp, done, err := simnet.Retry(simnet.DefaultAttempts, now, hop)
		now = done
		if err != nil {
			continue // skip unreachable arc nodes
		}
		visited++
		rr := resp.(RangeResp)
		for _, t := range rr.Triples {
			if !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
		prev = cur
	}
	// Sort before the transfer: the payload ships the same backing array
	// the caller receives, so a post-send sort would mutate bytes already
	// on the wire (the transfer cost itself is order-independent).
	rdf.SortTriples(out)
	// results travel back to the initiator
	_, done, err := simnet.Retry(simnet.DefaultAttempts, now,
		func(at simnet.VTime) (struct{}, simnet.VTime, error) {
			done, err := s.net.Transfer(prev, from, MethodResult, TriplesPayload{Triples: out}, at)
			return struct{}{}, done, err
		})
	if err != nil {
		return nil, visited, done, err
	}
	return out, visited, done, nil
}

// arcOwners lists the nodes whose key span intersects the (non-wrapping)
// key arc [startKey, endKey], in ring order starting at the given first
// owner. A node with predecessor p owns the span (p, id]; the node with
// the smallest identifier additionally owns the wrap segment.
func (s *System) arcOwners(startKey, endKey chord.ID, first simnet.Addr) []simnet.Addr {
	type member struct {
		id   chord.ID
		addr simnet.Addr
	}
	members := make([]member, 0, len(s.nodes))
	for a, n := range s.nodes {
		members = append(members, member{id: n.Chord.ID(), addr: a})
	}
	sort.Slice(members, func(i, j int) bool { return members[i].id < members[j].id })
	var owners []simnet.Addr
	for i, m := range members {
		var covers bool
		if i == 0 {
			// wrap node: owns (lastID, max] ∪ [0, id]
			last := members[len(members)-1].id
			covers = endKey > last || startKey <= m.id
		} else {
			p := members[i-1].id
			covers = p < endKey && m.id >= startKey
		}
		if covers {
			owners = append(owners, m.addr)
		}
	}
	// rotate so the resolved first owner leads (ring-order chain)
	for i, a := range owners {
		if a == first {
			owners = append(owners[i:], owners[:i]...)
			break
		}
	}
	return owners
}

// RangeReq asks a ring node for its locally stored numeric triples with
// the given predicate and object in [Lo, Hi].
//adhoclint:gobfallback RDFPeers comparison baseline; its traffic is measured, not optimized
type RangeReq struct {
	Predicate rdf.Term
	Lo, Hi    float64
}

// SizeBytes implements simnet.Payload.
func (r RangeReq) SizeBytes() int {
	return r.Predicate.SizeBytes() + boundWidth(r.Lo) + boundWidth(r.Hi)
}

// boundWidth is the wire width of one float64 range bound.
func boundWidth(float64) int { return 8 }

// RangeResp carries matching triples.
//adhoclint:gobfallback RDFPeers comparison baseline; its traffic is measured, not optimized
type RangeResp struct {
	Triples []rdf.Triple
}

// SizeBytes implements simnet.Payload.
func (r RangeResp) SizeBytes() int {
	n := 4
	for _, t := range r.Triples {
		n += t.SizeBytes()
	}
	return n
}

// TriplesPayload is a plain triple batch payload.
//adhoclint:gobfallback RDFPeers comparison baseline; its traffic is measured, not optimized
type TriplesPayload struct {
	Triples []rdf.Triple
}

// SizeBytes implements simnet.Payload.
func (r TriplesPayload) SizeBytes() int {
	n := 4
	for _, t := range r.Triples {
		n += t.SizeBytes()
	}
	return n
}

// MethodRange is the range sub-query RPC.
const MethodRange = "rdfpeers.range"

// handleRange scans the local store for numeric matches.
func (n *Node) handleRange(at simnet.VTime, req RangeReq) (simnet.Payload, simnet.VTime, error) {
	var out []rdf.Triple
	pat := rdf.Triple{S: rdf.NewVar("s"), P: req.Predicate, O: rdf.NewVar("o")}
	if req.Predicate.IsZero() {
		pat.P = rdf.NewVar("p")
	}
	n.Store.ForEachMatch(pat, func(t rdf.Triple) bool {
		if v, ok := rdf.NumericValue(t.O); ok && v >= req.Lo && v <= req.Hi {
			out = append(out, t)
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		vi, _ := rdf.NumericValue(out[i].O)
		vj, _ := rdf.NumericValue(out[j].O)
		return vi < vj
	})
	return RangeResp{Triples: out}, at, nil
}
