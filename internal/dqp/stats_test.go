package dqp

import (
	"strings"
	"testing"

	"adhocshare/internal/overlay"
	"adhocshare/internal/simnet"
)

// TestStatsAccessors pins the derived-figure arithmetic of Stats against a
// synthetic per-method table.
func TestStatsAccessors(t *testing.T) {
	s := Stats{
		Messages: 10,
		Bytes:    1000,
		PerMethod: map[string]simnet.MethodStats{
			"chord.find":        {Messages: 3, Bytes: 90},
			"index.lookup":      {Messages: 2, Bytes: 60},
			"index.drop_node":   {Messages: 1, Bytes: 25},
			"store.match":       {Messages: 2, Bytes: 400},
			"dqp.result":        {Messages: 1, Bytes: 200},
			"overlay.unrelated": {Messages: 1, Bytes: 5},
		},
		CacheHits: 4,
	}
	if got := s.RetractionBytes(); got != 25 {
		t.Errorf("RetractionBytes = %d, want 25", got)
	}
	// drop_node counts toward the index tier too (index.* prefix).
	if got := s.IndexBytes(); got != 90+60+25 {
		t.Errorf("IndexBytes = %d, want 175", got)
	}
	if got := s.ShippedSolutionBytes(); got != 400+200 {
		t.Errorf("ShippedSolutionBytes = %d, want 600", got)
	}
	for _, frag := range []string{"cachehits=4", "msgs=10", "bytes=1000"} {
		if !strings.Contains(s.String(), frag) {
			t.Errorf("Stats.String() missing %q: %s", frag, s.String())
		}
	}
	var zero Stats
	if zero.RetractionBytes() != 0 {
		t.Error("zero Stats must report zero retraction bytes")
	}
}

// TestStatsCountsCacheHits: with lookup caching on, a repeated query's
// index resolutions are answered from the memoized location-table rows and
// counted in Stats.CacheHits.
func TestStatsCountsCacheHits(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 5, data)
	e := NewEngine(sys, Options{Strategy: StrategyChain, CacheLookups: true})
	_, stats1, done, err := e.Query("D1", paperQueries["fig5-primitive"], now)
	if err != nil {
		t.Fatal(err)
	}
	if stats1.CacheHits != 0 {
		t.Errorf("first query reported %d cache hits, want 0 (cold cache)", stats1.CacheHits)
	}
	_, stats2, _, err := e.Query("D1", paperQueries["fig5-primitive"], done)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.CacheHits == 0 {
		t.Error("repeated query reported no cache hits despite a warm cache")
	}
	if stats2.LookupHops != 0 {
		t.Errorf("cache hits should eliminate routing, got %d hops", stats2.LookupHops)
	}
	// An engine with caching disabled never reports hits.
	eNo := NewEngine(sys, Options{Strategy: StrategyChain})
	_, s1, d2, err := eNo.Query("D1", paperQueries["fig5-primitive"], done)
	if err != nil {
		t.Fatal(err)
	}
	_, s2, _, err := eNo.Query("D1", paperQueries["fig5-primitive"], d2)
	if err != nil {
		t.Fatal(err)
	}
	if s1.CacheHits != 0 || s2.CacheHits != 0 {
		t.Errorf("uncached engine reported cache hits: %d, %d", s1.CacheHits, s2.CacheHits)
	}
}

// TestStatsCountsRetractionTraffic: a query that discovers a dead storage
// node triggers the Sect. III-D retraction path, and the drop
// notifications are measurable through Stats.RetractionBytes.
func TestStatsCountsRetractionTraffic(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 5, data)
	sys.FailNode("D2")
	e := NewEngine(sys, Options{Strategy: StrategyChain})
	_, stats, done, err := e.Query("D1", paperQueries["fig5-primitive"], now)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaleDrops == 0 {
		t.Fatal("failed node not observed; retraction path not exercised")
	}
	if stats.RetractionBytes() == 0 {
		t.Error("retraction path produced no index.drop_node traffic")
	}
	if got := stats.PerMethod[overlay.MethodDropNode].Bytes; got != stats.RetractionBytes() {
		t.Errorf("RetractionBytes = %d, PerMethod[%s].Bytes = %d",
			stats.RetractionBytes(), overlay.MethodDropNode, got)
	}
	// Once the postings are dropped, repeat queries carry no retraction
	// traffic.
	_, stats2, _, err := e.Query("D1", paperQueries["fig5-primitive"], done)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.RetractionBytes() != 0 {
		t.Errorf("second query still retracting: %d bytes", stats2.RetractionBytes())
	}
}
