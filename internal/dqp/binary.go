package dqp

import (
	"fmt"

	"adhocshare/internal/chord"
	"adhocshare/internal/overlay"
	"adhocshare/internal/simnet"
)

// The hand-rolled half of the payload codec (ROADMAP item 1): the hot
// payload families — chord lookup/batch routing, overlay publication and
// lookup, result shipping — encode through deterministic, reflection-free
// EncodeBinary/DecodeBinary methods instead of gob. A payload's first wire
// byte is its format tag: tagGob marks a gob stream (interface-bearing and
// maintenance-only payloads), every other tag names one concrete binary
// type below. The adhoclint codec rule cross-checks this dispatch against
// the wire-type inventory, so a payload cannot silently ride gob
// reflection without a //adhoclint:gobfallback directive, and a type with
// EncodeBinary cannot be missing from binaryTag or decodeBinary.

// Format tags. tagGob must stay zero: it doubles as the marker for the
// reflection fallback stream.
const (
	tagGob byte = iota
	tagBytes
	tagChordRef
	tagChordFindReq
	tagChordFindResp
	tagChordBatchFindReq
	tagChordBatchFindResp
	tagChordRefList
	tagPutReq
	tagPutBatchReq
	tagLookupReq
	tagPostingsResp
	tagTransferReq
	tagDropNodeReq
	tagSolutionsResp
	tagCountReq
	tagCountResp
	tagTriplesResp
	tagHotReplicaReq
	tagHotLookupReq
	tagHotPostingsResp
)

// binaryEncoder is the contract of a binary-codec payload: append-style
// encoding into a caller-sized buffer.
type binaryEncoder interface {
	simnet.Payload
	EncodeBinary(dst []byte) []byte
}

// binaryTag maps a concrete payload to its format tag. Payloads without a
// tag (interface-bearing or maintenance-only types) take the gob fallback.
func binaryTag(p simnet.Payload) (byte, bool) {
	switch p.(type) {
	case simnet.Bytes:
		return tagBytes, true
	case chord.Ref:
		return tagChordRef, true
	case chord.FindReq:
		return tagChordFindReq, true
	case chord.FindResp:
		return tagChordFindResp, true
	case chord.BatchFindReq:
		return tagChordBatchFindReq, true
	case chord.BatchFindResp:
		return tagChordBatchFindResp, true
	case chord.RefList:
		return tagChordRefList, true
	case overlay.PutReq:
		return tagPutReq, true
	case overlay.PutBatchReq:
		return tagPutBatchReq, true
	case overlay.LookupReq:
		return tagLookupReq, true
	case overlay.PostingsResp:
		return tagPostingsResp, true
	case overlay.TransferReq:
		return tagTransferReq, true
	case overlay.DropNodeReq:
		return tagDropNodeReq, true
	case overlay.SolutionsResp:
		return tagSolutionsResp, true
	case overlay.CountReq:
		return tagCountReq, true
	case overlay.CountResp:
		return tagCountResp, true
	case overlay.TriplesResp:
		return tagTriplesResp, true
	case overlay.HotReplicaReq:
		return tagHotReplicaReq, true
	case overlay.HotLookupReq:
		return tagHotLookupReq, true
	case overlay.HotPostingsResp:
		return tagHotPostingsResp, true
	}
	return 0, false
}

// decodeBinary decodes the payload named by a non-gob format tag.
func decodeBinary(tag byte, data []byte) (simnet.Payload, error) {
	switch tag {
	case tagBytes:
		var v simnet.Bytes
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagChordRef:
		var v chord.Ref
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagChordFindReq:
		var v chord.FindReq
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagChordFindResp:
		var v chord.FindResp
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagChordBatchFindReq:
		var v chord.BatchFindReq
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagChordBatchFindResp:
		var v chord.BatchFindResp
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagChordRefList:
		var v chord.RefList
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagPutReq:
		var v overlay.PutReq
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagPutBatchReq:
		var v overlay.PutBatchReq
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagLookupReq:
		var v overlay.LookupReq
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagPostingsResp:
		var v overlay.PostingsResp
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagTransferReq:
		var v overlay.TransferReq
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagDropNodeReq:
		var v overlay.DropNodeReq
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagSolutionsResp:
		var v overlay.SolutionsResp
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagCountReq:
		var v overlay.CountReq
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagCountResp:
		var v overlay.CountResp
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagTriplesResp:
		var v overlay.TriplesResp
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagHotReplicaReq:
		var v overlay.HotReplicaReq
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagHotLookupReq:
		var v overlay.HotLookupReq
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	case tagHotPostingsResp:
		var v overlay.HotPostingsResp
		rest, err := v.DecodeBinary(data)
		return checkRest(v, rest, err)
	}
	return nil, fmt.Errorf("dqp: unknown payload format tag %d", tag)
}

// checkRest finishes a binary decode: the payload must consume its whole
// input, or the frame was corrupt.
func checkRest(p simnet.Payload, rest []byte, err error) (simnet.Payload, error) {
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("dqp: %d trailing bytes after binary payload", len(rest))
	}
	return p, nil
}
