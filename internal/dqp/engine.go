package dqp

import (
	"fmt"
	"time"

	"adhocshare/internal/flight"
	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
	"adhocshare/internal/sparql/eval"
	"adhocshare/internal/sparql/optimize"
	"adhocshare/internal/trace"
)

// Engine executes SPARQL queries over a hybrid overlay deployment,
// implementing the workflow of the paper's Fig. 3.
type Engine struct {
	sys   *overlay.System
	opts  Options
	cache *lookupCache
	// hot is the lookup entry point: the legacy resolve-then-read path on
	// a static system, the replica-preferring adaptive path when
	// overlay.Config.Adaptive is on (it learns hot-replica advertisements
	// per engine, mirroring the per-initiator lookup cache).
	hot *overlay.LookupClient
}

// NewEngine creates an engine over the given deployment. An engine holds
// per-initiator state (the optional lookup cache), so reuse one engine per
// querying node to benefit from caching.
func NewEngine(sys *overlay.System, opts Options) *Engine {
	return &Engine{sys: sys, opts: opts, cache: newLookupCache(0), hot: overlay.NewLookupClient(sys)}
}

// CachedLookups reports the number of memoized index resolutions.
func (e *Engine) CachedLookups() int { return e.cache.Len() }

// Options returns the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// Result is the outcome of one query.
type Result struct {
	// Vars are the projected variable names (SELECT).
	Vars []string
	// Solutions is the final solution sequence.
	Solutions eval.Solutions
	// IsAsk marks an ASK query; Ask is its boolean answer.
	IsAsk bool
	Ask   bool
	// Triples carries CONSTRUCT/DESCRIBE output.
	Triples []rdf.Triple
	// Plan is the optimized algebra plan, for explain output.
	Plan string
}

// qctx threads per-query execution state: the engine-side accounting that
// is not derivable from network metrics.
type qctx struct {
	initiator simnet.Addr
	// dataset carries the query's FROM graph IRIs (nil = the union of all
	// shared triples, Sect. IV-A); fromNamed the FROM NAMED IRIs available
	// to GRAPH patterns.
	dataset   []string
	fromNamed []string
	// existenceOnly marks ASK queries: a single complete solution
	// suffices, so single-pattern executions may stop early.
	existenceOnly bool
	hops          int
	subq          int
	targets       map[simnet.Addr]bool
	drops         int
	cacheHits     int
	replicaHits   int
	// rec is the span recorder (nil = tracing disabled, checked once in
	// Run); tc is the query's root trace context and seq the serial child
	// allocator — only ever incremented outside Parallel branches, so
	// derived span identifiers stay deterministic.
	rec trace.Recorder
	tc  trace.TraceContext
	seq uint64
	// flt is the flight recorder (nil = disabled, checked once in Run);
	// query stage transitions land in the initiator's event ring.
	flt *flight.Recorder
}

// stage flight-records one query stage transition at the initiator.
func (c *qctx) stage(name string, start, end simnet.VTime) {
	if c.flt == nil {
		return
	}
	c.flt.Emit(flight.Event{
		Node:   string(c.initiator),
		Kind:   flight.KindStage,
		VT:     int64(start),
		End:    int64(end),
		Method: name,
		Query:  c.tc.Query,
	})
}

// nextTC derives the next serial child context of a parent span. It must
// not be called inside simnet.Parallel branches (derive from the branch
// index there instead).
//adhoclint:faultpath(benign, trace-span counter; a span identifier wasted by a failed operation is unobservable)
func (c *qctx) nextTC(parent trace.TraceContext) trace.TraceContext {
	c.seq++
	return parent.Child(c.seq)
}

// countSubquery records one answered sub-query against a provider.
//adhoclint:faultpath(benign, query-scoped statistics; discarded with the context when the query fails)
func (c *qctx) countSubquery(target simnet.Addr) {
	c.subq++
	c.targets[target] = true
}

// countDrop records one stale-posting cleanup triggered by this query.
//adhoclint:faultpath(benign, query-scoped statistics; discarded with the context when the query fails)
func (c *qctx) countDrop() {
	c.drops++
}

// countLookup records one location-table lookup's routing cost.
//adhoclint:faultpath(benign, query-scoped statistics; discarded with the context when the query fails)
func (c *qctx) countLookup(hops int, hit bool) {
	c.hops += hops
	if hit {
		c.cacheHits++
	}
}

// countReplicaHit records one lookup served by a hot-key replica holder.
//adhoclint:faultpath(benign, query-scoped statistics; discarded with the context when the query fails)
func (c *qctx) countReplicaHit() {
	c.replicaHits++
}

// opSpan records an engine-level operation span when tracing is enabled.
func (c *qctx) opSpan(tc trace.TraceContext, name, site, note string, start, end simnet.VTime) {
	if c.rec == nil {
		return
	}
	c.rec.Record(trace.Span{
		Query:  tc.Query,
		ID:     tc.Span,
		Parent: tc.Parent,
		Kind:   trace.KindOp,
		Name:   name,
		From:   site,
		Start:  int64(start),
		End:    int64(end),
		Note:   note,
	})
}

// Query parses, optimizes and executes a query issued by the given
// initiator node at virtual time at. It returns the result, cost
// statistics and the virtual completion time.
func (e *Engine) Query(initiator simnet.Addr, query string, at simnet.VTime) (*Result, Stats, simnet.VTime, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, Stats{}, at, err
	}
	return e.Run(initiator, q, at)
}

// Run executes an already-parsed query.
func (e *Engine) Run(initiator simnet.Addr, q *sparql.Query, at simnet.VTime) (*Result, Stats, simnet.VTime, error) {
	if q.Form == sparql.FormDescribe && q.Where == nil {
		return e.runBareDescribe(initiator, q, at)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		return nil, Stats{}, at, err
	}
	// Global query optimization (Fig. 3): algebraic rewrites at the
	// initiator. Join reordering by location-table frequencies happens at
	// plan time inside exec, where the postings are available.
	op = optimize.Optimize(op, optimize.Options{
		PushFilters: e.opts.PushFilters,
		ReorderBGP:  false,
	})

	before := e.sys.Net().Metrics()
	ctx := &qctx{initiator: initiator, dataset: q.From, fromNamed: q.FromNamed,
		existenceOnly: q.Form == sparql.FormAsk, targets: map[simnet.Addr]bool{}}
	if rec := e.sys.Net().Recorder(); rec != nil {
		ctx.rec = rec
		ctx.tc = trace.Root(e.sys.NextTraceID())
	}
	ctx.flt = e.sys.Net().FlightRecorder()

	res, done, err := e.exec(ctx, op, at)
	ctx.stage("exec", at, done)
	if err != nil {
		return nil, Stats{}, done, err
	}
	// Post-processing happens at the initiator: ship the final solutions
	// home first (Fig. 3 "Post-Processing").
	shipped := done
	res, done, err = e.shipTo(ctx, res, ctx.initiator, methodResult, done)
	ctx.stage("ship-result", shipped, done)
	if err != nil {
		return nil, Stats{}, done, err
	}

	out := &Result{Plan: op.String(), Solutions: res.sols}
	switch q.Form {
	case sparql.FormSelect:
		out.Vars = op.Vars()
	case sparql.FormAsk:
		out.IsAsk = true
		out.Ask = len(res.sols) > 0
	case sparql.FormConstruct:
		out.Triples = eval.Construct(q.Template, res.sols)
	case sparql.FormDescribe:
		var ts []rdf.Triple
		ts, done, err = e.describe(ctx, q, res.sols, done)
		if err != nil {
			return nil, Stats{}, done, err
		}
		out.Triples = ts
	}
	ctx.opSpan(ctx.tc, "dqp.query", string(initiator),
		e.opts.Strategy.String()+"/"+e.opts.Conjunction.String(), at, done)
	ctx.stage("post-process", done, done)

	delta := e.sys.Net().Metrics().Sub(before)
	stats := Stats{
		Messages:         delta.Messages,
		Bytes:            delta.Bytes,
		PerMethod:        delta.PerMethod,
		ResponseTime:     time.Duration(done - at),
		LookupHops:       ctx.hops,
		Subqueries:       ctx.subq,
		TargetsContacted: len(ctx.targets),
		StaleDrops:       ctx.drops,
		CacheHits:        ctx.cacheHits,
		ReplicaHits:      ctx.replicaHits,
		Solutions:        len(out.Solutions),
	}
	return out, stats, done, nil
}

// runBareDescribe handles DESCRIBE with no WHERE clause: the describe
// terms are resolved directly.
func (e *Engine) runBareDescribe(initiator simnet.Addr, q *sparql.Query, at simnet.VTime) (*Result, Stats, simnet.VTime, error) {
	before := e.sys.Net().Metrics()
	ctx := &qctx{initiator: initiator, targets: map[simnet.Addr]bool{}}
	if rec := e.sys.Net().Recorder(); rec != nil {
		ctx.rec = rec
		ctx.tc = trace.Root(e.sys.NextTraceID())
	}
	ts, done, err := e.describe(ctx, q, nil, at)
	if err != nil {
		return nil, Stats{}, done, err
	}
	ctx.opSpan(ctx.tc, "dqp.query", string(initiator), "describe", at, done)
	delta := e.sys.Net().Metrics().Sub(before)
	stats := Stats{
		Messages:         delta.Messages,
		Bytes:            delta.Bytes,
		PerMethod:        delta.PerMethod,
		ResponseTime:     time.Duration(done - at),
		LookupHops:       ctx.hops,
		Subqueries:       ctx.subq,
		TargetsContacted: len(ctx.targets),
		StaleDrops:       ctx.drops,
		CacheHits:        ctx.cacheHits,
		ReplicaHits:      ctx.replicaHits,
	}
	return &Result{Triples: ts, Plan: "Describe"}, stats, done, nil
}

// describe fetches all triples whose subject is one of the describe terms
// (constants, or variable bindings from the WHERE clause).
func (e *Engine) describe(ctx *qctx, q *sparql.Query, sols eval.Solutions, at simnet.VTime) ([]rdf.Triple, simnet.VTime, error) {
	resources := map[rdf.Term]bool{}
	for _, t := range q.DescribeTerms {
		if t.IsVar() {
			for _, b := range sols {
				if v, ok := b[t.Value]; ok {
					resources[v] = true
				}
			}
		} else {
			resources[t] = true
		}
	}
	if q.Star {
		for _, b := range sols {
			for _, v := range b {
				if v.Kind == rdf.KindIRI {
					resources[v] = true
				}
			}
		}
	}
	seen := map[rdf.Triple]bool{}
	var out []rdf.Triple
	now := at
	for r := range resources {
		pat := rdf.Triple{S: r, P: rdf.NewVar("p"), O: rdf.NewVar("o")}
		res, done, err := e.execBGP(ctx, []rdf.Triple{pat}, nil, rdf.Term{}, now)
		now = done
		if err != nil {
			return nil, now, err
		}
		res, done, err = e.shipTo(ctx, res, ctx.initiator, methodResult, now)
		now = done
		if err != nil {
			return nil, now, err
		}
		for _, b := range res.sols {
			t := rdf.Triple{S: r, P: b["p"], O: b["o"]}
			if t.IsConcrete() && !seen[t] {
				seen[t] = true
				out = append(out, t)
			}
		}
	}
	rdf.SortTriples(out)
	return out, now, nil
}

// Explain returns the optimized algebra plan for a query without running
// it.
func (e *Engine) Explain(query string) (string, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return "", err
	}
	op, err := algebra.Translate(q)
	if err != nil {
		return "", err
	}
	op = optimize.Optimize(op, optimize.Options{
		PushFilters: e.opts.PushFilters,
		ReorderBGP:  e.opts.ReorderJoins,
	})
	return op.String(), nil
}

// errUnsupported marks operators the distributed executor cannot place.
func errUnsupported(op algebra.Op) error {
	return fmt.Errorf("dqp: unsupported operator %T in distributed plan", op)
}
