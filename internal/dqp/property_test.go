package dqp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"adhocshare/internal/rdf"
)

// TestRandomizedDistributedOracleEquivalence generates random small
// datasets, random BGP queries (with random bound/unbound positions and
// optional numeric filters) and random execution options, and checks that
// the distributed execution always matches the centralized oracle. This
// is the system-level property backing every per-feature test.
func TestRandomizedDistributedOracleEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized property test")
	}
	for seed := int64(0); seed < 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			data := randomDataset(rng)
			sys, now := buildSystem(t, 3+rng.Intn(4), data)
			for q := 0; q < 6; q++ {
				query := randomQuery(rng)
				want := oracle(t, data, query)
				opts := randomOptions(rng)
				e := NewEngine(sys, opts)
				res, _, done, err := e.Query("P0", query, now)
				now = done
				if err != nil {
					t.Fatalf("query %s with %+v: %v", query, opts, err)
				}
				if !sameMultiset(res.Solutions, want) {
					t.Errorf("mismatch for %s\nopts: %+v\ngot:  %v\nwant: %v",
						query, opts, res.Solutions, want)
				}
			}
		})
	}
}

// randomDataset spreads a small random graph over 2-5 providers, with
// deliberate cross-provider duplication of some triples.
func randomDataset(rng *rand.Rand) map[string][]rdf.Triple {
	nProviders := 2 + rng.Intn(4)
	nTriples := 10 + rng.Intn(40)
	subjects := 4 + rng.Intn(6)
	preds := []rdf.Term{fp("knows"), fp("likes"), fp("age"), fp("name")}
	data := map[string][]rdf.Triple{}
	for i := 0; i < nProviders; i++ {
		data[fmt.Sprintf("P%d", i)] = nil
	}
	for i := 0; i < nTriples; i++ {
		s := ex(fmt.Sprintf("s%d", rng.Intn(subjects)))
		p := preds[rng.Intn(len(preds))]
		var o rdf.Term
		switch p.Value {
		case foaf + "age":
			o = rdf.NewInteger(int64(rng.Intn(50)))
		case foaf + "name":
			o = rdf.NewLiteral(fmt.Sprintf("Name%d", rng.Intn(subjects)))
		default:
			o = ex(fmt.Sprintf("s%d", rng.Intn(subjects)))
		}
		tr := rdf.Triple{S: s, P: p, O: o}
		prov := fmt.Sprintf("P%d", rng.Intn(nProviders))
		data[prov] = append(data[prov], tr)
		if rng.Intn(4) == 0 { // duplicate the fact at another provider
			other := fmt.Sprintf("P%d", rng.Intn(nProviders))
			data[other] = append(data[other], tr)
		}
	}
	return data
}

// randomQuery builds a 1-3 pattern BGP with random constant positions,
// optionally a numeric filter, optionally DISTINCT.
func randomQuery(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("PREFIX foaf: <http://xmlns.com/foaf/0.1/>\nSELECT ")
	if rng.Intn(3) == 0 {
		sb.WriteString("DISTINCT ")
	}
	sb.WriteString("* WHERE {\n")
	nPats := 1 + rng.Intn(3)
	vars := []string{"a", "b", "c", "d"}
	withAge := false
	for i := 0; i < nPats; i++ {
		// subject: shared variable or constant
		var s string
		if rng.Intn(3) == 0 {
			s = fmt.Sprintf("<http://example.org/s%d>", rng.Intn(6))
		} else {
			s = "?" + vars[rng.Intn(2)] // bias toward shared vars
		}
		var p, o string
		switch rng.Intn(4) {
		case 0:
			p, o = "foaf:knows", randomObject(rng, vars)
		case 1:
			p, o = "foaf:likes", randomObject(rng, vars)
		case 2:
			p = "foaf:age"
			o = "?age"
			withAge = true
		default:
			p = "foaf:name"
			if rng.Intn(2) == 0 {
				o = fmt.Sprintf("%q", fmt.Sprintf("Name%d", rng.Intn(6)))
			} else {
				o = "?" + vars[2+rng.Intn(2)]
			}
		}
		fmt.Fprintf(&sb, "  %s %s %s .\n", s, p, o)
	}
	if withAge && rng.Intn(2) == 0 {
		fmt.Fprintf(&sb, "  FILTER(?age >= %d)\n", rng.Intn(40))
	}
	sb.WriteString("}")
	return sb.String()
}

func randomObject(rng *rand.Rand, vars []string) string {
	if rng.Intn(2) == 0 {
		return fmt.Sprintf("<http://example.org/s%d>", rng.Intn(6))
	}
	return "?" + vars[rng.Intn(len(vars))]
}

func randomOptions(rng *rand.Rand) Options {
	return Options{
		Strategy:     Strategy(rng.Intn(3)),
		Conjunction:  Conjunction(rng.Intn(2)),
		JoinSite:     JoinSitePolicy(rng.Intn(4)),
		PushFilters:  rng.Intn(2) == 0,
		ReorderJoins: rng.Intn(2) == 0,
		CacheLookups: rng.Intn(2) == 0,
	}
}
