package dqp

import (
	"fmt"
	"math/rand"
	"testing"
)

// e9Configs enumerates exactly the strategy matrix the E9 Fig. 4
// end-to-end experiment sweeps: three strategies × two conjunction
// operators × the two optimizer-flag corners.
func e9Configs() []Options {
	var out []Options
	for _, st := range []Strategy{StrategyBasic, StrategyChain, StrategyFreqChain} {
		for _, cj := range []Conjunction{ConjPipeline, ConjParallelJoin} {
			for _, flags := range []struct{ push, reorder bool }{{false, false}, {true, true}} {
				out = append(out, Options{
					Strategy: st, Conjunction: cj, JoinSite: JoinSiteMoveSmall,
					PushFilters: flags.push, ReorderJoins: flags.reorder,
				})
			}
		}
	}
	return out
}

// TestDifferentialOracleE9Matrix evaluates every E9 strategy configuration
// against the centralized single-store oracle (eval.Eval over the union of
// all providers' triples) on seeded random workloads — and does so for
// both publication pipelines, so the parallel publish path (batched key
// resolution, concurrent per-owner shipping, successor-owner cache) is
// differentially verified to index exactly what the serial path indexes:
// every configuration must return the oracle's solution multiset.
func TestDifferentialOracleE9Matrix(t *testing.T) {
	configs := e9Configs()
	for _, serialPublish := range []bool{false, true} {
		name := "parallel-publish"
		if serialPublish {
			name = "serial-publish"
		}
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				seed := seed
				t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
					rng := rand.New(rand.NewSource(300 + seed))
					data := randomDataset(rng)
					sys, now := buildSystemPublish(t, 3+int(seed), data, serialPublish)
					for q := 0; q < 3; q++ {
						query := randomQuery(rng)
						want := oracle(t, data, query)
						for _, opts := range configs {
							e := NewEngine(sys, opts)
							res, _, done, err := e.Query("P0", query, now)
							now = done
							if err != nil {
								t.Fatalf("query %s with %+v: %v", query, opts, err)
							}
							if !sameMultiset(res.Solutions, want) {
								t.Errorf("oracle mismatch for %s\nopts: %+v\ngot:  %v\nwant: %v",
									query, opts, res.Solutions, want)
							}
						}
					}
				})
			}
		})
	}
}

// TestDifferentialOraclePaperQuery pins the matrix to the paper's running
// example: deterministic data, a conjunctive query with a shared join
// variable, all E9 configurations, both publish paths.
func TestDifferentialOraclePaperQuery(t *testing.T) {
	query := `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?n WHERE { ?x foaf:knows <http://example.org/carol> . ?x foaf:name ?n . }`
	data := paperData()
	want := oracle(t, data, query)
	if len(want) == 0 {
		t.Fatal("oracle returned no solutions; the fixture is broken")
	}
	for _, serialPublish := range []bool{false, true} {
		sys, now := buildSystemPublish(t, 4, data, serialPublish)
		for _, opts := range e9Configs() {
			e := NewEngine(sys, opts)
			res, _, done, err := e.Query("D1", query, now)
			now = done
			if err != nil {
				t.Fatalf("serialPublish=%v opts=%+v: %v", serialPublish, opts, err)
			}
			if !sameMultiset(res.Solutions, want) {
				t.Errorf("serialPublish=%v opts=%+v: got %v, want %v",
					serialPublish, opts, res.Solutions, want)
			}
		}
	}
}
