package dqp

import (
	"fmt"
	"math/rand"
	"testing"

	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
	"adhocshare/internal/sparql/eval"
)

// TestChurnSoak drives a deployment through a random sequence of events —
// provider publishes and retractions, provider crashes and recoveries with
// republication, index joins, graceful index departures and index crashes
// with healing — and after every event checks a query against the oracle
// over the data currently reachable (live providers' triples).
func TestChurnSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			sys, now := buildSystem(t, 6, map[string][]rdf.Triple{
				"P0": nil, "P1": nil, "P2": nil, "P3": nil, "P4": nil, "P5": nil,
			})
			providers := []simnet.Addr{"P0", "P1", "P2", "P3", "P4", "P5"}
			failed := map[simnet.Addr]bool{}
			// per-provider shared triples (mirrors what the system holds)
			held := map[simnet.Addr][]rdf.Triple{}
			tripleSeq := 0
			indexSeq := 0

			mkTriples := func(n int) []rdf.Triple {
				var ts []rdf.Triple
				for i := 0; i < n; i++ {
					tripleSeq++
					ts = append(ts, rdf.Triple{
						S: ex(fmt.Sprintf("s%d", tripleSeq%20)),
						P: fp("knows"),
						O: ex(fmt.Sprintf("o%d", rng.Intn(6))),
					})
				}
				return ts
			}
			oracleNow := func() eval.Solutions {
				g := rdf.NewGraph()
				for p, ts := range held {
					if !failed[p] {
						g.AddAll(ts)
					}
				}
				q, err := sparql.Parse(soakQuery)
				if err != nil {
					t.Fatal(err)
				}
				op, err := algebra.Translate(q)
				if err != nil {
					t.Fatal(err)
				}
				sols, err := eval.Eval(op, g)
				if err != nil {
					t.Fatal(err)
				}
				return sols
			}
			check := func(step int, opts Options) {
				e := NewEngine(sys, opts)
				initiator := providers[rng.Intn(len(providers))]
				if failed[initiator] {
					initiator = liveProvider(providers, failed)
					if initiator == "" {
						return
					}
				}
				// run twice: the first run may observe fresh failures and
				// clean the index; the second must be complete
				_, _, done, err := e.Query(initiator, soakQuery, now)
				now = done
				if err != nil {
					t.Fatalf("step %d: query: %v", step, err)
				}
				res, _, done, err := e.Query(initiator, soakQuery, now)
				now = done
				if err != nil {
					t.Fatalf("step %d: query: %v", step, err)
				}
				want := oracleNow()
				if !sameMultiset(res.Solutions, want) {
					t.Fatalf("step %d: got %d solutions, oracle %d\ngot:  %v\nwant: %v",
						step, len(res.Solutions), len(want), res.Solutions, want)
				}
			}

			for step := 0; step < 25; step++ {
				switch rng.Intn(7) {
				case 0, 1: // publish
					p := liveProvider(providers, failed)
					if p == "" {
						continue
					}
					ts := mkTriples(1 + rng.Intn(4))
					done, err := sys.Publish(p, ts, now)
					now = done
					if err != nil {
						t.Fatalf("step %d: publish: %v", step, err)
					}
					held[p] = append(held[p], uniqueNew(held[p], ts)...)
				case 2: // retract some
					p := liveProvider(providers, failed)
					if p == "" || len(held[p]) == 0 {
						continue
					}
					k := 1 + rng.Intn(len(held[p]))
					ts := held[p][:k]
					done, err := sys.Retract(p, ts, now)
					now = done
					if err != nil {
						t.Fatalf("step %d: retract: %v", step, err)
					}
					held[p] = append([]rdf.Triple(nil), held[p][k:]...)
				case 3: // crash a provider
					p := liveProvider(providers, failed)
					if p == "" {
						continue
					}
					sys.FailNode(p)
					failed[p] = true
				case 4: // recover a provider and republish
					var dead []simnet.Addr
					for p, f := range failed {
						if f {
							dead = append(dead, p)
						}
					}
					if len(dead) == 0 {
						continue
					}
					p := dead[rng.Intn(len(dead))]
					sys.RecoverNode(p)
					failed[p] = false
					done, err := sys.Republish(p, now)
					now = done
					if err != nil {
						t.Fatalf("step %d: republish: %v", step, err)
					}
				case 5: // index join
					indexSeq++
					_, done, err := sys.AddIndexNode(simnet.Addr(fmt.Sprintf("idx-j%d", indexSeq)), now)
					now = done
					if err != nil {
						t.Fatalf("step %d: index join: %v", step, err)
					}
					now = sys.Converge(now)
				case 6: // index departure (graceful) or crash, keeping ≥4
					idx := sys.IndexNodes()
					live := 0
					for _, n := range idx {
						if sys.Net().Alive(n.Addr()) {
							live++
						}
					}
					if live <= 4 {
						continue
					}
					victim := idx[rng.Intn(len(idx))]
					if !sys.Net().Alive(victim.Addr()) {
						continue
					}
					if rng.Intn(2) == 0 {
						done, err := sys.RemoveIndexGraceful(victim.Addr(), now)
						now = done
						if err != nil {
							t.Fatalf("step %d: graceful leave: %v", step, err)
						}
					} else {
						sys.FailNode(victim.Addr())
						for i := 0; i < 4; i++ {
							now = sys.StabilizeRound(now)
						}
						now = sys.Converge(now)
					}
				}
				check(step, randomOptions(rng))
			}
		})
	}
}

const soakQuery = `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y WHERE { ?x foaf:knows ?y . }`

func liveProvider(providers []simnet.Addr, failed map[simnet.Addr]bool) simnet.Addr {
	for _, p := range providers {
		if !failed[p] {
			return p
		}
	}
	return ""
}

// uniqueNew returns the triples of ts not already in have (publication
// ignores duplicates, so the oracle must too).
func uniqueNew(have, ts []rdf.Triple) []rdf.Triple {
	seen := map[rdf.Triple]bool{}
	for _, t := range have {
		seen[t] = true
	}
	var out []rdf.Triple
	for _, t := range ts {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
