package dqp

import (
	"fmt"
	"time"

	"adhocshare/internal/simnet"
)

// Stats summarizes the cost of one distributed query execution. All
// network figures come from simnet accounting; ResponseTime is the virtual
// critical-path latency from submission to the final result arriving at
// the initiator.
type Stats struct {
	// Messages and Bytes cover every message the query caused, including
	// index lookups, sub-query shipping and result returns.
	Messages int64
	Bytes    int64
	// PerMethod breaks traffic down by RPC method.
	PerMethod map[string]simnet.MethodStats
	// ResponseTime is the virtual end-to-end latency.
	ResponseTime time.Duration
	// LookupHops is the total number of Chord forwarding hops across all
	// index lookups of the query.
	LookupHops int
	// Subqueries counts sub-query executions at storage nodes.
	Subqueries int
	// TargetsContacted is the number of distinct storage nodes that
	// executed sub-queries.
	TargetsContacted int
	// StaleDrops counts storage nodes found unreachable during execution
	// whose postings were dropped from index nodes (Sect. III-D timeout
	// cleanup).
	StaleDrops int
	// CacheHits counts index lookups answered from the initiator's
	// memoized location-table rows without touching the ring.
	CacheHits int
	// ReplicaHits counts index lookups served by a hot-key replica holder
	// instead of the key's home successor (Adaptive deployments only).
	ReplicaHits int
	// Solutions is the number of rows in the final result.
	Solutions int
}

// ShippedSolutionBytes sums the traffic of solution-carrying methods —
// the "intermediate results" volume the paper's optimizations minimize.
func (s Stats) ShippedSolutionBytes() int64 {
	var n int64
	for _, m := range []string{"store.match", "store.chain", "dqp.ship", "dqp.result"} {
		n += s.PerMethod[m].Bytes
	}
	return n
}

// IndexBytes sums the routing/lookup traffic of the two-level index.
func (s Stats) IndexBytes() int64 {
	var n int64
	for method, st := range s.PerMethod {
		if len(method) > 6 && method[:6] == "chord." || len(method) > 6 && method[:6] == "index." {
			n += st.Bytes
		}
	}
	return n
}

// RetractionBytes sums the traffic of the retraction path: the drop
// notifications that remove a stale provider's postings from index nodes
// (Sect. III-D timeout cleanup) during query execution.
func (s Stats) RetractionBytes() int64 {
	return s.PerMethod["index.drop_node"].Bytes
}

func (s Stats) String() string {
	return fmt.Sprintf("msgs=%d bytes=%d resp=%v hops=%d subq=%d targets=%d drops=%d cachehits=%d sols=%d",
		s.Messages, s.Bytes, s.ResponseTime, s.LookupHops, s.Subqueries,
		s.TargetsContacted, s.StaleDrops, s.CacheHits, s.Solutions)
}
