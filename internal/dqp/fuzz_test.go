package dqp

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzCodecRoundTrip cross-checks the hand-rolled binary wire codec
// against the registered gob baseline on fuzzer-mutated inputs:
//
//  1. DecodePayload must never panic — malformed input only errors;
//  2. any payload that decodes must survive a binary re-encode/decode
//     round trip unchanged;
//  3. the same payload pushed through the gob baseline must decode back
//     to the same value (the two codecs agree on the value space);
//  4. binary encoding must be deterministic: re-encoding the round-
//     tripped value yields byte-identical output.
//
// Seeds come from methodSamples — both wire forms of every RPC method of
// the four vocabularies — plus the committed adversarial corpus under
// testdata/fuzz/FuzzCodecRoundTrip (truncated frames, bad tags, corrupt
// gob streams, non-minimal varints).
func FuzzCodecRoundTrip(f *testing.F) {
	for _, s := range samplePayloads() {
		if data, err := EncodePayload(s.p); err == nil {
			f.Add(data)
		}
		if data, err := EncodePayloadGob(s.p); err == nil {
			f.Add(data)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePayload(data)
		if err != nil {
			return // malformed input: rejected, not crashed
		}
		bin, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("re-encode of decoded payload %#v: %v", p, err)
		}
		p2, err := DecodePayload(bin)
		if err != nil {
			t.Fatalf("decode of re-encoded payload %#v: %v", p, err)
		}
		if !reflect.DeepEqual(p, p2) {
			t.Fatalf("binary round trip changed the payload:\n was: %#v\n got: %#v", p, p2)
		}
		gobData, err := EncodePayloadGob(p)
		if err != nil {
			t.Fatalf("gob re-encode of decoded payload %#v: %v", p, err)
		}
		p3, err := DecodePayload(gobData)
		if err != nil {
			t.Fatalf("decode of gob re-encoded payload %#v: %v", p, err)
		}
		if !reflect.DeepEqual(p, p3) {
			t.Fatalf("gob cross-check changed the payload:\n was: %#v\n got: %#v", p, p3)
		}
		// Determinism matters only on the binary path: gob's map
		// serialization order is unspecified.
		if _, binary := binaryTag(p); binary {
			bin2, err := EncodePayload(p2)
			if err != nil {
				t.Fatalf("second re-encode of %#v: %v", p2, err)
			}
			if !bytes.Equal(bin, bin2) {
				t.Fatalf("binary encoding is not deterministic for %#v:\n first:  %x\n second: %x", p, bin, bin2)
			}
		}
	})
}
