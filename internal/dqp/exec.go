package dqp

import (
	"errors"
	"sort"

	"adhocshare/internal/chord"
	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
	"adhocshare/internal/sparql/eval"
	"adhocshare/internal/sparql/optimize"
	"adhocshare/internal/trace"
)

// siteSet is a solution multiset together with the node it currently
// resides on — the unit of data the executor moves between sites.
type siteSet struct {
	sols eval.Solutions
	site simnet.Addr
}

// exec evaluates an algebra operator distributedly and returns the
// resulting solutions, their site and the virtual completion time.
func (e *Engine) exec(ctx *qctx, op algebra.Op, at simnet.VTime) (siteSet, simnet.VTime, error) {
	switch o := op.(type) {
	case *algebra.BGP:
		return e.execBGP(ctx, o.Patterns, nil, rdf.Term{}, at)
	case *algebra.Graph:
		// GRAPH scope: the inner BGP (optionally with a pushed filter)
		// ships with the graph name; providers match against their named
		// graphs (Sect. IV-A named-graph matching).
		switch inner := o.Input.(type) {
		case *algebra.BGP:
			return e.execBGP(ctx, inner.Patterns, nil, o.Name, at)
		case *algebra.Filter:
			if bgp, ok := inner.Input.(*algebra.BGP); ok {
				return e.execBGP(ctx, bgp.Patterns, inner.Expr, o.Name, at)
			}
		}
		return siteSet{}, at, errUnsupported(op)
	case *algebra.Filter:
		// A filter directly above a BGP ships with the sub-queries and
		// runs at the storage nodes (Sect. IV-G filter pushing); otherwise
		// it is applied where its input's solutions reside.
		if bgp, ok := o.Input.(*algebra.BGP); ok && e.opts.PushFilters {
			return e.execBGP(ctx, bgp.Patterns, o.Expr, rdf.Term{}, at)
		}
		in, done, err := e.exec(ctx, o.Input, at)
		if err != nil {
			return siteSet{}, done, err
		}
		in.sols = eval.FilterSolutions(in.sols, o.Expr)
		return in, done, nil
	case *algebra.Join:
		l, r, done, err := e.execBranches(ctx, o.Left, o.Right, at)
		if err != nil {
			return siteSet{}, done, err
		}
		return e.mergeAt(ctx, l, r, done, func(a, b eval.Solutions) eval.Solutions {
			return eval.Join(a, b)
		})
	case *algebra.LeftJoin:
		l, r, done, err := e.execBranches(ctx, o.Left, o.Right, at)
		if err != nil {
			return siteSet{}, done, err
		}
		// OPTIONAL: the move-small placement of Sect. IV-E — but the left
		// operand is the semantic anchor, so the merge function is not
		// symmetric; mergeAt keeps operand order.
		return e.mergeAt(ctx, l, r, done, func(a, b eval.Solutions) eval.Solutions {
			return eval.LeftJoinFilter(a, b, o.Expr)
		})
	case *algebra.Union:
		l, r, done, err := e.execBranches(ctx, o.Left, o.Right, at)
		if err != nil {
			return siteSet{}, done, err
		}
		return e.mergeAt(ctx, l, r, done, func(a, b eval.Solutions) eval.Solutions {
			return eval.Union(a, b)
		})
	case *algebra.Project:
		in, done, err := e.exec(ctx, o.Input, at)
		if err != nil {
			return siteSet{}, done, err
		}
		in.sols = eval.Project(in.sols, o.Names)
		return in, done, nil
	case *algebra.Distinct:
		in, done, err := e.exec(ctx, o.Input, at)
		if err != nil {
			return siteSet{}, done, err
		}
		in.sols = eval.Distinct(in.sols)
		return in, done, nil
	case *algebra.Reduced:
		in, done, err := e.exec(ctx, o.Input, at)
		if err != nil {
			return siteSet{}, done, err
		}
		in.sols = eval.Reduced(in.sols)
		return in, done, nil
	case *algebra.OrderBy:
		// Sorting is a solution-sequence modifier applied during
		// post-processing at the initiator (Fig. 3).
		in, done, err := e.exec(ctx, o.Input, at)
		if err != nil {
			return siteSet{}, done, err
		}
		in, done, err = e.shipTo(ctx, in, ctx.initiator, methodShip, done)
		if err != nil {
			return siteSet{}, done, err
		}
		in.sols = eval.Order(in.sols, o.Conds)
		return in, done, nil
	case *algebra.Slice:
		in, done, err := e.exec(ctx, o.Input, at)
		if err != nil {
			return siteSet{}, done, err
		}
		in, done, err = e.shipTo(ctx, in, ctx.initiator, methodShip, done)
		if err != nil {
			return siteSet{}, done, err
		}
		in.sols = eval.Slice(in.sols, o.Offset, o.Limit)
		return in, done, nil
	default:
		return siteSet{}, at, errUnsupported(op)
	}
}

// execBranches evaluates two operands starting at the same virtual time —
// the branches proceed in parallel on disjoint nodes, so the combined
// completion is each branch's own completion (the merge step takes the
// max).
func (e *Engine) execBranches(ctx *qctx, left, right algebra.Op, at simnet.VTime) (l, r siteSet, done simnet.VTime, err error) {
	l, lDone, err := e.exec(ctx, left, at)
	if err != nil {
		return siteSet{}, siteSet{}, lDone, err
	}
	r, rDone, err := e.exec(ctx, right, at)
	if err != nil {
		return siteSet{}, siteSet{}, rDone, err
	}
	return l, r, simnet.MaxTime(lDone, rDone), nil
}

// mergeAt brings both operands to one site per the join-site policy and
// applies the merge function there. Operand order is preserved (merge
// functions may be asymmetric, e.g. left join).
func (e *Engine) mergeAt(ctx *qctx, l, r siteSet, at simnet.VTime, merge func(a, b eval.Solutions) eval.Solutions) (siteSet, simnet.VTime, error) {
	site, err := e.pickJoinSite(ctx, l, r)
	if err != nil {
		return siteSet{}, at, err
	}
	now := at
	if l.site != site {
		shipped, done, err := e.shipTo(ctx, l, site, methodShip, now)
		if err != nil {
			return siteSet{}, done, err
		}
		l = shipped
		now = done
	}
	if r.site != site {
		shipped, done, err := e.shipTo(ctx, r, site, methodShip, now)
		if err != nil {
			return siteSet{}, done, err
		}
		r = shipped
		now = done
	}
	return siteSet{sols: merge(l.sols, r.sols), site: site}, now, nil
}

// pickJoinSite implements the join-site selection strategies of Sect. II.
// A shared site always wins (the overlap optimization of Sect. IV-D).
func (e *Engine) pickJoinSite(ctx *qctx, l, r siteSet) (simnet.Addr, error) {
	if l.site == r.site {
		return l.site, nil
	}
	switch e.opts.JoinSite {
	case JoinSiteQuerySite:
		return ctx.initiator, nil
	case JoinSiteQoS:
		return e.pickQoSSite(ctx, l, r), nil
	case JoinSiteThirdSite:
		// The paper's third-site strategy consults QoS monitors; with
		// uniform simulated links we pick the first live index node that
		// is neither operand site (deterministic).
		for _, n := range e.sys.IndexNodes() {
			a := n.Addr()
			if a != l.site && a != r.site && e.sys.Net().Alive(a) {
				return a, nil
			}
		}
		return ctx.initiator, nil
	default: // JoinSiteMoveSmall
		if l.sols.SizeBytes() <= r.sols.SizeBytes() {
			return r.site, nil
		}
		return l.site, nil
	}
}

// pickQoSSite scores candidate join sites by link quality — the
// "pushing QoS information into global query optimization" of Ye et al.
// (the paper's third-site reference). The score is the virtual cost of
// moving both operands to the candidate plus the estimated result's trip
// to the initiator, all scaled by the measured link factors.
func (e *Engine) pickQoSSite(ctx *qctx, l, r siteSet) simnet.Addr {
	net := e.sys.Net()
	lBytes := float64(l.sols.SizeBytes())
	rBytes := float64(r.sols.SizeBytes())
	// Result-size estimate: with shared variables the join is assumed
	// containing (≈ the smaller operand); without any, it is a cross
	// product of lRows×rRows rows, each the concatenation of one row from
	// each side.
	var resBytes float64
	if haveSharedVars(l.sols, r.sols) {
		resBytes = lBytes
		if rBytes < resBytes {
			resBytes = rBytes
		}
	} else {
		resBytes = float64(len(r.sols))*lBytes + float64(len(l.sols))*rBytes
	}
	candidates := []simnet.Addr{l.site, r.site, ctx.initiator}
	for _, n := range e.sys.IndexNodes() {
		if net.Alive(n.Addr()) {
			candidates = append(candidates, n.Addr())
		}
	}
	best := simnet.Addr("")
	bestCost := 0.0
	for _, c := range candidates {
		if c == "" || !net.Alive(c) {
			continue
		}
		cost := 0.0
		if c != l.site {
			cost += lBytes * net.PathFactor(l.site, c)
		}
		if c != r.site {
			cost += rBytes * net.PathFactor(r.site, c)
		}
		if c != ctx.initiator {
			cost += resBytes * net.PathFactor(c, ctx.initiator)
		}
		if best == "" || cost < bestCost || (cost == bestCost && c < best) {
			best = c
			bestCost = cost
		}
	}
	if best == "" {
		return ctx.initiator
	}
	return best
}

// haveSharedVars reports whether any variable occurs on both sides.
func haveSharedVars(a, b eval.Solutions) bool {
	inA := map[string]bool{}
	for _, m := range a {
		for v := range m {
			inA[v] = true
		}
	}
	for _, m := range b {
		for v := range m {
			if inA[v] {
				return true
			}
		}
	}
	return false
}

// shipTo moves a solution multiset to the destination site as one transfer
// message. Shipping to the current site is free. A transfer that stays lost
// after retries strands the intermediate result, so it surfaces as a
// partial-failure error instead of an incomplete answer.
func (e *Engine) shipTo(ctx *qctx, s siteSet, dest simnet.Addr, method string, at simnet.VTime) (siteSet, simnet.VTime, error) {
	if s.site == dest || s.site == "" {
		s.site = dest
		return s, at, nil
	}
	done, err := e.transferRetry(s.site, dest, method,
		overlay.SolutionsResp{Sols: s.sols, TC: ctx.nextTC(ctx.tc)}, at)
	if err != nil {
		return siteSet{}, done, err
	}
	s.site = dest
	return s, done, nil
}

// transferRetry is Transfer wrapped in the standard loss-retry loop; a
// transfer still lost after the budget surfaces as a partial-failure error
// (other errors pass through for the caller to classify).
func (e *Engine) transferRetry(from, to simnet.Addr, method string, payload simnet.Payload, at simnet.VTime) (simnet.VTime, error) {
	_, done, err := simnet.Retry(simnet.DefaultAttempts, at,
		func(at simnet.VTime) (struct{}, simnet.VTime, error) {
			done, err := e.sys.Net().Transfer(from, to, method, payload, at)
			return struct{}{}, done, err
		})
	if err != nil && simnet.IsLost(err) {
		err = &PartialFailureError{Method: method, Missing: []simnet.Addr{to}, Err: err}
	}
	return done, err
}

// patternPlan is the plan-time resolution of one triple pattern: its index
// key, the responsible index node and the location-table row (with the
// Table I frequencies that drive ordering decisions).
type patternPlan struct {
	pattern  rdf.Triple
	hasKey   bool
	key      chord.ID
	index    simnet.Addr
	postings []overlay.Posting
	flood    bool
	// stopOnFirst marks ASK executions of single-pattern BGPs: one
	// solution proves existence, so the fan-out/chain may stop early.
	stopOnFirst bool
}

// totalFreq is the number of matching triples across all targets — the
// cardinality estimate the global optimizer uses.
func (p patternPlan) totalFreq() int {
	n := 0
	for _, q := range p.postings {
		n += q.Freq
	}
	return n
}

func (p patternPlan) targetAddrs() []simnet.Addr {
	out := make([]simnet.Addr, len(p.postings))
	for i, q := range p.postings {
		out[i] = q.Node
	}
	return out
}

// planPatterns resolves every pattern of a BGP through the two-level
// index: hash the bound attribute combination, route to the responsible
// index node (level one), read the location-table row (level two). The
// lookups for the distinct keys run concurrently from the initiator —
// patterns sharing a key (same bound attribute combination) share one
// lookup — and complete at the max of the branch times; their cost is
// part of the query cost.
func (e *Engine) planPatterns(ctx *qctx, patterns []rdf.Triple, at simnet.VTime) ([]patternPlan, simnet.VTime, error) {
	plans := make([]patternPlan, len(patterns))
	bits := e.sys.Config().Bits
	keyOf := make([]chord.ID, len(patterns))
	hasKey := make([]bool, len(patterns))
	var lookups []chord.ID // distinct keys, in first-occurrence order
	seen := map[chord.ID]bool{}
	for i, pat := range patterns {
		plans[i] = patternPlan{pattern: pat}
		key, _, ok := overlay.PatternKey(pat, bits)
		if !ok {
			// All-variable pattern: no index key exists; fall back to
			// flooding every storage node (the unstructured lower layer).
			plans[i].flood = true
			for _, st := range e.sys.StorageNodes() {
				plans[i].postings = append(plans[i].postings, overlay.Posting{Node: st.Addr(), Freq: st.Graph.Size()})
			}
			continue
		}
		plans[i].hasKey = true
		keyOf[i], hasKey[i] = key, true
		if !seen[key] {
			seen[key] = true
			lookups = append(lookups, key)
		}
	}
	// The lookup fan-out gets its own op span; each branch derives its
	// message contexts from the branch index, so span identifiers stay
	// deterministic under concurrent execution.
	planTC := ctx.nextTC(ctx.tc)
	// rowResult is one resolved location-table row; hops only counts ring
	// forwarding actually performed (zero on an initiator-cache hit, which
	// hit reports so the engine can count it after the join — replica
	// likewise for lookups served by a hot-key replica holder).
	type rowResult struct {
		index    simnet.Addr
		postings []overlay.Posting
		hops     int
		hit      bool
		replica  bool
	}
	//adhoclint:faultpath(abort-all, a failed lookup leaves a pattern without its target set, so the whole query plan is unusable; the first branch error aborts planning)
	results, done := simnet.Parallel(len(lookups), 0, func(li int) (rowResult, simnet.VTime, error) {
		key := lookups[li]
		if e.opts.CacheLookups {
			if row, ok := e.cache.get(key); ok && e.sys.Net().Alive(row.index) {
				return rowResult{index: row.index, postings: append([]overlay.Posting(nil), row.postings...), hit: true}, at, nil
			}
		}
		// The lookup client sends the exact legacy resolve-then-read
		// sequence on a static system (zero epoch, same trace contexts);
		// on an adaptive system it may serve the row from a hot-key
		// replica instead. row.Index stays the key's home successor
		// either way, so join-site planning is unaffected.
		row, lookupDone, err := e.hot.Lookup(ctx.initiator, key,
			planTC.Child(uint64(2*li)), planTC.Child(uint64(2*li+1)), at)
		if err != nil {
			if simnet.IsLost(err) {
				if row.Index == "" {
					err = &PartialFailureError{Method: chord.MethodFindSuccessor, Err: err}
				} else {
					err = &PartialFailureError{Method: overlay.MethodLookup, Missing: []simnet.Addr{row.Index}, Err: err}
				}
			}
			return rowResult{}, lookupDone, err
		}
		if e.opts.CacheLookups {
			e.cache.put(key, cachedRow{
				index:    row.Index,
				postings: append([]overlay.Posting(nil), row.Postings...),
			})
		}
		return rowResult{index: row.Index, postings: row.Postings, hops: row.Hops, replica: row.ReplicaHit}, lookupDone, nil
	})
	rows := make(map[chord.ID]rowResult, len(lookups))
	for li, r := range results {
		if r.Err != nil {
			return nil, simnet.MaxTime(at, done), r.Err
		}
		rows[lookups[li]] = r.Value
		ctx.countLookup(r.Value.hops, r.Value.hit)
		if r.Value.replica {
			ctx.countReplicaHit()
		}
	}
	if len(lookups) > 0 {
		ctx.opSpan(planTC, "dqp.plan", string(ctx.initiator), "", at, simnet.MaxTime(at, done))
	}
	for i := range plans {
		if !hasKey[i] {
			continue
		}
		row := rows[keyOf[i]]
		plans[i].key = keyOf[i]
		plans[i].index = row.index
		plans[i].postings = append([]overlay.Posting(nil), row.postings...)
	}
	return plans, simnet.MaxTime(at, done), nil
}

// execBGP evaluates a basic graph pattern distributedly. filter, when
// non-nil, is decomposed into conjuncts and each conjunct ships with the
// earliest sub-query whose variables cover it; leftovers apply at the end.
func (e *Engine) execBGP(ctx *qctx, patterns []rdf.Triple, filter sparql.Expression, scope rdf.Term, at simnet.VTime) (siteSet, simnet.VTime, error) {
	if len(patterns) == 0 {
		return siteSet{sols: eval.Solutions{eval.NewBinding()}, site: ctx.initiator}, at, nil
	}
	plans, now, err := e.planPatterns(ctx, patterns, at)
	if err != nil {
		return siteSet{}, now, err
	}
	if e.opts.ReorderJoins && len(plans) > 1 {
		plans = reorderPlans(plans)
	}
	conjuncts := splitFilter(filter)

	if ctx.existenceOnly && len(plans) == 1 {
		// ASK over one pattern: the first matching solution settles it.
		plans[0].stopOnFirst = true
	}
	var out siteSet
	if e.opts.Conjunction == ConjParallelJoin && len(plans) > 1 {
		out, now, err = e.execParallelJoin(ctx, plans, conjuncts, scope, now)
	} else {
		out, now, err = e.execPipeline(ctx, plans, conjuncts, scope, now)
	}
	if err != nil {
		return siteSet{}, now, err
	}
	// Apply any filter conjuncts that could not be pushed (e.g. referring
	// to variables bound only across patterns evaluated in parallel).
	if rem := unshippedConjuncts(plans, conjuncts); rem != nil {
		out.sols = eval.FilterSolutions(out.sols, rem)
	}
	return out, now, nil
}

// execPipeline runs the sequential conjunction of Sect. IV-D basic
// processing: the accumulated solutions flow into each pattern's execution
// as seeds (a distributed semi-join).
func (e *Engine) execPipeline(ctx *qctx, plans []patternPlan, conjuncts []sparql.Expression, scope rdf.Term, at simnet.VTime) (siteSet, simnet.VTime, error) {
	cur := siteSet{sols: eval.Solutions{eval.NewBinding()}, site: ctx.initiator}
	now := at
	bound := map[string]bool{}
	shipped := make([]bool, len(conjuncts))
	for i := range plans {
		for _, v := range plans[i].pattern.Vars() {
			bound[v] = true
		}
		f := shippableFilter(conjuncts, shipped, bound)
		var err error
		cur, now, err = e.execPattern(ctx, plans[i], cur, f, scope, "", now)
		if err != nil {
			return siteSet{}, now, err
		}
		if len(cur.sols) == 0 {
			// Empty intermediate result: the conjunction is empty
			// (short-circuit; no further sub-queries needed).
			return cur, now, nil
		}
	}
	return cur, now, nil
}

// execParallelJoin runs the optimized conjunction of Sect. IV-D: every
// pattern is evaluated over its own target set in parallel, chains are
// ordered to end at a storage node shared with the neighbouring pattern
// when one exists, and the per-pattern results are joined left to right at
// assembly sites.
func (e *Engine) execParallelJoin(ctx *qctx, plans []patternPlan, conjuncts []sparql.Expression, scope rdf.Term, at simnet.VTime) (siteSet, simnet.VTime, error) {
	results := make([]siteSet, len(plans))
	times := make([]simnet.VTime, len(plans))
	shipped := make([]bool, len(conjuncts))
	for i := range plans {
		// Per-pattern filters: conjuncts covered by this pattern alone.
		vars := map[string]bool{}
		for _, v := range plans[i].pattern.Vars() {
			vars[v] = true
		}
		f := shippableFilter(conjuncts, shipped, vars)
		// Prefer ending this pattern's chain at a node shared with the
		// previous pattern's target set, so the join needs no shipping.
		prefer := simnet.Addr("")
		if i > 0 {
			prefer = sharedTarget(plans[i-1], plans[i])
		}
		seed := siteSet{sols: eval.Solutions{eval.NewBinding()}, site: ctx.initiator}
		res, done, err := e.execPattern(ctx, plans[i], seed, f, scope, prefer, at)
		if err != nil {
			return siteSet{}, done, err
		}
		results[i] = res
		times[i] = done
	}
	cur, now := results[0], times[0]
	join := func(a, b eval.Solutions) eval.Solutions { return eval.Join(a, b) }
	for i := 1; i < len(plans); i++ {
		var err error
		cur, now, err = e.mergeAt(ctx, cur, results[i], simnet.MaxTime(now, times[i]), join)
		if err != nil {
			return siteSet{}, now, err
		}
	}
	return cur, now, nil
}

// sharedTarget returns a storage node present in both plans' target sets
// (the overlap node of the paper's S1 ∩ S2 example), preferring the one
// with the highest combined frequency; empty when disjoint.
func sharedTarget(a, b patternPlan) simnet.Addr {
	freq := map[simnet.Addr]int{}
	for _, p := range a.postings {
		freq[p.Node] = p.Freq
	}
	best := simnet.Addr("")
	bestFreq := -1
	for _, p := range b.postings {
		if fa, ok := freq[p.Node]; ok {
			if fa+p.Freq > bestFreq {
				bestFreq = fa + p.Freq
				best = p.Node
			}
		}
	}
	return best
}

// execPattern evaluates one triple pattern over its target storage nodes
// according to the per-pattern strategy. seeds are the partial solutions
// joined in-network; preferEnd forces the chain to end at the given target
// when present (overlap-aware assembly).
func (e *Engine) execPattern(ctx *qctx, plan patternPlan, seeds siteSet, filter sparql.Expression, scope rdf.Term, preferEnd simnet.Addr, at simnet.VTime) (siteSet, simnet.VTime, error) {
	targets := plan.postings
	if len(targets) == 0 {
		return siteSet{sols: nil, site: seeds.site}, at, nil
	}
	// Every pattern execution is one op span; the strategy implementations
	// hang their message spans off patTC, so the three strategies render as
	// the three Fig. 5 flow shapes (star, chain, frequency-ordered chain).
	patTC := ctx.nextTC(ctx.tc)
	var (
		out  siteSet
		done simnet.VTime
		err  error
	)
	switch e.opts.Strategy {
	case StrategyBasic:
		out, done, err = e.execPatternBasic(ctx, plan, seeds, filter, scope, patTC, at)
	case StrategyFreqChain:
		out, done, err = e.execPatternChain(ctx, plan, seeds, filter, scope, preferEnd, true, patTC, at)
	default:
		out, done, err = e.execPatternChain(ctx, plan, seeds, filter, scope, preferEnd, false, patTC, at)
	}
	if err == nil && ctx.rec != nil {
		ctx.opSpan(patTC, "dqp.pattern", string(ctx.initiator),
			e.opts.Strategy.String()+" "+plan.pattern.String(), at, done)
	}
	return out, done, err
}

// execPatternBasic: the sub-query (with seeds) ships to the pattern's
// index node, which fans it out to every target in parallel; each target
// returns its matches and the index node assembles the union (Sect. IV-C
// basic). High parallelism, duplicated seed shipping, responses all travel
// back — low response time, high transmission overhead.
func (e *Engine) execPatternBasic(ctx *qctx, plan patternPlan, seeds siteSet, filter sparql.Expression, scope rdf.Term, patTC trace.TraceContext, at simnet.VTime) (siteSet, simnet.VTime, error) {
	assembly := plan.index
	if assembly == "" { // flooding: assemble at the seeds' current site
		assembly = seeds.site
	}
	base := overlay.MatchReq{Patterns: []rdf.Triple{plan.pattern}, Filter: filter, Seeds: seeds.sols,
		Dataset: ctx.dataset, FromNamed: ctx.fromNamed, Graph: scope}
	now := at
	if seeds.site != assembly {
		dispatch := base
		dispatch.TC = patTC.Child(0)
		done, err := e.transferRetry(seeds.site, assembly, methodDispatch, dispatch, now)
		if err != nil {
			return siteSet{}, done, err
		}
		now = done
	}
	var acc eval.Solutions
	finish := now
	// One call closure reused across targets (and retry attempts) keeps the
	// fan-out loop allocation-free; the captured request is re-pointed per
	// target.
	var target simnet.Addr
	var req overlay.MatchReq
	match := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return e.sys.Net().Call(assembly, target, overlay.MethodMatch, req, at)
	}
	for fi, p := range plan.postings {
		// Star topology: every fan-out request is a fresh copy of the
		// sub-query and a sibling child of the pattern span (sequence 0 is
		// the dispatch above).
		target = p.Node
		r := base
		r.TC = patTC.Child(uint64(fi + 1))
		req = r
		resp, done, err := simnet.Retry(simnet.DefaultAttempts, now, match)
		if err != nil {
			if simnet.IsLost(err) {
				// The target is alive but the link stayed lossy past the
				// retry budget: dropping its contribution would silently
				// truncate the result, so the query fails explicitly.
				return siteSet{}, done, &PartialFailureError{
					Method: overlay.MethodMatch, Missing: []simnet.Addr{p.Node}, Err: err}
			}
			// Unreachable target: its triples left the dataset; drop the
			// stale postings and answer over the remaining providers.
			finish = simnet.MaxTime(finish, done)
			e.dropStale(ctx, plan, p.Node, assembly, req.TC, done)
			continue
		}
		ctx.countSubquery(p.Node)
		acc = eval.Union(acc, resp.(overlay.SolutionsResp).Sols)
		finish = simnet.MaxTime(finish, done)
		if plan.stopOnFirst && len(acc) > 0 {
			// existence settled: remaining targets are not contacted (the
			// sequential early exit trades the parallel fan-out's latency
			// for fewer messages)
			finish = done
			break
		}
	}
	// The query dataset is the *set* union of all providers' triples
	// (Sect. IV-A): identical triples held by several providers must yield
	// one solution. For a single pattern a solution mapping determines the
	// matched triple, so mapping-level deduplication realizes the set
	// semantics exactly.
	acc = eval.Distinct(acc)
	return siteSet{sols: acc, site: assembly}, finish, nil
}

// execPatternChain: the sub-query and accumulated solutions forward
// through the target list; each node merges its local matches and passes
// the result on; the final node keeps the result (it becomes the new
// site). byFreq orders targets by increasing Table I frequency so the
// largest contribution never travels (Sect. IV-C further optimization).
func (e *Engine) execPatternChain(ctx *qctx, plan patternPlan, seeds siteSet, filter sparql.Expression, scope rdf.Term, preferEnd simnet.Addr, byFreq bool, patTC trace.TraceContext, at simnet.VTime) (siteSet, simnet.VTime, error) {
	seq := orderTargets(plan.postings, preferEnd, byFreq)
	patterns := []rdf.Triple{plan.pattern}

	// The query (with seeds) first travels to the index node, which knows
	// the sequence and forwards to its head (Sect. IV-C: "forwards the
	// query ... to the node at the top of the sequence list").
	now := at
	prev := seeds.site
	// linkTC is the context of the previous hop's message: every hop
	// derives its own from it, so a traced chain renders as a linked list
	// (vs. the basic strategy's star).
	linkTC := patTC
	if plan.index != "" && prev != plan.index {
		dispatchTC := patTC.Child(0)
		done, err := e.transferRetry(prev, plan.index, methodDispatch,
			overlay.MatchReq{Patterns: patterns, Filter: filter, Seeds: seeds.sols,
				Dataset: ctx.dataset, FromNamed: ctx.fromNamed, Graph: scope,
				TC: dispatchTC}, now)
		if err != nil {
			return siteSet{}, done, err
		}
		now = done
		prev = plan.index
		linkTC = dispatchTC
	}

	var acc eval.Solutions
	reached := prev
	for i, target := range seq {
		hopTC := linkTC.Child(uint64(i + 1))
		payload := chainPayload{
			Patterns: patterns,
			Filter:   filter,
			Seeds:    seeds.sols,
			Acc:      acc,
			Seq:      addrsOf(seq[i+1:]),
			Dataset:  ctx.dataset,
			TC:       hopTC,
		}
		done, err := e.transferRetry(prev, target.Node, overlay.MethodChainHop, payload, now)
		now = done
		if err != nil {
			if errors.Is(err, simnet.ErrUnreachable) {
				e.dropStale(ctx, plan, target.Node, prev, hopTC, now)
				continue // forward from the same node to the next target
			}
			// A hop still lost after retries already surfaced as a typed
			// partial failure; any other error aborts the chain outright.
			return siteSet{}, now, err
		}
		st, ok := e.sys.Storage(target.Node)
		if !ok {
			continue
		}
		ctx.countSubquery(target.Node)
		// In-network aggregation with set-union semantics: merging at each
		// hop removes solutions duplicated across providers before they
		// travel further (the dedup counterpart of execPatternBasic).
		acc = eval.Distinct(eval.Union(acc, st.LocalMatchScope(patterns, filter, seeds.sols, ctx.dataset, ctx.fromNamed, scope)))
		prev = target.Node
		reached = target.Node
		linkTC = hopTC
		if plan.stopOnFirst && len(acc) > 0 {
			break
		}
	}
	return siteSet{sols: acc, site: reached}, now, nil
}

// orderTargets produces the chain sequence: address order (deterministic)
// or increasing frequency, with preferEnd moved to the back when present.
func orderTargets(postings []overlay.Posting, preferEnd simnet.Addr, byFreq bool) []overlay.Posting {
	seq := append([]overlay.Posting(nil), postings...)
	if byFreq {
		sort.Slice(seq, func(i, j int) bool {
			if seq[i].Freq != seq[j].Freq {
				return seq[i].Freq < seq[j].Freq
			}
			return seq[i].Node < seq[j].Node
		})
	} else {
		sort.Slice(seq, func(i, j int) bool { return seq[i].Node < seq[j].Node })
	}
	if preferEnd != "" {
		for i, p := range seq {
			if p.Node == preferEnd {
				seq = append(append(seq[:i], seq[i+1:]...), p)
				break
			}
		}
	}
	return seq
}

func addrsOf(ps []overlay.Posting) []simnet.Addr {
	out := make([]simnet.Addr, len(ps))
	for i, p := range ps {
		out[i] = p.Node
	}
	return out
}

// dropStale implements the Sect. III-D timeout cleanup: when a storage
// node does not acknowledge a sub-query, the site that observed the
// timeout notifies the pattern's index node, which drops the stale
// postings and forwards the retraction to its replica successors. The
// notification is fire-and-forget — the query never waits for cleanup —
// but it travels over the fabric, so retraction traffic is accounted and
// visible as Stats.RetractionBytes.
func (e *Engine) dropStale(ctx *qctx, plan patternPlan, node, observer simnet.Addr, tc trace.TraceContext, at simnet.VTime) {
	ctx.countDrop()
	e.cache.dropNode(node)
	if plan.index == "" {
		return
	}
	//adhoclint:faultpath(fire-and-forget, the timeout cleanup notification is accounted traffic but never extends the query's critical path; a lost notification is repaired by the next observer or by DropStorageEverywhere)
	e.sys.Net().Send(observer, plan.index, overlay.MethodDropNode,
		overlay.DropNodeReq{Node: node, Propagate: true, TC: tc.Child(1)}, at)
}

// reorderPlans orders patterns by the location-table frequency statistics:
// most selective first, then greedily connected through shared variables —
// the distributed instantiation of the optimizer's join reordering.
func reorderPlans(plans []patternPlan) []patternPlan {
	byPattern := make(map[string]patternPlan, len(plans))
	pats := make([]rdf.Triple, len(plans))
	for i, p := range plans {
		pats[i] = p.pattern
		byPattern[p.pattern.String()] = p
	}
	est := planEstimator{byPattern: byPattern}
	ordered := optimize.ReorderPatterns(pats, est)
	out := make([]patternPlan, len(ordered))
	for i, pat := range ordered {
		out[i] = byPattern[pat.String()]
	}
	return out
}

// planEstimator adapts location-table frequencies to the optimizer's
// CardinalityEstimator.
type planEstimator struct {
	byPattern map[string]patternPlan
}

// EstimatePattern implements optimize.CardinalityEstimator.
func (e planEstimator) EstimatePattern(p rdf.Triple) int {
	if plan, ok := e.byPattern[p.String()]; ok {
		return plan.totalFreq()
	}
	return optimize.HeuristicEstimator{}.EstimatePattern(p)
}

// splitFilter flattens a conjunctive filter into its conjuncts.
func splitFilter(f sparql.Expression) []sparql.Expression {
	if f == nil {
		return nil
	}
	if and, ok := f.(*sparql.ExprAnd); ok {
		return append(splitFilter(and.Left), splitFilter(and.Right)...)
	}
	return []sparql.Expression{f}
}

// shippableFilter selects the not-yet-shipped conjuncts whose variables
// are covered by bound and combines them into one expression; selected
// conjuncts are marked shipped.
//adhoclint:faultpath(benign, marks query-scoped scratch; an error discards the whole query context)
func shippableFilter(conjuncts []sparql.Expression, shipped []bool, bound map[string]bool) sparql.Expression {
	var out sparql.Expression
	for i, c := range conjuncts {
		if shipped[i] {
			continue
		}
		ok := true
		for _, v := range c.Vars() {
			if !bound[v] {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		shipped[i] = true
		if out == nil {
			out = c
		} else {
			out = &sparql.ExprAnd{Left: out, Right: c}
		}
	}
	return out
}

// unshippedConjuncts rebuilds the residual filter from conjuncts that were
// never shipped with a sub-query. The executor cannot know the shipped
// slice here, so it conservatively re-applies the whole filter when any
// conjunct mentions variables from more than one pattern — re-applying a
// filter is idempotent and therefore always safe.
func unshippedConjuncts(plans []patternPlan, conjuncts []sparql.Expression) sparql.Expression {
	if len(conjuncts) == 0 {
		return nil
	}
	var out sparql.Expression
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &sparql.ExprAnd{Left: out, Right: c}
		}
	}
	return out
}
