package dqp

import (
	"adhocshare/internal/chord"
	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/rdfpeers"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/eval"
	"adhocshare/internal/trace"
)

// methodSample is one wire method with representative non-empty request
// and response payloads. The round-trip test, the AllocsPerRun guards and
// the codec fuzz seeds all draw from the same table, so every registered
// payload type is exercised by every harness.
type methodSample struct {
	method    string
	req, resp simnet.Payload
}

// methodSamples covers every Method* constant of the four RPC
// vocabularies (overlay, chord, dqp, rdfpeers). Transfer-only methods and
// fire-and-forget handlers ack with simnet.Bytes, which must round-trip
// like any payload.
func methodSamples() []methodSample {
	triple := rdf.NewTriple(
		rdf.NewIRI("urn:s"),
		rdf.NewIRI("urn:p"),
		rdf.NewTypedLiteral("12", "http://www.w3.org/2001/XMLSchema#integer"),
	)
	pattern := rdf.NewTriple(rdf.NewVar("s"), rdf.NewIRI("urn:p"), rdf.NewVar("o"))
	sols := eval.Solutions{
		eval.Binding{"s": rdf.NewIRI("urn:s"), "o": rdf.NewLangLiteral("hi", "en")},
	}
	filter := &sparql.ExprCmp{
		Op:    sparql.CmpGt,
		Left:  &sparql.ExprVar{Name: "o"},
		Right: &sparql.ExprTerm{Term: rdf.NewTypedLiteral("3", "http://www.w3.org/2001/XMLSchema#integer")},
	}
	rows := overlay.TableRows{Rows: map[chord.ID][]overlay.Posting{
		7: {{Node: "n3", Freq: 2}},
	}}
	matchReq := overlay.MatchReq{
		Patterns:  []rdf.Triple{pattern},
		Filter:    filter,
		Seeds:     sols,
		Dataset:   []string{"urn:g1"},
		Graph:     rdf.NewIRI("urn:g1"),
		FromNamed: []string{"urn:g2"},
	}
	ref := chord.Ref{ID: 42, Addr: "c2"}
	ack := simnet.Bytes(1)

	return []methodSample{
		// Overlay index-node methods.
		{overlay.MethodPut, overlay.PutReq{Key: 9, Node: "n1", Freq: 3}, ack},
		{overlay.MethodPutBatch, overlay.PutBatchReq{
			Node:     "n1",
			Entries:  []overlay.KeyFreq{{Key: 4, Freq: 2}},
			Absolute: true,
		}, ack},
		{overlay.MethodLookup, overlay.LookupReq{Key: 4, Epoch: 3},
			overlay.PostingsResp{Postings: []overlay.Posting{{Node: "n2", Freq: 5}},
				Replicas: []simnet.Addr{"n3", "n4"}, Epoch: 3}},
		// Adaptive hot-key replication: the epoch-stamped coherence push
		// and the replica fast-path read (the invalidation-sensitive
		// messages the codec fuzz seeds must cover).
		{overlay.MethodHotReplica, overlay.HotReplicaReq{
			Key: 4, Home: "n2", Epoch: 3,
			Postings: []overlay.Posting{{Node: "n2", Freq: 5}},
			TC:       trace.TraceContext{Query: 7, Span: 9, Parent: 1},
		}, ack},
		{overlay.MethodHotLookup, overlay.HotLookupReq{Key: 4, Epoch: 3,
			TC: trace.TraceContext{Query: 7, Span: 10, Parent: 1}},
			overlay.HotPostingsResp{Hit: true, Postings: []overlay.Posting{{Node: "n2", Freq: 5}}}},
		{overlay.MethodTransfer, overlay.TransferReq{From: 1, To: 9}, rows},
		{overlay.MethodHandover, rows, ack},
		{overlay.MethodDropNode, overlay.DropNodeReq{Node: "n4", Propagate: true}, ack},
		{overlay.MethodReplica, rows, ack},

		// Overlay storage-node methods.
		{overlay.MethodMatch, matchReq, overlay.SolutionsResp{Sols: sols}},
		{overlay.MethodChainHop, chainPayload{
			Patterns: []rdf.Triple{pattern},
			Filter:   filter,
			Seeds:    sols,
			Acc:      sols,
			Seq:      []simnet.Addr{"n5", "n6"},
			Dataset:  []string{"urn:g1"},
		}, ack},
		{overlay.MethodCount, overlay.CountReq{Pattern: pattern}, overlay.CountResp{N: 11}},
		{overlay.MethodDump, overlay.CountReq{Pattern: pattern},
			overlay.TriplesResp{Triples: []rdf.Triple{triple}}},

		// Chord ring maintenance.
		{chord.MethodFindSuccessor, chord.FindReq{Target: 5, Hops: 1},
			chord.FindResp{Node: ref, Hops: 2}},
		{chord.MethodFindSuccessorBatch, chord.BatchFindReq{Targets: []chord.ID{5, 9}, Hops: 1},
			chord.BatchFindResp{Nodes: []chord.Ref{ref, {ID: 51, Addr: "c3"}}, Hops: 3}},
		{chord.MethodGetPredecessor, ack, ref},
		{chord.MethodGetSuccList, ack, chord.RefList{Refs: []chord.Ref{ref}}},
		{chord.MethodNotify, ref, ack},
		{chord.MethodPing, ack, ack},
		{chord.MethodSetPredecessor, ref, ack},
		{chord.MethodSetSuccessor, ref, ack},

		// DQP transfers (all transfer-only; the receiver acks the bytes).
		{methodDispatch, matchReq, ack},
		{methodShip, overlay.SolutionsResp{Sols: sols}, ack},
		{methodResult, overlay.SolutionsResp{Sols: sols}, ack},

		// RDFPeers baseline.
		{rdfpeers.MethodStore, rdfpeers.StoreReq{Triple: triple}, ack},
		{rdfpeers.MethodMatch, rdfpeers.MatchReq{Pattern: pattern},
			rdfpeers.SolutionsResp{Sols: sols}},
		{rdfpeers.MethodIntersect, rdfpeers.IntersectReq{
			Pattern:    pattern,
			Candidates: []rdf.Term{rdf.NewIRI("urn:s")},
		}, rdfpeers.TermsResp{Terms: []rdf.Term{rdf.NewIRI("urn:s")}}},
		{rdfpeers.MethodRange, rdfpeers.RangeReq{Predicate: rdf.NewIRI("urn:p"), Lo: 1, Hi: 9},
			rdfpeers.RangeResp{Triples: []rdf.Triple{triple}}},
		// Result transfers ship either candidate terms (MAQ) or triples
		// (range queries) back to the initiator.
		{rdfpeers.MethodResult, rdfpeers.TermsResp{Terms: []rdf.Term{rdf.NewIRI("urn:s")}},
			rdfpeers.TriplesPayload{Triples: []rdf.Triple{triple}}},
	}
}

// samplePayloads flattens the method table into one payload per entry,
// labelled "<method> request"/"<method> response".
func samplePayloads() []struct {
	label string
	p     simnet.Payload
} {
	var out []struct {
		label string
		p     simnet.Payload
	}
	for _, c := range methodSamples() {
		out = append(out, struct {
			label string
			p     simnet.Payload
		}{c.method + " request", c.req})
		out = append(out, struct {
			label string
			p     simnet.Payload
		}{c.method + " response", c.resp})
	}
	return out
}
