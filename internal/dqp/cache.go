package dqp

import (
	"sync"

	"adhocshare/internal/chord"
	"adhocshare/internal/overlay"
	"adhocshare/internal/simnet"
)

// lookupCache memoizes two-level index resolutions (key → responsible
// index node + location-table row) at a query initiator. Repeated queries
// over the same patterns then skip both the Chord routing and the
// location-table read — an extension beyond the paper, evaluated in E14.
//
// Consistency: entries are invalidated when the executor observes a stale
// storage node (the Sect. III-D timeout path) and evicted FIFO beyond the
// capacity. A cached row can still be stale in other ways (new providers
// published after caching); queries then miss those providers until the
// entry ages out, which is the usual trade of ad-hoc caching.
type lookupCache struct {
	mu    sync.Mutex
	max   int
	order []chord.ID
	rows  map[chord.ID]cachedRow
}

type cachedRow struct {
	index    simnet.Addr
	postings []overlay.Posting
}

func newLookupCache(max int) *lookupCache {
	if max <= 0 {
		max = 1024
	}
	return &lookupCache{max: max, rows: map[chord.ID]cachedRow{}}
}

func (c *lookupCache) get(key chord.ID) (cachedRow, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	row, ok := c.rows[key]
	return row, ok
}

//adhoclint:faultpath(benign, lookup-cache fill; entries are advisory and revalidated against node liveness on use)
func (c *lookupCache) put(key chord.ID, row cachedRow) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.rows[key]; !exists {
		c.order = append(c.order, key)
		for len(c.order) > c.max {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.rows, evict)
		}
	}
	c.rows[key] = row
}

// dropNode removes a storage node from every cached row (stale-node
// invalidation); rows that become empty are removed so the next query
// re-resolves them.
//adhoclint:faultpath(benign, cache invalidation; a failure afterwards leaves fewer advisory entries to revalidate)
func (c *lookupCache) dropNode(node simnet.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, row := range c.rows {
		var keep []overlay.Posting
		for _, p := range row.postings {
			if p.Node != node {
				keep = append(keep, p)
			}
		}
		if len(keep) == len(row.postings) {
			continue
		}
		if len(keep) == 0 {
			delete(c.rows, key)
			continue
		}
		row.postings = keep
		c.rows[key] = row
	}
}

// dropIndex removes rows owned by a departed index node.
//adhoclint:faultpath(benign, cache invalidation; a failure afterwards leaves fewer advisory entries to revalidate)
func (c *lookupCache) dropIndex(addr simnet.Addr) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, row := range c.rows {
		if row.index == addr {
			delete(c.rows, key)
		}
	}
}

// Len returns the number of cached rows.
func (c *lookupCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.rows)
}
