package dqp

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
	"adhocshare/internal/sparql/eval"
)

const foaf = "http://xmlns.com/foaf/0.1/"
const exns = "http://example.org/ns#"

func ex(s string) rdf.Term { return rdf.NewIRI("http://example.org/" + s) }
func fp(s string) rdf.Term { return rdf.NewIRI(foaf + s) }
func np(s string) rdf.Term { return rdf.NewIRI(exns + s) }

// buildSystem creates a deployment with nIndex index nodes and the given
// per-storage-node triple sets, published through the default (parallel)
// pipeline.
func buildSystem(t testing.TB, nIndex int, data map[string][]rdf.Triple) (*overlay.System, simnet.VTime) {
	t.Helper()
	return buildSystemPublish(t, nIndex, data, false)
}

// buildSystemPublish is buildSystem with an explicit publication pipeline:
// serialPublish selects the legacy serial path, false the parallel one.
func buildSystemPublish(t testing.TB, nIndex int, data map[string][]rdf.Triple, serialPublish bool) (*overlay.System, simnet.VTime) {
	t.Helper()
	s := overlay.NewSystem(overlay.Config{Bits: 16, Replication: 2, SerialPublish: serialPublish,
		Net: simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20}})
	now := simnet.VTime(0)
	for i := 0; i < nIndex; i++ {
		_, done, err := s.AddIndexNode(simnet.Addr(fmt.Sprintf("idx-%02d", i)), now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	now = s.Converge(now)
	names := make([]string, 0, len(data))
	for name := range data {
		names = append(names, name)
	}
	// deterministic order
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if names[j] < names[i] {
				names[i], names[j] = names[j], names[i]
			}
		}
	}
	for _, name := range names {
		_, done, err := s.AddStorageNode(simnet.Addr(name), now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		done, err = s.Publish(simnet.Addr(name), data[name], now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	return s, now
}

// paperData distributes the running example of the paper's figures over
// four storage nodes (providers keep their own data).
func paperData() map[string][]rdf.Triple {
	return map[string][]rdf.Triple{
		"D1": {
			{S: ex("alice"), P: fp("name"), O: rdf.NewLiteral("Alice Smith")},
			{S: ex("alice"), P: fp("knows"), O: ex("carol")},
			{S: ex("alice"), P: np("knowsNothingAbout"), O: ex("dave")},
		},
		"D2": {
			{S: ex("bob"), P: fp("name"), O: rdf.NewLiteral("Bob Smith")},
			{S: ex("bob"), P: fp("knows"), O: ex("carol")},
			{S: ex("bob"), P: fp("nick"), O: rdf.NewLiteral("Shrek")},
			{S: ex("bob"), P: fp("mbox"), O: rdf.NewIRI("mailto:abc@example.org")},
		},
		"D3": {
			{S: ex("carol"), P: fp("name"), O: rdf.NewLiteral("Carol Jones")},
			{S: ex("carol"), P: fp("age"), O: rdf.NewInteger(25)},
			{S: ex("dave"), P: fp("knows"), O: ex("carol")},
			{S: ex("dave"), P: fp("name"), O: rdf.NewLiteral("Dave Smith")},
		},
		"D4": {
			{S: ex("erin"), P: fp("knows"), O: ex("carol")},
			{S: ex("erin"), P: fp("name"), O: rdf.NewLiteral("Erin Jones")},
			{S: ex("erin"), P: np("knowsNothingAbout"), O: ex("bob")},
		},
	}
}

// unionGraph builds the centralized oracle: one graph holding every
// storage node's triples (the query dataset per Sect. IV-A).
func unionGraph(data map[string][]rdf.Triple) *rdf.Graph {
	g := rdf.NewGraph()
	for _, ts := range data {
		g.AddAll(ts)
	}
	return g
}

// oracle evaluates the query centrally over the union graph.
func oracle(t testing.TB, data map[string][]rdf.Triple, query string) eval.Solutions {
	t.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := eval.Eval(op, unionGraph(data))
	if err != nil {
		t.Fatal(err)
	}
	return sols
}

func sameMultiset(a, b eval.Solutions) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[string]int{}
	for _, m := range a {
		count[m.Key()]++
	}
	for _, m := range b {
		count[m.Key()]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

// allOptionCombos enumerates the strategy space for equivalence testing.
func allOptionCombos() []Options {
	var out []Options
	for _, st := range []Strategy{StrategyBasic, StrategyChain, StrategyFreqChain} {
		for _, cj := range []Conjunction{ConjPipeline, ConjParallelJoin} {
			for _, js := range []JoinSitePolicy{JoinSiteMoveSmall, JoinSiteQuerySite, JoinSiteThirdSite, JoinSiteQoS} {
				for _, pf := range []bool{false, true} {
					out = append(out, Options{
						Strategy: st, Conjunction: cj, JoinSite: js,
						PushFilters: pf, ReorderJoins: true,
					})
				}
			}
		}
	}
	return out
}

var paperQueries = map[string]string{
	"fig5-primitive": `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`,
	"fig6-conjunction": `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?x ?y ?z WHERE { ?x foaf:knows ?z . ?x ns:knowsNothingAbout ?y . }`,
	"fig7-optional": `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y WHERE {
  { ?x foaf:name "Bob Smith" . ?x foaf:knows ?y . }
  OPTIONAL { ?y foaf:nick "Shrek" . }
}`,
	"fig8-union": `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y ?z WHERE {
  { ?x foaf:name "Alice Smith" . ?x foaf:knows ?y . }
  UNION
  { ?x foaf:mbox <mailto:abc@example.org> . ?x foaf:knows ?z . }
}`,
	"fig9-filter-optional": `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?x ?y ?z WHERE {
  ?x foaf:name ?name ;
     ns:knowsNothingAbout ?y .
  FILTER regex(?name, "Smith")
  OPTIONAL { ?y foaf:knows ?z . }
}`,
	"fig4-full": `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?x ?y ?z
WHERE {
  ?x foaf:name ?name .
  ?x foaf:knows ?z .
  ?x ns:knowsNothingAbout ?y .
  ?y foaf:knows ?z .
  FILTER regex(?name, "Smith")
}
ORDER BY DESC(?x)`,
	"filter-numeric": `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:age ?a . FILTER(?a >= 18) }`,
	"all-names-ordered": `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?n WHERE { ?x foaf:name ?n . } ORDER BY ?n LIMIT 3`,
	"distinct-objects": `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT DISTINCT ?y WHERE { ?x foaf:knows ?y . }`,
}

// TestDistributedMatchesOracle is the central correctness property: for
// every paper query and every strategy combination, the distributed
// execution returns exactly the centralized result (as a multiset, before
// ordering; with ordering for ORDER BY queries).
func TestDistributedMatchesOracle(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 5, data)
	for name, query := range paperQueries {
		want := oracle(t, data, query)
		for _, opts := range allOptionCombos() {
			e := NewEngine(sys, opts)
			res, _, done, err := e.Query("D1", query, now)
			now = done
			if err != nil {
				t.Fatalf("%s %+v: %v", name, opts, err)
			}
			if !sameMultiset(res.Solutions, want) {
				t.Errorf("%s with %v/%v/%v push=%v: got %v want %v",
					name, opts.Strategy, opts.Conjunction, opts.JoinSite,
					opts.PushFilters, res.Solutions, want)
			}
		}
	}
}

func TestOrderByPreservedDistributed(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 4, data)
	e := NewEngine(sys, DefaultOptions())
	res, _, _, err := e.Query("D2", paperQueries["all-names-ordered"], now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Solutions))
	}
	want := []string{"Alice Smith", "Bob Smith", "Carol Jones"}
	for i, w := range want {
		if got := res.Solutions[i]["n"].Value; got != w {
			t.Errorf("row %d = %q, want %q", i, got, w)
		}
	}
}

func TestAskDistributed(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 4, data)
	e := NewEngine(sys, DefaultOptions())
	res, _, now, err := e.Query("D1", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
ASK { <http://example.org/bob> foaf:nick "Shrek" . }`, now)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IsAsk || !res.Ask {
		t.Errorf("ASK = %+v, want true", res)
	}
	res, _, _, err = e.Query("D1", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
ASK { <http://example.org/carol> foaf:nick "Shrek" . }`, now)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ask {
		t.Error("ASK for absent triple returned true")
	}
}

func TestConstructDistributed(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 4, data)
	e := NewEngine(sys, DefaultOptions())
	res, _, _, err := e.Query("D3", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
CONSTRUCT { ?y ns:knownBy ?x . } WHERE { ?x foaf:knows ?y . }`, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != 4 { // alice,bob,dave,erin all know carol
		t.Fatalf("constructed %d triples, want 4: %v", len(res.Triples), res.Triples)
	}
}

func TestDescribeDistributed(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 4, data)
	e := NewEngine(sys, DefaultOptions())
	res, _, _, err := e.Query("D1", `DESCRIBE <http://example.org/bob>`, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Triples) != 4 {
		t.Fatalf("describe returned %d triples, want 4: %v", len(res.Triples), res.Triples)
	}
}

func TestAllVariablePatternFloods(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 4, data)
	e := NewEngine(sys, DefaultOptions())
	res, stats, _, err := e.Query("D1", `SELECT ?s ?p ?o WHERE { ?s ?p ?o . }`, now)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ts := range data {
		total += len(ts)
	}
	if len(res.Solutions) != total {
		t.Errorf("flood returned %d rows, want %d", len(res.Solutions), total)
	}
	if stats.TargetsContacted != 4 {
		t.Errorf("flood contacted %d targets, want 4", stats.TargetsContacted)
	}
}

func TestStatsAccounting(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 5, data)
	e := NewEngine(sys, BaselineOptions())
	_, stats, _, err := e.Query("D1", paperQueries["fig5-primitive"], now)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Messages <= 0 || stats.Bytes <= 0 {
		t.Errorf("no traffic recorded: %+v", stats)
	}
	if stats.ResponseTime <= 0 {
		t.Error("response time not positive")
	}
	if stats.TargetsContacted != 4 { // all four nodes have (knows, carol)
		t.Errorf("targets = %d, want 4", stats.TargetsContacted)
	}
	if stats.Subqueries < stats.TargetsContacted {
		t.Error("subqueries < targets")
	}
	if len(stats.PerMethod) == 0 {
		t.Error("per-method breakdown empty")
	}
	if stats.Solutions != 4 {
		t.Errorf("solutions = %d, want 4", stats.Solutions)
	}
}

// TestChainReducesBytesVsBasic verifies the paper's central trade-off
// claim (Sect. IV-C and V): the chained strategies reduce total
// transmission while basic processing achieves lower response time. The
// assertion uses a seeded workload large enough that the effect dominates
// fixed overheads.
func TestChainReducesBytesVsBasic(t *testing.T) {
	data := map[string][]rdf.Triple{}
	// 8 providers sharing heavily overlapping facts (personal devices in
	// the paper's scenario carry copies of the same social facts). The
	// chain's in-network aggregation merges duplicated solutions before
	// they travel; the basic fan-out ships every copy to the index node.
	// With fully disjoint provider data the inequality reverses — see the
	// E4 discussion in EXPERIMENTS.md.
	for d := 0; d < 8; d++ {
		name := fmt.Sprintf("D%d", d)
		for i := 0; i < 30; i++ {
			data[name] = append(data[name], rdf.Triple{
				S: ex(fmt.Sprintf("p%d", i)), P: fp("knows"), O: ex("carol"),
			})
		}
	}
	sys, now := buildSystem(t, 6, data)
	query := paperQueries["fig5-primitive"]

	run := func(opts Options) (Stats, eval.Solutions) {
		e := NewEngine(sys, opts)
		res, stats, done, err := e.Query("D0", query, now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
		return stats, res.Solutions
	}
	basic, sols1 := run(Options{Strategy: StrategyBasic})
	chain, sols2 := run(Options{Strategy: StrategyChain})
	freq, sols3 := run(Options{Strategy: StrategyFreqChain})

	if !sameMultiset(sols1, sols2) || !sameMultiset(sols2, sols3) {
		t.Fatal("strategies disagree on results")
	}
	if chain.ShippedSolutionBytes() >= basic.ShippedSolutionBytes() {
		t.Errorf("chain shipped %d bytes, basic %d — chain should ship less",
			chain.ShippedSolutionBytes(), basic.ShippedSolutionBytes())
	}
	if basic.ResponseTime >= chain.ResponseTime {
		t.Errorf("basic response %v, chain %v — basic should be faster",
			basic.ResponseTime, chain.ResponseTime)
	}
	if freq.ShippedSolutionBytes() > chain.ShippedSolutionBytes() {
		t.Errorf("freq-chain shipped %d bytes, chain %d — freq order should not ship more",
			freq.ShippedSolutionBytes(), chain.ShippedSolutionBytes())
	}
}

// TestFreqChainVisitsLargestLast checks the further-optimization ordering:
// with skewed frequencies the freq-chain must ship less than the plain
// chain (the largest partial result never travels).
func TestFreqChainVisitsLargestLast(t *testing.T) {
	data := map[string][]rdf.Triple{}
	// addresses chosen so address order visits the big node first, making
	// the plain chain's ordering pessimal
	sizes := map[string]int{"D1-big": 60, "D2-mid": 10, "D3-small": 2}
	for name, n := range sizes {
		for i := 0; i < n; i++ {
			data[name] = append(data[name], rdf.Triple{
				S: ex(fmt.Sprintf("%s-p%d", name, i)), P: fp("knows"), O: ex("carol"),
			})
		}
	}
	sys, now := buildSystem(t, 5, data)
	query := paperQueries["fig5-primitive"]

	eChain := NewEngine(sys, Options{Strategy: StrategyChain})
	_, chain, done, err := eChain.Query("D3-small", query, now)
	if err != nil {
		t.Fatal(err)
	}
	eFreq := NewEngine(sys, Options{Strategy: StrategyFreqChain})
	_, freq, _, err := eFreq.Query("D3-small", query, done)
	if err != nil {
		t.Fatal(err)
	}
	if freq.ShippedSolutionBytes() >= chain.ShippedSolutionBytes() {
		t.Errorf("freq-chain %d bytes >= chain %d bytes under skew",
			freq.ShippedSolutionBytes(), chain.ShippedSolutionBytes())
	}
}

// TestFilterPushingReducesShippedBytes reproduces the Sect. IV-G claim:
// pushing a selective filter to the storage nodes shrinks the shipped
// intermediate results.
func TestFilterPushingReducesShippedBytes(t *testing.T) {
	data := map[string][]rdf.Triple{}
	for d := 0; d < 4; d++ {
		name := fmt.Sprintf("D%d", d)
		for i := 0; i < 40; i++ {
			n := "Jones"
			if i == 0 {
				n = "Smith"
			}
			person := ex(fmt.Sprintf("p%d-%d", d, i))
			data[name] = append(data[name],
				rdf.Triple{S: person, P: fp("name"), O: rdf.NewLiteral(fmt.Sprintf("%s %d-%d", n, d, i))})
		}
	}
	sys, now := buildSystem(t, 4, data)
	query := `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:name ?n . FILTER regex(?n, "Smith") }`

	want := oracle(t, data, query)
	ePush := NewEngine(sys, Options{Strategy: StrategyChain, PushFilters: true})
	resPush, push, done, err := ePush.Query("D0", query, now)
	if err != nil {
		t.Fatal(err)
	}
	eNo := NewEngine(sys, Options{Strategy: StrategyChain, PushFilters: false})
	resNo, noPush, _, err := eNo.Query("D0", query, done)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(resPush.Solutions, want) || !sameMultiset(resNo.Solutions, want) {
		t.Fatal("filter pushing changed results")
	}
	if push.ShippedSolutionBytes() >= noPush.ShippedSolutionBytes() {
		t.Errorf("pushed %d bytes >= unpushed %d bytes",
			push.ShippedSolutionBytes(), noPush.ShippedSolutionBytes())
	}
}

// TestStorageFailureDropsPostingsAndQuerySucceeds exercises Sect. III-D:
// a crashed storage node times out, its postings are dropped at the index
// node, and the query still returns the live nodes' solutions.
func TestStorageFailureDropsPostingsAndQuerySucceeds(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 5, data)
	sys.FailNode("D2")
	e := NewEngine(sys, Options{Strategy: StrategyChain})
	res, stats, done, err := e.Query("D1", paperQueries["fig5-primitive"], now)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaleDrops == 0 {
		t.Error("no stale drop recorded for the failed node")
	}
	// live nodes still answer: alice, dave, erin know carol (bob is down)
	if len(res.Solutions) != 3 {
		t.Errorf("solutions = %d, want 3 from live nodes", len(res.Solutions))
	}
	// a repeat query must not contact the dead node again (postings gone)
	_, stats2, _, err := e.Query("D1", paperQueries["fig5-primitive"], done)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.StaleDrops != 0 {
		t.Errorf("second query still hit the dead node (drops=%d)", stats2.StaleDrops)
	}
}

func TestJoinSitePolicies(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 5, data)
	query := paperQueries["fig6-conjunction"]
	want := oracle(t, data, query)
	for _, js := range []JoinSitePolicy{JoinSiteMoveSmall, JoinSiteQuerySite, JoinSiteThirdSite} {
		e := NewEngine(sys, Options{
			Strategy: StrategyChain, Conjunction: ConjParallelJoin, JoinSite: js,
		})
		res, _, done, err := e.Query("D4", query, now)
		now = done
		if err != nil {
			t.Fatalf("%v: %v", js, err)
		}
		if !sameMultiset(res.Solutions, want) {
			t.Errorf("%v: wrong results %v", js, res.Solutions)
		}
	}
}

func TestEmptyResultShortCircuits(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 4, data)
	e := NewEngine(sys, Options{Strategy: StrategyChain, Conjunction: ConjPipeline})
	res, stats, _, err := e.Query("D1", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y WHERE { ?x foaf:knows <http://example.org/nobody> . ?x foaf:name ?y . }`, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Errorf("expected empty result, got %v", res.Solutions)
	}
	// the second pattern must not have been executed at any storage node
	if stats.Subqueries != 0 {
		t.Errorf("pipeline did not short-circuit: %d subqueries", stats.Subqueries)
	}
}

func TestExplain(t *testing.T) {
	data := paperData()
	sys, _ := buildSystem(t, 3, data)
	e := NewEngine(sys, DefaultOptions())
	plan, err := e.Explain(paperQueries["fig9-filter-optional"])
	if err != nil {
		t.Fatal(err)
	}
	if plan == "" {
		t.Error("empty plan")
	}
}

func TestQuerySyntaxErrorSurfaces(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 3, data)
	e := NewEngine(sys, DefaultOptions())
	if _, _, _, err := e.Query("D1", `SELECT ?x WHERE {`, now); err == nil {
		t.Error("expected syntax error")
	}
}

func TestInitiatorCanBeIndexNode(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 4, data)
	e := NewEngine(sys, DefaultOptions())
	want := oracle(t, data, paperQueries["fig5-primitive"])
	res, _, _, err := e.Query("idx-00", paperQueries["fig5-primitive"], now)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(res.Solutions, want) {
		t.Errorf("index-node initiator got %v", res.Solutions)
	}
}

func TestPipelineSemiJoinShipsLessOnSelectiveFirstPattern(t *testing.T) {
	// One provider has a single rare triple; another has many. Pipeline
	// with reordering starts at the rare pattern, so the second pattern's
	// execution is seeded with few rows.
	data := map[string][]rdf.Triple{
		"D-rare": {{S: ex("alice"), P: np("knowsNothingAbout"), O: ex("dave")}},
	}
	for i := 0; i < 50; i++ {
		data["D-many"] = append(data["D-many"], rdf.Triple{
			S: ex(fmt.Sprintf("p%d", i)), P: fp("knows"), O: ex(fmt.Sprintf("q%d", i)),
		})
	}
	data["D-many"] = append(data["D-many"], rdf.Triple{S: ex("alice"), P: fp("knows"), O: ex("carol")})
	sys, now := buildSystem(t, 4, data)
	query := paperQueries["fig6-conjunction"]
	want := oracle(t, data, query)

	ordered := NewEngine(sys, Options{Strategy: StrategyChain, Conjunction: ConjPipeline, ReorderJoins: true})
	resO, statsO, done, err := ordered.Query("D-rare", query, now)
	if err != nil {
		t.Fatal(err)
	}
	unordered := NewEngine(sys, Options{Strategy: StrategyChain, Conjunction: ConjPipeline, ReorderJoins: false})
	resU, statsU, _, err := unordered.Query("D-rare", query, done)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(resO.Solutions, want) || !sameMultiset(resU.Solutions, want) {
		t.Fatal("reordering changed results")
	}
	if statsO.ShippedSolutionBytes() > statsU.ShippedSolutionBytes() {
		t.Errorf("reordered pipeline shipped %d > unordered %d",
			statsO.ShippedSolutionBytes(), statsU.ShippedSolutionBytes())
	}
}

func TestJoinSiteQoSCorrectAndAdaptive(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 5, data)
	query := paperQueries["fig6-conjunction"]
	want := oracle(t, data, query)
	// correctness under QoS placement
	e := NewEngine(sys, Options{
		Strategy: StrategyFreqChain, Conjunction: ConjParallelJoin,
		JoinSite: JoinSiteQoS, PushFilters: true, ReorderJoins: true,
	})
	res, _, done, err := e.Query("D1", query, now)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(res.Solutions, want) {
		t.Fatalf("QoS placement changed results: %v", res.Solutions)
	}
	// adaptivity: degrade every provider; the cross-product merge must
	// avoid the slow sites and complete no slower than move-small
	for _, st := range sys.StorageNodes() {
		if st.Addr() != "D1" {
			sys.Net().SetLinkFactor(st.Addr(), 8)
		}
	}
	cross := `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y WHERE {
  { ?x foaf:knows <http://example.org/carol> . }
  { ?y foaf:name ?n . }
}`
	eMove := NewEngine(sys, Options{Strategy: StrategyChain, Conjunction: ConjParallelJoin, JoinSite: JoinSiteMoveSmall})
	_, moveStats, done, err := eMove.Query("D1", cross, done)
	if err != nil {
		t.Fatal(err)
	}
	eQoS := NewEngine(sys, Options{Strategy: StrategyChain, Conjunction: ConjParallelJoin, JoinSite: JoinSiteQoS})
	_, qosStats, _, err := eQoS.Query("D1", cross, done)
	if err != nil {
		t.Fatal(err)
	}
	if qosStats.ResponseTime > moveStats.ResponseTime {
		t.Errorf("QoS response %v slower than move-small %v on degraded links",
			qosStats.ResponseTime, moveStats.ResponseTime)
	}
}

func TestResultSerialization(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 4, data)
	e := NewEngine(sys, DefaultOptions())
	res, _, done, err := e.Query("D1", paperQueries["all-names-ordered"], now)
	if err != nil {
		t.Fatal(err)
	}
	var js, csvb, tsv strings.Builder
	if err := res.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"bindings"`) || !strings.Contains(js.String(), "Alice Smith") {
		t.Errorf("JSON output: %s", js.String())
	}
	if err := res.WriteCSV(&csvb); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csvb.String(), "n\n") {
		t.Errorf("CSV header: %q", csvb.String())
	}
	if err := res.WriteTSV(&tsv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tsv.String(), "?n\n") {
		t.Errorf("TSV header: %q", tsv.String())
	}
	// ASK → boolean JSON
	ask, _, _, err := e.Query("D1", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
ASK { <http://example.org/bob> foaf:nick "Shrek" . }`, done)
	if err != nil {
		t.Fatal(err)
	}
	js.Reset()
	if err := ask.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"boolean": true`) {
		t.Errorf("ASK JSON: %s", js.String())
	}
	// CONSTRUCT → N-Triples
	con, _, _, err := e.Query("D1", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
CONSTRUCT { ?y ns:knownBy ?x . } WHERE { ?x foaf:knows ?y . }`, done)
	if err != nil {
		t.Fatal(err)
	}
	var nt strings.Builder
	if err := con.WriteNTriples(&nt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nt.String(), "knownBy") {
		t.Errorf("N-Triples output: %q", nt.String())
	}
}

func TestLookupCacheEliminatesRoutingTraffic(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 5, data)
	query := paperQueries["fig5-primitive"]
	want := oracle(t, data, query)
	e := NewEngine(sys, Options{Strategy: StrategyChain, CacheLookups: true})

	res1, stats1, done, err := e.Query("D1", query, now)
	if err != nil {
		t.Fatal(err)
	}
	if e.CachedLookups() == 0 {
		t.Fatal("no lookups cached after first query")
	}
	res2, stats2, _, err := e.Query("D1", query, done)
	if err != nil {
		t.Fatal(err)
	}
	if !sameMultiset(res1.Solutions, want) || !sameMultiset(res2.Solutions, want) {
		t.Fatal("caching changed results")
	}
	if stats2.LookupHops != 0 {
		t.Errorf("second query still routed: %d hops", stats2.LookupHops)
	}
	if stats2.IndexBytes() >= stats1.IndexBytes() {
		t.Errorf("index traffic not reduced: %d vs %d", stats2.IndexBytes(), stats1.IndexBytes())
	}
	if stats2.ResponseTime >= stats1.ResponseTime {
		t.Errorf("cached query not faster: %v vs %v", stats2.ResponseTime, stats1.ResponseTime)
	}
}

func TestLookupCacheInvalidatedOnStaleNode(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 5, data)
	query := paperQueries["fig5-primitive"]
	e := NewEngine(sys, Options{Strategy: StrategyChain, CacheLookups: true})
	_, _, done, err := e.Query("D1", query, now)
	if err != nil {
		t.Fatal(err)
	}
	sys.FailNode("D2")
	// the cached row still lists D2; the first query observes the timeout,
	// drops D2 from both the index and the cache
	res, stats, done, err := e.Query("D1", query, done)
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaleDrops == 0 {
		t.Error("stale node not observed")
	}
	if len(res.Solutions) != 3 {
		t.Errorf("solutions = %d, want 3 live answers", len(res.Solutions))
	}
	// subsequent queries use the invalidated cache: no more drops
	_, stats2, _, err := e.Query("D1", query, done)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.StaleDrops != 0 {
		t.Errorf("cache still lists the dead node (drops=%d)", stats2.StaleDrops)
	}
}

func TestLookupCacheEviction(t *testing.T) {
	c := newLookupCache(2)
	c.put(1, cachedRow{index: "a"})
	c.put(2, cachedRow{index: "b"})
	c.put(3, cachedRow{index: "c"})
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2 after eviction", c.Len())
	}
	if _, ok := c.get(1); ok {
		t.Error("oldest entry not evicted")
	}
	// dropIndex removes rows by owner
	c.dropIndex("b")
	if _, ok := c.get(2); ok {
		t.Error("dropIndex failed")
	}
}

func TestDatasetFROMScoping(t *testing.T) {
	// Two named graphs on different providers: FROM selects which facts a
	// query sees (paper Sect. IV-A).
	data := map[string][]rdf.Triple{"D1": nil, "D2": nil}
	sys, now := buildSystem(t, 4, data)
	g2015 := "http://example.org/graphs/2015"
	g2020 := "http://example.org/graphs/2020"
	now, err := sys.PublishGraph("D1", g2015, []rdf.Triple{
		{S: ex("alice"), P: fp("knows"), O: ex("bob")},
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = sys.PublishGraph("D2", g2020, []rdf.Triple{
		{S: ex("alice"), P: fp("knows"), O: ex("carol")},
		{S: ex("dave"), P: fp("knows"), O: ex("bob")},
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	// default graph content too
	now, err = sys.Publish("D1", []rdf.Triple{
		{S: ex("erin"), P: fp("knows"), O: ex("bob")},
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(sys, DefaultOptions())

	// no FROM: union of everything (default + named graphs)
	res, _, now2, err := e.Query("D1", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y WHERE { ?x foaf:knows ?y . }`, now)
	if err != nil {
		t.Fatal(err)
	}
	now = now2
	if len(res.Solutions) != 4 {
		t.Errorf("no-FROM query = %d rows, want 4", len(res.Solutions))
	}

	// FROM g2015: only that graph's facts
	res, _, now2, err = e.Query("D1", fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y FROM <%s> WHERE { ?x foaf:knows ?y . }`, g2015), now)
	if err != nil {
		t.Fatal(err)
	}
	now = now2
	if len(res.Solutions) != 1 || res.Solutions[0]["y"] != ex("bob") {
		t.Errorf("FROM 2015 = %v, want alice→bob", res.Solutions)
	}

	// FROM both graphs: merged default graph
	res, _, _, err = e.Query("D2", fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y FROM <%s> FROM <%s> WHERE { ?x foaf:knows ?y . }`, g2015, g2020), now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 3 {
		t.Errorf("FROM both = %d rows, want 3", len(res.Solutions))
	}
	for _, b := range res.Solutions {
		if b["x"] == ex("erin") {
			t.Error("FROM-scoped query leaked the default graph")
		}
	}
}

func TestDatasetFROMUnknownGraphEmpty(t *testing.T) {
	data := paperData()
	sys, now := buildSystem(t, 4, data)
	e := NewEngine(sys, DefaultOptions())
	res, _, _, err := e.Query("D1", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x FROM <http://example.org/nothing> WHERE { ?x foaf:knows ?y . }`, now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 0 {
		t.Errorf("unknown FROM graph returned %v", res.Solutions)
	}
}

func TestGraphKeywordDistributed(t *testing.T) {
	data := map[string][]rdf.Triple{"D1": nil, "D2": nil}
	sys, now := buildSystem(t, 4, data)
	gFriends := "http://example.org/graphs/friends"
	gWork := "http://example.org/graphs/work"
	now, err := sys.PublishGraph("D1", gFriends, []rdf.Triple{
		{S: ex("alice"), P: fp("knows"), O: ex("bob")},
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	now, err = sys.PublishGraph("D2", gWork, []rdf.Triple{
		{S: ex("alice"), P: fp("knows"), O: ex("carol")},
	}, now)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(sys, DefaultOptions())

	// constant GRAPH
	res, _, now2, err := e.Query("D1", fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?y WHERE { GRAPH <%s> { <http://example.org/alice> foaf:knows ?y . } }`, gFriends), now)
	if err != nil {
		t.Fatal(err)
	}
	now = now2
	if len(res.Solutions) != 1 || res.Solutions[0]["y"] != ex("bob") {
		t.Errorf("GRAPH friends = %v", res.Solutions)
	}

	// variable GRAPH binds the graph IRI
	res, _, now2, err = e.Query("D2", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?g ?y WHERE { GRAPH ?g { <http://example.org/alice> foaf:knows ?y . } }`, now)
	if err != nil {
		t.Fatal(err)
	}
	now = now2
	if len(res.Solutions) != 2 {
		t.Fatalf("GRAPH ?g = %v, want 2 rows", res.Solutions)
	}
	graphs := map[string]bool{}
	for _, b := range res.Solutions {
		graphs[b["g"].Value] = true
	}
	if !graphs[gFriends] || !graphs[gWork] {
		t.Errorf("graph bindings = %v", graphs)
	}

	// FROM NAMED restricts GRAPH iteration
	res, _, _, err = e.Query("D1", fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?g ?y FROM NAMED <%s> WHERE { GRAPH ?g { ?x foaf:knows ?y . } }`, gWork), now)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != 1 || res.Solutions[0]["g"].Value != gWork {
		t.Errorf("FROM NAMED restriction = %v", res.Solutions)
	}
}

func TestGraphKeywordAllStrategies(t *testing.T) {
	data := map[string][]rdf.Triple{"D1": nil, "D2": nil, "D3": nil}
	sys, now := buildSystem(t, 4, data)
	g := "http://example.org/graphs/g"
	for i, d := range []string{"D1", "D2", "D3"} {
		var err error
		now, err = sys.PublishGraph(simnet.Addr(d), g, []rdf.Triple{
			{S: ex(fmt.Sprintf("p%d", i)), P: fp("knows"), O: ex("carol")},
		}, now)
		if err != nil {
			t.Fatal(err)
		}
	}
	query := fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { GRAPH <%s> { ?x foaf:knows <http://example.org/carol> . } }`, g)
	for _, st := range []Strategy{StrategyBasic, StrategyChain, StrategyFreqChain} {
		e := NewEngine(sys, Options{Strategy: st})
		res, _, done, err := e.Query("D1", query, now)
		now = done
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if len(res.Solutions) != 3 {
			t.Errorf("%v: %d solutions, want 3", st, len(res.Solutions))
		}
	}
}

func TestAskShortCircuitSavesWork(t *testing.T) {
	// many providers all hold a matching triple; ASK should not visit all
	data := map[string][]rdf.Triple{}
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("A%d", i)
		data[name] = []rdf.Triple{{S: ex(fmt.Sprintf("p%d", i)), P: fp("knows"), O: ex("carol")}}
	}
	sys, now := buildSystem(t, 5, data)
	ask := `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
ASK { ?x foaf:knows <http://example.org/carol> . }`
	sel := `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE { ?x foaf:knows <http://example.org/carol> . }`
	e := NewEngine(sys, Options{Strategy: StrategyChain})
	resAsk, askStats, done, err := e.Query("A0", ask, now)
	if err != nil {
		t.Fatal(err)
	}
	if !resAsk.Ask {
		t.Fatal("ASK answer wrong")
	}
	resSel, selStats, _, err := e.Query("A0", sel, done)
	if err != nil {
		t.Fatal(err)
	}
	if len(resSel.Solutions) != 10 {
		t.Fatalf("SELECT = %d rows", len(resSel.Solutions))
	}
	if askStats.Subqueries >= selStats.Subqueries {
		t.Errorf("ASK ran %d subqueries, SELECT %d — no short circuit",
			askStats.Subqueries, selStats.Subqueries)
	}
	// negative ASK still visits everything and answers false
	resNo, _, _, err := e.Query("A0", `PREFIX foaf: <http://xmlns.com/foaf/0.1/>
ASK { ?x foaf:knows <http://example.org/nobody> . }`, done)
	if err != nil {
		t.Fatal(err)
	}
	if resNo.Ask {
		t.Error("negative ASK answered true")
	}
}
