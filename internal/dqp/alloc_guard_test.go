package dqp

import (
	"testing"
)

// Allocation guards for the wire codec. Every payload of the four RPC
// vocabularies is encoded and decoded under testing.AllocsPerRun:
//
//   - binary-coded payloads must stay reflection-free — a tight absolute
//     ceiling on encode (the presized destination buffer) and a strict
//     "cheaper than gob" bound on both directions, measured against the
//     gob baseline in the same run;
//   - gob-fallback payloads are pinned at their current allocation counts
//     with headroom, so a regression that drags a hot type back onto the
//     reflection path (or makes the fallback sharply worse) fails here
//     before it shows up in the committed bench JSON (BENCH_PR9.json).
const (
	// maxBinaryEncodeAllocs: the destination buffer (1 alloc,
	// presized from SizeBytes) plus at most one growth step when a
	// payload's SizeBytes underestimates its wire form.
	maxBinaryEncodeAllocs = 2
	// maxGobAllocs bounds the reflection fallback; the worst current
	// payload (chainPayload carrying a pushed-down filter expression
	// tree) sits around 470 allocs for encode+decode.
	maxGobAllocs = 600
)

func measureAllocs(t *testing.T, label string, f func()) float64 {
	t.Helper()
	f() // warm gob's type registry and any lazy tables before counting
	return testing.AllocsPerRun(200, f)
}

func TestCodecAllocGuards(t *testing.T) {
	for _, s := range samplePayloads() {
		s := s
		p := s.p
		_, binary := binaryTag(p)

		encBin := measureAllocs(t, s.label, func() {
			if _, err := EncodePayload(p); err != nil {
				t.Fatalf("%s: encode: %v", s.label, err)
			}
		})
		encGob := measureAllocs(t, s.label, func() {
			if _, err := EncodePayloadGob(p); err != nil {
				t.Fatalf("%s: gob encode: %v", s.label, err)
			}
		})
		binData, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("%s: encode: %v", s.label, err)
		}
		gobData, err := EncodePayloadGob(p)
		if err != nil {
			t.Fatalf("%s: gob encode: %v", s.label, err)
		}
		decBin := measureAllocs(t, s.label, func() {
			if _, err := DecodePayload(binData); err != nil {
				t.Fatalf("%s: decode: %v", s.label, err)
			}
		})
		decGob := measureAllocs(t, s.label, func() {
			if _, err := DecodePayload(gobData); err != nil {
				t.Fatalf("%s: gob decode: %v", s.label, err)
			}
		})

		if binary {
			if encBin > maxBinaryEncodeAllocs {
				t.Errorf("%s: binary encode costs %.0f allocs/op, want <= %d", s.label, encBin, maxBinaryEncodeAllocs)
			}
			if encBin >= encGob {
				t.Errorf("%s: binary encode costs %.0f allocs/op, not cheaper than gob's %.0f", s.label, encBin, encGob)
			}
			if decBin >= decGob {
				t.Errorf("%s: binary decode costs %.0f allocs/op, not cheaper than gob's %.0f", s.label, decBin, decGob)
			}
		} else {
			if encBin != encGob {
				t.Errorf("%s: has no binary codec but EncodePayload (%.0f allocs) differs from gob (%.0f)", s.label, encBin, encGob)
			}
		}
		if encGob+decGob > maxGobAllocs {
			t.Errorf("%s: gob round trip costs %.0f allocs/op, want <= %d", s.label, encGob+decGob, maxGobAllocs)
		}
		t.Logf("%-40s binary=%v enc=%3.0f/%3.0f dec=%3.0f/%3.0f (binary/gob allocs)", s.label, binary, encBin, encGob, decBin, decGob)
	}
}

// TestCodecAllocGuardCoversAllRegistered cross-checks the guard's sample
// table against the codec dispatch itself: every binary tag must be hit
// by at least one sample, so a new hot payload cannot ship without an
// allocation guard.
func TestCodecAllocGuardCoversAllRegistered(t *testing.T) {
	covered := map[byte]bool{}
	for _, s := range samplePayloads() {
		if tag, ok := binaryTag(s.p); ok {
			covered[tag] = true
		}
	}
	for tag := tagBytes; tag <= tagTriplesResp; tag++ {
		if !covered[tag] {
			t.Errorf("binary tag %d has no sample payload in methodSamples; add one so the alloc guard covers it", tag)
		}
	}
}
