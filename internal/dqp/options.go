// Package dqp is the paper's primary contribution: distributed processing
// of SPARQL queries over the hybrid P2P overlay (Sect. IV), realizing the
// Fig. 3 workflow — query parsing, transformation to SPARQL algebra,
// global query optimization, sub-query shipping with local execution at
// storage nodes, and post-processing at the query initiator.
//
// Three orthogonal knobs reproduce the execution alternatives the paper
// discusses:
//
//   - Strategy selects how one triple pattern's target storage nodes are
//     processed: Basic (parallel fan-out with union at the index node,
//     Sect. IV-C "basic query processing"), Chain (the query and
//     accumulated solutions forwarded through the target list — in-network
//     aggregation, first optimization), and FreqChain (targets visited in
//     increasing location-table frequency order with the final, largest
//     node returning directly to the initiator — "further optimization").
//
//   - Conjunction selects how multi-pattern BGPs combine: Pipeline ships
//     the accumulated partial solutions from pattern to pattern
//     (Sect. IV-D basic, a distributed semi-join), ParallelJoin evaluates
//     patterns independently and joins at an assembly site, preferring a
//     storage node shared by both target sets (Sect. IV-D optimization).
//
//   - JoinSite selects where a binary merge happens when the operand sites
//     differ: MoveSmall ships the smaller multiset to the larger's site,
//     QuerySite ships both to the initiator, ThirdSite ships both to a
//     deterministic third node (Sect. II, after Cornell/Yu and Ye et al.).
package dqp

import "fmt"

// Strategy selects the per-pattern execution plan (Sect. IV-C).
type Strategy int

// Per-pattern strategies.
const (
	// StrategyBasic fans the sub-query out to all target storage nodes in
	// parallel and unions the replies at the pattern's index node: lowest
	// response time, highest transmission overhead.
	StrategyBasic Strategy = iota
	// StrategyChain forwards the sub-query along the target list, each
	// node merging its local matches into the accumulated solutions:
	// in-network aggregation trading response time for traffic.
	StrategyChain
	// StrategyFreqChain is StrategyChain with targets ordered by
	// increasing location-table frequency, so the node with the most
	// matching triples is visited last and its (largest) contribution
	// never travels; the final node returns directly to the initiator.
	StrategyFreqChain
)

func (s Strategy) String() string {
	switch s {
	case StrategyBasic:
		return "basic"
	case StrategyChain:
		return "chain"
	case StrategyFreqChain:
		return "freq-chain"
	default:
		return "unknown"
	}
}

// ParseStrategy maps a strategy's String spelling back to its value — the
// CLI-flag inverse of String.
func ParseStrategy(name string) (Strategy, error) {
	for _, s := range []Strategy{StrategyBasic, StrategyChain, StrategyFreqChain} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("dqp: unknown strategy %q (want basic, chain or freq-chain)", name)
}

// Conjunction selects how multi-pattern BGPs are combined (Sect. IV-D).
type Conjunction int

// Conjunction modes.
const (
	// ConjPipeline evaluates patterns sequentially, shipping the partial
	// solutions into each pattern's execution as seeds (distributed
	// semi-join).
	ConjPipeline Conjunction = iota
	// ConjParallelJoin evaluates each pattern over its own target set
	// independently (in parallel) and joins at an assembly site, chosen by
	// target-set overlap when possible.
	ConjParallelJoin
)

func (c Conjunction) String() string {
	switch c {
	case ConjPipeline:
		return "pipeline"
	case ConjParallelJoin:
		return "parallel-join"
	default:
		return "unknown"
	}
}

// JoinSitePolicy selects the site of a binary merge whose operands live on
// different nodes (Sect. II).
type JoinSitePolicy int

// Join-site policies.
const (
	// JoinSiteMoveSmall ships the smaller solution multiset to the site of
	// the larger one.
	JoinSiteMoveSmall JoinSitePolicy = iota
	// JoinSiteQuerySite ships both operands to the query initiator.
	JoinSiteQuerySite
	// JoinSiteThirdSite ships both operands to a deterministically chosen
	// third node.
	JoinSiteThirdSite
	// JoinSiteQoS implements the QoS-aware selection of Ye et al. (the
	// paper's third-site reference): candidate sites are scored by the
	// simulated link-quality factors — operand shipping plus the estimated
	// result's trip to the initiator — and the cheapest site wins. With
	// uniform links it degenerates to move-small.
	JoinSiteQoS
)

func (p JoinSitePolicy) String() string {
	switch p {
	case JoinSiteMoveSmall:
		return "move-small"
	case JoinSiteQuerySite:
		return "query-site"
	case JoinSiteThirdSite:
		return "third-site"
	case JoinSiteQoS:
		return "qos"
	default:
		return "unknown"
	}
}

// Options configures one query execution.
type Options struct {
	Strategy    Strategy
	Conjunction Conjunction
	JoinSite    JoinSitePolicy
	// PushFilters enables the algebraic filter-pushing rewrite, shipping
	// applicable filter conjuncts to storage nodes with the sub-queries
	// (Sect. IV-G).
	PushFilters bool
	// ReorderJoins enables frequency-driven join reordering using the
	// location-table statistics (Sect. IV-D optimization).
	ReorderJoins bool
	// CacheLookups memoizes index resolutions at the initiator across the
	// engine's queries, skipping repeated Chord routing and location-table
	// reads (an extension beyond the paper; evaluated in E14). Cached rows
	// are invalidated when a stale storage node is observed.
	CacheLookups bool
}

// DefaultOptions matches the paper's fully optimized configuration:
// frequency-ordered chains, overlap-aware parallel joins, move-small
// placement, filter pushing and join reordering.
func DefaultOptions() Options {
	return Options{
		Strategy:     StrategyFreqChain,
		Conjunction:  ConjParallelJoin,
		JoinSite:     JoinSiteMoveSmall,
		PushFilters:  true,
		ReorderJoins: true,
	}
}

// BaselineOptions matches the paper's unoptimized basic processing.
func BaselineOptions() Options {
	return Options{
		Strategy:    StrategyBasic,
		Conjunction: ConjPipeline,
		JoinSite:    JoinSiteQuerySite,
	}
}
