package dqp

import (
	"errors"
	"fmt"
	"strings"

	"adhocshare/internal/simnet"
)

// PartialFailureError reports that a distributed query could not obtain the
// contribution of one or more providers that are still alive — persistent
// message loss exhausted the retry budget. It is the explicit alternative
// to silently truncating the result set: callers either get a result that
// is oracle-complete over the live providers, or this error naming exactly
// which sites are missing.
//
// An unreachable (crashed) provider is NOT a partial failure: its triples
// have left the dataset, the index drops its postings lazily (Sect. III-D),
// and the query completes over the remaining providers.
type PartialFailureError struct {
	// Method is the sub-query RPC that failed (e.g. store.match).
	Method string
	// Missing lists the sites whose contribution is absent.
	Missing []simnet.Addr
	// Err is the final fabric error (a simnet loss error).
	Err error
}

// Error implements error.
func (e *PartialFailureError) Error() string {
	sites := make([]string, len(e.Missing))
	for i, a := range e.Missing {
		sites[i] = string(a)
	}
	return fmt.Sprintf("dqp: partial failure: %s missing from [%s]: %v",
		e.Method, strings.Join(sites, " "), e.Err)
}

// Unwrap exposes the underlying fabric error, so errors.Is still matches
// the simnet loss sentinels.
func (e *PartialFailureError) Unwrap() error { return e.Err }

// IsPartialFailure reports whether err is (or wraps) a PartialFailureError.
func IsPartialFailure(err error) bool {
	var pf *PartialFailureError
	return errors.As(err, &pf)
}
