package dqp

import (
	"reflect"
	"testing"

	"adhocshare/internal/simnet"
)

func roundTrip(t *testing.T, label string, p simnet.Payload) {
	t.Helper()
	data, err := EncodePayload(p)
	if err != nil {
		t.Errorf("%s: encode: %v", label, err)
		return
	}
	got, err := DecodePayload(data)
	if err != nil {
		t.Errorf("%s: decode: %v", label, err)
		return
	}
	if !reflect.DeepEqual(got, p) {
		t.Errorf("%s: round trip changed the payload:\n sent: %#v\n got:  %#v", label, p, got)
	}
	if got.SizeBytes() != p.SizeBytes() {
		t.Errorf("%s: SizeBytes changed across the wire: %d -> %d", label, p.SizeBytes(), got.SizeBytes())
	}
}

// TestMethodPayloadsRoundTrip drives every Method* constant of the four
// RPC vocabularies through the wire codec with the representative
// payloads of methodSamples (shared with the alloc guards and the codec
// fuzz seeds).
func TestMethodPayloadsRoundTrip(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range methodSamples() {
		if seen[c.method] {
			t.Errorf("method %q appears twice in the table", c.method)
		}
		seen[c.method] = true
		roundTrip(t, c.method+" request", c.req)
		roundTrip(t, c.method+" response", c.resp)
	}
}
