package dqp

import (
	"io"

	"adhocshare/internal/rdf"
	"adhocshare/internal/sparql/results"
)

// WriteJSON serializes the result in the W3C SPARQL 1.1 Query Results JSON
// format (boolean form for ASK results).
func (r *Result) WriteJSON(w io.Writer) error {
	if r.IsAsk {
		return results.WriteBooleanJSON(w, r.Ask)
	}
	return results.WriteJSON(w, r.Vars, r.Solutions)
}

// WriteCSV serializes a SELECT result in SPARQL 1.1 CSV.
func (r *Result) WriteCSV(w io.Writer) error {
	return results.WriteCSV(w, r.Vars, r.Solutions)
}

// WriteTSV serializes a SELECT result in SPARQL 1.1 TSV.
func (r *Result) WriteTSV(w io.Writer) error {
	return results.WriteTSV(w, r.Vars, r.Solutions)
}

// WriteNTriples serializes a CONSTRUCT/DESCRIBE result as N-Triples.
func (r *Result) WriteNTriples(w io.Writer) error {
	return rdf.WriteNTriples(w, r.Triples)
}
