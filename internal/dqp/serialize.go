package dqp

import (
	"bytes"
	"encoding/gob"
	"io"

	"adhocshare/internal/chord"
	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/results"
)

// The wire codec uses gob with every concrete payload type registered up
// front, so a payload can be encoded behind the simnet.Payload interface
// and decoded back to its concrete type on the receiving side. Expression
// implementations are registered too: MatchReq and chainPayload carry a
// pushed-down FILTER as a sparql.Expression interface value.
func init() {
	gob.Register(simnet.Bytes(0))
	gob.Register(chainPayload{})

	gob.Register(overlay.PutReq{})
	gob.Register(overlay.PutBatchReq{})
	gob.Register(overlay.LookupReq{})
	gob.Register(overlay.PostingsResp{})
	gob.Register(overlay.TransferReq{})
	gob.Register(overlay.TableRows{})
	gob.Register(overlay.DropNodeReq{})
	gob.Register(overlay.MatchReq{})
	gob.Register(overlay.SolutionsResp{})
	gob.Register(overlay.CountReq{})
	gob.Register(overlay.CountResp{})
	gob.Register(overlay.TriplesResp{})

	gob.Register(chord.Ref{})
	gob.Register(chord.FindReq{})
	gob.Register(chord.FindResp{})
	gob.Register(chord.BatchFindReq{})
	gob.Register(chord.BatchFindResp{})
	gob.Register(chord.RefList{})

	gob.Register(&sparql.ExprVar{})
	gob.Register(&sparql.ExprTerm{})
	gob.Register(&sparql.ExprOr{})
	gob.Register(&sparql.ExprAnd{})
	gob.Register(&sparql.ExprNot{})
	gob.Register(&sparql.ExprNeg{})
	gob.Register(&sparql.ExprCmp{})
	gob.Register(&sparql.ExprArith{})
	gob.Register(&sparql.ExprCall{})
}

// EncodePayload serializes an RPC payload for the wire. The concrete type
// travels with the data, so DecodePayload needs no out-of-band hint.
func EncodePayload(p simnet.Payload) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodePayload reverses EncodePayload.
func DecodePayload(data []byte) (simnet.Payload, error) {
	var p simnet.Payload
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&p); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteJSON serializes the result in the W3C SPARQL 1.1 Query Results JSON
// format (boolean form for ASK results).
func (r *Result) WriteJSON(w io.Writer) error {
	if r.IsAsk {
		return results.WriteBooleanJSON(w, r.Ask)
	}
	return results.WriteJSON(w, r.Vars, r.Solutions)
}

// WriteCSV serializes a SELECT result in SPARQL 1.1 CSV.
func (r *Result) WriteCSV(w io.Writer) error {
	return results.WriteCSV(w, r.Vars, r.Solutions)
}

// WriteTSV serializes a SELECT result in SPARQL 1.1 TSV.
func (r *Result) WriteTSV(w io.Writer) error {
	return results.WriteTSV(w, r.Vars, r.Solutions)
}

// WriteNTriples serializes a CONSTRUCT/DESCRIBE result as N-Triples.
func (r *Result) WriteNTriples(w io.Writer) error {
	return rdf.WriteNTriples(w, r.Triples)
}
