package dqp

import (
	"bytes"
	"encoding/gob"
	"io"

	"adhocshare/internal/chord"
	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/rdfpeers"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/results"
)

// Every concrete payload type of the four RPC vocabularies (chord,
// overlay, dqp, rdfpeers) is gob-registered up front, so the reflection
// fallback can encode a payload behind the simnet.Payload interface and
// decode it back to its concrete type on the receiving side. Expression
// implementations are registered too: MatchReq and chainPayload carry a
// pushed-down FILTER as a sparql.Expression interface value. The hot
// payload families additionally carry hand-rolled binary codecs (see
// binary.go); gob remains the registered baseline for cross-checking and
// for the interface-bearing payloads.
func init() {
	gob.Register(simnet.Bytes(0))
	gob.Register(chainPayload{})

	gob.Register(overlay.PutReq{})
	gob.Register(overlay.PutBatchReq{})
	gob.Register(overlay.LookupReq{})
	gob.Register(overlay.PostingsResp{})
	gob.Register(overlay.TransferReq{})
	gob.Register(overlay.TableRows{})
	gob.Register(overlay.DropNodeReq{})
	gob.Register(overlay.MatchReq{})
	gob.Register(overlay.SolutionsResp{})
	gob.Register(overlay.CountReq{})
	gob.Register(overlay.CountResp{})
	gob.Register(overlay.TriplesResp{})
	gob.Register(overlay.HotReplicaReq{})
	gob.Register(overlay.HotLookupReq{})
	gob.Register(overlay.HotPostingsResp{})

	gob.Register(chord.Ref{})
	gob.Register(chord.FindReq{})
	gob.Register(chord.FindResp{})
	gob.Register(chord.BatchFindReq{})
	gob.Register(chord.BatchFindResp{})
	gob.Register(chord.RefList{})

	gob.Register(rdfpeers.StoreReq{})
	gob.Register(rdfpeers.MatchReq{})
	gob.Register(rdfpeers.SolutionsResp{})
	gob.Register(rdfpeers.IntersectReq{})
	gob.Register(rdfpeers.TermsResp{})
	gob.Register(rdfpeers.RangeReq{})
	gob.Register(rdfpeers.RangeResp{})
	gob.Register(rdfpeers.TriplesPayload{})

	gob.Register(&sparql.ExprVar{})
	gob.Register(&sparql.ExprTerm{})
	gob.Register(&sparql.ExprOr{})
	gob.Register(&sparql.ExprAnd{})
	gob.Register(&sparql.ExprNot{})
	gob.Register(&sparql.ExprNeg{})
	gob.Register(&sparql.ExprCmp{})
	gob.Register(&sparql.ExprArith{})
	gob.Register(&sparql.ExprCall{})
}

// EncodePayload serializes an RPC payload for the wire. The concrete type
// travels with the data (a one-byte format tag plus, for the gob
// fallback, gob's own type preamble), so DecodePayload needs no
// out-of-band hint. Hot payload families take the reflection-free binary
// path; everything else falls back to gob.
func EncodePayload(p simnet.Payload) ([]byte, error) {
	if tag, ok := binaryTag(p); ok {
		// SizeBytes is a capacity hint, and on adversarial values (a
		// decoded simnet.Bytes is an arbitrary int) it can be negative
		// or absurd — clamp rather than let make panic or over-commit.
		hint := p.SizeBytes()
		if hint < 0 {
			hint = 0
		} else if hint > maxEncodeHint {
			hint = maxEncodeHint
		}
		dst := make([]byte, 1, 16+hint)
		dst[0] = tag
		return p.(binaryEncoder).EncodeBinary(dst), nil
	}
	return EncodePayloadGob(p)
}

// maxEncodeHint caps the presized encode buffer; larger payloads grow by
// append instead of trusting a corrupt SizeBytes.
const maxEncodeHint = 1 << 20

// EncodePayloadGob serializes a payload through the reflection-driven gob
// baseline, bypassing the binary fast path. It exists for the fallback
// itself and for the benchmarks, AllocsPerRun guards and fuzz harness
// that cross-check the two codecs; DecodePayload understands its output.
func EncodePayloadGob(p simnet.Payload) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteByte(tagGob)
	if err := gob.NewEncoder(&buf).Encode(&p); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodePayload reverses EncodePayload (and EncodePayloadGob).
func DecodePayload(data []byte) (simnet.Payload, error) {
	if len(data) == 0 {
		return nil, io.ErrUnexpectedEOF
	}
	if data[0] != tagGob {
		return decodeBinary(data[0], data[1:])
	}
	var p simnet.Payload
	if err := gob.NewDecoder(bytes.NewReader(data[1:])).Decode(&p); err != nil {
		return nil, err
	}
	return p, nil
}

// WriteJSON serializes the result in the W3C SPARQL 1.1 Query Results JSON
// format (boolean form for ASK results).
func (r *Result) WriteJSON(w io.Writer) error {
	if r.IsAsk {
		return results.WriteBooleanJSON(w, r.Ask)
	}
	return results.WriteJSON(w, r.Vars, r.Solutions)
}

// WriteCSV serializes a SELECT result in SPARQL 1.1 CSV.
func (r *Result) WriteCSV(w io.Writer) error {
	return results.WriteCSV(w, r.Vars, r.Solutions)
}

// WriteTSV serializes a SELECT result in SPARQL 1.1 TSV.
func (r *Result) WriteTSV(w io.Writer) error {
	return results.WriteTSV(w, r.Vars, r.Solutions)
}

// WriteNTriples serializes a CONSTRUCT/DESCRIBE result as N-Triples.
func (r *Result) WriteNTriples(w io.Writer) error {
	return rdf.WriteNTriples(w, r.Triples)
}
