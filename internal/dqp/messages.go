package dqp

import (
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/eval"
	"adhocshare/internal/trace"
)

// RPC / transfer method names used by the distributed executor. They are
// distinct from overlay methods so experiments can attribute traffic:
// "dqp.dispatch" is sub-query shipping to an index node, "dqp.ship" is
// intermediate-result movement between sites, "dqp.result" is the final
// return to the initiator.
const (
	methodDispatch = "dqp.dispatch"
	methodShip     = "dqp.ship"
	methodResult   = "dqp.result"
)

// chainPayload is the message forwarded along a chain of target storage
// nodes: the sub-query (patterns plus pushed filter), the seed partial
// solutions being joined in-network, the accumulated matches so far, and
// the remaining target sequence (Sect. IV-C optimization: "information on
// a sequence of target nodes that the query should be forwarded through").
//adhoclint:gobfallback Filter is a sparql.Expression interface value; gob's registered concrete types carry it
type chainPayload struct {
	Patterns []rdf.Triple
	Filter   sparql.Expression
	Seeds    eval.Solutions
	Acc      eval.Solutions
	Seq      []simnet.Addr
	Dataset  []string
	// TC carries trace causality: each hop derives the next hop's context
	// from its own, so a traced chain renders as a linked list of message
	// spans (the Fig. 5 chained flow).
	TC trace.TraceContext
}

// TraceCtx implements trace.Carrier.
func (c chainPayload) TraceCtx() trace.TraceContext { return c.TC }

// SizeBytes implements simnet.Payload.
func (c chainPayload) SizeBytes() int {
	n := 8 + c.TC.SizeBytes()
	for _, p := range c.Patterns {
		n += p.SizeBytes()
	}
	if c.Filter != nil {
		n += len(c.Filter.String())
	}
	n += c.Seeds.SizeBytes()
	n += c.Acc.SizeBytes()
	for _, a := range c.Seq {
		n += len(a)
	}
	for _, g := range c.Dataset {
		n += len(g)
	}
	return n
}
