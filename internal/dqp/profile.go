package dqp

// Per-query stage profiles: the trace spans of one query classified into
// the pipeline stages of the paper's Fig. 3 (successor resolution,
// location-table lookup, sub-query evaluation, intermediate-result
// transfer), with critical-path attribution — which stages the query's
// response time was actually spent in, as opposed to total parallel work.

import (
	"fmt"
	"io"
	"strings"

	"adhocshare/internal/trace"
)

// Stage names, in pipeline order.
const (
	StageResolve  = "resolve"  // chord.* successor-resolution traffic
	StageLookup   = "lookup"   // index.* location-table reads (incl. hot replicas)
	StageSubquery = "subquery" // dqp.dispatch + store.* sub-query evaluation
	StageTransfer = "transfer" // dqp.ship / dqp.result data movement
	StageOther    = "other"
)

// stageOrder fixes the rendering order.
var stageOrder = []string{StageResolve, StageLookup, StageSubquery, StageTransfer, StageOther}

// StageOf classifies one span into a pipeline stage ("" for op spans —
// dqp.query, dqp.plan, dqp.pattern — which wrap the messages they caused
// and would double-count the same virtual time).
func StageOf(s trace.Span) string {
	switch {
	case s.Kind == trace.KindOp:
		return ""
	case strings.HasPrefix(s.Name, "chord."):
		return StageResolve
	case strings.HasPrefix(s.Name, "index."):
		return StageLookup
	case s.Name == methodDispatch || strings.HasPrefix(s.Name, "store."):
		return StageSubquery
	case s.Name == methodShip || s.Name == methodResult:
		return StageTransfer
	default:
		return StageOther
	}
}

// StageCost aggregates one stage's spans.
type StageCost struct {
	// Count is the number of spans attributed to the stage.
	Count int
	// Time is the summed virtual span duration in nanoseconds.
	Time int64
}

// StageProfile is the stage breakdown of one query.
type StageProfile struct {
	// Query is the trace identifier.
	Query uint64
	// Total is the query's end-to-end virtual duration.
	Total int64
	// ByStage is total (parallel) work per stage.
	ByStage map[string]StageCost
	// Critical is the per-stage share of the critical path: the blocking
	// chain reconstructed backwards from the query's last-finishing message
	// span, each hop being the latest-ending span that finished before the
	// current one started. Its times sum to at most Total, and the dominant
	// entry names the stage that bounded the response time.
	Critical map[string]StageCost
}

// BuildStageProfile classifies the spans of one query. Spans of other
// queries are ignored.
func BuildStageProfile(spans []trace.Span, query uint64) StageProfile {
	p := StageProfile{Query: query, ByStage: map[string]StageCost{}, Critical: map[string]StageCost{}}
	var qs []trace.Span
	for _, s := range spans {
		if s.Query == query {
			qs = append(qs, s)
		}
	}
	if len(qs) == 0 {
		return p
	}
	trace.SortSpans(qs)
	minStart, maxEnd := qs[0].Start, qs[0].End
	for _, s := range qs {
		if s.Start < minStart {
			minStart = s.Start
		}
		if s.End > maxEnd {
			maxEnd = s.End
		}
		if st := StageOf(s); st != "" {
			c := p.ByStage[st]
			c.Count++
			c.Time += s.End - s.Start
			p.ByStage[st] = c
		}
	}
	p.Total = maxEnd - minStart
	// Critical path: the blocking chain, reconstructed backwards from the
	// last-finishing stage-attributable span. The simulator is synchronous,
	// so "the latest-ending span that finished no later than this one
	// started" is the hop the current one was (transitively) waiting on;
	// overlapped (parallel) work is skipped. qs is in canonical order, so
	// ties break deterministically.
	var chain []trace.Span
	for _, s := range qs {
		if StageOf(s) == "" {
			continue
		}
		chain = append(chain, s)
	}
	if len(chain) == 0 {
		return p
	}
	lastIdx := 0
	for i, s := range chain[1:] {
		if s.End > chain[lastIdx].End || (s.End == chain[lastIdx].End && s.Start >= chain[lastIdx].Start) {
			lastIdx = i + 1
		}
	}
	used := map[int]bool{lastIdx: true}
	for cur := chain[lastIdx]; ; {
		c := p.Critical[StageOf(cur)]
		c.Count++
		c.Time += cur.End - cur.Start
		p.Critical[StageOf(cur)] = c
		best := -1
		for i, s := range chain {
			if used[i] || s.End > cur.Start {
				continue
			}
			if best < 0 || s.End > chain[best].End ||
				(s.End == chain[best].End && s.Start >= chain[best].Start) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		cur = chain[best]
	}
	return p
}

// WriteStageProfile renders the profile as an aligned text table.
func WriteStageProfile(w io.Writer, p StageProfile) error {
	if _, err := fmt.Fprintf(w, "stage profile query=%#x total=%d vns\n", p.Query, p.Total); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "  %-10s %8s %14s %8s %14s\n", "stage", "spans", "work(vns)", "crit", "crit(vns)"); err != nil {
		return err
	}
	for _, st := range stageOrder {
		work, crit := p.ByStage[st], p.Critical[st]
		if work.Count == 0 && crit.Count == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "  %-10s %8d %14d %8d %14d\n", st, work.Count, work.Time, crit.Count, crit.Time); err != nil {
			return err
		}
	}
	return nil
}

// Stages lists the stages present in the profile, in pipeline order.
func (p StageProfile) Stages() []string {
	var out []string
	for _, st := range stageOrder {
		if p.ByStage[st].Count > 0 || p.Critical[st].Count > 0 {
			out = append(out, st)
		}
	}
	return out
}
