package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"adhocshare/internal/dqp"
	"adhocshare/internal/trace"
	"adhocshare/internal/workload"
)

// checkGolden compares got against testdata/<name>; UPDATE_GOLDEN=1
// regenerates the file instead.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with UPDATE_GOLDEN=1 to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s does not match the golden file; run with UPDATE_GOLDEN=1 after reviewing the diff.\ngot:\n%s", name, got)
	}
}

var traceStrategies = []dqp.Strategy{dqp.StrategyBasic, dqp.StrategyChain, dqp.StrategyFreqChain}

// TestTraceFig4TreeGolden pins the `sparql-explain -trace` text tree of
// the fixed-seed Fig. 4 query, one golden per strategy.
func TestTraceFig4TreeGolden(t *testing.T) {
	for _, s := range traceStrategies {
		spans, _, err := TraceFig4(Params{}, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		var buf bytes.Buffer
		if err := trace.WriteTree(&buf, spans); err != nil {
			t.Fatalf("%v: WriteTree: %v", s, err)
		}
		checkGolden(t, "e9_fig4_"+s.String()+".tree", buf.Bytes())
	}
}

// TestTraceFig4ChromeGolden pins the Chrome trace_event export of the same
// query (the CI artifact format, loadable in Perfetto).
func TestTraceFig4ChromeGolden(t *testing.T) {
	spans, _, err := TraceFig4(Params{}, dqp.StrategyBasic)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, spans); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "e9_fig4_basic.chrome.json", buf.Bytes())
}

// TestTraceFig4Deterministic: the same seed yields byte-identical spans
// across independent deployments.
func TestTraceFig4Deterministic(t *testing.T) {
	a, _, err := TraceFig4(Params{}, dqp.StrategyChain)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := TraceFig4(Params{}, dqp.StrategyChain)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two same-seed runs recorded different spans")
	}
}

// topology summarizes a trace's causal shape: the widest sibling group and
// the deepest parent chain among the query's message spans.
func topology(spans []trace.Span) (maxFanout, maxDepth int) {
	children := map[uint64]int{}
	parent := map[uint64]uint64{}
	for _, s := range spans {
		if s.Query == 0 || s.Kind != trace.KindMessage {
			continue
		}
		children[s.Parent]++
		parent[s.ID] = s.Parent
	}
	for _, n := range children {
		if n > maxFanout {
			maxFanout = n
		}
	}
	for id := range parent {
		depth := 0
		for cur := id; cur != 0; cur = parent[cur] {
			depth++
			if depth > len(parent) { // cycle guard
				break
			}
		}
		if depth > maxDepth {
			maxDepth = depth
		}
	}
	return maxFanout, maxDepth
}

// TestTraceFig4TopologiesDistinct: the three strategies must produce three
// distinct trace topologies matching Fig. 5 — the basic strategy's
// parallel fan-out is a star (wide, shallow), the chains are linked lists
// (narrow, deep), and frequency ordering visits the targets in a different
// sequence than node ordering.
func TestTraceFig4TopologiesDistinct(t *testing.T) {
	byStrategy := map[string][]trace.Span{}
	for _, s := range traceStrategies {
		spans, _, err := TraceFig4(Params{}, s)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		byStrategy[s.String()] = spans
	}
	basicW, basicD := topology(byStrategy[dqp.StrategyBasic.String()])
	chainW, chainD := topology(byStrategy[dqp.StrategyChain.String()])
	if basicW <= chainW {
		t.Errorf("basic fan-out %d is not wider than chain %d (expected a star)", basicW, chainW)
	}
	if chainD <= basicD {
		t.Errorf("chain depth %d is not deeper than basic %d (expected a linked list)", chainD, basicD)
	}
	// Pairwise distinct message sequences.
	hops := func(spans []trace.Span) []string {
		var out []string
		for _, s := range spans {
			if s.Query != 0 && s.Kind == trace.KindMessage {
				out = append(out, s.Name+" "+s.From+"→"+s.To)
			}
		}
		return out
	}
	names := []string{dqp.StrategyBasic.String(), dqp.StrategyChain.String(), dqp.StrategyFreqChain.String()}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if reflect.DeepEqual(hops(byStrategy[names[i]]), hops(byStrategy[names[j]])) {
				t.Errorf("strategies %s and %s produced identical message sequences", names[i], names[j])
			}
		}
	}
}

// TestTraceFig4NilRecorderParity: attaching the recorder changes nothing
// the engine can observe — stats (messages, bytes, virtual response time)
// match a recorder-free run of the identical deployment.
func TestTraceFig4NilRecorderParity(t *testing.T) {
	_, traced, err := TraceFig4(Params{}, dqp.StrategyChain)
	if err != nil {
		t.Fatal(err)
	}
	dep, err := fig4Deployment(Params{})
	if err != nil {
		t.Fatal(err)
	}
	_, bare, err := dep.runQuery(fig4Opts(dqp.StrategyChain), "D00", workload.QueryFig4("Smith"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced, bare) {
		t.Errorf("tracing changed the engine stats:\ntraced: %+v\nbare:   %+v", traced, bare)
	}
}
