// Package experiments implements the evaluation harness: one function per
// experiment of the per-experiment index in DESIGN.md (E1–E12). The paper
// defers its performance evaluation to future work (Sect. V), so these
// experiments *are* the reproduction target: each mechanism and each
// qualitative claim from Sect. III–IV becomes a measured table. The same
// functions back the `benchmark` command and the root-level testing.B
// benchmarks.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"adhocshare/internal/simnet"
)

// Table is one experiment's result: a caption, column headers and rows.
type Table struct {
	ID      string
	Caption string
	Headers []string
	Rows    [][]string
	// Notes records observations tied to the paper's claims.
	Notes []string
	// Traffic is the optional per-method traffic breakdown of the
	// experiment's runs, one entry per (scope, RPC method). Scope names the
	// configuration row the traffic belongs to.
	Traffic []TrafficRow
}

// TrafficRow is one RPC method's share of a run's traffic.
type TrafficRow struct {
	Scope    string `json:"scope,omitempty"`
	Method   string `json:"method"`
	Messages int64  `json:"messages"`
	Bytes    int64  `json:"bytes"`
}

// AddTraffic folds a per-method snapshot into the table's traffic
// breakdown under the given scope, in deterministic method order.
func (t *Table) AddTraffic(scope string, per map[string]simnet.MethodStats) {
	methods := make([]string, 0, len(per))
	for m := range per {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	for _, m := range methods {
		st := per[m]
		t.Traffic = append(t.Traffic, TrafficRow{
			Scope: scope, Method: m, Messages: st.Messages, Bytes: st.Bytes,
		})
	}
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Fprint renders the table as aligned plain text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Caption)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	// One compact line per scope: every method's msgs/bytes share.
	var scope string
	var parts []string
	flush := func() {
		if len(parts) > 0 {
			fmt.Fprintf(w, "  traffic[%s]: %s\n", scope, strings.Join(parts, " "))
			parts = nil
		}
	}
	for _, tr := range t.Traffic {
		if tr.Scope != scope {
			flush()
			scope = tr.Scope
		}
		parts = append(parts, fmt.Sprintf("%s=%d/%dB", tr.Method, tr.Messages, tr.Bytes))
	}
	flush()
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// kb formats a byte count in KiB with two decimals.
func kb(n int64) string { return fmt.Sprintf("%.2f", float64(n)/1024) }
