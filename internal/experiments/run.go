package experiments

import (
	"fmt"
	"io"
)

// Experiment is one named experiment of the DESIGN.md index.
type Experiment struct {
	ID   string
	Name string
	Run  func(Params) (*Table, error)
}

// All lists every experiment in index order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Fig. 1 topology reconstruction", E1Fig1},
		{"E2", "two-level index construction", E2IndexConstruction},
		{"E3", "DHT lookup hops vs. ring size", E3LookupHops},
		{"E4", "primitive query strategies", E4PrimitiveStrategies},
		{"E5", "conjunctive BGP processing", E5Conjunction},
		{"E6", "OPTIONAL placement policies", E6Optional},
		{"E7", "UNION processing", E7Union},
		{"E8", "filter pushing", E8FilterPushing},
		{"E9", "Fig. 4 end-to-end matrix", E9Fig4EndToEnd},
		{"E10", "hybrid vs. RDFPeers baseline", E10VsRDFPeers},
		{"E11", "churn resilience", E11Churn},
		{"E12", "join-site selection", E12JoinSite},
		{"E13", "QoS-aware join-site selection (extension)", E13QoSJoinSite},
		{"E14", "initiator lookup cache (extension)", E14LookupCache},
		{"E15", "numeric range queries vs. LPH (extension)", E15RangeQueries},
		{"E16", "Zipf query storm: adaptive hot-key replication (extension)", E16ZipfStorm},
		{"E17", "per-query stage profiles: critical-path attribution (extension)", E17StageProfiles},
	}
}

// RunAll executes every experiment with the given parameters, writing each
// table to w as it completes. It returns the first error encountered.
func RunAll(w io.Writer, p Params) error {
	for _, e := range All() {
		t, err := e.Run(p)
		if err != nil {
			return fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		t.Fprint(w)
	}
	return nil
}

// RunOne executes a single experiment by ID.
func RunOne(w io.Writer, id string, p Params) error {
	for _, e := range All() {
		if e.ID == id {
			t, err := e.Run(p)
			if err != nil {
				return err
			}
			t.Fprint(w)
			return nil
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q", id)
}
