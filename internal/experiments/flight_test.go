package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"adhocshare/internal/dqp"
	"adhocshare/internal/flight"
	"adhocshare/internal/overlay"
	"adhocshare/internal/trace"
	"adhocshare/internal/workload"
)

// The armed-monitor smoke surface of CI: the full experiment matrices must
// run violation-free with the flight recorder and every invariant monitor
// armed, same-seed event logs must be byte-identical (serially and under
// ConcurrentDelivery), and a failing run leaves an incident report behind
// when INCIDENT_DIR is set.

// saveIncident writes an incident report artifact when INCIDENT_DIR is
// set (the CI upload path); it is called only on assertion failure.
func saveIncident(t *testing.T, mon *overlay.Monitors, title string, vs []flight.Violation) {
	t.Helper()
	dir := os.Getenv("INCIDENT_DIR")
	if dir == "" || mon == nil {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("incident dir: %v", err)
		return
	}
	name := strings.Map(func(r rune) rune {
		if r == ' ' || r == '/' {
			return '-'
		}
		return r
	}, title)
	path := filepath.Join(dir, name+".txt")
	f, err := os.Create(path)
	if err != nil {
		t.Logf("incident artifact: %v", err)
		return
	}
	defer f.Close()
	if err := mon.Incident(title, vs, 32).Write(f); err != nil {
		t.Logf("incident artifact: %v", err)
		return
	}
	t.Logf("wrote incident report %s", path)
}

// TestE9FlightMonitorsClean runs the full 12-configuration E9 strategy
// matrix with the recorder and monitors armed: every configuration must
// come back violation-free, and arming must not change any measured cell.
func TestE9FlightMonitorsClean(t *testing.T) {
	render := func(p Params) (*Table, string) {
		tab, err := E9Fig4EndToEnd(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		var b strings.Builder
		for _, r := range tab.Rows {
			fmt.Fprintln(&b, r)
		}
		return tab, b.String()
	}
	armed, armedRows := render(Params{Flight: 128})
	clean := false
	for _, n := range armed.Notes {
		if strings.Contains(n, "MONITOR") {
			t.Errorf("violation note: %s", n)
		}
		if strings.Contains(n, "zero violations") {
			clean = true
		}
	}
	if !clean {
		t.Error("armed E9 run did not report the zero-violations note")
	}
	_, plainRows := render(Params{})
	if armedRows != plainRows {
		t.Errorf("arming the recorder changed E9 measurements:\n--- armed ---\n%s--- plain ---\n%s",
			armedRows, plainRows)
	}
}

// TestE16FlightMonitorsClean runs both storm modes armed: the post-storm
// monitor verdict must be clean in each.
func TestE16FlightMonitorsClean(t *testing.T) {
	for _, adaptive := range []bool{false, true} {
		sum, err := E16ZipfStormSummary(Params{Flight: 128}, adaptive)
		if err != nil {
			t.Fatalf("adaptive=%v: %v", adaptive, err)
		}
		if sum.Monitors != "ok" {
			t.Errorf("adaptive=%v: monitors = %q, want ok", adaptive, sum.Monitors)
		}
	}
}

// TestFlightQueryCleanWithIncidentArtifact runs one traced query with the
// monitors armed: zero violations expected; on failure an incident report
// is written to INCIDENT_DIR for the CI artifact upload.
func TestFlightQueryCleanWithIncidentArtifact(t *testing.T) {
	ft, err := TraceQueryFlight(Params{}, dqp.StrategyFreqChain, "D00", workload.QueryFig4("Smith"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ft.Violations) != 0 {
		saveIncident(t, ft.Monitors, "flight-query-clean", ft.Violations)
		t.Fatalf("armed demo query raised %d violations: %v", len(ft.Violations), ft.Violations)
	}
	if ft.Query == 0 {
		t.Fatal("traced query has no trace identifier")
	}
	rec := ft.Monitors.Recorder()
	if rec.Count(flight.KindStage) == 0 {
		t.Error("no query.stage events recorded")
	}
	if rec.Count(flight.KindDeliver) == 0 {
		t.Error("no deliver events recorded")
	}
	prof := dqp.BuildStageProfile(ft.Spans, ft.Query)
	if len(prof.Stages()) == 0 {
		t.Error("stage profile is empty")
	}
}

// TestFlightEventLogSameSeedByteIdentical pins the tentpole determinism
// claim: identical Params reproduce identical retained event logs, and
// ConcurrentDelivery — true per-handler goroutines — retains the exact
// same events as a serial run.
func TestFlightEventLogSameSeedByteIdentical(t *testing.T) {
	run := func(p Params) []flight.Event {
		ft, err := TraceQueryFlight(p, dqp.StrategyChain, "D00", workload.QueryFig4("Smith"))
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		return ft.Events
	}
	// Small ring (64 events) so eviction is exercised, not just recording.
	serial := run(Params{Seed: 7, Flight: 64})
	again := run(Params{Seed: 7, Flight: 64})
	if !reflect.DeepEqual(serial, again) {
		t.Error("same-seed serial event logs differ")
	}
	concurrent := run(Params{Seed: 7, Flight: 64, Concurrent: true})
	if !reflect.DeepEqual(serial, concurrent) {
		t.Errorf("concurrent-delivery event log differs from serial:\nserial %d events, concurrent %d",
			len(serial), len(concurrent))
	}
}

// TestSnapshotsDeterministicUnderConcurrentDelivery attaches a metrics
// Registry and a ring-mode span Buffer to the fabric and compares their
// snapshots between a serial and a ConcurrentDelivery run of the same
// seeded query: both must be byte-identical (the test runs under -race in
// CI, so the registry and ring-buffer locking is exercised by true
// concurrency, not just asserted).
func TestSnapshotsDeterministicUnderConcurrentDelivery(t *testing.T) {
	run := func(concurrent bool) (trace.MetricsSnapshot, []trace.Span) {
		p := Params{Seed: 3, Concurrent: concurrent}
		dep, err := fig4Deployment(p)
		if err != nil {
			t.Fatal(err)
		}
		reg := trace.NewRegistry()
		ring := trace.NewRingBuffer(48)
		dep.sys.Net().SetRecorder(trace.Tee(reg, ring))
		if _, _, err := dep.runQuery(fig4Opts(dqp.StrategyBasic), "D00", workload.QueryFig4("Smith")); err != nil {
			t.Fatal(err)
		}
		return reg.Snapshot(), ring.Spans()
	}
	serialSnap, serialSpans := run(false)
	concSnap, concSpans := run(true)
	if !reflect.DeepEqual(serialSnap, concSnap) {
		t.Error("Registry snapshot differs between serial and concurrent delivery")
	}
	if !reflect.DeepEqual(serialSpans, concSpans) {
		t.Errorf("ring-buffer spans differ between serial and concurrent delivery (%d vs %d)",
			len(serialSpans), len(concSpans))
	}
	if len(serialSpans) != 48 {
		t.Errorf("ring buffer not at capacity: %d spans, want 48", len(serialSpans))
	}
}
