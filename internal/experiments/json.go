package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// jsonTable is the machine-readable form of one experiment table. Field
// order and lowercase keys are part of the output contract; downstream
// tooling (plot scripts, regression diffing) keys on them.
type jsonTable struct {
	ID      string       `json:"id"`
	Caption string       `json:"caption"`
	Headers []string     `json:"headers"`
	Rows    [][]string   `json:"rows"`
	Notes   []string     `json:"notes,omitempty"`
	Traffic []TrafficRow `json:"traffic,omitempty"`
}

type jsonDoc struct {
	Experiments []jsonTable `json:"experiments"`
}

// Collect runs the named experiments (all of them when ids is empty) and
// returns the result tables in index order.
func Collect(p Params, ids ...string) ([]*Table, error) {
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	var out []*Table
	for _, e := range All() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		t, err := e.Run(p)
		if err != nil {
			return nil, fmt.Errorf("%s (%s): %w", e.ID, e.Name, err)
		}
		out = append(out, t)
	}
	if len(want) > 0 && len(out) != len(want) {
		return nil, fmt.Errorf("experiments: unknown experiment in %v", ids)
	}
	return out, nil
}

// WriteJSON renders tables as one indented JSON document:
//
//	{"experiments": [{"id": ..., "caption": ..., "headers": [...],
//	 "rows": [[...], ...], "notes": [...]}, ...]}
//
// The document ends with a trailing newline so it concatenates cleanly in
// shell pipelines.
func WriteJSON(w io.Writer, tables []*Table) error {
	doc := jsonDoc{Experiments: make([]jsonTable, 0, len(tables))}
	for _, t := range tables {
		doc.Experiments = append(doc.Experiments, jsonTable{
			ID: t.ID, Caption: t.Caption, Headers: t.Headers, Rows: t.Rows,
			Notes: t.Notes, Traffic: t.Traffic,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
