package experiments

import (
	"fmt"

	"adhocshare/internal/chord"
	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/workload"
)

// E1Fig1 reconstructs the paper's Fig. 1 — index nodes N1, N4, N7, N12,
// N15 in a 4-bit identifier space with storage nodes D1–D4 attached — and
// reports ring structure and lookup behaviour for every key of the space.
func E1Fig1(p Params) (*Table, error) {
	sys := overlay.NewSystem(overlay.Config{Bits: 4, Replication: 1, Net: netConfig()})
	clock := p.clock()
	for _, id := range []chord.ID{1, 4, 7, 12, 15} {
		_, done, err := sys.AddIndexNodeWithID(simnet.Addr(fmt.Sprintf("N%d", id)), id, clock.Now())
		if err != nil {
			return nil, err
		}
		clock.Advance(done)
	}
	clock.Advance(sys.Converge(clock.Now()))
	for i := 1; i <= 4; i++ {
		_, done, err := sys.AddStorageNode(simnet.Addr(fmt.Sprintf("D%d", i)), clock.Now())
		if err != nil {
			return nil, err
		}
		clock.Advance(done)
	}
	t := &Table{
		ID:      "E1",
		Caption: "Fig. 1 reconstruction: ring structure and key ownership (4-bit space)",
		Headers: []string{"node", "successor", "predecessor", "keys-owned", "attached-storage"},
	}
	attached := map[simnet.Addr][]string{}
	for _, st := range sys.StorageNodes() {
		attached[st.AttachedTo()] = append(attached[st.AttachedTo()], string(st.Addr()))
	}
	idx := sys.IndexNodes()
	for i, n := range idx {
		pred := idx[(i+len(idx)-1)%len(idx)]
		var keys []string
		for k := 0; k < 16; k++ {
			if ringOwner(idx, chord.ID(k)) == n.ID() {
				keys = append(keys, fmt.Sprint(k))
			}
		}
		t.AddRow(n.ID(), n.Chord.Successor().ID, pred.ID(),
			fmt.Sprintf("%v", keys), fmt.Sprintf("%v", attached[n.Addr()]))
	}
	// verify every key resolves to its ring owner by actual routing
	bad := 0
	for k := 0; k < 16; k++ {
		owner, _, done, err := sys.ResolveKey("D1", chord.ID(k), clock.Now())
		clock.Advance(done)
		if err != nil {
			return nil, err
		}
		if idxNode, ok := sys.Index(owner); !ok || idxNode.ID() != ringOwner(idx, chord.ID(k)) {
			bad++
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("all 16 keys routed; %d mismatches vs. successor rule (expect 0)", bad),
		"matches Fig. 1: successors N1→N4→N7→N12→N15→N1, storage nodes attach to ring members")
	return t, nil
}

func ringOwner(idx []*overlay.IndexNode, key chord.ID) chord.ID {
	for _, n := range idx {
		if n.ID() >= key {
			return n.ID()
		}
	}
	return idx[0].ID()
}

// E2IndexConstruction measures two-level index construction (Fig. 2 /
// Table I): messages, bytes and postings as functions of dataset size and
// ring size. Six keys per triple are published; batched per index node.
// Each configuration is built twice — once with the legacy serial
// publication pipeline and once with the parallel one (batched key
// resolution + concurrent per-owner shipping) — so the table shows the
// publication critical path of both; msgs/KiB/postings columns report the
// parallel (production) pipeline.
func E2IndexConstruction(p Params) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Caption: "Index construction cost (six keys per triple, Sect. III-B)",
		Headers: []string{"triples", "index-nodes", "providers", "msgs", "KiB", "postings", "postings/triple", "KiB/triple",
			"pub-ms-serial", "pub-ms-par", "speedup"},
	}
	var totSerialMsgs, totParMsgs, totSerialBytes, totParBytes int64
	for _, nIndex := range []int{4, 16} {
		for _, persons := range []int{50, 200, 500} {
			d := workload.Generate(workload.Config{
				Persons: persons, Providers: 8, AvgKnows: 3, Seed: p.seed(42),
			})
			serial, err := e2Build(p, nIndex, d, true)
			if err != nil {
				return nil, err
			}
			par, err := e2Build(p, nIndex, d, false)
			if err != nil {
				return nil, err
			}
			total := d.TotalTriples()
			totSerialMsgs += serial.msgs
			totParMsgs += par.msgs
			totSerialBytes += serial.bytes
			totParBytes += par.bytes
			t.AddRow(total, nIndex, 8, par.msgs, kb(par.bytes),
				par.postings,
				float64(par.postings)/float64(total),
				float64(par.bytes)/1024/float64(total),
				ms(serial.pubTime.Duration()), ms(par.pubTime.Duration()),
				float64(serial.pubTime)/float64(par.pubTime))
		}
	}
	t.Notes = append(t.Notes,
		"postings/triple < 6 because keys shared across triples (same subject/predicate) collapse into one row per provider",
		"only postings travel — the triples themselves never leave their providers (contrast with E10)",
		fmt.Sprintf("parallel publication traffic is no worse than serial: %d vs %d msgs, %s vs %s KiB (batched resolution collapses shared route prefixes)",
			totParMsgs, totSerialMsgs, kb(totParBytes), kb(totSerialBytes)))
	return t, nil
}

// e2Result is one E2 deployment's publication measurement.
type e2Result struct {
	msgs, bytes int64
	postings    int
	pubTime     simnet.VTime
}

// e2Build deploys one E2 configuration and publishes every provider's
// triples, measuring the publication phase only.
func e2Build(p Params, nIndex int, d *workload.Dataset, serialPublish bool) (e2Result, error) {
	sys := overlay.NewSystem(overlay.Config{Bits: 24, Replication: 1, SerialPublish: serialPublish, Net: netConfig()})
	clock := p.clock()
	for i := 0; i < nIndex; i++ {
		_, done, err := sys.AddIndexNode(simnet.Addr(fmt.Sprintf("idx-%02d", i)), clock.Now())
		if err != nil {
			return e2Result{}, err
		}
		clock.Advance(done)
	}
	clock.Advance(sys.Converge(clock.Now()))
	for _, name := range d.Providers() {
		_, done, err := sys.AddStorageNode(simnet.Addr(name), clock.Now())
		if err != nil {
			return e2Result{}, err
		}
		clock.Advance(done)
	}
	before := sys.Net().Metrics()
	start := clock.Now()
	for _, name := range d.Providers() {
		done, err := sys.Publish(simnet.Addr(name), d.ByProvider[name], clock.Now())
		if err != nil {
			return e2Result{}, err
		}
		clock.Advance(done)
	}
	delta := sys.Net().Metrics().Sub(before)
	return e2Result{
		msgs:     delta.Messages,
		bytes:    delta.Bytes,
		postings: sys.TotalPostings(),
		pubTime:  clock.Now() - start,
	}, nil
}

// E3LookupHops measures Chord lookup cost against ring size — the
// scalability property the hybrid design inherits (Sect. III-B). Expected
// shape: average hops ≈ O(log N).
func E3LookupHops(p Params) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Caption: "DHT lookup hops vs. ring size (expect O(log N) growth)",
		Headers: []string{"index-nodes", "lookups", "avg-hops", "max-hops", "log2(N)", "avg/log2"},
	}
	for _, n := range []int{8, 16, 32, 64, 128, 256} {
		net := simnet.New(netConfig())
		refs := make([]chord.Ref, 0, n)
		seen := map[chord.ID]bool{}
		for i := 0; len(refs) < n; i++ {
			addr := simnet.Addr(fmt.Sprintf("n%04d", i))
			id := chord.HashID(string(addr), 24)
			if seen[id] {
				continue
			}
			seen[id] = true
			refs = append(refs, chord.Ref{ID: id, Addr: addr})
		}
		clock := p.clock()
		nodes, built, err := chord.BuildRing(net, refs, chord.Config{Bits: 24}, clock.Now())
		if err != nil {
			return nil, err
		}
		clock.Advance(built)
		rng := p.Rand(99)
		totalHops, maxHops := 0, 0
		const lookups = 200
		for i := 0; i < lookups; i++ {
			start := nodes[rng.Intn(len(nodes))]
			key := chord.HashID(fmt.Sprintf("key-%d", i), 24)
			_, hops, done, err := start.Lookup(key, clock.Now())
			clock.Advance(done)
			if err != nil {
				return nil, err
			}
			totalHops += hops
			if hops > maxHops {
				maxHops = hops
			}
		}
		avg := float64(totalHops) / lookups
		t.AddRow(n, lookups, avg, maxHops, log2(n), avg/log2(n))
	}
	t.Notes = append(t.Notes,
		"avg/log2 stays bounded (≈0.5) as N grows — the O(log N) scalability the paper adopts Chord for")
	return t, nil
}

// E11Churn exercises membership dynamics (Sect. III-C/D): storage-node
// crashes (timeout cleanup), index-node graceful departure (table
// handover) and index-node crashes healed by successor lists plus
// replication. The measured quantity is query completeness: the fraction
// of the oracle answer the degraded system still returns.
func E11Churn(p Params) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Caption: "Churn resilience: query completeness under node failures",
		Headers: []string{"scenario", "failed", "answers", "oracle", "completeness", "stale-drops", "msgs"},
	}
	mk := func() (*deployment, *workload.Dataset, error) {
		d := workload.Generate(workload.Config{Persons: 120, Providers: 12, AvgKnows: 3, Seed: p.seed(11), ZipfS: 1.3})
		dep, err := buildDeployment(p, 8, d)
		return dep, d, err
	}
	query := func(d *workload.Dataset) string { return workload.QueryPrimitive(d.PopularPerson) }
	oracleCount := func(d *workload.Dataset) int {
		return d.UnionGraph().CountMatch(rdf.Triple{
			S: rdf.NewVar("x"), P: rdf.NewIRI(workload.FOAF + "knows"), O: d.PopularPerson})
	}

	// baseline: no failures
	dep, d, err := mk()
	if err != nil {
		return nil, err
	}
	want := oracleCount(d)
	res, stats, err := dep.runQuery(dqpChain(), "D00", query(d))
	if err != nil {
		return nil, err
	}
	t.AddRow("healthy", 0, len(res.Solutions), want,
		float64(len(res.Solutions))/float64(want), stats.StaleDrops, stats.Messages)

	// storage crashes: fail k providers, query twice (first observes the
	// failures, second runs on the cleaned index)
	for _, k := range []int{2, 4} {
		dep, d, err = mk()
		if err != nil {
			return nil, err
		}
		providers := d.Providers()
		for i := 0; i < k; i++ {
			dep.sys.FailNode(simnet.Addr(providers[len(providers)-1-i]))
		}
		res1, stats1, err := dep.runQuery(dqpChain(), "D00", query(d))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("storage-crash (1st query)"), k, len(res1.Solutions), want,
			float64(len(res1.Solutions))/float64(want), stats1.StaleDrops, stats1.Messages)
		res2, stats2, err := dep.runQuery(dqpChain(), "D00", query(d))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("storage-crash (2nd query)"), k, len(res2.Solutions), want,
			float64(len(res2.Solutions))/float64(want), stats2.StaleDrops, stats2.Messages)
	}

	// index graceful departure: completeness must stay 1.0
	dep, d, err = mk()
	if err != nil {
		return nil, err
	}
	want = oracleCount(d)
	victim := dep.sys.IndexNodes()[2].Addr()
	done, err := dep.sys.RemoveIndexGraceful(victim, dep.clock.Now())
	dep.clock.Advance(done)
	if err != nil {
		return nil, err
	}
	res, stats, err = dep.runQuery(dqpChain(), "D00", query(d))
	if err != nil {
		return nil, err
	}
	t.AddRow("index-graceful-leave", 1, len(res.Solutions), want,
		float64(len(res.Solutions))/float64(want), stats.StaleDrops, stats.Messages)

	// index crash: heal via stabilization; replicas serve the rows
	dep, d, err = mk()
	if err != nil {
		return nil, err
	}
	want = oracleCount(d)
	victim = dep.sys.IndexNodes()[3].Addr()
	dep.sys.FailNode(victim)
	for i := 0; i < 5; i++ {
		dep.clock.Advance(dep.sys.StabilizeRound(dep.clock.Now()))
	}
	dep.clock.Advance(dep.sys.Converge(dep.clock.Now()))
	res, stats, err = dep.runQuery(dqpChain(), "D00", query(d))
	if err != nil {
		return nil, err
	}
	t.AddRow("index-crash+heal", 1, len(res.Solutions), want,
		float64(len(res.Solutions))/float64(want), stats.StaleDrops, stats.Messages)

	t.Notes = append(t.Notes,
		"storage crashes lose only the dead providers' answers; the second query shows the index cleaned itself (0 stale drops)",
		"index departures and crashes keep completeness at 1.00 thanks to handover, successor lists and replication (Sect. III-D)")
	return t, nil
}
