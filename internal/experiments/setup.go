package experiments

import (
	"fmt"
	"math"
	"time"

	"adhocshare/internal/dqp"
	"adhocshare/internal/overlay"
	"adhocshare/internal/simnet"
	"adhocshare/internal/workload"
)

// netConfig is the cost model shared by all experiments: 2 ms per hop,
// 1 MiB/s links, 500 ms failure timeout — a conservative ad-hoc wireless
// profile.
func netConfig() simnet.Config {
	return simnet.Config{
		BaseLatency: 2 * time.Millisecond,
		Bandwidth:   1 << 20,
		FailTimeout: 500 * time.Millisecond,
	}
}

// deployment bundles an overlay with the virtual clock that drives it.
// mon is non-nil when Params.Flight armed the flight recorder and the
// invariant monitors.
type deployment struct {
	sys   *overlay.System
	clock *simnet.Clock
	mon   *overlay.Monitors
}

// faultSeedBase is the seed-stream base of the fault-injection plan, kept
// distinct from every workload stream so changing the loss pattern never
// perturbs the dataset draw (and vice versa).
const faultSeedBase = 0xFA17

// buildDeployment creates a converged overlay with nIndex index nodes and
// the dataset's providers as storage nodes, publishing all triples. The
// deployment runs on the clock injected via p. Setup is always fault-free;
// when p.FaultRate is nonzero a deterministic loss plan is installed on
// the fabric afterwards, so the measured operations (and only those) run
// under message loss.
func buildDeployment(p Params, nIndex int, d *workload.Dataset) (*deployment, error) {
	net := netConfig()
	net.ConcurrentDelivery = p.Concurrent
	sys := overlay.NewSystem(overlay.Config{Bits: 24, Replication: 2, Adaptive: p.Adaptive, Net: net})
	dep := &deployment{sys: sys, clock: p.clock()}
	for i := 0; i < nIndex; i++ {
		_, done, err := sys.AddIndexNode(simnet.Addr(fmt.Sprintf("idx-%02d", i)), dep.clock.Now())
		if err != nil {
			return nil, err
		}
		dep.clock.Advance(done)
	}
	dep.clock.Advance(sys.Converge(dep.clock.Now()))
	for _, name := range d.Providers() {
		_, done, err := sys.AddStorageNode(simnet.Addr(name), dep.clock.Now())
		if err != nil {
			return nil, err
		}
		dep.clock.Advance(done)
		done, err = sys.Publish(simnet.Addr(name), d.ByProvider[name], dep.clock.Now())
		if err != nil {
			return nil, err
		}
		dep.clock.Advance(done)
	}
	if p.Flight > 0 {
		// Arm after the fault-free setup so the monitored window covers
		// exactly the measured operations (the conservation baseline is the
		// message count at arm time).
		dep.mon = overlay.Arm(sys, p.Flight)
	}
	if p.FaultRate > 0 {
		sys.Net().SetFaults(&simnet.FaultPlan{
			Seed: p.seed(faultSeedBase), LossRate: p.FaultRate,
		})
	}
	return dep, nil
}

// checkMonitors runs every armed invariant monitor and returns a short
// status cell for experiment tables: "ok" when armed and clean, the
// violation count otherwise, "" when monitors are off.
func (dep *deployment) checkMonitors() string {
	if dep.mon == nil {
		return ""
	}
	vs := dep.mon.CheckAll()
	if len(vs) == 0 {
		return "ok"
	}
	return fmt.Sprintf("%d violations", len(vs))
}

// runQuery executes one query and returns its result and stats, advancing
// the deployment clock.
func (dep *deployment) runQuery(opts dqp.Options, initiator, query string) (*dqp.Result, dqp.Stats, error) {
	e := dqp.NewEngine(dep.sys, opts)
	res, stats, done, err := e.Query(simnet.Addr(initiator), query, dep.clock.Now())
	dep.clock.Advance(done)
	return res, stats, err
}

// ms renders a duration in milliseconds with two decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.2f", float64(d)/float64(time.Millisecond))
}

// log2 is a shorthand for the hop-bound comparisons.
func log2(n int) float64 { return math.Log2(float64(n)) }
