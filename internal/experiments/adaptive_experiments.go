package experiments

// E16: the Zipf-skewed query storm behind the workload-adaptive hot-key
// replication extension (DESIGN.md §9). A population of initiators fires
// a skewed stream of primitive queries whose index keys concentrate on a
// few popular patterns; with the static two-level index every lookup of a
// hot key lands on its single Chord home successor, while the adaptive
// index replicates the hot rows to ring successors and spreads the load.
// The experiment measures exactly the two claims the issue's acceptance
// criteria pin: the busiest index node's share of index-tier traffic, and
// the steady-state tail of the query critical path.
//
// (The issue calls this workload "E12"; the E12 slot was already taken by
// join-site selection, so the experiment registers as E16 and only the
// benchmark scenario names keep the e12_zipf_* labels.)

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"adhocshare/internal/dqp"
	"adhocshare/internal/simnet"
	"adhocshare/internal/trace"
	"adhocshare/internal/workload"
)

const (
	// e16Queries is the length of the measured storm. Before it, every
	// target of the hot pool is queried e16WarmupPasses times: the
	// warm-up drives each key past the detector threshold and lets the
	// initiator learn the replica advertisements, so the measured storm
	// is the steady state the adaptive path is for. Warm-up runs in both
	// modes (identically, modulo the adaptive machinery itself) and is
	// excluded from every measured figure.
	e16Queries      = 40
	e16WarmupPasses = 4
	// e16Pool is the number of distinct storm targets: the Zipf draw is
	// over this pool, so the storm's keys are few and heavily repeated —
	// the hot-key regime.
	e16Pool = 10
	// e16Indexes is the ring size; e16ZipfS the storm's target skew.
	e16Indexes = 8
	e16ZipfS   = 1.4
)

// e16Dataset draws the shared FOAF dataset of the storm.
func e16Dataset(p Params) *workload.Dataset {
	return workload.Generate(workload.Config{
		Persons: 150, Providers: 8, AvgKnows: 4, ZipfS: 1.3, Seed: p.seed(0x16),
	})
}

// ZipfStormSummary is the numeric outcome of one E16 storm run; the
// benchmark JSON guard compares the static and adaptive numbers directly.
type ZipfStormSummary struct {
	// Queries / Failed count completed and partially-failed storm
	// queries (failures only occur under fault injection).
	Queries int
	Failed  int
	// Messages / Bytes are the storm's total fabric traffic.
	Messages int64
	Bytes    int64
	// HotShare is the busiest index node's fraction of all index-node
	// sent bytes during the storm — 1/n is a perfectly balanced tier.
	HotShare float64
	// MeanMs / TailMs are the mean and maximum critical-path response
	// times (virtual ms) over the measured (post-warm-up) queries.
	MeanMs float64
	TailMs float64
	// ReplicaHits counts lookups served by hot-key replica holders.
	ReplicaHits int
	// PerMethod is the storm's per-method traffic breakdown.
	PerMethod map[string]simnet.MethodStats
	// Monitors is the post-storm invariant-monitor status ("" when
	// Params.Flight left the monitors off, "ok" when armed and clean).
	Monitors string
}

// E16ZipfStormSummary runs the storm once, static or adaptive, and
// returns the measured numbers. The same Params always reproduce the same
// summary bit-for-bit: the dataset, the target stream and any fault plan
// all derive from p.Seed.
func E16ZipfStormSummary(p Params, adaptive bool) (ZipfStormSummary, error) {
	d := e16Dataset(p)
	mode := p
	mode.Adaptive = adaptive
	dep, err := buildDeployment(mode, e16Indexes, d)
	if err != nil {
		return ZipfStormSummary{}, err
	}
	// One engine per run models one querying node re-using its learned
	// replica hints, the same reuse E14 grants the lookup cache.
	e := dqp.NewEngine(dep.sys, dqp.Options{Strategy: dqp.StrategyFreqChain})
	pool := d.Persons[:e16Pool]
	for pass := 0; pass < e16WarmupPasses; pass++ {
		for _, target := range pool {
			_, _, done, err := e.Query("D00", workload.QueryPrimitive(target), dep.clock.Now())
			dep.clock.Advance(done)
			if err != nil && !dqp.IsPartialFailure(err) {
				return ZipfStormSummary{}, err
			}
		}
	}

	// The per-(node, method) registry identifies the hot node; attached
	// after warm-up so only the measured storm counts, and Tee keeps any
	// recorder the deployment already had.
	reg := trace.NewRegistry()
	dep.sys.Net().SetRecorder(trace.Tee(dep.sys.Net().Recorder(), reg))
	before := dep.sys.Net().Metrics()

	rng := p.Rand(0xE16)
	zipf := rand.NewZipf(rng, e16ZipfS, 1, uint64(len(pool)-1))
	var sum ZipfStormSummary
	var steady []time.Duration
	for q := 0; q < e16Queries; q++ {
		target := pool[int(zipf.Uint64())]
		_, stats, done, err := e.Query("D00", workload.QueryPrimitive(target), dep.clock.Now())
		dep.clock.Advance(done)
		if err != nil {
			if !dqp.IsPartialFailure(err) {
				return ZipfStormSummary{}, err
			}
			sum.Failed++
			continue
		}
		sum.Queries++
		sum.ReplicaHits += stats.ReplicaHits
		steady = append(steady, stats.ResponseTime)
	}
	delta := dep.sys.Net().Metrics().Sub(before)
	sum.Messages, sum.Bytes = delta.Messages, delta.Bytes
	sum.PerMethod = delta.PerMethod
	sum.HotShare = hotIndexShare(reg.Snapshot())
	var total time.Duration
	for _, rt := range steady {
		total += rt
		if float64(rt)/float64(time.Millisecond) > sum.TailMs {
			sum.TailMs = float64(rt) / float64(time.Millisecond)
		}
	}
	if len(steady) > 0 {
		sum.MeanMs = float64(total) / float64(len(steady)) / float64(time.Millisecond)
	}
	sum.Monitors = dep.checkMonitors()
	return sum, nil
}

// hotIndexShare is the busiest index node's fraction of the bytes sent by
// all index nodes (requests they forwarded plus responses they served).
func hotIndexShare(snap trace.MetricsSnapshot) float64 {
	perNode := map[string]int64{}
	var total int64
	for _, e := range snap.Entries {
		if !strings.HasPrefix(e.Node, "idx-") {
			continue
		}
		perNode[e.Node] += e.Bytes
		total += e.Bytes
	}
	if total == 0 {
		return 0
	}
	var max int64
	for _, b := range perNode {
		if b > max {
			max = b
		}
	}
	return float64(max) / float64(total)
}

// E16ZipfStorm renders the static-vs-adaptive storm comparison table.
func E16ZipfStorm(p Params) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Caption: "Zipf query storm: static vs. adaptive hot-key replication (extension)",
		Headers: []string{"mode", "queries", "failed", "msgs", "total-KiB", "hot-share", "mean-ms", "tail-ms", "replica-hits"},
	}
	var static, adaptive ZipfStormSummary
	for _, mode := range []bool{false, true} {
		sum, err := E16ZipfStormSummary(p, mode)
		if err != nil {
			return nil, err
		}
		name := "static"
		if mode {
			name = "adaptive"
			adaptive = sum
		} else {
			static = sum
		}
		t.AddRow(name, sum.Queries, sum.Failed, sum.Messages, kb(sum.Bytes),
			sum.HotShare, sum.MeanMs, sum.TailMs, sum.ReplicaHits)
		t.AddTraffic(name, sum.PerMethod)
		if sum.Monitors != "" {
			t.Notes = append(t.Notes, fmt.Sprintf("invariant monitors (%s storm): %s", name, sum.Monitors))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("hot-node byte share %.2f -> %.2f: hot rows answered by %d replica reads instead of the home successor",
			static.HotShare, adaptive.HotShare, adaptive.ReplicaHits),
		fmt.Sprintf("steady-state tail %.2f ms -> %.2f ms (%d warm-up passes over the %d-key pool pay promotion and are excluded)",
			static.TailMs, adaptive.TailMs, e16WarmupPasses, e16Pool),
		"replicas are epoch-stamped: any stabilization/churn bumps the epoch and every copy is invalidated at once")
	return t, nil
}
