package experiments

import (
	"fmt"

	"adhocshare/internal/dqp"
	"adhocshare/internal/simnet"
	"adhocshare/internal/workload"
)

// E13QoSJoinSite extends E12 to heterogeneous links — the setting that
// motivates the third-site strategy of Ye et al. (paper Sect. II). A
// fraction of the nodes gets degraded links (factor 6 slower); the QoS-
// aware policy reads the link factors and routes merges around the slow
// nodes, while the static policies ignore them.
func E13QoSJoinSite(p Params) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Caption: "QoS-aware join-site selection on heterogeneous links (extension; Ye et al.)",
		Headers: []string{"slow-nodes", "policy", "sols", "ship-KiB", "resp-ms"},
	}
	d := workload.Generate(workload.Config{
		Persons: 300, Providers: 10, AvgKnows: 4, ZipfS: 1.4, Seed: p.seed(88),
	})
	big, small := d.PopularPerson, secondTarget(d)
	selective := fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE {
  { ?x foaf:knows %s . }
  { ?x foaf:knows %s . }
}`, small, big)
	// no shared variable: the join is a cross product, so the result
	// dwarfs the operands and its trip home dominates placement
	cross := fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x ?y WHERE {
  { ?x foaf:knows %s . }
  { ?y foaf:knows %s . }
}`, small, big)

	degradeProviders := func(dep *deployment) {
		// degrade every provider link; index nodes and the initiator's own
		// link stay nominal, so placement choices matter
		for _, st := range dep.sys.StorageNodes() {
			if st.Addr() != "D00" {
				dep.sys.Net().SetLinkFactor(st.Addr(), 6)
			}
		}
	}
	for _, scenario := range []struct {
		name string
		q    string
		slow func(dep *deployment)
	}{
		{"uniform/selective", selective, func(*deployment) {}},
		{"slow-providers/selective", selective, degradeProviders},
		{"slow-providers/cross", cross, degradeProviders},
	} {
		for _, js := range []dqp.JoinSitePolicy{
			dqp.JoinSiteMoveSmall, dqp.JoinSiteQuerySite, dqp.JoinSiteThirdSite, dqp.JoinSiteQoS,
		} {
			dep, err := buildDeployment(p, 8, d)
			if err != nil {
				return nil, err
			}
			scenario.slow(dep)
			opts := dqp.Options{
				Strategy: dqp.StrategyFreqChain, Conjunction: dqp.ConjParallelJoin,
				JoinSite: js, PushFilters: true, ReorderJoins: true,
			}
			res, stats, err := dep.runQuery(opts, "D00", scenario.q)
			if err != nil {
				return nil, err
			}
			t.AddRow(scenario.name, js.String(), len(res.Solutions),
				kb(stats.ShippedSolutionBytes()), ms(stats.ResponseTime))
		}
	}
	t.Notes = append(t.Notes,
		"with uniform links, qos picks the same sites as move-small",
		"for the cross-product query on slow provider links, qos foresees the result's trip home and merges at the healthy initiator, beating move-small (which merges at a slow provider and ships the huge result from there)",
		"this experiment is the extension the paper points at via Ye et al.: link quality folded into global query optimization")
	return t, nil
}

// slowProviders is a helper for tests: degrade the first k storage nodes.
func slowProviders(dep *deployment, k int, factor float64) []simnet.Addr {
	var out []simnet.Addr
	for i, st := range dep.sys.StorageNodes() {
		if i >= k {
			break
		}
		dep.sys.Net().SetLinkFactor(st.Addr(), factor)
		out = append(out, st.Addr())
	}
	return out
}
