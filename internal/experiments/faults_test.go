package experiments

// Fault-injection regression tests: the E9 strategy matrix under nonzero
// message loss, and churn (crash / recover) striking in the middle of a
// running query. The invariant in both cases is the one the dqp layer
// promises: a query either returns a result that matches the centralized
// oracle over the providers that could contribute, or it fails with the
// typed *dqp.PartialFailureError — it never silently truncates. All
// randomness flows from Params.Seed, so every scenario (including which
// messages are lost and when nodes crash) reproduces byte-for-byte.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"adhocshare/internal/dqp"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/sparql"
	"adhocshare/internal/sparql/algebra"
	"adhocshare/internal/sparql/eval"
	"adhocshare/internal/workload"
)

// e9Dataset regenerates the exact dataset E9Fig4EndToEnd queries.
func e9Dataset(p Params) *workload.Dataset {
	return workload.Generate(workload.Config{
		Persons: 200, Providers: 10, AvgKnows: 4, ZipfS: 1.2,
		KnowsNothingFraction: 0.4, Seed: p.seed(77),
	})
}

// centralOracle evaluates query over one union graph — the paper's
// Sect. IV-A query dataset, collapsed to a single site.
func centralOracle(t *testing.T, g *rdf.Graph, query string) eval.Solutions {
	t.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	op, err := algebra.Translate(q)
	if err != nil {
		t.Fatal(err)
	}
	sols, err := eval.Eval(op, g)
	if err != nil {
		t.Fatal(err)
	}
	return sols
}

// unionExcept builds the union graph of every provider but the excluded
// ones — the oracle over the providers that stayed alive.
func unionExcept(d *workload.Dataset, except ...string) *rdf.Graph {
	skip := map[string]bool{}
	for _, e := range except {
		skip[e] = true
	}
	g := rdf.NewGraph()
	for name, ts := range d.ByProvider {
		if !skip[name] {
			g.AddAll(ts)
		}
	}
	return g
}

// solKey serializes a solution multiset in a canonical order, for both
// multiset comparison and byte-identity checks.
func solKey(sols eval.Solutions) string {
	keys := make([]string, len(sols))
	for i, s := range sols {
		keys[i] = s.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// multisetCounts indexes a solution set by binding key.
func multisetCounts(sols eval.Solutions) map[string]int {
	m := map[string]int{}
	for _, s := range sols {
		m[s.Key()]++
	}
	return m
}

// subMultiset reports whether a ⊆ b as multisets.
func subMultiset(a, b eval.Solutions) bool {
	have := multisetCounts(b)
	for k, n := range multisetCounts(a) {
		if have[k] < n {
			return false
		}
	}
	return true
}

// e9Configs is the 12-configuration strategy matrix of E9Fig4EndToEnd.
func e9Configs() []dqp.Options {
	var out []dqp.Options
	for _, st := range []dqp.Strategy{dqp.StrategyBasic, dqp.StrategyChain, dqp.StrategyFreqChain} {
		for _, cj := range []dqp.Conjunction{dqp.ConjPipeline, dqp.ConjParallelJoin} {
			for _, opt := range []bool{false, true} {
				out = append(out, dqp.Options{
					Strategy: st, Conjunction: cj, JoinSite: dqp.JoinSiteMoveSmall,
					PushFilters: opt, ReorderJoins: opt,
				})
			}
		}
	}
	return out
}

// runE9Sweep executes the Fig. 4 query once per configuration under p and
// serializes every outcome: the canonical solution multiset on success,
// the error text on failure. The returned transcript is the unit of the
// byte-identity check.
func runE9Sweep(t *testing.T, p Params, d *workload.Dataset, want eval.Solutions) string {
	t.Helper()
	q := workload.QueryFig4("Smith")
	var b strings.Builder
	for _, opts := range e9Configs() {
		dep, err := buildDeployment(p, 8, d)
		if err != nil {
			t.Fatalf("build %+v: %v", opts, err)
		}
		res, _, err := dep.runQuery(opts, "D00", q)
		label := fmt.Sprintf("%v/%v/push=%v", opts.Strategy, opts.Conjunction, opts.PushFilters)
		if err != nil {
			// Loss may exhaust a retry budget, but then the failure must
			// be the typed partial-failure error — nothing else is an
			// acceptable way to not return the oracle answer.
			if !dqp.IsPartialFailure(err) {
				t.Errorf("%s: untyped failure under loss: %v", label, err)
			}
			fmt.Fprintf(&b, "%s: error: %v\n", label, err)
			continue
		}
		if got, exp := multisetCounts(res.Solutions), multisetCounts(want); len(res.Solutions) != len(want) || !subMultiset(res.Solutions, want) || !subMultiset(want, res.Solutions) {
			t.Errorf("%s: %d solutions, oracle %d (got %v, want %v)",
				label, len(res.Solutions), len(want), got, exp)
		}
		fmt.Fprintf(&b, "%s: %s\n", label, solKey(res.Solutions))
	}
	return b.String()
}

// TestE9AllConfigsUnderLoss runs every E9 configuration at a 1% per-leg
// loss rate: retries (simnet.Retry + the chord successor fallback) must
// deliver the oracle-identical result, or the query must fail with the
// typed partial-failure error. The full sweep then re-runs under the same
// seed and must reproduce byte-for-byte — the property that makes a loss
// failure reportable as "seed N, config C".
func TestE9AllConfigsUnderLoss(t *testing.T) {
	p := Params{Seed: 7, FaultRate: 0.01}
	d := e9Dataset(p)
	want := centralOracle(t, d.UnionGraph(), workload.QueryFig4("Smith"))
	if len(want) == 0 {
		t.Fatal("oracle returned no solutions — the workload no longer exercises the Fig. 4 query")
	}
	first := runE9Sweep(t, p, d, want)
	again := runE9Sweep(t, p, d, want)
	if first != again {
		t.Errorf("same-seed sweeps differ:\n--- first ---\n%s--- again ---\n%s", first, again)
	}
}

// TestE9HigherLossStillTyped cranks the loss rate past the retry budget's
// comfort zone: outcomes may now include partial failures, but every one
// of them must be typed, and the sweep stays deterministic.
func TestE9HigherLossStillTyped(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping the high-loss sweep")
	}
	p := Params{Seed: 3, FaultRate: 0.05}
	d := e9Dataset(p)
	want := centralOracle(t, d.UnionGraph(), workload.QueryFig4("Smith"))
	first := runE9Sweep(t, p, d, want)
	again := runE9Sweep(t, p, d, want)
	if first != again {
		t.Errorf("same-seed sweeps differ:\n--- first ---\n%s--- again ---\n%s", first, again)
	}
}

// TestChurnDuringQueryE9 crashes a storage provider and an index node in
// the middle of a running E9 query — the crash windows are placed inside
// the query's own virtual-time span, measured on an identical twin
// deployment — and then exercises whole-node FailNode/RecoverNode churn
// between queries. At every step the result must be explained: either the
// typed partial-failure error, or a solution set bracketed by the two
// oracles (everything the live providers own, nothing the dataset does
// not), and after recovery plus republish the full oracle returns.
func TestChurnDuringQueryE9(t *testing.T) {
	p := Params{Seed: 11}
	d := e9Dataset(p)
	q := workload.QueryFig4("Smith")
	opts := fig4Opts(dqp.StrategyChain)
	fullOracle := centralOracle(t, d.UnionGraph(), q)

	providers := d.Providers()
	storageVictim := providers[len(providers)-1] // never "D00", the initiator
	const indexVictim = simnet.Addr("idx-05")
	liveOracle := centralOracle(t, unionExcept(d, storageVictim), q)
	if len(liveOracle) == len(fullOracle) {
		t.Logf("note: victim %s contributes no Fig. 4 solutions this seed", storageVictim)
	}

	// Probe run on a twin deployment: same Params build the same overlay
	// at the same virtual times, so the probe's span predicts exactly when
	// the real run's query is in flight.
	probe, err := buildDeployment(p, 8, d)
	if err != nil {
		t.Fatal(err)
	}
	t0 := probe.clock.Now()
	if _, _, err := probe.runQuery(opts, "D00", q); err != nil {
		t.Fatalf("probe query: %v", err)
	}
	t1 := probe.clock.Now()
	if t1 <= t0 {
		t.Fatalf("probe query spans no virtual time (%v..%v)", t0, t1)
	}
	span := t1 - t0

	churnOnce := func() (string, error) {
		dep, err := buildDeployment(p, 8, d)
		if err != nil {
			t.Fatal(err)
		}
		// Both victims die mid-query and recover before it would normally
		// finish — crash-mid-operation, deterministically scheduled.
		dep.sys.Net().SetFaults(&simnet.FaultPlan{
			Seed: p.seed(faultSeedBase),
			Crashes: []simnet.CrashWindow{
				{Node: simnet.Addr(storageVictim), From: t0 + span/4, Until: t0 + 3*span/4},
				{Node: indexVictim, From: t0 + span/3, Until: t0 + 2*span/3},
			},
		})
		res, _, err := dep.runQuery(opts, "D00", q)
		if err != nil {
			return fmt.Sprintf("error: %v", err), err
		}
		return solKey(res.Solutions), nil
	}

	out1, err1 := churnOnce()
	out2, err2 := churnOnce()
	if out1 != out2 {
		t.Errorf("same-seed churn runs differ:\n--- first ---\n%s\n--- again ---\n%s", out1, out2)
	}
	if err1 != nil {
		if !dqp.IsPartialFailure(err1) {
			t.Errorf("mid-query churn failed with an untyped error: %v", err1)
		}
	} else {
		// Success must mean a bracketed result: no fabricated solutions,
		// and nothing lost beyond the crashed provider's contribution.
		got := splitSols(out1)
		want := multisetCounts(fullOracle)
		for k, n := range got {
			if want[k] < n {
				t.Errorf("churn run fabricated solution %q", k)
			}
		}
		for k, n := range multisetCounts(liveOracle) {
			if got[k] < n {
				t.Errorf("churn run silently dropped solution %q held by a live provider", k)
			}
		}
		_ = err2
	}

	// Whole-node churn between queries: crash the provider outright, run
	// (the index must clean up and answer over the survivors), then
	// recover, republish and verify the full oracle returns.
	dep, err := buildDeployment(p, 8, d)
	if err != nil {
		t.Fatal(err)
	}
	dep.sys.FailNode(simnet.Addr(storageVictim))
	res, _, err := dep.runQuery(opts, "D00", q)
	if err != nil {
		if !dqp.IsPartialFailure(err) {
			t.Fatalf("query with crashed provider failed untyped: %v", err)
		}
	} else if lk, gk := solKey(liveOracle), solKey(res.Solutions); lk != gk {
		t.Errorf("crashed-provider query != live-provider oracle:\ngot  %s\nwant %s", gk, lk)
	}

	dep.sys.RecoverNode(simnet.Addr(storageVictim))
	done, err := dep.sys.Republish(simnet.Addr(storageVictim), dep.clock.Now())
	if err != nil {
		t.Fatalf("republish after recovery: %v", err)
	}
	dep.clock.Advance(done)
	res, _, err = dep.runQuery(opts, "D00", q)
	if err != nil {
		t.Fatalf("query after recovery: %v", err)
	}
	if fk, gk := solKey(fullOracle), solKey(res.Solutions); fk != gk {
		t.Errorf("post-recovery query != full oracle:\ngot  %s\nwant %s", gk, fk)
	}
}

// splitSols parses a solKey transcript back into a count multiset.
func splitSols(s string) map[string]int {
	m := map[string]int{}
	for _, line := range strings.Split(s, "\n") {
		if line != "" {
			m[line]++
		}
	}
	return m
}
