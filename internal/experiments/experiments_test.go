package experiments

import (
	"strconv"
	"strings"
	"testing"

	"adhocshare/internal/simnet"
)

// cell parses a table cell as float.
func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tab.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d = %q: %v", tab.ID, row, col, tab.Rows[row][col], err)
	}
	return v
}

// colIndex finds a header's position.
func colIndex(t *testing.T, tab *Table, name string) int {
	t.Helper()
	for i, h := range tab.Headers {
		if h == name {
			return i
		}
	}
	t.Fatalf("%s: no column %q in %v", tab.ID, name, tab.Headers)
	return -1
}

func TestE1Fig1(t *testing.T) {
	tab, err := E1Fig1(Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 index nodes", len(tab.Rows))
	}
	// successors follow the paper's ring
	wantSucc := map[string]string{"N1": "N4", "N4": "N7", "N7": "N12", "N12": "N15", "N15": "N1"}
	for _, row := range tab.Rows {
		if row[1] != wantSucc[row[0]] {
			t.Errorf("successor(%s) = %s, want %s", row[0], row[1], wantSucc[row[0]])
		}
	}
	if !strings.Contains(tab.Notes[0], "0 mismatches") {
		t.Errorf("routing mismatches: %v", tab.Notes)
	}
}

func TestE2IndexConstruction(t *testing.T) {
	tab, err := E2IndexConstruction(Params{})
	if err != nil {
		t.Fatal(err)
	}
	ppt := colIndex(t, tab, "postings/triple")
	for i := range tab.Rows {
		v := cell(t, tab, i, ppt)
		if v <= 0 || v > 6 {
			t.Errorf("row %d: postings/triple = %v, want (0,6]", i, v)
		}
	}
	// more triples → more postings, same ring size (rows 0..2 share nIndex)
	post := colIndex(t, tab, "postings")
	if !(cell(t, tab, 0, post) < cell(t, tab, 1, post) && cell(t, tab, 1, post) < cell(t, tab, 2, post)) {
		t.Error("postings do not grow with dataset size")
	}
}

func TestE3LookupHopsLogShape(t *testing.T) {
	tab, err := E3LookupHops(Params{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := colIndex(t, tab, "avg/log2")
	for i := range tab.Rows {
		r := cell(t, tab, i, ratio)
		if r > 1.5 {
			t.Errorf("row %d: avg-hops/log2(N) = %v, want ≤ 1.5 (O(log N) shape)", i, r)
		}
	}
	// hops must grow sublinearly: compare largest vs smallest ring
	avg := colIndex(t, tab, "avg-hops")
	n := colIndex(t, tab, "index-nodes")
	growth := cell(t, tab, len(tab.Rows)-1, avg) / cell(t, tab, 0, avg)
	sizeGrowth := cell(t, tab, len(tab.Rows)-1, n) / cell(t, tab, 0, n)
	if growth > sizeGrowth/4 {
		t.Errorf("hop growth %.2f vs size growth %.2f — not logarithmic", growth, sizeGrowth)
	}
}

func TestE4Shapes(t *testing.T) {
	tab, err := E4PrimitiveStrategies(Params{})
	if err != nil {
		t.Fatal(err)
	}
	resp := colIndex(t, tab, "resp-ms")
	ship := colIndex(t, tab, "ship-KiB")
	strat := colIndex(t, tab, "strategy")
	over := colIndex(t, tab, "overlap")
	// group rows by (overlap, target): strategy rows appear consecutively
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		basic, chain, freq := tab.Rows[i], tab.Rows[i+1], tab.Rows[i+2]
		if basic[strat] != "basic" || chain[strat] != "chain" || freq[strat] != "freq-chain" {
			t.Fatalf("unexpected row grouping at %d: %v", i, tab.Rows[i])
		}
		if cell(t, tab, i, resp) > cell(t, tab, i+1, resp) {
			t.Errorf("rows %d: basic response %v > chain %v", i, basic[resp], chain[resp])
		}
		if cell(t, tab, i+2, ship) > cell(t, tab, i+1, ship)+0.01 {
			t.Errorf("rows %d: freq-chain ships more than chain", i)
		}
		// at high overlap, chains must ship less than basic (skip empty
		// result sets where both are zero)
		if basic[over] == "1.00" && cell(t, tab, i, ship) > 0 {
			if cell(t, tab, i+1, ship) >= cell(t, tab, i, ship) {
				t.Errorf("rows %d: chain %v >= basic %v at overlap 1.0",
					i, chain[ship], basic[ship])
			}
		}
	}
}

func TestE5Shapes(t *testing.T) {
	tab, err := E5Conjunction(Params{})
	if err != nil {
		t.Fatal(err)
	}
	sols := colIndex(t, tab, "sols")
	ship := colIndex(t, tab, "ship-KiB")
	// per query block of 4 rows, all must agree on solutions
	for i := 0; i+3 < len(tab.Rows); i += 4 {
		for j := 1; j < 4; j++ {
			if tab.Rows[i][sols] != tab.Rows[i+j][sols] {
				t.Errorf("query %s: solution counts differ across configs", tab.Rows[i][0])
			}
		}
		// pipeline+reorder (row i+1) ships no more than pipeline without (row i)
		if cell(t, tab, i+1, ship) > cell(t, tab, i, ship)+0.01 {
			t.Errorf("query %s: reorder increased pipeline shipping", tab.Rows[i][0])
		}
	}
}

func TestE6Shapes(t *testing.T) {
	tab, err := E6Optional(Params{})
	if err != nil {
		t.Fatal(err)
	}
	sols := colIndex(t, tab, "sols")
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		if tab.Rows[i][sols] != tab.Rows[i+1][sols] || tab.Rows[i][sols] != tab.Rows[i+2][sols] {
			t.Errorf("case %s: policies disagree on solutions", tab.Rows[i][0])
		}
	}
}

func TestE7Shapes(t *testing.T) {
	tab, err := E7Union(Params{})
	if err != nil {
		t.Fatal(err)
	}
	sols := colIndex(t, tab, "sols")
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][sols] != tab.Rows[0][sols] {
			t.Errorf("union strategies disagree: %v vs %v", tab.Rows[i], tab.Rows[0])
		}
	}
}

func TestE8FilterPushingShape(t *testing.T) {
	tab, err := E8FilterPushing(Params{})
	if err != nil {
		t.Fatal(err)
	}
	ship := colIndex(t, tab, "ship-KiB")
	sols := colIndex(t, tab, "sols")
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		pushed, unpushed := i, i+1
		if tab.Rows[pushed][sols] != tab.Rows[unpushed][sols] {
			t.Errorf("regex %s: pushing changed solutions", tab.Rows[i][0])
		}
		if cell(t, tab, pushed, ship) > cell(t, tab, unpushed, ship)+0.01 {
			t.Errorf("regex %s: pushed %v > unpushed %v",
				tab.Rows[i][0], tab.Rows[pushed][ship], tab.Rows[unpushed][ship])
		}
	}
}

func TestE9AllConfigsAgree(t *testing.T) {
	tab, err := E9Fig4EndToEnd(Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tab.Notes {
		if strings.HasPrefix(n, "WARNING") {
			t.Error(n)
		}
	}
	sols := colIndex(t, tab, "sols")
	for i := 1; i < len(tab.Rows); i++ {
		if tab.Rows[i][sols] != tab.Rows[0][sols] {
			t.Errorf("config %v returns %s solutions, first returned %s",
				tab.Rows[i][:4], tab.Rows[i][sols], tab.Rows[0][sols])
		}
	}
}

func TestE10BaselineShapes(t *testing.T) {
	tab, err := E10VsRDFPeers(Params{})
	if err != nil {
		t.Fatal(err)
	}
	kib := colIndex(t, tab, "KiB")
	ans := colIndex(t, tab, "answers")
	// rows: 0 hybrid ingest, 1 rdfpeers ingest, 2/3 primitive, 4/5 conjunctive
	if cell(t, tab, 0, kib) >= cell(t, tab, 1, kib) {
		t.Errorf("hybrid ingest %v KiB >= rdfpeers %v KiB — postings should be cheaper than shipping triples",
			tab.Rows[0][kib], tab.Rows[1][kib])
	}
	if tab.Rows[2][ans] != tab.Rows[3][ans] {
		t.Errorf("primitive answers differ: %s vs %s", tab.Rows[2][ans], tab.Rows[3][ans])
	}
	if tab.Rows[4][ans] != tab.Rows[5][ans] {
		t.Errorf("conjunctive answers differ: %s vs %s", tab.Rows[4][ans], tab.Rows[5][ans])
	}
}

func TestE11ChurnShapes(t *testing.T) {
	tab, err := E11Churn(Params{})
	if err != nil {
		t.Fatal(err)
	}
	comp := colIndex(t, tab, "completeness")
	drops := colIndex(t, tab, "stale-drops")
	if cell(t, tab, 0, comp) != 1.0 {
		t.Error("healthy run not complete")
	}
	for i, row := range tab.Rows {
		switch row[0] {
		case "storage-crash (2nd query)":
			if cell(t, tab, i, drops) != 0 {
				t.Errorf("second query after crash still dropped postings: %v", row)
			}
		case "index-graceful-leave", "index-crash+heal":
			if cell(t, tab, i, comp) != 1.0 {
				t.Errorf("%s completeness = %s, want 1.00", row[0], row[comp])
			}
		}
	}
}

func TestE12JoinSiteShapes(t *testing.T) {
	tab, err := E12JoinSite(Params{})
	if err != nil {
		t.Fatal(err)
	}
	sols := colIndex(t, tab, "sols")
	ship := colIndex(t, tab, "ship-KiB")
	for i := 0; i+2 < len(tab.Rows); i += 3 {
		moveSmall, querySite := i, i+1
		if tab.Rows[i][sols] != tab.Rows[i+1][sols] || tab.Rows[i][sols] != tab.Rows[i+2][sols] {
			t.Errorf("case %s: policies disagree on solutions", tab.Rows[i][0])
		}
		if cell(t, tab, moveSmall, ship) > cell(t, tab, querySite, ship)+0.01 {
			t.Errorf("case %s: move-small ships more than query-site", tab.Rows[i][0])
		}
	}
}

// The same Params must regenerate bit-identical tables — the property the
// determinism lint rule protects. E2 is the heaviest consumer of workload
// randomness (six dataset draws), so it is the canary.
func TestSameSeedSameTables(t *testing.T) {
	run := func() string {
		tab, err := E2IndexConstruction(Params{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return tab.String()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different E2 tables:\n%s\nvs\n%s", a, b)
	}
}

// An injected clock threads through a deployment: the run starts at the
// clock's position and leaves the clock advanced.
func TestInjectedClockAdvances(t *testing.T) {
	clock := simnet.NewClock(1000)
	if _, err := E1Fig1(Params{Clock: clock}); err != nil {
		t.Fatal(err)
	}
	if clock.Now() <= 1000 {
		t.Errorf("clock did not advance past its start: %v", clock.Now())
	}
}

func TestRunOneUnknown(t *testing.T) {
	var sb strings.Builder
	if err := RunOne(&sb, "E99", Params{}); err == nil {
		t.Error("expected error for unknown experiment")
	}
	if err := RunOne(&sb, "E1", Params{}); err != nil {
		t.Error(err)
	}
	if !strings.Contains(sb.String(), "E1") {
		t.Error("table output missing")
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{ID: "X", Caption: "c", Headers: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("xyz", "w")
	s := tab.String()
	for _, want := range []string{"== X: c ==", "a", "bb", "2.50", "xyz"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestE13QoSShapes(t *testing.T) {
	tab, err := E13QoSJoinSite(Params{})
	if err != nil {
		t.Fatal(err)
	}
	resp := colIndex(t, tab, "resp-ms")
	pol := colIndex(t, tab, "policy")
	// per scenario block of 4 rows, qos must be no slower than any static
	// policy
	for i := 0; i+3 < len(tab.Rows); i += 4 {
		var qos float64 = -1
		best := -1.0
		for j := i; j < i+4; j++ {
			v := cell(t, tab, j, resp)
			if tab.Rows[j][pol] == "qos" {
				qos = v
			}
			if best < 0 || v < best {
				best = v
			}
		}
		if qos < 0 {
			t.Fatalf("scenario %s: no qos row", tab.Rows[i][0])
		}
		if qos > best+0.01 {
			t.Errorf("scenario %s: qos %.2f ms slower than best static %.2f ms",
				tab.Rows[i][0], qos, best)
		}
	}
}

func TestE14CacheShapes(t *testing.T) {
	tab, err := E14LookupCache(Params{})
	if err != nil {
		t.Fatal(err)
	}
	hops := colIndex(t, tab, "hops")
	cacheCol := colIndex(t, tab, "cache")
	drops := colIndex(t, tab, "drops")
	for i, row := range tab.Rows {
		switch {
		case row[cacheCol] == "true" && row[0] != "1":
			if cell(t, tab, i, hops) != 0 {
				t.Errorf("warm cached run %s still routed %s hops", row[0], row[hops])
			}
		case row[cacheCol] == "true+churn" && row[0] == "5":
			if cell(t, tab, i, drops) != 0 {
				t.Errorf("run 5 should be clean after invalidation: %v", row)
			}
		}
	}
}

func TestE15RangeShapes(t *testing.T) {
	tab, err := E15RangeQueries(Params{})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range tab.Notes {
		if strings.HasPrefix(n, "WARNING") {
			t.Error(n)
		}
	}
	ans := colIndex(t, tab, "answers")
	visited := colIndex(t, tab, "nodes-visited")
	for i := 0; i+1 < len(tab.Rows); i += 2 {
		if tab.Rows[i][ans] != tab.Rows[i+1][ans] {
			t.Errorf("range %s: answer counts differ (%s vs %s)",
				tab.Rows[i][0], tab.Rows[i][ans], tab.Rows[i+1][ans])
		}
		// the narrowest range must let LPH visit fewer nodes than the
		// hybrid fan-out contacts
		if i == 0 && cell(t, tab, i+1, visited) > cell(t, tab, i, visited) {
			t.Errorf("narrow range: LPH visited %s nodes, hybrid %s",
				tab.Rows[i+1][visited], tab.Rows[i][visited])
		}
	}
}
