package experiments

import (
	"fmt"

	"adhocshare/internal/dqp"
	"adhocshare/internal/rdf"
	"adhocshare/internal/rdfpeers"
	"adhocshare/internal/simnet"
	"adhocshare/internal/workload"
)

// E15RangeQueries compares numeric range-query processing: the hybrid
// system resolves a range as a predicate-key lookup plus a pushed-down
// FILTER at the providers, while RDFPeers uses its locality-preserving
// hash so the matching triples live on a contiguous ring arc (the
// technique the paper describes in Sect. II).
func E15RangeQueries(p Params) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Caption: "Numeric range queries: hybrid pushed filter vs. RDFPeers locality-preserving hashing",
		Headers: []string{"range", "system", "answers", "msgs", "KiB", "nodes-visited", "resp-ms"},
	}
	d := workload.Generate(workload.Config{
		Persons: 300, Providers: 10, AvgKnows: 2, Seed: p.seed(19),
	})
	ageP := rdf.NewIRI(workload.FOAF + "age")
	oracleCount := func(lo, hi int) int {
		n := 0
		d.UnionGraph().ForEachMatch(rdf.Triple{S: rdf.NewVar("s"), P: ageP, O: rdf.NewVar("o")},
			func(tr rdf.Triple) bool {
				if v, ok := rdf.NumericValue(tr.O); ok && v >= float64(lo) && v < float64(hi) {
					n++
				}
				return true
			})
		return n
	}

	// RDFPeers ring with LPH enabled over the age domain
	rp := rdfpeers.NewSystem(24, netConfig())
	if err := rp.EnableRangeIndex(0, 120); err != nil {
		return nil, err
	}
	now := simnet.VTime(0)
	for i := 0; i < 10; i++ {
		_, done, err := rp.AddNode(simnet.Addr(fmt.Sprintf("rp-%02d", i)), now)
		if err != nil {
			return nil, err
		}
		now = done
	}
	now = rp.Converge(now)
	for _, name := range d.Providers() {
		done, err := rp.StoreAll("rp-00", d.ByProvider[name], now)
		if err != nil {
			return nil, err
		}
		now = done
	}

	for _, rng := range [][2]int{{30, 35}, {20, 50}, {18, 78}} {
		lo, hi := rng[0], rng[1]
		want := oracleCount(lo, hi)

		// hybrid: predicate-key lookup + pushed filter
		dep, err := buildDeployment(p, 8, d)
		if err != nil {
			return nil, err
		}
		res, stats, err := dep.runQuery(dqp.Options{
			Strategy: dqp.StrategyFreqChain, PushFilters: true, ReorderJoins: true,
		}, "D00", workload.QueryAgeRange(lo, hi))
		if err != nil {
			return nil, err
		}
		if len(res.Solutions) != want {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"WARNING: hybrid range [%d,%d) returned %d, oracle %d", lo, hi, len(res.Solutions), want))
		}
		t.AddRow(fmt.Sprintf("[%d,%d)", lo, hi), "hybrid(pushed-filter)", len(res.Solutions),
			stats.Messages, kb(stats.Bytes), stats.TargetsContacted, ms(stats.ResponseTime))

		// rdfpeers: LPH arc walk (inclusive bounds → hi-1 for integers)
		before := rp.Net().Metrics()
		start := now
		ts, visited, done, err := rp.QueryRange("rp-00", ageP, float64(lo), float64(hi-1), now)
		if err != nil {
			return nil, err
		}
		now = done
		delta := rp.Net().Metrics().Sub(before)
		if len(ts) != want {
			t.Notes = append(t.Notes, fmt.Sprintf(
				"WARNING: rdfpeers range [%d,%d) returned %d, oracle %d", lo, hi, len(ts), want))
		}
		t.AddRow(fmt.Sprintf("[%d,%d)", lo, hi), "rdfpeers(LPH)", len(ts),
			delta.Messages, kb(delta.Bytes), visited, ms((now - start).Duration()))
	}
	t.Notes = append(t.Notes,
		"the hybrid system always contacts every provider of the predicate (the filter prunes what returns, not who is asked); LPH visits only the ring arc covering the interval",
		"narrow ranges favour LPH (few arc nodes); wide ranges converge since the arc approaches the whole ring")
	return t, nil
}
