package experiments

import (
	"fmt"

	"adhocshare/internal/dqp"
	"adhocshare/internal/flight"
	"adhocshare/internal/rdf"
	"adhocshare/internal/workload"
)

func dqpBasic() dqp.Options { return dqp.Options{Strategy: dqp.StrategyBasic} }
func dqpChain() dqp.Options { return dqp.Options{Strategy: dqp.StrategyChain} }
func dqpFreq() dqp.Options  { return dqp.Options{Strategy: dqp.StrategyFreqChain} }

// E4PrimitiveStrategies compares the three per-pattern strategies of
// Sect. IV-C on primitive (single-pattern) queries, across data-overlap
// regimes. Expected shape (paper Sect. V): basic minimizes response time,
// the chains minimize transmission — with the caveat, measured here, that
// the chain's byte advantage needs overlapping provider data or selective
// seeds; on fully disjoint data the accumulated chain ships more.
func E4PrimitiveStrategies(p Params) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Caption: "Primitive query strategies (Fig. 5): traffic vs. response time",
		Headers: []string{"overlap", "target", "strategy", "sols", "ship-KiB", "total-KiB", "msgs", "resp-ms"},
	}
	for _, overlap := range []float64{0, 0.5, 1.0} {
		// At overlap o, a fraction o of the knows-edges is replicated to
		// (almost) every provider — widely known public facts. This is the
		// regime where in-network aggregation pays off.
		d := workload.Generate(workload.Config{
			Persons: 200, Providers: 10, AvgKnows: 4, ZipfS: 1.4,
			OverlapFraction: overlap, OverlapCopies: 9, Seed: p.seed(21),
		})
		for _, target := range []struct {
			name string
			q    string
		}{
			{"popular", workload.QueryPrimitive(d.PopularPerson)},
			{"rare", workload.QueryPrimitive(d.RarePerson)},
		} {
			for _, s := range []struct {
				name string
				opts dqp.Options
			}{
				{"basic", dqpBasic()},
				{"chain", dqpChain()},
				{"freq-chain", dqpFreq()},
			} {
				dep, err := buildDeployment(p, 8, d)
				if err != nil {
					return nil, err
				}
				res, stats, err := dep.runQuery(s.opts, "D00", target.q)
				if err != nil {
					return nil, err
				}
				t.AddRow(overlap, target.name, s.name, len(res.Solutions),
					kb(stats.ShippedSolutionBytes()), kb(stats.Bytes),
					stats.Messages, ms(stats.ResponseTime))
			}
		}
	}
	t.Notes = append(t.Notes,
		"basic always wins response time (parallel legs); chains serialize hops",
		"for a single pattern the chain wins bytes only under heavy fact replication (overlap 1.0 across ~all providers), and then only by about one response leg; on disjoint data it ships more — a regime boundary the paper does not discuss. The substantial transmission savings appear for conjunctions (E5), where in-network joins shrink what travels",
		"freq-chain ≤ chain in shipped bytes: the largest contribution never travels")
	return t, nil
}

// E5Conjunction compares conjunction processing (Sect. IV-D): the
// sequential pipeline (semi-join seeding) versus parallel evaluation with
// overlap-aware assembly, with and without frequency-driven reordering.
func E5Conjunction(p Params) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Caption: "Conjunctive BGPs (Fig. 6): pipeline vs. parallel-join, reorder on/off",
		Headers: []string{"query", "conjunction", "reorder", "sols", "ship-KiB", "total-KiB", "msgs", "resp-ms"},
	}
	d := workload.Generate(workload.Config{
		Persons: 300, Providers: 12, AvgKnows: 4, ZipfS: 1.3,
		KnowsNothingFraction: 0.15, Seed: p.seed(33),
	})
	queries := []struct {
		name string
		q    string
	}{
		{"fig6-2pat", workload.QueryConjunction()},
		{"fig4-4pat", workload.QueryFig4("Smith")},
	}
	for _, query := range queries {
		for _, cj := range []dqp.Conjunction{dqp.ConjPipeline, dqp.ConjParallelJoin} {
			for _, reorder := range []bool{false, true} {
				dep, err := buildDeployment(p, 8, d)
				if err != nil {
					return nil, err
				}
				opts := dqp.Options{
					Strategy:     dqp.StrategyFreqChain,
					Conjunction:  cj,
					JoinSite:     dqp.JoinSiteMoveSmall,
					PushFilters:  true,
					ReorderJoins: reorder,
				}
				res, stats, err := dep.runQuery(opts, "D00", query.q)
				if err != nil {
					return nil, err
				}
				t.AddRow(query.name, cj.String(), reorder, len(res.Solutions),
					kb(stats.ShippedSolutionBytes()), kb(stats.Bytes),
					stats.Messages, ms(stats.ResponseTime))
			}
		}
	}
	t.Notes = append(t.Notes,
		"pipeline + reorder ships least: the rare pattern runs first and seeds prune the frequent one (distributed semi-join)",
		"parallel-join wins response time when patterns are balanced; overlap-aware assembly avoids the final shipping when target sets intersect",
		"the n! execution-order space of Sect. IV-D is navigated greedily by Table I frequencies")
	return t, nil
}

// E6Optional evaluates OPTIONAL processing (Fig. 7 / Sect. IV-E) under the
// three join-site policies with skewed operand sizes, validating the
// move-small recommendation.
func E6Optional(p Params) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Caption: "OPTIONAL (Fig. 7): left-outer-join placement policies",
		Headers: []string{"filter-side", "policy", "sols", "ship-KiB", "total-KiB", "resp-ms"},
	}
	d := workload.Generate(workload.Config{
		Persons: 250, Providers: 10, AvgKnows: 4, Seed: p.seed(44),
	})
	// Two skews: a selective mandatory side (small Ω1, large Ω2-ish pool)
	// and a broad mandatory side.
	cases := []struct {
		name string
		q    string
	}{
		{"selective", workload.QueryOptional("^Alice")},
		{"broad", workload.QueryOptional("")},
	}
	for _, c := range cases {
		for _, js := range []dqp.JoinSitePolicy{dqp.JoinSiteMoveSmall, dqp.JoinSiteQuerySite, dqp.JoinSiteThirdSite} {
			dep, err := buildDeployment(p, 8, d)
			if err != nil {
				return nil, err
			}
			opts := dqp.Options{
				Strategy: dqp.StrategyFreqChain, Conjunction: dqp.ConjParallelJoin,
				JoinSite: js, PushFilters: true, ReorderJoins: true,
			}
			res, stats, err := dep.runQuery(opts, "D00", c.q)
			if err != nil {
				return nil, err
			}
			t.AddRow(c.name, js.String(), len(res.Solutions),
				kb(stats.ShippedSolutionBytes()), kb(stats.Bytes), ms(stats.ResponseTime))
		}
	}
	t.Notes = append(t.Notes,
		"move-small ships min(|Ω1|,|Ω2|) once; query-site ships both operands to the initiator; third-site ships both to a neutral node",
		"all policies return identical solutions — placement only changes cost (Sect. IV-E)")
	return t, nil
}

// E7Union evaluates UNION processing (Fig. 8 / Sect. IV-F): branches run
// in parallel; the union lands at a shared node when the branch results
// already co-reside, otherwise per the join-site policy.
func E7Union(p Params) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Caption: "UNION (Fig. 8): parallel branches and union placement",
		Headers: []string{"strategy", "sols", "ship-KiB", "total-KiB", "msgs", "resp-ms"},
	}
	d := workload.Generate(workload.Config{
		Persons: 250, Providers: 10, AvgKnows: 4, ZipfS: 1.3,
		KnowsNothingFraction: 0.3, Seed: p.seed(55),
	})
	q := workload.QueryUnion(d.PopularPerson)
	for _, s := range []struct {
		name string
		opts dqp.Options
	}{
		{"basic/query-site", dqp.Options{Strategy: dqp.StrategyBasic, JoinSite: dqp.JoinSiteQuerySite}},
		{"chain/move-small", dqp.Options{Strategy: dqp.StrategyChain, JoinSite: dqp.JoinSiteMoveSmall}},
		{"freq-chain/move-small", dqp.Options{Strategy: dqp.StrategyFreqChain, JoinSite: dqp.JoinSiteMoveSmall, PushFilters: true, ReorderJoins: true}},
	} {
		dep, err := buildDeployment(p, 8, d)
		if err != nil {
			return nil, err
		}
		res, stats, err := dep.runQuery(s.opts, "D00", q)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.name, len(res.Solutions), kb(stats.ShippedSolutionBytes()),
			kb(stats.Bytes), stats.Messages, ms(stats.ResponseTime))
	}
	t.Notes = append(t.Notes,
		"branches evaluate concurrently (response time ≈ slower branch + merge shipping)",
		"move-small places the union at the larger branch's site; identical result sets across strategies")
	return t, nil
}

// E8FilterPushing reproduces Sect. IV-G: pushing the regex filter to the
// storage nodes shrinks shipped intermediate results, monotonically with
// filter selectivity.
func E8FilterPushing(p Params) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Caption: "Filter pushing (Fig. 9): shipped bytes vs. filter selectivity",
		Headers: []string{"regex", "matching", "pushed", "sols", "ship-KiB", "total-KiB", "resp-ms"},
	}
	d := workload.Generate(workload.Config{
		Persons: 300, Providers: 10, AvgKnows: 3,
		KnowsNothingFraction: 0.5, Seed: p.seed(66),
	})
	g := d.UnionGraph()
	// regexes of decreasing selectivity over generated first names
	for _, rx := range []string{"^Alice Smith$", "Smith", "a"} {
		matching := countNameMatches(g, rx)
		for _, pushed := range []bool{true, false} {
			dep, err := buildDeployment(p, 8, d)
			if err != nil {
				return nil, err
			}
			opts := dqp.Options{
				Strategy: dqp.StrategyChain, Conjunction: dqp.ConjPipeline,
				JoinSite: dqp.JoinSiteMoveSmall, PushFilters: pushed, ReorderJoins: true,
			}
			res, stats, err := dep.runQuery(opts, "D00", workload.QueryFilter(rx))
			if err != nil {
				return nil, err
			}
			t.AddRow(rx, matching, pushed, len(res.Solutions),
				kb(stats.ShippedSolutionBytes()), kb(stats.Bytes), ms(stats.ResponseTime))
		}
	}
	t.Notes = append(t.Notes,
		"pushed and unpushed plans return identical solutions; only shipped volume differs",
		"the byte gap widens as the filter gets more selective — Fig. 9's rewrite Filter(C1,P1) inside the BGP")
	return t, nil
}

// E9Fig4EndToEnd runs the paper's Fig. 4 query — four patterns, a regex
// filter and ORDER BY DESC — end to end across the full strategy matrix.
func E9Fig4EndToEnd(p Params) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Caption: "Fig. 4 query end-to-end across the strategy matrix",
		Headers: []string{"strategy", "conjunction", "push", "reorder", "sols", "ship-KiB", "total-KiB", "msgs", "resp-ms"},
	}
	d := workload.Generate(workload.Config{
		Persons: 200, Providers: 10, AvgKnows: 4, ZipfS: 1.2,
		KnowsNothingFraction: 0.4, Seed: p.seed(77),
	})
	q := workload.QueryFig4("Smith")
	firstSols := -1
	armed, violated := 0, 0
	for _, st := range []dqp.Strategy{dqp.StrategyBasic, dqp.StrategyChain, dqp.StrategyFreqChain} {
		for _, cj := range []dqp.Conjunction{dqp.ConjPipeline, dqp.ConjParallelJoin} {
			for _, flags := range []struct{ push, reorder bool }{{false, false}, {true, true}} {
				dep, err := buildDeployment(p, 8, d)
				if err != nil {
					return nil, err
				}
				opts := dqp.Options{
					Strategy: st, Conjunction: cj, JoinSite: dqp.JoinSiteMoveSmall,
					PushFilters: flags.push, ReorderJoins: flags.reorder,
				}
				res, stats, err := dep.runQuery(opts, "D00", q)
				if s := dep.checkMonitors(); s != "" {
					armed++
					if s != "ok" {
						violated++
						t.Notes = append(t.Notes, fmt.Sprintf(
							"MONITOR %v/%v push=%v: %s", st, cj, flags.push, s))
					}
				}
				if err != nil {
					// Under injected loss a config whose retry budget is
					// exhausted reports the typed partial-failure error
					// rather than a truncated result; record it as an
					// explicit outcome instead of aborting the table.
					if p.FaultRate > 0 && dqp.IsPartialFailure(err) {
						if rec := dep.sys.Net().FlightRecorder(); rec != nil {
							rec.Emit(flight.Event{
								Node: "D00", Kind: flight.KindPartial,
								VT: int64(dep.clock.Now()), End: int64(dep.clock.Now()),
								Method: fmt.Sprintf("%v/%v", st, cj), Note: err.Error(),
							})
						}
						t.Notes = append(t.Notes, fmt.Sprintf(
							"partial failure at loss %.2g: %v/%v push=%v: %v",
							p.FaultRate, st, cj, flags.push, err))
						continue
					}
					return nil, err
				}
				if firstSols == -1 {
					firstSols = len(res.Solutions)
				} else if len(res.Solutions) != firstSols {
					t.Notes = append(t.Notes, fmt.Sprintf(
						"WARNING: %v/%v returned %d solutions (expected %d)",
						st, cj, len(res.Solutions), firstSols))
				}
				t.AddRow(st.String(), cj.String(), flags.push, flags.reorder,
					len(res.Solutions), kb(stats.ShippedSolutionBytes()),
					kb(stats.Bytes), stats.Messages, ms(stats.ResponseTime))
				t.AddTraffic(fmt.Sprintf("%s/%s/push=%v", st, cj, flags.push),
					stats.PerMethod)
			}
		}
	}
	if armed > 0 && violated == 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"invariant monitors armed on all %d configurations: zero violations", armed))
	}
	t.Notes = append(t.Notes,
		"every configuration returns the same solution set (ordering applied at the initiator)",
		"fully-optimized (freq-chain, pipeline, push, reorder) minimizes shipped bytes; basic/parallel minimizes response time — the Sect. V trade-off")
	return t, nil
}

// E12JoinSite sweeps operand-size skew for the three join-site policies of
// Sect. II on a two-group conjunction.
func E12JoinSite(p Params) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Caption: "Join-site selection under operand skew (move-small / query-site / third-site)",
		Headers: []string{"skew(regexL/regexR)", "policy", "sols", "ship-KiB", "total-KiB", "resp-ms"},
	}
	d := workload.Generate(workload.Config{
		Persons: 300, Providers: 10, AvgKnows: 4, ZipfS: 1.4, Seed: p.seed(88),
	})
	// The two groups must produce solution sets that reside on *different*
	// sites (otherwise the shared-site shortcut bypasses the policy), so
	// each side matches a different bound object: a very popular person
	// (large Ω) and a moderately known one (small Ω).
	big, small := d.PopularPerson, secondTarget(d)
	cases := []struct {
		name string
		l, r rdf.Term
	}{
		{"small/large", small, big},
		{"large/small", big, small},
		{"balanced", big, big},
	}
	for _, c := range cases {
		// A selective join: the shared variable ?x makes the result the
		// intersection ("who knows both"), so operand movement dominates
		// the cost — the classical join-site setting of Sect. II.
		q := fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
SELECT ?x WHERE {
  { ?x foaf:knows %s . }
  { ?x foaf:knows %s . }
}`, c.l, c.r)
		for _, js := range []dqp.JoinSitePolicy{dqp.JoinSiteMoveSmall, dqp.JoinSiteQuerySite, dqp.JoinSiteThirdSite} {
			dep, err := buildDeployment(p, 8, d)
			if err != nil {
				return nil, err
			}
			opts := dqp.Options{
				Strategy: dqp.StrategyFreqChain, Conjunction: dqp.ConjParallelJoin,
				JoinSite: js, PushFilters: true, ReorderJoins: true,
			}
			res, stats, err := dep.runQuery(opts, "D00", q)
			if err != nil {
				return nil, err
			}
			t.AddRow(c.name, js.String(), len(res.Solutions),
				kb(stats.ShippedSolutionBytes()), kb(stats.Bytes), ms(stats.ResponseTime))
		}
	}
	t.Notes = append(t.Notes,
		"move-small adapts to the skew (ships the small side either way); query-site pays for both operands but gets the final result home for free; third-site pays for both plus the result",
		"Ye et al.'s QoS-aware third-site would shine with heterogeneous links; the simulator's links are uniform (see DESIGN.md §5)",
		"the 'balanced' case matches both sides at the same target set, so operands co-reside and every policy degenerates to the free shared-site join (the Sect. IV-D overlap optimization)")
	return t, nil
}

// secondTarget picks a person with mid-range popularity: referenced by
// knows edges, but well below the most popular one.
func secondTarget(d *workload.Dataset) rdf.Term {
	g := d.UnionGraph()
	knows := rdf.NewIRI(workload.FOAF + "knows")
	popular := g.CountMatch(rdf.Triple{S: rdf.NewVar("s"), P: knows, O: d.PopularPerson})
	best := d.PopularPerson
	bestCount := 0
	for _, p := range d.Persons {
		c := g.CountMatch(rdf.Triple{S: rdf.NewVar("s"), P: knows, O: p})
		if c > bestCount && c <= popular/4 {
			bestCount = c
			best = p
		}
	}
	return best
}
