package experiments

import (
	"fmt"
	"regexp"

	"adhocshare/internal/dqp"
	"adhocshare/internal/rdf"
	"adhocshare/internal/rdfpeers"
	"adhocshare/internal/simnet"
	"adhocshare/internal/workload"
)

// countNameMatches counts foaf:name literals matching a regex in a graph.
func countNameMatches(g *rdf.Graph, rx string) int {
	re := regexp.MustCompile(rx)
	n := 0
	g.ForEachMatch(rdf.Triple{
		S: rdf.NewVar("s"), P: rdf.NewIRI(workload.FOAF + "name"), O: rdf.NewVar("o"),
	}, func(t rdf.Triple) bool {
		if re.MatchString(t.O.Value) {
			n++
		}
		return true
	})
	return n
}

// E10VsRDFPeers compares the hybrid overlay against the RDFPeers baseline
// (Sect. II): ingest traffic (RDFPeers ships every triple to three ring
// places; the hybrid system ships only postings) and query traffic for
// primitive and conjunctive queries.
func E10VsRDFPeers(p Params) (*Table, error) {
	t := &Table{
		ID:      "E10",
		Caption: "Hybrid overlay vs. RDFPeers: ingest and query traffic",
		Headers: []string{"phase", "system", "msgs", "KiB", "resp-ms", "answers"},
	}
	d := workload.Generate(workload.Config{
		Persons: 200, Providers: 10, AvgKnows: 4, ZipfS: 1.3, Seed: p.seed(12),
	})

	// ---- hybrid ingest ----
	dep, err := buildDeployment(p, 10, d)
	if err != nil {
		return nil, err
	}
	// rebuild to isolate publication traffic: measure a fresh deployment's
	// publish phase only
	depFresh, err := buildDeploymentNoPublish(p, 10, d)
	if err != nil {
		return nil, err
	}
	before := depFresh.sys.Net().Metrics()
	startT := depFresh.clock.Now()
	for _, name := range d.Providers() {
		done, err := depFresh.sys.Publish(simnet.Addr(name), d.ByProvider[name], depFresh.clock.Now())
		if err != nil {
			return nil, err
		}
		depFresh.clock.Advance(done)
	}
	deltaH := depFresh.sys.Net().Metrics().Sub(before)
	t.AddRow("ingest", "hybrid(postings)", deltaH.Messages, kb(deltaH.Bytes),
		ms((depFresh.clock.Now() - startT).Duration()), d.TotalTriples())

	// ---- RDFPeers ingest ----
	rp := rdfpeers.NewSystem(24, netConfig())
	now := simnet.VTime(0)
	for i := 0; i < 10; i++ {
		_, done, err := rp.AddNode(simnet.Addr(fmt.Sprintf("rp-%02d", i)), now)
		if err != nil {
			return nil, err
		}
		now = done
	}
	now = rp.Converge(now)
	before = rp.Net().Metrics()
	startT = now
	for _, name := range d.Providers() {
		done, err := rp.StoreAll(simnet.Addr("rp-00"), d.ByProvider[name], now)
		if err != nil {
			return nil, err
		}
		now = done
	}
	deltaR := rp.Net().Metrics().Sub(before)
	t.AddRow("ingest", "rdfpeers(triples x3)", deltaR.Messages, kb(deltaR.Bytes),
		ms((now - startT).Duration()), d.TotalTriples())

	// ---- primitive query ----
	pat := rdf.Triple{S: rdf.NewVar("x"), P: rdf.NewIRI(workload.FOAF + "knows"), O: d.PopularPerson}

	res, stats, err := dep.runQuery(dqpFreq(), "D00", workload.QueryPrimitive(d.PopularPerson))
	if err != nil {
		return nil, err
	}
	t.AddRow("primitive-query", "hybrid(freq-chain)", stats.Messages, kb(stats.Bytes),
		ms(stats.ResponseTime), len(res.Solutions))

	before = rp.Net().Metrics()
	startT = now
	sols, now2, err := rp.QueryPattern("rp-00", pat, now)
	if err != nil {
		return nil, err
	}
	now = now2
	deltaQ := rp.Net().Metrics().Sub(before)
	t.AddRow("primitive-query", "rdfpeers", deltaQ.Messages, kb(deltaQ.Bytes),
		ms((now - startT).Duration()), len(sols))

	// ---- conjunctive query (shared subject) ----
	// pick objects guaranteed to share a subject so the answer is nonempty
	o1, o2, err := conjObjects(d)
	if err != nil {
		return nil, err
	}
	conjPats := []rdf.Triple{
		{S: rdf.NewVar("s"), P: rdf.NewIRI(workload.FOAF + "knows"), O: o1},
		{S: rdf.NewVar("s"), P: rdf.NewIRI(workload.NS + "knowsNothingAbout"), O: o2},
	}
	conjQuery := fmt.Sprintf(`PREFIX foaf: <http://xmlns.com/foaf/0.1/>
PREFIX ns: <http://example.org/ns#>
SELECT ?s WHERE { ?s foaf:knows %s . ?s ns:knowsNothingAbout %s . }`, o1, o2)

	res, stats, err = dep.runQuery(dqp.Options{
		Strategy: dqp.StrategyFreqChain, Conjunction: dqp.ConjPipeline,
		JoinSite: dqp.JoinSiteMoveSmall, PushFilters: true, ReorderJoins: true,
	}, "D00", conjQuery)
	if err != nil {
		return nil, err
	}
	t.AddRow("conjunctive-query", "hybrid(pipeline)", stats.Messages, kb(stats.Bytes),
		ms(stats.ResponseTime), len(res.Solutions))

	before = rp.Net().Metrics()
	startT = now
	cands, now3, err := rp.QueryConjunctive("rp-00", "s", conjPats, now)
	if err != nil {
		return nil, err
	}
	now = now3
	deltaC := rp.Net().Metrics().Sub(before)
	t.AddRow("conjunctive-query", "rdfpeers(MAQ)", deltaC.Messages, kb(deltaC.Bytes),
		ms((now - startT).Duration()), len(cands))

	t.Notes = append(t.Notes,
		"ingest: the hybrid system ships compact postings; RDFPeers ships every full triple to ~3 ring places — data leaves its provider, which the paper's design explicitly avoids",
		"query traffic is comparable: both route through the DHT; the hybrid adds the second level (location-table postings) and sub-query fan-out to providers",
		"answer counts agree between systems on both query classes")
	return t, nil
}

// conjObjects finds a pair (o1, o2) such that some subject both knows o1
// and knowsNothingAbout o2, guaranteeing a nonempty conjunctive answer.
// Graph iteration order is map order, so the full candidate set is scanned
// and the smallest pair under rdf.Compare is chosen — taking the first
// match would make the E10 query rows differ from run to run.
func conjObjects(d *workload.Dataset) (rdf.Term, rdf.Term, error) {
	g := d.UnionGraph()
	knows := rdf.NewIRI(workload.FOAF + "knows")
	kna := rdf.NewIRI(workload.NS + "knowsNothingAbout")
	var o1, o2 rdf.Term
	found := false
	better := func(a1, a2 rdf.Term) bool {
		if c := rdf.Compare(a1, o1); c != 0 {
			return c < 0
		}
		return rdf.Compare(a2, o2) < 0
	}
	g.ForEachMatch(rdf.Triple{S: rdf.NewVar("s"), P: kna, O: rdf.NewVar("o")}, func(t rdf.Triple) bool {
		for _, k := range g.Match(rdf.Triple{S: t.S, P: knows, O: rdf.NewVar("o")}) {
			if !found || better(k.O, t.O) {
				o1, o2 = k.O, t.O
				found = true
			}
		}
		return true
	})
	if !found {
		return rdf.Term{}, rdf.Term{}, fmt.Errorf("experiments: no subject with both predicates")
	}
	return o1, o2, nil
}

// buildDeploymentNoPublish builds the ring and storage nodes but does not
// publish triples, so publication traffic can be measured in isolation.
func buildDeploymentNoPublish(p Params, nIndex int, d *workload.Dataset) (*deployment, error) {
	dep, err := buildDeployment(p, nIndex, &workload.Dataset{ByProvider: emptyProviders(d)})
	if err != nil {
		return nil, err
	}
	// stash the real triples into the storage graphs lazily at publish
	// time (the caller publishes d.ByProvider).
	return dep, nil
}

func emptyProviders(d *workload.Dataset) map[string][]rdf.Triple {
	out := map[string][]rdf.Triple{}
	for name := range d.ByProvider {
		out[name] = nil
	}
	return out
}
