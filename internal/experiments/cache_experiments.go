package experiments

import (
	"adhocshare/internal/dqp"
	"adhocshare/internal/workload"
)

// E14LookupCache measures the initiator-side lookup cache (extension): a
// node repeatedly querying the same patterns skips Chord routing and
// location-table reads after warm-up, and the cache invalidates correctly
// under storage churn.
func E14LookupCache(p Params) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Caption: "Initiator lookup cache across repeated queries (extension)",
		Headers: []string{"run", "cache", "hops", "index-KiB", "total-KiB", "resp-ms", "drops"},
	}
	d := workload.Generate(workload.Config{
		Persons: 200, Providers: 10, AvgKnows: 4, ZipfS: 1.3, Seed: p.seed(13),
	})
	q := workload.QueryPrimitive(d.PopularPerson)
	for _, cached := range []bool{false, true} {
		dep, err := buildDeployment(p, 8, d)
		if err != nil {
			return nil, err
		}
		e := dqp.NewEngine(dep.sys, dqp.Options{
			Strategy: dqp.StrategyFreqChain, CacheLookups: cached,
		})
		for run := 1; run <= 3; run++ {
			_, stats, done, err := e.Query("D00", q, dep.clock.Now())
			dep.clock.Advance(done)
			if err != nil {
				return nil, err
			}
			t.AddRow(run, cached, stats.LookupHops, kb(stats.IndexBytes()),
				kb(stats.Bytes), ms(stats.ResponseTime), stats.StaleDrops)
		}
		// churn under a warm cache: fail a provider and query twice
		if cached {
			dep.sys.FailNode("D03")
			for run := 4; run <= 5; run++ {
				_, stats, done, err := e.Query("D00", q, dep.clock.Now())
				dep.clock.Advance(done)
				if err != nil {
					return nil, err
				}
				t.AddRow(run, "true+churn", stats.LookupHops, kb(stats.IndexBytes()),
					kb(stats.Bytes), ms(stats.ResponseTime), stats.StaleDrops)
			}
		}
	}
	t.Notes = append(t.Notes,
		"with the cache, runs 2+ route zero Chord hops and ship zero index bytes",
		"run 4 (after a provider crash) observes the timeout once and invalidates; run 5 is clean — the cache follows the Sect. III-D stale-entry rule")
	return t, nil
}
