package experiments

import (
	"math/rand"

	"adhocshare/internal/simnet"
)

// Params carries the reproducibility knobs of one experiment run. Every
// experiment draws its randomness and virtual time exclusively from here,
// so identical Params always regenerate identical tables.
//
// Seed is XORed into each experiment's internal stream seeds: Seed 0
// reproduces the published EXPERIMENTS.md tables bit-for-bit, and any
// other value yields a complete, equally deterministic re-run over a
// different dataset draw.
//
// Clock supplies the virtual clock a deployment advances; nil starts a
// fresh clock at the simulation epoch.
//
// FaultRate, when nonzero, installs a deterministic fault-injection plan
// (simnet.FaultPlan) on the deployment fabric after the overlay has
// converged and published: every subsequent message leg is dropped with
// this probability, decided by hashing the leg's coordinates under the
// run's seed. Setup stays fault-free so every rate sees the identical
// deployment; only the measured operations run under loss, and the same
// (Seed, FaultRate) pair always reproduces the same losses.
// Adaptive turns on workload-adaptive hot-key replication
// (overlay.Config.Adaptive) for the deployments an experiment builds; the
// default keeps the paper's static two-level index.
//
// Concurrent turns on simnet.Config.ConcurrentDelivery for the deployment
// fabric: every remote handler runs on its own goroutine with a
// deterministic commit order. All simulated quantities — VTimes, traffic,
// tables — are byte-identical to a serial run with the same Params; the
// mode exists so `-race` runs observe true handler concurrency.
//
// Flight, when nonzero, arms the flight recorder and the live invariant
// monitors on the deployments an experiment builds, with Flight events
// retained per node. Recording is strictly observational — tables,
// traffic and VTimes are byte-identical with the knob off — and same-seed
// runs retain byte-identical event logs.
type Params struct {
	Seed       int64
	Clock      *simnet.Clock
	FaultRate  float64
	Adaptive   bool
	Concurrent bool
	Flight     int
}

// clock returns the injected clock, or a fresh one at virtual time zero.
func (p Params) clock() *simnet.Clock {
	if p.Clock != nil {
		return p.Clock
	}
	return simnet.NewClock(0)
}

// seed derives the effective seed of one named stream: the stream's fixed
// base seed perturbed by the run's master seed.
func (p Params) seed(base int64) int64 { return base ^ p.Seed }

// Rand builds an independent deterministic random stream for one purpose.
func (p Params) Rand(base int64) *rand.Rand {
	return rand.New(rand.NewSource(p.seed(base)))
}
