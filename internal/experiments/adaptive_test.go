package experiments

// Tests for the workload-adaptive hot-key replication extension
// (DESIGN.md §9): churn striking the replica tier mid-query, the epoch
// invalidation contract after whole-node churn, loss-rate determinism of
// the E16 storm, and the full E9 strategy matrix with Adaptive on — every
// configuration must still match the centralized oracle, because the
// adaptive path is a cache in front of the static index, never a second
// source of truth.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"adhocshare/internal/chord"
	"adhocshare/internal/dqp"
	"adhocshare/internal/overlay"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/workload"
)

// adaptiveOpts is the engine configuration of the adaptive churn tests.
func adaptiveOpts() dqp.Options {
	return dqp.Options{Strategy: dqp.StrategyFreqChain}
}

// homeAndSuccessors computes, by local ring math, the home successor of a
// key and its next k live ring successors — exactly the nodes the adaptive
// index picks as hot-replica holders (IndexNode.hotTargets walks the same
// ring order).
func homeAndSuccessors(sys *overlay.System, key chord.ID, k int) (simnet.Addr, []simnet.Addr) {
	nodes := sys.IndexNodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID() < nodes[j].ID() })
	hi := sort.Search(len(nodes), func(i int) bool { return nodes[i].ID() >= key })
	if hi == len(nodes) {
		hi = 0
	}
	succ := make([]simnet.Addr, 0, k)
	for i := 1; i <= k && i < len(nodes); i++ {
		succ = append(succ, nodes[(hi+i)%len(nodes)].Addr())
	}
	return nodes[hi].Addr(), succ
}

// hotWarmup drives one engine past the promotion threshold on the popular
// key and returns the stats of the last warm-up query, which must already
// be served by the replica fast path.
func hotWarmup(t *testing.T, dep *deployment, e *dqp.Engine, q string) dqp.Stats {
	t.Helper()
	var last dqp.Stats
	for i := 0; i < 6; i++ {
		_, stats, done, err := e.Query("D00", q, dep.clock.Now())
		dep.clock.Advance(done)
		if err != nil {
			t.Fatalf("warm-up query %d: %v", i, err)
		}
		last = stats
	}
	return last
}

// TestAdaptiveChurnReplicaAndHomeCrash crashes a hot-replica holder AND
// the key's home successor inside the virtual-time span of a
// steady-state (replica-served) query — the span measured on an identical
// twin deployment — and checks the invariant the adaptive index promises
// under churn: the query either returns the centralized-oracle answer (by
// falling back through the surviving holder or the durability copy) or
// fails with the typed *dqp.PartialFailureError, and the same seed
// reproduces the same outcome byte-for-byte.
func TestAdaptiveChurnReplicaAndHomeCrash(t *testing.T) {
	p := Params{Seed: 5, Adaptive: true}
	d := e16Dataset(p)
	q := workload.QueryPrimitive(d.PopularPerson)
	oracle := centralOracle(t, d.UnionGraph(), q)
	if len(oracle) == 0 {
		t.Fatal("oracle returned no solutions — the popular person has no followers this seed")
	}
	key, _, ok := overlay.PatternKey(rdf.Triple{
		P: rdf.NewIRI(workload.FOAF + "knows"), O: d.PopularPerson}, 24)
	if !ok {
		t.Fatal("primitive pattern yielded no index key")
	}

	// Probe twin: identical Params build an identical deployment at
	// identical virtual times, so the probe's query span predicts exactly
	// when the measured run's query is in flight.
	probe, err := buildDeployment(p, e16Indexes, d)
	if err != nil {
		t.Fatal(err)
	}
	pe := dqp.NewEngine(probe.sys, adaptiveOpts())
	if last := hotWarmup(t, probe, pe, q); last.ReplicaHits == 0 {
		t.Fatal("warm-up never reached the replica fast path — the detector no longer promotes the popular key")
	}
	t0 := probe.clock.Now()
	if _, _, done, err := pe.Query("D00", q, t0); err != nil {
		t.Fatalf("probe query: %v", err)
	} else {
		probe.clock.Advance(done)
	}
	span := probe.clock.Now() - t0
	if span <= 0 {
		t.Fatalf("probe query spans no virtual time (start %v)", t0)
	}

	home, succs := homeAndSuccessors(probe.sys, key, 2)
	if len(succs) < 2 {
		t.Fatalf("ring too small: %d successors for the hot key", len(succs))
	}
	// Sanity-check the ring math against the actual placement: the home
	// successor must own the key's postings.
	for _, n := range probe.sys.IndexNodes() {
		if n.Addr() == home && len(n.Table.Get(key)) == 0 {
			t.Fatalf("ring math picked %s as home for key %v but it holds no postings", home, key)
		}
	}
	// Crash the home successor and the hot holder that is NOT the
	// durability copy (succs[0] holds the Replication=2 table copy and
	// stays up), so every path — replica hit on the survivor, retry
	// exhaustion, home fallback — either answers correctly or fails typed.
	replicaVictim := succs[1]

	churnOnce := func() string {
		dep, err := buildDeployment(p, e16Indexes, d)
		if err != nil {
			t.Fatal(err)
		}
		e := dqp.NewEngine(dep.sys, adaptiveOpts())
		if last := hotWarmup(t, dep, e, q); last.ReplicaHits == 0 {
			t.Fatal("measured run warm-up never reached the replica fast path")
		}
		if now := dep.clock.Now(); now != t0 {
			t.Fatalf("twin deployments diverged: measured run at %v, probe at %v", now, t0)
		}
		dep.sys.Net().SetFaults(&simnet.FaultPlan{
			Seed: p.seed(faultSeedBase),
			Crashes: []simnet.CrashWindow{
				{Node: home, From: t0, Until: t0 + 3*span/4},
				{Node: replicaVictim, From: t0, Until: t0 + 3*span/4},
			},
		})
		res, _, done, err := e.Query("D00", q, dep.clock.Now())
		dep.clock.Advance(done)
		if err != nil {
			if !dqp.IsPartialFailure(err) {
				t.Errorf("mid-query churn failed with an untyped error: %v", err)
			}
			return fmt.Sprintf("error: %v", err)
		}
		if gk, wk := solKey(res.Solutions), solKey(oracle); gk != wk {
			t.Errorf("churn query diverged from the oracle:\ngot  %s\nwant %s", gk, wk)
		}
		return solKey(res.Solutions)
	}

	out1 := churnOnce()
	out2 := churnOnce()
	if out1 != out2 {
		t.Errorf("same-seed churn runs differ:\n--- first ---\n%s\n--- again ---\n%s", out1, out2)
	}
}

// TestAdaptiveEpochInvalidation pins the coherence contract: whole-node
// churn (FailNode/RecoverNode) bumps the stabilization epoch, which must
// invalidate every hot replica and learned hint at once — the first query
// after churn is served by the home table, never by a stale copy — and
// after recovery plus republish the full oracle returns.
func TestAdaptiveEpochInvalidation(t *testing.T) {
	p := Params{Seed: 5, Adaptive: true}
	d := e16Dataset(p)
	q := workload.QueryPrimitive(d.PopularPerson)
	oracle := centralOracle(t, d.UnionGraph(), q)
	key, _, _ := overlay.PatternKey(rdf.Triple{
		P: rdf.NewIRI(workload.FOAF + "knows"), O: d.PopularPerson}, 24)

	dep, err := buildDeployment(p, e16Indexes, d)
	if err != nil {
		t.Fatal(err)
	}
	e := dqp.NewEngine(dep.sys, adaptiveOpts())
	if last := hotWarmup(t, dep, e, q); last.ReplicaHits == 0 {
		t.Fatal("warm-up never reached the replica fast path")
	}
	_, succs := homeAndSuccessors(dep.sys, key, 2)
	victim := succs[0]

	// Crash and immediately recover a replica holder: the epoch advances
	// twice, so every previously learned hint is stale. The next query
	// must not read any replica (ReplicaHits 0) and still match the
	// oracle, served by the home table.
	dep.sys.FailNode(victim)
	dep.sys.RecoverNode(victim)
	res, stats, done, err := e.Query("D00", q, dep.clock.Now())
	dep.clock.Advance(done)
	if err != nil {
		t.Fatalf("query after churn: %v", err)
	}
	if stats.ReplicaHits != 0 {
		t.Errorf("query after epoch bump read %d replicas — stale-epoch hints must be dropped", stats.ReplicaHits)
	}
	if gk, wk := solKey(res.Solutions), solKey(oracle); gk != wk {
		t.Errorf("post-churn query diverged from the oracle:\ngot  %s\nwant %s", gk, wk)
	}

	// Republish every provider (the recovery protocol) and query again:
	// the full oracle must return, and the re-promoted replica path — if
	// it re-arms — must serve the same answer.
	for _, name := range d.Providers() {
		done, err := dep.sys.Republish(simnet.Addr(name), dep.clock.Now())
		if err != nil {
			t.Fatalf("republish %s: %v", name, err)
		}
		dep.clock.Advance(done)
	}
	for i := 0; i < 3; i++ {
		res, _, done, err = e.Query("D00", q, dep.clock.Now())
		dep.clock.Advance(done)
		if err != nil {
			t.Fatalf("query %d after republish: %v", i, err)
		}
		if gk, wk := solKey(res.Solutions), solKey(oracle); gk != wk {
			t.Errorf("query %d after republish diverged from the oracle:\ngot  %s\nwant %s", i, gk, wk)
		}
	}
}

// TestE16SameSeedTranscripts renders the E16 storm table under message
// loss and requires same-seed byte-identity — the property that makes an
// adaptive-path fault reportable as "seed N at rate R". 1% runs always;
// the 5% sweep is skipped in short mode.
func TestE16SameSeedTranscripts(t *testing.T) {
	rates := []float64{0.01}
	if !testing.Short() {
		rates = append(rates, 0.05)
	}
	for _, rate := range rates {
		for _, seed := range []int64{7, 3} {
			p := Params{Seed: seed, FaultRate: rate}
			render := func() string {
				tab, err := E16ZipfStorm(p)
				if err != nil {
					t.Fatalf("seed %d rate %v: %v", seed, rate, err)
				}
				var b strings.Builder
				tab.Fprint(&b)
				return b.String()
			}
			first, again := render(), render()
			if first != again {
				t.Errorf("seed %d rate %v: same-seed E16 transcripts differ:\n--- first ---\n%s--- again ---\n%s",
					seed, rate, first, again)
			}
		}
	}
}

// TestE9AllConfigsAdaptive runs the full 12-configuration E9 strategy
// matrix with Adaptive on: every configuration must still return the
// centralized-oracle solution multiset. This is the oracle half of the
// metamorphic wall — hot-key replication may change who answers a lookup,
// never what the answer is.
func TestE9AllConfigsAdaptive(t *testing.T) {
	p := Params{Seed: 7, Adaptive: true}
	d := e9Dataset(p)
	q := workload.QueryFig4("Smith")
	want := centralOracle(t, d.UnionGraph(), q)
	if len(want) == 0 {
		t.Fatal("oracle returned no solutions — the workload no longer exercises the Fig. 4 query")
	}
	for _, opts := range e9Configs() {
		dep, err := buildDeployment(p, 8, d)
		if err != nil {
			t.Fatalf("build %+v: %v", opts, err)
		}
		res, _, err := dep.runQuery(opts, "D00", q)
		label := fmt.Sprintf("%v/%v/push=%v", opts.Strategy, opts.Conjunction, opts.PushFilters)
		if err != nil {
			t.Errorf("%s: adaptive run failed: %v", label, err)
			continue
		}
		if len(res.Solutions) != len(want) || !subMultiset(res.Solutions, want) || !subMultiset(want, res.Solutions) {
			t.Errorf("%s: adaptive result != oracle: %d solutions, want %d",
				label, len(res.Solutions), len(want))
		}
	}
}
