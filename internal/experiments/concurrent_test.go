package experiments

import (
	"fmt"
	"strings"
	"testing"

	"adhocshare/internal/workload"
)

// The concurrent-delivery mode is the dynamic half of the racefree wall:
// handlers of concurrently in-flight messages run on independent
// goroutines (so `go test -race` observes true handler concurrency) while
// every simulated quantity stays byte-identical to a serial run. These
// tests are the CI race-smoke surface: the full 12-configuration E9
// strategy matrix with ConcurrentDelivery on, plus the byte-identity
// bridge back to serial delivery.

// TestE9AllConfigsConcurrentDelivery runs the full 12-configuration E9
// strategy matrix with ConcurrentDelivery (and the adaptive hot-key path,
// the state the racefree rule had to fix) turned on: every configuration
// must still return the centralized-oracle solution multiset.
func TestE9AllConfigsConcurrentDelivery(t *testing.T) {
	p := Params{Seed: 7, Adaptive: true, Concurrent: true}
	d := e9Dataset(p)
	q := workload.QueryFig4("Smith")
	want := centralOracle(t, d.UnionGraph(), q)
	if len(want) == 0 {
		t.Fatal("oracle returned no solutions — the workload no longer exercises the Fig. 4 query")
	}
	for _, opts := range e9Configs() {
		dep, err := buildDeployment(p, 8, d)
		if err != nil {
			t.Fatalf("build %+v: %v", opts, err)
		}
		res, _, err := dep.runQuery(opts, "D00", q)
		label := fmt.Sprintf("%v/%v/push=%v", opts.Strategy, opts.Conjunction, opts.PushFilters)
		if err != nil {
			t.Errorf("%s: concurrent-delivery run failed: %v", label, err)
			continue
		}
		if len(res.Solutions) != len(want) || !subMultiset(res.Solutions, want) || !subMultiset(want, res.Solutions) {
			t.Errorf("%s: concurrent-delivery result != oracle: %d solutions, want %d",
				label, len(res.Solutions), len(want))
		}
	}
}

// TestE9ConcurrentDeliveryByteIdenticalTables renders the whole E9 table
// serially and under ConcurrentDelivery with the same seed: the transcripts
// must be byte-identical — concurrency changes the host schedule, never a
// virtual time, a traffic count or a row.
func TestE9ConcurrentDeliveryByteIdenticalTables(t *testing.T) {
	render := func(p Params) string {
		tab, err := E9Fig4EndToEnd(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		var b strings.Builder
		tab.Fprint(&b)
		return b.String()
	}
	for _, seed := range []int64{0, 7} {
		serial := render(Params{Seed: seed})
		concurrent := render(Params{Seed: seed, Concurrent: true})
		if serial != concurrent {
			t.Errorf("seed %d: concurrent-delivery E9 table differs from serial:\n--- serial ---\n%s--- concurrent ---\n%s",
				seed, serial, concurrent)
		}
	}
}

// TestE9ConcurrentDeliveryUnderLossByteIdentical layers the deterministic
// fault plan on top: loss draws hash simulated leg coordinates only, so
// the same (Seed, FaultRate) must reproduce the same table whether
// handlers run inline or on per-message goroutines.
func TestE9ConcurrentDeliveryUnderLossByteIdentical(t *testing.T) {
	render := func(p Params) string {
		tab, err := E9Fig4EndToEnd(p)
		if err != nil {
			t.Fatalf("%+v: %v", p, err)
		}
		var b strings.Builder
		tab.Fprint(&b)
		return b.String()
	}
	serial := render(Params{Seed: 7, FaultRate: 0.01})
	concurrent := render(Params{Seed: 7, FaultRate: 0.01, Concurrent: true})
	if serial != concurrent {
		t.Errorf("concurrent-delivery E9 table under loss differs from serial:\n--- serial ---\n%s--- concurrent ---\n%s",
			serial, concurrent)
	}
}
