package experiments

import (
	"adhocshare/internal/dqp"
	"adhocshare/internal/flight"
	"adhocshare/internal/overlay"
	"adhocshare/internal/trace"
	"adhocshare/internal/workload"
)

// TraceQuery builds the E9 deployment (the Fig. 4 dataset under the fixed
// workload seed), attaches a trace buffer to its fabric and executes one
// query under the given strategy. It returns the recorded spans in
// canonical order along with the engine stats; identical Params and inputs
// reproduce the spans byte for byte. The recorder attaches after
// publication, so the trace covers the query alone (plus any background
// ring traffic it overlaps, on the untraced lane).
func TraceQuery(p Params, strategy dqp.Strategy, initiator, query string) ([]trace.Span, dqp.Stats, error) {
	dep, err := fig4Deployment(p)
	if err != nil {
		return nil, dqp.Stats{}, err
	}
	buf := trace.NewBuffer()
	dep.sys.Net().SetRecorder(buf)
	_, stats, err := dep.runQuery(fig4Opts(strategy), initiator, query)
	if err != nil {
		return nil, dqp.Stats{}, err
	}
	return buf.Spans(), stats, nil
}

// fig4Deployment builds the E9 deployment: the Fig. 4 workload under the
// fixed seed, published over 8 index nodes.
func fig4Deployment(p Params) (*deployment, error) {
	d := workload.Generate(workload.Config{
		Persons: 200, Providers: 10, AvgKnows: 4, ZipfS: 1.2,
		KnowsNothingFraction: 0.4, Seed: p.seed(77),
	})
	return buildDeployment(p, 8, d)
}

// fig4Opts is the fully-optimized engine configuration the demo traces
// run under, varying only the per-pattern strategy.
func fig4Opts(strategy dqp.Strategy) dqp.Options {
	return dqp.Options{
		Strategy: strategy, Conjunction: dqp.ConjPipeline,
		JoinSite: dqp.JoinSiteMoveSmall, PushFilters: true, ReorderJoins: true,
	}
}

// TraceFig4 is TraceQuery over the paper's Fig. 4 query from the standard
// initiator — the fixed-seed demo trace behind `sparql-explain -trace` and
// the exporter golden tests.
func TraceFig4(p Params, strategy dqp.Strategy) ([]trace.Span, dqp.Stats, error) {
	return TraceQuery(p, strategy, "D00", workload.QueryFig4("Smith"))
}

// FlightTrace bundles the full observability picture of one traced query:
// its spans, the flight events of every node involved, the post-query
// invariant-monitor verdict, and the armed monitors themselves (for
// incident-report construction).
type FlightTrace struct {
	Spans      []trace.Span
	Events     []flight.Event
	Violations []flight.Violation
	Stats      dqp.Stats
	Monitors   *overlay.Monitors
	// Query is the trace identifier of the executed query.
	Query uint64
}

// TraceQueryFlight is TraceQuery with the flight recorder and the live
// invariant monitors armed (ring size p.Flight, or the recorder default
// when unset). All invariant monitors run after the query; identical
// Params and inputs reproduce the spans and the event log byte for byte.
func TraceQueryFlight(p Params, strategy dqp.Strategy, initiator, query string) (*FlightTrace, error) {
	if p.Flight <= 0 {
		p.Flight = flight.DefaultRingSize
	}
	dep, err := fig4Deployment(p)
	if err != nil {
		return nil, err
	}
	buf := trace.NewBuffer()
	dep.sys.Net().SetRecorder(buf)
	_, stats, err := dep.runQuery(fig4Opts(strategy), initiator, query)
	if err != nil {
		return nil, err
	}
	ft := &FlightTrace{
		Spans:      buf.Spans(),
		Events:     dep.mon.Recorder().Events(),
		Violations: dep.mon.CheckAll(),
		Stats:      stats,
		Monitors:   dep.mon,
	}
	for _, s := range ft.Spans {
		if s.Query != 0 {
			ft.Query = s.Query
			break
		}
	}
	return ft, nil
}
