package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestWriteJSONGoldenFormat pins the exact serialization of the -json
// output: key names, key order, indentation and the trailing newline are a
// contract with downstream plot/diff tooling, not an implementation detail.
func TestWriteJSONGoldenFormat(t *testing.T) {
	tables := []*Table{
		{
			ID:      "E2",
			Caption: "two-level index construction",
			Headers: []string{"triples", "msgs"},
			Rows:    [][]string{{"100", "42"}, {"200", "84"}},
			Notes:   []string{"one note"},
		},
		{
			ID:      "E3",
			Caption: "lookup hops",
			Headers: []string{"nodes", "hops"},
			Rows:    [][]string{{"16", "2.00"}},
		},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tables); err != nil {
		t.Fatal(err)
	}
	golden := `{
  "experiments": [
    {
      "id": "E2",
      "caption": "two-level index construction",
      "headers": [
        "triples",
        "msgs"
      ],
      "rows": [
        [
          "100",
          "42"
        ],
        [
          "200",
          "84"
        ]
      ],
      "notes": [
        "one note"
      ]
    },
    {
      "id": "E3",
      "caption": "lookup hops",
      "headers": [
        "nodes",
        "hops"
      ],
      "rows": [
        [
          "16",
          "2.00"
        ]
      ]
    }
  ]
}
`
	if got := buf.String(); got != golden {
		t.Errorf("WriteJSON output drifted from the golden format\ngot:\n%s\nwant:\n%s", got, golden)
	}
}

// TestWriteJSONRoundTrips checks the document parses back with the generic
// JSON decoder and preserves the experiment count and IDs.
func TestWriteJSONRoundTrips(t *testing.T) {
	tables := []*Table{{ID: "E1", Caption: "c", Headers: []string{"h"}, Rows: [][]string{{"v"}}}}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tables); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Experiments []struct {
			ID string `json:"id"`
		} `json:"experiments"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Experiments) != 1 || doc.Experiments[0].ID != "E1" {
		t.Errorf("round trip lost data: %+v", doc)
	}
	if !strings.HasSuffix(buf.String(), "\n") {
		t.Error("document must end with a newline")
	}
}

// TestCollectSelectsByID checks Collect's id filtering against the E3
// experiment, which is cheap to run.
func TestCollectSelectsByID(t *testing.T) {
	tables, err := Collect(Params{}, "E3")
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].ID != "E3" {
		t.Fatalf("Collect(E3) = %d tables, first ID %q", len(tables), tables[0].ID)
	}
	if _, err := Collect(Params{}, "E99"); err == nil {
		t.Error("Collect with an unknown ID should fail")
	}
}
