package experiments

// E17: per-query stage profiles. The paper's Fig. 3 pipeline — successor
// resolution, location-table lookup, sub-query evaluation, intermediate
// result transfer — is reconstructed from the trace spans of one Fig. 4
// query per strategy, and the critical path (the span chain ending at the
// last-finishing span) attributes the response time to the stage that
// actually bounded it, as opposed to total parallel work.

import (
	"fmt"
	"time"

	"adhocshare/internal/dqp"
)

// E17StageProfiles renders the stage breakdown of the Fig. 4 query under
// each per-pattern strategy: spans and summed virtual work per stage, and
// the critical-path share that explains the measured response time.
func E17StageProfiles(p Params) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Caption: "Fig. 4 query stage profiles: total work vs. critical path (extension)",
		Headers: []string{"strategy", "stage", "spans", "work-ms", "crit-spans", "crit-ms", "crit-share"},
	}
	for _, st := range []dqp.Strategy{dqp.StrategyBasic, dqp.StrategyChain, dqp.StrategyFreqChain} {
		spans, stats, err := TraceFig4(p, st)
		if err != nil {
			return nil, err
		}
		// The traced deployment runs exactly one query; its trace identifier
		// is the single nonzero Query among the recorded spans.
		var qid uint64
		for _, s := range spans {
			if s.Query != 0 {
				qid = s.Query
				break
			}
		}
		prof := dqp.BuildStageProfile(spans, qid)
		var critTotal int64
		for _, c := range prof.Critical {
			critTotal += c.Time
		}
		dominant, dominantTime := "", int64(-1)
		for _, stage := range prof.Stages() {
			work, crit := prof.ByStage[stage], prof.Critical[stage]
			share := 0.0
			if prof.Total > 0 {
				share = float64(crit.Time) / float64(prof.Total)
			}
			if crit.Time > dominantTime {
				dominant, dominantTime = stage, crit.Time
			}
			t.AddRow(st.String(), stage, work.Count,
				ms(time.Duration(work.Time)), crit.Count,
				ms(time.Duration(crit.Time)), fmt.Sprintf("%.2f", share))
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"%s: response %s ms, critical path %s ms across %d stages, bounded by %s",
			st, ms(stats.ResponseTime), ms(time.Duration(critTotal)),
			len(prof.Critical), dominant))
	}
	t.Notes = append(t.Notes,
		"work-ms sums parallel span durations and may exceed the response time; crit-ms cannot",
		"the critical path chains latest-ending predecessors back from the last-finishing span — the stage with the largest crit-share bounded the response")
	return t, nil
}
