package chord

import (
	"adhocshare/internal/simnet"
	"adhocshare/internal/wirebin"
)

// Binary wire form of the chord RPC payloads (lookup and batch-lookup are
// the routing hot path; the adhoclint codec rule cross-checks that every
// field below stays covered). Hop counters use zig-zag varints, ring
// identifiers unsigned varints, and trace contexts ride via their own
// trace.TraceContext binary form — they still contribute zero bytes to
// the modeled SizeBytes cost, but the codec must round-trip them so
// causality survives serialization.

// EncodeBinary appends the reference's binary wire form to dst.
func (r Ref) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(r.ID))
	return wirebin.AppendString(dst, string(r.Addr))
}

// DecodeBinary consumes one reference from b and returns the rest.
func (r *Ref) DecodeBinary(b []byte) ([]byte, error) {
	id, b, err := wirebin.Uvarint(b)
	if err != nil {
		return b, err
	}
	r.ID = ID(id)
	addr, b, err := wirebin.String(b)
	r.Addr = simnet.Addr(addr)
	return b, err
}

// EncodeBinary appends the request's binary wire form to dst.
func (r FindReq) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(r.Target))
	dst = wirebin.AppendInt(dst, r.Hops)
	return r.TC.EncodeBinary(dst)
}

// DecodeBinary consumes one request from b and returns the rest.
func (r *FindReq) DecodeBinary(b []byte) ([]byte, error) {
	target, b, err := wirebin.Uvarint(b)
	if err != nil {
		return b, err
	}
	r.Target = ID(target)
	if r.Hops, b, err = wirebin.Int(b); err != nil {
		return b, err
	}
	b, err = r.TC.DecodeBinary(b)
	return b, err
}

// EncodeBinary appends the response's binary wire form to dst.
func (r FindResp) EncodeBinary(dst []byte) []byte {
	dst = r.Node.EncodeBinary(dst)
	return wirebin.AppendInt(dst, r.Hops)
}

// DecodeBinary consumes one response from b and returns the rest.
func (r *FindResp) DecodeBinary(b []byte) ([]byte, error) {
	b, err := r.Node.DecodeBinary(b)
	if err != nil {
		return b, err
	}
	r.Hops, b, err = wirebin.Int(b)
	return b, err
}

// EncodeBinary appends the batch request's binary wire form to dst.
func (r BatchFindReq) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(len(r.Targets)))
	for _, t := range r.Targets {
		dst = wirebin.AppendUvarint(dst, uint64(t))
	}
	dst = wirebin.AppendInt(dst, r.Hops)
	return r.TC.EncodeBinary(dst)
}

// DecodeBinary consumes one batch request from b and returns the rest.
func (r *BatchFindReq) DecodeBinary(b []byte) ([]byte, error) {
	n, b, err := wirebin.Len(b)
	if err != nil {
		return b, err
	}
	r.Targets = nil
	if n > 0 {
		r.Targets = make([]ID, n)
		for i := range r.Targets {
			var v uint64
			if v, b, err = wirebin.Uvarint(b); err != nil {
				return b, err
			}
			r.Targets[i] = ID(v)
		}
	}
	if r.Hops, b, err = wirebin.Int(b); err != nil {
		return b, err
	}
	b, err = r.TC.DecodeBinary(b)
	return b, err
}

// EncodeBinary appends the batch response's binary wire form to dst.
func (r BatchFindResp) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(len(r.Nodes)))
	for _, ref := range r.Nodes {
		dst = ref.EncodeBinary(dst)
	}
	return wirebin.AppendInt(dst, r.Hops)
}

// DecodeBinary consumes one batch response from b and returns the rest.
func (r *BatchFindResp) DecodeBinary(b []byte) ([]byte, error) {
	n, b, err := wirebin.Len(b)
	if err != nil {
		return b, err
	}
	r.Nodes = nil
	if n > 0 {
		r.Nodes = make([]Ref, n)
		for i := range r.Nodes {
			if b, err = r.Nodes[i].DecodeBinary(b); err != nil {
				return b, err
			}
		}
	}
	r.Hops, b, err = wirebin.Int(b)
	return b, err
}

// EncodeBinary appends the successor list's binary wire form to dst.
func (l RefList) EncodeBinary(dst []byte) []byte {
	dst = wirebin.AppendUvarint(dst, uint64(len(l.Refs)))
	for _, r := range l.Refs {
		dst = r.EncodeBinary(dst)
	}
	return dst
}

// DecodeBinary consumes one successor list from b and returns the rest.
func (l *RefList) DecodeBinary(b []byte) ([]byte, error) {
	n, b, err := wirebin.Len(b)
	if err != nil {
		return b, err
	}
	l.Refs = nil
	if n > 0 {
		l.Refs = make([]Ref, n)
		for i := range l.Refs {
			if b, err = l.Refs[i].DecodeBinary(b); err != nil {
				return b, err
			}
		}
	}
	return b, nil
}
