package chord

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"adhocshare/internal/simnet"
)

func testNet() *simnet.Network {
	return simnet.New(simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20})
}

// fig1Refs reproduces the paper's Fig. 1 index nodes: N1, N4, N7, N12, N15
// in a 4-bit identifier space.
func fig1Refs() []Ref {
	var out []Ref
	for _, id := range []ID{1, 4, 7, 12, 15} {
		out = append(out, Ref{ID: id, Addr: simnet.Addr(fmt.Sprintf("index-%d", id))})
	}
	return out
}

func TestBetween(t *testing.T) {
	cases := []struct {
		x, a, b ID
		open    bool
		incl    bool
	}{
		{5, 1, 10, true, true},
		{1, 1, 10, false, false},
		{10, 1, 10, false, true},
		{0, 12, 4, true, true},  // wraparound
		{15, 12, 4, true, true}, // wraparound
		{4, 12, 4, false, true},
		{12, 12, 4, false, false},
		{8, 12, 4, false, false},
		{3, 7, 7, true, true}, // full circle when a == b
		{7, 7, 7, false, true},
	}
	for _, c := range cases {
		if got := between(c.x, c.a, c.b); got != c.open {
			t.Errorf("between(%d,%d,%d) = %v, want %v", c.x, c.a, c.b, got, c.open)
		}
		if got := betweenRightIncl(c.x, c.a, c.b); got != c.incl {
			t.Errorf("betweenRightIncl(%d,%d,%d) = %v, want %v", c.x, c.a, c.b, got, c.incl)
		}
	}
}

func TestHashIDStableAndTruncated(t *testing.T) {
	a := HashID("node-1", 32)
	b := HashID("node-1", 32)
	if a != b {
		t.Error("HashID not deterministic")
	}
	if HashID("node-1", 4) > 15 {
		t.Error("4-bit ID exceeds circle")
	}
	f := func(s string) bool { return HashID(s, 16) < (1 << 16) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFig1RingFormation(t *testing.T) {
	net := testNet()
	nodes, _, err := BuildRing(net, fig1Refs(), Config{Bits: 4, SuccListSize: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantSucc := map[ID]ID{1: 4, 4: 7, 7: 12, 12: 15, 15: 1}
	for _, n := range nodes {
		if got := n.Successor().ID; got != wantSucc[n.ID()] {
			t.Errorf("successor(%v) = %v, want N%d", n.ID(), got, wantSucc[n.ID()])
		}
	}
	wantPred := map[ID]ID{4: 1, 7: 4, 12: 7, 15: 12, 1: 15}
	for _, n := range nodes {
		if got := n.Predecessor().ID; got != wantPred[n.ID()] {
			t.Errorf("predecessor(%v) = %v, want N%d", n.ID(), got, wantPred[n.ID()])
		}
	}
}

func TestFig1LookupSemantics(t *testing.T) {
	net := testNet()
	nodes, now, err := BuildRing(net, fig1Refs(), Config{Bits: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// successor-of-key semantics in the 4-bit space
	want := map[ID]ID{0: 1, 1: 1, 2: 4, 4: 4, 5: 7, 7: 7, 8: 12, 11: 12, 12: 12, 13: 15, 15: 15}
	for key, wantID := range want {
		for _, start := range nodes {
			got, _, done, err := start.Lookup(key, now)
			now = done
			if err != nil {
				t.Fatalf("lookup %d from %v: %v", key, start.ID(), err)
			}
			if got.ID != wantID {
				t.Errorf("lookup(%d) from %v = %v, want N%d", key, start.ID(), got.ID, wantID)
			}
		}
	}
}

func buildN(t *testing.T, net *simnet.Network, n int, bits uint) []*Node {
	t.Helper()
	refs := make([]Ref, 0, n)
	seen := map[ID]bool{}
	for i := 0; len(refs) < n; i++ {
		addr := simnet.Addr(fmt.Sprintf("n%03d", i))
		id := HashID(string(addr), bits)
		if seen[id] {
			continue
		}
		seen[id] = true
		refs = append(refs, Ref{ID: id, Addr: addr})
	}
	nodes, _, err := BuildRing(net, refs, Config{Bits: bits, SuccListSize: 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestLookupCorrectnessRandomRing(t *testing.T) {
	net := testNet()
	nodes := buildN(t, net, 24, 16)
	ids := make([]ID, len(nodes))
	for i, n := range nodes {
		ids[i] = n.ID()
	}
	succOf := func(key ID) ID {
		for _, id := range ids {
			if id >= key {
				return id
			}
		}
		return ids[0]
	}
	rng := rand.New(rand.NewSource(7))
	now := simnet.VTime(0)
	for i := 0; i < 200; i++ {
		key := ID(rng.Uint64()).truncate(16)
		start := nodes[rng.Intn(len(nodes))]
		got, hops, done, err := start.Lookup(key, now)
		now = done
		if err != nil {
			t.Fatalf("lookup %d: %v", key, err)
		}
		if got.ID != succOf(key) {
			t.Errorf("lookup(%d) = %v, want %v", key, got.ID, succOf(key))
		}
		if hops > len(nodes) {
			t.Errorf("lookup(%d) took %d hops on %d-node ring", key, hops, len(nodes))
		}
	}
}

func TestLookupHopsLogarithmic(t *testing.T) {
	net := testNet()
	nodes := buildN(t, net, 64, 24)
	rng := rand.New(rand.NewSource(3))
	total, count := 0, 0
	now := simnet.VTime(0)
	for i := 0; i < 300; i++ {
		key := ID(rng.Uint64()).truncate(24)
		start := nodes[rng.Intn(len(nodes))]
		_, hops, done, err := start.Lookup(key, now)
		now = done
		if err != nil {
			t.Fatal(err)
		}
		total += hops
		count++
	}
	avg := float64(total) / float64(count)
	bound := 2 * math.Log2(64)
	if avg > bound {
		t.Errorf("average hops %.2f exceeds 2·log2(N) = %.2f", avg, bound)
	}
}

func TestNodeJoinMidLife(t *testing.T) {
	net := testNet()
	nodes := buildN(t, net, 10, 16)
	// a new node joins via an arbitrary member
	addr := simnet.Addr("late-joiner")
	id := HashID(string(addr), 16)
	n := NewNode(net, addr, id, Config{Bits: 16, SuccListSize: 4})
	n.Standalone()
	if _, err := n.Join(nodes[0].Addr(), 0); err != nil {
		t.Fatal(err)
	}
	all := append(nodes, n)
	Converge(all, 0)
	if !ringConsistent(all) {
		t.Error("ring not consistent after join")
	}
	// the new node must now own the keys in (pred, id]
	got, _, _, err := nodes[3].Lookup(id, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != id {
		t.Errorf("lookup of joiner id = %v, want %v", got.ID, id)
	}
}

func TestGracefulLeave(t *testing.T) {
	net := testNet()
	nodes := buildN(t, net, 8, 16)
	leaver := nodes[3]
	leaver.Leave(0)
	net.Deregister(leaver.Addr())
	rest := append(append([]*Node(nil), nodes[:3]...), nodes[4:]...)
	Converge(rest, 0)
	if !ringConsistent(rest) {
		t.Error("ring broken after graceful leave")
	}
	// keys previously owned by the leaver now resolve to its successor
	got, _, _, err := rest[0].Lookup(leaver.ID(), 0)
	if err != nil {
		t.Fatal(err)
	}
	want := nodes[4].ID()
	if got.ID != want {
		t.Errorf("lookup(%v) = %v, want successor %v", leaver.ID(), got.ID, want)
	}
}

func TestCrashRecoveryViaSuccessorList(t *testing.T) {
	net := testNet()
	nodes := buildN(t, net, 16, 16)
	// crash three consecutive nodes (fewer than the successor-list length)
	for _, n := range nodes[5:8] {
		net.Fail(n.Addr())
	}
	now := StabilizeRound(nodes, 0)
	now = StabilizeRound(nodes, now)
	now = StabilizeRound(nodes, now)
	var live []*Node
	for _, n := range nodes {
		if net.Alive(n.Addr()) {
			live = append(live, n)
		}
	}
	Converge(live, now)
	if !ringConsistent(nodes) {
		t.Fatal("ring did not heal after crashes")
	}
	// lookups for the dead nodes' keys must succeed at the next live node
	sortedLive := append([]*Node(nil), live...)
	sort.Slice(sortedLive, func(i, j int) bool { return sortedLive[i].ID() < sortedLive[j].ID() })
	succOf := func(key ID) ID {
		for _, n := range sortedLive {
			if n.ID() >= key {
				return n.ID()
			}
		}
		return sortedLive[0].ID()
	}
	for _, dead := range nodes[5:8] {
		got, _, _, err := live[0].Lookup(dead.ID(), now)
		if err != nil {
			t.Fatalf("lookup after crash: %v", err)
		}
		if got.ID != succOf(dead.ID()) {
			t.Errorf("lookup(%v) = %v, want %v", dead.ID(), got.ID, succOf(dead.ID()))
		}
	}
}

func TestLookupAccountsTraffic(t *testing.T) {
	net := testNet()
	nodes := buildN(t, net, 8, 16)
	net.ResetMetrics()
	_, hops, _, err := nodes[0].Lookup(nodes[4].ID(), 0)
	if err != nil {
		t.Fatal(err)
	}
	m := net.Metrics()
	if hops > 0 && m.Messages == 0 {
		t.Error("multi-hop lookup produced no traffic")
	}
	if m.PerMethod[MethodFindSuccessor].Messages != m.Messages {
		t.Errorf("all traffic should be find_successor: %+v", m.PerMethod)
	}
}

func TestSingleNodeRing(t *testing.T) {
	net := testNet()
	n := NewNode(net, "solo", HashID("solo", 16), Config{Bits: 16})
	n.Standalone()
	n.Create()
	got, hops, _, err := n.Lookup(12345, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != "solo" || hops != 0 {
		t.Errorf("solo lookup = %v hops=%d", got, hops)
	}
}

func TestIDAddWraps(t *testing.T) {
	id := ID(15)
	if got := id.add(0, 4); got != 0 {
		t.Errorf("15+1 mod 16 = %v, want 0", got)
	}
	if got := id.add(3, 4); got != 7 {
		t.Errorf("15+8 mod 16 = %v, want 7", got)
	}
}
