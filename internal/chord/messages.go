package chord

import (
	"adhocshare/internal/simnet"
	"adhocshare/internal/trace"
)

// RPC method names. The "chord." prefix lets experiments separate DHT
// maintenance and routing traffic from query traffic in simnet metrics.
// Methods retried after lost messages declare why re-executing their
// handler is safe (the adhoclint faultpath idempotence cross-check);
// read-only handlers (get_predecessor, get_successor_list, ping) are
// proven side-effect-free by the analysis itself.
const (
	//adhoclint:faultpath(idempotent, forwarding is a read plus routing-table eviction; evicting the same dead address twice converges to the same tables)
	MethodFindSuccessor = "chord.find_successor"
	//adhoclint:faultpath(idempotent, same forwarding-plus-eviction argument as find_successor, applied per sub-batch)
	MethodFindSuccessorBatch = "chord.find_successor_batch"
	MethodGetPredecessor     = "chord.get_predecessor"
	MethodGetSuccList        = "chord.get_successor_list"
	//adhoclint:faultpath(idempotent, absolute predecessor-candidate update; re-notifying with the same ref is a no-op)
	MethodNotify = "chord.notify"
	MethodPing   = "chord.ping"
	//adhoclint:faultpath(idempotent, absolute pointer assignment)
	MethodSetPredecessor = "chord.set_predecessor"
	//adhoclint:faultpath(idempotent, absolute pointer assignment; the handler strips an existing occurrence before prepending)
	MethodSetSuccessor = "chord.set_successor"
)

// SizeBytes returns the fixed 8-byte wire width of a ring identifier.
func (ID) SizeBytes() int { return 8 }

// hopWidth is the wire width of a hop counter.
func hopWidth(int) int { return 4 }

// Ref identifies a ring member: its identifier and network address.
type Ref struct {
	ID   ID
	Addr simnet.Addr
}

// SizeBytes implements simnet.Payload.
func (r Ref) SizeBytes() int { return r.ID.SizeBytes() + len(r.Addr) }

// IsZero reports whether the reference is unset.
func (r Ref) IsZero() bool { return r.Addr == "" }

// FindReq asks for the successor of Target; Hops counts forwarding steps
// taken so far. TC carries trace causality and is wire-immutable: each
// forwarding hop derives a fresh child context instead of mutating it.
type FindReq struct {
	Target ID
	Hops   int
	TC     trace.TraceContext
}

// SizeBytes implements simnet.Payload.
func (r FindReq) SizeBytes() int {
	return r.Target.SizeBytes() + hopWidth(r.Hops) + r.TC.SizeBytes()
}

// TraceCtx implements trace.Carrier.
func (r FindReq) TraceCtx() trace.TraceContext { return r.TC }

// FindResp carries the found successor and the total hop count.
type FindResp struct {
	Node Ref
	Hops int
}

// SizeBytes implements simnet.Payload.
func (r FindResp) SizeBytes() int { return r.Node.SizeBytes() + hopWidth(r.Hops) }

// BatchFindReq asks for the successors of many targets in one request, so
// a publication can resolve all of its keys while traversing each shared
// route prefix once instead of once per key. Hops counts the forwarding
// depth reached so far.
type BatchFindReq struct {
	Targets []ID
	Hops    int
	TC      trace.TraceContext
}

// SizeBytes implements simnet.Payload.
func (r BatchFindReq) SizeBytes() int {
	n := 4 + hopWidth(r.Hops) + r.TC.SizeBytes()
	for _, t := range r.Targets {
		n += t.SizeBytes()
	}
	return n
}

// TraceCtx implements trace.Carrier.
func (r BatchFindReq) TraceCtx() trace.TraceContext { return r.TC }

// BatchFindResp carries the found successors, Nodes[i] owning Targets[i]
// of the request, and the deepest forwarding chain any target needed.
type BatchFindResp struct {
	Nodes []Ref
	Hops  int
}

// SizeBytes implements simnet.Payload.
func (r BatchFindResp) SizeBytes() int {
	n := 4 + hopWidth(r.Hops)
	for _, ref := range r.Nodes {
		n += ref.SizeBytes()
	}
	return n
}

// RefList carries a successor list.
type RefList struct {
	Refs []Ref
}

// SizeBytes implements simnet.Payload.
func (l RefList) SizeBytes() int {
	n := 4
	for _, r := range l.Refs {
		n += r.SizeBytes()
	}
	return n
}
