// Package chord implements the Chord distributed hash table (Stoica et
// al., SIGCOMM 2001) over the simnet fabric: consistent hashing on a
// 2^m-point identifier circle, finger tables for O(log N) lookups,
// successor lists and stabilization for churn resilience. It is the
// substrate on which the paper's index nodes self-organize into a ring
// (Sect. III-A); the two-level distributed index keys of Sect. III-B are
// Chord keys whose successor index node stores the location-table row.
package chord

import (
	"crypto/sha1"
	"encoding/binary"
	"fmt"
)

// ID is a point on the Chord identifier circle. The circle size is 2^m
// with m ≤ 64; IDs are always reduced modulo the circle size.
type ID uint64

// HashID maps an arbitrary string onto the identifier circle of the given
// bit width using SHA-1, as Chord prescribes.
func HashID(s string, bits uint) ID {
	sum := sha1.Sum([]byte(s))
	v := binary.BigEndian.Uint64(sum[:8])
	return ID(v).truncate(bits)
}

func (id ID) truncate(bits uint) ID {
	if bits >= 64 {
		return id
	}
	return id & ((1 << bits) - 1)
}

// add returns id + 2^k on the circle of the given width.
func (id ID) add(k uint, bits uint) ID {
	return (id + (1 << k)).truncate(bits)
}

// String renders the ID in the N<decimal> style of the paper's Fig. 1.
func (id ID) String() string { return fmt.Sprintf("N%d", uint64(id)) }

// between reports whether x lies in the open interval (a, b) on the ring.
// When a == b the interval spans the whole circle excluding a.
func between(x, a, b ID) bool {
	if a < b {
		return a < x && x < b
	}
	if a > b {
		return x > a || x < b
	}
	return x != a
}

// betweenRightIncl reports whether x lies in the half-open interval (a, b]
// on the ring — the successor condition. When a == b the interval is the
// whole circle.
func betweenRightIncl(x, a, b ID) bool {
	if a < b {
		return a < x && x <= b
	}
	if a > b {
		return x > a || x <= b
	}
	return true
}
