package chord

import (
	"os"
	"testing"

	"adhocshare/internal/testutil"
)

// Ring maintenance is simulated in-process; any goroutine outliving the
// suite is a leak under churn.
func TestMain(m *testing.M) { os.Exit(testutil.VerifyNoLeaks(m)) }
