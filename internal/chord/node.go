package chord

import (
	"errors"
	"fmt"
	"sync"

	"adhocshare/internal/flight"
	"adhocshare/internal/simnet"
)

// Config parameterizes a ring member.
type Config struct {
	// Bits is the identifier-circle width m (default 32). The paper's
	// Fig. 1 uses a 4-bit space.
	Bits uint
	// SuccListSize is the successor-list length r used for failure
	// resilience (default 4).
	SuccListSize int
}

func (c Config) withDefaults() Config {
	if c.Bits == 0 || c.Bits > 64 {
		c.Bits = 32
	}
	if c.SuccListSize <= 0 {
		c.SuccListSize = 4
	}
	return c
}

// Node is one Chord ring member. It does not register itself on the
// network: the owner (an overlay index node) registers a handler and
// delegates methods with the "chord." prefix to HandleCall.
type Node struct {
	cfg  Config
	id   ID
	addr simnet.Addr
	net  *simnet.Network

	mu      sync.RWMutex
	succ    []Ref // successor list, succ[0] is the immediate successor
	pred    Ref
	fingers []Ref // fingers[k] ≈ successor(id + 2^k)
	nextFix int   // round-robin finger refresh cursor
}

// NewNode creates a ring member with the given identifier. Use HashID to
// derive the identifier from the address, or pass an explicit ID to
// reconstruct fixed topologies such as the paper's Fig. 1.
func NewNode(net *simnet.Network, addr simnet.Addr, id ID, cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:     cfg,
		id:      id.truncate(cfg.Bits),
		addr:    addr,
		net:     net,
		fingers: make([]Ref, cfg.Bits),
	}
	return n
}

// ID returns the node's ring identifier.
func (n *Node) ID() ID { return n.id }

// Addr returns the node's network address.
func (n *Node) Addr() simnet.Addr { return n.addr }

// Ref returns the node's own reference.
func (n *Node) Ref() Ref { return Ref{ID: n.id, Addr: n.addr} }

// Successor returns the current immediate successor.
func (n *Node) Successor() Ref {
	n.mu.RLock()
	defer n.mu.RUnlock()
	if len(n.succ) == 0 {
		return n.Ref()
	}
	return n.succ[0]
}

// SuccessorList returns a copy of the successor list.
func (n *Node) SuccessorList() []Ref {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return append([]Ref(nil), n.succ...)
}

// Predecessor returns the current predecessor (zero when unknown).
func (n *Node) Predecessor() Ref {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.pred
}

// Create initializes a one-node ring.
func (n *Node) Create() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.succ = []Ref{n.Ref()}
	n.pred = Ref{}
	for i := range n.fingers {
		n.fingers[i] = n.Ref()
	}
}

// ErrLookupFailed is returned when routing cannot proceed (all candidate
// next hops unreachable).
var ErrLookupFailed = errors.New("chord: lookup failed")

// Join inserts the node into the ring known to exist via the bootstrap
// address. It returns the virtual completion time.
func (n *Node) Join(bootstrap simnet.Addr, at simnet.VTime) (simnet.VTime, error) {
	resp, done, err := simnet.Retry(simnet.DefaultAttempts, at, func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return n.net.Call(n.addr, bootstrap, MethodFindSuccessor,
			FindReq{Target: n.id}, at)
	})
	if err != nil {
		return done, fmt.Errorf("chord: join via %s: %w", bootstrap, err)
	}
	succ := resp.(FindResp).Node
	n.mu.Lock()
	n.succ = []Ref{succ}
	n.pred = Ref{}
	for i := range n.fingers {
		n.fingers[i] = succ
	}
	n.mu.Unlock()
	if flt := n.net.FlightRecorder(); flt != nil {
		flt.Emit(flight.Event{Node: string(n.addr), Kind: flight.KindJoin,
			VT: int64(at), End: int64(done), Peer: string(bootstrap)})
	}
	return done, nil
}

// Lookup resolves the successor of target, counting forwarding hops. The
// initiating node's own routing step is free (local decision); each
// forward is one simnet call.
func (n *Node) Lookup(target ID, at simnet.VTime) (Ref, int, simnet.VTime, error) {
	resp, done, err := n.handleFindSuccessor(at, FindReq{Target: target.truncate(n.cfg.Bits)})
	if err != nil {
		return Ref{}, 0, done, err
	}
	return resp.Node, resp.Hops, done, nil
}

// HandleCall dispatches chord RPC methods; the owner's simnet handler
// forwards "chord."-prefixed methods here.
func (n *Node) HandleCall(at simnet.VTime, method string, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	switch method {
	case MethodFindSuccessor:
		return n.handleFindSuccessorPayload(at, req)
	case MethodFindSuccessorBatch:
		br, ok := req.(BatchFindReq)
		if !ok {
			return nil, at, fmt.Errorf("chord: find_successor_batch payload %T", req)
		}
		resp, done, err := n.handleFindSuccessorBatch(at, br)
		if err != nil {
			return nil, done, err
		}
		return resp, done, nil
	case MethodGetPredecessor:
		return n.Predecessor(), at, nil
	case MethodGetSuccList:
		return RefList{Refs: n.SuccessorList()}, at, nil
	case MethodNotify:
		r, ok := req.(Ref)
		if !ok {
			return nil, at, fmt.Errorf("chord: notify payload %T", req)
		}
		n.notify(r)
		return simnet.Bytes(1), at, nil
	case MethodPing:
		return simnet.Bytes(1), at, nil
	case MethodSetPredecessor:
		r, _ := req.(Ref)
		n.mu.Lock()
		n.pred = r
		n.mu.Unlock()
		return simnet.Bytes(1), at, nil
	case MethodSetSuccessor:
		r, _ := req.(Ref)
		n.mu.Lock()
		if !r.IsZero() {
			// Strip any existing occurrence before prepending so that
			// re-executing the update (a retried set after a lost reply)
			// leaves the list unchanged rather than accumulating duplicates.
			rest := make([]Ref, 0, len(n.succ))
			for _, s := range n.succ {
				if s.Addr != r.Addr {
					rest = append(rest, s)
				}
			}
			n.succ = append([]Ref{r}, trimRefs(rest, n.cfg.SuccListSize-1)...)
		}
		n.mu.Unlock()
		return simnet.Bytes(1), at, nil
	default:
		return nil, at, fmt.Errorf("chord: unknown method %s", method)
	}
}

func trimRefs(refs []Ref, max int) []Ref {
	if max < 0 {
		max = 0
	}
	if len(refs) > max {
		refs = refs[:max]
	}
	return refs
}

func (n *Node) handleFindSuccessorPayload(at simnet.VTime, req simnet.Payload) (simnet.Payload, simnet.VTime, error) {
	fr, ok := req.(FindReq)
	if !ok {
		return nil, at, fmt.Errorf("chord: find_successor payload %T", req)
	}
	resp, done, err := n.handleFindSuccessor(at, fr)
	if err != nil {
		return nil, done, err
	}
	return resp, done, nil
}

// handleFindSuccessor implements the recursive Chord routing step with
// failure fallback along progressively closer fingers and the successor
// list.
func (n *Node) handleFindSuccessor(at simnet.VTime, req FindReq) (FindResp, simnet.VTime, error) {
	succ := n.Successor()
	if succ.Addr == n.addr || betweenRightIncl(req.Target, n.id, succ.ID) {
		return FindResp{Node: succ, Hops: req.Hops}, at, nil
	}
	now := at
	// One forwarding closure reused across candidates (and retry attempts)
	// keeps the routing loop allocation-free; the captured hop state is
	// re-pointed per candidate.
	var hopAddr simnet.Addr
	var hopReq FindReq
	forward := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return n.net.Call(n.addr, hopAddr, MethodFindSuccessor, hopReq, at)
	}
	for ci, next := range n.routeCandidates(req.Target) {
		// Each forwarding hop derives a child trace context from the request
		// it received, so a traced lookup renders as a chain of message
		// spans (candidate index keeps retry attempts distinct). A hop whose
		// message is lost in transit is re-sent in place (find_successor is
		// read-only, so re-execution is safe); only then does routing fall
		// back to the next candidate.
		hopAddr = next.Addr
		hopReq = FindReq{Target: req.Target, Hops: req.Hops + 1, TC: req.TC.Child(uint64(ci))}
		resp, done, err := simnet.Retry(simnet.DefaultAttempts, now, forward)
		if err == nil {
			return resp.(FindResp), done, nil
		}
		// Failed next hop: remember the time wasted and try the next
		// candidate (the successor list / farther fingers). Only evict the
		// candidate when it is actually unreachable — a lossy link says
		// nothing about the node's liveness, and evicting live fingers
		// would degrade routing for every later lookup.
		now = done
		if flt := n.net.FlightRecorder(); flt != nil {
			flt.Emit(flight.Event{Node: string(n.addr), Kind: flight.KindRetry,
				VT: int64(now), End: int64(now), Peer: string(next.Addr),
				Method: MethodFindSuccessor, Query: req.TC.Query})
		}
		if !simnet.IsLost(err) {
			n.evict(next.Addr, now)
		}
	}
	return FindResp{}, now, fmt.Errorf("%w: target %v from %v", ErrLookupFailed, req.Target, n.id)
}

// handleFindSuccessorBatch resolves many targets in one recursive routing
// step: targets this node can answer directly are filled in locally, the
// rest are grouped by their preferred next hop and each group is forwarded
// as one sub-batch, all groups in parallel — so a shared route prefix is
// traversed once per group instead of once per key, and the virtual
// completion time is the critical path over the groups. A group whose next
// hop is unreachable falls back to per-target routing, which retries along
// farther fingers and the successor list.
func (n *Node) handleFindSuccessorBatch(at simnet.VTime, req BatchFindReq) (BatchFindResp, simnet.VTime, error) {
	nodes := make([]Ref, len(req.Targets))
	hops := req.Hops
	groups := map[simnet.Addr][]int{}
	var order []simnet.Addr // group order follows first occurrence in the (caller-sorted) targets
	for i, raw := range req.Targets {
		target := raw.truncate(n.cfg.Bits)
		succ := n.Successor()
		if succ.Addr == n.addr || betweenRightIncl(target, n.id, succ.ID) {
			nodes[i] = succ
			continue
		}
		cands := n.routeCandidates(target)
		if len(cands) == 0 {
			return BatchFindResp{}, at, fmt.Errorf("%w: target %v from %v", ErrLookupFailed, target, n.id)
		}
		next := cands[0].Addr
		if _, ok := groups[next]; !ok {
			order = append(order, next)
		}
		groups[next] = append(groups[next], i)
	}
	if len(order) == 0 {
		return BatchFindResp{Nodes: nodes, Hops: hops}, at, nil
	}
	//adhoclint:faultpath(collect-partial, a failed group falls back to serial per-target re-routing below; no group's targets are silently dropped)
	results, done := simnet.Parallel(len(order), 0, func(g int) (BatchFindResp, simnet.VTime, error) {
		next := order[g]
		idxs := groups[next]
		sub := make([]ID, len(idxs))
		for j, i := range idxs {
			sub[j] = req.Targets[i].truncate(n.cfg.Bits)
		}
		resp, gdone, err := simnet.Retry(simnet.DefaultAttempts, at, func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return n.net.Call(n.addr, next, MethodFindSuccessorBatch,
				BatchFindReq{Targets: sub, Hops: req.Hops + 1, TC: req.TC.Child(uint64(g))}, at)
		})
		if err != nil {
			return BatchFindResp{}, gdone, err
		}
		return resp.(BatchFindResp), gdone, nil
	})
	for g, r := range results {
		idxs := groups[order[g]]
		if r.Err != nil {
			// The group's next hop failed even after in-place retries:
			// evict it if it is actually gone (not merely lossy) and
			// resolve the group's targets one by one (serially, after the
			// parallel join, so routing-table repair stays deterministic),
			// starting from the failed branch's timeout.
			if flt := n.net.FlightRecorder(); flt != nil {
				flt.Emit(flight.Event{Node: string(n.addr), Kind: flight.KindRetry,
					VT: int64(r.Done), End: int64(r.Done), Peer: string(order[g]),
					Method: MethodFindSuccessorBatch, Query: req.TC.Query})
			}
			if !simnet.IsLost(r.Err) {
				n.evict(order[g], r.Done)
			}
			now := r.Done
			for _, i := range idxs {
				// Fallback sequence numbers start past the group indexes so
				// they never collide with the parallel forwards above.
				fr, fdone, ferr := n.handleFindSuccessor(now,
					FindReq{Target: req.Targets[i].truncate(n.cfg.Bits), Hops: req.Hops,
						TC: req.TC.Child(uint64(len(order) + i))})
				now = fdone
				if ferr != nil {
					return BatchFindResp{}, simnet.MaxTime(done, now), ferr
				}
				nodes[i] = fr.Node
				if fr.Hops > hops {
					hops = fr.Hops
				}
			}
			done = simnet.MaxTime(done, now)
			continue
		}
		for j, i := range idxs {
			nodes[i] = r.Value.Nodes[j]
		}
		if r.Value.Hops > hops {
			hops = r.Value.Hops
		}
	}
	return BatchFindResp{Nodes: nodes, Hops: hops}, simnet.MaxTime(at, done), nil
}

// routeCandidates lists possible next hops for the target in preference
// order: the closest preceding finger first, then successor-list entries.
func (n *Node) routeCandidates(target ID) []Ref {
	n.mu.RLock()
	defer n.mu.RUnlock()
	var out []Ref
	seen := map[simnet.Addr]bool{n.addr: true}
	add := func(r Ref) {
		if !r.IsZero() && !seen[r.Addr] {
			seen[r.Addr] = true
			out = append(out, r)
		}
	}
	for i := len(n.fingers) - 1; i >= 0; i-- {
		f := n.fingers[i]
		if !f.IsZero() && between(f.ID, n.id, target) {
			add(f)
		}
	}
	for _, s := range n.succ {
		add(s)
	}
	return out
}

// evict removes a failed address from the finger table and successor list
// so future routing avoids it until stabilization repopulates. The
// eviction is flight-recorded at the virtual time the failure was
// established.
func (n *Node) evict(addr simnet.Addr, at simnet.VTime) {
	if flt := n.net.FlightRecorder(); flt != nil {
		flt.Emit(flight.Event{Node: string(n.addr), Kind: flight.KindEvict,
			VT: int64(at), End: int64(at), Peer: string(addr)})
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, f := range n.fingers {
		if f.Addr == addr {
			n.fingers[i] = Ref{}
		}
	}
	var keep []Ref
	for _, s := range n.succ {
		if s.Addr != addr {
			keep = append(keep, s)
		}
	}
	if len(keep) == 0 {
		keep = []Ref{n.Ref()} // last resort: point at self until repaired
	}
	n.succ = keep
	if n.pred.Addr == addr {
		n.pred = Ref{}
	}
}

// notify is Chord's notify(n'): n' might be our predecessor.
func (n *Node) notify(cand Ref) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if cand.Addr == n.addr {
		return
	}
	if n.pred.IsZero() || between(cand.ID, n.pred.ID, n.id) || !n.net.Alive(n.pred.Addr) {
		n.pred = cand
	}
}

// Stabilize runs one round of the Chord stabilization protocol and refreshes
// the successor list. It returns the virtual completion time.
func (n *Node) Stabilize(at simnet.VTime) simnet.VTime {
	succ := n.Successor()
	now := at
	if succ.Addr == n.addr {
		// Pointing at ourselves (ring creator or sole survivor): a joiner
		// that notified us appears as our predecessor — adopt it as the
		// successor to close the ring.
		pred := n.Predecessor()
		if !pred.IsZero() && n.net.Alive(pred.Addr) {
			n.mu.Lock()
			n.succ = []Ref{pred}
			n.mu.Unlock()
			succ = pred
		}
	}
	if succ.Addr != n.addr {
		resp, done, err := simnet.Retry(simnet.DefaultAttempts, now, func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return n.net.Call(n.addr, succ.Addr, MethodGetPredecessor, simnet.Bytes(1), at)
		})
		now = done
		if err != nil {
			if !simnet.IsLost(err) {
				n.evict(succ.Addr, now)
				succ = n.Successor()
			}
		} else if x, ok := resp.(Ref); ok && !x.IsZero() && between(x.ID, n.id, succ.ID) && n.net.Alive(x.Addr) {
			n.mu.Lock()
			n.succ = append([]Ref{x}, trimRefs(n.succ, n.cfg.SuccListSize-1)...)
			n.mu.Unlock()
			succ = x
		}
	}
	if succ.Addr != n.addr {
		// notify is an absolute pointer update, so re-execution after a
		// lost reply converges to the same state (idempotent).
		_, done, err := simnet.Retry(simnet.DefaultAttempts, now, func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return n.net.Call(n.addr, succ.Addr, MethodNotify, n.Ref(), at)
		})
		now = done
		if err != nil && !simnet.IsLost(err) {
			n.evict(succ.Addr, now)
		}
	}
	// Refresh the successor list from the (possibly new) successor.
	succ = n.Successor()
	if succ.Addr != n.addr {
		resp, done, err := simnet.Retry(simnet.DefaultAttempts, now, func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return n.net.Call(n.addr, succ.Addr, MethodGetSuccList, simnet.Bytes(1), at)
		})
		now = done
		if err == nil {
			list := resp.(RefList).Refs
			merged := append([]Ref{succ}, trimRefs(list, n.cfg.SuccListSize-1)...)
			var dedup []Ref
			seen := map[simnet.Addr]bool{}
			for _, r := range merged {
				if r.Addr != n.addr && !seen[r.Addr] {
					seen[r.Addr] = true
					dedup = append(dedup, r)
				}
			}
			n.mu.Lock()
			n.succ = trimRefs(dedup, n.cfg.SuccListSize)
			n.mu.Unlock()
		} else if !simnet.IsLost(err) {
			n.evict(succ.Addr, now)
		}
	} else {
		// Sole survivor: close the ring on self.
		n.mu.Lock()
		n.succ = []Ref{n.Ref()}
		n.mu.Unlock()
	}
	if flt := n.net.FlightRecorder(); flt != nil {
		flt.Emit(flight.Event{Node: string(n.addr), Kind: flight.KindStabilize,
			VT: int64(at), End: int64(now)})
	}
	return now
}

// FixFingers refreshes one finger per call, cycling through the table; this
// mirrors Chord's periodic fix_fingers task.
func (n *Node) FixFingers(at simnet.VTime) simnet.VTime {
	n.mu.Lock()
	k := n.nextFix
	n.nextFix = (n.nextFix + 1) % int(n.cfg.Bits)
	n.mu.Unlock()
	target := n.id.add(uint(k), n.cfg.Bits)
	resp, _, done, err := n.Lookup(target, at)
	if err != nil {
		return done
	}
	n.mu.Lock()
	n.fingers[k] = resp
	n.mu.Unlock()
	return done
}

// FixAllFingers refreshes the whole finger table (used after join and in
// tests to reach a converged routing state quickly).
func (n *Node) FixAllFingers(at simnet.VTime) simnet.VTime {
	now := at
	for k := uint(0); k < n.cfg.Bits; k++ {
		target := n.id.add(k, n.cfg.Bits)
		resp, _, done, err := n.Lookup(target, now)
		now = done
		if err != nil {
			continue
		}
		n.mu.Lock()
		n.fingers[k] = resp
		n.mu.Unlock()
	}
	return now
}

// CheckPredecessor clears the predecessor if it no longer answers pings.
func (n *Node) CheckPredecessor(at simnet.VTime) simnet.VTime {
	pred := n.Predecessor()
	if pred.IsZero() {
		return at
	}
	_, done, err := simnet.Retry(simnet.DefaultAttempts, at, func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return n.net.Call(n.addr, pred.Addr, MethodPing, simnet.Bytes(1), at)
	})
	if err != nil && !simnet.IsLost(err) {
		// A lossy link is not a dead predecessor: only clear the pointer
		// when the node is genuinely unreachable.
		n.mu.Lock()
		n.pred = Ref{}
		n.mu.Unlock()
	}
	return done
}

// Leave performs a graceful departure: the predecessor's successor pointer
// and the successor's predecessor pointer are rewired around this node
// (Sect. III-D; the location-table handover happens at the overlay layer).
func (n *Node) Leave(at simnet.VTime) simnet.VTime {
	succ := n.Successor()
	pred := n.Predecessor()
	now := at
	if succ.Addr != n.addr && !pred.IsZero() {
		// Pointer rewires are absolute sets — idempotent under re-execution
		// after a lost reply.
		_, done, err := simnet.Retry(simnet.DefaultAttempts, now, func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return n.net.Call(n.addr, pred.Addr, MethodSetSuccessor, succ, at)
		})
		now = done
		if err != nil && !simnet.IsLost(err) {
			// Unreachable neighbour: drop it from our tables; its side of
			// the ring repairs via stabilization once we deregister.
			n.evict(pred.Addr, now)
		}
	}
	if !pred.IsZero() && succ.Addr != n.addr {
		_, done, err := simnet.Retry(simnet.DefaultAttempts, now, func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
			return n.net.Call(n.addr, succ.Addr, MethodSetPredecessor, pred, at)
		})
		now = done
		if err != nil && !simnet.IsLost(err) {
			n.evict(succ.Addr, now)
		}
	}
	return now
}
