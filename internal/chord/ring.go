package chord

import (
	"fmt"
	"sort"

	"adhocshare/internal/simnet"
)

// Standalone registers the node directly as the simnet handler for its
// address. The overlay index node instead embeds the chord node and
// delegates; Standalone is for pure-DHT deployments and tests.
func (n *Node) Standalone() {
	n.net.Register(n.addr, simnet.HandlerFunc(n.HandleCall))
}

// BuildRing constructs a converged ring from the given (addr, id) pairs on
// the network: the first node creates the ring, the rest join through it,
// and stabilization runs until pointers converge. It returns the nodes
// sorted by identifier and the virtual completion time.
//
// Nodes are registered standalone; callers embedding chord nodes in larger
// handlers should drive Create/Join/Stabilize themselves.
func BuildRing(net *simnet.Network, refs []Ref, cfg Config, at simnet.VTime) ([]*Node, simnet.VTime, error) {
	if len(refs) == 0 {
		return nil, at, fmt.Errorf("chord: empty ring")
	}
	nodes := make([]*Node, len(refs))
	for i, r := range refs {
		nodes[i] = NewNode(net, r.Addr, r.ID, cfg)
		nodes[i].Standalone()
	}
	nodes[0].Create()
	now := at
	for _, n := range nodes[1:] {
		done, err := n.Join(nodes[0].Addr(), now)
		now = done
		if err != nil {
			return nil, now, err
		}
		// A couple of immediate stabilization rounds keep the ring usable
		// while the remaining nodes join.
		now = n.Stabilize(now)
		now = nodes[0].Stabilize(now)
	}
	now = Converge(nodes, now)
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID() < nodes[j].ID() })
	return nodes, now, nil
}

// Converge runs stabilization and finger repair until every live node's
// successor matches the sorted ring order (or the round budget runs out),
// then refreshes all finger tables. It returns the virtual completion time.
func Converge(nodes []*Node, at simnet.VTime) simnet.VTime {
	now := at
	for round := 0; round < 2*len(nodes)+4; round++ {
		for _, n := range nodes {
			if !n.net.Alive(n.Addr()) {
				continue
			}
			now = n.Stabilize(now)
		}
		if ringConsistent(nodes) {
			break
		}
	}
	for _, n := range nodes {
		if !n.net.Alive(n.Addr()) {
			continue
		}
		now = n.FixAllFingers(now)
	}
	return now
}

// StabilizeRound runs one maintenance round (stabilize, one finger fix,
// predecessor check) on every live node — the periodic tasks of Chord
// driven deterministically by the simulation.
func StabilizeRound(nodes []*Node, at simnet.VTime) simnet.VTime {
	now := at
	for _, n := range nodes {
		if !n.net.Alive(n.Addr()) {
			continue
		}
		now = n.Stabilize(now)
		now = n.FixFingers(now)
		now = n.CheckPredecessor(now)
	}
	return now
}

// ringConsistent checks that live nodes form one cycle in identifier order.
func ringConsistent(nodes []*Node) bool {
	var live []*Node
	for _, n := range nodes {
		if n.net.Alive(n.Addr()) {
			live = append(live, n)
		}
	}
	if len(live) == 0 {
		return true
	}
	sorted := append([]*Node(nil), live...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID() < sorted[j].ID() })
	for i, n := range sorted {
		want := sorted[(i+1)%len(sorted)]
		if n.Successor().Addr != want.Addr() {
			return false
		}
	}
	return true
}
