package testutil

import "testing"

type fakeSuite struct {
	code int
	body func()
}

func (f fakeSuite) Run() int {
	if f.body != nil {
		f.body()
	}
	return f.code
}

func TestVerifyNoLeaksClean(t *testing.T) {
	if got := VerifyNoLeaks(fakeSuite{code: 0}); got != 0 {
		t.Errorf("clean suite: VerifyNoLeaks = %d, want 0", got)
	}
}

func TestVerifyNoLeaksPropagatesFailure(t *testing.T) {
	if got := VerifyNoLeaks(fakeSuite{code: 3}); got != 3 {
		t.Errorf("failing suite: VerifyNoLeaks = %d, want 3", got)
	}
}

func TestVerifyNoLeaksDetectsLeak(t *testing.T) {
	release := make(chan struct{})
	defer close(release) // unblock the deliberate leak so it does not outlive this test
	leaky := fakeSuite{code: 0, body: func() {
		started := make(chan struct{})
		go func() {
			close(started)
			<-release
		}()
		<-started
	}}
	if got := VerifyNoLeaks(leaky); got == 0 {
		t.Error("leaked goroutine went undetected")
	}
}
