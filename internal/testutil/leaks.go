// Package testutil carries shared helpers for the package test suites.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"time"
)

// Runner is the subset of *testing.M that VerifyNoLeaks drives.
type Runner interface {
	Run() int
}

// VerifyNoLeaks runs a package's test suite and fails the run when
// goroutines outlive it. The concurrent subsystems (overlay, simnet,
// chord) run entirely in-process, so after their tests return every
// goroutine they started must be gone; a straggler is a real leak under
// churn. A short retry window absorbs goroutines that are mid-exit when
// Run returns (the testing package's own workers unwinding).
//
// Use from TestMain:
//
//	func TestMain(m *testing.M) { os.Exit(testutil.VerifyNoLeaks(m)) }
func VerifyNoLeaks(m Runner) int {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code != 0 {
		return code
	}
	after := 0
	for i := 0; i < 50; i++ {
		if after = runtime.NumGoroutine(); after <= before {
			return code
		}
		time.Sleep(10 * time.Millisecond) //adhoclint:ignore determinism exiting goroutines need real scheduler time to unwind
	}
	fmt.Fprintf(os.Stderr, "testutil: goroutine leak: %d running before the suite, %d after\n", before, after)
	return 1
}
