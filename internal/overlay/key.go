// Package overlay implements the paper's hybrid P2P architecture
// (Sect. III): index nodes self-organized into a Chord ring and storage
// nodes that keep their own RDF data locally and attach to one index node.
//
// The two-level distributed index works exactly as Sect. III-B describes:
// for every shared triple (s,p,o), six keys are derived — ⟨s⟩, ⟨p⟩, ⟨o⟩,
// ⟨s,p⟩, ⟨p,o⟩, ⟨s,o⟩ — and for each key a posting (storage-node address
// plus a frequency count) is installed in the location table of the key's
// successor index node. A query with a triple pattern picks the key
// matching its bound positions, routes to the responsible index node via
// Chord (level one) and reads the location-table row (level two) to find
// the storage nodes that can answer.
package overlay

import (
	"adhocshare/internal/chord"
	"adhocshare/internal/rdf"
)

// KeyKind names one of the six index-key derivations of Sect. III-B.
type KeyKind uint8

// The six key kinds.
const (
	KeyS KeyKind = iota
	KeyP
	KeyO
	KeySP
	KeyPO
	KeySO
	numKeyKinds
)

// String returns the attribute combination, e.g. "sp".
func (k KeyKind) String() string {
	switch k {
	case KeyS:
		return "s"
	case KeyP:
		return "p"
	case KeyO:
		return "o"
	case KeySP:
		return "sp"
	case KeyPO:
		return "po"
	case KeySO:
		return "so"
	default:
		return "?"
	}
}

// hashTerm gives each key kind its own hash domain so ⟨s⟩ and ⟨o⟩ of the
// same term do not collide.
func hashKey(kind KeyKind, a, b rdf.Term, bits uint) chord.ID {
	s := kind.String() + "\x00" + a.String()
	if kind >= KeySP {
		s += "\x00" + b.String()
	}
	return chord.HashID(s, bits)
}

// TripleKeys returns the six index keys of a concrete triple, indexed by
// KeyKind.
func TripleKeys(t rdf.Triple, bits uint) [numKeyKinds]chord.ID {
	return [numKeyKinds]chord.ID{
		KeyS:  hashKey(KeyS, t.S, rdf.Term{}, bits),
		KeyP:  hashKey(KeyP, t.P, rdf.Term{}, bits),
		KeyO:  hashKey(KeyO, t.O, rdf.Term{}, bits),
		KeySP: hashKey(KeySP, t.S, t.P, bits),
		KeyPO: hashKey(KeyPO, t.P, t.O, bits),
		KeySO: hashKey(KeySO, t.S, t.O, bits),
	}
}

// PatternKey selects the most specific index key usable for a triple
// pattern, following the paper's lookup rule (hash the bound attribute or
// attribute pair). For a fully bound pattern the ⟨s,p⟩ key is used (any
// pair would do; the storage node verifies the object). The boolean result
// is false for the all-variable pattern, which has no key and must be
// resolved by flooding all storage nodes (the unstructured lower layer).
func PatternKey(pat rdf.Triple, bits uint) (chord.ID, KeyKind, bool) {
	switch pat.Mask() {
	case rdf.BoundS | rdf.BoundP | rdf.BoundO:
		return hashKey(KeySP, pat.S, pat.P, bits), KeySP, true
	case rdf.BoundS | rdf.BoundP:
		return hashKey(KeySP, pat.S, pat.P, bits), KeySP, true
	case rdf.BoundP | rdf.BoundO:
		return hashKey(KeyPO, pat.P, pat.O, bits), KeyPO, true
	case rdf.BoundS | rdf.BoundO:
		return hashKey(KeySO, pat.S, pat.O, bits), KeySO, true
	case rdf.BoundS:
		return hashKey(KeyS, pat.S, rdf.Term{}, bits), KeyS, true
	case rdf.BoundP:
		return hashKey(KeyP, pat.P, rdf.Term{}, bits), KeyP, true
	case rdf.BoundO:
		return hashKey(KeyO, pat.O, rdf.Term{}, bits), KeyO, true
	default:
		return 0, 0, false
	}
}
