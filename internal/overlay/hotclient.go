package overlay

// Workload-adaptive hot-key replication (initiator side).
//
// LookupClient is the one lookup entry point for query engines. On a
// static system (Config.Adaptive off) it sends exactly the legacy
// resolve-then-lookup message sequence with a zero epoch, byte-identical
// to the pre-adaptive wire format. On an adaptive system it stamps each
// lookup with the current stabilization epoch, remembers the replica
// advertisements coming back in PostingsResp, and serves later lookups of
// the same key from the nearest live replica holder — rotating among
// equally-near holders so the hot load spreads instead of moving the
// hotspot one ring position over. Any miss, error, or epoch change drops
// the hint and falls back to the home successor.

import (
	"errors"
	"sync"

	"adhocshare/internal/chord"
	"adhocshare/internal/simnet"
	"adhocshare/internal/trace"
)

// errBadLookupResp reports a lookup answered with an unexpected payload
// type — a protocol bug, not a fault.
var errBadLookupResp = errors.New("overlay: lookup returned unexpected payload type")

// replicaHint is one learned advertisement: where a hot key can be read
// while the initiator's epoch still equals epoch.
type replicaHint struct {
	home       simnet.Addr
	candidates []simnet.Addr
	epoch      uint64
	rot        int
}

// LookupClient performs location-table lookups for one query initiator
// side, learning and using hot-key replicas when the system is adaptive.
type LookupClient struct {
	sys *System

	// mu guards hints, the per-key advertisement cache.
	mu    sync.Mutex
	hints map[chord.ID]*replicaHint
}

// NewLookupClient creates a lookup client bound to one deployment.
func NewLookupClient(sys *System) *LookupClient {
	return &LookupClient{sys: sys, hints: make(map[chord.ID]*replicaHint)}
}

// LookupRow is one lookup's result.
type LookupRow struct {
	// Postings is the key's location-table row (caller-owned copy).
	Postings []Posting
	// Index is the key's home successor — the node the static path would
	// have read; join-site planning keys off it either way, so plans are
	// identical with and without replica hits.
	Index simnet.Addr
	// Hops is the FindSuccessor hop count (0 on a replica hit, which
	// skips resolution entirely).
	Hops int
	// ReplicaHit reports that a hot replica served the row.
	ReplicaHit bool
}

// pickReplica returns the next replica target for the key under the given
// epoch: candidates are filtered to live nodes, ordered by path factor
// from the initiator (address as the deterministic tiebreak), and the
// minimal-factor group is rotated by a per-hint counter.
//adhoclint:faultpath(benign, hint-cache bookkeeping; a rotation bump or dropped hint from a failed attempt only changes which replica is tried next, never correctness)
func (c *LookupClient) pickReplica(from simnet.Addr, key chord.ID, epoch uint64) (simnet.Addr, simnet.Addr, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.hints[key]
	if !ok || h.epoch != epoch {
		return "", "", false
	}
	// Two passes over the (tiny) candidate list: find the minimal path
	// factor among live holders, then gather that group in advertisement
	// order — a deterministic order, so the rotation below is too.
	bestF := 0.0
	alive := 0
	for _, cand := range h.candidates {
		if !c.sys.Net().Alive(cand) {
			continue
		}
		f := c.sys.Net().PathFactor(from, cand)
		if alive == 0 || f < bestF {
			bestF = f
		}
		alive++
	}
	if alive == 0 {
		return "", "", false
	}
	group := make([]simnet.Addr, 0, alive)
	for _, cand := range h.candidates {
		if c.sys.Net().Alive(cand) && c.sys.Net().PathFactor(from, cand) == bestF {
			group = append(group, cand)
		}
	}
	if len(group) == 0 {
		return "", "", false
	}
	pick := group[h.rot%len(group)]
	h.rot++
	return pick, h.home, true
}

// dropHint forgets a key's advertisement (after a miss, error, or epoch
// change).
//adhoclint:faultpath(benign, deleting a hint only forces the next lookup through the home successor)
func (c *LookupClient) dropHint(key chord.ID) {
	c.mu.Lock()
	delete(c.hints, key)
	c.mu.Unlock()
}

// storeHint records a fresh advertisement. The candidate list is home
// first, then the advertised replicas, deduplicated — so a fallback pick
// is always available and the slice never aliases the response payload.
//adhoclint:faultpath(benign, hint caching; hints are advisory and epoch-checked before use)
func (c *LookupClient) storeHint(key chord.ID, home simnet.Addr, replicas []simnet.Addr, epoch uint64) {
	cands := make([]simnet.Addr, 0, len(replicas)+1)
	cands = append(cands, home)
	for _, r := range replicas {
		if r != home {
			cands = append(cands, r)
		}
	}
	c.mu.Lock()
	c.hints[key] = &replicaHint{home: home, candidates: cands, epoch: epoch}
	c.mu.Unlock()
}

// Lookup reads the location-table row for key on behalf of `from`.
// resolveTC and readTC attribute the FindSuccessor walk and the lookup
// read, exactly like the static inline path did, so static traces are
// unchanged. On an adaptive system the replica fast path derives its span
// from readTC.
func (c *LookupClient) Lookup(from simnet.Addr, key chord.ID, resolveTC, readTC trace.TraceContext, at simnet.VTime) (LookupRow, simnet.VTime, error) {
	epoch := uint64(0)
	if c.sys.Config().Adaptive {
		epoch = c.sys.Epoch()
	}
	now := at
	if epoch != 0 {
		if target, home, ok := c.pickReplica(from, key, epoch); ok {
			hotReq := HotLookupReq{Key: key, Epoch: epoch, TC: readTC.Child(1)}
			hotCall := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
				return c.sys.Net().Call(from, target, MethodHotLookup, hotReq, at)
			}
			resp, done, err := simnet.Retry(simnet.DefaultAttempts, now, hotCall)
			now = done
			if err == nil {
				if hr, ok := resp.(HotPostingsResp); ok && hr.Hit {
					return LookupRow{
						Postings:   append([]Posting(nil), hr.Postings...),
						Index:      home,
						ReplicaHit: true,
					}, now, nil
				}
			}
			// Miss, stale epoch, or unreachable holder: forget the hint
			// and pay the home-successor path from the elapsed time.
			c.dropHint(key)
		}
	}
	owner, hops, done, err := c.sys.ResolveKeyTraced(from, key, resolveTC, now)
	now = done
	if err != nil {
		return LookupRow{}, now, err
	}
	req := LookupReq{Key: key, Epoch: epoch, TC: readTC}
	read := func(at simnet.VTime) (simnet.Payload, simnet.VTime, error) {
		return c.sys.Net().Call(from, owner, MethodLookup, req, at)
	}
	resp, done, err := simnet.Retry(simnet.DefaultAttempts, now, read)
	now = done
	if err != nil {
		return LookupRow{Index: owner}, now, err
	}
	pr, ok := resp.(PostingsResp)
	if !ok {
		return LookupRow{Index: owner}, now, errBadLookupResp
	}
	if epoch != 0 && pr.Epoch == epoch && len(pr.Replicas) > 0 {
		c.storeHint(key, owner, pr.Replicas, epoch)
	}
	return LookupRow{
		Postings: append([]Posting(nil), pr.Postings...),
		Index:    owner,
		Hops:     hops,
	}, now, nil
}
