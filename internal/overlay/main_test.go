package overlay

import (
	"os"
	"testing"

	"adhocshare/internal/testutil"
)

// The overlay runs entirely in-process; any goroutine outliving the suite
// is a leak under churn.
func TestMain(m *testing.M) { os.Exit(testutil.VerifyNoLeaks(m)) }
