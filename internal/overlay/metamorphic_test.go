package overlay

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"adhocshare/internal/chord"
	"adhocshare/internal/rdf"
	"adhocshare/internal/simnet"
	"adhocshare/internal/trace"
)

// metaVocab is a small closed vocabulary so random retractions hit
// previously published triples often.
func metaVocab() []rdf.Triple {
	preds := []rdf.Term{
		rdf.NewIRI("http://xmlns.com/foaf/0.1/knows"),
		rdf.NewIRI("http://xmlns.com/foaf/0.1/likes"),
		rdf.NewIRI("http://xmlns.com/foaf/0.1/name"),
	}
	var pool []rdf.Triple
	for s := 0; s < 5; s++ {
		for pi, p := range preds {
			for o := 0; o < 2; o++ {
				var obj rdf.Term
				if pi == 2 {
					obj = rdf.NewLiteral(fmt.Sprintf("Name%d-%d", s, o))
				} else {
					obj = rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", (s+o+1)%5))
				}
				pool = append(pool, rdf.Triple{
					S: rdf.NewIRI(fmt.Sprintf("http://example.org/s%d", s)), P: p, O: obj,
				})
			}
		}
	}
	return pool
}

// metaOp is one randomly drawn index mutation.
type metaOp struct {
	kind     int // 0 publish, 1 publish into named graph, 2 retract, 3 republish
	provider simnet.Addr
	graph    string
	triples  []rdf.Triple
}

func newMetaSystem(t *testing.T, serialPublish bool, providers []simnet.Addr) (*System, simnet.VTime) {
	t.Helper()
	return newMetaSystemCfg(t, Config{Bits: 16, Replication: 2, SerialPublish: serialPublish,
		Net: simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20}}, providers)
}

func newMetaSystemCfg(t *testing.T, cfg Config, providers []simnet.Addr) (*System, simnet.VTime) {
	t.Helper()
	s := NewSystem(cfg)
	now := simnet.VTime(0)
	for i := 0; i < 3; i++ {
		_, done, err := s.AddIndexNode(simnet.Addr(fmt.Sprintf("idx-%d", i)), now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	now = s.Converge(now)
	for _, p := range providers {
		_, done, err := s.AddStorageNode(p, now)
		if err != nil {
			t.Fatal(err)
		}
		now = done
	}
	return s, now
}

func applyMetaOps(t *testing.T, s *System, ops []metaOp, at simnet.VTime) simnet.VTime {
	t.Helper()
	now := at
	for _, op := range ops {
		var done simnet.VTime
		var err error
		switch op.kind {
		case 0:
			done, err = s.Publish(op.provider, op.triples, now)
		case 1:
			done, err = s.PublishGraph(op.provider, op.graph, op.triples, now)
		case 2:
			done, err = s.Retract(op.provider, op.triples, now)
		default:
			done, err = s.Republish(op.provider, now)
		}
		if err != nil {
			t.Fatalf("op %+v: %v", op, err)
		}
		now = done
	}
	return now
}

// drawMetaOps draws a random mutation sequence from the shared vocabulary.
func drawMetaOps(rng *rand.Rand, providers []simnet.Addr, graphs []string, pool []rdf.Triple) []metaOp {
	nOps := 8 + rng.Intn(12)
	ops := make([]metaOp, 0, nOps)
	for i := 0; i < nOps; i++ {
		op := metaOp{kind: rng.Intn(4), provider: providers[rng.Intn(len(providers))]}
		switch op.kind {
		case 1:
			op.graph = graphs[rng.Intn(len(graphs))]
			fallthrough
		case 0:
			n := 1 + rng.Intn(6)
			for j := 0; j < n; j++ {
				op.triples = append(op.triples, pool[rng.Intn(len(pool))])
			}
		case 2:
			n := 1 + rng.Intn(4)
			for j := 0; j < n; j++ {
				op.triples = append(op.triples, pool[rng.Intn(len(pool))])
			}
		}
		ops = append(ops, op)
	}
	return ops
}

// indexState renders the aggregate index (every live index node's
// location table, replicas included) canonically for comparison.
func indexState(s *System) string {
	var sb strings.Builder
	for _, n := range s.IndexNodes() {
		fmt.Fprintf(&sb, "node %s (%v)\n", n.Addr(), n.ID())
		rows := n.Table.Snapshot()
		keys := make([]string, 0, len(rows))
		byKey := map[string][]Posting{}
		for k, row := range rows {
			ks := fmt.Sprintf("%020d", uint64(k))
			keys = append(keys, ks)
			sorted := append([]Posting(nil), row...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
			byKey[ks] = sorted
		}
		sort.Strings(keys)
		for _, ks := range keys {
			fmt.Fprintf(&sb, "  key %s -> %v\n", ks, byKey[ks])
		}
	}
	return sb.String()
}

// assertFreqsPositive checks the location-table invariant that surviving
// postings carry strictly positive frequencies (zero or negative postings
// must have been removed).
func assertFreqsPositive(t *testing.T, s *System, label string) {
	t.Helper()
	for _, n := range s.IndexNodes() {
		for key, row := range n.Table.Snapshot() {
			for _, p := range row {
				if p.Freq <= 0 {
					t.Errorf("%s: node %s key %v posting %s has freq %d, want > 0",
						label, n.Addr(), key, p.Node, p.Freq)
				}
			}
		}
	}
}

// TestMetamorphicIndexRebuild drives random interleavings of Publish,
// PublishGraph, Retract and Republish (testing/quick over seeded trials)
// through the serial and the parallel publication pipelines, and checks
// three metamorphic invariants: (1) both pipelines leave bit-identical
// location tables; (2) the tables equal those of a from-scratch rebuild
// that publishes only the providers' final graphs; (3) every surviving
// posting frequency is positive — and the parallel pipeline never costs
// more traffic than the serial one.
func TestMetamorphicIndexRebuild(t *testing.T) {
	pool := metaVocab()
	providers := []simnet.Addr{"P0", "P1", "P2"}
	graphs := []string{"urn:g1", "urn:g2"}

	trial := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := drawMetaOps(rng, providers, graphs, pool)

		serialSys, now := newMetaSystem(t, true, providers)
		applyMetaOps(t, serialSys, ops, now)
		parSys, now := newMetaSystem(t, false, providers)
		applyMetaOps(t, parSys, ops, now)

		serialState, parState := indexState(serialSys), indexState(parSys)
		if serialState != parState {
			t.Errorf("seed %d: serial and parallel pipelines diverged\nserial:\n%s\nparallel:\n%s",
				seed, serialState, parState)
			return false
		}
		assertFreqsPositive(t, serialSys, fmt.Sprintf("seed %d serial", seed))
		assertFreqsPositive(t, parSys, fmt.Sprintf("seed %d parallel", seed))

		serialTraffic := serialSys.Net().Metrics()
		parTraffic := parSys.Net().Metrics()
		if parTraffic.Messages > serialTraffic.Messages || parTraffic.Bytes > serialTraffic.Bytes {
			t.Errorf("seed %d: parallel pipeline cost more traffic than serial: %d/%d msgs, %d/%d bytes",
				seed, parTraffic.Messages, serialTraffic.Messages, parTraffic.Bytes, serialTraffic.Bytes)
			return false
		}

		// From-scratch rebuild: publish only the final graphs.
		rebuildSys, now := newMetaSystem(t, false, providers)
		for _, st := range parSys.StorageNodes() {
			done, err := rebuildSys.Publish(st.Addr(), st.Graph.Triples(), now)
			if err != nil {
				t.Fatalf("seed %d: rebuild publish: %v", seed, err)
			}
			now = done
			for _, name := range st.GraphNames() {
				done, err = rebuildSys.PublishGraph(st.Addr(), name, st.NamedGraph(name).Triples(), now)
				if err != nil {
					t.Fatalf("seed %d: rebuild publish graph: %v", seed, err)
				}
				now = done
			}
		}
		if rebuildState := indexState(rebuildSys); rebuildState != parState {
			t.Errorf("seed %d: interleaved ops diverged from from-scratch rebuild\nops:\n%s\nrebuild:\n%s",
				seed, parState, rebuildState)
			return false
		}
		return true
	}

	cfg := &quick.Config{MaxCount: 10, Rand: rand.New(rand.NewSource(41))}
	if err := quick.Check(trial, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMutateAfterPublishDoesNotAlterIndex pins the wire-isolation
// ownership contract at the API boundary: Publish and PublishGraph must
// not retain references into the caller's triple slice, so mutating the
// slice afterwards (as a provider reusing a scratch buffer would) cannot
// corrupt the distributed location tables.
func TestMutateAfterPublishDoesNotAlterIndex(t *testing.T) {
	pool := metaVocab()
	providers := []simnet.Addr{"P0", "P1"}
	for _, serial := range []bool{true, false} {
		s, now := newMetaSystem(t, serial, providers)

		batch := append([]rdf.Triple(nil), pool[:6]...)
		done, err := s.Publish("P0", batch, now)
		if err != nil {
			t.Fatalf("serial=%v: Publish: %v", serial, err)
		}
		now = done
		graphBatch := append([]rdf.Triple(nil), pool[6:10]...)
		done, err = s.PublishGraph("P1", "urn:g1", graphBatch, now)
		if err != nil {
			t.Fatalf("serial=%v: PublishGraph: %v", serial, err)
		}
		now = done

		before := indexState(s)

		// Clobber every element of both caller-owned slices.
		for i := range batch {
			batch[i] = pool[(i+10)%len(pool)]
		}
		for i := range graphBatch {
			graphBatch[i] = rdf.Triple{
				S: rdf.NewIRI("http://example.org/clobbered"),
				P: rdf.NewIRI("http://example.org/clobbered"),
				O: rdf.NewLiteral("clobbered"),
			}
		}

		if after := indexState(s); after != before {
			t.Errorf("serial=%v: mutating the caller's slices changed the index\nbefore:\n%s\nafter:\n%s",
				serial, before, after)
		}

		// The provider's republishable graph must be isolated too.
		done, err = s.Republish("P0", now)
		if err != nil {
			t.Fatalf("serial=%v: Republish: %v", serial, err)
		}
		_ = done
		if after := indexState(s); after != before {
			t.Errorf("serial=%v: republish after caller mutation diverged\nbefore:\n%s\nafter:\n%s",
				serial, before, after)
		}
	}
}

// metaBurst is the number of Zipf-drawn lookups fired between consecutive
// mutations in the adaptive-equivalence trials: large enough that hot keys
// cross the promotion threshold and the replica fast path actually serves
// reads.
const metaBurst = 8

// renderPostings renders a posting row canonically (sorted by node).
func renderPostings(ps []Posting) string {
	sorted := append([]Posting(nil), ps...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	return fmt.Sprint(sorted)
}

// TestMetamorphicAdaptiveEquivalence pins the central property of the
// workload-adaptive index (DESIGN.md §9): under any seeded interleaving of
// publish/retract/republish mutations with Zipf-skewed lookup bursts,
// turning Config.Adaptive on must not change a single query answer nor the
// final location tables — hot-key replicas are a cache, never a second
// source of truth — and on the skewed workload the adaptive system must
// not cost more fabric traffic than the static one.
func TestMetamorphicAdaptiveEquivalence(t *testing.T) {
	pool := metaVocab()
	providers := []simnet.Addr{"P0", "P1", "P2"}
	graphs := []string{"urn:g1", "urn:g2"}

	// The lookup targets are the vocabulary's ⟨p,o⟩ pattern keys,
	// deduplicated; the Zipf draw concentrates each burst on a few of
	// them, the hot-key regime the detector is built for.
	var keys []chord.ID
	seen := map[chord.ID]bool{}
	for _, tr := range pool {
		key, _, ok := PatternKey(rdf.Triple{P: tr.P, O: tr.O}, 16)
		if ok && !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	if len(keys) < 2 {
		t.Fatalf("vocabulary yielded %d distinct pattern keys, want >= 2", len(keys))
	}

	adaptiveCfg := func(adaptive bool) Config {
		return Config{Bits: 16, Replication: 2, Adaptive: adaptive,
			HotThreshold: 3, HotReplicas: 2,
			Net: simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20}}
	}

	trial := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := drawMetaOps(rng, providers, graphs, pool)
		zipf := rand.NewZipf(rand.New(rand.NewSource(seed^0x5eed)), 1.6, 1, uint64(len(keys)-1))

		staticSys, nowS := newMetaSystemCfg(t, adaptiveCfg(false), providers)
		adaptSys, nowA := newMetaSystemCfg(t, adaptiveCfg(true), providers)
		staticClient := NewLookupClient(staticSys)
		adaptClient := NewLookupClient(adaptSys)

		for oi, op := range ops {
			nowS = applyMetaOps(t, staticSys, []metaOp{op}, nowS)
			nowA = applyMetaOps(t, adaptSys, []metaOp{op}, nowA)
			for q := 0; q < metaBurst; q++ {
				key := keys[int(zipf.Uint64())]
				rowS, doneS, err := staticClient.Lookup("P0", key,
					trace.TraceContext{}, trace.TraceContext{}, nowS)
				if err != nil {
					t.Fatalf("seed %d op %d query %d: static lookup: %v", seed, oi, q, err)
				}
				nowS = doneS
				rowA, doneA, err := adaptClient.Lookup("P0", key,
					trace.TraceContext{}, trace.TraceContext{}, nowA)
				if err != nil {
					t.Fatalf("seed %d op %d query %d: adaptive lookup: %v", seed, oi, q, err)
				}
				nowA = doneA
				if s, a := renderPostings(rowS.Postings), renderPostings(rowA.Postings); s != a {
					t.Errorf("seed %d op %d query %d key %v: answers diverged (replica hit %v)\nstatic:   %s\nadaptive: %s",
						seed, oi, q, key, rowA.ReplicaHit, s, a)
					return false
				}
			}
		}

		if s, a := indexState(staticSys), indexState(adaptSys); s != a {
			t.Errorf("seed %d: final location tables diverged\nstatic:\n%s\nadaptive:\n%s", seed, s, a)
			return false
		}
		assertFreqsPositive(t, staticSys, fmt.Sprintf("seed %d static", seed))
		assertFreqsPositive(t, adaptSys, fmt.Sprintf("seed %d adaptive", seed))

		st, ad := staticSys.Net().Metrics(), adaptSys.Net().Metrics()
		if ad.Messages > st.Messages || ad.Bytes > st.Bytes {
			t.Errorf("seed %d: adaptive cost more than static on the hot-key workload: %d/%d msgs, %d/%d bytes",
				seed, ad.Messages, st.Messages, ad.Bytes, st.Bytes)
			return false
		}
		return true
	}

	cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(43))}
	if err := quick.Check(trial, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestMetamorphicConcurrentDeliveryEquivalence pins the byte-identity
// contract of simnet's concurrent-delivery mode over the same seeded
// mutation/lookup interleavings: running every handler on its own
// goroutine (with the adaptive hot path on, the state the racefree rule
// had to guard) must change no lookup answer, no completion VTime, no
// final location table and no traffic count relative to serial delivery.
// Under `go test -race` this doubles as the dynamic corroborator of the
// static racefree analysis.
func TestMetamorphicConcurrentDeliveryEquivalence(t *testing.T) {
	pool := metaVocab()
	providers := []simnet.Addr{"P0", "P1", "P2"}
	graphs := []string{"urn:g1", "urn:g2"}

	var keys []chord.ID
	seen := map[chord.ID]bool{}
	for _, tr := range pool {
		key, _, ok := PatternKey(rdf.Triple{P: tr.P, O: tr.O}, 16)
		if ok && !seen[key] {
			seen[key] = true
			keys = append(keys, key)
		}
	}
	if len(keys) < 2 {
		t.Fatalf("vocabulary yielded %d distinct pattern keys, want >= 2", len(keys))
	}

	deliveryCfg := func(concurrent bool) Config {
		return Config{Bits: 16, Replication: 2, Adaptive: true,
			HotThreshold: 3, HotReplicas: 2,
			Net: simnet.Config{BaseLatency: time.Millisecond, Bandwidth: 1 << 20,
				ConcurrentDelivery: concurrent}}
	}

	trial := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ops := drawMetaOps(rng, providers, graphs, pool)
		zipf := rand.NewZipf(rand.New(rand.NewSource(seed^0x5eed)), 1.6, 1, uint64(len(keys)-1))

		serialSys, nowS := newMetaSystemCfg(t, deliveryCfg(false), providers)
		concSys, nowC := newMetaSystemCfg(t, deliveryCfg(true), providers)
		serialClient := NewLookupClient(serialSys)
		concClient := NewLookupClient(concSys)

		for oi, op := range ops {
			nowS = applyMetaOps(t, serialSys, []metaOp{op}, nowS)
			nowC = applyMetaOps(t, concSys, []metaOp{op}, nowC)
			if nowS != nowC {
				t.Errorf("seed %d op %d: mutation completion diverged: serial %v, concurrent %v",
					seed, oi, nowS, nowC)
				return false
			}
			for q := 0; q < metaBurst; q++ {
				key := keys[int(zipf.Uint64())]
				rowS, doneS, err := serialClient.Lookup("P0", key,
					trace.TraceContext{}, trace.TraceContext{}, nowS)
				if err != nil {
					t.Fatalf("seed %d op %d query %d: serial lookup: %v", seed, oi, q, err)
				}
				nowS = doneS
				rowC, doneC, err := concClient.Lookup("P0", key,
					trace.TraceContext{}, trace.TraceContext{}, nowC)
				if err != nil {
					t.Fatalf("seed %d op %d query %d: concurrent lookup: %v", seed, oi, q, err)
				}
				nowC = doneC
				if doneS != doneC {
					t.Errorf("seed %d op %d query %d key %v: lookup VTime diverged: serial %v, concurrent %v",
						seed, oi, q, key, doneS, doneC)
					return false
				}
				if s, c := renderPostings(rowS.Postings), renderPostings(rowC.Postings); s != c {
					t.Errorf("seed %d op %d query %d key %v: answers diverged\nserial:     %s\nconcurrent: %s",
						seed, oi, q, key, s, c)
					return false
				}
			}
		}

		if s, c := indexState(serialSys), indexState(concSys); s != c {
			t.Errorf("seed %d: final location tables diverged\nserial:\n%s\nconcurrent:\n%s", seed, s, c)
			return false
		}
		sm := fmt.Sprintf("%+v", serialSys.Net().Metrics())
		cm := fmt.Sprintf("%+v", concSys.Net().Metrics())
		if sm != cm {
			t.Errorf("seed %d: traffic diverged\nserial:     %s\nconcurrent: %s", seed, sm, cm)
			return false
		}
		return true
	}

	cfg := &quick.Config{MaxCount: 8, Rand: rand.New(rand.NewSource(47))}
	if err := quick.Check(trial, cfg); err != nil {
		t.Fatal(err)
	}
}
